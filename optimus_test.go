package optimus

import (
	"strings"
	"testing"
)

// The facade test exercises the whole public API surface end to end: build
// systems by name, predict training and inference, dissect memory, run the
// DSE, and regenerate experiments.

func TestPublicTrainingFlow(t *testing.T) {
	sys, err := NewSystem("a100", 64, "nvlink3", "hdr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ModelByName("gpt-175b")
	if err != nil {
		t.Fatal(err)
	}
	res, err := PredictTraining(TrainSpec{
		Model: cfg, System: sys,
		Map:         Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: OneFOneB},
		GlobalBatch: 64, Seq: 2048,
		Precision: BF16, Recompute: FullRecompute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The doc-comment promise: ≈19 s against Megatron-LM's measured 18.1 s.
	if res.Total < 16 || res.Total > 21 {
		t.Errorf("GPT-175B prediction %.1f s outside the validated band", res.Total)
	}
	if !FitsDevice(res.MemoryPerDevice, sys.Device.DRAMCapacity()) {
		t.Error("full-recompute 175B should fit an 80 GB A100")
	}
}

func TestPublicInferenceFlow(t *testing.T) {
	sys, err := NewSystem("h100", 2, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	res, err := PredictInference(InferSpec{
		Model: cfg, System: sys, TP: 2, Batch: 1,
		PromptTokens: 200, GenTokens: 200, Precision: FP16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 1.2 || res.Total > 2.2 {
		t.Errorf("Llama2-13B on 2xH100 = %.2f s outside the validated band", res.Total)
	}
	rows, err := PrefillGEMMTable(InferSpec{
		Model: cfg, System: sys, TP: 2, Batch: 1,
		PromptTokens: 200, GenTokens: 1, Precision: FP16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Errorf("GEMM table rows = %d, want 6", len(rows))
	}
}

func TestPublicMemoryFlow(t *testing.T) {
	cfg, err := ModelByName("gpt-530b")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := TrainingMemory(MemorySpec{
		Model: cfg,
		Map:   Mapping{DP: 1, TP: 8, PP: 35, Microbatch: 1, Schedule: OneFOneB},
		Seq:   2048, GlobalBatch: 280, Recompute: SelectiveRecompute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 {
		t.Error("empty footprint")
	}
}

func TestPublicDSEFlow(t *testing.T) {
	cfg, err := ModelByName("gpt-7b")
	if err != nil {
		t.Fatal(err)
	}
	base := Design{}
	// Fill via the uarch helpers re-exported through examples; here the
	// zero Design must be rejected.
	if _, err := OptimizeDesign(base, func(Design) (float64, error) { return 1, nil }, DSEOptions{MaxIters: 1}); err == nil {
		// A zero budget derives no device, but the objective here ignores
		// the design, so the search can still succeed; accept either.
		t.Log("zero-design DSE succeeded with a constant objective")
	}
	_ = cfg
}

func TestPublicReproduce(t *testing.T) {
	ids := Experiments()
	// 10 paper experiments + 3 extension studies.
	if len(ids) != 13 {
		t.Fatalf("experiment registry has %d entries, want 13", len(ids))
	}
	tb, err := Reproduce("table4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "TABLE4") {
		t.Error("rendered table lacks banner")
	}
	if _, err := Reproduce("fig0"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestPublicCollectives(t *testing.T) {
	sys, err := NewSystem("a100", 8, "nvlink3", "hdr")
	if err != nil {
		t.Fatal(err)
	}
	ring := RingAllReduceTime(10e3, 8, sys.Intra)
	tree := TreeAllReduceTime(10e3, 8, sys.Intra)
	if tree >= ring {
		t.Errorf("tree (%g) should beat ring (%g) on a tiny payload", tree, ring)
	}
}

// TestPublicDisaggServingFlow exercises the disaggregated-serving surface
// end to end: the policy re-export, the pool-split spec fields, the
// transfer counters on the result, and the sweep's pool-split axis.
func TestPublicDisaggServingFlow(t *testing.T) {
	sys, err := NewSystem("h100", 2, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := ParseServePolicy("disagg")
	if err != nil || pol != DisaggregatedPolicy {
		t.Fatalf("ParseServePolicy(disagg) = %v, %v", pol, err)
	}
	res, err := Serve(ServeSpec{
		Model: cfg, System: sys, TP: 2, Precision: FP16,
		PromptTokens: 200, GenTokens: 200,
		Arrival: PoissonArrivals, Rate: 2, Requests: 24, Seed: 1,
		Policy:         DisaggregatedPolicy,
		PrefillDevices: 1, DecodeDevices: 1,
		TransferGBps: DefaultServeTransferGBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KVTransfers == 0 || res.TransferTimeTotal <= 0 {
		t.Errorf("disagg serve should migrate and charge transfer time: %+v", res)
	}
	if res.PrefillPagesTotal == 0 || res.DecodePagesTotal == 0 {
		t.Errorf("per-pool geometry missing: %+v", res)
	}

	sweep, err := SweepSerial(SweepSpec{
		Workload: ServingSweep,
		Models:   []Model{cfg}, Systems: []*System{sys},
		Rates: []float64{2}, ServeRequests: 16,
		Policies:    []ServePolicy{DisaggregatedPolicy},
		PoolSplits:  []SweepPoolSplit{{Prefill: 1, Decode: 1}},
		Constraints: PlanConstraints{TopK: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != 1 {
		t.Fatalf("expected one disagg candidate, got %d", len(sweep.Rows))
	}
	p := sweep.Rows[0].Point
	if p.PrefillDevices != 1 || p.DecodeDevices != 1 || p.TransferGBps != DefaultServeTransferGBps {
		t.Errorf("pool-split axis lost on the candidate: %+v", p)
	}
}

func TestPublicNameErrors(t *testing.T) {
	if _, err := ModelByName("gpt-9000"); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := DeviceByName("mi300x"); err == nil {
		t.Error("unknown device should error")
	}
	if _, err := NewSystem("a100", 8, "token-ring", "hdr"); err == nil {
		t.Error("unknown fabric should error")
	}
	if _, err := NewSystem("a100", 12, "nvlink3", "hdr"); err == nil {
		t.Error("non-divisible multi-node shape should error")
	}
	// Fewer devices than one full node is a valid partial node.
	if _, err := NewSystem("a100", 7, "nvlink3", "hdr"); err != nil {
		t.Errorf("partial node should be accepted: %v", err)
	}
}

func TestModelZooComplete(t *testing.T) {
	if len(Models()) != 15 {
		t.Errorf("model zoo has %d entries, want 15", len(Models()))
	}
}

// TestPublicClusterFlow exercises the fleet surface end to end through
// the facade: parse a routing policy, run a fleet, step an instance, and
// bisect the saturation knee.
func TestPublicClusterFlow(t *testing.T) {
	sys, err := NewSystem("h100", 1, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ParseClusterRouting("least-queue")
	if err != nil {
		t.Fatal(err)
	}
	if rt != LeastQueueRouting {
		t.Fatalf("ParseClusterRouting = %v, want %v", rt, LeastQueueRouting)
	}
	capacity := ServeSpec{Model: cfg, System: sys, TP: 1, Precision: FP16}
	spec := ClusterSpec{
		Replicas:     []ClusterReplica{{Spec: capacity, Count: 2}},
		Routing:      rt,
		PromptTokens: 200, GenTokens: 150,
		Rate: 2, Requests: 32, Seed: 1,
	}
	res, err := ServeCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 32 || res.Replicas != 2 || res.Routing != rt {
		t.Fatalf("fleet shape wrong: %+v", res)
	}
	if res.E2E.P95 <= 0 || res.TTFT.P95 <= 0 || res.ThroughputRPS <= 0 {
		t.Errorf("fleet SLOs not populated: %+v", res)
	}
	if len(res.PerReplica) != 2 || res.PerReplica[0].Assigned+res.PerReplica[1].Assigned != 32 {
		t.Errorf("per-replica shares wrong: %+v", res.PerReplica)
	}

	// The steppable instance behind the router is public too: a
	// capacity-only spec plus the envelope of shapes it may be pushed.
	envelope := []ServeRequest{{Tenant: "chat", PromptTokens: 200, GenTokens: 150}}
	inst, err := NewServeInstance(capacity, envelope)
	if err != nil {
		t.Fatal(err)
	}
	if load := inst.Load(); load.InFlight() != 0 {
		t.Errorf("fresh instance should be idle, got %+v", load)
	}

	// Knee bisection through the facade: constrain the fleet so the
	// bracket saturates.
	kneeCluster := spec
	kneeCluster.Replicas = []ClusterReplica{{
		Spec:  ServeSpec{Model: cfg, System: sys, TP: 1, Precision: FP16, MaxBatch: 4},
		Count: 2,
	}}
	kneeCluster.Rate = 0
	knee, err := FindClusterKnee(ClusterKneeSpec{
		Cluster: kneeCluster, SLOE2EP95: 8,
		MinRate: 0.5, MaxRate: 6,
		Tolerance: DefaultClusterKneeTolerance,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(knee.Probes) < 2 || knee.Rate <= 0 {
		t.Fatalf("knee transcript empty: %+v", knee)
	}
	if knee.Saturated && knee.LimitRate <= knee.Rate {
		t.Errorf("saturated knee must bracket: knee %g, limit %g", knee.Rate, knee.LimitRate)
	}
}
