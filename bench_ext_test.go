// Extension benchmarks: the subsystems built beyond the paper's evaluation
// (task graph, pipeline simulator, auto-planner, energy/TCO model,
// flash attention, throughput sweeps).
package optimus

import (
	"testing"

	"optimus/internal/arch"
	"optimus/internal/energy"
	"optimus/internal/graph"
	"optimus/internal/infer"
	"optimus/internal/kernels"
	"optimus/internal/mapsearch"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/pipesim"
	"optimus/internal/repro"
	"optimus/internal/roofline"
	"optimus/internal/tech"
	"optimus/internal/train"
	"optimus/internal/valdata"
)

// BenchmarkAblationFlashAttention compares standard vs IO-aware fused
// attention on a long-context GPT-175B layer (§1.1's trade-off).
func BenchmarkAblationFlashAttention(b *testing.B) {
	spec, err := repro.TrainSpecFor(valdata.Table1()[1])
	if err != nil {
		b.Fatal(err)
	}
	spec.Recompute = memfoot.Selective
	spec.Seq = 8192
	spec.GlobalBatch = 16
	var std, fl train.Result
	for i := 0; i < b.N; i++ {
		s := spec
		std, err = train.Predict(s)
		if err != nil {
			b.Fatal(err)
		}
		s.Flash = true
		fl, err = train.Predict(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(std.Total/fl.Total, "std-over-flash-8k")
}

// BenchmarkPipelineSimulator runs the discrete-event 1F1B schedule at the
// GPT-1008B scale (PP=64, 512 microbatches) and reports the simulated
// bubble fraction against the closed form.
func BenchmarkPipelineSimulator(b *testing.B) {
	cfg := pipesim.Config{
		Stages: 64, Microbatches: 512, Chunks: 1,
		FwdTime: 0.05, BwdTime: 0.10, XferTime: 0.001,
	}
	var res pipesim.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = pipesim.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BubbleFraction, "bubble-fraction")
}

// BenchmarkMapSearch plans GPT-175B on 64 A100s and reports the best MFU
// found.
func BenchmarkMapSearch(b *testing.B) {
	sys, err := arch.DGXA100(64)
	if err != nil {
		b.Fatal(err)
	}
	req := mapsearch.Request{
		Model: model.GPT175B(), System: sys,
		GlobalBatch: 64, Seq: 2048, Precision: tech.BF16,
	}
	var best mapsearch.Candidate
	for i := 0; i < b.N; i++ {
		best, err = mapsearch.Best(req)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*best.MFU, "best-mfu-%")
}

// BenchmarkEnergyModel prices a GPT-3-class training run and reports the
// total in millions of dollars (intro: "around $10M").
func BenchmarkEnergyModel(b *testing.B) {
	spec, err := repro.TrainSpecFor(valdata.Table1()[1])
	if err != nil {
		b.Fatal(err)
	}
	res, err := train.Predict(spec)
	if err != nil {
		b.Fatal(err)
	}
	var run energy.TrainingRun
	for i := 0; i < b.N; i++ {
		run, err = energy.PriceTrainingRun(spec, res, 300e9, energy.DefaultPrices())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(run.Cost.Total()/1e6, "gpt3-run-$M")
}

// BenchmarkTaskGraph builds and analyzes the 40-layer Llama2-13B forward
// graph.
func BenchmarkTaskGraph(b *testing.B) {
	spec := graph.BuildSpec{
		Model: model.Llama2_13B(),
		Exec: kernels.Exec{
			Batch: 1, Seq: 200, Context: 200, TP: 1,
			Precision: tech.FP16, Phase: kernels.Prefill,
		},
		Layers: 40,
		Engine: roofline.New(arch.A100()),
		Link:   arch.IntraLink(tech.NVLink3),
	}
	var cp float64
	for i := 0; i < b.N; i++ {
		g, err := graph.BuildForward(spec)
		if err != nil {
			b.Fatal(err)
		}
		cp, _ = g.CriticalPath()
	}
	b.ReportMetric(cp*1e3, "critical-path-ms")
}

// BenchmarkThroughputSweep evaluates the §6.1 batch-size frontier and
// reports the B=16 over B=1 latency growth (paper: "rather modest").
func BenchmarkThroughputSweep(b *testing.B) {
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		b.Fatal(err)
	}
	base := infer.Spec{
		Model: model.Llama2_13B(), System: sys, TP: 1, Batch: 1,
		PromptTokens: 200, GenTokens: 200, Precision: tech.FP16,
	}
	var pts []infer.ThroughputPoint
	for i := 0; i < b.N; i++ {
		pts, err = infer.ThroughputSweep(base, []int{1, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[1].Latency/pts[0].Latency, "b16-latency-growth-x")
}
