package main

import (
	"bytes"
	"strings"
	"testing"

	"optimus/internal/lint/loader"
)

// TestSuiteCleanOnTree pins the standing gate: the full analyzer suite
// over the repository reports zero findings. Any new violation either
// gets fixed or gets an annotated justification — this test is what makes
// that a build break instead of a review comment.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, _, err := loader.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := run(&buf, root, []string{"./..."}, suite)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("optimuslint reported %d findings on a tree expected clean:\n%s", n, buf.String())
	}
}

func TestFilterSuite(t *testing.T) {
	all, err := filterSuite("")
	if err != nil || len(all) != len(suite) {
		t.Fatalf("empty filter: got %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := filterSuite("floateq, determinism")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "floateq" || two[1].Name != "determinism" {
		got := make([]string, len(two))
		for i, a := range two {
			got[i] = a.Name
		}
		t.Fatalf("filter order not preserved: %v", got)
	}
	if _, err := filterSuite("nosuch"); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("unknown analyzer: got err %v, want it named", err)
	}
}
