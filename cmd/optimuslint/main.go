// Command optimuslint is the multichecker driver for the simulator's
// invariant analyzers (see internal/lint): determinism, keycomplete,
// hotpath and floateq encode the correctness contracts the test suite
// otherwise guards only dynamically, plus offline ports of the
// non-default vet passes (fieldalignment, nilness, shadow, unusedwrite).
//
// Usage:
//
//	optimuslint [-only a,b] [packages]
//
// Packages default to ./... relative to the working directory. Exit
// status: 0 clean, 1 findings, 2 load/usage error — the same contract as
// go vet, so `make lint` composes into `make check` and CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"optimus/internal/lint/analysis"
	"optimus/internal/lint/analyzers/determinism"
	"optimus/internal/lint/analyzers/extravet"
	"optimus/internal/lint/analyzers/floateq"
	"optimus/internal/lint/analyzers/hotpath"
	"optimus/internal/lint/analyzers/keycomplete"
	"optimus/internal/lint/loader"
)

// suite is every analyzer the driver runs, in reporting order.
var suite = []*analysis.Analyzer{
	determinism.Analyzer,
	keycomplete.Analyzer,
	hotpath.Analyzer,
	floateq.Analyzer,
	extravet.FieldAlignment,
	extravet.Nilness,
	extravet.Shadow,
	extravet.UnusedWrite,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	enabled, err := filterSuite(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimuslint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimuslint:", err)
		os.Exit(2)
	}
	n, err := run(os.Stdout, cwd, patterns, enabled)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimuslint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

func filterSuite(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// run loads every matched package once and applies the enabled analyzers,
// printing findings in deterministic (position, analyzer) order. It
// returns the number of findings.
func run(w io.Writer, dir string, patterns []string, enabled []*analysis.Analyzer) (int, error) {
	pkgs, err := loader.Expand(dir, patterns)
	if err != nil {
		return 0, err
	}
	if len(pkgs) == 0 {
		return 0, fmt.Errorf("no packages match %v", patterns)
	}
	l := loader.New()
	sizes := loader.Sizes()

	type finding struct {
		file      string
		line, col int
		analyzer  string
		msg       string
	}
	var findings []finding

	for i := range pkgs {
		p, err := l.LoadDir(pkgs[i].Dir, pkgs[i].Path)
		if err != nil {
			return 0, err
		}
		for _, a := range enabled {
			a := a
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       p.Fset,
				Files:      p.Files,
				Pkg:        p.Pkg,
				TypesInfo:  p.TypesInfo,
				TypesSizes: sizes,
				Report: func(d analysis.Diagnostic) {
					pos := p.Fset.Position(d.Pos)
					findings = append(findings, finding{pos.Filename, pos.Line, pos.Column, a.Name, d.Message})
				},
			}
			if _, err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("%s on %s: %w", a.Name, p.Path, err)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", f.file, f.line, f.col, f.analyzer, f.msg)
	}
	return len(findings), nil
}
