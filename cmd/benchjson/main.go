// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout — the `make bench-json` backend that
// snapshots simulator throughput (sim-req/s and friends) into a file PRs
// can diff, without teaching CI to scrape benchmark text.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line: the name (Benchmark
// prefix and -N GOMAXPROCS suffix stripped), the measured iteration
// count, and every reported metric by unit — ns/op, B/op, allocs/op and
// custom b.ReportMetric units like sim-req/s.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	// CPU and Pkg echo go test's context lines, so a snapshot records the
	// machine it was measured on.
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes go test -bench output and collects benchmark lines; any
// other line (PASS, ok, coverage, test logs) passes through untouched.
func parse(r io.Reader) (Doc, error) {
	doc := Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// A result line is "BenchmarkName-N iterations {value unit}..."
		// — anything shorter is a header or a stray log line.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Doc{}, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return Doc{}, err
	}
	return doc, nil
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (did the bench run fail?)")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
