package main

import (
	"strings"
	"testing"
)

// TestParseBenchOutput pins the bench-line grammar against real `go test
// -bench -benchmem` output, including custom b.ReportMetric units — the
// format `make bench-json` feeds this tool.
func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: optimus
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkServeSimulator
BenchmarkServeSimulator-8   	    2335	    473751 ns/op	    540369 sim-req/s	   45130 B/op	      78 allocs/op
BenchmarkClusterFleet/replicas=4/routing=least-queue-8         	     100	  10400000 ns/op	    393834 req/s	  120000 B/op	     900 allocs/op
PASS
ok  	optimus	4.2s
`
	doc, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if doc.CPU != "Intel(R) Xeon(R) CPU @ 2.10GHz" || doc.Pkg != "optimus" {
		t.Errorf("context lines: cpu=%q pkg=%q", doc.CPU, doc.Pkg)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	serve := doc.Benchmarks[0]
	if serve.Name != "ServeSimulator" || serve.Iterations != 2335 {
		t.Errorf("serve line: %+v", serve)
	}
	for unit, want := range map[string]float64{
		"ns/op": 473751, "sim-req/s": 540369, "B/op": 45130, "allocs/op": 78,
	} {
		if got := serve.Metrics[unit]; got != want {
			t.Errorf("serve %s = %g, want %g", unit, got, want)
		}
	}
	fleet := doc.Benchmarks[1]
	if fleet.Name != "ClusterFleet/replicas=4/routing=least-queue" {
		t.Errorf("sub-benchmark name not preserved: %q", fleet.Name)
	}
	if got := fleet.Metrics["req/s"]; got != 393834 {
		t.Errorf("fleet req/s = %g, want 393834", got)
	}
}

// TestParseRejectsMalformedValue: a corrupt numeric field is an error, not
// a silently dropped metric — the JSON snapshot must never lie by omission.
func TestParseRejectsMalformedValue(t *testing.T) {
	_, err := parse(strings.NewReader("BenchmarkX-8 10 oops ns/op\n"))
	if err == nil {
		t.Fatal("malformed value should fail parsing")
	}
}
