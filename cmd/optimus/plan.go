package main

import (
	"flag"
	"fmt"

	"optimus"
	"optimus/internal/tech"
	"optimus/internal/units"
)

// cmdPlan runs the automatic parallelization planner (§5.1).
func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	modelName := fs.String("model", "gpt-175b", "model preset")
	device := fs.String("device", "a100", "device preset")
	intra := fs.String("intra", "nvlink3", "intra-node fabric")
	inter := fs.String("inter", "hdr", "inter-node fabric")
	gpus := fs.Int("gpus", 64, "device count")
	batch := fs.Int("batch", 64, "global batch size")
	seq := fs.Int("seq", 2048, "sequence length")
	prec := fs.String("precision", "bf16", "GEMM precision")
	topK := fs.Int("top", 5, "strategies to show")
	overflow := fs.Bool("allow-overflow", false, "also rank memory-overflowing strategies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	sys, err := optimus.NewSystem(*device, *gpus, *intra, *inter)
	if err != nil {
		return err
	}
	p, err := tech.ParsePrecision(*prec)
	if err != nil {
		return err
	}
	cands, err := optimus.PlanMapping(optimus.PlanRequest{
		Model: cfg, System: sys, GlobalBatch: *batch, Seq: *seq, Precision: p,
		Constraints: optimus.PlanConstraints{TopK: *topK, AllowOverflow: *overflow},
	})
	if err != nil {
		return err
	}
	fmt.Printf("best strategies for %s on %s (batch %d):\n", cfg.Name, sys, *batch)
	fmt.Printf("  %-28s %-10s %12s %6s %10s %5s\n",
		"mapping", "recompute", "s/batch", "MFU", "mem/dev", "fits")
	for _, c := range cands {
		fits := "yes"
		if !c.Fits {
			fits = "NO"
		}
		fmt.Printf("  %-28s %-10s %12.2f %5.0f%% %10s %5s\n",
			c.Map.String(), c.Recompute, c.Time, 100*c.MFU,
			units.FormatBytes(c.Memory.Total()), fits)
	}
	return nil
}

// cmdCost prices a full training run (the §7 future-work TCO analysis).
func cmdCost(args []string) error {
	fs := flag.NewFlagSet("cost", flag.ExitOnError)
	modelName := fs.String("model", "gpt-175b", "model preset")
	device := fs.String("device", "a100", "device preset")
	intra := fs.String("intra", "nvlink3", "intra-node fabric")
	inter := fs.String("inter", "hdr", "inter-node fabric")
	gpus := fs.Int("gpus", 64, "device count")
	batch := fs.Int("batch", 64, "global batch size")
	tokens := fs.Float64("tokens", 300e9, "training token budget")
	gpuHour := fs.Float64("gpu-hour", 2.0, "amortized $ per device-hour")
	kwh := fs.Float64("kwh", 0.10, "$ per kWh")
	pue := fs.Float64("pue", 1.2, "datacenter PUE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	sys, err := optimus.NewSystem(*device, *gpus, *intra, *inter)
	if err != nil {
		return err
	}
	best, err := optimus.BestMapping(optimus.PlanRequest{
		Model: cfg, System: sys, GlobalBatch: *batch, Seq: 2048, Precision: optimus.BF16,
	})
	if err != nil {
		return err
	}
	spec := optimus.TrainSpec{
		Model: cfg, System: sys, Map: best.Map,
		GlobalBatch: *batch, Seq: 2048, Precision: optimus.BF16,
		Recompute: best.Recompute,
	}
	res, err := optimus.PredictTraining(spec)
	if err != nil {
		return err
	}
	rep, err := optimus.TrainingEnergy(spec, res)
	if err != nil {
		return err
	}
	run, err := optimus.PriceTrainingRun(spec, res, *tokens,
		optimus.Prices{GPUHourUSD: *gpuHour, USDPerKWh: *kwh, PUE: *pue})
	if err != nil {
		return err
	}
	fmt.Printf("%s for %.0fB tokens on %s\n", cfg.Name, *tokens/1e9, sys)
	fmt.Printf("  strategy          %s, %v recompute (auto-planned)\n", best.Map, best.Recompute)
	fmt.Printf("  iteration         %s at %.0f W/device average\n",
		units.FormatSeconds(res.Total), rep.AvgPowerW)
	fmt.Printf("  run length        %d iterations, %.0f days\n", run.Iterations, run.Days)
	fmt.Printf("  energy            %.1f MWh\n", run.EnergyMWh)
	fmt.Printf("  cost              $%.2fM total ($%.2fM compute + $%.2fM energy)\n",
		run.Cost.Total()/1e6, run.Cost.ComputeUSD/1e6, run.Cost.EnergyUSD/1e6)
	fmt.Printf("  perf per TCO      $%.4f per useful PFLOP\n", run.USDPerPFLOP)
	return nil
}
