package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"optimus"
	"optimus/internal/tech"
	"optimus/internal/units"
)

// cmdCluster runs the multi-replica fleet simulator: R identical serving
// replicas behind a routing policy, fed from one seeded arrival stream,
// reporting fleet-wide SLO percentiles with per-replica shares — or, with
// -slo-e2e-p95, bisects the arrival rate to the saturation knee where the
// fleet first misses that SLO.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	modelName := fs.String("model", "llama2-13b", "model preset")
	device := fs.String("device", "h100", "device preset")
	deviceFile := fs.String("device-file", "", "JSON device description (overrides -device)")
	intra := fs.String("intra", "nvlink4", "intra-node fabric")
	gpus := fs.Int("gpus", 1, "GPU count per replica (= tensor-parallel degree)")
	replicas := fs.Int("replicas", 2, "replica count (the CLI fleet is homogeneous; heterogeneous fleets are library-only)")
	routing := fs.String("routing", "round-robin", "routing policy (round-robin|least-queue|least-kv|tenant-affinity)")
	prompt := fs.Int("prompt", 200, "prompt tokens per request (single-tenant; see -mix/-trace)")
	gen := fs.Int("gen", 200, "generated tokens per request (single-tenant; see -mix/-trace)")
	mix := fs.String("mix", "", "multi-tenant workload mix as tenant:share:prompt[~sigma]:gen[~sigma][:prefix[:prefix-id]][,...] (replaces -prompt/-gen; ~sigma draws heavy-tailed lognormal lengths)")
	trace := fs.String("trace", "", "CSV trace file to replay (arrival,tenant,prompt,gen[,prefix_id,prefix_tokens[,session,turn]]; replaces the arrival flags)")
	prefix := fs.Int("prefix", 0, "shared prompt-prefix tokens cached across requests (single-tenant; paged with preemption only)")
	prec := fs.String("precision", "fp16", "precision")
	rate := fs.Float64("rate", 2, "fleet-wide Poisson arrival rate in requests/sec")
	schedule := fs.String("schedule", "", "piecewise fleet arrival-rate schedule as start-end:rate[,...] in seconds and req/s (replaces -rate)")
	turns := fs.Int("turns", 0, "session-cohort turns per client session, each carrying the session's prior context as a growing shared prefix (paged replicas with preemption only)")
	think := fs.Float64("think", 0, "think time between a session's turns in seconds (needs -turns > 1)")
	requests := fs.Int("requests", 256, "requests to simulate")
	seed := fs.Int64("seed", 1, "arrival-process seed")
	maxBatch := fs.Int("max-batch", 0, "per-replica iteration batch cap (0 = derive from KV budget)")
	policy := fs.String("policy", "reserve", "per-replica KV admission policy (reserve|paged|disagg)")
	pageTokens := fs.Int("page-tokens", 0, "block size in KV tokens (0 = default 16; paged/disagg only)")
	noPreempt := fs.Bool("no-preempt", false, "disable preemption: paged admission reserves full-context pages (paged only)")
	prefillDevices := fs.Int("prefill-devices", 0, "devices backing the disagg prefill pool (0 = all; disagg only)")
	decodeDevices := fs.Int("decode-devices", 0, "devices backing the disagg decode pool (0 = all; disagg only)")
	transferGBps := fs.Float64("transfer-gbps", 0, "disagg KV-transfer interconnect bandwidth in GB/s (0 = default 50, Inf = free; disagg only)")
	hostKVGB := fs.Float64("kv-host-gb", 0, "per-replica host-memory KV swap tier capacity in GB (0 = recompute-only preemption; paged with preemption only)")
	swapGBps := fs.Float64("swap-gbps", 0, "GPU-host KV swap-link bandwidth in GB/s (0 = default 32; needs -kv-host-gb)")
	slo := fs.Float64("slo-e2e-p95", 0, "saturation analysis: bisect the arrival rate to the knee where fleet p95 E2E first exceeds this SLO in seconds (replaces -rate)")
	minRate := fs.Float64("min-rate", 0.25, "saturation bracket floor in requests/sec (-slo-e2e-p95 only)")
	maxRate := fs.Float64("max-rate", 16, "saturation bracket ceiling in requests/sec (-slo-e2e-p95 only)")
	kneeProbes := fs.Int("knee-probes", 0, "fleet-simulation budget for the bisection (0 = default 32; a starved budget reports a LOOSE knee; -slo-e2e-p95 only)")
	format := fs.String("format", "text", "output format (text|csv|json)")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	switch *format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (text|csv|json)", *format)
	}

	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	sys, err := systemWithOverride(*device, *deviceFile, *gpus, *intra, "ndr")
	if err != nil {
		return err
	}
	p, err := tech.ParsePrecision(*prec)
	if err != nil {
		return err
	}
	pol, err := optimus.ParseServePolicy(*policy)
	if err != nil {
		return err
	}
	rt, err := optimus.ParseClusterRouting(*routing)
	if err != nil {
		return err
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be at least 1, got %d", *replicas)
	}

	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	// Reject admission-policy knobs the chosen -policy would silently
	// ignore, naming the flags (same surface as optimus serve).
	if err := rejectPolicyFlagMisuse(set, pol); err != nil {
		return err
	}
	// Resolve the transfer default here so the simulation and every output
	// format report the same bandwidth (mirrors optimus serve).
	if pol == optimus.DisaggregatedPolicy && *transferGBps == 0 {
		*transferGBps = optimus.DefaultServeTransferGBps
	}
	if pol == optimus.PagedPolicy && *hostKVGB > 0 && *swapGBps == 0 {
		*swapGBps = optimus.DefaultServeSwapGBps
	}

	capacity := optimus.ServeSpec{
		Model: cfg, System: sys, TP: *gpus, Precision: p,
		MaxBatch: *maxBatch, Policy: pol,
		PageTokens: *pageTokens, NoPreempt: *noPreempt,
		PrefillDevices: *prefillDevices, DecodeDevices: *decodeDevices,
		TransferGBps: *transferGBps,
		HostKVBytes:  *hostKVGB * 1e9, SwapGBps: *swapGBps,
	}
	spec := optimus.ClusterSpec{
		Replicas:     []optimus.ClusterReplica{{Spec: capacity, Count: *replicas}},
		Routing:      rt,
		PromptTokens: *prompt, GenTokens: *gen, PrefixTokens: *prefix,
		Rate: *rate, Requests: *requests, Seed: *seed,
		Turns: *turns, Think: *think,
	}
	if *schedule != "" {
		if set["rate"] {
			return fmt.Errorf("-schedule fixes the arrival-rate timeline (-rate sets the constant Poisson rate; set one)")
		}
		if spec.Schedule, err = optimus.ParseServeSchedule(*schedule); err != nil {
			return err
		}
		spec.Rate = 0
	}

	if *mix != "" && *trace != "" {
		return fmt.Errorf("-mix and -trace are mutually exclusive")
	}
	if *mix != "" || *trace != "" {
		if set["prompt"] || set["gen"] {
			return fmt.Errorf("-prompt and -gen describe the single-tenant workload (use the per-tenant lengths in -mix, or the trace's)")
		}
		if set["prefix"] {
			return fmt.Errorf("-prefix describes the single-tenant workload (use the per-tenant prefix field in -mix, or the trace's prefix columns)")
		}
		spec.PromptTokens, spec.GenTokens, spec.PrefixTokens = 0, 0, 0
	}
	if *mix != "" {
		if spec.Mix, err = optimus.ParseServeMix(*mix); err != nil {
			return err
		}
	}
	if *trace != "" {
		for _, f := range []string{"rate", "requests", "seed", "schedule", "turns", "think"} {
			if set[f] {
				return fmt.Errorf("-%s does not apply when replaying a trace (-trace fixes the arrival process)", f)
			}
		}
		if spec.Trace, err = loadTrace(*trace); err != nil {
			return err
		}
		spec.Rate, spec.Requests, spec.Seed = 0, 0, 0
	}

	if set["slo-e2e-p95"] {
		// Knee mode: the analyzer owns the rate axis.
		if set["rate"] {
			return fmt.Errorf("-rate does not apply to the saturation analysis (-slo-e2e-p95 bisects the rate)")
		}
		if *trace != "" {
			return fmt.Errorf("-trace does not apply to the saturation analysis (a trace fixes its own arrival times)")
		}
		if set["schedule"] {
			return fmt.Errorf("-schedule does not apply to the saturation analysis (-slo-e2e-p95 bisects a constant rate)")
		}
		spec.Rate = 0
		ks := optimus.ClusterKneeSpec{
			Cluster: spec, SLOE2EP95: *slo,
			MinRate: *minRate, MaxRate: *maxRate,
			MaxProbes: *kneeProbes,
		}
		knee, kerr := optimus.FindClusterKnee(ks)
		if kerr != nil {
			return kerr
		}
		return writeKnee(os.Stdout, spec, knee, *format)
	}
	if set["min-rate"] || set["max-rate"] {
		return fmt.Errorf("-min-rate and -max-rate bracket the saturation analysis (set -slo-e2e-p95)")
	}
	if set["knee-probes"] {
		return fmt.Errorf("-knee-probes budgets the saturation analysis (set -slo-e2e-p95)")
	}

	res, err := optimus.ServeCluster(spec)
	if err != nil {
		return err
	}
	return writeCluster(os.Stdout, spec, res, *format)
}

// rejectPolicyFlagMisuse rejects admission-policy knobs the chosen policy
// would silently ignore, naming the flags. Shared by the serve, cluster
// and (axis-adapted) sweep subcommands so all three reject the same
// combinations with the same kind of message.
func rejectPolicyFlagMisuse(set map[string]bool, pol optimus.ServePolicy) error {
	paged := pol == optimus.PagedPolicy || pol == optimus.DisaggregatedPolicy
	if set["page-tokens"] && !paged {
		return fmt.Errorf("-page-tokens applies to the paged and disagg policies only (-policy %v ignores it)", pol)
	}
	if set["no-preempt"] && pol != optimus.PagedPolicy {
		return fmt.Errorf("-no-preempt applies to the paged policy only (-policy %v ignores it)", pol)
	}
	if pol != optimus.DisaggregatedPolicy {
		for _, f := range []string{"prefill-devices", "decode-devices", "transfer-gbps"} {
			if set[f] {
				return fmt.Errorf("-%s applies to the disagg policy only (-policy %v ignores it)", f, pol)
			}
		}
	}
	// The prefix cache and host KV tier live on the paged policy's
	// preemption machinery: any other policy (and paged with -no-preempt)
	// has no eviction to cache across or swap out from.
	for _, f := range []string{"prefix", "kv-host-gb", "swap-gbps"} {
		if !set[f] {
			continue
		}
		if pol != optimus.PagedPolicy {
			return fmt.Errorf("-%s applies to the paged policy only (-policy %v ignores it)", f, pol)
		}
		if set["no-preempt"] {
			return fmt.Errorf("-%s needs preemption (-no-preempt reserves full context and never evicts)", f)
		}
	}
	if set["swap-gbps"] && !set["kv-host-gb"] {
		return fmt.Errorf("-swap-gbps prices the host KV tier's swap link (set -kv-host-gb)")
	}
	return nil
}

// clusterWorkloadLabel names the simulated fleet workload for the text
// header.
func clusterWorkloadLabel(spec optimus.ClusterSpec) string {
	switch {
	case len(spec.Trace) > 0:
		return fmt.Sprintf("%d-event trace", len(spec.Trace))
	case len(spec.Mix) > 0:
		return fmt.Sprintf("%d-tenant mix %s", len(spec.Mix), optimus.FormatServeMix(spec.Mix))
	default:
		return fmt.Sprintf("%d+%d tokens", spec.PromptTokens, spec.GenTokens)
	}
}

// writeCluster renders a fleet simulation in the chosen format.
func writeCluster(w io.Writer, spec optimus.ClusterSpec, res optimus.ClusterResult, format string) error {
	switch format {
	case "text":
		cap := spec.Replicas[0].Spec
		arrivals := "poisson"
		if len(spec.Trace) > 0 {
			arrivals = "replayed"
		}
		fmt.Fprintf(w, "%s on %d replicas of %d x %s (%v routing), %s arrivals, %d requests of %s (seed %d)\n",
			cap.Model.Name, res.Replicas, cap.TP, cap.System.Device.Name, res.Routing,
			arrivals, res.Requests, clusterWorkloadLabel(spec), spec.Seed)
		fmt.Fprintf(w, "  makespan           %s\n", units.FormatSeconds(res.SimTime))
		fmt.Fprintf(w, "  throughput         %.2f req/s, %.0f tok/s (fleet)\n",
			res.ThroughputRPS, res.TokensPerSec)
		if res.Preemptions > 0 || res.RecomputedTokens > 0 {
			fmt.Fprintf(w, "  paging             %d preemptions (%d tokens recomputed)\n",
				res.Preemptions, res.RecomputedTokens)
		}
		if res.KVTransfers > 0 {
			fmt.Fprintf(w, "  kv-transfer        %d migrations, %s total\n",
				res.KVTransfers, units.FormatSeconds(res.TransferTimeTotal))
		}
		if res.PrefixHits > 0 || res.PrefixSavedTokens > 0 {
			fmt.Fprintf(w, "  prefix-cache       %d hits, %d prefill tokens saved (fleet)\n",
				res.PrefixHits, res.PrefixSavedTokens)
		}
		if res.KVSwapOuts > 0 || res.KVSwapIns > 0 {
			fmt.Fprintf(w, "  kv-host-tier       %d swap-outs, %d swap-ins, %s swapping (fleet)\n",
				res.KVSwapOuts, res.KVSwapIns, units.FormatSeconds(res.SwapTimeTotal))
		}
		fmt.Fprintf(w, "  %-8s %10s %10s %10s %10s %10s\n", "SLO", "p50", "p95", "p99", "mean", "max")
		for _, row := range []struct {
			name string
			p    optimus.ServePercentiles
		}{
			{"ttft", res.TTFT}, {"tpot", res.TPOT}, {"e2e", res.E2E}, {"queue", res.Queue},
		} {
			fmt.Fprintf(w, "  %-8s %10s %10s %10s %10s %10s\n", row.name,
				units.FormatSeconds(row.p.P50), units.FormatSeconds(row.p.P95),
				units.FormatSeconds(row.p.P99), units.FormatSeconds(row.p.Mean),
				units.FormatSeconds(row.p.Max))
		}
		fmt.Fprintf(w, "  %-8s %8s %10s %10s %8s %10s\n",
			"replica", "assigned", "makespan", "e2e-p95", "preempt", "peak-kv")
		for _, rr := range res.PerReplica {
			fmt.Fprintf(w, "  %-8d %8d %10s %10s %8d %10s\n", rr.Index, rr.Assigned,
				units.FormatSeconds(rr.Result.SimTime), units.FormatSeconds(rr.Result.E2E.P95),
				rr.Result.Preemptions, units.FormatBytes(rr.Result.PeakKVBytes))
		}
		if len(res.PerTenant) > 1 {
			fmt.Fprintf(w, "  %-12s %8s %10s %10s %10s\n",
				"tenant", "requests", "ttft-p95", "tpot-p95", "e2e-p95")
			for _, tm := range res.PerTenant {
				fmt.Fprintf(w, "  %-12s %8d %10s %10s %10s\n", tm.Tenant, tm.Requests,
					units.FormatSeconds(tm.TTFT.P95), units.FormatSeconds(tm.TPOT.P95),
					units.FormatSeconds(tm.E2E.P95))
			}
		}
		return nil
	case "csv":
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"id", "replica", "tenant", "prompt", "gen",
			"arrival_s", "admitted_s", "first_token_s",
			"done_s", "queue_s", "ttft_s", "tpot_s", "e2e_s", "preemptions",
			"kv_transfers", "kv_transfer_s"}); err != nil {
			return err
		}
		g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		for _, m := range res.PerRequest {
			if err := cw.Write([]string{
				strconv.Itoa(m.ID), strconv.Itoa(m.Replica), m.Tenant,
				strconv.Itoa(m.PromptTokens), strconv.Itoa(m.GenTokens),
				g(m.Arrival), g(m.Admitted), g(m.FirstToken),
				g(m.Done), g(m.Queue), g(m.TTFT), g(m.TPOT), g(m.E2E),
				strconv.Itoa(m.Preemptions),
				strconv.Itoa(m.KVTransfers), g(m.KVTransferTime),
			}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	default:
		return fmt.Errorf("unknown format %q (text|csv|json)", format)
	}
}

// writeKnee renders a saturation analysis in the chosen format.
func writeKnee(w io.Writer, spec optimus.ClusterSpec, knee optimus.ClusterKnee, format string) error {
	switch format {
	case "text":
		cap := spec.Replicas[0].Spec
		R := spec.Replicas[0].Count
		fmt.Fprintf(w, "%s on %d replicas of %d x %s (%v routing): saturation knee vs %s p95-E2E SLO\n",
			cap.Model.Name, R, cap.TP, cap.System.Device.Name, spec.Routing,
			units.FormatSeconds(knee.SLOE2EP95))
		if knee.Saturated {
			fmt.Fprintf(w, "  knee               %g req/s (p95 E2E %s)\n",
				knee.Rate, units.FormatSeconds(knee.P95E2E))
			fmt.Fprintf(w, "  first violation    %g req/s (p95 E2E %s)\n",
				knee.LimitRate, units.FormatSeconds(knee.LimitP95))
			if !knee.Converged {
				fmt.Fprintf(w, "  convergence        LOOSE: probe budget exhausted at %.3g relative bracket width (knee is coarser than the tolerance)\n",
					knee.BracketWidth)
			}
		} else {
			fmt.Fprintf(w, "  unsaturated        fleet meets the SLO through %g req/s (p95 E2E %s); raise -max-rate to find the knee\n",
				knee.Rate, units.FormatSeconds(knee.P95E2E))
		}
		fmt.Fprintf(w, "  %-6s %10s %12s %s\n", "probe", "rate", "p95-e2e", "slo")
		for i, pr := range knee.Probes {
			verdict := "meets"
			if !pr.OK {
				verdict = "MISSES"
			}
			fmt.Fprintf(w, "  %-6d %10g %12s %s\n", i, pr.Rate,
				units.FormatSeconds(pr.P95E2E), verdict)
		}
		return nil
	case "csv":
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"probe", "rate_per_sec", "p95_e2e_s", "meets_slo"}); err != nil {
			return err
		}
		g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		for i, pr := range knee.Probes {
			if err := cw.Write([]string{
				strconv.Itoa(i), g(pr.Rate), g(pr.P95E2E), strconv.FormatBool(pr.OK),
			}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(knee)
	default:
		return fmt.Errorf("unknown format %q (text|csv|json)", format)
	}
}
