package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags is the shared -cpuprofile/-memprofile wiring for the
// simulation subcommands (serve, cluster, sweep): the simulator core is
// fast enough that finding the next bottleneck needs pprof, so the CLI
// exposes the same profiling surface `go test -cpuprofile` gives the
// benchmarks.
type profileFlags struct {
	cpu *string
	mem *string
}

// addProfileFlags registers the profiling flags on a subcommand's flag
// set; call before fs.Parse.
func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu: fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file"),
		mem: fs.String("memprofile", "", "write a pprof heap profile to this file at exit"),
	}
}

// start begins CPU profiling when requested and returns the stop function
// to defer: it ends the CPU profile and writes the heap profile. Profile
// write failures at stop are reported to stderr rather than clobbering
// the command's own error — by then the simulation output is already out.
func (p *profileFlags) start() (stop func(), err error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("create -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start -cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "optimus: close -cpuprofile: %v\n", err)
			}
		}
		if *p.mem == "" {
			return
		}
		f, err := os.Create(*p.mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimus: create -memprofile: %v\n", err)
			return
		}
		defer f.Close()
		// An up-to-date heap picture: collect garbage so the profile shows
		// live memory, not whatever the last GC cycle left behind.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "optimus: write -memprofile: %v\n", err)
		}
	}, nil
}
