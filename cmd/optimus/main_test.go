package main

import (
	"testing"
)

// The CLI handlers are plain functions returning errors; exercising them
// end-to-end keeps flag plumbing, name resolution and output formatting
// covered.

func TestCmdTrain(t *testing.T) {
	if err := cmdTrain([]string{"-model", "gpt-22b", "-dp", "1", "-tp", "8", "-pp", "1", "-batch", "4", "-recompute", "full"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-model", "gpt-175b", "-interleave", "2", "-sp", "-recompute", "selective"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-model", "no-such-model"}); err == nil {
		t.Error("unknown model should fail")
	}
	if err := cmdTrain([]string{"-recompute", "maybe"}); err == nil {
		t.Error("bad recompute mode should fail")
	}
	if err := cmdTrain([]string{"-precision", "fp128"}); err == nil {
		t.Error("bad precision should fail")
	}
}

func TestCmdInfer(t *testing.T) {
	if err := cmdInfer([]string{"-model", "llama2-13b", "-gpus", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfer([]string{"-device", "warp-core"}); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestCmdMemory(t *testing.T) {
	if err := cmdMemory([]string{"-model", "gpt-530b", "-tp", "8", "-pp", "35", "-batch", "280"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMemory([]string{"-model", "gpt-175b", "-pp", "7"}); err == nil {
		t.Error("indivisible layers should fail")
	}
}

func TestCmdGEMMTable(t *testing.T) {
	if err := cmdGEMMTable([]string{"-model", "llama2-13b", "-device", "h100"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdDSE(t *testing.T) {
	if err := cmdDSE([]string{"-node", "n5", "-dram", "hbm2e", "-net", "xdr-x8", "-gpus", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDSE([]string{"-node", "n99"}); err == nil {
		t.Error("unknown node should fail")
	}
	if err := cmdDSE([]string{"-dram", "ddr3"}); err == nil {
		t.Error("unknown dram should fail")
	}
}

func TestCmdPlan(t *testing.T) {
	if err := cmdPlan([]string{"-model", "gpt-22b", "-gpus", "8", "-batch", "8", "-top", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCost(t *testing.T) {
	if err := cmdCost([]string{"-model", "gpt-22b", "-gpus", "8", "-batch", "8", "-tokens", "1e9"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdGraph(t *testing.T) {
	if err := cmdGraph([]string{"-model", "llama2-7b", "-layers", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdReproduce(t *testing.T) {
	if err := cmdReproduce([]string{"table4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReproduce([]string{"-format", "csv", "fig8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReproduce([]string{"-format", "json", "fig4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReproduce([]string{}); err == nil {
		t.Error("missing experiment should fail")
	}
	if err := cmdReproduce([]string{"fig99"}); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := cmdReproduce([]string{"-format", "xml", "fig4"}); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestCmdExportAndDeviceFile(t *testing.T) {
	if err := cmdExport([]string{"-device", "h100"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExport([]string{"-device", "starship"}); err == nil {
		t.Error("unknown preset should fail")
	}
	if _, err := loadDeviceFile("/does/not/exist.json"); err == nil {
		t.Error("missing device file should fail")
	}
}

func TestCmdList(t *testing.T) {
	if err := cmdList(nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmdValidate(t *testing.T) {
	if err := cmdValidate(nil); err != nil {
		t.Fatal(err)
	}
}
