// Command optimus is the CLI front end of the Optimus-Go performance
// model: predict training iteration times and inference latencies, dissect
// memory footprints, run the design-space exploration, and regenerate
// every table and figure of the paper's evaluation.
//
// Usage:
//
//	optimus train     -model gpt-175b -device a100 -dp 1 -tp 8 -pp 8 -sp -batch 64 -recompute full
//	optimus infer     -model llama2-13b -device h100 -gpus 2 -prompt 200 -gen 200
//	optimus serve     -model llama2-13b -device h100 -gpus 2 -rate 2 -requests 512 -policy paged
//	optimus cluster   -model llama2-13b -device h100 -replicas 4 -routing least-queue -rate 8
//	optimus memory    -model gpt-530b -tp 8 -pp 35 -batch 280 -recompute selective
//	optimus gemmtable -model llama2-13b -device a100
//	optimus dse       -node n5 -dram hbm2e -net xdr-x8
//	optimus plan      -model gpt-175b -gpus 64 -batch 64
//	optimus sweep     -models gpt-175b,gpt-530b -devices a100,h100 -gpus 64,128 -format csv
//	optimus cost      -model gpt-175b -gpus 1024 -batch 1024 -tokens 300e9
//	optimus reproduce table1|table2|table4|fig3..fig9|all
//	optimus validate
//	optimus list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optimus"
	"optimus/internal/memfoot"
	"optimus/internal/tech"
	"optimus/internal/uarch"
	"optimus/internal/units"
	"optimus/internal/valdata"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "train":
		err = cmdTrain(args)
	case "infer":
		err = cmdInfer(args)
	case "serve":
		err = cmdServe(args)
	case "cluster":
		err = cmdCluster(args)
	case "memory":
		err = cmdMemory(args)
	case "gemmtable":
		err = cmdGEMMTable(args)
	case "dse":
		err = cmdDSE(args)
	case "plan":
		err = cmdPlan(args)
	case "sweep":
		err = cmdSweep(args)
	case "cost":
		err = cmdCost(args)
	case "graph":
		err = cmdGraph(args)
	case "reproduce":
		err = cmdReproduce(args)
	case "validate":
		err = cmdValidate(args)
	case "export":
		err = cmdExport(args)
	case "list":
		err = cmdList(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "optimus: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimus %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `optimus — analytical performance model for distributed LLM training and inference

commands:
  train      predict training time per batch with its breakdown
  infer      predict end-to-end inference latency
  serve      simulate continuous-batching serving with SLO percentiles; -policy
             picks KV admission (reserve = full-context, paged = vLLM-style blocks
             with LIFO preemption and recompute readmission)
  cluster    simulate a multi-replica serving fleet behind a routing policy
             (round-robin, least-queue, least-kv, tenant-affinity) with
             fleet-wide SLOs; -slo-e2e-p95 bisects the saturation knee
  memory     dissect the per-device training memory footprint
  gemmtable  per-GEMM bound analysis of the prefill phase (Table 4)
  dse        design-space exploration at a technology node (§3.6)
  plan       search for the best parallelization strategy (§5.1)
  sweep      rank a models × systems × settings grid concurrently (-format text|csv|json)
  cost       price a full training run: energy + TCO (§7 future work)
  graph      emit the per-device task graph as Graphviz DOT (Fig. 1)
  reproduce  regenerate a paper experiment (table1..fig9, or "all"; -format text|csv|json)
  validate   check predictions against the published data (Tables 1-2)
  export     dump a preset device as editable JSON (§3.1 external descriptions)
  list       list model, device and experiment presets

run "optimus <command> -h" for flags.`)
}

func parseRecompute(s string) (optimus.Recompute, error) {
	switch strings.ToLower(s) {
	case "none", "no":
		return optimus.NoRecompute, nil
	case "selective", "sel":
		return optimus.SelectiveRecompute, nil
	case "full":
		return optimus.FullRecompute, nil
	default:
		return 0, fmt.Errorf("unknown recompute mode %q (none|selective|full)", s)
	}
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	modelName := fs.String("model", "gpt-175b", "model preset")
	device := fs.String("device", "a100", "device preset")
	deviceFile := fs.String("device-file", "", "JSON device description (overrides -device)")
	intra := fs.String("intra", "nvlink3", "intra-node fabric")
	inter := fs.String("inter", "hdr", "inter-node fabric")
	dp := fs.Int("dp", 1, "data-parallel degree")
	tp := fs.Int("tp", 8, "tensor-parallel degree")
	pp := fs.Int("pp", 8, "pipeline-parallel degree")
	sp := fs.Bool("sp", false, "enable sequence parallelism")
	micro := fs.Int("microbatch", 1, "microbatch size (sequences)")
	batch := fs.Int("batch", 64, "global batch size (sequences)")
	seq := fs.Int("seq", 2048, "sequence length")
	prec := fs.String("precision", "bf16", "GEMM precision (bf16|fp16|fp8|fp4)")
	rec := fs.String("recompute", "full", "activation recomputation (none|selective|full)")
	interleave := fs.Int("interleave", 1, "virtual pipeline stages (interleaved 1F1B when > 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	sys, err := systemWithOverride(*device, *deviceFile, *dp**tp**pp, *intra, *inter)
	if err != nil {
		return err
	}
	p, err := tech.ParsePrecision(*prec)
	if err != nil {
		return err
	}
	r, err := parseRecompute(*rec)
	if err != nil {
		return err
	}
	m := optimus.Mapping{DP: *dp, TP: *tp, PP: *pp, SP: *sp, Microbatch: *micro, Schedule: optimus.OneFOneB}
	if *interleave > 1 {
		m.Schedule = optimus.Interleaved1F1B
		m.VirtualStages = *interleave
	}
	res, err := optimus.PredictTraining(optimus.TrainSpec{
		Model: cfg, System: sys, Map: m,
		GlobalBatch: *batch, Seq: *seq, Precision: p, Recompute: r,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%s on %s, mapping %s, batch %d, %v GEMMs, %v recompute\n",
		cfg, sys, m, *batch, p, r)
	fmt.Printf("  time per batch     %s\n", units.FormatSeconds(res.Total))
	fmt.Printf("  compute            %s (gemm %s, elementwise %s, recompute %s)\n",
		units.FormatSeconds(res.Compute), units.FormatSeconds(res.GEMMTime),
		units.FormatSeconds(res.EWTime), units.FormatSeconds(res.RecomputeTime))
	fmt.Printf("  communication      %s (tp %s, pp %s, dp %s)\n",
		units.FormatSeconds(res.Communication), units.FormatSeconds(res.TPComm),
		units.FormatSeconds(res.PPComm), units.FormatSeconds(res.DPComm))
	fmt.Printf("  other              %s (bubble %s, optimizer %s)\n",
		units.FormatSeconds(res.Other), units.FormatSeconds(res.Bubble),
		units.FormatSeconds(res.OptimizerStep))
	fmt.Printf("  model FLOPs        %s   MFU %.1f%%\n", units.FormatFLOPs(res.ModelFLOPs), 100*res.MFU)
	mem := res.MemoryPerDevice
	fmt.Printf("  memory/device      %s (param %s, grad %s, optim %s, act %s)\n",
		units.FormatBytes(mem.Total()), units.FormatBytes(mem.Parameters),
		units.FormatBytes(mem.Gradients), units.FormatBytes(mem.Optimizer),
		units.FormatBytes(mem.Activations))
	if !optimus.FitsDevice(mem, sys.Device.DRAMCapacity()) {
		fmt.Printf("  WARNING: footprint exceeds the %s device memory\n",
			units.FormatBytes(sys.Device.DRAMCapacity()))
	}
	return nil
}

func cmdInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	modelName := fs.String("model", "llama2-13b", "model preset")
	device := fs.String("device", "a100", "device preset")
	deviceFile := fs.String("device-file", "", "JSON device description (overrides -device)")
	intra := fs.String("intra", "nvlink3", "intra-node fabric")
	gpus := fs.Int("gpus", 1, "GPU count (= tensor-parallel degree)")
	batch := fs.Int("batch", 1, "batch size (sequences)")
	prompt := fs.Int("prompt", 200, "prompt (summarization) tokens")
	gen := fs.Int("gen", 200, "generated tokens")
	prec := fs.String("precision", "fp16", "precision")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	sys, err := systemWithOverride(*device, *deviceFile, *gpus, *intra, "ndr")
	if err != nil {
		return err
	}
	p, err := tech.ParsePrecision(*prec)
	if err != nil {
		return err
	}
	res, err := optimus.PredictInference(optimus.InferSpec{
		Model: cfg, System: sys, TP: *gpus, Batch: *batch,
		PromptTokens: *prompt, GenTokens: *gen, Precision: p,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%s on %d x %s, B=%d, %d+%d tokens\n", cfg, *gpus, sys.Device.Name, *batch, *prompt, *gen)
	fmt.Printf("  total latency      %s\n", units.FormatSeconds(res.Total))
	fmt.Printf("  prefill            %s (device %s)\n",
		units.FormatSeconds(res.Prefill), units.FormatSeconds(res.PrefillCompute))
	fmt.Printf("  decode             %s (%s/token)\n",
		units.FormatSeconds(res.Decode), units.FormatSeconds(res.PerToken))
	fmt.Printf("  memory time        %s\n", units.FormatSeconds(res.MemoryTime))
	fmt.Printf("  communication      %s\n", units.FormatSeconds(res.CommTime))
	fmt.Printf("  weights/device     %s, kv-cache %s (fits: %v)\n",
		units.FormatBytes(res.Footprint.Weights), units.FormatBytes(res.Footprint.KVCache), res.Fits)
	return nil
}

func cmdMemory(args []string) error {
	fs := flag.NewFlagSet("memory", flag.ExitOnError)
	modelName := fs.String("model", "gpt-175b", "model preset")
	dp := fs.Int("dp", 1, "data-parallel degree")
	tp := fs.Int("tp", 8, "tensor-parallel degree")
	pp := fs.Int("pp", 8, "pipeline-parallel degree")
	sp := fs.Bool("sp", false, "sequence parallelism")
	micro := fs.Int("microbatch", 1, "microbatch size")
	batch := fs.Int("batch", 64, "global batch size")
	seq := fs.Int("seq", 2048, "sequence length")
	capGB := fs.Float64("capacity", 80, "device memory in GB for the fit check")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	fmt.Printf("%s, mapping %d-%d-%d, microbatch %d, batch %d, seq %d\n",
		cfg, *dp, *tp, *pp, *micro, *batch, *seq)
	for _, r := range []optimus.Recompute{optimus.NoRecompute, optimus.SelectiveRecompute, optimus.FullRecompute} {
		bd, err := optimus.TrainingMemory(optimus.MemorySpec{
			Model: cfg,
			Map:   optimus.Mapping{DP: *dp, TP: *tp, PP: *pp, SP: *sp, Microbatch: *micro, Schedule: optimus.OneFOneB},
			Seq:   *seq, GlobalBatch: *batch, Recompute: r,
		})
		if err != nil {
			return err
		}
		fits := ""
		if !optimus.FitsDevice(bd, *capGB*1e9) {
			fits = fmt.Sprintf("  [exceeds %.0f GB]", *capGB)
		}
		fmt.Printf("  %-9s total %8s  param %8s  grad %8s  optim %8s  act %8s%s\n",
			r, units.FormatBytes(bd.Total()), units.FormatBytes(bd.Parameters),
			units.FormatBytes(bd.Gradients), units.FormatBytes(bd.Optimizer),
			units.FormatBytes(bd.Activations), fits)
	}
	return nil
}

func cmdGEMMTable(args []string) error {
	fs := flag.NewFlagSet("gemmtable", flag.ExitOnError)
	modelName := fs.String("model", "llama2-13b", "model preset")
	device := fs.String("device", "a100", "device preset")
	gpus := fs.Int("gpus", 1, "GPU count (TP degree)")
	batch := fs.Int("batch", 1, "batch size")
	prompt := fs.Int("prompt", 200, "prompt tokens")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	sys, err := optimus.NewSystem(*device, *gpus, "nvlink4", "ndr")
	if err != nil {
		return err
	}
	rows, err := optimus.PrefillGEMMTable(optimus.InferSpec{
		Model: cfg, System: sys, TP: *gpus, Batch: *batch,
		PromptTokens: *prompt, GenTokens: 1, Precision: optimus.FP16,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s prefill GEMMs on %s (B=%d, %d tokens)\n", cfg.Name, sys.Device.Name, *batch, *prompt)
	for _, r := range rows {
		fmt.Printf("  %-30s %10s  %-8s %s\n", r.Function,
			units.FormatSeconds(r.Time), r.Bound, units.FormatBytes(r.Bytes))
	}
	return nil
}

func cmdDSE(args []string) error {
	fs := flag.NewFlagSet("dse", flag.ExitOnError)
	node := fs.String("node", "n5", "logic node (n12..n1)")
	dram := fs.String("dram", "hbm2e", "DRAM technology")
	net := fs.String("net", "ndr-x8", "inter-node network technology")
	modelName := fs.String("model", "gpt-7b", "workload model")
	gpus := fs.Int("gpus", 1024, "system size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := tech.ParseNode(*node)
	if err != nil {
		return err
	}
	d, err := tech.ParseDRAM(*dram)
	if err != nil {
		return err
	}
	nt, err := tech.ParseNetwork(*net)
	if err != nil {
		return err
	}
	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	base := optimus.Design{
		Node: n, DRAM: d, Network: nt,
		Budget: uarch.A100ClassBudget(),
		Alloc:  uarch.DefaultAllocation(),
	}
	objective := func(des optimus.Design) (float64, error) {
		sys, derr := optimus.DeriveSystem(des, *gpus, 4)
		if derr != nil {
			return 0, derr
		}
		res, derr := optimus.PredictTraining(optimus.TrainSpec{
			Model: cfg, System: sys,
			Map:         optimus.Mapping{DP: *gpus / 16, TP: 4, PP: 4, SP: true, Microbatch: 1, Schedule: optimus.OneFOneB},
			GlobalBatch: *gpus / 2, Seq: 2048, Precision: optimus.BF16,
		})
		if derr != nil {
			return 0, derr
		}
		return res.Total, nil
	}
	res, err := optimus.OptimizeDesign(base, objective, optimus.DSEOptions{})
	if err != nil {
		return err
	}
	dev, err := optimus.DeriveDevice(res.Design)
	if err != nil {
		return err
	}
	fmt.Printf("DSE at %v / %v / %v (%s on %d GPUs)\n", n, d, nt, cfg.Name, *gpus)
	fmt.Printf("  iteration time  %s (from %s at the default floorplan, %d evals)\n",
		units.FormatSeconds(res.Cost), units.FormatSeconds(res.StartCost), res.Evals)
	a := res.Design.Alloc
	fmt.Printf("  area  core %.2f  sram %.2f  mem-io %.2f  net-io %.2f\n", a.AreaCore, a.AreaSRAM, a.AreaMemIO, a.AreaNetIO)
	fmt.Printf("  power core %.2f  sram %.2f  mem-io %.2f  net-io %.2f\n", a.PowerCore, a.PowerSRAM, a.PowerMemIO, a.PowerNetIO)
	fmt.Printf("  derived device: %s fp16, L2 %s @ %s, HBM %s @ %s\n",
		units.FormatFLOPs(dev.Compute[optimus.FP16]),
		units.FormatBytes(dev.Mem[1].Capacity), units.FormatRate(dev.Mem[1].BW),
		units.FormatBytes(dev.DRAMCapacity()), units.FormatRate(dev.DRAMLevel().BW))
	return nil
}

func cmdReproduce(args []string) error {
	fs := flag.NewFlagSet("reproduce", flag.ExitOnError)
	format := fs.String("format", "text", "output format (text|csv|json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("which experiment? one of %s, or all", strings.Join(optimus.Experiments(), ", "))
	}
	ids := args
	if args[0] == "all" {
		ids = optimus.Experiments()
	}
	for _, id := range ids {
		tb, err := optimus.Reproduce(id)
		if err != nil {
			return err
		}
		out, err := tb.Render(*format)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fail := false

	tb, err := optimus.Reproduce("table1")
	if err != nil {
		return err
	}
	fmt.Println(tb)
	var errs []float64
	for i, c := range valdata.Table1() {
		spec, perr := reproTrainSpec(c)
		if perr != nil {
			return perr
		}
		res, perr := optimus.PredictTraining(spec)
		if perr != nil {
			return perr
		}
		e := units.RelErr(res.Total, c.RefSeconds)
		errs = append(errs, e)
		if e > 0.12 {
			fmt.Printf("FAIL table1 row %d (%s): %.1f%% > 12%%\n", i, c.Model, 100*e)
			fail = true
		}
	}
	if m := units.Mean(errs); m > 0.08 {
		fmt.Printf("FAIL table1 mean error %.1f%% > 8%%\n", 100*m)
		fail = true
	} else {
		fmt.Printf("PASS table1: mean error %.1f%%, max %.1f%%\n", 100*units.Mean(errs), 100*units.Max(errs))
	}

	tb2, err := optimus.Reproduce("table2")
	if err != nil {
		return err
	}
	fmt.Println(tb2)
	fmt.Println("PASS table2 (gates enforced by the table generator tests)")

	if fail {
		return fmt.Errorf("validation gates exceeded")
	}
	return nil
}

// reproTrainSpec rebuilds the Table 1 experiment spec for validation.
func reproTrainSpec(c valdata.TrainCase) (optimus.TrainSpec, error) {
	cfg, err := optimus.ModelByName(c.Model)
	if err != nil {
		return optimus.TrainSpec{}, err
	}
	sys, err := optimus.NewSystem("a100", c.GPUs, "nvlink3", "hdr")
	if err != nil {
		return optimus.TrainSpec{}, err
	}
	return optimus.TrainSpec{
		Model: cfg, System: sys,
		Map:         optimus.Mapping{DP: c.DP, TP: c.TP, PP: c.PP, SP: c.SP, Microbatch: 1, Schedule: optimus.OneFOneB},
		GlobalBatch: c.Batch, Seq: 2048, Precision: optimus.BF16,
		Recompute: memfoot.Recompute(c.Recompute),
	}, nil
}

func cmdList(args []string) error {
	fmt.Println("models:")
	for _, m := range optimus.Models() {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println("devices: a100, a100-40gb, h100, h200, b100, b200, v100, p4, tpuv4")
	fmt.Println("experiments:", strings.Join(optimus.Experiments(), ", "))
	fmt.Println("logic nodes: n12, n10, n7, n5, n3, n2, n1")
	fmt.Println("dram: gddr6, hbm2, hbm2e, hbm3, hbm3-sxm, hbm3e, hbm4, hbmx")
	fmt.Println("networks: hdr, ndr, ndr-x8, xdr-x8, gdr-x8, nvlink3, nvlink4, nvlink5, nvs")
	return nil
}
