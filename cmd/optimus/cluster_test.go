package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"

	"optimus"
)

func TestCmdCluster(t *testing.T) {
	if err := cmdCluster([]string{"-requests", "32", "-rate", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCluster([]string{"-replicas", "3", "-routing", "least-queue",
		"-requests", "24", "-rate", "3", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCluster([]string{"-replicas", "2", "-routing", "least-kv",
		"-policy", "paged", "-page-tokens", "32", "-requests", "24", "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCluster([]string{"-replicas", "2", "-routing", "tenant-affinity",
		"-mix", "chat:0.6:150:100,batch:0.4:600:80", "-requests", "24"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{"-replicas", "0"},
		{"-replicas", "-2"},
		{"-routing", "random"},
		{"-policy", "lru"},
		{"-page-tokens", "16"},    // paging knob under reserve
		{"-no-preempt"},           // paged-only knob under reserve
		{"-prefill-devices", "1"}, // disagg-only knob under reserve
		{"-transfer-gbps", "50"},  // disagg-only knob under reserve
		{"-policy", "disagg", "-no-preempt"},
		{"-model", "no-such-model"},
		{"-device", "warp-core"},
		{"-precision", "fp128"},
		{"-format", "yaml"},
		{"-rate", "0"},
		{"-mix", "chat:0.7:200"},                      // malformed mix entry
		{"-mix", "chat:1:200:200", "-prompt", "100"},  // mix excludes -prompt
		{"-mix", "chat:1:200:200", "-trace", "x.csv"}, // mutually exclusive
		{"-trace", "/does/not/exist.csv"},
		{"-trace", "x.csv", "-rate", "2"},                         // trace fixes arrivals
		{"-trace", "x.csv", "-seed", "2"},                         // trace has no seed
		{"-rate", "2", "-slo-e2e-p95", "5"},                       // knee mode owns the rate
		{"-trace", "x.csv", "-slo-e2e-p95", "5"},                  // knee mode needs Poisson
		{"-min-rate", "1"},                                        // bracket without -slo-e2e-p95
		{"-max-rate", "4"},                                        // bracket without -slo-e2e-p95
		{"-slo-e2e-p95", "5", "-min-rate", "4", "-max-rate", "2"}, // inverted bracket
		{"-slo-e2e-p95", "-1"},                                    // non-positive SLO
	} {
		if err := cmdCluster(bad); err == nil {
			t.Errorf("args %v should fail", bad)
		}
	}
}

// TestCmdClusterFlagErrorsNameFlags pins the parity surface: rejected
// flag combinations must name the offending CLI flag, not a library field.
func TestCmdClusterFlagErrorsNameFlags(t *testing.T) {
	for _, tc := range []struct {
		args []string
		flag string
	}{
		{[]string{"-page-tokens", "16"}, "-page-tokens"},
		{[]string{"-no-preempt"}, "-no-preempt"},
		{[]string{"-prefill-devices", "1"}, "-prefill-devices"},
		{[]string{"-decode-devices", "1"}, "-decode-devices"},
		{[]string{"-transfer-gbps", "50"}, "-transfer-gbps"},
		{[]string{"-replicas", "0"}, "-replicas"},
		{[]string{"-rate", "2", "-slo-e2e-p95", "5"}, "-rate"},
		{[]string{"-min-rate", "1"}, "-slo-e2e-p95"},
		{[]string{"-knee-probes", "3"}, "-slo-e2e-p95"},
		{[]string{"-prefix", "64"}, "-prefix"},
		{[]string{"-kv-host-gb", "4"}, "-kv-host-gb"},
		{[]string{"-policy", "paged", "-swap-gbps", "32"}, "-kv-host-gb"},
		{[]string{"-policy", "paged", "-no-preempt", "-prefix", "64"}, "-prefix"},
		{[]string{"-policy", "paged", "-prefix", "64", "-mix", "a:1:100:50"}, "-prefix"},
		{[]string{"-schedule", "0-10:2", "-rate", "3"}, "-schedule"},
		{[]string{"-trace", "x.csv", "-schedule", "0-10:2"}, "-schedule"},
		{[]string{"-trace", "x.csv", "-turns", "3"}, "-turns"},
		{[]string{"-trace", "x.csv", "-think", "1"}, "-think"},
		{[]string{"-schedule", "0-10:2", "-slo-e2e-p95", "5"}, "-schedule"},
	} {
		err := cmdCluster(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("args %v: error should name %s, got: %v", tc.args, tc.flag, err)
		}
	}
}

// TestCmdClusterKnee drives the saturation analyzer end to end through
// the CLI in every output format.
func TestCmdClusterKnee(t *testing.T) {
	args := []string{"-replicas", "2", "-max-batch", "4", "-requests", "32",
		"-slo-e2e-p95", "12", "-min-rate", "0.5", "-max-rate", "6"}
	for _, format := range []string{"text", "csv", "json"} {
		if err := cmdCluster(append(args, "-format", format)); err != nil {
			t.Fatalf("knee mode format %s: %v", format, err)
		}
	}
	if err := cmdCluster(append(args, "-knee-probes", "3")); err != nil {
		t.Fatalf("starved probe budget: %v", err)
	}
}

// TestCmdClusterTrace exercises the -trace flag end to end.
func TestCmdClusterTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	data := "arrival,tenant,prompt,gen\n0,chat,100,40\n0.2,batch,700,60\n0.4,chat,120,30\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "csv", "json"} {
		if err := cmdCluster([]string{"-replicas", "2", "-trace", path, "-format", format}); err != nil {
			t.Fatalf("-trace %s format %s: %v", path, format, err)
		}
	}
}

// clusterResult runs a small two-replica fleet for the encoder tests.
func clusterResult(t *testing.T) (optimus.ClusterSpec, optimus.ClusterResult) {
	t.Helper()
	sys, err := optimus.NewSystem("h100", 1, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	spec := optimus.ClusterSpec{
		Replicas: []optimus.ClusterReplica{{
			Spec:  optimus.ServeSpec{Model: cfg, System: sys, TP: 1, Precision: optimus.FP16},
			Count: 2,
		}},
		Routing:      optimus.RoundRobinRouting,
		PromptTokens: 200, GenTokens: 150,
		Rate: 2, Requests: 24, Seed: 1,
	}
	res, err := optimus.ServeCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	return spec, res
}

// clusterCSVHeader is the golden per-request CSV schema: the serve columns
// plus the routed replica index.
var clusterCSVHeader = []string{"id", "replica", "tenant", "prompt", "gen",
	"arrival_s", "admitted_s", "first_token_s", "done_s",
	"queue_s", "ttft_s", "tpot_s", "e2e_s", "preemptions",
	"kv_transfers", "kv_transfer_s"}

// TestWriteClusterCSVGolden: every rendered per-request field must parse
// back to the in-memory fleet result, including the replica assignment.
func TestWriteClusterCSVGolden(t *testing.T) {
	spec, res := clusterResult(t)
	var b strings.Builder
	if err := writeCluster(&b, spec, res, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(recs[0], clusterCSVHeader) {
		t.Fatalf("header = %v, want %v", recs[0], clusterCSVHeader)
	}
	if len(recs) != len(res.PerRequest)+1 {
		t.Fatalf("CSV has %d records, want %d", len(recs), len(res.PerRequest)+1)
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	replicas := map[string]bool{}
	for i, m := range res.PerRequest {
		rec := recs[i+1]
		replicas[rec[1]] = true
		want := []string{
			strconv.Itoa(m.ID), strconv.Itoa(m.Replica), m.Tenant,
			strconv.Itoa(m.PromptTokens), strconv.Itoa(m.GenTokens),
			g(m.Arrival), g(m.Admitted), g(m.FirstToken), g(m.Done),
			g(m.Queue), g(m.TTFT), g(m.TPOT), g(m.E2E),
			strconv.Itoa(m.Preemptions),
			strconv.Itoa(m.KVTransfers), g(m.KVTransferTime),
		}
		if !slices.Equal(rec, want) {
			t.Fatalf("row %d = %v, want %v", i, rec, want)
		}
	}
	if !replicas["0"] || !replicas["1"] {
		t.Errorf("round-robin CSV should carry both replicas, saw %v", replicas)
	}
}

// TestWriteClusterTextGolden: the text rendering must carry the fleet
// header, the SLO table and one row per replica.
func TestWriteClusterTextGolden(t *testing.T) {
	spec, res := clusterResult(t)
	var b strings.Builder
	if err := writeCluster(&b, spec, res, "text"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"2 replicas", "round-robin routing", "ttft", "tpot", "e2e", "queue", "replica",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteClusterJSONRoundTrip: the JSON document must be a
// ClusterResult that round-trips the fleet percentiles and per-replica
// shares losslessly.
func TestWriteClusterJSONRoundTrip(t *testing.T) {
	spec, res := clusterResult(t)
	var b strings.Builder
	if err := writeCluster(&b, spec, res, "json"); err != nil {
		t.Fatal(err)
	}
	var doc optimus.ClusterResult
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Replicas != res.Replicas || doc.Routing != res.Routing || doc.Requests != res.Requests {
		t.Errorf("fleet shape did not round-trip: %+v vs %+v", doc, res)
	}
	if doc.E2E != res.E2E || doc.TTFT != res.TTFT {
		t.Errorf("fleet percentiles did not round-trip")
	}
	if len(doc.PerReplica) != len(res.PerReplica) {
		t.Fatalf("per-replica shares lost: %d vs %d", len(doc.PerReplica), len(res.PerReplica))
	}
	for i, rr := range doc.PerReplica {
		if rr.Assigned != res.PerReplica[i].Assigned {
			t.Errorf("replica %d assignment did not round-trip", i)
		}
	}
}

// kneeResult bisects a small constrained fleet for the encoder tests.
func kneeResult(t *testing.T) (optimus.ClusterSpec, optimus.ClusterKnee) {
	t.Helper()
	spec, _ := clusterResult(t)
	spec.Replicas[0].Spec.MaxBatch = 4
	spec.Rate = 0
	spec.Requests = 32
	knee, err := optimus.FindClusterKnee(optimus.ClusterKneeSpec{
		Cluster: spec, SLOE2EP95: 8, MinRate: 0.5, MaxRate: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec, knee
}

// kneeCSVHeader is the golden probe-transcript CSV schema.
var kneeCSVHeader = []string{"probe", "rate_per_sec", "p95_e2e_s", "meets_slo"}

// TestWriteKneeGolden: the probe transcript must render one CSV row per
// probe with fields that parse back to the bisection's values, and the
// JSON document must round-trip the knee.
func TestWriteKneeGolden(t *testing.T) {
	spec, knee := kneeResult(t)
	var b strings.Builder
	if err := writeKnee(&b, spec, knee, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(recs[0], kneeCSVHeader) {
		t.Fatalf("header = %v, want %v", recs[0], kneeCSVHeader)
	}
	if len(recs) != len(knee.Probes)+1 {
		t.Fatalf("CSV has %d records, want %d probes + header", len(recs), len(knee.Probes))
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, pr := range knee.Probes {
		want := []string{strconv.Itoa(i), g(pr.Rate), g(pr.P95E2E), strconv.FormatBool(pr.OK)}
		if !slices.Equal(recs[i+1], want) {
			t.Fatalf("probe row %d = %v, want %v", i, recs[i+1], want)
		}
	}

	var j strings.Builder
	if err := writeKnee(&j, spec, knee, "json"); err != nil {
		t.Fatal(err)
	}
	var doc optimus.ClusterKnee
	if err := json.Unmarshal([]byte(j.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Rate != knee.Rate || doc.Saturated != knee.Saturated || len(doc.Probes) != len(knee.Probes) {
		t.Errorf("knee did not round-trip: %+v vs %+v", doc, knee)
	}

	var txt strings.Builder
	if err := writeKnee(&txt, spec, knee, "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "saturation knee") {
		t.Errorf("text knee output missing header:\n%s", txt.String())
	}
	if !knee.Converged {
		t.Fatalf("the default probe budget must converge: %+v", knee)
	}
	if strings.Contains(txt.String(), "LOOSE") {
		t.Errorf("converged knee text warns LOOSE:\n%s", txt.String())
	}
	if doc.Converged != knee.Converged || doc.BracketWidth != knee.BracketWidth {
		t.Errorf("convergence fields did not round-trip: %+v vs %+v", doc, knee)
	}
}

// TestWriteKneeLoose: a starved probe budget must be visible in the text
// output — the satellite bugfix's CLI surface (-knee-probes).
func TestWriteKneeLoose(t *testing.T) {
	spec, _ := clusterResult(t)
	spec.Replicas[0].Spec.MaxBatch = 4
	spec.Rate = 0
	spec.Requests = 64
	knee, err := optimus.FindClusterKnee(optimus.ClusterKneeSpec{
		Cluster: spec, SLOE2EP95: 8, MinRate: 0.5, MaxRate: 16,
		Tolerance: 0.01, MaxProbes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !knee.Saturated {
		t.Fatalf("the bracket must saturate: %+v", knee)
	}
	if knee.Converged {
		t.Fatalf("3 probes cannot reach a 1%% bracket on [0.5, 16]: %+v", knee)
	}
	var txt strings.Builder
	if err := writeKnee(&txt, spec, knee, "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "LOOSE") {
		t.Errorf("starved knee text must warn LOOSE:\n%s", txt.String())
	}
}
