package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"optimus"
	"optimus/internal/tech"
	"optimus/internal/units"
)

// cmdSweep evaluates a cross-product experiment grid with the concurrent
// plan-sweep engine (§5.1 scaled out: models × systems × precisions ×
// batches × mappings × schedules × recompute regimes).
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workload := fs.String("workload", "train", "workload (train|infer|serve)")
	models := fs.String("models", "gpt-175b", "comma-separated model presets")
	devices := fs.String("devices", "a100", "comma-separated device presets")
	gpus := fs.String("gpus", "64", "comma-separated device counts")
	intra := fs.String("intra", "nvlink3", "intra-node fabric")
	inter := fs.String("inter", "hdr", "inter-node fabric")
	batches := fs.String("batches", "", "comma-separated global batch sizes (default 64; infer: 1)")
	seqs := fs.String("seqs", "", "comma-separated sequence lengths (default 2048; infer: prompt 200)")
	gens := fs.String("gen", "", "comma-separated generated-token counts (infer/serve, default 200)")
	rates := fs.String("rates", "", "comma-separated Poisson arrival rates in req/s (serve only, default 1)")
	schedules := fs.String("schedules", "", "semicolon-separated piecewise arrival-rate schedules, each start-end:rate[,...] in seconds and req/s (serve only; replaces -rates)")
	turnsFlag := fs.String("turns", "", "comma-separated session-cohort turn counts to compare (serve only; entries above 1 need a paged entry in -policies)")
	think := fs.Float64("think", 0, "think time between a session's turns in seconds (serve only; needs a -turns entry above 1)")
	caps := fs.String("batch-caps", "", "comma-separated iteration batch caps (serve only, default 0 = derive)")
	mixes := fs.String("mix", "", "semicolon-separated multi-tenant mixes, each tenant:share:prompt[~sigma]:gen[~sigma][,...] (serve only; replaces -seqs/-gen)")
	trace := fs.String("trace", "", "CSV trace file to replay per candidate (serve only; replaces -rates/-seqs/-gen)")
	serveReqs := fs.Int("serve-requests", 0, "simulated requests per serving candidate (serve only, default 128)")
	serveSeed := fs.Int64("serve-seed", 0, "arrival seed per serving candidate (serve only, default 1)")
	policies := fs.String("policies", "", "comma-separated KV admission policies to compare (reserve|paged|disagg; serve only, default reserve)")
	pageTokens := fs.Int("page-tokens", 0, "paged/disagg KV block size in tokens (serve only, default 16)")
	prefillDevices := fs.String("prefill-devices", "", "comma-separated disagg prefill-pool device counts, zipped with -decode-devices into pool-split axis values (serve -policies disagg only)")
	decodeDevices := fs.String("decode-devices", "", "comma-separated disagg decode-pool device counts, zipped with -prefill-devices (serve -policies disagg only)")
	transferGBps := fs.Float64("transfer-gbps", 0, "disagg KV-transfer interconnect bandwidth in GB/s (serve only, 0 = default 50, Inf = free)")
	prefixesFlag := fs.String("prefix", "", "comma-separated shared prompt-prefix token counts to compare (serve -policies paged only; replaces per-request prefixes)")
	hostKVGBs := fs.String("kv-host-gb", "", "comma-separated host KV tier capacities in GB to compare (serve -policies paged only; 0 = recompute-only)")
	swapGBps := fs.Float64("swap-gbps", 0, "GPU-host KV swap-link bandwidth in GB/s (serve only, 0 = default 32; needs -kv-host-gb)")
	replicasFlag := fs.String("replicas", "", "comma-separated fleet sizes to compare (serve only; 0 = plain single instance)")
	routings := fs.String("routings", "", "comma-separated cluster routing policies to compare (round-robin|least-queue|least-kv|tenant-affinity; serve only, needs a positive -replicas entry)")
	precs := fs.String("precisions", "", "comma-separated GEMM precisions (default bf16; infer fp16)")
	micros := fs.String("microbatches", "", "comma-separated microbatch sizes (train only, default 1,2,4)")
	recs := fs.String("recomputes", "", "comma-separated recompute regimes (train only, default none,selective,full)")
	maxTP := fs.Int("max-tp", 0, "tensor-parallel cap (train only, 0 = node size)")
	overflow := fs.Bool("allow-overflow", false, "also rank memory-overflowing candidates")
	topK := fs.Int("top", 20, "rows to keep")
	workers := fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	serial := fs.Bool("serial", false, "use the serial reference path instead of the engine")
	cache := fs.String("cache", "", "persist the memoization cache to this JSON file (load on start, save on exit)")
	format := fs.String("format", "text", "output format (text|csv|json)")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	switch *format {
	case "text", "csv", "json":
	default:
		// Checked before the sweep runs: a typo must not cost a full
		// grid evaluation.
		return fmt.Errorf("unknown format %q (text|csv|json)", *format)
	}

	spec := optimus.SweepSpec{
		Constraints: optimus.PlanConstraints{
			MaxTP: *maxTP, AllowOverflow: *overflow, TopK: *topK,
		},
		Workers: *workers,
	}
	switch *workload {
	case "train", "training":
		spec.Workload = optimus.TrainingSweep
	case "infer", "inference":
		spec.Workload = optimus.InferenceSweep
	case "serve", "serving":
		spec.Workload = optimus.ServingSweep
	default:
		return fmt.Errorf("unknown workload %q (train|infer|serve)", *workload)
	}
	if spec.Workload != optimus.TrainingSweep {
		// Inference and serving maps are fixed to TP = device count
		// (§1.3), so the training-only axes would be silently ignored —
		// reject instead.
		if *maxTP != 0 || *micros != "" || *recs != "" {
			return fmt.Errorf("-max-tp, -microbatches and -recomputes apply to training sweeps only")
		}
	}
	if spec.Workload != optimus.ServingSweep {
		if *rates != "" || *caps != "" || *serveReqs != 0 || *serveSeed != 0 {
			return fmt.Errorf("-rates, -batch-caps, -serve-requests and -serve-seed apply to serving sweeps only")
		}
		if *schedules != "" || *turnsFlag != "" || *think != 0 {
			return fmt.Errorf("-schedules, -turns and -think apply to serving sweeps only")
		}
		if *policies != "" || *pageTokens != 0 {
			return fmt.Errorf("-policies and -page-tokens apply to serving sweeps only")
		}
		if *prefillDevices != "" || *decodeDevices != "" || *transferGBps != 0 {
			return fmt.Errorf("-prefill-devices, -decode-devices and -transfer-gbps apply to serving sweeps only")
		}
		if *prefixesFlag != "" || *hostKVGBs != "" || *swapGBps != 0 {
			return fmt.Errorf("-prefix, -kv-host-gb and -swap-gbps apply to serving sweeps only")
		}
		if *mixes != "" || *trace != "" {
			return fmt.Errorf("-mix and -trace apply to serving sweeps only")
		}
		if *replicasFlag != "" || *routings != "" {
			return fmt.Errorf("-replicas and -routings apply to serving sweeps only")
		}
	} else if *batches != "" {
		return fmt.Errorf("-batches does not apply to serving sweeps (use -batch-caps)")
	}
	// Reject flag combinations no candidate on the grid would read, naming
	// the flags — the same parity surface as optimus serve, ahead of the
	// library's field-named validation.
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *mixes != "" && *trace != "" {
		return fmt.Errorf("-mix and -trace are mutually exclusive")
	}
	if *trace != "" {
		for _, f := range []string{"rates", "seqs", "gen", "prefix", "serve-requests", "serve-seed", "schedules", "turns", "think"} {
			if set[f] {
				return fmt.Errorf("-%s does not apply when replaying a trace (-trace fixes arrivals and request shapes)", f)
			}
		}
	}
	if set["schedules"] && set["rates"] {
		return fmt.Errorf("-schedules and -rates both fix the arrival rate (set exactly one axis)")
	}
	if *mixes != "" && (set["seqs"] || set["gen"]) {
		return fmt.Errorf("-seqs and -gen describe the single-tenant workload (use the per-tenant lengths in -mix)")
	}
	if *mixes != "" && set["prefix"] {
		return fmt.Errorf("-prefix describes the single-tenant workload (use the per-tenant prefix field in -mix)")
	}
	for _, m := range strings.Split(*mixes, ";") {
		if m = strings.TrimSpace(m); m == "" {
			continue
		}
		mix, merr := optimus.ParseServeMix(m)
		if merr != nil {
			return merr
		}
		spec.Mixes = append(spec.Mixes, mix)
	}
	if *trace != "" {
		tr, terr := loadTrace(*trace)
		if terr != nil {
			return terr
		}
		spec.Trace = tr
	}
	for _, name := range splitList(*policies) {
		pol, polErr := optimus.ParseServePolicy(name)
		if polErr != nil {
			return polErr
		}
		spec.Policies = append(spec.Policies, pol)
	}
	// Policy knobs only some -policies entries read: reject the combos
	// where every listed policy would silently ignore the knob.
	hasPaged, hasStrictPaged, hasDisagg := false, false, false
	for _, pol := range spec.Policies {
		hasPaged = hasPaged || pol == optimus.PagedPolicy || pol == optimus.DisaggregatedPolicy
		hasStrictPaged = hasStrictPaged || pol == optimus.PagedPolicy
		hasDisagg = hasDisagg || pol == optimus.DisaggregatedPolicy
	}
	if set["page-tokens"] && !hasPaged {
		return fmt.Errorf("-page-tokens needs a paged or disagg entry in -policies (every listed policy ignores it)")
	}
	if !hasDisagg {
		for _, f := range []string{"prefill-devices", "decode-devices", "transfer-gbps"} {
			if set[f] {
				return fmt.Errorf("-%s needs a disagg entry in -policies (every listed policy ignores it)", f)
			}
		}
	}
	// The prefix cache and host KV tier live on the paged policy's
	// preemption machinery — disagg preempts against its decode pool but
	// carries neither.
	if !hasStrictPaged {
		for _, f := range []string{"prefix", "kv-host-gb", "swap-gbps"} {
			if set[f] {
				return fmt.Errorf("-%s needs a paged entry in -policies (every listed policy ignores it)", f)
			}
		}
	}
	if set["swap-gbps"] && !set["kv-host-gb"] {
		return fmt.Errorf("-swap-gbps prices the host KV tier's swap link (set -kv-host-gb)")
	}
	spec.ServePageTokens = *pageTokens
	// The pool-split axis zips -prefill-devices with -decode-devices:
	// entry i of each list forms one split, so "2,4" + "6,4" compares a
	// 2+6 split against a 4+4 one.
	prefills, err := splitInts(*prefillDevices)
	if err != nil {
		return fmt.Errorf("-prefill-devices: %w", err)
	}
	decodes, err := splitInts(*decodeDevices)
	if err != nil {
		return fmt.Errorf("-decode-devices: %w", err)
	}
	if len(prefills) != len(decodes) {
		return fmt.Errorf("-prefill-devices and -decode-devices must zip: got %d vs %d entries", len(prefills), len(decodes))
	}
	for i := range prefills {
		spec.PoolSplits = append(spec.PoolSplits, optimus.SweepPoolSplit{Prefill: prefills[i], Decode: decodes[i]})
	}
	spec.TransferGBps = *transferGBps
	if spec.PrefixTokens, err = splitInts(*prefixesFlag); err != nil {
		return fmt.Errorf("-prefix: %w", err)
	}
	hostGBs, err := splitFloats(*hostKVGBs)
	if err != nil {
		return fmt.Errorf("-kv-host-gb: %w", err)
	}
	for _, gb := range hostGBs {
		spec.HostKVBytes = append(spec.HostKVBytes, gb*1e9)
	}
	spec.SwapGBps = *swapGBps
	if spec.Replicas, err = splitInts(*replicasFlag); err != nil {
		return fmt.Errorf("-replicas: %w", err)
	}
	for _, name := range splitList(*routings) {
		rt, rtErr := optimus.ParseClusterRouting(name)
		if rtErr != nil {
			return rtErr
		}
		spec.Routings = append(spec.Routings, rt)
	}
	if len(spec.Routings) > 0 {
		fleet := false
		for _, r := range spec.Replicas {
			fleet = fleet || r > 0
		}
		if !fleet {
			return fmt.Errorf("-routings needs a positive fleet size in -replicas (a fleet of one routes identically under every policy)")
		}
	}

	for _, name := range splitList(*models) {
		cfg, cfgErr := optimus.ModelByName(name)
		if cfgErr != nil {
			return cfgErr
		}
		spec.Models = append(spec.Models, cfg)
	}
	counts, err := splitInts(*gpus)
	if err != nil {
		return fmt.Errorf("-gpus: %w", err)
	}
	for _, dev := range splitList(*devices) {
		for _, n := range counts {
			sys, sysErr := optimus.NewSystem(dev, n, *intra, *inter)
			if sysErr != nil {
				return sysErr
			}
			spec.Systems = append(spec.Systems, sys)
		}
	}
	if spec.GlobalBatches, err = splitInts(*batches); err != nil {
		return fmt.Errorf("-batches: %w", err)
	}
	if spec.Seqs, err = splitInts(*seqs); err != nil {
		return fmt.Errorf("-seqs: %w", err)
	}
	if spec.GenTokens, err = splitInts(*gens); err != nil {
		return fmt.Errorf("-gen: %w", err)
	}
	if spec.Rates, err = splitFloats(*rates); err != nil {
		return fmt.Errorf("-rates: %w", err)
	}
	// Schedules are semicolon-separated at the flag level because each
	// schedule's segments are themselves comma-separated.
	for _, sch := range strings.Split(*schedules, ";") {
		if sch = strings.TrimSpace(sch); sch == "" {
			continue
		}
		parsed, schErr := optimus.ParseServeSchedule(sch)
		if schErr != nil {
			return schErr
		}
		spec.Schedules = append(spec.Schedules, parsed)
	}
	if spec.Turns, err = splitInts(*turnsFlag); err != nil {
		return fmt.Errorf("-turns: %w", err)
	}
	spec.Think = *think
	if spec.BatchCaps, err = splitInts(*caps); err != nil {
		return fmt.Errorf("-batch-caps: %w", err)
	}
	spec.ServeRequests = *serveReqs
	spec.ServeSeed = *serveSeed
	if spec.Constraints.Microbatches, err = splitInts(*micros); err != nil {
		return fmt.Errorf("-microbatches: %w", err)
	}
	for _, p := range splitList(*precs) {
		prec, precErr := tech.ParsePrecision(p)
		if precErr != nil {
			return precErr
		}
		spec.Precisions = append(spec.Precisions, prec)
	}
	for _, r := range splitList(*recs) {
		rec, recErr := parseRecompute(r)
		if recErr != nil {
			return recErr
		}
		spec.Constraints.Recomputes = append(spec.Constraints.Recomputes, rec)
	}

	var res optimus.SweepResult
	if *serial {
		if *cache != "" {
			return fmt.Errorf("-cache needs the engine path (drop -serial)")
		}
		res, err = optimus.SweepSerial(spec)
	} else {
		eng := optimus.NewSweepEngine(*workers)
		if *cache != "" {
			if err := eng.LoadCacheFile(*cache); err != nil {
				return err
			}
		}
		res, err = eng.Run(context.Background(), spec)
		if err == nil && *cache != "" {
			err = eng.SaveCacheFile(*cache)
		}
	}
	if err != nil {
		return err
	}
	return writeSweep(os.Stdout, res, spec.Workload, *format)
}

// splitFloats parses a comma-separated float flag.
func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// splitList parses a comma-separated flag, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// splitInts parses a comma-separated integer flag.
func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// sweepRecord flattens one ranked row for the CSV and JSON encoders.
type sweepRecord struct {
	Rank       int     `json:"rank"`
	Model      string  `json:"model"`
	System     string  `json:"system"`
	Mapping    string  `json:"mapping"`
	Microbatch int     `json:"microbatch"`
	Recompute  string  `json:"recompute"`
	Precision  string  `json:"precision"`
	Batch      int     `json:"batch"`
	Seq        int     `json:"seq"`
	Gen        int     `json:"gen_tokens,omitempty"`
	Seconds    float64 `json:"seconds"`
	MFU        float64 `json:"mfu"`
	MemoryGB   float64 `json:"memory_gb"`
	Fits       bool    `json:"fits"`

	// Serving-only SLO columns (zero elsewhere).
	Rate         float64 `json:"rate_per_sec,omitempty"`
	TTFTP95      float64 `json:"ttft_p95_s,omitempty"`
	TPOTP95      float64 `json:"tpot_p95_s,omitempty"`
	TokensPerSec float64 `json:"tokens_per_sec,omitempty"`
	// Serving-only admission-pressure columns (zero elsewhere).
	Preemptions      int     `json:"preemptions,omitempty"`
	RecomputedTokens int     `json:"recomputed_tokens,omitempty"`
	KVUtil           float64 `json:"kv_util,omitempty"`
	// Serving-only disaggregated-pool columns (zero elsewhere): the pool
	// split and the KV migrations it cost. The transfer bandwidth itself
	// rides in the policy token (it may be +Inf, which JSON cannot carry).
	PrefillDevices int     `json:"prefill_devices,omitempty"`
	DecodeDevices  int     `json:"decode_devices,omitempty"`
	KVTransfers    int     `json:"kv_transfers,omitempty"`
	TransferTime   float64 `json:"transfer_time_s,omitempty"`
	// Serving-only prefix-cache and host-KV-tier columns (zero elsewhere):
	// the candidate's shared prefix length and host tier capacity, and the
	// cache hits, saved prefill tokens and swap traffic they produced. The
	// swap bandwidth rides in the policy token (it may be +Inf, which JSON
	// cannot carry).
	PrefixTokens      int     `json:"prefix_tokens,omitempty"`
	PrefixHits        int     `json:"prefix_hits,omitempty"`
	PrefixSavedTokens int     `json:"prefix_saved_tokens,omitempty"`
	HostKVGB          float64 `json:"host_kv_gb,omitempty"`
	KVSwapOuts        int     `json:"kv_swap_outs,omitempty"`
	KVSwapIns         int     `json:"kv_swap_ins,omitempty"`
	SwapTime          float64 `json:"swap_time_s,omitempty"`
	// Serving-only fleet columns (zero for single-instance candidates):
	// the replica count and routing policy of a cluster candidate.
	Replicas int    `json:"replicas,omitempty"`
	Routing  string `json:"routing,omitempty"`
	// Serving-only workload-shape columns: the candidate's mix (or trace
	// label) and its per-tenant SLO breakdown.
	Mix       string                   `json:"mix,omitempty"`
	PerTenant []optimus.SweepTenantSLO `json:"per_tenant,omitempty"`
}

func sweepRecords(res optimus.SweepResult) []sweepRecord {
	out := make([]sweepRecord, len(res.Rows))
	for i, row := range res.Rows {
		mem := row.Metrics.Memory.Total()
		if row.Point.Workload != optimus.TrainingSweep {
			mem = row.Metrics.Footprint.Total()
		}
		rec := sweepRecord{
			Rank:       i + 1,
			Model:      row.Point.Model.Name,
			System:     row.Point.System.String(),
			Mapping:    row.Point.Map.String(),
			Microbatch: row.Point.Map.Microbatch,
			Recompute:  row.Point.Recompute.String(),
			Precision:  row.Point.Precision.String(),
			Batch:      row.Point.GlobalBatch,
			Seq:        row.Point.Seq,
			Gen:        row.Point.GenTokens,
			Seconds:    row.Metrics.Time,
			MFU:        row.Metrics.MFU,
			MemoryGB:   mem / 1e9,
			Fits:       row.Metrics.Fits,
		}
		if row.Point.Workload == optimus.ServingSweep {
			// The serving "mapping" token carries the whole admission
			// policy; its commas are why the CSV writer must quote.
			rec.Mapping = servingMappingToken(row.Point)
			rec.Rate = row.Point.Rate
			rec.TTFTP95 = row.Metrics.TTFTP95
			rec.TPOTP95 = row.Metrics.TPOTP95
			rec.TokensPerSec = row.Metrics.TokensPerSec
			rec.Preemptions = row.Metrics.Preemptions
			rec.RecomputedTokens = row.Metrics.RecomputedTokens
			rec.KVUtil = row.Metrics.KVUtil
			rec.PrefillDevices = row.Point.PrefillDevices
			rec.DecodeDevices = row.Point.DecodeDevices
			rec.KVTransfers = row.Metrics.KVTransfers
			rec.TransferTime = row.Metrics.TransferTime
			rec.PrefixTokens = row.Point.PrefixTokens
			rec.PrefixHits = row.Metrics.PrefixHits
			rec.PrefixSavedTokens = row.Metrics.PrefixSavedTokens
			rec.HostKVGB = row.Point.HostKVBytes / 1e9
			rec.KVSwapOuts = row.Metrics.KVSwapOuts
			rec.KVSwapIns = row.Metrics.KVSwapIns
			rec.SwapTime = row.Metrics.SwapTime
			if row.Point.Replicas > 0 {
				rec.Replicas = row.Point.Replicas
				rec.Routing = row.Point.Routing.String()
			}
			rec.Mix = servingWorkloadLabel(row.Point)
			rec.PerTenant = row.Metrics.PerTenant
		}
		out[i] = rec
	}
	return out
}

// servingMappingToken renders a serving candidate's policy — TP degree,
// admission policy (with the paged block size, and the pool split and
// transfer bandwidth for disaggregated candidates), arrival rate and
// batch cap — as one comma-separated token.
func servingMappingToken(p optimus.SweepPoint) string {
	cap := "auto"
	if p.BatchCap > 0 {
		cap = strconv.Itoa(p.BatchCap)
	}
	pol := p.Policy.String()
	switch p.Policy {
	case optimus.PagedPolicy:
		pol = fmt.Sprintf("paged/%d", p.PageTokens)
		if p.PrefixTokens > 0 {
			pol += fmt.Sprintf(",pfx=%d", p.PrefixTokens)
		}
		if p.HostKVBytes > 0 {
			pol += fmt.Sprintf(",host=%gGB,swap=%gGB/s", p.HostKVBytes/1e9, p.SwapGBps)
		}
	case optimus.DisaggregatedPolicy:
		pol = fmt.Sprintf("disagg/%d,split=%d+%d,xfer=%gGB/s",
			p.PageTokens, p.PrefillDevices, p.DecodeDevices, p.TransferGBps)
	}
	arr := fmt.Sprintf("rate=%g/s", p.Rate)
	if len(p.Schedule) > 0 {
		arr = "sched=" + optimus.FormatServeSchedule(p.Schedule)
	}
	tok := fmt.Sprintf("tp=%d,%s,%s,cap=%s", p.Map.TP, pol, arr, cap)
	if p.Turns > 1 {
		tok += fmt.Sprintf(",turns=%d", p.Turns)
		if p.Think > 0 {
			tok += fmt.Sprintf(",think=%gs", p.Think)
		}
	}
	if p.Replicas > 0 {
		tok += fmt.Sprintf(",fleet=%dx%v", p.Replicas, p.Routing)
	}
	return tok
}

// servingWorkloadLabel renders a serving candidate's request-shape
// workload: its mix in ParseServeMix syntax, a trace label, or "" for
// spec-wide shapes (which the seq/gen columns already carry).
func servingWorkloadLabel(p optimus.SweepPoint) string {
	switch {
	case len(p.Trace) > 0:
		return fmt.Sprintf("trace(%d)", len(p.Trace))
	case len(p.Mix) > 0:
		return optimus.FormatServeMix(p.Mix)
	default:
		return ""
	}
}

// tenantSLOToken renders the per-tenant SLO breakdown as one CSV field:
// semicolon-separated "tenant:req=N:e2e_p95=V" entries.
func tenantSLOToken(slos []optimus.SweepTenantSLO) string {
	if len(slos) == 0 {
		return ""
	}
	parts := make([]string, len(slos))
	for i, t := range slos {
		parts[i] = fmt.Sprintf("%s:req=%d:e2e_p95=%s", t.Tenant, t.Requests,
			strconv.FormatFloat(t.E2EP95, 'g', -1, 64))
	}
	return strings.Join(parts, ";")
}

// sweepJSON is the -format json document shape.
type sweepJSON struct {
	Stats sweepStatsJSON `json:"stats"`
	Rows  []sweepRecord  `json:"rows"`
}

type sweepStatsJSON struct {
	Enumerated int   `json:"enumerated"`
	Pruned     int   `json:"pruned"`
	Evaluated  int   `json:"evaluated"`
	MemoHits   int   `json:"memo_hits"`
	Errors     int   `json:"errors"`
	Workers    int   `json:"workers"`
	ElapsedMS  int64 `json:"elapsed_ms"`
}

// writeSweep renders a ranked sweep in the chosen format.
func writeSweep(w io.Writer, res optimus.SweepResult, workload optimus.SweepWorkload, format string) error {
	recs := sweepRecords(res)
	switch format {
	case "text":
		fmt.Fprintf(w, "sweep: %s\n", res.Stats)
		if len(recs) == 0 {
			hint := "check batch divisibility and device counts, or try -allow-overflow"
			if workload != optimus.TrainingSweep {
				hint = "inference and serving use TP = device count, so the model's head count must be divisible by -gpus"
			}
			fmt.Fprintf(w, "  no feasible candidates — %s\n", hint)
			return nil
		}
		if workload == optimus.ServingSweep {
			fmt.Fprintf(w, "  %4s %-12s %-34s %-32s %-5s %9s %10s %10s %10s %10s %8s %7s\n",
				"rank", "model", "system", "policy", "prec", "workload", "e2e-p95", "ttft-p95", "tpot-p95", "tok/s", "preempt", "kv-util")
			for _, r := range recs {
				shape := strconv.Itoa(r.Seq) + "+" + strconv.Itoa(r.Gen)
				if r.Mix != "" {
					// Trace labels ("trace(N)") print as-is; a long mix
					// rendering collapses to its tenant count — entries are
					// comma-separated, so count+1 is the mix size regardless
					// of which tenants happened to complete requests.
					shape = r.Mix
					if !strings.HasPrefix(shape, "trace(") && len(shape) > 12 {
						shape = fmt.Sprintf("mix(%d)", strings.Count(r.Mix, ",")+1)
					}
				}
				fmt.Fprintf(w, "  %4d %-12s %-34s %-32s %-5s %9s %10s %10s %10s %10.0f %8d %6.0f%%\n",
					r.Rank, r.Model, r.System, r.Mapping, r.Precision, shape,
					units.FormatSeconds(r.Seconds), units.FormatSeconds(r.TTFTP95),
					units.FormatSeconds(r.TPOTP95), r.TokensPerSec,
					r.Preemptions, 100*r.KVUtil)
			}
			if len(recs) > 0 && len(recs[0].PerTenant) > 1 {
				fmt.Fprintf(w, "  per-tenant e2e-p95 (rank 1): %s\n", tenantSLOToken(recs[0].PerTenant))
			}
			return nil
		}
		fmt.Fprintf(w, "  %4s %-12s %-34s %-28s %3s %-10s %-5s %6s %9s %10s %6s %8s %5s\n",
			"rank", "model", "system", "mapping", "mb", "recompute", "prec", "batch", "seq+gen", "s", "MFU", "mem", "fits")
		for _, r := range recs {
			fits := "yes"
			if !r.Fits {
				fits = "NO"
			}
			tokens := strconv.Itoa(r.Seq)
			if r.Gen > 0 {
				tokens += "+" + strconv.Itoa(r.Gen)
			}
			fmt.Fprintf(w, "  %4d %-12s %-34s %-28s %3d %-10s %-5s %6d %9s %10s %5.0f%% %7.1fG %5s\n",
				r.Rank, r.Model, r.System, r.Mapping, r.Microbatch, r.Recompute, r.Precision,
				r.Batch, tokens, units.FormatSeconds(r.Seconds), 100*r.MFU, r.MemoryGB, fits)
		}
		return nil
	case "csv":
		// encoding/csv quotes fields containing commas (RFC 4180), which
		// the serving mapping tokens ("tp=8,rate=2/s,cap=auto") rely on;
		// TestWriteSweepCSVQuotesServingTokens pins that behavior.
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"rank", "model", "system", "mapping", "microbatch",
			"recompute", "precision", "batch", "seq", "gen", "seconds", "mfu", "memory_gb", "fits",
			"rate_per_sec", "ttft_p95_s", "tpot_p95_s", "tokens_per_sec",
			"preemptions", "recomputed_tokens", "kv_util",
			"prefill_devices", "decode_devices", "kv_transfers", "transfer_s",
			"prefix_tokens", "prefix_hits", "prefix_saved_tokens",
			"host_kv_gb", "kv_swap_outs", "kv_swap_ins", "swap_time_s",
			"replicas", "routing", "mix", "tenant_slos"}); err != nil {
			return err
		}
		g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		for _, r := range recs {
			if err := cw.Write([]string{
				strconv.Itoa(r.Rank), r.Model, r.System, r.Mapping, strconv.Itoa(r.Microbatch),
				r.Recompute, r.Precision, strconv.Itoa(r.Batch), strconv.Itoa(r.Seq), strconv.Itoa(r.Gen),
				g(r.Seconds), g(r.MFU), g(r.MemoryGB),
				strconv.FormatBool(r.Fits),
				g(r.Rate), g(r.TTFTP95), g(r.TPOTP95), g(r.TokensPerSec),
				strconv.Itoa(r.Preemptions), strconv.Itoa(r.RecomputedTokens), g(r.KVUtil),
				strconv.Itoa(r.PrefillDevices), strconv.Itoa(r.DecodeDevices),
				strconv.Itoa(r.KVTransfers), g(r.TransferTime),
				strconv.Itoa(r.PrefixTokens), strconv.Itoa(r.PrefixHits),
				strconv.Itoa(r.PrefixSavedTokens),
				g(r.HostKVGB), strconv.Itoa(r.KVSwapOuts),
				strconv.Itoa(r.KVSwapIns), g(r.SwapTime),
				strconv.Itoa(r.Replicas), r.Routing,
				r.Mix, tenantSLOToken(r.PerTenant),
			}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sweepJSON{
			Stats: sweepStatsJSON{
				Enumerated: res.Stats.Enumerated,
				Pruned:     res.Stats.Pruned,
				Evaluated:  res.Stats.Evaluated,
				MemoHits:   res.Stats.MemoHits,
				Errors:     res.Stats.Errors,
				Workers:    res.Stats.Workers,
				ElapsedMS:  res.Stats.Elapsed.Milliseconds(),
			},
			Rows: recs,
		})
	default:
		return fmt.Errorf("unknown format %q (text|csv|json)", format)
	}
}
