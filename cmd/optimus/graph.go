package main

import (
	"flag"
	"fmt"

	"optimus"
	"optimus/internal/arch"
	"optimus/internal/kernels"
	"optimus/internal/roofline"
	"optimus/internal/tech"
)

// cmdGraph emits the per-device forward task graph (Fig. 1) as DOT.
func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	modelName := fs.String("model", "llama2-13b", "model preset")
	device := fs.String("device", "a100", "device preset")
	layers := fs.Int("layers", 1, "transformer layers to chain")
	tp := fs.Int("tp", 1, "tensor-parallel degree")
	seq := fs.Int("seq", 200, "sequence length")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	dev, err := arch.DeviceByName(*device)
	if err != nil {
		return err
	}
	g, err := optimus.BuildTaskGraph(optimus.TaskGraphSpec{
		Model: cfg,
		Exec: kernels.Exec{
			Batch: 1, Seq: *seq, Context: *seq, TP: *tp,
			Precision: tech.FP16, Phase: kernels.Prefill,
		},
		Layers: *layers,
		Engine: roofline.New(dev),
		Link:   arch.IntraLink(tech.NVLink3),
	})
	if err != nil {
		return err
	}
	cp, _ := g.CriticalPath()
	fmt.Printf("// %s on %s: %d nodes, critical path %.2f ms, parallelism %.2f\n",
		cfg.Name, dev.Name, g.Len(), cp*1e3, g.Parallelism())
	fmt.Print(g.DOT(cfg.Name))
	return nil
}
