package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestProfilingFlagsWriteProfiles pins the shared -cpuprofile/-memprofile
// wiring: each simulation subcommand must leave a non-empty pprof file at
// the requested path once it returns.
func TestProfilingFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		run  func(args []string) error
		args []string
	}{
		{"serve", cmdServe, []string{"-rate", "2", "-requests", "16"}},
		{"cluster", cmdCluster, []string{"-replicas", "2", "-rate", "4", "-requests", "16"}},
		{"sweep", cmdSweep, []string{"-models", "llama2-13b", "-gpus", "2", "-workload", "inference"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cpu := filepath.Join(dir, tc.name+".cpu.pprof")
			mem := filepath.Join(dir, tc.name+".mem.pprof")
			args := append(tc.args, "-cpuprofile", cpu, "-memprofile", mem)
			if err := tc.run(args); err != nil {
				t.Fatal(err)
			}
			for _, p := range []string{cpu, mem} {
				st, err := os.Stat(p)
				if err != nil {
					t.Fatalf("profile not written: %v", err)
				}
				if st.Size() == 0 {
					t.Errorf("profile %s is empty", p)
				}
			}
		})
	}
}
