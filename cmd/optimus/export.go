package main

import (
	"flag"
	"fmt"
	"os"

	"optimus"
)

// cmdExport dumps a preset device in the external JSON format of §3.1, the
// starting point for describing new hardware to the model.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	device := fs.String("device", "a100", "device preset to export")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := optimus.DeviceByName(*device)
	if err != nil {
		return err
	}
	return optimus.WriteDeviceJSON(os.Stdout, d)
}

// loadDeviceFile reads a device description from a JSON file, used by the
// -device-file flags.
func loadDeviceFile(path string) (optimus.Device, error) {
	f, err := os.Open(path)
	if err != nil {
		return optimus.Device{}, fmt.Errorf("device file: %w", err)
	}
	defer f.Close()
	return optimus.ReadDeviceJSON(f)
}

// systemWithOverride builds a system from either a preset name or an
// external JSON device description (§3.1).
func systemWithOverride(preset, file string, n int, intra, inter string) (*optimus.System, error) {
	if file == "" {
		return optimus.NewSystem(preset, n, intra, inter)
	}
	dev, err := loadDeviceFile(file)
	if err != nil {
		return nil, err
	}
	sys, err := optimus.NewSystem("a100", n, intra, inter)
	if err != nil {
		return nil, err
	}
	sys.Device = dev
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}
