package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"optimus"
)

func TestCmdSweep(t *testing.T) {
	if err := cmdSweep([]string{"-models", "gpt-22b", "-gpus", "8", "-batches", "8", "-top", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-models", "gpt-22b", "-gpus", "8", "-batches", "8", "-serial", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-workload", "infer", "-models", "llama2-13b", "-devices", "h100",
		"-intra", "nvlink4", "-gpus", "1,2", "-batches", "1", "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{"-models", "no-such-model"},
		{"-devices", "warp-core"},
		{"-gpus", "eight"},
		{"-batches", "64;128"},
		{"-workload", "pretraining"},
		{"-precisions", "fp128"},
		{"-recomputes", "maybe"},
		{"-models", "gpt-22b", "-gpus", "8", "-batches", "8", "-format", "yaml"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-gen", "-5"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-max-tp", "2"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-recomputes", "full"},
	} {
		if err := cmdSweep(bad); err == nil {
			t.Errorf("args %v should fail", bad)
		}
	}
}

// sweepResult builds a small ranked result for the encoder tests.
func sweepResult(t *testing.T) optimus.SweepResult {
	t.Helper()
	cfg, err := optimus.ModelByName("gpt-22b")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optimus.NewSystem("a100", 8, "nvlink3", "hdr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Models: []optimus.Model{cfg}, Systems: []*optimus.System{sys},
		GlobalBatches: []int{8},
		Constraints:   optimus.PlanConstraints{TopK: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty sweep")
	}
	return res
}

func TestWriteSweepCSV(t *testing.T) {
	res := sweepResult(t)
	var b strings.Builder
	if err := writeSweep(&b, res, optimus.TrainingSweep, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(res.Rows)+1 {
		t.Fatalf("CSV has %d records, want %d rows + header", len(recs), len(res.Rows))
	}
	if recs[0][0] != "rank" || recs[1][0] != "1" {
		t.Errorf("unexpected CSV leader: %v / %v", recs[0], recs[1])
	}
}

func TestWriteSweepJSON(t *testing.T) {
	res := sweepResult(t)
	var b strings.Builder
	if err := writeSweep(&b, res, optimus.TrainingSweep, "json"); err != nil {
		t.Fatal(err)
	}
	var doc sweepJSON
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != len(res.Rows) {
		t.Fatalf("JSON has %d rows, want %d", len(doc.Rows), len(res.Rows))
	}
	if doc.Stats.Enumerated != res.Stats.Enumerated {
		t.Errorf("JSON stats enumerated %d, want %d", doc.Stats.Enumerated, res.Stats.Enumerated)
	}
	if doc.Rows[0].Rank != 1 || doc.Rows[0].Seconds <= 0 {
		t.Errorf("unexpected first JSON row: %+v", doc.Rows[0])
	}
}
