package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"optimus"
)

func TestCmdSweep(t *testing.T) {
	if err := cmdSweep([]string{"-models", "gpt-22b", "-gpus", "8", "-batches", "8", "-top", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-models", "gpt-22b", "-gpus", "8", "-batches", "8", "-serial", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-workload", "infer", "-models", "llama2-13b", "-devices", "h100",
		"-intra", "nvlink4", "-gpus", "1,2", "-batches", "1", "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-workload", "serve", "-models", "llama2-13b", "-devices", "h100",
		"-intra", "nvlink4", "-gpus", "1,2", "-rates", "0.5,2", "-batch-caps", "8",
		"-serve-requests", "32", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-workload", "serve", "-models", "llama2-13b", "-devices", "h100",
		"-intra", "nvlink4", "-gpus", "2", "-rates", "2", "-batch-caps", "0,16",
		"-policies", "reserve,paged", "-page-tokens", "32", "-serve-requests", "24"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-workload", "serve", "-models", "llama2-13b", "-devices", "h100",
		"-intra", "nvlink4", "-gpus", "1", "-rates", "1,3",
		"-mix", "chat:1:200:200;chat:0.7:200:200,batch:0.3:900:80",
		"-serve-requests", "24", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-policies", "fifo"},
		{"-workload", "train", "-models", "gpt-22b", "-gpus", "8", "-mix", "chat:1:200:200"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-trace", "x.csv"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-mix", "chat:0.7:200"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-mix", "chat:1:200:200", "-seqs", "100"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-trace", "/does/not/exist.csv"},
		{"-workload", "train", "-models", "gpt-22b", "-gpus", "8", "-policies", "paged"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-page-tokens", "16"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-page-tokens", "-4"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-policies", "reserve", "-page-tokens", "32"},
		{"-models", "no-such-model"},
		{"-devices", "warp-core"},
		{"-gpus", "eight"},
		{"-batches", "64;128"},
		{"-workload", "pretraining"},
		{"-precisions", "fp128"},
		{"-recomputes", "maybe"},
		{"-models", "gpt-22b", "-gpus", "8", "-batches", "8", "-format", "yaml"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-gen", "-5"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-max-tp", "2"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-recomputes", "full"},
		{"-workload", "train", "-models", "gpt-22b", "-gpus", "8", "-rates", "1"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-serve-requests", "8"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-batches", "4"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-rates", "zero"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-batch-caps", "four"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2", "-serial", "-cache", "x.json"},
	} {
		if err := cmdSweep(bad); err == nil {
			t.Errorf("args %v should fail", bad)
		}
	}
}

// TestCmdSweepCachePersistence: the -cache flag must write a snapshot on
// exit and serve the next invocation from it.
func TestCmdSweepCachePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	args := []string{"-models", "gpt-22b", "-gpus", "8", "-batches", "8", "-top", "3", "-cache", path}
	if err := cmdSweep(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("cache file not written: %v", err)
	}
	eng := optimus.NewSweepEngine(1)
	if err := eng.LoadCache(strings.NewReader(string(data))); err != nil {
		t.Fatalf("cache file not loadable: %v", err)
	}
	if eng.CacheSize() == 0 {
		t.Error("cache file holds no entries")
	}
	// Second run loads the same file; it must not error and must rewrite
	// the snapshot.
	if err := cmdSweep(args); err != nil {
		t.Fatal(err)
	}
}

// sweepResult builds a small ranked result for the encoder tests.
func sweepResult(t *testing.T) optimus.SweepResult {
	t.Helper()
	cfg, err := optimus.ModelByName("gpt-22b")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optimus.NewSystem("a100", 8, "nvlink3", "hdr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Models: []optimus.Model{cfg}, Systems: []*optimus.System{sys},
		GlobalBatches: []int{8},
		Constraints:   optimus.PlanConstraints{TopK: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty sweep")
	}
	return res
}

func TestWriteSweepCSV(t *testing.T) {
	res := sweepResult(t)
	var b strings.Builder
	if err := writeSweep(&b, res, optimus.TrainingSweep, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(res.Rows)+1 {
		t.Fatalf("CSV has %d records, want %d rows + header", len(recs), len(res.Rows))
	}
	if recs[0][0] != "rank" || recs[1][0] != "1" {
		t.Errorf("unexpected CSV leader: %v / %v", recs[0], recs[1])
	}
}

// servingSweepResult builds a small serving ranking for the encoder tests.
func servingSweepResult(t *testing.T) optimus.SweepResult {
	t.Helper()
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optimus.NewSystem("h100", 2, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload: optimus.ServingSweep,
		Models:   []optimus.Model{cfg}, Systems: []*optimus.System{sys},
		Rates: []float64{1.5}, BatchCaps: []int{8}, ServeRequests: 24,
		Constraints: optimus.PlanConstraints{TopK: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty serving sweep")
	}
	return res
}

// TestWriteSweepCSVQuotesServingTokens: the serving "mapping" token is
// comma-separated ("tp=2,rate=1.5/s,cap=8"), so the CSV writer must quote
// it — a naive comma join would shear the row. The parse-back must return
// the token intact and keep every record at header width.
func TestWriteSweepCSVQuotesServingTokens(t *testing.T) {
	res := servingSweepResult(t)
	var b strings.Builder
	if err := writeSweep(&b, res, optimus.ServingSweep, "csv"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"tp=2,reserve-full,rate=1.5/s,cap=8"`) {
		t.Errorf("serving mapping token must be quoted in CSV output:\n%s", out)
	}
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("CSV with serving tokens must stay parseable: %v", err)
	}
	width := len(recs[0])
	for i, rec := range recs {
		if len(rec) != width {
			t.Fatalf("record %d has %d fields, header has %d — comma leaked", i, len(rec), width)
		}
	}
	if got := recs[1][3]; got != "tp=2,reserve-full,rate=1.5/s,cap=8" {
		t.Errorf("mapping token did not round-trip: %q", got)
	}
	if recs[1][14] == "0" || recs[1][15] == "0" {
		t.Errorf("serving SLO columns missing: %v", recs[1])
	}
}

// TestWriteSweepCSVPagedColumns: a paged serving sweep must render its
// policy (with the block size) in the mapping token and populate the
// admission-pressure columns.
func TestWriteSweepCSVPagedColumns(t *testing.T) {
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optimus.NewSystem("h100", 2, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload: optimus.ServingSweep,
		Models:   []optimus.Model{cfg}, Systems: []*optimus.System{sys},
		Rates: []float64{2}, BatchCaps: []int{8}, ServeRequests: 24,
		Policies:        []optimus.ServePolicy{optimus.PagedPolicy},
		ServePageTokens: 32,
		Constraints:     optimus.PlanConstraints{TopK: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := writeSweep(&b, res, optimus.ServingSweep, "csv"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "paged/32") {
		t.Errorf("paged policy token missing from CSV:\n%s", out)
	}
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := recs[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing from header %v", name, header)
		return -1
	}
	for _, name := range []string{"preemptions", "recomputed_tokens", "kv_util"} {
		col(name)
	}
	if v := recs[1][col("kv_util")]; v == "0" || v == "" {
		t.Errorf("paged row should report nonzero KV utilization, got %q", v)
	}
}

// TestWriteSweepCSVDisaggColumns pins the disaggregated sweep columns:
// the mapping token carries the policy, split and transfer bandwidth; the
// prefill_devices / decode_devices / kv_transfers / transfer_s columns
// parse back to the candidate's values; and the JSON document mirrors
// them.
func TestWriteSweepCSVDisaggColumns(t *testing.T) {
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optimus.NewSystem("h100", 2, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload: optimus.ServingSweep,
		Models:   []optimus.Model{cfg}, Systems: []*optimus.System{sys},
		Rates: []float64{2}, BatchCaps: []int{8}, ServeRequests: 24,
		Policies:     []optimus.ServePolicy{optimus.DisaggregatedPolicy},
		PoolSplits:   []optimus.SweepPoolSplit{{Prefill: 1, Decode: 1}},
		TransferGBps: 25,
		Constraints:  optimus.PlanConstraints{TopK: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("expected one disagg row, got %d", len(res.Rows))
	}
	var b strings.Builder
	if err := writeSweep(&b, res, optimus.ServingSweep, "csv"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"tp=2,disagg/16,split=1+1,xfer=25GB/s,rate=2/s,cap=8"`) {
		t.Errorf("disagg mapping token must carry the split and bandwidth, quoted:\n%s", out)
	}
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := recs[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing from header %v", name, header)
		return -1
	}
	row := recs[1]
	if row[col("prefill_devices")] != "1" || row[col("decode_devices")] != "1" {
		t.Errorf("pool-split columns wrong: %v", row)
	}
	m := res.Rows[0].Metrics
	if row[col("kv_transfers")] != strconv.Itoa(m.KVTransfers) || m.KVTransfers == 0 {
		t.Errorf("kv_transfers column = %q, want %d", row[col("kv_transfers")], m.KVTransfers)
	}
	wantTransfer := strconv.FormatFloat(m.TransferTime, 'g', -1, 64)
	if row[col("transfer_s")] != wantTransfer || m.TransferTime <= 0 {
		t.Errorf("transfer_s column = %q, want %s", row[col("transfer_s")], wantTransfer)
	}

	var j strings.Builder
	if err := writeSweep(&j, res, optimus.ServingSweep, "json"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"prefill_devices": 1`, `"decode_devices": 1`, `"kv_transfers"`, `"transfer_time_s"`} {
		if !strings.Contains(j.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, j.String())
		}
	}
}

// TestCmdSweepDisaggFlags drives the pool-split axis end to end through
// the CLI: zipped -prefill-devices/-decode-devices, and rejection of the
// flags when they cannot apply.
func TestCmdSweepDisaggFlags(t *testing.T) {
	if err := cmdSweep([]string{"-workload", "serve", "-models", "llama2-13b", "-devices", "h100",
		"-intra", "nvlink4", "-gpus", "2", "-rates", "2", "-batch-caps", "8", "-serve-requests", "16",
		"-policies", "reserve,disagg", "-prefill-devices", "1,2", "-decode-devices", "1,2",
		"-transfer-gbps", "25", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2",
			"-policies", "disagg", "-prefill-devices", "1,2", "-decode-devices", "1"}, // unzippable
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2",
			"-policies", "reserve", "-prefill-devices", "1", "-decode-devices", "1"}, // no disagg entry
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2",
			"-policies", "reserve", "-transfer-gbps", "25"}, // no disagg entry
		{"-workload", "train", "-models", "gpt-22b", "-gpus", "8", "-transfer-gbps", "25"},
		{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2", "-prefill-devices", "1"},
		{"-workload", "serve", "-models", "llama2-13b", "-gpus", "2",
			"-policies", "disagg", "-prefill-devices", "x", "-decode-devices", "1"},
	} {
		if err := cmdSweep(bad); err == nil {
			t.Errorf("args %v should fail", bad)
		}
	}
}

// TestCmdSweepServeDefaultFlags is the audit companion to the closed-loop
// serve fix: `optimus sweep -workload serve` with every flag defaulted
// must not trip a raw internal error (serving sweeps are Poisson-driven
// with rate 1, so there is no closed-loop clients hole to fall into; an
// indivisible default grid degrades to "no feasible candidates", not an
// error).
func TestCmdSweepServeDefaultFlags(t *testing.T) {
	if err := cmdSweep([]string{"-workload", "serve"}); err != nil {
		t.Fatalf("default serving sweep flags must not error: %v", err)
	}
}

// TestCmdSweepTrace drives the -trace flag end to end through a file.
func TestCmdSweepTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	data := "arrival,tenant,prompt,gen\n0,chat,100,40\n0.2,batch,700,60\n0.5,chat,150,30\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-workload", "serve", "-models", "llama2-13b", "-devices", "h100",
		"-intra", "nvlink4", "-gpus", "1", "-trace", path, "-batch-caps", "0,2", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-workload", "serve", "-models", "llama2-13b", "-devices", "h100",
		"-intra", "nvlink4", "-gpus", "1", "-trace", path, "-rates", "2"}); err == nil {
		t.Error("-trace with -rates should fail (the trace fixes arrivals)")
	}
}

// TestWriteSweepCSVMixColumns: a mix-grid sweep must render the mix and
// the per-tenant SLO breakdown in the new trailing CSV columns.
func TestWriteSweepCSVMixColumns(t *testing.T) {
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optimus.NewSystem("h100", 1, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	mix, err := optimus.ParseServeMix("chat:0.7:200:150,batch:0.3:900:80")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload: optimus.ServingSweep,
		Models:   []optimus.Model{cfg}, Systems: []*optimus.System{sys},
		Rates: []float64{2}, ServeRequests: 24,
		Mixes:       [][]optimus.ServeTenantLoad{mix},
		Constraints: optimus.PlanConstraints{TopK: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty mix sweep")
	}
	var b strings.Builder
	if err := writeSweep(&b, res, optimus.ServingSweep, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := recs[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing from header %v", name, header)
		return -1
	}
	if got := recs[1][col("mix")]; got != optimus.FormatServeMix(mix) {
		t.Errorf("mix column = %q, want %q", got, optimus.FormatServeMix(mix))
	}
	slos := recs[1][col("tenant_slos")]
	for _, want := range []string{"chat:req=", "batch:req=", "e2e_p95="} {
		if !strings.Contains(slos, want) {
			t.Errorf("tenant_slos %q missing %s", slos, want)
		}
	}
	// JSON carries the structured breakdown.
	var jb strings.Builder
	if err := writeSweep(&jb, res, optimus.ServingSweep, "json"); err != nil {
		t.Fatal(err)
	}
	var doc sweepJSON
	if err := json.Unmarshal([]byte(jb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows[0].PerTenant) != 2 {
		t.Errorf("JSON per_tenant should carry both tenants: %+v", doc.Rows[0].PerTenant)
	}
}

func TestWriteSweepJSON(t *testing.T) {
	res := sweepResult(t)
	var b strings.Builder
	if err := writeSweep(&b, res, optimus.TrainingSweep, "json"); err != nil {
		t.Fatal(err)
	}
	var doc sweepJSON
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != len(res.Rows) {
		t.Fatalf("JSON has %d rows, want %d", len(doc.Rows), len(res.Rows))
	}
	if doc.Stats.Enumerated != res.Stats.Enumerated {
		t.Errorf("JSON stats enumerated %d, want %d", doc.Stats.Enumerated, res.Stats.Enumerated)
	}
	if doc.Rows[0].Rank != 1 || doc.Rows[0].Seconds <= 0 {
		t.Errorf("unexpected first JSON row: %+v", doc.Rows[0])
	}
}

// TestCmdSweepFleetFlags drives the fleet axes end to end through the
// CLI: -replicas/-routings expand cluster candidates, and the flags are
// rejected with flag-level messages when they cannot apply.
func TestCmdSweepFleetFlags(t *testing.T) {
	if err := cmdSweep([]string{"-workload", "serve", "-models", "llama2-13b", "-devices", "h100",
		"-intra", "nvlink4", "-gpus", "1", "-rates", "2", "-batch-caps", "8", "-serve-requests", "16",
		"-replicas", "0,2", "-routings", "round-robin,least-queue", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		args []string
		flag string
	}{
		{[]string{"-workload", "serve", "-models", "llama2-13b", "-gpus", "1",
			"-routings", "least-kv"}, "-replicas"}, // routings without a fleet
		{[]string{"-workload", "serve", "-models", "llama2-13b", "-gpus", "1",
			"-replicas", "0", "-routings", "least-kv"}, "-replicas"}, // no positive fleet size
		{[]string{"-workload", "train", "-models", "gpt-22b", "-gpus", "8",
			"-replicas", "2"}, "-replicas"}, // serving-only axis
		{[]string{"-workload", "infer", "-models", "llama2-13b", "-gpus", "2",
			"-routings", "round-robin"}, "-routings"}, // serving-only axis
		{[]string{"-workload", "serve", "-models", "llama2-13b", "-gpus", "1",
			"-replicas", "two"}, "-replicas"}, // unparseable
		{[]string{"-workload", "serve", "-models", "llama2-13b", "-gpus", "1",
			"-replicas", "2", "-routings", "random"}, "unknown routing"}, // bad policy name
		{[]string{"-workload", "serve", "-models", "llama2-13b", "-gpus", "1",
			"-replicas", "-1"}, "negative fleet size"}, // library floor still reachable
	} {
		err := cmdSweep(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("args %v: error should mention %q, got: %v", tc.args, tc.flag, err)
		}
	}
}

// TestCmdSweepFlagErrorsNameFlags pins the serve/sweep rejection parity:
// policy knobs and workload-shape flags no grid candidate would read must
// fail with an error that names the CLI flag, not a library field.
func TestCmdSweepFlagErrorsNameFlags(t *testing.T) {
	base := []string{"-workload", "serve", "-models", "llama2-13b", "-gpus", "1"}
	for _, tc := range []struct {
		args []string
		flag string
	}{
		{[]string{"-page-tokens", "32"}, "-page-tokens"},
		{[]string{"-policies", "reserve", "-page-tokens", "32"}, "-page-tokens"},
		{[]string{"-policies", "reserve,paged", "-prefill-devices", "1", "-decode-devices", "1"}, "-prefill-devices"},
		{[]string{"-policies", "paged", "-decode-devices", "1"}, "-decode-devices"},
		{[]string{"-policies", "reserve", "-transfer-gbps", "25"}, "-transfer-gbps"},
		{[]string{"-trace", "x.csv", "-rates", "2"}, "-rates"},
		{[]string{"-trace", "x.csv", "-seqs", "100"}, "-seqs"},
		{[]string{"-trace", "x.csv", "-gen", "100"}, "-gen"},
		{[]string{"-trace", "x.csv", "-serve-requests", "8"}, "-serve-requests"},
		{[]string{"-trace", "x.csv", "-serve-seed", "2"}, "-serve-seed"},
		{[]string{"-mix", "chat:1:200:200", "-seqs", "100"}, "-seqs"},
		{[]string{"-mix", "chat:1:200:200", "-gen", "100"}, "-gen"},
		{[]string{"-mix", "chat:1:200:200", "-trace", "x.csv"}, "-trace"},
		{[]string{"-prefix", "64"}, "-prefix"},
		{[]string{"-policies", "reserve,disagg", "-prefix", "64"}, "-prefix"},
		{[]string{"-kv-host-gb", "4"}, "-kv-host-gb"},
		{[]string{"-policies", "disagg", "-kv-host-gb", "4"}, "-kv-host-gb"},
		{[]string{"-policies", "paged", "-swap-gbps", "32"}, "-kv-host-gb"},
		{[]string{"-policies", "reserve", "-swap-gbps", "32"}, "-swap-gbps"},
		{[]string{"-policies", "paged", "-mix", "chat:1:200:200", "-prefix", "64"}, "-prefix"},
		{[]string{"-policies", "paged", "-trace", "x.csv", "-prefix", "64"}, "-prefix"},
		{[]string{"-schedules", "0-10:2", "-rates", "3"}, "-schedules"},
		{[]string{"-trace", "x.csv", "-schedules", "0-10:2"}, "-schedules"},
		{[]string{"-trace", "x.csv", "-turns", "3"}, "-turns"},
		{[]string{"-trace", "x.csv", "-think", "1"}, "-think"},
	} {
		err := cmdSweep(append(append([]string{}, base...), tc.args...))
		if err == nil || !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("args %v: error should name %s, got: %v", tc.args, tc.flag, err)
		}
	}
}

// TestWriteSweepCSVFleetColumns pins the fleet columns: the mapping token
// carries the fleet size and routing, and the replicas/routing columns
// parse back to the candidate's values (empty for single-instance rows).
func TestWriteSweepCSVFleetColumns(t *testing.T) {
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optimus.NewSystem("h100", 1, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimus.Sweep(context.Background(), optimus.SweepSpec{
		Workload: optimus.ServingSweep,
		Models:   []optimus.Model{cfg}, Systems: []*optimus.System{sys},
		Rates: []float64{2}, BatchCaps: []int{8}, ServeRequests: 16,
		Replicas:    []int{0, 2},
		Routings:    []optimus.ClusterRouting{optimus.LeastQueueRouting},
		Constraints: optimus.PlanConstraints{TopK: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows (single + fleet), got %d", len(res.Rows))
	}
	var b strings.Builder
	if err := writeSweep(&b, res, optimus.ServingSweep, "csv"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fleet=2xleast-queue") {
		t.Errorf("fleet mapping token missing from CSV:\n%s", out)
	}
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := recs[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing from header %v", name, header)
		return -1
	}
	byFleet := map[string][]string{}
	for _, rec := range recs[1:] {
		byFleet[rec[col("replicas")]] = rec
	}
	fleet, ok := byFleet["2"]
	if !ok {
		t.Fatalf("no fleet row in CSV: %v", byFleet)
	}
	if fleet[col("routing")] != "least-queue" {
		t.Errorf("fleet routing column = %q, want least-queue", fleet[col("routing")])
	}
	single, ok := byFleet["0"]
	if !ok {
		t.Fatalf("no single-instance row in CSV: %v", byFleet)
	}
	if single[col("routing")] != "" {
		t.Errorf("single-instance routing column should be empty, got %q", single[col("routing")])
	}

	var j strings.Builder
	if err := writeSweep(&j, res, optimus.ServingSweep, "json"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), `"replicas": 2`) || !strings.Contains(j.String(), `"routing": "least-queue"`) {
		t.Errorf("JSON output missing fleet columns:\n%s", j.String())
	}
}
