package main

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"optimus"
)

func TestCmdServe(t *testing.T) {
	if err := cmdServe([]string{"-model", "llama2-13b", "-gpus", "2", "-rate", "2", "-requests", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-arrival", "closed", "-clients", "4", "-requests", "16"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-model", "llama2-13b", "-gpus", "2", "-rate", "2", "-requests", "32",
		"-policy", "paged", "-page-tokens", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-policy", "paged", "-no-preempt", "-rate", "1", "-requests", "16"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{"-policy", "lru"},
		{"-page-tokens", "16"},                     // paged-only knob under reserve
		{"-no-preempt"},                            // paged-only knob under reserve
		{"-policy", "paged", "-page-tokens", "-8"}, // negative block size
		{"-model", "no-such-model"},
		{"-device", "warp-core"},
		{"-precision", "fp128"},
		{"-arrival", "chaotic"},
		{"-format", "yaml"},
		{"-rate", "0"},
		{"-arrival", "closed", "-clients", "0"},
		{"-arrival", "closed", "-clients", "4", "-rate", "5"},
		{"-arrival", "poisson", "-rate", "1", "-clients", "8"},
		{"-model", "llama2-70b", "-device", "a100", "-intra", "nvlink3", "-gpus", "1"},
	} {
		if err := cmdServe(bad); err == nil {
			t.Errorf("args %v should fail", bad)
		}
	}
}

// serveResult runs a small simulation for the encoder tests.
func serveResult(t *testing.T) (optimus.ServeSpec, optimus.ServeResult) {
	t.Helper()
	sys, err := optimus.NewSystem("h100", 1, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	spec := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		PromptTokens: 200, GenTokens: 200,
		Arrival: optimus.PoissonArrivals, Rate: 1, Requests: 24, Seed: 1,
	}
	res, err := optimus.Serve(spec)
	if err != nil {
		t.Fatal(err)
	}
	return spec, res
}

func TestWriteServeCSV(t *testing.T) {
	spec, res := serveResult(t)
	var b strings.Builder
	if err := writeServe(&b, spec, res, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Requests+1 {
		t.Fatalf("CSV has %d records, want %d requests + header", len(recs), res.Requests)
	}
	if recs[0][0] != "id" || recs[1][0] != "0" {
		t.Errorf("unexpected CSV leader: %v / %v", recs[0], recs[1])
	}
	if last := recs[0][len(recs[0])-1]; last != "preemptions" {
		t.Errorf("per-request CSV should end with the preemptions column, got %q", last)
	}
}

func TestWriteServeJSON(t *testing.T) {
	spec, res := serveResult(t)
	var b strings.Builder
	if err := writeServe(&b, spec, res, "json"); err != nil {
		t.Fatal(err)
	}
	var doc optimus.ServeResult
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Requests != res.Requests || len(doc.PerRequest) != len(res.PerRequest) {
		t.Errorf("JSON round trip lost requests: %d/%d", doc.Requests, len(doc.PerRequest))
	}
	if doc.E2E.P95 != res.E2E.P95 {
		t.Errorf("JSON round trip changed p95 E2E: %v vs %v", doc.E2E.P95, res.E2E.P95)
	}
	if !strings.Contains(b.String(), `"Policy": "reserve-full"`) || doc.Policy != res.Policy {
		t.Error("JSON should render the admission policy by name and round-trip it")
	}
}
