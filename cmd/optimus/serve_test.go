package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"

	"optimus"
)

func TestCmdServe(t *testing.T) {
	if err := cmdServe([]string{"-model", "llama2-13b", "-gpus", "2", "-rate", "2", "-requests", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-arrival", "closed", "-clients", "4", "-requests", "16"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-model", "llama2-13b", "-gpus", "2", "-rate", "2", "-requests", "32",
		"-policy", "paged", "-page-tokens", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-policy", "paged", "-no-preempt", "-rate", "1", "-requests", "16"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-model", "llama2-13b", "-gpus", "2", "-policy", "disagg",
		"-prefill-devices", "1", "-decode-devices", "1", "-transfer-gbps", "25",
		"-rate", "2", "-requests", "16"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-policy", "disagg", "-requests", "16", "-rate", "1"}); err != nil {
		t.Fatal(err) // defaults: co-located split, default bandwidth
	}
	if err := cmdServe([]string{"-mix", "chat:0.7:200:200,batch:0.3:800:100", "-rate", "2", "-requests", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-mix", "chat:0.6:150:100,batch:0.4:600:80", "-arrival", "closed", "-requests", "16"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{"-policy", "lru"},
		{"-page-tokens", "16"},                     // paging knob under reserve
		{"-no-preempt"},                            // paged-only knob under reserve
		{"-policy", "paged", "-page-tokens", "-8"}, // negative block size
		{"-prefill-devices", "1"},                  // disagg-only knob under reserve
		{"-policy", "paged", "-transfer-gbps", "50"},
		{"-policy", "disagg", "-no-preempt"},
		{"-policy", "disagg", "-prefill-devices", "2"}, // pool beyond the 1-GPU TP
		{"-policy", "disagg", "-transfer-gbps", "-1"},
		{"-model", "no-such-model"},
		{"-device", "warp-core"},
		{"-precision", "fp128"},
		{"-arrival", "chaotic"},
		{"-format", "yaml"},
		{"-rate", "0"},
		{"-arrival", "closed", "-clients", "0"},
		{"-arrival", "closed", "-clients", "4", "-rate", "5"},
		{"-arrival", "poisson", "-rate", "1", "-clients", "8"},
		{"-model", "llama2-70b", "-device", "a100", "-intra", "nvlink3", "-gpus", "1"},
		{"-mix", "chat:0.7:200"},                      // malformed mix entry
		{"-mix", "chat:1:200:200", "-prompt", "100"},  // mix excludes -prompt
		{"-mix", "chat:1:200:200", "-gen", "100"},     // mix excludes -gen
		{"-mix", "chat:1:200:200", "-trace", "x.csv"}, // mutually exclusive
		{"-trace", "/does/not/exist.csv"},             // missing trace file
		{"-trace", "x.csv", "-rate", "2"},             // trace fixes arrivals
		{"-trace", "x.csv", "-arrival", "closed"},     // trace fixes arrivals
		{"-trace", "x.csv", "-requests", "8"},         // trace fixes the count
		{"-trace", "x.csv", "-seed", "2"},             // trace has no seed
	} {
		if err := cmdServe(bad); err == nil {
			t.Errorf("args %v should fail", bad)
		}
	}
}

// TestCmdServeClosedLoopDefaultsClients is the regression gate on the
// closed-loop CLI hole: `optimus serve -arrival closed` used to die with
// the raw internal error "serve: closed-loop arrivals need positive
// clients, got 0" because the -clients flag defaults to 0. Unset clients
// now default sensibly; an explicit non-positive value gets a flag-level
// error that names -clients.
func TestCmdServeClosedLoopDefaultsClients(t *testing.T) {
	if err := cmdServe([]string{"-arrival", "closed", "-requests", "16"}); err != nil {
		t.Fatalf("closed-loop arrivals with default flags must work: %v", err)
	}
	err := cmdServe([]string{"-arrival", "closed", "-clients", "0", "-requests", "16"})
	if err == nil {
		t.Fatal("explicit -clients 0 should fail")
	}
	if !strings.Contains(err.Error(), "-clients") {
		t.Errorf("error should name the -clients flag, got: %v", err)
	}
	err = cmdServe([]string{"-arrival", "closed", "-clients", "-3", "-requests", "16"})
	if err == nil || !strings.Contains(err.Error(), "-clients") {
		t.Errorf("negative -clients should fail naming the flag, got: %v", err)
	}
}

// TestCmdServeTrace exercises the -trace flag end to end through a real
// trace file in each output format.
func TestCmdServeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	data := "arrival,tenant,prompt,gen\n0,chat,100,40\n0.2,batch,700,60\n0.4,chat,120,30\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "csv", "json"} {
		if err := cmdServe([]string{"-trace", path, "-format", format}); err != nil {
			t.Fatalf("-trace %s format %s: %v", path, format, err)
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("5,chat,100,40\n1,chat,100,40\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-trace", bad}); err == nil {
		t.Error("unsorted trace file should fail")
	}
}

// serveResult runs a small simulation for the encoder tests.
func serveResult(t *testing.T) (optimus.ServeSpec, optimus.ServeResult) {
	t.Helper()
	sys, err := optimus.NewSystem("h100", 1, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	spec := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		PromptTokens: 200, GenTokens: 200,
		Arrival: optimus.PoissonArrivals, Rate: 1, Requests: 24, Seed: 1,
	}
	res, err := optimus.Serve(spec)
	if err != nil {
		t.Fatal(err)
	}
	return spec, res
}

// serveCSVHeader is the golden per-request CSV schema: per-tenant shape
// columns and the disaggregated KV-transfer columns included.
var serveCSVHeader = []string{"id", "tenant", "prompt", "gen",
	"arrival_s", "admitted_s", "first_token_s", "done_s",
	"queue_s", "ttft_s", "tpot_s", "e2e_s", "preemptions",
	"kv_transfers", "kv_transfer_s"}

func TestWriteServeCSV(t *testing.T) {
	spec, res := serveResult(t)
	var b strings.Builder
	if err := writeServe(&b, spec, res, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Requests+1 {
		t.Fatalf("CSV has %d records, want %d requests + header", len(recs), res.Requests)
	}
	if !slices.Equal(recs[0], serveCSVHeader) {
		t.Errorf("per-request CSV header = %v, want %v", recs[0], serveCSVHeader)
	}
	if recs[1][0] != "0" || recs[1][1] != optimus.DefaultServeTenant {
		t.Errorf("degenerate workload rows should carry the default tenant: %v", recs[1])
	}
}

// mixedServeResult runs a two-tenant simulation for the golden encoder
// tests.
func mixedServeResult(t *testing.T) (optimus.ServeSpec, optimus.ServeResult) {
	t.Helper()
	sys, err := optimus.NewSystem("h100", 1, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	spec := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 1, Precision: optimus.FP16,
		Mix: []optimus.ServeTenantLoad{
			{Tenant: "chat", Share: 0.7, PromptTokens: 200, GenTokens: 150},
			{Tenant: "batch", Share: 0.3, PromptTokens: 900, GenTokens: 80},
		},
		Arrival: optimus.PoissonArrivals, Rate: 2, Requests: 32, Seed: 1,
	}
	res, err := optimus.Serve(spec)
	if err != nil {
		t.Fatal(err)
	}
	return spec, res
}

// TestWriteServeCSVGoldenPerTenant: the per-request CSV of a multi-tenant
// run must reproduce every request's tenant, shape and timeline exactly —
// each rendered field parses back to the in-memory result value.
func TestWriteServeCSVGoldenPerTenant(t *testing.T) {
	spec, res := mixedServeResult(t)
	var b strings.Builder
	if err := writeServe(&b, spec, res, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(recs[0], serveCSVHeader) {
		t.Fatalf("header = %v, want %v", recs[0], serveCSVHeader)
	}
	if len(recs) != len(res.PerRequest)+1 {
		t.Fatalf("CSV has %d records, want %d", len(recs), len(res.PerRequest)+1)
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	tenants := map[string]bool{}
	for i, m := range res.PerRequest {
		rec := recs[i+1]
		tenants[rec[1]] = true
		want := []string{
			strconv.Itoa(m.ID), m.Tenant,
			strconv.Itoa(m.PromptTokens), strconv.Itoa(m.GenTokens),
			g(m.Arrival), g(m.Admitted), g(m.FirstToken), g(m.Done),
			g(m.Queue), g(m.TTFT), g(m.TPOT), g(m.E2E),
			strconv.Itoa(m.Preemptions),
			strconv.Itoa(m.KVTransfers), g(m.KVTransferTime),
		}
		if !slices.Equal(rec, want) {
			t.Fatalf("row %d = %v, want %v", i, rec, want)
		}
	}
	if !tenants["chat"] || !tenants["batch"] {
		t.Errorf("CSV should carry both tenants, saw %v", tenants)
	}
}

// TestWriteServeJSONGoldenPerTenant: the JSON document must include the
// per-tenant breakdown and round-trip it losslessly.
func TestWriteServeJSONGoldenPerTenant(t *testing.T) {
	spec, res := mixedServeResult(t)
	var b strings.Builder
	if err := writeServe(&b, spec, res, "json"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"PerTenant"`, `"Tenant": "chat"`, `"Tenant": "batch"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s", want)
		}
	}
	var doc optimus.ServeResult
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.PerTenant) != len(res.PerTenant) {
		t.Fatalf("JSON round trip lost tenants: %d vs %d", len(doc.PerTenant), len(res.PerTenant))
	}
	for i, tm := range doc.PerTenant {
		if tm != res.PerTenant[i] {
			t.Errorf("tenant %d did not round-trip: %+v vs %+v", i, tm, res.PerTenant[i])
		}
	}
}

// disaggServeResult runs a split-pool simulation over a finite link for
// the disagg encoder goldens.
func disaggServeResult(t *testing.T) (optimus.ServeSpec, optimus.ServeResult) {
	t.Helper()
	sys, err := optimus.NewSystem("h100", 2, "nvlink4", "ndr")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := optimus.ModelByName("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	spec := optimus.ServeSpec{
		Model: cfg, System: sys, TP: 2, Precision: optimus.FP16,
		PromptTokens: 200, GenTokens: 200,
		Arrival: optimus.PoissonArrivals, Rate: 2, Requests: 24, Seed: 1,
		Policy:         optimus.DisaggregatedPolicy,
		PrefillDevices: 1, DecodeDevices: 1, TransferGBps: 25,
	}
	res, err := optimus.Serve(spec)
	if err != nil {
		t.Fatal(err)
	}
	return spec, res
}

// TestWriteServeCSVGoldenDisagg pins the disaggregated per-request CSV
// columns: every rendered kv_transfers / kv_transfer_s field parses back
// to the in-memory value, migrations are visible, and the column totals
// reconcile with the result's transfer counters.
func TestWriteServeCSVGoldenDisagg(t *testing.T) {
	spec, res := disaggServeResult(t)
	var b strings.Builder
	if err := writeServe(&b, spec, res, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(recs[0], serveCSVHeader) {
		t.Fatalf("header = %v, want %v", recs[0], serveCSVHeader)
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	transfers := 0
	for i, m := range res.PerRequest {
		rec := recs[i+1]
		if rec[13] != strconv.Itoa(m.KVTransfers) || rec[14] != g(m.KVTransferTime) {
			t.Fatalf("row %d transfer columns = %v/%v, want %d/%g", i, rec[13], rec[14], m.KVTransfers, m.KVTransferTime)
		}
		n, err := strconv.Atoi(rec[13])
		if err != nil {
			t.Fatal(err)
		}
		transfers += n
	}
	if transfers == 0 || transfers != res.KVTransfers {
		t.Errorf("CSV transfers sum to %d, result says %d", transfers, res.KVTransfers)
	}
	if res.TransferTimeTotal <= 0 {
		t.Error("finite link should have charged transfer time")
	}
}

// TestWriteServeJSONGoldenDisagg: the JSON document must carry the
// per-pool geometry and transfer totals and round-trip them losslessly.
func TestWriteServeJSONGoldenDisagg(t *testing.T) {
	spec, res := disaggServeResult(t)
	var b strings.Builder
	if err := writeServe(&b, spec, res, "json"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"Policy": "disagg"`, `"PrefillDevices": 1`, `"DecodeDevices": 1`,
		`"PrefillPagesTotal"`, `"DecodePagesTotal"`, `"PeakPrefillPages"`, `"PeakDecodePages"`,
		`"KVTransfers"`, `"TransferTimeTotal"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s", want)
		}
	}
	var doc optimus.ServeResult
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.KVTransfers != res.KVTransfers || doc.TransferTimeTotal != res.TransferTimeTotal ||
		doc.PeakPrefillPages != res.PeakPrefillPages || doc.PeakDecodePages != res.PeakDecodePages ||
		doc.PrefillPagesTotal != res.PrefillPagesTotal || doc.DecodePagesTotal != res.DecodePagesTotal {
		t.Errorf("disagg fields did not round-trip: %+v vs %+v", doc, res)
	}
	// The text renderer's pool summary must name both pools.
	var txt strings.Builder
	if err := writeServe(&txt, spec, res, "text"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pools", "kv-transfer", "paging"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text output missing the %q line:\n%s", want, txt.String())
		}
	}
}

func TestWriteServeJSON(t *testing.T) {
	spec, res := serveResult(t)
	var b strings.Builder
	if err := writeServe(&b, spec, res, "json"); err != nil {
		t.Fatal(err)
	}
	var doc optimus.ServeResult
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Requests != res.Requests || len(doc.PerRequest) != len(res.PerRequest) {
		t.Errorf("JSON round trip lost requests: %d/%d", doc.Requests, len(doc.PerRequest))
	}
	if doc.E2E.P95 != res.E2E.P95 {
		t.Errorf("JSON round trip changed p95 E2E: %v vs %v", doc.E2E.P95, res.E2E.P95)
	}
	if !strings.Contains(b.String(), `"Policy": "reserve-full"`) || doc.Policy != res.Policy {
		t.Error("JSON should render the admission policy by name and round-trip it")
	}
}

// TestCmdServeFlagErrorsNameFlags pins the policy-knob rejection parity:
// a knob the chosen -policy would silently ignore must fail with an error
// naming the CLI flag, not the library field ("PageTokens").
func TestCmdServeFlagErrorsNameFlags(t *testing.T) {
	for _, tc := range []struct {
		args []string
		flag string
	}{
		{[]string{"-page-tokens", "16"}, "-page-tokens"},
		{[]string{"-no-preempt"}, "-no-preempt"},
		{[]string{"-policy", "disagg", "-no-preempt"}, "-no-preempt"},
		{[]string{"-prefill-devices", "1"}, "-prefill-devices"},
		{[]string{"-policy", "paged", "-decode-devices", "1"}, "-decode-devices"},
		{[]string{"-policy", "paged", "-transfer-gbps", "50"}, "-transfer-gbps"},
		{[]string{"-prefix", "64"}, "-prefix"},
		{[]string{"-policy", "disagg", "-prefix", "64"}, "-prefix"},
		{[]string{"-kv-host-gb", "4"}, "-kv-host-gb"},
		{[]string{"-policy", "disagg", "-kv-host-gb", "4"}, "-kv-host-gb"},
		{[]string{"-swap-gbps", "32"}, "-swap-gbps"},
		{[]string{"-policy", "paged", "-swap-gbps", "32"}, "-kv-host-gb"},
		{[]string{"-policy", "paged", "-no-preempt", "-prefix", "64"}, "-prefix"},
		{[]string{"-policy", "paged", "-no-preempt", "-kv-host-gb", "4"}, "-kv-host-gb"},
		{[]string{"-policy", "paged", "-prefix", "64", "-mix", "a:1:100:50"}, "-prefix"},
		{[]string{"-schedule", "0-10:2", "-rate", "3"}, "-schedule"},
		{[]string{"-trace", "x.csv", "-schedule", "0-10:2"}, "-schedule"},
		{[]string{"-trace", "x.csv", "-turns", "3"}, "-turns"},
		{[]string{"-trace", "x.csv", "-think", "1"}, "-think"},
		{[]string{"-arrival", "closed", "-schedule", "0-10:2"}, "-schedule"},
		{[]string{"-arrival", "closed", "-turns", "3"}, "-turns"},
		{[]string{"-arrival", "closed", "-think", "1"}, "-think"},
	} {
		err := cmdServe(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("args %v: error should name %s, got: %v", tc.args, tc.flag, err)
		}
	}
}
