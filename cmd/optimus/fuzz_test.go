package main

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"optimus"
)

// FuzzServingTokenCSV is the satellite round-trip gate on the serving
// policy token: whatever TP degree, admission policy, page size, rate and
// batch cap a candidate carries, the comma-separated token the writers
// render ("tp=2,paged/16,rate=1.5/s,cap=8") must survive encoding/csv
// intact — RFC 4180 quoting, no sheared rows — and distinct tokens must
// stay distinct field values. The f.Add corpus runs as a regression suite
// under plain `go test`.
func FuzzServingTokenCSV(f *testing.F) {
	f.Add(2, int8(0), 0, 1.5, 8, 0, 0, 0.0)
	f.Add(2, int8(1), 16, 1.5, 8, 0, 0, 0.0)
	f.Add(8, int8(1), 400, 0.25, 0, 0, 0, 0.0)
	f.Add(1, int8(1), 1, 1e6, 1<<20, 0, 0, 0.0)
	f.Add(16, int8(0), 0, 0.0001, -3, 0, 0, 0.0)
	f.Add(8, int8(2), 16, 2.0, 8, 2, 6, 50.0) // disagg split token
	f.Add(2, int8(2), 16, 2.0, 8, 1, 1, math.Inf(1))
	f.Fuzz(func(t *testing.T, tp int, pol int8, pageTokens int, rate float64, batchCap, prefill, decode int, transferGBps float64) {
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			rate = 1 // rejected by validation long before a writer runs
		}
		if math.IsNaN(transferGBps) || transferGBps < 0 {
			transferGBps = 50 // rejected by validation too; +Inf is legal
		}
		p := optimus.SweepPoint{
			Workload:       optimus.ServingSweep,
			Map:            optimus.Mapping{DP: 1, TP: tp, PP: 1},
			Rate:           rate,
			BatchCap:       batchCap,
			Policy:         optimus.ServePolicy(int(pol) % 3),
			PageTokens:     pageTokens,
			PrefillDevices: prefill,
			DecodeDevices:  decode,
			TransferGBps:   transferGBps,
		}
		token := servingMappingToken(p)
		if token == "" || !strings.Contains(token, ",") {
			t.Fatalf("token %q lost its comma-separated shape", token)
		}

		var b strings.Builder
		cw := csv.NewWriter(&b)
		if err := cw.Write([]string{"lead", token, "tail"}); err != nil {
			t.Fatal(err)
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			t.Fatal(err)
		}
		recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
		if err != nil {
			t.Fatalf("CSV with token %q unparseable: %v", token, err)
		}
		if len(recs) != 1 || len(recs[0]) != 3 {
			t.Fatalf("token %q sheared the record: %v", token, recs)
		}
		if recs[0][1] != token {
			t.Fatalf("token did not round-trip: wrote %q, read %q", token, recs[0][1])
		}

		// A policy flip must be visible in the token — the CSV is the
		// capacity study's artifact, and an ambiguous policy column would
		// make reserve-vs-paged-vs-disagg comparisons unreadable.
		q := p
		q.Policy = optimus.ServePolicy((int(pol) + 1) % 3)
		if servingMappingToken(q) == token {
			t.Fatalf("policies %v and %v render the same token %q", p.Policy, q.Policy, token)
		}
		// So must a pool-split flip within the disaggregated policy.
		if p.Policy == optimus.DisaggregatedPolicy {
			r := p
			r.PrefillDevices++
			if servingMappingToken(r) == token {
				t.Fatalf("pool splits %d and %d render the same token %q",
					p.PrefillDevices, r.PrefillDevices, token)
			}
		}
	})
}
