package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"optimus"
	"optimus/internal/tech"
	"optimus/internal/units"
)

// defaultClosedClients is the closed-loop concurrency when -arrival closed
// is used without -clients: a sensible default instead of the raw internal
// "positive clients" error the zero flag default used to trip.
const defaultClosedClients = 8

// cmdServe runs the continuous-batching serving simulator: seeded
// deterministic arrivals over the step-cost engine, reporting TTFT/TPOT/
// E2E SLO percentiles with per-tenant breakdowns (text), per-request
// timelines (csv), or both (json).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelName := fs.String("model", "llama2-13b", "model preset")
	device := fs.String("device", "h100", "device preset")
	deviceFile := fs.String("device-file", "", "JSON device description (overrides -device)")
	intra := fs.String("intra", "nvlink4", "intra-node fabric")
	gpus := fs.Int("gpus", 1, "GPU count (= tensor-parallel degree)")
	prompt := fs.Int("prompt", 200, "prompt tokens per request (single-tenant; see -mix/-trace)")
	gen := fs.Int("gen", 200, "generated tokens per request (single-tenant; see -mix/-trace)")
	mix := fs.String("mix", "", "multi-tenant workload mix as tenant:share:prompt[~sigma]:gen[~sigma][:prefix[:prefix-id]][,...] (replaces -prompt/-gen; ~sigma draws heavy-tailed lognormal lengths)")
	trace := fs.String("trace", "", "CSV trace file to replay (arrival,tenant,prompt,gen[,prefix_id,prefix_tokens[,session,turn]]; replaces the arrival flags)")
	prefix := fs.Int("prefix", 0, "shared prompt-prefix tokens cached across requests (single-tenant; paged with preemption only)")
	prec := fs.String("precision", "fp16", "precision")
	arrival := fs.String("arrival", "poisson", "arrival process (poisson|closed)")
	rate := fs.Float64("rate", 1, "Poisson arrival rate in requests/sec")
	schedule := fs.String("schedule", "", "piecewise arrival-rate schedule as start-end:rate[,...] in seconds and req/s (replaces -rate; poisson only)")
	turns := fs.Int("turns", 0, "session-cohort turns per client session, each carrying the session's prior context as a growing shared prefix (poisson + paged with preemption only)")
	think := fs.Float64("think", 0, "think time between a session's turns in seconds (needs -turns > 1)")
	clients := fs.Int("clients", 0, "closed-loop concurrency (closed arrivals only; default 8)")
	requests := fs.Int("requests", 256, "requests to simulate")
	seed := fs.Int64("seed", 1, "arrival-process seed")
	maxBatch := fs.Int("max-batch", 0, "iteration batch cap (0 = derive from KV budget)")
	policy := fs.String("policy", "reserve", "KV admission policy (reserve = full-context reservation, paged = vLLM-style block allocation with LIFO preemption, disagg = split prefill/decode pools with KV-transfer pricing)")
	pageTokens := fs.Int("page-tokens", 0, "block size in KV tokens (0 = default 16; paged/disagg only)")
	noPreempt := fs.Bool("no-preempt", false, "disable preemption: paged admission reserves full-context pages (paged only)")
	prefillDevices := fs.Int("prefill-devices", 0, "devices backing the disagg prefill pool (0 = all; disagg only)")
	decodeDevices := fs.Int("decode-devices", 0, "devices backing the disagg decode pool (0 = all; disagg only)")
	transferGBps := fs.Float64("transfer-gbps", 0, "disagg KV-transfer interconnect bandwidth in GB/s (0 = default 50, Inf = free; disagg only)")
	hostKVGB := fs.Float64("kv-host-gb", 0, "host-memory KV swap tier capacity in GB (0 = recompute-only preemption; paged with preemption only)")
	swapGBps := fs.Float64("swap-gbps", 0, "GPU-host KV swap-link bandwidth in GB/s (0 = default 32; needs -kv-host-gb)")
	format := fs.String("format", "text", "output format (text|csv|json)")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	switch *format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (text|csv|json)", *format)
	}

	cfg, err := optimus.ModelByName(*modelName)
	if err != nil {
		return err
	}
	sys, err := systemWithOverride(*device, *deviceFile, *gpus, *intra, "ndr")
	if err != nil {
		return err
	}
	p, err := tech.ParsePrecision(*prec)
	if err != nil {
		return err
	}
	pol, err := optimus.ParseServePolicy(*policy)
	if err != nil {
		return err
	}
	// Resolve the default here so the simulation and every output format
	// report the same bandwidth (the simulator would derive the identical
	// value from zero; nonzero flags pass through untouched).
	if pol == optimus.DisaggregatedPolicy && *transferGBps == 0 {
		*transferGBps = optimus.DefaultServeTransferGBps
	}
	if pol == optimus.PagedPolicy && *hostKVGB > 0 && *swapGBps == 0 {
		*swapGBps = optimus.DefaultServeSwapGBps
	}
	spec := optimus.ServeSpec{
		Model: cfg, System: sys, TP: *gpus, Precision: p,
		PromptTokens: *prompt, GenTokens: *gen, PrefixTokens: *prefix,
		Rate: *rate, Clients: *clients,
		Requests: *requests, Seed: *seed, MaxBatch: *maxBatch,
		Policy: pol, PageTokens: *pageTokens, NoPreempt: *noPreempt,
		PrefillDevices: *prefillDevices, DecodeDevices: *decodeDevices,
		TransferGBps: *transferGBps,
		HostKVBytes:  *hostKVGB * 1e9, SwapGBps: *swapGBps,
		Turns: *turns, Think: *think,
	}
	// Reject flags the chosen workload or arrival process would silently
	// ignore — a user who sets them believes they shaped the simulated
	// load.
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := rejectPolicyFlagMisuse(set, pol); err != nil {
		return err
	}
	if *mix != "" && *trace != "" {
		return fmt.Errorf("-mix and -trace are mutually exclusive")
	}
	if *mix != "" || *trace != "" {
		if set["prompt"] || set["gen"] {
			return fmt.Errorf("-prompt and -gen describe the single-tenant workload (use the per-tenant lengths in -mix, or the trace's)")
		}
		if set["prefix"] {
			return fmt.Errorf("-prefix describes the single-tenant workload (use the per-tenant prefix field in -mix, or the trace's prefix columns)")
		}
		spec.PromptTokens, spec.GenTokens, spec.PrefixTokens = 0, 0, 0
	}
	if *mix != "" {
		if spec.Mix, err = optimus.ParseServeMix(*mix); err != nil {
			return err
		}
	}
	if *trace != "" {
		for _, f := range []string{"arrival", "rate", "clients", "requests", "seed", "schedule", "turns", "think"} {
			if set[f] {
				return fmt.Errorf("-%s does not apply when replaying a trace (-trace fixes the arrival process)", f)
			}
		}
		if spec.Trace, err = loadTrace(*trace); err != nil {
			return err
		}
		spec.Rate, spec.Clients, spec.Requests, spec.Seed = 0, 0, 0, 0
	} else {
		switch *arrival {
		case "poisson", "open":
			spec.Arrival = optimus.PoissonArrivals
			if set["clients"] {
				return fmt.Errorf("-clients applies to closed-loop arrivals only (-arrival closed)")
			}
			if *schedule != "" {
				if set["rate"] {
					return fmt.Errorf("-schedule fixes the arrival-rate timeline (-rate sets the constant Poisson rate; set one)")
				}
				if spec.Schedule, err = optimus.ParseServeSchedule(*schedule); err != nil {
					return err
				}
				spec.Rate = 0
			}
		case "closed", "closed-loop":
			spec.Arrival = optimus.ClosedLoopArrivals
			if set["rate"] {
				return fmt.Errorf("-rate applies to Poisson arrivals only (-arrival poisson)")
			}
			for _, f := range []string{"schedule", "turns", "think"} {
				if set[f] {
					return fmt.Errorf("-%s applies to open-loop Poisson arrivals only (-arrival poisson)", f)
				}
			}
			spec.Rate = 0
			if !set["clients"] {
				spec.Clients = defaultClosedClients
			} else if *clients <= 0 {
				return fmt.Errorf("-clients must be positive for closed-loop arrivals, got %d", *clients)
			}
		default:
			return fmt.Errorf("unknown arrival process %q (poisson|closed)", *arrival)
		}
	}

	res, err := optimus.Serve(spec)
	if err != nil {
		return err
	}
	return writeServe(os.Stdout, spec, res, *format)
}

// loadTrace reads and validates a -trace CSV file, shared by the serve
// and sweep subcommands.
func loadTrace(path string) ([]optimus.ServeTraceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	trace, err := optimus.ParseServeTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return trace, nil
}

// serveWorkloadLabel names the simulated workload for the text header.
func serveWorkloadLabel(spec optimus.ServeSpec) string {
	switch {
	case len(spec.Trace) > 0:
		return fmt.Sprintf("%d-event trace", len(spec.Trace))
	case len(spec.Mix) > 0:
		return fmt.Sprintf("%d-tenant mix %s", len(spec.Mix), optimus.FormatServeMix(spec.Mix))
	default:
		return fmt.Sprintf("%d+%d tokens", spec.PromptTokens, spec.GenTokens)
	}
}

// writeServe renders a serving simulation in the chosen format.
func writeServe(w io.Writer, spec optimus.ServeSpec, res optimus.ServeResult, format string) error {
	switch format {
	case "text":
		arrivals := spec.Arrival.String()
		if len(spec.Trace) > 0 {
			arrivals = "replayed"
		}
		fmt.Fprintf(w, "%s on %d x %s, %s arrivals, %d requests of %s (seed %d)\n",
			spec.Model.Name, spec.TP, spec.System.Device.Name, arrivals,
			res.Requests, serveWorkloadLabel(spec), spec.Seed)
		fmt.Fprintf(w, "  makespan           %s over %d iterations\n",
			units.FormatSeconds(res.SimTime), res.Iterations)
		fmt.Fprintf(w, "  throughput         %.2f req/s, %.0f tok/s\n",
			res.ThroughputRPS, res.TokensPerSec)
		fmt.Fprintf(w, "  batching           mean %.1f, peak %d (cap %d)\n",
			res.MeanBatch, res.PeakBatch, res.MaxBatch)
		fmt.Fprintf(w, "  kv-cache           peak %s of %s budget (mean util %.0f%%)\n",
			units.FormatBytes(res.PeakKVBytes), units.FormatBytes(res.KVCapacity),
			100*res.MeanKVUtil)
		if res.Policy == optimus.PagedPolicy || res.Policy == optimus.DisaggregatedPolicy {
			fmt.Fprintf(w, "  paging             %d-token pages, peak %d of %d, %d preemptions (%d tokens recomputed)\n",
				res.PageTokens, res.PeakKVPages, res.KVPagesTotal,
				res.Preemptions, res.RecomputedTokens)
		}
		if res.PrefixHits > 0 || res.PrefixSavedTokens > 0 {
			fmt.Fprintf(w, "  prefix-cache       %d hits, %d prefill tokens saved\n",
				res.PrefixHits, res.PrefixSavedTokens)
		}
		if res.HostPagesTotal > 0 {
			fmt.Fprintf(w, "  kv-host-tier       %d pages (peak %d), %d swap-outs, %d swap-ins, %s swapping over %g GB/s\n",
				res.HostPagesTotal, res.PeakHostPages, res.KVSwapOuts, res.KVSwapIns,
				units.FormatSeconds(res.SwapTimeTotal), spec.SwapGBps)
		}
		if res.Policy == optimus.DisaggregatedPolicy {
			fmt.Fprintf(w, "  pools              prefill %d dev (peak %d of %d pages), decode %d dev (peak %d of %d pages)\n",
				res.PrefillDevices, res.PeakPrefillPages, res.PrefillPagesTotal,
				res.DecodeDevices, res.PeakDecodePages, res.DecodePagesTotal)
			fmt.Fprintf(w, "  kv-transfer        %d migrations, %s total over %g GB/s\n",
				res.KVTransfers, units.FormatSeconds(res.TransferTimeTotal), spec.TransferGBps)
		}
		fmt.Fprintf(w, "  %-8s %10s %10s %10s %10s %10s\n", "SLO", "p50", "p95", "p99", "mean", "max")
		for _, row := range []struct {
			name string
			p    optimus.ServePercentiles
		}{
			{"ttft", res.TTFT}, {"tpot", res.TPOT}, {"e2e", res.E2E}, {"queue", res.Queue},
		} {
			fmt.Fprintf(w, "  %-8s %10s %10s %10s %10s %10s\n", row.name,
				units.FormatSeconds(row.p.P50), units.FormatSeconds(row.p.P95),
				units.FormatSeconds(row.p.P99), units.FormatSeconds(row.p.Mean),
				units.FormatSeconds(row.p.Max))
		}
		// The per-tenant breakdown matters exactly when there is more than
		// one tenant; the degenerate single-tenant table would repeat the
		// aggregate rows above.
		if len(res.PerTenant) > 1 {
			fmt.Fprintf(w, "  %-12s %8s %10s %10s %10s %10s\n",
				"tenant", "requests", "ttft-p95", "tpot-p95", "e2e-p95", "queue-p95")
			for _, tm := range res.PerTenant {
				fmt.Fprintf(w, "  %-12s %8d %10s %10s %10s %10s\n", tm.Tenant, tm.Requests,
					units.FormatSeconds(tm.TTFT.P95), units.FormatSeconds(tm.TPOT.P95),
					units.FormatSeconds(tm.E2E.P95), units.FormatSeconds(tm.Queue.P95))
			}
		}
		return nil
	case "csv":
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"id", "tenant", "prompt", "gen",
			"arrival_s", "admitted_s", "first_token_s",
			"done_s", "queue_s", "ttft_s", "tpot_s", "e2e_s", "preemptions",
			"kv_transfers", "kv_transfer_s"}); err != nil {
			return err
		}
		g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		for _, m := range res.PerRequest {
			if err := cw.Write([]string{
				strconv.Itoa(m.ID), m.Tenant,
				strconv.Itoa(m.PromptTokens), strconv.Itoa(m.GenTokens),
				g(m.Arrival), g(m.Admitted), g(m.FirstToken),
				g(m.Done), g(m.Queue), g(m.TTFT), g(m.TPOT), g(m.E2E),
				strconv.Itoa(m.Preemptions),
				strconv.Itoa(m.KVTransfers), g(m.KVTransferTime),
			}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	default:
		return fmt.Errorf("unknown format %q (text|csv|json)", format)
	}
}
