package mapsearch

import (
	"testing"

	"optimus/internal/arch"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/tech"
	"optimus/internal/train"
)

func request(t *testing.T, m model.Config, gpus, batch int) Request {
	t.Helper()
	sys, err := arch.DGXA100(gpus)
	if err != nil {
		t.Fatal(err)
	}
	return Request{
		Model: m, System: sys,
		GlobalBatch: batch, Seq: 2048, Precision: tech.BF16,
	}
}

func TestSearchFindsFittingStrategies(t *testing.T) {
	cands, err := Search(request(t, model.GPT175B(), 64, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i, c := range cands {
		if !c.Fits {
			t.Errorf("candidate %d (%s) does not fit but overflow not allowed", i, c.Map)
		}
		if c.Time <= 0 {
			t.Errorf("candidate %d has non-positive time", i)
		}
		if i > 0 && c.Time < cands[i-1].Time-1e-12 {
			t.Error("candidates not sorted by time")
		}
	}
}

func TestBestBeatsOrMatchesPaperConfig(t *testing.T) {
	// The planner must find a strategy at least as fast as the paper's
	// hand-chosen 1-8-8 full-recompute configuration for GPT-175B/64.
	req := request(t, model.GPT175B(), 64, 64)
	best, err := Best(req)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := train.Predict(train.Spec{
		Model: req.Model, System: req.System,
		Map:         parallel.Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: parallel.OneFOneB},
		GlobalBatch: 64, Seq: 2048, Precision: tech.BF16,
		Recompute: memfoot.Full,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Time > paper.Total*1.001 {
		t.Errorf("planner's best %.1fs is slower than the paper config %.1fs (%s)",
			best.Time, paper.Total, best.Map)
	}
	t.Logf("best: %s %v — %.1fs (MFU %.0f%%) vs paper config %.1fs",
		best.Map, best.Recompute, best.Time, 100*best.MFU, paper.Total)
}

func TestTPStaysInNode(t *testing.T) {
	cands, err := Search(request(t, model.GPT22B(), 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Map.TP > 8 {
			t.Errorf("TP %d exceeds the node size", c.Map.TP)
		}
		if c.Map.Devices() != 16 {
			t.Errorf("mapping %s does not use all 16 devices", c.Map)
		}
	}
}

func TestLargeModelNeedsRecompute(t *testing.T) {
	// GPT-1008B on 512 GPUs cannot fit without activation recomputation;
	// every fitting strategy must use one.
	cands, err := Search(request(t, model.GPT1008B(), 512, 512))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Recompute == memfoot.NoRecompute {
			t.Errorf("no-recompute strategy %s claims to fit a 1T model", c.Map)
		}
	}
}

func TestAllowOverflowRanksFittingFirst(t *testing.T) {
	req := request(t, model.GPT175B(), 64, 64)
	req.Constraints.AllowOverflow = true
	req.Constraints.TopK = 50
	cands, err := Search(req)
	if err != nil {
		t.Fatal(err)
	}
	seenOverflow := false
	for _, c := range cands {
		if !c.Fits {
			seenOverflow = true
		} else if seenOverflow {
			t.Fatal("fitting candidate ranked after an overflowing one")
		}
	}
}

func TestTopKBounds(t *testing.T) {
	req := request(t, model.GPT22B(), 8, 8)
	req.Constraints.TopK = 3
	cands, err := Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 3 {
		t.Errorf("TopK=3 returned %d candidates", len(cands))
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(Request{}); err == nil {
		t.Error("empty request should error")
	}
	req := request(t, model.GPT22B(), 8, 8)
	req.GlobalBatch = 0
	if _, err := Search(req); err == nil {
		t.Error("zero batch should error")
	}
	// A batch size indivisible by any DP×microbatch has no strategies.
	req = request(t, model.GPT22B(), 8, 7)
	req.Constraints.Microbatches = []int{16}
	if _, err := Search(req); err == nil {
		t.Error("infeasible batch should error")
	}
}
