// Package mapsearch finds the best parallelization strategy for a model on
// a system — the planning capability the paper derives from its memory and
// performance models (§5.1: "We can also determine the best parallelism
// mapping or training settings for an LLM model on a certain hardware
// system"). It enumerates the feasible (DP, TP, PP, SP, microbatch,
// schedule, recomputation) space, rejects mappings that overflow device
// memory, predicts the iteration time of the rest, and ranks them.
package mapsearch

import (
	"fmt"
	"sort"

	"optimus/internal/arch"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/tech"
	"optimus/internal/train"
)

// Constraints bound the search space.
type Constraints struct {
	// MaxTP caps the tensor-parallel degree; zero means the node size
	// (TP and SP stay inside a node, §4.2).
	MaxTP int
	// Microbatches are the candidate per-device microbatch sizes;
	// nil means {1, 2, 4}.
	Microbatches []int
	// Recomputes are the regimes to consider; nil means all three.
	Recomputes []memfoot.Recompute
	// Schedules are the pipeline schedules to consider; nil means 1F1B
	// and interleaved (v=2).
	Schedules []parallel.Schedule
	// AllowOverflow keeps memory-overflowing candidates in the ranking
	// (flagged, after all fitting ones).
	AllowOverflow bool
	// TopK bounds the returned candidates; zero means 10.
	TopK int
}

func (c Constraints) withDefaults(sys *arch.System) Constraints {
	if c.MaxTP <= 0 {
		c.MaxTP = sys.DevicesPerNode
	}
	if len(c.Microbatches) == 0 {
		c.Microbatches = []int{1, 2, 4}
	}
	if len(c.Recomputes) == 0 {
		c.Recomputes = []memfoot.Recompute{memfoot.NoRecompute, memfoot.Selective, memfoot.Full}
	}
	if len(c.Schedules) == 0 {
		c.Schedules = []parallel.Schedule{parallel.OneFOneB, parallel.Interleaved1F1B}
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	return c
}

// Candidate is one evaluated strategy.
type Candidate struct {
	Map       parallel.Mapping
	Recompute memfoot.Recompute
	// Time is the predicted seconds per batch.
	Time float64
	// MFU is the model-FLOPs utilization.
	MFU float64
	// Memory is the per-device footprint.
	Memory memfoot.Breakdown
	// Fits reports whether the footprint fits the device.
	Fits bool
}

// Request describes the planning problem.
type Request struct {
	Model       model.Config
	System      *arch.System
	GlobalBatch int
	Seq         int
	Precision   tech.Precision
	Constraints Constraints
}

// divisors returns the divisors of n in ascending order.
func divisors(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// Search enumerates and ranks parallelization strategies. Results are
// ordered fitting-first, then by predicted time.
func Search(r Request) ([]Candidate, error) {
	if r.System == nil {
		return nil, fmt.Errorf("mapsearch: no system")
	}
	if err := r.Model.Validate(); err != nil {
		return nil, err
	}
	if r.GlobalBatch <= 0 || r.Seq <= 0 {
		return nil, fmt.Errorf("mapsearch: non-positive batch %d or seq %d", r.GlobalBatch, r.Seq)
	}
	c := r.Constraints.withDefaults(r.System)
	devices := r.System.NumDevices()
	capacity := r.System.Device.DRAMCapacity()

	var out []Candidate
	seen := make(map[string]bool)
	for _, tp := range divisors(devices) {
		if tp > c.MaxTP || r.Model.Heads%tp != 0 {
			continue
		}
		for _, pp := range divisors(devices / tp) {
			dp := devices / (tp * pp)
			for _, mb := range c.Microbatches {
				if r.GlobalBatch%(dp*mb) != 0 {
					continue
				}
				for _, sched := range c.Schedules {
					m := parallel.Mapping{
						DP: dp, TP: tp, PP: pp, SP: tp > 1,
						Microbatch: mb, Schedule: sched,
					}
					if sched == parallel.Interleaved1F1B {
						if pp < 2 || r.Model.Layers%(pp*2) != 0 {
							continue
						}
						m.VirtualStages = 2
					}
					if m.Validate(r.Model.Layers, r.GlobalBatch) != nil {
						continue
					}
					for _, rec := range c.Recomputes {
						key := fmt.Sprintf("%s|%v", m, rec)
						if seen[key] {
							continue
						}
						seen[key] = true
						cand, ok := evaluate(r, m, rec, capacity)
						if !ok {
							continue
						}
						if !cand.Fits && !c.AllowOverflow {
							continue
						}
						out = append(out, cand)
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mapsearch: no feasible strategy for %s on %d devices (batch %d)",
			r.Model.Name, devices, r.GlobalBatch)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fits != out[j].Fits {
			return out[i].Fits
		}
		return out[i].Time < out[j].Time
	})
	if len(out) > c.TopK {
		out = out[:c.TopK]
	}
	return out, nil
}

// evaluate predicts one strategy.
func evaluate(r Request, m parallel.Mapping, rec memfoot.Recompute, capacity float64) (Candidate, bool) {
	res, err := train.Predict(train.Spec{
		Model:       r.Model,
		System:      r.System,
		Map:         m,
		GlobalBatch: r.GlobalBatch,
		Seq:         r.Seq,
		Precision:   r.Precision,
		Recompute:   rec,
	})
	if err != nil {
		return Candidate{}, false
	}
	return Candidate{
		Map:       m,
		Recompute: rec,
		Time:      res.Total,
		MFU:       res.MFU,
		Memory:    res.MemoryPerDevice,
		Fits:      memfoot.FitsDevice(res.MemoryPerDevice, capacity),
	}, true
}

// Best returns the single best strategy.
func Best(r Request) (Candidate, error) {
	all, err := Search(r)
	if err != nil {
		return Candidate{}, err
	}
	return all[0], nil
}
