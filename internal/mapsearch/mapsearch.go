// Package mapsearch finds the best parallelization strategy for a model on
// a system — the planning capability the paper derives from its memory and
// performance models (§5.1: "We can also determine the best parallelism
// mapping or training settings for an LLM model on a certain hardware
// system"). It enumerates the feasible (DP, TP, PP, SP, microbatch,
// schedule, recomputation) space, rejects mappings that overflow device
// memory, predicts the iteration time of the rest, and ranks them.
//
// The enumeration and costing are shared with internal/sweep: Search is a
// single-cell sweep run through sweep.Serial, the deliberately serial
// golden-reference path that the concurrent sweep engine is tested against.
package mapsearch

import (
	"fmt"

	"optimus/internal/arch"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/sweep"
	"optimus/internal/tech"
)

// Constraints bound the search space.
type Constraints = sweep.Constraints

// Candidate is one evaluated strategy.
type Candidate struct {
	Map       parallel.Mapping
	Recompute memfoot.Recompute
	// Time is the predicted seconds per batch.
	Time float64
	// MFU is the model-FLOPs utilization.
	MFU float64
	// Memory is the per-device footprint.
	Memory memfoot.Breakdown
	// Fits reports whether the footprint fits the device.
	Fits bool
}

// Request describes the planning problem.
type Request struct {
	Model       model.Config
	System      *arch.System
	GlobalBatch int
	Seq         int
	Precision   tech.Precision
	Constraints Constraints
}

// spec expands the request into a single-cell sweep grid.
func (r Request) spec() sweep.Spec {
	return sweep.Spec{
		Workload:      sweep.Training,
		Models:        []model.Config{r.Model},
		Systems:       []*arch.System{r.System},
		Precisions:    []tech.Precision{r.Precision},
		GlobalBatches: []int{r.GlobalBatch},
		Seqs:          []int{r.Seq},
		Constraints:   r.Constraints,
	}
}

// Search enumerates and ranks parallelization strategies through the
// sweep package's serial reference path. Results are ordered
// fitting-first, then by predicted time.
func Search(r Request) ([]Candidate, error) {
	if r.System == nil {
		return nil, fmt.Errorf("mapsearch: no system")
	}
	if err := r.Model.Validate(); err != nil {
		return nil, err
	}
	if r.GlobalBatch <= 0 || r.Seq <= 0 {
		return nil, fmt.Errorf("mapsearch: non-positive batch %d or seq %d", r.GlobalBatch, r.Seq)
	}
	res, err := sweep.Serial(r.spec())
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("mapsearch: no feasible strategy for %s on %d devices (batch %d)",
			r.Model.Name, r.System.NumDevices(), r.GlobalBatch)
	}
	return Candidates(res.Rows), nil
}

// Candidates converts ranked sweep rows to the planner's result type.
func Candidates(rows []sweep.Row) []Candidate {
	out := make([]Candidate, len(rows))
	for i, row := range rows {
		out[i] = Candidate{
			Map:       row.Point.Map,
			Recompute: row.Point.Recompute,
			Time:      row.Metrics.Time,
			MFU:       row.Metrics.MFU,
			Memory:    row.Metrics.Memory,
			Fits:      row.Metrics.Fits,
		}
	}
	return out
}

// Best returns the single best strategy.
func Best(r Request) (Candidate, error) {
	all, err := Search(r)
	if err != nil {
		return Candidate{}, err
	}
	return all[0], nil
}
