package graph

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"optimus/internal/arch"
	"optimus/internal/kernels"
	"optimus/internal/model"
	"optimus/internal/roofline"
	"optimus/internal/tech"
)

func TestAddAndQuery(t *testing.T) {
	g := &Graph{}
	a, err := g.Add("a", Kernel, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.Add("b", Kernel, 2, a)
	if g.Len() != 2 {
		t.Errorf("len = %d", g.Len())
	}
	n, err := g.Node(b)
	if err != nil || n.Name != "b" || n.Cost != 2 {
		t.Errorf("Node(b) = %+v, %v", n, err)
	}
	if _, err := g.Node(99); err == nil {
		t.Error("out-of-range node should error")
	}
}

func TestAddRejectsBadInputs(t *testing.T) {
	g := &Graph{}
	if _, err := g.Add("neg", Kernel, -1); err == nil {
		t.Error("negative cost should error")
	}
	if _, err := g.Add("nan", Kernel, math.NaN()); err == nil {
		t.Error("NaN cost should error")
	}
	if _, err := g.Add("dangling", Kernel, 1, 42); err == nil {
		t.Error("unknown dependency should error")
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	// a → {b(3), c(1)} → d: critical path a-b-d with length 3+costs.
	g := &Graph{}
	a := g.MustAdd("a", Marker, 0)
	b := g.MustAdd("b", Kernel, 3, a)
	c := g.MustAdd("c", Kernel, 1, a)
	d := g.MustAdd("d", Kernel, 2, b, c)
	length, path := g.CriticalPath()
	if length != 5 {
		t.Errorf("critical path length = %g, want 5", length)
	}
	want := []NodeID{a, b, d}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Errorf("critical path = %v, want %v", path, want)
	}
	if g.TotalCost() != 6 {
		t.Errorf("total = %g, want 6", g.TotalCost())
	}
	if p := g.Parallelism(); math.Abs(p-6.0/5) > 1e-12 {
		t.Errorf("parallelism = %g, want 1.2", p)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &Graph{}
	if l, p := g.CriticalPath(); l != 0 || p != nil {
		t.Error("empty graph should have zero critical path")
	}
	if g.Parallelism() != 0 {
		t.Error("empty graph parallelism should be 0")
	}
}

func buildSpec(t *testing.T, layers int) BuildSpec {
	t.Helper()
	dev := arch.A100()
	return BuildSpec{
		Model: model.Llama2_13B(),
		Exec: kernels.Exec{
			Batch: 1, Seq: 200, Context: 200, TP: 1,
			Precision: tech.FP16, Phase: kernels.Prefill,
		},
		Layers: layers,
		Engine: roofline.New(dev),
		Link:   arch.IntraLink(tech.NVLink3),
	}
}

func TestBuildForwardStructure(t *testing.T) {
	g, err := BuildForward(buildSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	// input + embedding(1 for llama) + 2 layers × ops + head(2) + output.
	perLayer := len(kernels.LayerForward(model.Llama2_13B(), buildSpec(t, 1).Exec))
	want := 1 + 1 + 2*perLayer + 2 + 1
	if g.Len() != want {
		t.Errorf("graph size = %d, want %d", g.Len(), want)
	}
	cp, path := g.CriticalPath()
	if cp <= 0 || len(path) == 0 {
		t.Fatal("no critical path")
	}
	// The graph is a chain of diamonds: the critical path must be shorter
	// than the serial total (the skip edges are bypasses) or equal when
	// the chain dominates, and never longer.
	if cp > g.TotalCost()+1e-12 {
		t.Error("critical path exceeds serial cost")
	}
	// First and last nodes are the markers.
	first, _ := g.Node(path[0])
	if first.Name != "input" {
		t.Errorf("path starts at %s, want input", first.Name)
	}
}

func TestBuildForwardCostMatchesKernelSum(t *testing.T) {
	// The graph's kernel cost must equal pricing the op stream directly.
	s := buildSpec(t, 3)
	g, err := BuildForward(s)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, op := range kernels.EmbeddingForward(s.Model, s.Exec) {
		want += opCost(s, op)
	}
	for i := 0; i < 3; i++ {
		for _, op := range kernels.LayerForward(s.Model, s.Exec) {
			want += opCost(s, op)
		}
	}
	for _, op := range kernels.LogitsForward(s.Model, s.Exec) {
		want += opCost(s, op)
	}
	if got := g.TotalCost(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("graph total %g != op-stream total %g", got, want)
	}
}

func TestBuildForwardCollectives(t *testing.T) {
	s := buildSpec(t, 2)
	s.Exec.TP = 8
	s.Model = model.Llama2_70B() // heads divisible by 8
	g, err := BuildForward(s)
	if err != nil {
		t.Fatal(err)
	}
	costs := g.CostByKind()
	if costs[Collective] <= 0 {
		t.Error("TP graph must contain collective cost")
	}
	if costs[Kernel] <= 0 {
		t.Error("graph must contain kernel cost")
	}
}

func TestBuildForwardRejectsBadSpecs(t *testing.T) {
	s := buildSpec(t, 0)
	if _, err := BuildForward(s); err == nil {
		t.Error("zero layers should error")
	}
	s = buildSpec(t, 1)
	s.Engine = nil
	if _, err := BuildForward(s); err == nil {
		t.Error("nil engine should error")
	}
	s = buildSpec(t, 1)
	s.Exec.Batch = 0
	if _, err := BuildForward(s); err == nil {
		t.Error("invalid exec should error")
	}
}

func TestDOTExport(t *testing.T) {
	g, err := BuildForward(buildSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("llama-layer")
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(dot, "qkv") {
		t.Error("DOT output should carry op names")
	}
}

func TestKindString(t *testing.T) {
	if Kernel.String() != "kernel" || Collective.String() != "collective" ||
		Transfer.String() != "transfer" || Marker.String() != "marker" {
		t.Error("kind names wrong")
	}
}

// Property: critical path is monotone under node addition — appending a
// dependent node never shortens it.
func TestCriticalPathMonotoneProperty(t *testing.T) {
	f := func(costs []uint8) bool {
		g := &Graph{}
		prev := g.MustAdd("root", Marker, 0)
		before, _ := g.CriticalPath()
		for i, c := range costs {
			if i > 8 {
				break
			}
			prev = g.MustAdd("n", Kernel, float64(c), prev)
			now, _ := g.CriticalPath()
			if now < before-1e-12 {
				return false
			}
			before = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TotalCost ≥ CriticalPath ≥ max single node cost.
func TestCostBoundsProperty(t *testing.T) {
	f := func(costs []uint8) bool {
		g := &Graph{}
		root := g.MustAdd("root", Marker, 0)
		maxCost := 0.0
		for i, c := range costs {
			if i > 12 {
				break
			}
			// Fan out from the root: a wide graph.
			g.MustAdd("n", Kernel, float64(c), root)
			if float64(c) > maxCost {
				maxCost = float64(c)
			}
		}
		cp, _ := g.CriticalPath()
		return g.TotalCost() >= cp-1e-12 && cp >= maxCost-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
