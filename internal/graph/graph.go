// Package graph provides the LLM task-graph representation of the paper's
// Fig. 1: a typed DAG of kernel, collective and transfer nodes with
// per-node predicted costs, topological scheduling, critical-path
// analysis, and DOT export for visualization. The builders turn a model
// configuration plus an execution context into the per-device graph the
// performance prediction engine walks.
package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"optimus/internal/arch"
	"optimus/internal/comm"
	"optimus/internal/kernels"
	"optimus/internal/model"
	"optimus/internal/roofline"
)

// Kind classifies a node.
type Kind int

const (
	// Kernel is an on-device compute kernel (GEMM or element-wise).
	Kernel Kind = iota
	// Collective is a multi-device communication operation.
	Collective
	// Transfer is a point-to-point move (pipeline stage boundary).
	Transfer
	// Marker is a zero-cost structural node (phase boundaries).
	Marker
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Kernel:
		return "kernel"
	case Collective:
		return "collective"
	case Transfer:
		return "transfer"
	case Marker:
		return "marker"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NodeID identifies a node within its graph.
type NodeID int

// Node is one task.
type Node struct {
	ID   NodeID
	Name string
	Kind Kind
	// Cost is the node's predicted execution time in seconds.
	Cost float64
}

// Graph is a DAG of tasks. The zero value is an empty graph ready to use.
type Graph struct {
	nodes []Node
	succs [][]NodeID
	preds [][]NodeID
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns a node by ID.
func (g *Graph) Node(id NodeID) (Node, error) {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return Node{}, fmt.Errorf("graph: node %d out of range", id)
	}
	return g.nodes[id], nil
}

// Add inserts a node depending on deps and returns its ID.
func (g *Graph) Add(name string, kind Kind, cost float64, deps ...NodeID) (NodeID, error) {
	if cost < 0 || math.IsNaN(cost) {
		return 0, fmt.Errorf("graph: invalid cost %g for %s", cost, name)
	}
	id := NodeID(len(g.nodes))
	for _, d := range deps {
		if int(d) < 0 || int(d) >= len(g.nodes) {
			return 0, fmt.Errorf("graph: dependency %d of %s out of range", d, name)
		}
	}
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Kind: kind, Cost: cost})
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, append([]NodeID(nil), deps...))
	for _, d := range deps {
		g.succs[d] = append(g.succs[d], id)
	}
	return id, nil
}

// MustAdd is Add for builders with validated inputs.
func (g *Graph) MustAdd(name string, kind Kind, cost float64, deps ...NodeID) NodeID {
	id, err := g.Add(name, kind, cost, deps...)
	if err != nil {
		panic(err)
	}
	return id
}

// TopoOrder returns the nodes in a dependency-respecting order. Since Add
// only accepts existing nodes as dependencies, insertion order is already
// topological; the method exists for symmetry and future mutation support.
func (g *Graph) TopoOrder() []NodeID {
	out := make([]NodeID, len(g.nodes))
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// TotalCost returns the serial execution time: the sum of node costs.
func (g *Graph) TotalCost() float64 {
	var s float64
	for _, n := range g.nodes {
		s += n.Cost
	}
	return s
}

// CriticalPath returns the longest cost-weighted path and its length —
// the graph's minimum makespan under unlimited parallelism.
func (g *Graph) CriticalPath() (float64, []NodeID) {
	if len(g.nodes) == 0 {
		return 0, nil
	}
	finish := make([]float64, len(g.nodes))
	via := make([]NodeID, len(g.nodes))
	for i := range via {
		via[i] = -1
	}
	var best NodeID
	for i, n := range g.nodes {
		start := 0.0
		if preds := g.preds[i]; len(preds) > 0 {
			start = finish[preds[0]]
			via[i] = preds[0]
			for _, p := range preds[1:] {
				if finish[p] > start {
					start = finish[p]
					via[i] = p
				}
			}
		}
		finish[i] = start + n.Cost
		if finish[i] > finish[best] {
			best = NodeID(i)
		}
	}
	var path []NodeID
	for at := best; at != -1; at = via[at] {
		path = append(path, at)
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return finish[best], path
}

// Parallelism returns total cost over critical-path length — the average
// width of the graph.
func (g *Graph) Parallelism() float64 {
	cp, _ := g.CriticalPath()
	if cp == 0 {
		return 0
	}
	return g.TotalCost() / cp
}

// CostByKind aggregates node costs per kind.
func (g *Graph) CostByKind() map[Kind]float64 {
	out := make(map[Kind]float64)
	for _, n := range g.nodes {
		out[n.Kind] += n.Cost
	}
	return out
}

// DOT renders the graph in Graphviz format, with node labels carrying the
// predicted cost.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", title)
	shapes := map[Kind]string{Collective: "ellipse", Transfer: "diamond", Marker: "point"}
	for _, n := range g.nodes {
		attr := ""
		if s, ok := shapes[n.Kind]; ok {
			attr = fmt.Sprintf(", shape=%s", s)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%.1fµs\"%s];\n", n.ID, n.Name, n.Cost*1e6, attr)
	}
	for id, succs := range g.succs {
		sorted := append([]NodeID(nil), succs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, s := range sorted {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Builder options for the transformer-layer graph.
type BuildSpec struct {
	Model model.Config
	Exec  kernels.Exec
	// Layers is how many transformer layers to chain.
	Layers int
	// Engine prices kernels; Link and Algorithm price collectives over the
	// Exec's TP group.
	Engine    *roofline.Engine
	Link      arch.Link
	Algorithm comm.Algorithm
}

// opCost prices one kernels.Op.
func opCost(s BuildSpec, op kernels.Op) float64 {
	switch op.Kind {
	case kernels.KindGEMM:
		return s.Engine.EstimateGEMM(op.GEMM).Time
	case kernels.KindElementwise:
		return s.Engine.EstimateElementwise(op.EW).Time
	case kernels.KindFused:
		return s.Engine.EstimateFused(op.Fused).Time
	case kernels.KindAllReduce:
		return comm.AllReduceTime(s.Algorithm, op.CommBytes, s.Exec.TP, s.Link)
	case kernels.KindAllGather:
		return comm.AllGatherTime(op.CommBytes, s.Exec.TP, s.Link)
	case kernels.KindReduceScatter:
		return comm.ReduceScatterTime(op.CommBytes, s.Exec.TP, s.Link)
	default:
		return 0
	}
}

func opKind(op kernels.Op) Kind {
	switch op.Kind {
	case kernels.KindGEMM, kernels.KindElementwise, kernels.KindFused:
		return Kernel
	default:
		return Collective
	}
}

// BuildForward constructs the per-device forward task graph: embedding,
// the chained transformer layers with residual bypass edges, and the
// output head. The residual structure makes the graph a chain of diamonds
// rather than a pure chain, so the critical path is a genuine DAG
// computation.
func BuildForward(s BuildSpec) (*Graph, error) {
	if s.Engine == nil {
		return nil, fmt.Errorf("graph: nil engine")
	}
	if err := s.Exec.Validate(); err != nil {
		return nil, err
	}
	if s.Layers <= 0 {
		return nil, fmt.Errorf("graph: non-positive layer count %d", s.Layers)
	}
	g := &Graph{}
	cursor := g.MustAdd("input", Marker, 0)
	for _, op := range kernels.EmbeddingForward(s.Model, s.Exec) {
		cursor = g.MustAdd(op.Name, opKind(op), opCost(s, op), cursor)
	}

	layerOps := kernels.LayerForward(s.Model, s.Exec)
	for l := 0; l < s.Layers; l++ {
		layerIn := cursor
		prefix := fmt.Sprintf("L%d/", l)
		for _, op := range layerOps {
			deps := []NodeID{cursor}
			// Residual joins also consume the block input, forming the
			// diamond: block input feeds both the kernel chain and the
			// skip connection.
			if strings.HasSuffix(op.Name, "-skip") {
				deps = append(deps, layerIn)
			}
			cursor = g.MustAdd(prefix+op.Name, opKind(op), opCost(s, op), deps...)
			if strings.HasSuffix(op.Name, "-skip") {
				layerIn = cursor // next block's residual input
			}
		}
	}

	for _, op := range kernels.LogitsForward(s.Model, s.Exec) {
		cursor = g.MustAdd(op.Name, opKind(op), opCost(s, op), cursor)
	}
	g.MustAdd("output", Marker, 0, cursor)
	return g, nil
}
