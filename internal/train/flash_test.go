package train

import (
	"testing"

	"optimus/internal/memfoot"
	"optimus/internal/valdata"
)

// FlashAttention's payoff grows with sequence length: at the paper's 2k
// context it is a modest win; at 8k+ it becomes substantial (§1.1's
// motivation for IO-aware attention).
func TestFlashAttentionSpeedsLongContexts(t *testing.T) {
	base := specFor(t, valdata.Table1()[1]) // GPT-175B
	base.Recompute = memfoot.Selective

	speedup := func(seq, batch int) float64 {
		std := base
		std.Seq = seq
		std.GlobalBatch = batch
		s, err := Predict(std)
		if err != nil {
			t.Fatal(err)
		}
		fl := std
		fl.Flash = true
		f, err := Predict(fl)
		if err != nil {
			t.Fatal(err)
		}
		return s.Total / f.Total
	}

	at2k := speedup(2048, 64)
	at8k := speedup(8192, 16)
	if at2k < 1.0 {
		t.Errorf("flash should never slow training: %.3fx at 2k", at2k)
	}
	if at8k <= at2k {
		t.Errorf("flash gain should grow with context: %.3fx at 2k vs %.3fx at 8k", at2k, at8k)
	}
	if at8k < 1.03 {
		t.Errorf("flash gain at 8k only %.3fx; the quadratic traffic should matter", at8k)
	}
	t.Logf("flash-attention speedup: %.3fx at 2k, %.3fx at 8k", at2k, at8k)
}

// With flash attention the layer has no separate softmax traffic, so the
// element-wise bucket shrinks.
func TestFlashShrinksElementwiseBucket(t *testing.T) {
	base := specFor(t, valdata.Table1()[1])
	std, err := Predict(base)
	if err != nil {
		t.Fatal(err)
	}
	fl := base
	fl.Flash = true
	f, err := Predict(fl)
	if err != nil {
		t.Fatal(err)
	}
	if f.EWTime >= std.EWTime {
		t.Errorf("flash should remove softmax/dropout streams: %g vs %g", f.EWTime, std.EWTime)
	}
}
