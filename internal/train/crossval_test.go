package train

import (
	"math"
	"testing"

	"optimus/internal/pipesim"
	"optimus/internal/valdata"
)

// The closed-form pipeline model inside Predict must agree with the
// discrete-event schedule simulator: same per-slot times, same bubble.
func TestClosedFormMatchesScheduleSimulator(t *testing.T) {
	for _, c := range []int{1, 3} { // 175B (PP=8) and 1008B (PP=64) rows
		spec := specFor(t, valdata.Table1()[c])
		res, err := Predict(spec)
		if err != nil {
			t.Fatal(err)
		}
		nMicro := spec.Map.Microbatches(spec.GlobalBatch)

		// Reconstruct the per-microbatch slot times the closed form used:
		// compute+TP-comm per slot, split 1:2(+recompute) fwd:bwd.
		slot := (res.Compute + res.TPComm) / float64(nMicro)
		fwd := slot / 3 // fwd : bwd+recompute ≈ 1 : 2 within a slot
		bwd := slot - fwd

		sim, err := pipesim.Simulate(pipesim.Config{
			Stages:       spec.Map.PP,
			Microbatches: nMicro,
			Chunks:       1,
			FwdTime:      fwd,
			BwdTime:      bwd,
		})
		if err != nil {
			t.Fatal(err)
		}
		closed := res.Compute + res.TPComm + res.Bubble
		if diff := math.Abs(sim.Total-closed) / closed; diff > 0.02 {
			t.Errorf("row %d: simulator %.1fs vs closed form %.1fs (%.1f%% apart)",
				c, sim.Total, closed, 100*diff)
		}
		// The simulated bubble fraction must match the mapping's formula.
		want := spec.Map.BubbleFraction(nMicro)
		if math.Abs(sim.BubbleFraction-want) > 0.02 {
			t.Errorf("row %d: simulated bubble %.3f vs formula %.3f",
				c, sim.BubbleFraction, want)
		}
	}
}

// Attention's quadratic term: at fixed token count, longer sequences cost
// more (the §1.1 scaling challenge).
func TestLongContextQuadraticCost(t *testing.T) {
	spec := specFor(t, valdata.Table1()[1]) // GPT-175B
	spec.Recompute = 0                      // no recompute: pure fwd/bwd

	// 64 sequences of 2048 tokens vs 16 sequences of 8192: same total
	// tokens, but the attention score matrices are 16x larger per
	// sequence in the long-context case.
	short, err := Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	long := spec
	long.Seq = 8192
	long.GlobalBatch = 16
	longRes, err := Predict(long)
	if err != nil {
		t.Fatal(err)
	}
	if longRes.Total <= short.Total {
		t.Errorf("long context should cost more at equal tokens: %.1fs vs %.1fs",
			longRes.Total, short.Total)
	}
	// But far less than quadratically overall: the linear GEMMs dominate
	// at s/h = 8192/12288 < 1.
	if longRes.Total > 2.5*short.Total {
		t.Errorf("long-context overhead %.1fx implausibly large", longRes.Total/short.Total)
	}
}

// TP degrees above the head count must still produce a valid (clamped)
// prediction rather than a zero-width GEMM.
func TestTPBeyondHeadsClamps(t *testing.T) {
	spec := specFor(t, valdata.Table1()[0]) // GPT-22B on 8 GPUs
	res, err := Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 || math.IsNaN(res.Total) || math.IsInf(res.Total, 0) {
		t.Errorf("prediction degenerate: %g", res.Total)
	}
}
