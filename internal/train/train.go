// Package train predicts the per-batch iteration time of distributed LLM
// training (paper §3, validated in §4.2): per-device kernel time from the
// hierarchical roofline, Megatron tensor-parallel collectives, pipeline
// schedules with their bubbles and point-to-point transfers, the
// data-parallel gradient all-reduce, activation recomputation overheads,
// and the optimizer step — decomposed into the compute / communication /
// other categories of the paper's Fig. 5.
package train

import (
	"fmt"
	"math"

	"optimus/internal/arch"
	"optimus/internal/comm"
	"optimus/internal/kernels"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/roofline"
	"optimus/internal/tech"
)

// Spec fixes one training experiment.
type Spec struct {
	Model  model.Config
	System *arch.System
	Map    parallel.Mapping
	// GlobalBatch is the batch size in sequences per iteration.
	GlobalBatch int
	// Seq is the training sequence length.
	Seq int
	// Precision is the GEMM compute precision (BF16 on A100, FP8 on
	// H100/H200, FP4 on B200 in the paper's Fig. 5 study).
	Precision tech.Precision
	// Store is the activation/weight storage precision; zero means BF16.
	Store tech.Precision
	// Recompute selects the activation recomputation regime.
	Recompute memfoot.Recompute
	// Flash enables IO-aware fused attention (§1.1); pair with Selective
	// recomputation for consistent memory accounting.
	Flash bool
	// DPOverlap is the fraction of the data-parallel gradient all-reduce
	// hidden under the backward pass (0 = fully exposed).
	DPOverlap float64
}

func (s Spec) store() tech.Precision {
	if s.Store != tech.FP32 {
		return s.Store
	}
	return tech.BF16
}

// Validate checks the experiment's consistency.
func (s Spec) Validate() error {
	if s.System == nil {
		return fmt.Errorf("train: no system")
	}
	if err := s.System.Validate(); err != nil {
		return err
	}
	if err := s.Model.Validate(); err != nil {
		return err
	}
	if err := s.Map.Validate(s.Model.Layers, s.GlobalBatch); err != nil {
		return err
	}
	if s.Map.Devices() != s.System.NumDevices() {
		return fmt.Errorf("train: mapping needs %d devices, system has %d",
			s.Map.Devices(), s.System.NumDevices())
	}
	if s.Seq <= 0 {
		return fmt.Errorf("train: non-positive sequence length %d", s.Seq)
	}
	if s.DPOverlap < 0 || s.DPOverlap > 1 {
		return fmt.Errorf("train: DP overlap %g outside [0,1]", s.DPOverlap)
	}
	return nil
}

// Result is the per-iteration prediction with the Fig. 5 decomposition and
// finer detail.
type Result struct {
	// Total is the predicted time per batch in seconds.
	Total float64

	// Compute is on-device kernel time (GEMM + element-wise + recompute).
	Compute float64
	// Communication is TP collectives + PP transfers + DP all-reduce.
	Communication float64
	// Other is pipeline bubble + optimizer step (the paper's Fig. 5
	// "Other" category).
	Other float64

	// Fine-grained components (all in seconds, per iteration).
	GEMMTime      float64
	EWTime        float64
	RecomputeTime float64
	TPComm        float64
	PPComm        float64
	DPComm        float64
	Bubble        float64
	OptimizerStep float64

	// GEMMComputeBound and GEMMMemoryBound split per-iteration GEMM time
	// by roofline bound type (Fig. 7).
	GEMMComputeBound float64
	GEMMMemoryBound  float64

	// ModelFLOPs is the useful (no-recompute) FLOP count per iteration
	// across the whole system; MFU = ModelFLOPs / (Total × system peak).
	ModelFLOPs float64
	MFU        float64

	// DRAMBytes is the off-chip traffic per device per iteration and
	// WireBytes the per-device network traffic — inputs to the energy
	// model (internal/energy).
	DRAMBytes float64
	WireBytes float64

	// MemoryPerDevice is the worst-stage footprint.
	MemoryPerDevice memfoot.Breakdown
}

// bwdGEMMFactor: the backward pass runs two GEMMs (activation and weight
// gradients) per forward GEMM.
const bwdGEMMFactor = 2.0

// bwdEWFactor: backward element-wise traffic relative to forward (gradient
// streams are comparable; norm backward adds reduction passes).
const bwdEWFactor = 1.5

// layerCost aggregates the per-microbatch forward cost of an op list.
type layerCost struct {
	gemm      float64
	gemmComp  float64 // compute-bound share of gemm
	gemmMem   float64 // memory-bound share
	ew        float64
	comm      float64
	commCount int

	// traffic accounting for the energy model
	gemmBytes float64 // off-chip bytes moved by GEMMs
	ewBytes   float64 // off-chip bytes moved by element-wise kernels
	wireBytes float64 // per-device network bytes (ring-equivalent)
}

// collectiveTime resolves one collective op against the TP group fabric.
func collectiveTime(op kernels.Op, tp int, link arch.Link) float64 {
	switch op.Kind {
	case kernels.KindAllReduce:
		return comm.AllReduceTime(comm.Ring, op.CommBytes, tp, link)
	case kernels.KindAllGather:
		return comm.AllGatherTime(op.CommBytes, tp, link)
	case kernels.KindReduceScatter:
		return comm.ReduceScatterTime(op.CommBytes, tp, link)
	default:
		return 0
	}
}

// costOps runs an op list through the roofline engine and the TP fabric.
func costOps(eng *roofline.Engine, ops []kernels.Op, tp int, link arch.Link) layerCost {
	var c layerCost
	nf := float64(tp)
	for _, op := range ops {
		switch op.Kind {
		case kernels.KindGEMM:
			est := eng.EstimateGEMM(op.GEMM)
			c.gemm += est.Time
			c.gemmBytes += est.DRAMBytes
			if est.Bound == roofline.BoundCompute {
				c.gemmComp += est.Time
			} else {
				c.gemmMem += est.Time
			}
		case kernels.KindElementwise:
			est := eng.EstimateElementwise(op.EW)
			c.ew += est.Time
			c.ewBytes += est.DRAMBytes
		case kernels.KindFused:
			est := eng.EstimateFused(op.Fused)
			c.gemm += est.Time
			c.gemmBytes += est.DRAMBytes
			if est.Bound == roofline.BoundCompute {
				c.gemmComp += est.Time
			} else {
				c.gemmMem += est.Time
			}
		default:
			c.comm += collectiveTime(op, tp, link)
			c.commCount++
			if tp > 1 {
				// Per-device wire traffic of a ring collective: an
				// all-reduce moves 2K(N-1)/N, an all-gather or
				// reduce-scatter K(N-1)/N.
				factor := (nf - 1) / nf
				if op.Kind == kernels.KindAllReduce {
					factor *= 2
				}
				c.wireBytes += op.CommBytes * factor
			}
		}
	}
	return c
}

// selectiveOps filters the attention-core ops that selective recomputation
// replays (scores, softmax, attention dropout — Eq. 2's discarded tensors).
func selectiveOps(ops []kernels.Op) []kernels.Op {
	var out []kernels.Op
	for _, op := range ops {
		switch op.Name {
		case "scores", "softmax", "attn-dropout":
			out = append(out, op)
		}
	}
	return out
}

// Predict estimates the iteration time of one training batch.
func Predict(s Spec) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	sys := s.System
	eng := roofline.New(sys.Device)
	m := s.Map
	nMicro := m.Microbatches(s.GlobalBatch)
	tpLink := sys.LinkBetween(m.TP)

	exec := kernels.Exec{
		Batch:     m.Microbatch,
		Seq:       s.Seq,
		Context:   s.Seq,
		TP:        m.TP,
		SP:        m.SP,
		Flash:     s.Flash,
		Precision: s.Precision,
		Store:     s.store(),
		Phase:     kernels.TrainForward,
	}

	layerOps := kernels.LayerForward(s.Model, exec)
	fwd := costOps(eng, layerOps, m.TP, tpLink)

	// Recompute cost per layer per microbatch (device + comm components).
	var recompute layerCost
	switch s.Recompute {
	case memfoot.Full:
		recompute = fwd
	case memfoot.Selective:
		recompute = costOps(eng, selectiveOps(layerOps), m.TP, tpLink)
	}

	layers := m.LayersPerDevice(s.Model.Layers)
	lf := float64(layers)

	// Per-microbatch, per-stage device time and TP communication.
	fwdDevice := lf * (fwd.gemm + fwd.ew)
	bwdDevice := lf * (bwdGEMMFactor*fwd.gemm + bwdEWFactor*fwd.ew)
	recompDevice := lf * (recompute.gemm + recompute.ew)
	fwdComm := lf * fwd.comm
	bwdComm := lf * fwd.comm // mirrored collectives in backward
	recompComm := lf * recompute.comm

	// Embedding and output head on the boundary stages; the pipeline's
	// critical path takes the slower of the two.
	embOps := kernels.EmbeddingForward(s.Model, exec)
	logitOps := kernels.LogitsForward(s.Model, exec)
	embCost := costOps(eng, embOps, m.TP, tpLink)
	logitCost := costOps(eng, logitOps, m.TP, tpLink)
	embDevice := embCost.gemm + embCost.ew
	logitDevice := logitCost.gemm + logitCost.ew
	boundary := math.Max(embDevice*(1+bwdGEMMFactor), logitDevice*(1+bwdGEMMFactor))

	// Slot time: one microbatch's forward+backward(+recompute) on the
	// slowest stage, including its TP collectives.
	slotDevice := fwdDevice + bwdDevice + recompDevice + boundary
	slotComm := fwdComm + bwdComm + recompComm
	slot := slotDevice + slotComm

	// Pipeline: (m + bubble) slots plus the exposed fill/drain transfers.
	p2pBytes := float64(m.Microbatch*s.Seq*s.Model.Hidden) * s.store().Bytes()
	ppLink := sys.Inter
	if m.TP*m.PP <= sys.DevicesPerNode {
		ppLink = sys.Intra
	}
	var ppComm float64
	if m.PP > 1 {
		perTransfer := comm.P2PTime(p2pBytes, ppLink)
		// Fill and drain cross every stage boundary once each way; the
		// steady-state transfers overlap with compute.
		ppComm = 2 * float64(m.P2PTransfersPerMicrobatch()) * perTransfer
	}

	// Data-parallel gradient all-reduce over the DP group.
	var dpComm float64
	if m.DP > 1 {
		gradBytes := memfoot.ParamsPerDevice(s.Model, m) * s.store().Bytes()
		dpLink := sys.Inter
		if m.Devices() <= sys.DevicesPerNode {
			dpLink = sys.Intra
		}
		dpComm = comm.AllReduceTime(comm.Ring, gradBytes, m.DP, dpLink) * (1 - s.DPOverlap)
	}

	// Optimizer step: a streaming pass over parameters, gradients and
	// optimizer state (read grad+master+m+v, write master+m+v+param ≈ 28
	// bytes per parameter at mixed precision).
	const optimizerBytesPerParam = 28
	dram := sys.Device.DRAMLevel()
	optStep := memfoot.ParamsPerDevice(s.Model, m) * optimizerBytesPerParam / dram.EffBW()

	bubble := m.BubbleSlots() * slot

	// Attribute the busy slots (one per microbatch) to compute and
	// communication; the bubble slots go to Other.
	busy := float64(nMicro)

	res := Result{
		GEMMTime:      busy * (lf*(1+bwdGEMMFactor)*fwd.gemm + boundary),
		EWTime:        busy * lf * (1 + bwdEWFactor) * fwd.ew,
		RecomputeTime: busy * recompDevice,
		TPComm:        busy * slotComm,
		PPComm:        ppComm,
		DPComm:        dpComm,
		Bubble:        bubble,
		OptimizerStep: optStep,
	}

	res.Compute = res.GEMMTime + res.EWTime + res.RecomputeTime
	res.Communication = res.TPComm + res.PPComm + res.DPComm
	res.Other = res.Bubble + res.OptimizerStep
	res.Total = res.Compute + res.Communication + res.Other

	// Bound-type split of GEMM time (forward shapes; backward mirrors).
	frac := func(part, whole float64) float64 {
		if whole == 0 {
			return 0
		}
		return part / whole
	}
	res.GEMMComputeBound = res.GEMMTime * frac(fwd.gemmComp, fwd.gemm)
	res.GEMMMemoryBound = res.GEMMTime * frac(fwd.gemmMem, fwd.gemm)

	// Useful model FLOPs: forward GEMMs × 3 (fwd + 2x bwd), no recompute.
	perLayerFwd := kernels.Summarize(layerOps).GEMMFLOPs
	logitFwd := kernels.Summarize(logitOps).GEMMFLOPs
	perDevice := (lf*perLayerFwd + logitFwd) * 3 * float64(nMicro)
	res.ModelFLOPs = perDevice * float64(m.Devices())
	_, peak := sys.Device.BestCompute(s.Precision)
	if peak > 0 && res.Total > 0 {
		res.MFU = res.ModelFLOPs / (res.Total * peak * float64(sys.NumDevices()))
	}

	// Traffic accounting for the energy model, mirroring the time factors.
	fwdDevBytes := fwd.gemmBytes*(1+bwdGEMMFactor) + fwd.ewBytes*(1+bwdEWFactor)
	recompBytes := recompute.gemmBytes + recompute.ewBytes
	boundaryBytes := (embCost.gemmBytes + embCost.ewBytes + logitCost.gemmBytes + logitCost.ewBytes) * (1 + bwdGEMMFactor)
	res.DRAMBytes = busy*(lf*(fwdDevBytes+recompBytes)+boundaryBytes) +
		memfoot.ParamsPerDevice(s.Model, m)*optimizerBytesPerParam
	res.WireBytes = busy * lf * (2*fwd.wireBytes + recompute.wireBytes)
	if m.PP > 1 {
		res.WireBytes += 2 * float64(m.P2PTransfersPerMicrobatch()) * p2pBytes
	}
	if m.DP > 1 {
		d := float64(m.DP)
		res.WireBytes += 2 * memfoot.ParamsPerDevice(s.Model, m) * s.store().Bytes() * (d - 1) / d
	}

	mem, err := memfoot.Train(memfoot.TrainSpec{
		Model: s.Model, Map: m, Seq: s.Seq, GlobalBatch: s.GlobalBatch,
		Recompute: s.Recompute,
	})
	if err != nil {
		return Result{}, err
	}
	res.MemoryPerDevice = mem

	return res, nil
}

// LayerGEMMBoundSplit returns the forward GEMM time of one transformer
// layer split by roofline bound type — the Fig. 7 decomposition.
func LayerGEMMBoundSplit(s Spec) (computeBound, memoryBound float64, err error) {
	if err := s.Validate(); err != nil {
		return 0, 0, err
	}
	eng := roofline.New(s.System.Device)
	exec := kernels.Exec{
		Batch:     s.Map.Microbatch,
		Seq:       s.Seq,
		Context:   s.Seq,
		TP:        s.Map.TP,
		SP:        s.Map.SP,
		Flash:     s.Flash,
		Precision: s.Precision,
		Store:     s.store(),
		Phase:     kernels.TrainForward,
	}
	c := costOps(eng, kernels.LayerForward(s.Model, exec), s.Map.TP, s.System.LinkBetween(s.Map.TP))
	return c.gemmComp, c.gemmMem, nil
}
