package train

import (
	"testing"

	"optimus/internal/arch"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/tech"
	"optimus/internal/units"
	"optimus/internal/valdata"
)

// specFor builds the Table 1 experiment for one validation row.
func specFor(t *testing.T, c valdata.TrainCase) Spec {
	t.Helper()
	cfg, err := model.ByName(c.Model)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := arch.DGXA100(c.GPUs)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Model:  cfg,
		System: sys,
		Map: parallel.Mapping{
			DP: c.DP, TP: c.TP, PP: c.PP, SP: c.SP,
			Microbatch: 1, Schedule: parallel.OneFOneB,
		},
		GlobalBatch: c.Batch,
		Seq:         2048,
		Precision:   tech.BF16,
		Recompute:   c.Recompute,
	}
}

// TestTable1Validation is the package's headline check: our analytical
// predictions must sit within the same error band of the published
// Megatron-LM measurements that the paper demonstrates (relative errors
// "mostly well below 10%"). Gate: mean ≤ 8%, max ≤ 12%.
func TestTable1Validation(t *testing.T) {
	var errs []float64
	for _, c := range valdata.Table1() {
		res, err := Predict(specFor(t, c))
		if err != nil {
			t.Fatalf("%s/%d GPUs: %v", c.Model, c.GPUs, err)
		}
		e := units.RelErr(res.Total, c.RefSeconds)
		errs = append(errs, e)
		t.Logf("%-10s %5d GPUs %-9v ref=%6.1fs pred=%6.1fs err=%4.1f%% (paper pred %5.1fs)",
			c.Model, c.GPUs, c.Recompute, c.RefSeconds, res.Total, 100*e, c.PaperPredSeconds)
		if e > 0.12 {
			t.Errorf("%s/%d GPUs: error %.1f%% exceeds 12%% gate", c.Model, c.GPUs, 100*e)
		}
	}
	if mean := units.Mean(errs); mean > 0.08 {
		t.Errorf("mean Table 1 error %.1f%% exceeds 8%% gate", 100*mean)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	for _, c := range valdata.Table1()[:4] {
		res, err := Predict(specFor(t, c))
		if err != nil {
			t.Fatal(err)
		}
		if !units.AlmostEqual(res.Total, res.Compute+res.Communication+res.Other, 1e-9) {
			t.Errorf("%s: breakdown does not sum to total", c.Model)
		}
		if !units.AlmostEqual(res.Compute, res.GEMMTime+res.EWTime+res.RecomputeTime, 1e-9) {
			t.Errorf("%s: compute parts do not sum", c.Model)
		}
		if !units.AlmostEqual(res.Communication, res.TPComm+res.PPComm+res.DPComm, 1e-9) {
			t.Errorf("%s: comm parts do not sum", c.Model)
		}
		if !units.AlmostEqual(res.Other, res.Bubble+res.OptimizerStep, 1e-9) {
			t.Errorf("%s: other parts do not sum", c.Model)
		}
	}
}

func TestRecomputeCostOrdering(t *testing.T) {
	// §3.3: full recomputation "doubles the forward pass time"; selective
	// "causes very little computational overhead".
	spec := specFor(t, valdata.Table1()[1]) // GPT-175B
	spec.Recompute = memfoot.NoRecompute
	none, _ := Predict(spec)
	spec.Recompute = memfoot.Selective
	sel, _ := Predict(spec)
	spec.Recompute = memfoot.Full
	full, _ := Predict(spec)

	if !(none.Total < sel.Total && sel.Total < full.Total) {
		t.Errorf("time ordering violated: none=%g sel=%g full=%g",
			none.Total, sel.Total, full.Total)
	}
	// Selective overhead small (< 8% over none), full large (> 20%).
	if sel.Total/none.Total > 1.08 {
		t.Errorf("selective overhead %.1f%% too large", 100*(sel.Total/none.Total-1))
	}
	if full.Total/none.Total < 1.20 {
		t.Errorf("full recompute overhead %.1f%% too small", 100*(full.Total/none.Total-1))
	}
}

func TestMFUInPlausibleRange(t *testing.T) {
	// Megatron-LM reports ~40-57% model FLOPs utilization on A100
	// clusters; our calibrated predictions must land in that regime.
	for _, c := range valdata.Table1() {
		res, err := Predict(specFor(t, c))
		if err != nil {
			t.Fatal(err)
		}
		if res.MFU < 0.25 || res.MFU > 0.65 {
			t.Errorf("%s/%d GPUs: MFU %.2f outside [0.25, 0.65]", c.Model, c.GPUs, res.MFU)
		}
	}
}

func TestInterleavingShrinksBubble(t *testing.T) {
	spec := specFor(t, valdata.Table1()[3]) // GPT-1008B, PP=64
	spec.Map.Schedule = parallel.OneFOneB
	base, err := Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Map.Schedule = parallel.Interleaved1F1B
	spec.Map.VirtualStages = 2
	il, err := Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	if il.Bubble >= base.Bubble {
		t.Errorf("interleaving should shrink the bubble: %g vs %g", il.Bubble, base.Bubble)
	}
	if il.PPComm <= base.PPComm {
		t.Error("interleaving should increase pipeline communication")
	}
}

func TestSequenceParallelismSavesTime(t *testing.T) {
	// SP shards the norm/dropout element-wise work at equal communication
	// volume, so it must not slow the iteration (§1.3).
	spec := specFor(t, valdata.Table1()[1])
	spec.Recompute = memfoot.Selective
	spec.Map.SP = false
	noSP, _ := Predict(spec)
	spec.Map.SP = true
	withSP, _ := Predict(spec)
	if withSP.Total > noSP.Total {
		t.Errorf("SP slowed training: %g vs %g", withSP.Total, noSP.Total)
	}
	if withSP.EWTime >= noSP.EWTime {
		t.Error("SP should reduce element-wise time")
	}
}

func TestDPOverlapHidesGradientAllReduce(t *testing.T) {
	spec := specFor(t, valdata.Table1()[8]) // GPT-310B, DP=15
	spec.DPOverlap = 0
	exposed, _ := Predict(spec)
	spec.DPOverlap = 1
	hidden, _ := Predict(spec)
	if exposed.DPComm <= 0 {
		t.Fatal("DP=15 must have gradient all-reduce time")
	}
	if hidden.DPComm != 0 {
		t.Errorf("full overlap should hide DP comm, got %g", hidden.DPComm)
	}
	if hidden.Total >= exposed.Total {
		t.Error("overlap should reduce total time")
	}
}

func TestFasterSystemIsFaster(t *testing.T) {
	// An H100-NDR cluster must beat the A100-HDR cluster on the same
	// workload (Fig. 5 direction), and FP8 must beat BF16 on H100.
	c := valdata.Table1()[1]
	a100Spec := specFor(t, c)
	a100, _ := Predict(a100Spec)

	h100Sys, err := arch.DGXH100(c.GPUs)
	if err != nil {
		t.Fatal(err)
	}
	h100Spec := a100Spec
	h100Spec.System = h100Sys
	h100, err := Predict(h100Spec)
	if err != nil {
		t.Fatal(err)
	}
	if h100.Total >= a100.Total {
		t.Errorf("H100 (%g) should beat A100 (%g)", h100.Total, a100.Total)
	}

	fp8 := h100Spec
	fp8.Precision = tech.FP8
	f, err := Predict(fp8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Total >= h100.Total {
		t.Errorf("FP8 (%g) should beat BF16 (%g) on H100", f.Total, h100.Total)
	}
}

func TestGEMMBoundSplit(t *testing.T) {
	// Training-shape GEMMs on an A100 are compute-bound (§1.2): the
	// compute-bound share must dominate.
	spec := specFor(t, valdata.Table1()[1])
	cb, mb, err := LayerGEMMBoundSplit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cb <= 0 {
		t.Fatal("no compute-bound GEMM time")
	}
	if mb > cb {
		t.Errorf("A100 training layer should be compute-dominated: cb=%g mb=%g", cb, mb)
	}
	// Result-level split agrees in direction.
	res, _ := Predict(spec)
	if res.GEMMComputeBound < res.GEMMMemoryBound {
		t.Error("iteration GEMM split should also be compute-dominated")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := specFor(t, valdata.Table1()[0])

	bad := good
	bad.System = nil
	if _, err := Predict(bad); err == nil {
		t.Error("nil system should error")
	}

	bad = good
	bad.Seq = 0
	if _, err := Predict(bad); err == nil {
		t.Error("zero seq should error")
	}

	bad = good
	bad.Map.DP = 7 // wrong device count
	if _, err := Predict(bad); err == nil {
		t.Error("mapping/system mismatch should error")
	}

	bad = good
	bad.DPOverlap = 1.5
	if _, err := Predict(bad); err == nil {
		t.Error("out-of-range overlap should error")
	}
}

func TestMemoryAttachedToResult(t *testing.T) {
	res, err := Predict(specFor(t, valdata.Table1()[1]))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryPerDevice.Total() <= 0 {
		t.Error("memory footprint missing from result")
	}
}

func TestMoreMicrobatchesAmortizeBubble(t *testing.T) {
	spec := specFor(t, valdata.Table1()[1]) // PP=8, batch 64
	small, _ := Predict(spec)
	spec.GlobalBatch = 128
	big, _ := Predict(spec)
	// Per-sequence time should improve with more microbatches.
	if big.Total/128 >= small.Total/64 {
		t.Error("larger batch should amortize the pipeline bubble")
	}
}
