// Package model describes decoder-only transformer LLMs at the granularity
// the Optimus performance model needs: layer counts, hidden sizes, head
// structure, feed-forward shape and vocabulary. It provides the exact model
// zoo the paper evaluates — the GPT family of the training studies
// (Tables 1, 3; Figs. 4-7) and the Llama-2 family of the inference studies
// (Tables 2, 4; Figs. 8-9) — plus parameter-count accounting used by the
// memory-footprint and communication models.
package model

import "fmt"

// MLPKind distinguishes the two feed-forward flavours in the zoo.
type MLPKind int

const (
	// MLPGELU is the classic two-matrix GELU MLP of the GPT family
	// (h → f → h).
	MLPGELU MLPKind = iota
	// MLPSwiGLU is the three-matrix gated MLP of the Llama family
	// (gate and up projections h → f, down projection f → h).
	MLPSwiGLU
)

// String names the MLP flavour.
func (k MLPKind) String() string {
	switch k {
	case MLPGELU:
		return "gelu"
	case MLPSwiGLU:
		return "swiglu"
	default:
		return fmt.Sprintf("MLPKind(%d)", int(k))
	}
}

// Config is one decoder-only transformer model.
type Config struct {
	Name string

	// Layers is the number of transformer layers.
	Layers int
	// Hidden is the model (embedding) dimension h.
	Hidden int
	// Heads is the number of attention heads a.
	Heads int
	// KVHeads is the number of key/value heads; equal to Heads for
	// multi-head attention, smaller for grouped-query attention
	// (Llama2-70B uses 8).
	KVHeads int
	// FFN is the feed-forward intermediate dimension f (4h for GPTs).
	FFN int
	// MLP selects the feed-forward flavour.
	MLP MLPKind
	// Vocab is the vocabulary size V.
	Vocab int
	// MaxSeq is the trained context length (also the positional-embedding
	// table size for learned positions).
	MaxSeq int
	// LearnedPositions reports whether the model has a learned positional
	// embedding table (GPTs do; Llama uses RoPE, which has no parameters).
	LearnedPositions bool
	// TiedEmbeddings reports whether input and output embeddings share
	// weights (GPT-2/3 style).
	TiedEmbeddings bool
}

// HeadDim returns the per-head dimension h/a.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// KVDim returns the total key (or value) projection width: HeadDim×KVHeads.
func (c Config) KVDim() int { return c.HeadDim() * c.KVHeads }

// Validate checks structural invariants.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.Vocab <= 0 || c.FFN <= 0:
		return fmt.Errorf("model %s: non-positive dimension", c.Name)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %s: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	case c.KVHeads <= 0 || c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %s: heads %d not divisible by kv-heads %d", c.Name, c.Heads, c.KVHeads)
	}
	return nil
}

// AttnParams returns the attention-block parameter count per layer:
// Q and output projections (h×h each) plus K and V projections
// (h×kvdim each). Biases are included for GPT-style models.
func (c Config) AttnParams() float64 {
	h := float64(c.Hidden)
	kv := float64(c.KVDim())
	p := 2*h*h + 2*h*kv
	if c.MLP == MLPGELU { // GPT family carries biases
		p += 2*h + 2*kv
	}
	return p
}

// MLPParams returns the feed-forward parameter count per layer.
func (c Config) MLPParams() float64 {
	h, f := float64(c.Hidden), float64(c.FFN)
	switch c.MLP {
	case MLPSwiGLU:
		return 3 * h * f
	default:
		return 2*h*f + h + f // two matrices plus biases
	}
}

// NormParams returns the normalization parameter count per layer (two
// norms; LayerNorm has scale+bias, RMSNorm scale only — the difference is
// negligible, both modeled as 2h per norm for GPT and h for Llama).
func (c Config) NormParams() float64 {
	h := float64(c.Hidden)
	if c.MLP == MLPSwiGLU {
		return 2 * h
	}
	return 4 * h
}

// LayerParams returns the per-layer parameter count.
func (c Config) LayerParams() float64 {
	return c.AttnParams() + c.MLPParams() + c.NormParams()
}

// EmbeddingParams returns the embedding parameter count: the token table,
// the learned position table if present, and the untied output head.
func (c Config) EmbeddingParams() float64 {
	h := float64(c.Hidden)
	p := float64(c.Vocab) * h
	if c.LearnedPositions {
		p += float64(c.MaxSeq) * h
	}
	if !c.TiedEmbeddings {
		p += float64(c.Vocab) * h
	}
	return p
}

// Params returns the total parameter count.
func (c Config) Params() float64 {
	return float64(c.Layers)*c.LayerParams() + c.EmbeddingParams()
}

// KVCacheBytes returns the key/value cache size for a batch of sequences at
// the given context length and element size (paper §3.5):
// 2 × batch × context × elemBytes × layers × kv-projection width.
func (c Config) KVCacheBytes(batch, context int, elemBytes float64) float64 {
	return 2 * float64(batch) * float64(context) * elemBytes *
		float64(c.Layers) * float64(c.KVDim())
}

// String renders the headline shape.
func (c Config) String() string {
	return fmt.Sprintf("%s (L=%d h=%d a=%d kv=%d f=%d V=%d, %.1fB params)",
		c.Name, c.Layers, c.Hidden, c.Heads, c.KVHeads, c.FFN, c.Vocab, c.Params()/1e9)
}
