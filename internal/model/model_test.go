package model

import (
	"testing"
	"testing/quick"
)

// The zoo must hit the advertised parameter counts — these anchor every
// memory-footprint and communication-volume prediction downstream.
func TestPresetParamCounts(t *testing.T) {
	cases := []struct {
		cfg     Config
		want    float64 // parameters
		withinB float64 // tolerance in billions
	}{
		{GPT7B(), 7e9, 0.6},
		{GPT22B(), 22e9, 1.0},
		{GPT175B(), 175e9, 4.0},
		{GPT310B(), 310e9, 6.0},
		{GPT530B(), 530e9, 10.0},
		{GPT1008B(), 1008e9, 16.0},
		{Llama2_7B(), 6.74e9, 0.2},
		{Llama2_13B(), 13.0e9, 0.3},
		{Llama2_70B(), 69e9, 1.5},
		{GPT1_7B(), 1.7e9, 0.2},
		{GPT3_6B(), 3.6e9, 0.4},
		{GPT18B(), 18.4e9, 1.0},
		{GPT39B(), 39.1e9, 2.0},
		{GPT76B(), 76.1e9, 3.0},
		{GPT145B(), 145.6e9, 5.0},
	}
	for _, c := range cases {
		got := c.cfg.Params()
		if diff := got - c.want; diff > c.withinB*1e9 || diff < -c.withinB*1e9 {
			t.Errorf("%s params = %.2fB, want %.2fB ± %.1fB", c.cfg.Name, got/1e9, c.want/1e9, c.withinB)
		}
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, c := range All() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "zero-layers", Hidden: 64, Heads: 8, KVHeads: 8, FFN: 256, Vocab: 100},
		{Name: "indivisible-heads", Layers: 2, Hidden: 65, Heads: 8, KVHeads: 8, FFN: 256, Vocab: 100},
		{Name: "bad-kv", Layers: 2, Hidden: 64, Heads: 8, KVHeads: 3, FFN: 256, Vocab: 100},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s should fail validation", c.Name)
		}
	}
}

func TestHeadDims(t *testing.T) {
	c := Llama2_70B()
	if c.HeadDim() != 128 {
		t.Errorf("70B head dim = %d, want 128", c.HeadDim())
	}
	// GQA: 8 KV heads × 128 = 1024-wide KV projections.
	if c.KVDim() != 1024 {
		t.Errorf("70B KV dim = %d, want 1024", c.KVDim())
	}
	full := Llama2_13B()
	if full.KVDim() != full.Hidden {
		t.Errorf("13B KV dim = %d, want hidden %d", full.KVDim(), full.Hidden)
	}
}

func TestKVCacheBytesPaperFormula(t *testing.T) {
	// §3.5: 2 × batch × context × precision × layers × embedding dim.
	c := Llama2_13B()
	got := c.KVCacheBytes(1, 400, 2)
	want := 2.0 * 1 * 400 * 2 * 40 * 5120
	if got != want {
		t.Errorf("KV cache = %g, want %g", got, want)
	}
	// GQA shrinks the cache by heads/kvheads.
	g := Llama2_70B()
	gotGQA := g.KVCacheBytes(1, 400, 2)
	wantGQA := 2.0 * 1 * 400 * 2 * 80 * 1024
	if gotGQA != wantGQA {
		t.Errorf("GQA KV cache = %g, want %g", gotGQA, wantGQA)
	}
}

func TestGPTvsLlamaStructure(t *testing.T) {
	g := GPT175B()
	if g.MLP != MLPGELU || !g.TiedEmbeddings || !g.LearnedPositions {
		t.Error("GPT presets must be GELU/tied/learned-positions")
	}
	if g.FFN != 4*g.Hidden {
		t.Errorf("GPT FFN = %d, want 4h", g.FFN)
	}
	l := Llama2_7B()
	if l.MLP != MLPSwiGLU || l.TiedEmbeddings || l.LearnedPositions {
		t.Error("Llama presets must be SwiGLU/untied/RoPE")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"GPT-175B", "gpt175b", "Llama2-13B", "llama2_13b"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("gpt-9000b"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestMLPKindString(t *testing.T) {
	if MLPGELU.String() != "gelu" || MLPSwiGLU.String() != "swiglu" {
		t.Error("MLPKind names wrong")
	}
}

func TestLayerParamsComposition(t *testing.T) {
	c := GPT175B()
	sum := c.AttnParams() + c.MLPParams() + c.NormParams()
	if c.LayerParams() != sum {
		t.Error("LayerParams must equal the sum of its parts")
	}
	// GPT attention is 4h² + biases.
	h := float64(c.Hidden)
	if c.AttnParams() < 4*h*h || c.AttnParams() > 4*h*h+8*h {
		t.Errorf("GPT attention params = %g, want ≈ 4h²", c.AttnParams())
	}
}

// Property: KV cache scales linearly in batch and context.
func TestKVCacheLinearityProperty(t *testing.T) {
	c := Llama2_13B()
	f := func(b, ctx uint8) bool {
		batch, context := int(b)+1, int(ctx)+1
		base := c.KVCacheBytes(batch, context, 2)
		return c.KVCacheBytes(2*batch, context, 2) == 2*base &&
			c.KVCacheBytes(batch, 2*context, 2) == 2*base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parameter count is monotone in every structural dimension.
func TestParamsMonotoneProperty(t *testing.T) {
	f := func(l, h8, a uint8) bool {
		layers := int(l)%32 + 1
		heads := int(a)%16 + 1
		hidden := heads * (int(h8)%64 + 1) * 8
		c := gpt("prop", layers, hidden, heads)
		grown := gpt("prop2", layers+1, hidden, heads)
		return grown.Params() > c.Params()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
