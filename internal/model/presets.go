package model

import "fmt"

// gpt builds a GPT-family config: 4h feed-forward, GELU MLP with biases,
// learned positions, tied embeddings, 51200-token vocabulary and 2048
// context — the configuration of the Megatron-LM scaling studies the paper
// validates against (Tables 1 and 3).
func gpt(name string, layers, hidden, heads int) Config {
	return Config{
		Name:             name,
		Layers:           layers,
		Hidden:           hidden,
		Heads:            heads,
		KVHeads:          heads,
		FFN:              4 * hidden,
		MLP:              MLPGELU,
		Vocab:            51200,
		MaxSeq:           2048,
		LearnedPositions: true,
		TiedEmbeddings:   true,
	}
}

// llama builds a Llama-2-family config: SwiGLU MLP, RoPE positions, untied
// embeddings, 32000-token vocabulary and 4096 context.
func llama(name string, layers, hidden, heads, kvHeads, ffn int) Config {
	return Config{
		Name:    name,
		Layers:  layers,
		Hidden:  hidden,
		Heads:   heads,
		KVHeads: kvHeads,
		FFN:     ffn,
		MLP:     MLPSwiGLU,
		Vocab:   32000,
		MaxSeq:  4096,
	}
}

// The GPT model zoo of the paper's training studies. Shapes follow the
// Megatron-LM publications the paper validates against ([28] Table 1,
// [14] Table 3).
func GPT7B() Config    { return gpt("GPT-7B", 32, 4096, 32) }
func GPT22B() Config   { return gpt("GPT-22B", 48, 6144, 48) }
func GPT175B() Config  { return gpt("GPT-175B", 96, 12288, 96) }
func GPT310B() Config  { return gpt("GPT-310B", 96, 16384, 128) }
func GPT530B() Config  { return gpt("GPT-530B", 105, 20480, 128) }
func GPT1008B() Config { return gpt("GPT-1008B", 128, 25600, 160) }

// The smaller rungs of the Megatron-LM scaling ladder ([28] Table 1),
// useful for sweeps below the paper's validation sizes.
func GPT1_7B() Config { return gpt("GPT-1.7B", 24, 2304, 24) }
func GPT3_6B() Config { return gpt("GPT-3.6B", 30, 3072, 32) }
func GPT18B() Config  { return gpt("GPT-18B", 40, 6144, 48) }
func GPT39B() Config  { return gpt("GPT-39B", 48, 8192, 64) }
func GPT76B() Config  { return gpt("GPT-76B", 60, 10240, 80) }
func GPT145B() Config { return gpt("GPT-145B", 80, 12288, 96) }

// The Llama-2 zoo of the paper's inference studies (Tables 2, 4; Figs. 8-9).
func Llama2_7B() Config  { return llama("Llama2-7B", 32, 4096, 32, 32, 11008) }
func Llama2_13B() Config { return llama("Llama2-13B", 40, 5120, 40, 40, 13824) }
func Llama2_70B() Config { return llama("Llama2-70B", 80, 8192, 64, 8, 28672) }

// All returns the full preset zoo: the paper's evaluation models first,
// then the smaller scaling-ladder rungs.
func All() []Config {
	return []Config{
		GPT7B(), GPT22B(), GPT175B(), GPT310B(), GPT530B(), GPT1008B(),
		Llama2_7B(), Llama2_13B(), Llama2_70B(),
		GPT1_7B(), GPT3_6B(), GPT18B(), GPT39B(), GPT76B(), GPT145B(),
	}
}

// ByName looks up a preset by its conventional name, case-insensitively.
func ByName(name string) (Config, error) {
	want := fold(name)
	for _, c := range All() {
		if fold(c.Name) == want {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown preset %q", name)
}

// fold lower-cases ASCII and drops '-' and '_' so "gpt175b" matches
// "GPT-175B".
func fold(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '-' || c == '_' {
			continue
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}
