// Package parallel describes how an LLM is mapped onto a system: the
// data/tensor/pipeline/sequence parallelism degrees (§1.3), microbatching,
// and the pipeline schedule (GPipe, PipeDream-Flush/1F1B, interleaved 1F1B
// — §3.2) with its bubble and in-flight-microbatch models.
package parallel

import "fmt"

// Schedule selects the pipeline-parallel execution order.
type Schedule int

const (
	// GPipe runs all forwards then all backwards; simple but stores every
	// microbatch's activations.
	GPipe Schedule = iota
	// OneFOneB is PipeDream-Flush: same bubble as GPipe but at most p
	// microbatches in flight.
	OneFOneB
	// Interleaved1F1B assigns v model chunks per device, dividing the
	// bubble by v at the cost of more communication (§3.2).
	Interleaved1F1B
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case GPipe:
		return "gpipe"
	case OneFOneB:
		return "1f1b"
	case Interleaved1F1B:
		return "interleaved-1f1b"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Mapping is a complete parallelization strategy.
type Mapping struct {
	// DP, TP, PP are the data/tensor/pipeline parallel degrees.
	DP, TP, PP int
	// SP enables sequence parallelism across the TP group.
	SP bool
	// Microbatch is the per-device microbatch size b in sequences.
	Microbatch int
	// Schedule is the pipeline schedule; ignored when PP == 1.
	Schedule Schedule
	// VirtualStages is the interleaving factor v (model chunks per
	// device); meaningful only for Interleaved1F1B, else treated as 1.
	VirtualStages int
}

// Devices returns the total device count DP×TP×PP.
func (m Mapping) Devices() int { return m.DP * m.TP * m.PP }

// chunks returns the effective interleaving factor.
func (m Mapping) chunks() int {
	if m.Schedule == Interleaved1F1B && m.VirtualStages > 1 {
		return m.VirtualStages
	}
	return 1
}

// Validate checks the mapping against a model's layer count and the global
// batch size.
func (m Mapping) Validate(layers, globalBatch int) error {
	switch {
	case m.DP <= 0 || m.TP <= 0 || m.PP <= 0:
		return fmt.Errorf("parallel: non-positive degrees %d-%d-%d", m.DP, m.TP, m.PP)
	case m.Microbatch <= 0:
		return fmt.Errorf("parallel: non-positive microbatch %d", m.Microbatch)
	case layers%(m.PP*m.chunks()) != 0:
		return fmt.Errorf("parallel: %d layers not divisible into %d pipeline chunks", layers, m.PP*m.chunks())
	case globalBatch%(m.DP*m.Microbatch) != 0:
		return fmt.Errorf("parallel: batch %d not divisible by DP %d x microbatch %d", globalBatch, m.DP, m.Microbatch)
	}
	return nil
}

// Microbatches returns m, the microbatch count per pipeline per iteration.
func (m Mapping) Microbatches(globalBatch int) int {
	return globalBatch / (m.DP * m.Microbatch)
}

// LayersPerDevice returns the transformer layers resident on one device.
func (m Mapping) LayersPerDevice(layers int) int { return layers / m.PP }

// BubbleSlots returns the pipeline bubble expressed in units of one
// microbatch's (forward+backward) time: p-1 for GPipe and 1F1B,
// (p-1)/v for the interleaved schedule.
func (m Mapping) BubbleSlots() float64 {
	if m.PP <= 1 {
		return 0
	}
	return float64(m.PP-1) / float64(m.chunks())
}

// BubbleFraction returns the ideal bubble fraction
// bubble/(m + bubble) for a batch of nMicro microbatches.
func (m Mapping) BubbleFraction(nMicro int) float64 {
	b := m.BubbleSlots()
	return b / (float64(nMicro) + b)
}

// InFlight returns how many microbatches' activations the first (worst)
// pipeline stage holds simultaneously — the activation-memory multiplier.
func (m Mapping) InFlight(nMicro int) float64 {
	if m.PP <= 1 {
		return float64(min(nMicro, 1)) // single stage runs one microbatch at a time
	}
	switch m.Schedule {
	case GPipe:
		return float64(nMicro)
	case Interleaved1F1B:
		p, v := float64(m.PP), float64(m.chunks())
		inFlight := p * (1 + (p-1)/(p*v))
		if f := float64(nMicro); f < inFlight {
			return f
		}
		return inFlight
	default: // 1F1B
		return float64(min(nMicro, m.PP))
	}
}

// P2PTransfersPerMicrobatch returns how many inter-stage activation
// transfers one microbatch makes in each direction (forward or backward):
// the stage boundaries crossed, counted per device chunk.
func (m Mapping) P2PTransfersPerMicrobatch() int {
	if m.PP <= 1 {
		return 0
	}
	return (m.PP - 1) * m.chunks()
}

// String renders the mapping in the paper's DP-TP-PP-SP notation.
func (m Mapping) String() string {
	sp := 1
	if m.SP {
		sp = m.TP
	}
	s := fmt.Sprintf("%d-%d-%d-%d", m.DP, m.TP, m.PP, sp)
	if m.PP > 1 {
		s += " (" + m.Schedule.String() + ")"
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
