package parallel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDevices(t *testing.T) {
	m := Mapping{DP: 15, TP: 8, PP: 16, Microbatch: 1}
	if m.Devices() != 1920 {
		t.Errorf("devices = %d, want 1920 (Table 1 GPT-310B row)", m.Devices())
	}
}

func TestValidate(t *testing.T) {
	good := Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1}
	if err := good.Validate(96, 64); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	cases := []struct {
		name   string
		m      Mapping
		layers int
		batch  int
	}{
		{"zero degree", Mapping{DP: 0, TP: 8, PP: 8, Microbatch: 1}, 96, 64},
		{"zero microbatch", Mapping{DP: 1, TP: 8, PP: 8}, 96, 64},
		{"layers not divisible", Mapping{DP: 1, TP: 8, PP: 7, Microbatch: 1}, 96, 64},
		{"batch not divisible", Mapping{DP: 3, TP: 8, PP: 8, Microbatch: 1}, 96, 64},
		{"chunks not divisible", Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: Interleaved1F1B, VirtualStages: 5}, 96, 64},
	}
	for _, c := range cases {
		if err := c.m.Validate(c.layers, c.batch); err == nil {
			t.Errorf("%s should fail validation", c.name)
		}
	}
}

func TestMicrobatches(t *testing.T) {
	m := Mapping{DP: 15, TP: 8, PP: 16, Microbatch: 1}
	if got := m.Microbatches(2160); got != 144 {
		t.Errorf("microbatches = %d, want 144", got)
	}
}

func TestBubbleSlots(t *testing.T) {
	noPP := Mapping{DP: 1, TP: 8, PP: 1, Microbatch: 1}
	if noPP.BubbleSlots() != 0 {
		t.Error("no pipeline, no bubble")
	}
	pp := Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: OneFOneB}
	if pp.BubbleSlots() != 7 {
		t.Errorf("1F1B bubble = %g slots, want 7", pp.BubbleSlots())
	}
	gp := pp
	gp.Schedule = GPipe
	if gp.BubbleSlots() != 7 {
		t.Errorf("GPipe bubble = %g slots, want 7", gp.BubbleSlots())
	}
	il := Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: Interleaved1F1B, VirtualStages: 4}
	if il.BubbleSlots() != 7.0/4 {
		t.Errorf("interleaved bubble = %g slots, want 7/4", il.BubbleSlots())
	}
}

func TestBubbleFraction(t *testing.T) {
	m := Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: OneFOneB}
	// 64 microbatches: bubble fraction = 7/71 ≈ 9.9% (the 175B row).
	got := m.BubbleFraction(64)
	if math.Abs(got-7.0/71) > 1e-12 {
		t.Errorf("bubble fraction = %g, want 7/71", got)
	}
}

func TestInFlight(t *testing.T) {
	base := Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1}

	g := base
	g.Schedule = GPipe
	if got := g.InFlight(64); got != 64 {
		t.Errorf("GPipe in-flight = %g, want all 64 microbatches", got)
	}

	f := base
	f.Schedule = OneFOneB
	if got := f.InFlight(64); got != 8 {
		t.Errorf("1F1B in-flight = %g, want p=8", got)
	}
	if got := f.InFlight(4); got != 4 {
		t.Errorf("1F1B with few microbatches in-flight = %g, want 4", got)
	}

	i := base
	i.Schedule = Interleaved1F1B
	i.VirtualStages = 4
	// p(1 + (p-1)/(p·v)) = 8(1 + 7/32) = 9.75.
	if got := i.InFlight(64); math.Abs(got-9.75) > 1e-12 {
		t.Errorf("interleaved in-flight = %g, want 9.75", got)
	}

	single := Mapping{DP: 1, TP: 8, PP: 1, Microbatch: 4}
	if got := single.InFlight(1); got != 1 {
		t.Errorf("single stage in-flight = %g, want 1", got)
	}
}

func TestP2PTransfers(t *testing.T) {
	m := Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: OneFOneB}
	if got := m.P2PTransfersPerMicrobatch(); got != 7 {
		t.Errorf("p2p transfers = %d, want 7", got)
	}
	il := m
	il.Schedule = Interleaved1F1B
	il.VirtualStages = 2
	if got := il.P2PTransfersPerMicrobatch(); got != 14 {
		t.Errorf("interleaved p2p transfers = %d, want 14 (more communication)", got)
	}
	none := Mapping{DP: 8, TP: 8, PP: 1, Microbatch: 1}
	if none.P2PTransfersPerMicrobatch() != 0 {
		t.Error("no pipeline, no p2p")
	}
}

func TestStringNotation(t *testing.T) {
	m := Mapping{DP: 1, TP: 8, PP: 8, SP: true, Microbatch: 1, Schedule: OneFOneB}
	if got := m.String(); got != "1-8-8-8 (1f1b)" {
		t.Errorf("String = %q", got)
	}
	m.SP = false
	m.PP = 1
	if got := m.String(); got != "1-8-1-1" {
		t.Errorf("String = %q", got)
	}
}

func TestScheduleString(t *testing.T) {
	if GPipe.String() != "gpipe" || OneFOneB.String() != "1f1b" || Interleaved1F1B.String() != "interleaved-1f1b" {
		t.Error("schedule names wrong")
	}
}

// Property: interleaving never increases the bubble and never decreases
// communication.
func TestInterleavingTradeoffProperty(t *testing.T) {
	f := func(p8, v4 uint8) bool {
		p := int(p8)%8 + 2
		v := int(v4)%4 + 2
		base := Mapping{DP: 1, TP: 1, PP: p, Microbatch: 1, Schedule: OneFOneB}
		il := Mapping{DP: 1, TP: 1, PP: p, Microbatch: 1, Schedule: Interleaved1F1B, VirtualStages: v}
		return il.BubbleSlots() <= base.BubbleSlots() &&
			il.P2PTransfersPerMicrobatch() >= base.P2PTransfersPerMicrobatch()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bubble fraction decreases monotonically with more microbatches.
func TestBubbleFractionMonotoneProperty(t *testing.T) {
	m := Mapping{DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: OneFOneB}
	f := func(n uint8) bool {
		nm := int(n)%100 + 1
		return m.BubbleFraction(nm+1) < m.BubbleFraction(nm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
