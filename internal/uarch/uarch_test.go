package uarch

import (
	"testing"
	"testing/quick"

	"optimus/internal/tech"
)

func a100Design(node tech.Node) Design {
	return Design{
		Node:    node,
		DRAM:    tech.HBM2E,
		Network: tech.IBHDR,
		Budget:  A100ClassBudget(),
		Alloc:   DefaultAllocation(),
	}
}

// The anchor test of the engine: an A100-class budget with the default
// floorplan at N7 must reproduce an A100-class device.
func TestDeriveReproducesA100Class(t *testing.T) {
	res, err := Derive(a100Design(tech.N7))
	if err != nil {
		t.Fatal(err)
	}
	d := res.Device
	fp16 := d.Compute[tech.FP16]
	if fp16 < 250e12 || fp16 > 380e12 {
		t.Errorf("derived FP16 = %g, want A100-class ≈ 312e12 (cores=%d, limit=%s)",
			fp16, res.Cores, res.CoreLimit)
	}
	l2 := d.Mem[1]
	if l2.Capacity < 25e6 || l2.Capacity > 60e6 {
		t.Errorf("derived L2 = %g, want A100-class ≈ 40 MB", l2.Capacity)
	}
	hbm := d.Mem[2]
	if hbm.BW < 1.4e12 || hbm.BW > 2.4e12 {
		t.Errorf("derived HBM BW = %g, want A100-class ≈ 1.9e12", hbm.BW)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("derived device invalid: %v", err)
	}
}

func TestNodeScalingImprovesCompute(t *testing.T) {
	// §5.3: logic scaling packs more cores into the same budget; compute
	// throughput must grow monotonically from N12 to N1 but sub-linearly
	// versus pure area scaling once power binds.
	prev := 0.0
	for _, n := range tech.Nodes {
		res, err := Derive(a100Design(n))
		if err != nil {
			t.Fatal(err)
		}
		fp16 := res.Device.Compute[tech.FP16]
		if fp16 <= prev {
			t.Errorf("%v: compute %g did not improve on previous node %g", n, fp16, prev)
		}
		prev = fp16
	}
	// At advanced nodes the power budget must become the core constraint
	// (area shrinks 1.8x/step but power only improves 1.3x/step).
	res, _ := Derive(a100Design(tech.N1))
	if res.CoreLimit != "power" {
		t.Errorf("N1 core limit = %s, want power", res.CoreLimit)
	}
	res, _ = Derive(a100Design(tech.N12))
	if res.CoreLimit != "area" {
		t.Errorf("N12 core limit = %s, want area", res.CoreLimit)
	}
}

func TestDRAMTechSetsBandwidth(t *testing.T) {
	for _, c := range []struct {
		dram tech.DRAMTech
		want float64
	}{
		{tech.HBM2, 1.0e12}, {tech.HBM2E, 1.9e12}, {tech.HBM3, 2.6e12}, {tech.HBM4, 3.3e12},
	} {
		d := a100Design(tech.N5)
		d.DRAM = c.dram
		res, err := Derive(d)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Device.DRAMLevel().BW
		if got > c.want*1.001 || got < c.want*0.5 {
			t.Errorf("%v derived BW = %g, want ≤ %g (within power/stack limits)", c.dram, got, c.want)
		}
	}
}

func TestPowerStarvedMemoryInterface(t *testing.T) {
	d := a100Design(tech.N5)
	d.DRAM = tech.HBMX        // 6.8 TB/s wants ~190 W of interface power
	d.Alloc.PowerMemIO = 0.10 // 40 W only
	res, err := Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMLimit != "power" {
		t.Errorf("DRAM limit = %s, want power", res.DRAMLimit)
	}
	if bw := res.Device.DRAMLevel().BW; bw >= 6.8e12*0.9 {
		t.Errorf("power-starved HBMX should not reach peak: %g", bw)
	}
}

func TestAllocationValidation(t *testing.T) {
	bad := DefaultAllocation()
	bad.AreaCore = 0.9 // sums > 1 with the rest
	if err := bad.Validate(); err == nil {
		t.Error("oversubscribed area should fail")
	}
	neg := DefaultAllocation()
	neg.PowerSRAM = -0.1
	if err := neg.Validate(); err == nil {
		t.Error("negative fraction should fail")
	}
	if err := DefaultAllocation().Validate(); err != nil {
		t.Errorf("default allocation invalid: %v", err)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	a := DefaultAllocation()
	b, err := AllocationFromVector(a.Vector())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("vector round trip changed allocation: %+v vs %+v", a, b)
	}
	if _, err := AllocationFromVector([]float64{1, 2}); err == nil {
		t.Error("short vector should fail")
	}
}

func TestDeriveRejectsBadInputs(t *testing.T) {
	d := a100Design(tech.N7)
	d.Budget.AreaMM2 = 0
	if _, err := Derive(d); err == nil {
		t.Error("zero area should fail")
	}
	d = a100Design(tech.N7)
	d.Alloc.AreaCore = 2
	if _, err := Derive(d); err == nil {
		t.Error("invalid allocation should fail")
	}
}

func TestSystemFrom(t *testing.T) {
	sys, err := SystemFrom(a100Design(tech.N7), 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumDevices() != 1024 || sys.NumNodes != 256 {
		t.Errorf("system shape = %d devices, %d nodes", sys.NumDevices(), sys.NumNodes)
	}
	if _, err := SystemFrom(a100Design(tech.N7), 10, 4); err == nil {
		t.Error("non-divisible shape should fail")
	}
}

func TestMoreSRAMAreaMoreCache(t *testing.T) {
	small := a100Design(tech.N5)
	small.Alloc.AreaSRAM = 0.05
	big := a100Design(tech.N5)
	big.Alloc.AreaSRAM = 0.20
	big.Alloc.AreaCore = 0.30 // keep the sum feasible

	rs, err := Derive(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Derive(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Device.Mem[1].Capacity <= rs.Device.Mem[1].Capacity {
		t.Error("more SRAM area should buy more cache capacity")
	}
}

// Property: any feasible allocation derives a structurally valid device.
func TestDeriveAlwaysValidProperty(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h uint8) bool {
		frac := func(x uint8) float64 { return float64(x%64) / 255.0 }
		al := Allocation{
			AreaCore: frac(a) + 0.02, AreaSRAM: frac(b), AreaMemIO: frac(c) + 0.02, AreaNetIO: frac(d),
			PowerCore: frac(e) + 0.02, PowerSRAM: frac(f2), PowerMemIO: frac(g) + 0.02, PowerNetIO: frac(h),
		}
		if al.Validate() != nil {
			return true // infeasible inputs are out of scope
		}
		des := a100Design(tech.N3)
		des.Alloc = al
		res, err := Derive(des)
		if err != nil {
			return false
		}
		return res.Device.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
