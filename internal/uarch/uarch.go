// Package uarch is the microarchitecture engine of the Optimus model
// (paper §3.1, §3.6): it turns technology parameters plus an
// area/power/perimeter budget and a resource allocation into the
// coarse-grained quantities — compute throughput, cache capacity and
// bandwidth, DRAM bandwidth, network bandwidth — that populate the
// architecture abstraction layer. The DSE framework (internal/dse) searches
// over the allocation fractions against a fixed budget.
package uarch

import (
	"fmt"
	"math"

	"optimus/internal/arch"
	"optimus/internal/tech"
)

// Budget is the hardware resource envelope of one device (§3.6: "a given
// budget and allocation of hardware resources (i.e., area, power, and chip
// perimeter)").
type Budget struct {
	// AreaMM2 is the die area in mm².
	AreaMM2 float64
	// PowerW is the device power envelope in watts.
	PowerW float64
	// PerimeterMM is the die perimeter available to off-chip PHYs in mm.
	PerimeterMM float64
}

// A100ClassBudget is an Ampere-class envelope (826 mm², 400 W).
func A100ClassBudget() Budget {
	return Budget{AreaMM2: 826, PowerW: 400, PerimeterMM: 115}
}

// Allocation divides the budget between the four µarch components:
// compute cores, on-chip SRAM (last-level cache), memory interface, and
// network interface. Fractions are of the *usable* budget; each group must
// sum to at most 1.
type Allocation struct {
	AreaCore, AreaSRAM, AreaMemIO, AreaNetIO     float64
	PowerCore, PowerSRAM, PowerMemIO, PowerNetIO float64
}

// DefaultAllocation mirrors an A100-class floorplan: roughly half the die
// in SM logic, a tenth in L2 SRAM, and the rest split between PHYs, IO and
// non-core overhead.
func DefaultAllocation() Allocation {
	return Allocation{
		AreaCore: 0.40, AreaSRAM: 0.09, AreaMemIO: 0.12, AreaNetIO: 0.05,
		PowerCore: 0.62, PowerSRAM: 0.08, PowerMemIO: 0.20, PowerNetIO: 0.06,
	}
}

// Validate checks the allocation's feasibility.
func (a Allocation) Validate() error {
	for _, f := range []float64{
		a.AreaCore, a.AreaSRAM, a.AreaMemIO, a.AreaNetIO,
		a.PowerCore, a.PowerSRAM, a.PowerMemIO, a.PowerNetIO,
	} {
		if f < 0 || f > 1 {
			return fmt.Errorf("uarch: allocation fraction %g outside [0,1]", f)
		}
	}
	if s := a.AreaCore + a.AreaSRAM + a.AreaMemIO + a.AreaNetIO; s > 1+1e-9 {
		return fmt.Errorf("uarch: area fractions sum to %g > 1", s)
	}
	if s := a.PowerCore + a.PowerSRAM + a.PowerMemIO + a.PowerNetIO; s > 1+1e-9 {
		return fmt.Errorf("uarch: power fractions sum to %g > 1", s)
	}
	return nil
}

// Vector flattens the allocation for the DSE optimizer.
func (a Allocation) Vector() []float64 {
	return []float64{
		a.AreaCore, a.AreaSRAM, a.AreaMemIO, a.AreaNetIO,
		a.PowerCore, a.PowerSRAM, a.PowerMemIO, a.PowerNetIO,
	}
}

// AllocationFromVector rebuilds an Allocation from an 8-vector.
func AllocationFromVector(v []float64) (Allocation, error) {
	if len(v) != 8 {
		return Allocation{}, fmt.Errorf("uarch: allocation vector needs 8 entries, got %d", len(v))
	}
	return Allocation{
		AreaCore: v[0], AreaSRAM: v[1], AreaMemIO: v[2], AreaNetIO: v[3],
		PowerCore: v[4], PowerSRAM: v[5], PowerMemIO: v[6], PowerNetIO: v[7],
	}, nil
}

// Design is a complete µarch specification: technology choices plus the
// budget and its allocation.
type Design struct {
	Name    string
	Node    tech.Node
	DRAM    tech.DRAMTech
	Network tech.NetworkTech
	Budget  Budget
	Alloc   Allocation
}

// Derived µarch constants, anchored so that an A100-class budget with the
// default allocation at N7 reproduces an A100-class device (see the
// package tests). Only ratios across nodes matter for the scaling studies.
const (
	// sramBWPerMM2N12 is last-level-cache bandwidth density at N12; it
	// scales with logic density (more banks per mm²).
	sramBWPerMM2N12 = 5.2e10
	// sramPowerPerBW is SRAM access power per unit bandwidth (W per B/s).
	sramPowerPerBW = 6.0e-12
	// l1BytesPerCore and l1BWPerCore size the per-core scratchpad level.
	l1BytesPerCore = 192e3
	l1BWPerCore    = 1.8e11
	// hbmPHYAreaMM2 and hbmPHYPerimeterMM are the per-stack interface
	// costs; hbmStacksNominal is the stack count the tech table's
	// device-level bandwidth corresponds to.
	hbmPHYAreaMM2     = 16.0
	hbmPHYPerimeterMM = 11.0
	hbmStacksNominal  = 5.0
	hbmEnergyWPerGBps = 0.028 // 3.5 pJ/bit ≈ 0.028 W per GB/s
	// netPHYAreaMM2 is the area consumed by the network interface.
	netPHYAreaMM2 = 30.0
	// netEnergyWPerGBps is SerDes power per unit bandwidth.
	netEnergyWPerGBps = 0.25
)

// Result carries the derived device plus diagnostics about which resource
// limited each component.
type Result struct {
	Device arch.Device
	// Cores is the derived compute-core count.
	Cores int
	// CoreLimit names the binding constraint for the core count
	// ("area" or "power").
	CoreLimit string
	// DRAMLimit names the binding constraint for memory bandwidth
	// ("phy-area", "perimeter", "power", or "tech").
	DRAMLimit string
	// NetBW is the derived per-device network bandwidth.
	NetBW float64
}

// Derive turns a Design into an abstract device (the paper's "µArch engine
// → architecture abstraction layer" arrow in Fig. 1).
func Derive(d Design) (Result, error) {
	if err := d.Alloc.Validate(); err != nil {
		return Result{}, err
	}
	if d.Budget.AreaMM2 <= 0 || d.Budget.PowerW <= 0 || d.Budget.PerimeterMM <= 0 {
		return Result{}, fmt.Errorf("uarch: non-positive budget %+v", d.Budget)
	}
	logic := tech.LogicAt(d.Node)

	// Compute cores: bounded by allocated area and allocated power.
	byArea := d.Alloc.AreaCore * d.Budget.AreaMM2 / logic.CoreAreaMM2
	byPower := d.Alloc.PowerCore * d.Budget.PowerW / logic.CorePowerW
	cores := int(math.Floor(math.Min(byArea, byPower)))
	if cores < 1 {
		cores = 1
	}
	coreLimit := "area"
	if byPower < byArea {
		coreLimit = "power"
	}
	fp16 := float64(cores) * logic.FLOPsPerCyclePerCore * logic.ClockGHz * 1e9

	// Last-level SRAM: capacity from area, bandwidth from area density,
	// derated if the power allocation cannot feed it.
	sramArea := d.Alloc.AreaSRAM * d.Budget.AreaMM2
	sramCap := sramArea * logic.SRAMBytesPerMM2
	sramBW := sramArea * sramBWPerMM2N12 * d.Node.AreaScale()
	if maxBW := d.Alloc.PowerSRAM * d.Budget.PowerW / sramPowerPerBW; sramBW > maxBW {
		sramBW = maxBW
	}
	if sramCap < 1e6 {
		sramCap = 1e6
	}
	if sramBW < 1e11 {
		sramBW = 1e11
	}

	// DRAM: stack count bounded by PHY area and perimeter; bandwidth
	// bounded by stacks and by interface power.
	spec := d.DRAM.Spec()
	stacksByArea := d.Alloc.AreaMemIO * d.Budget.AreaMM2 / hbmPHYAreaMM2
	stacksByPerim := d.Budget.PerimeterMM * 0.55 / hbmPHYPerimeterMM
	stacks := math.Floor(math.Min(stacksByArea, stacksByPerim))
	dramLimit := "phy-area"
	if stacksByPerim < stacksByArea {
		dramLimit = "perimeter"
	}
	if stacks < 1 {
		stacks = 1
	}
	if stacks > hbmStacksNominal {
		// The tech table's device bandwidth already assumes the nominal
		// stack count; extra PHYs buy capacity, not modeled here.
		stacks = hbmStacksNominal
		dramLimit = "tech"
	}
	dramBW := spec.PeakBW * stacks / hbmStacksNominal
	if maxBW := d.Alloc.PowerMemIO * d.Budget.PowerW / hbmEnergyWPerGBps * 1e9; dramBW > maxBW {
		dramBW = maxBW
		dramLimit = "power"
	}
	dramCap := spec.StackCapacity * stacks

	// Network: the chosen technology's bandwidth, feasibility-checked
	// against the NetIO allocation.
	netSpec := d.Network.Spec()
	netBW := netSpec.BW
	if d.Alloc.AreaNetIO*d.Budget.AreaMM2 < netPHYAreaMM2 ||
		d.Alloc.PowerNetIO*d.Budget.PowerW < netBW/1e9*netEnergyWPerGBps {
		// Undersized interface: clamp to what the power allocation feeds.
		byPower := d.Alloc.PowerNetIO * d.Budget.PowerW / netEnergyWPerGBps * 1e9
		if byPower < netBW {
			netBW = byPower
		}
	}
	if netBW < 1e9 {
		netBW = 1e9
	}

	name := d.Name
	if name == "" {
		name = fmt.Sprintf("custom-%v-%v", d.Node, d.DRAM)
	}
	dev := arch.Device{
		Name: name,
		Compute: map[tech.Precision]float64{
			tech.FP16: fp16,
			tech.BF16: fp16,
			tech.FP32: fp16 / 16,
		},
		VectorCompute: fp16 / 16,
		Mem: []arch.MemLevel{
			{Name: "L1", Capacity: float64(cores) * l1BytesPerCore, BW: float64(cores) * l1BWPerCore, Util: 0.90},
			{Name: "L2", Capacity: sramCap, BW: sramBW, Util: 0.85},
			{Name: "HBM", Capacity: dramCap, BW: dramBW, Util: 0.80},
		},
		DRAM:         d.DRAM,
		GEMMEff:      0.75,
		KernelLaunch: 2.8e-6,
	}
	// The hierarchy must stay ordered; clamp pathological allocations
	// (e.g. all SRAM area, no cores) instead of failing the search.
	if dev.Mem[1].BW > dev.Mem[0].BW {
		dev.Mem[1].BW = dev.Mem[0].BW
	}
	if dev.Mem[2].BW > dev.Mem[1].BW {
		dev.Mem[2].BW = dev.Mem[1].BW
	}
	if dev.Mem[1].Capacity < dev.Mem[0].Capacity {
		dev.Mem[1].Capacity = dev.Mem[0].Capacity
	}
	if dev.Mem[2].Capacity < dev.Mem[1].Capacity {
		dev.Mem[2].Capacity = dev.Mem[1].Capacity
	}
	if err := dev.Validate(); err != nil {
		return Result{}, err
	}
	return Result{
		Device:    dev,
		Cores:     cores,
		CoreLimit: coreLimit,
		DRAMLimit: dramLimit,
		NetBW:     netBW,
	}, nil
}

// SystemFrom assembles a homogeneous system of n derived devices in nodes
// of devicesPerNode, with NVLink3-class intra-node links and the design's
// network technology between nodes.
func SystemFrom(d Design, n, devicesPerNode int) (*arch.System, error) {
	res, err := Derive(d)
	if err != nil {
		return nil, err
	}
	intra := arch.IntraLink(tech.NVLink3)
	inter := arch.InterLink(d.Network, devicesPerNode)
	// The derived interface may not sustain the full tech-table rate.
	if perDev := res.NetBW / float64(devicesPerNode); d.Network.Spec().PerNode && inter.BW > perDev {
		inter.BW = perDev
	}
	if n < devicesPerNode {
		devicesPerNode = n
	}
	if n%devicesPerNode != 0 {
		return nil, fmt.Errorf("uarch: %d devices not divisible into nodes of %d", n, devicesPerNode)
	}
	sys := &arch.System{
		Device:         res.Device,
		DevicesPerNode: devicesPerNode,
		NumNodes:       n / devicesPerNode,
		Intra:          intra,
		Inter:          inter,
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}
