package roofline

import (
	"fmt"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/tech"
)

// TestCostPathsMatchEstimates pins the allocation-free Cost fast paths
// bit-identical to the full Estimate* breakdowns across a grid of shapes
// spanning GEMV and fat-GEMM regimes, both devices, and the zero-peak
// corner. The serving simulator prices every step through the fast paths,
// so any float drift here would silently shift all downstream results.
func TestCostPathsMatchEstimates(t *testing.T) {
	engines := map[string]*Engine{"a100": a100Engine(), "h100": h100Engine()}
	// A device with no supported compute exercises the Inf compute-time arm.
	crippled := arch.A100()
	crippled.Compute = map[tech.Precision]float64{}
	engines["no-compute"] = New(crippled)

	for name, e := range engines {
		t.Run(name, func(t *testing.T) {
			for _, m := range []int{1, 8, 64, 2048} {
				for _, n := range []int{1, 640, 4096} {
					for _, k := range []int{32, 4096} {
						for _, batch := range []int{0, 1, 40} {
							g := GEMM{M: m, N: n, K: k, Batch: batch, Precision: tech.FP16}
							est := e.EstimateGEMM(g)
							time, bytes := e.GEMMCost(g)
							if time != est.Time || bytes != est.DRAMBytes {
								t.Fatalf("GEMMCost(%+v) = (%v, %v), Estimate = (%v, %v)",
									g, time, bytes, est.Time, est.DRAMBytes)
							}
						}
					}
				}
			}
			for _, w := range []Elementwise{
				{Name: "softmax", Elements: 1 << 20, BytesPerElem: 6, FLOPsPerElem: 5},
				{Name: "tiny", Elements: 1, BytesPerElem: 2, FLOPsPerElem: 1},
				{Name: "compute-heavy", Elements: 1 << 10, BytesPerElem: 2, FLOPsPerElem: 1e6},
			} {
				est := e.EstimateElementwise(w)
				time, bytes := e.ElementwiseCost(w)
				if time != est.Time || bytes != est.DRAMBytes {
					t.Fatalf("ElementwiseCost(%+v) = (%v, %v), Estimate = (%v, %v)",
						w, time, bytes, est.Time, est.DRAMBytes)
				}
			}
			for _, f := range []Fused{
				{Name: "flash", FLOPs: 1e12, DRAMBytes: 1e9, Precision: tech.FP16},
				{Name: "flash-onchip", FLOPs: 1e9, DRAMBytes: 1e6, OnChipBytes: 1e8, Precision: tech.BF16},
				{Name: "tiny", FLOPs: 10, DRAMBytes: 10, Precision: tech.FP16},
			} {
				est := e.EstimateFused(f)
				time, bytes := e.FusedCost(f)
				if time != est.Time || bytes != est.DRAMBytes {
					t.Fatalf("FusedCost(%+v) = (%v, %v), Estimate = (%v, %v)",
						f, time, bytes, est.Time, est.DRAMBytes)
				}
			}
		})
	}
}

// TestCostPathsAllocFree pins that the fast paths (and the BestCompute
// preference resolution under them) stay off the heap.
func TestCostPathsAllocFree(t *testing.T) {
	e := h100Engine()
	g := GEMM{M: 4, N: 640, K: 5120, Batch: 1, Precision: tech.FP16}
	w := Elementwise{Name: "softmax", Elements: 1 << 16, BytesPerElem: 6, FLOPsPerElem: 5}
	f := Fused{Name: "flash", FLOPs: 1e10, DRAMBytes: 1e8, Precision: tech.FP16}
	var sink float64
	for name, fn := range map[string]func(){
		"gemm":        func() { t1, b := e.GEMMCost(g); sink += t1 + b },
		"elementwise": func() { t1, b := e.ElementwiseCost(w); sink += t1 + b },
		"fused":       func() { t1, b := e.FusedCost(f); sink += t1 + b },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s cost path allocates %g objects per call, want 0", name, allocs)
		}
	}
	_ = fmt.Sprint(sink)
}
