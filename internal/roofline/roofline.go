// Package roofline implements the hierarchical roofline model at the heart
// of the Optimus performance predictor (paper §3.1, after DeepFlow). A
// kernel's execution time on one device is the maximum of its compute time
// and its data-movement time at every level of the memory hierarchy, with
// memory-subsystem-aware tiling deciding how much traffic crosses each
// level and utilization factors derating peak bandwidths (§4.1).
//
// The engine classifies every kernel as compute-bound or memory-bound at a
// specific level — the classification driving the paper's Table 4, Fig. 7
// and Fig. 8 — and models the fixed kernel-launch software overhead that
// dominates tiny autoregressive-generation kernels.
package roofline

import (
	"fmt"
	"math"

	"optimus/internal/arch"
	"optimus/internal/tech"
)

// Bound says which resource limits a kernel.
type Bound int

// Bound kinds. BoundMemory is qualified by the level name in Estimate.
const (
	BoundCompute Bound = iota
	BoundMemory
	BoundLaunch
)

// String renders the bound kind as in the paper's tables.
func (b Bound) String() string {
	switch b {
	case BoundCompute:
		return "compute"
	case BoundMemory:
		return "memory"
	case BoundLaunch:
		return "launch"
	default:
		return fmt.Sprintf("Bound(%d)", int(b))
	}
}

// GEMM describes a (possibly batched) matrix multiply C[M×N] = A[M×K] ×
// B[K×N] executed Batch times with independent operands (attention heads).
type GEMM struct {
	M, N, K int
	// Batch is the number of independent instances fused in one kernel
	// launch; zero means 1.
	Batch int
	// Precision of the operands (accumulate is modeled at no extra cost,
	// matching tensor-core behaviour).
	Precision tech.Precision
}

// Instances returns the batch count, at least 1.
func (g GEMM) Instances() int {
	if g.Batch < 1 {
		return 1
	}
	return g.Batch
}

// FLOPs returns the multiply-add operation count (2·M·N·K per instance).
func (g GEMM) FLOPs() float64 {
	return 2 * float64(g.M) * float64(g.N) * float64(g.K) * float64(g.Instances())
}

// CompulsoryBytes returns the minimum off-chip traffic: each operand read
// once and the result written once.
func (g GEMM) CompulsoryBytes() float64 {
	eb := g.Precision.Bytes()
	per := (float64(g.M)*float64(g.K) + float64(g.K)*float64(g.N) + float64(g.M)*float64(g.N)) * eb
	return per * float64(g.Instances())
}

// IsGEMV reports whether the kernel is effectively a matrix-vector product
// (the skinny shapes of autoregressive generation, paper §4.1).
func (g GEMM) IsGEMV() bool {
	return g.M <= 8 || g.N <= 8
}

// ArithmeticIntensity returns FLOPs per compulsory byte.
func (g GEMM) ArithmeticIntensity() float64 {
	b := g.CompulsoryBytes()
	if b == 0 {
		return 0
	}
	return g.FLOPs() / b
}

// LevelTime is the data-movement time attributed to one memory level.
type LevelTime struct {
	Level string
	// Bytes crossing the boundary between this level and the next-inner one.
	Bytes float64
	// Time = Bytes / effective bandwidth of this level.
	Time float64
}

// Estimate is the roofline prediction for one kernel.
type Estimate struct {
	// Time is the predicted execution time in seconds, including launch
	// overhead.
	Time float64
	// ComputeTime is FLOPs over effective compute throughput.
	ComputeTime float64
	// Levels holds per-memory-level traffic and times, innermost first.
	Levels []LevelTime
	// Launch is the fixed software overhead included in Time.
	Launch float64
	// Bound classifies the kernel by its largest component.
	Bound Bound
	// BoundLevel names the limiting memory level when Bound == BoundMemory.
	BoundLevel string
	// FLOPs is the operation count.
	FLOPs float64
	// DRAMBytes is the off-chip traffic.
	DRAMBytes float64
}

// MemoryTime returns the slowest memory-level time.
func (e Estimate) MemoryTime() float64 {
	var m float64
	for _, l := range e.Levels {
		if l.Time > m {
			m = l.Time
		}
	}
	return m
}

// Engine evaluates kernels against one device.
type Engine struct {
	dev arch.Device

	// GEMVDRAMUtil is the extra DRAM bandwidth derating applied to
	// GEMV-class kernels on top of the level's streaming utilization — the
	// paper's "constant DRAM utilization factor" (§4.1). A per-kernel
	// clustered factor can be supplied via GEMVUtilFn.
	GEMVDRAMUtil float64

	// GEMVUtilFn, when non-nil, returns a kernel-specific DRAM utilization
	// factor for GEMV shapes (the clustered calibration of §4.1),
	// overriding GEMVDRAMUtil.
	GEMVUtilFn func(g GEMM) float64

	// tile edge lengths used for compute-efficiency quantization.
	tileM, tileN, tileK int
}

// New builds an Engine for a device with the default calibration.
func New(dev arch.Device) *Engine {
	return &Engine{
		dev:          dev,
		GEMVDRAMUtil: 0.88,
		tileM:        64,
		tileN:        64,
		tileK:        32,
	}
}

// Device returns the engine's device.
func (e *Engine) Device() arch.Device { return e.dev }

// quantization derates compute throughput for shapes that do not fill whole
// hardware tiles (tile- and wave-quantization of real GEMM kernels).
func (e *Engine) quantization(g GEMM) float64 {
	q := func(dim, tile int) float64 {
		if dim <= 0 {
			return 1
		}
		t := float64(tile)
		d := float64(dim)
		return d / (math.Ceil(d/t) * t)
	}
	return q(g.M, e.tileM) * q(g.N, e.tileN) * q(g.K, e.tileK)
}

// computeThroughput resolves the effective FLOP/s for a GEMM: peak at the
// best supported precision, derated by the device fat-GEMM efficiency and
// the shape quantization. GEMV shapes skip the tile quantization — their
// kernels do not tile onto tensor-core fragments, so a one-row operand is
// not a 1/64-utilized tile.
func (e *Engine) computeThroughput(g GEMM) float64 {
	_, peak := e.dev.BestCompute(g.Precision)
	if peak == 0 {
		return 0
	}
	if g.IsGEMV() {
		return peak * e.dev.GEMMEff
	}
	return peak * e.dev.GEMMEff * e.quantization(g)
}

// tileEdge returns the largest square tile edge such that three operand
// tiles of the kernel's element size fit in capacity.
func tileEdge(capacity, elemBytes float64) float64 {
	if capacity <= 0 || elemBytes <= 0 {
		return 1
	}
	t := math.Floor(math.Sqrt(capacity / (3 * elemBytes)))
	if t < 1 {
		return 1
	}
	return t
}

// trafficThrough returns the bytes crossing into the level inside the one
// with the given capacity: a tiled GEMM re-reads the A and B panels once
// per output tile, writes C once, and can never move less than the
// compulsory traffic.
func trafficThrough(g GEMM, capacity float64) float64 {
	eb := g.Precision.Bytes()
	m, n, k := float64(g.M), float64(g.N), float64(g.K)
	t := tileEdge(capacity, eb)
	perInstance := 2*m*n*k*eb/t + m*n*eb
	compulsory := (m*k + k*n + m*n) * eb
	if perInstance < compulsory {
		perInstance = compulsory
	}
	return perInstance * float64(g.Instances())
}

// dramUtil returns the DRAM utilization multiplier for the kernel: 1 for
// fat GEMMs (the level's streaming Util already applies), the calibrated
// constant for GEMV shapes, or the clustered per-kernel factor if set.
func (e *Engine) dramUtil(g GEMM) float64 {
	if !g.IsGEMV() {
		return 1
	}
	if e.GEMVUtilFn != nil {
		return e.GEMVUtilFn(g)
	}
	return e.GEMVDRAMUtil
}

// EstimateGEMM predicts the execution time of one (batched) GEMM.
//
// The hierarchical roofline evaluates, per memory level, the traffic that
// tiling at the next-inner level forces across this level's boundary; the
// kernel time is the max of compute time and every level's traffic time,
// plus the fixed launch overhead.
func (e *Engine) EstimateGEMM(g GEMM) Estimate {
	est := Estimate{FLOPs: g.FLOPs(), Launch: e.dev.KernelLaunch}

	if thru := e.computeThroughput(g); thru > 0 {
		est.ComputeTime = est.FLOPs / thru
	} else {
		est.ComputeTime = math.Inf(1)
	}

	levels := e.dev.Mem
	est.Levels = make([]LevelTime, len(levels))
	for i, lvl := range levels {
		var bytes float64
		if i == 0 {
			// Traffic into the innermost level is governed by the
			// register-file tile; model it as the level-0 tile of 1/8 the
			// L1 capacity (operands staged through shared memory).
			bytes = trafficThrough(g, lvl.Capacity/8)
		} else {
			bytes = trafficThrough(g, levels[i-1].Capacity)
		}
		bw := lvl.EffBW()
		if i == len(levels)-1 {
			bw *= e.dramUtil(g)
		}
		est.Levels[i] = LevelTime{Level: lvl.Name, Bytes: bytes, Time: bytes / bw}
	}
	est.DRAMBytes = est.Levels[len(est.Levels)-1].Bytes

	est.Time = est.ComputeTime
	est.Bound = BoundCompute
	for _, l := range est.Levels {
		if l.Time > est.Time {
			est.Time = l.Time
			est.Bound = BoundMemory
			est.BoundLevel = l.Level
		}
	}
	if e.dev.KernelLaunch > est.Time {
		est.Bound = BoundLaunch
	}
	est.Time += e.dev.KernelLaunch
	return est
}

// GEMMCost returns the Time and DRAMBytes fields of EstimateGEMM without
// materializing the per-level breakdown — the allocation-free fast path
// used by the serving simulator's pricing loop. The float operations run
// in the same order as EstimateGEMM, so the two are bit-identical (pinned
// by TestCostPathsMatchEstimates).
func (e *Engine) GEMMCost(g GEMM) (time, dramBytes float64) {
	var computeTime float64
	if thru := e.computeThroughput(g); thru > 0 {
		computeTime = g.FLOPs() / thru
	} else {
		computeTime = math.Inf(1)
	}
	levels := e.dev.Mem
	time = computeTime
	for i, lvl := range levels {
		var bytes float64
		if i == 0 {
			bytes = trafficThrough(g, lvl.Capacity/8)
		} else {
			bytes = trafficThrough(g, levels[i-1].Capacity)
		}
		bw := lvl.EffBW()
		if i == len(levels)-1 {
			bw *= e.dramUtil(g)
			dramBytes = bytes
		}
		if t := bytes / bw; t > time {
			time = t
		}
	}
	time += e.dev.KernelLaunch
	return time, dramBytes
}

// Fused describes a tensor-core kernel whose data movement is decoupled
// from its FLOP count — the FlashAttention pattern of §1.1, which "focuses
// on the memory access to and from DRAM at the cost of FLOPs": the
// attention score matrix never leaves on-chip memory, so off-chip traffic
// is just the Q/K/V inputs and the output.
type Fused struct {
	Name string
	// FLOPs is the arithmetic work executed on the tensor cores.
	FLOPs float64
	// DRAMBytes is the off-chip traffic.
	DRAMBytes float64
	// OnChipBytes is the traffic through the innermost level (the tiled
	// working set); zero derives it as 2x the DRAM traffic.
	OnChipBytes float64
	// Precision selects the tensor-engine format.
	Precision tech.Precision
}

// EstimateFused predicts a fused tensor-core kernel: compute at the
// device's fat-GEMM efficiency versus its explicit DRAM stream.
func (e *Engine) EstimateFused(f Fused) Estimate {
	est := Estimate{FLOPs: f.FLOPs, Launch: e.dev.KernelLaunch, DRAMBytes: f.DRAMBytes}
	_, peak := e.dev.BestCompute(f.Precision)
	if peak > 0 {
		est.ComputeTime = f.FLOPs / (peak * e.dev.GEMMEff)
	} else {
		est.ComputeTime = math.Inf(1)
	}
	onChip := f.OnChipBytes
	if onChip <= 0 {
		onChip = 2 * f.DRAMBytes
	}
	inner := e.dev.Mem[0]
	dram := e.dev.DRAMLevel()
	est.Levels = []LevelTime{
		{Level: inner.Name, Bytes: onChip, Time: onChip / inner.EffBW()},
		{Level: dram.Name, Bytes: f.DRAMBytes, Time: f.DRAMBytes / dram.EffBW()},
	}
	est.Time = est.ComputeTime
	est.Bound = BoundCompute
	for _, l := range est.Levels {
		if l.Time > est.Time {
			est.Time = l.Time
			est.Bound = BoundMemory
			est.BoundLevel = l.Level
		}
	}
	if e.dev.KernelLaunch > est.Time {
		est.Bound = BoundLaunch
	}
	est.Time += e.dev.KernelLaunch
	return est
}

// FusedCost returns the Time and DRAMBytes fields of EstimateFused without
// allocating the per-level breakdown; bit-identical to EstimateFused.
func (e *Engine) FusedCost(f Fused) (time, dramBytes float64) {
	var computeTime float64
	_, peak := e.dev.BestCompute(f.Precision)
	if peak > 0 {
		computeTime = f.FLOPs / (peak * e.dev.GEMMEff)
	} else {
		computeTime = math.Inf(1)
	}
	onChip := f.OnChipBytes
	if onChip <= 0 {
		onChip = 2 * f.DRAMBytes
	}
	time = computeTime
	if t := onChip / e.dev.Mem[0].EffBW(); t > time {
		time = t
	}
	if t := f.DRAMBytes / e.dev.DRAMLevel().EffBW(); t > time {
		time = t
	}
	time += e.dev.KernelLaunch
	return time, f.DRAMBytes
}

// Elementwise describes a streaming non-GEMM kernel (softmax, layer-norm,
// dropout, activation, residual add, embedding gather): Elements values
// each touched BytesPerElem bytes of traffic with FLOPsPerElem operations.
type Elementwise struct {
	Name         string
	Elements     float64
	BytesPerElem float64
	FLOPsPerElem float64
}

// EstimateElementwise predicts a streaming kernel's time: the max of its
// DRAM streaming time and its vector-compute time, plus launch overhead.
// Fused kernels should be expressed as a single Elementwise with combined
// traffic (kernel fusion improves arithmetic intensity, paper §1.2).
func (e *Engine) EstimateElementwise(w Elementwise) Estimate {
	bytes := w.Elements * w.BytesPerElem
	flops := w.Elements * w.FLOPsPerElem
	dram := e.dev.DRAMLevel()
	memTime := bytes / dram.EffBW()
	var compTime float64
	if e.dev.VectorCompute > 0 {
		compTime = flops / e.dev.VectorCompute
	}
	est := Estimate{
		ComputeTime: compTime,
		Levels:      []LevelTime{{Level: dram.Name, Bytes: bytes, Time: memTime}},
		Launch:      e.dev.KernelLaunch,
		FLOPs:       flops,
		DRAMBytes:   bytes,
	}
	if memTime >= compTime {
		est.Time = memTime
		est.Bound = BoundMemory
		est.BoundLevel = dram.Name
	} else {
		est.Time = compTime
		est.Bound = BoundCompute
	}
	if e.dev.KernelLaunch > est.Time {
		est.Bound = BoundLaunch
	}
	est.Time += e.dev.KernelLaunch
	return est
}

// ElementwiseCost returns the Time and DRAMBytes fields of
// EstimateElementwise without allocating the per-level breakdown;
// bit-identical to EstimateElementwise.
func (e *Engine) ElementwiseCost(w Elementwise) (time, dramBytes float64) {
	bytes := w.Elements * w.BytesPerElem
	flops := w.Elements * w.FLOPsPerElem
	memTime := bytes / e.dev.DRAMLevel().EffBW()
	var compTime float64
	if e.dev.VectorCompute > 0 {
		compTime = flops / e.dev.VectorCompute
	}
	if memTime >= compTime {
		time = memTime
	} else {
		time = compTime
	}
	time += e.dev.KernelLaunch
	return time, bytes
}
