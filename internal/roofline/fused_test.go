package roofline

import (
	"math"
	"testing"

	"optimus/internal/tech"
)

func TestEstimateFusedComputeVsMemory(t *testing.T) {
	e := a100Engine()
	// A flash-attention-shaped kernel: heavy FLOPs, light traffic →
	// compute-bound on the tensor cores.
	hot := Fused{Name: "flash", FLOPs: 1e12, DRAMBytes: 50e6, Precision: tech.BF16}
	est := e.EstimateFused(hot)
	if est.Bound != BoundCompute {
		t.Errorf("FLOP-heavy fused kernel bound = %v, want compute", est.Bound)
	}
	want := 1e12 / (312e12 * e.Device().GEMMEff)
	if math.Abs(est.ComputeTime-want)/want > 1e-9 {
		t.Errorf("compute time = %g, want %g", est.ComputeTime, want)
	}

	// The reverse: tiny FLOPs, heavy streaming → DRAM-bound.
	cold := Fused{Name: "stream", FLOPs: 1e6, DRAMBytes: 1e9, Precision: tech.BF16}
	est = e.EstimateFused(cold)
	if est.Bound != BoundMemory || est.BoundLevel != "HBM" {
		t.Errorf("stream-heavy fused kernel bound = %v (%s), want memory/HBM", est.Bound, est.BoundLevel)
	}
}

func TestEstimateFusedLaunchFloor(t *testing.T) {
	e := a100Engine()
	est := e.EstimateFused(Fused{Name: "tiny", FLOPs: 1e3, DRAMBytes: 1e3, Precision: tech.FP16})
	if est.Bound != BoundLaunch {
		t.Errorf("tiny fused kernel bound = %v, want launch", est.Bound)
	}
	if est.Time < e.Device().KernelLaunch {
		t.Error("time must include launch overhead")
	}
}

func TestEstimateFusedOnChipDefault(t *testing.T) {
	e := a100Engine()
	est := e.EstimateFused(Fused{Name: "f", FLOPs: 1e9, DRAMBytes: 1e8, Precision: tech.FP16})
	if len(est.Levels) != 2 {
		t.Fatalf("fused estimate should report 2 levels, got %d", len(est.Levels))
	}
	if est.Levels[0].Bytes != 2e8 {
		t.Errorf("default on-chip traffic = %g, want 2x DRAM", est.Levels[0].Bytes)
	}
	// Explicit on-chip traffic overrides the default.
	est = e.EstimateFused(Fused{Name: "f", FLOPs: 1e9, DRAMBytes: 1e8, OnChipBytes: 5e8, Precision: tech.FP16})
	if est.Levels[0].Bytes != 5e8 {
		t.Errorf("explicit on-chip traffic = %g, want 5e8", est.Levels[0].Bytes)
	}
}

// Property-style check: a fused kernel is never slower than running the
// same FLOPs and bytes as an unfused GEMM whose score matrix round-trips
// through DRAM.
func TestFusedNeverSlowerThanMaterialized(t *testing.T) {
	e := a100Engine()
	flops := 4.0 * 2048 * 2048 * 128 * 16
	ioBytes := 4.0 * 2048 * 128 * 16 * 2
	scoreBytes := 2.0 * 16 * 2048 * 2048 * 2

	fused := e.EstimateFused(Fused{Name: "flash", FLOPs: flops, DRAMBytes: ioBytes, Precision: tech.FP16})
	materialized := e.EstimateFused(Fused{Name: "std", FLOPs: flops, DRAMBytes: ioBytes + 2*scoreBytes, Precision: tech.FP16})
	if fused.Time > materialized.Time {
		t.Errorf("fused %g slower than materialized %g", fused.Time, materialized.Time)
	}
}
