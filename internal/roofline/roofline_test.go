package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"optimus/internal/arch"
	"optimus/internal/tech"
)

func a100Engine() *Engine { return New(arch.A100()) }
func h100Engine() *Engine { return New(arch.H100()) }

func TestGEMMFLOPs(t *testing.T) {
	g := GEMM{M: 10, N: 20, K: 30, Precision: tech.FP16}
	if got := g.FLOPs(); got != 12000 {
		t.Errorf("FLOPs = %g, want 12000", got)
	}
	g.Batch = 4
	if got := g.FLOPs(); got != 48000 {
		t.Errorf("batched FLOPs = %g, want 48000", got)
	}
}

func TestCompulsoryBytes(t *testing.T) {
	g := GEMM{M: 2, N: 3, K: 4, Precision: tech.FP16}
	// (2*4 + 4*3 + 2*3) * 2 bytes = 52.
	if got := g.CompulsoryBytes(); got != 52 {
		t.Errorf("CompulsoryBytes = %g, want 52", got)
	}
}

func TestIsGEMV(t *testing.T) {
	if !(GEMM{M: 1, N: 4096, K: 4096}).IsGEMV() {
		t.Error("M=1 should be GEMV")
	}
	if (GEMM{M: 2048, N: 4096, K: 4096}).IsGEMV() {
		t.Error("fat GEMM misclassified as GEMV")
	}
}

func TestFatGEMMComputeBound(t *testing.T) {
	// Training-shape GEMMs are compute-bound on an A100 (paper §1.2).
	e := a100Engine()
	est := e.EstimateGEMM(GEMM{M: 8192, N: 8192, K: 8192, Precision: tech.FP16})
	if est.Bound != BoundCompute {
		t.Errorf("8192^3 GEMM bound = %v (%s), want compute", est.Bound, est.BoundLevel)
	}
	// 2*8192^3 FLOPs at the device's calibrated fat-GEMM efficiency.
	want := 2 * math.Pow(8192, 3) / (312e12 * e.Device().GEMMEff)
	if math.Abs(est.ComputeTime-want)/want > 1e-9 {
		t.Errorf("compute time = %g, want %g", est.ComputeTime, want)
	}
	if est.Time < est.ComputeTime {
		t.Error("total time must include compute time")
	}
}

func TestGEMVMemoryBound(t *testing.T) {
	// Decode-shape GEMV is DRAM-bound (paper §4.1): the weight matrix is
	// streamed once per token.
	e := a100Engine()
	g := GEMM{M: 1, N: 4096, K: 4096, Precision: tech.FP16}
	est := e.EstimateGEMM(g)
	if est.Bound != BoundMemory {
		t.Fatalf("GEMV bound = %v, want memory", est.Bound)
	}
	if est.BoundLevel != "HBM" {
		t.Errorf("GEMV bound level = %s, want HBM", est.BoundLevel)
	}
	// Time ≈ weight bytes / (1.935e12 * 0.80 * 0.88) + launch.
	weights := 4096.0 * 4096 * 2
	wantMem := weights / (1.935e12 * 0.80 * 0.88)
	if est.MemoryTime() < wantMem*0.95 || est.MemoryTime() > wantMem*1.15 {
		t.Errorf("GEMV memory time = %g, want ≈ %g", est.MemoryTime(), wantMem)
	}
}

func TestGEMVUtilFnOverride(t *testing.T) {
	e := a100Engine()
	g := GEMM{M: 1, N: 4096, K: 4096, Precision: tech.FP16}
	base := e.EstimateGEMM(g).Time
	e.GEMVUtilFn = func(GEMM) float64 { return 0.44 } // half the default 0.88
	slower := e.EstimateGEMM(g).Time
	if slower <= base {
		t.Errorf("halving DRAM utilization should slow the GEMV: %g vs %g", slower, base)
	}
}

func TestTinyKernelLaunchBound(t *testing.T) {
	// A single-head decode attention score kernel is launch-bound: its
	// data fits in caches and moves in under a microsecond (Table 4's
	// single-head rows are ~3 µs ≈ launch overhead).
	e := a100Engine()
	est := e.EstimateGEMM(GEMM{M: 1, N: 200, K: 128, Precision: tech.FP16})
	if est.Bound != BoundLaunch {
		t.Errorf("tiny kernel bound = %v, want launch", est.Bound)
	}
	if est.Time < e.Device().KernelLaunch {
		t.Error("time must include launch overhead")
	}
	if est.Time > 2.5*e.Device().KernelLaunch {
		t.Errorf("tiny kernel time %g should be dominated by launch %g", est.Time, e.Device().KernelLaunch)
	}
}

func TestPrefillQKVBoundFlipsA100ToH100(t *testing.T) {
	// Paper Table 4: the merged-head QKV GEMM of Llama2-13B prefill
	// (m=200, k=5120, n=3*5120) is compute-bound on A100 but
	// memory-bound on H100 — compute scaled 3.2x while DRAM scaled 1.76x.
	g := GEMM{M: 200, N: 3 * 5120, K: 5120, Precision: tech.FP16}
	a := a100Engine().EstimateGEMM(g)
	h := h100Engine().EstimateGEMM(g)
	if a.Bound != BoundCompute {
		t.Errorf("A100 QKV bound = %v (%s), want compute", a.Bound, a.BoundLevel)
	}
	if h.Bound != BoundMemory {
		t.Errorf("H100 QKV bound = %v, want memory", h.Bound)
	}
	if h.Time >= a.Time {
		t.Error("H100 must be faster than A100 on the QKV GEMM")
	}
}

func TestHierarchyLevelsReported(t *testing.T) {
	e := a100Engine()
	est := e.EstimateGEMM(GEMM{M: 4096, N: 4096, K: 4096, Precision: tech.FP16})
	if len(est.Levels) != 3 {
		t.Fatalf("want 3 levels, got %d", len(est.Levels))
	}
	names := []string{"L1", "L2", "HBM"}
	for i, l := range est.Levels {
		if l.Level != names[i] {
			t.Errorf("level %d = %s, want %s", i, l.Level, names[i])
		}
		if l.Bytes <= 0 || l.Time <= 0 {
			t.Errorf("level %s has non-positive traffic", l.Level)
		}
	}
	// Inner levels see at least the traffic of outer levels (reuse only
	// reduces traffic moving outward).
	for i := 1; i < len(est.Levels); i++ {
		if est.Levels[i].Bytes > est.Levels[i-1].Bytes*1.000001 {
			t.Errorf("traffic should not grow outward: %s=%g > %s=%g",
				est.Levels[i].Level, est.Levels[i].Bytes,
				est.Levels[i-1].Level, est.Levels[i-1].Bytes)
		}
	}
}

func TestTrafficAtLeastCompulsory(t *testing.T) {
	g := GEMM{M: 128, N: 128, K: 128, Precision: tech.FP16}
	if got := trafficThrough(g, 1e12); got != g.CompulsoryBytes() {
		t.Errorf("unbounded cache should give compulsory traffic: %g vs %g", got, g.CompulsoryBytes())
	}
}

func TestQuantizationDeratesOddShapes(t *testing.T) {
	e := a100Engine()
	aligned := e.quantization(GEMM{M: 128, N: 128, K: 128})
	odd := e.quantization(GEMM{M: 129, N: 128, K: 128})
	if aligned != 1 {
		t.Errorf("aligned quantization = %g, want 1", aligned)
	}
	if odd >= aligned {
		t.Error("off-tile M should derate efficiency")
	}
}

func TestElementwiseMemoryBound(t *testing.T) {
	e := a100Engine()
	w := Elementwise{Name: "layernorm", Elements: 2048 * 12288, BytesPerElem: 6, FLOPsPerElem: 8}
	est := e.EstimateElementwise(w)
	if est.Bound != BoundMemory {
		t.Errorf("layernorm bound = %v, want memory", est.Bound)
	}
	wantMem := 2048 * 12288 * 6 / (1.935e12 * 0.80)
	if math.Abs(est.MemoryTime()-wantMem)/wantMem > 1e-9 {
		t.Errorf("elementwise memory time = %g, want %g", est.MemoryTime(), wantMem)
	}
}

func TestElementwiseLaunchBoundWhenTiny(t *testing.T) {
	e := a100Engine()
	est := e.EstimateElementwise(Elementwise{Name: "tiny", Elements: 128, BytesPerElem: 2})
	if est.Bound != BoundLaunch {
		t.Errorf("tiny elementwise bound = %v, want launch", est.Bound)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	g := GEMM{M: 1, N: 4096, K: 4096, Precision: tech.FP16}
	ai := g.ArithmeticIntensity()
	// GEMV intensity ≈ 1 FLOP/byte at fp16 (2*K*N flops / ~2*K*N bytes).
	if ai < 0.5 || ai > 2 {
		t.Errorf("GEMV arithmetic intensity = %g, want ≈ 1", ai)
	}
	fat := GEMM{M: 8192, N: 8192, K: 8192, Precision: tech.FP16}
	if fat.ArithmeticIntensity() < 1000 {
		t.Errorf("fat GEMM intensity = %g, want ≫ GEMV", fat.ArithmeticIntensity())
	}
}

func TestBatchedGEMMScalesLinearly(t *testing.T) {
	e := a100Engine()
	single := e.EstimateGEMM(GEMM{M: 2048, N: 2048, K: 128, Precision: tech.FP16})
	batched := e.EstimateGEMM(GEMM{M: 2048, N: 2048, K: 128, Batch: 8, Precision: tech.FP16})
	// Launch overhead is paid once, so 8x batch is slightly less than 8x
	// single time but at least 7x.
	lo := 7 * (single.Time - single.Launch)
	hi := 8 * single.Time
	if batched.Time < lo || batched.Time > hi {
		t.Errorf("batched time %g outside [%g, %g]", batched.Time, lo, hi)
	}
}

func TestBoundString(t *testing.T) {
	if BoundCompute.String() != "compute" || BoundMemory.String() != "memory" || BoundLaunch.String() != "launch" {
		t.Error("Bound string names wrong")
	}
}

// Property: GEMM time is monotone in every dimension.
func TestGEMMTimeMonotoneProperty(t *testing.T) {
	e := a100Engine()
	f := func(m, n, k uint8) bool {
		mi, ni, ki := int(m)+1, int(n)+1, int(k)+1
		base := e.EstimateGEMM(GEMM{M: mi, N: ni, K: ki, Precision: tech.FP16})
		grown := e.EstimateGEMM(GEMM{M: mi * 2, N: ni * 2, K: ki * 2, Precision: tech.FP16})
		return grown.Time >= base.Time
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the reported total time is always ≥ max(compute, memory) and
// ≥ launch overhead.
func TestEstimateLowerBoundsProperty(t *testing.T) {
	e := h100Engine()
	f := func(m, n, k uint16) bool {
		g := GEMM{M: int(m) + 1, N: int(n) + 1, K: int(k) + 1, Precision: tech.FP16}
		est := e.EstimateGEMM(g)
		return est.Time >= est.ComputeTime &&
			est.Time >= est.MemoryTime() &&
			est.Time >= est.Launch
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: faster DRAM can only help — an H200 (H100 + HBM3e) never runs a
// kernel slower than an H100.
func TestFasterDRAMNeverSlowerProperty(t *testing.T) {
	h100 := h100Engine()
	h200 := New(arch.H200())
	f := func(m, n, k uint16) bool {
		g := GEMM{M: int(m) + 1, N: int(n) + 1, K: int(k) + 1, Precision: tech.FP16}
		return h200.EstimateGEMM(g).Time <= h100.EstimateGEMM(g).Time*1.000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
