package roofline

import (
	"testing"

	"optimus/internal/arch"
	"optimus/internal/tech"
)

// DeepFlow — the framework the paper builds on — was validated on P4 and
// V100 GPUs. These regression checks keep those older presets honest so
// the lineage claims in DESIGN.md stay true.

func TestV100FatGEMMThroughput(t *testing.T) {
	// V100 peaks at 125 TFLOPS FP16; well-shaped training GEMMs achieve
	// ~80 TFLOPS in practice (cuBLAS measurements of the era).
	e := New(arch.V100())
	g := GEMM{M: 4096, N: 4096, K: 4096, Precision: tech.FP16}
	est := e.EstimateGEMM(g)
	achieved := est.FLOPs / est.Time
	if achieved < 60e12 || achieved > 100e12 {
		t.Errorf("V100 fat GEMM throughput = %.0f TFLOPS, want 60-100", achieved/1e12)
	}
	if est.Bound != BoundCompute {
		t.Errorf("V100 fat GEMM bound = %v, want compute", est.Bound)
	}
}

func TestV100GEMVBandwidth(t *testing.T) {
	// V100's 900 GB/s HBM2 serves decode GEMVs at ~60-70% of peak.
	e := New(arch.V100())
	g := GEMM{M: 1, N: 8192, K: 8192, Precision: tech.FP16}
	est := e.EstimateGEMM(g)
	achieved := est.DRAMBytes / est.Time
	if achieved < 0.5e12 || achieved > 0.8e12 {
		t.Errorf("V100 GEMV bandwidth = %.0f GB/s, want 500-800", achieved/1e9)
	}
}

func TestP4IsInferenceClass(t *testing.T) {
	// The P4 is an inference card: no fast FP16 path, INT8 at 22 TOPS,
	// and a GDDR-class memory system that bounds even modest GEMMs.
	p4 := arch.P4()
	if f, _ := p4.PeakCompute(tech.INT8); f != 22e12 {
		t.Errorf("P4 INT8 = %g, want 22e12", f)
	}
	e := New(p4)
	g := GEMM{M: 1, N: 4096, K: 4096, Precision: tech.FP16}
	est := e.EstimateGEMM(g)
	if est.Bound != BoundMemory {
		t.Errorf("P4 decode GEMV bound = %v, want memory (192 GB/s GDDR)", est.Bound)
	}
}

func TestGenerationOrdering(t *testing.T) {
	// Each GPU generation must strictly improve both fat-GEMM and GEMV
	// times on identical kernels.
	fat := GEMM{M: 4096, N: 4096, K: 4096, Precision: tech.FP16}
	gemv := GEMM{M: 1, N: 8192, K: 8192, Precision: tech.FP16}
	devices := []arch.Device{arch.V100(), arch.A100(), arch.H100(), arch.B200()}
	for i := 1; i < len(devices); i++ {
		prev := New(devices[i-1])
		cur := New(devices[i])
		if cur.EstimateGEMM(fat).Time >= prev.EstimateGEMM(fat).Time {
			t.Errorf("%s should beat %s on fat GEMMs", devices[i].Name, devices[i-1].Name)
		}
		if cur.EstimateGEMM(gemv).Time >= prev.EstimateGEMM(gemv).Time {
			t.Errorf("%s should beat %s on GEMVs", devices[i].Name, devices[i-1].Name)
		}
	}
}
