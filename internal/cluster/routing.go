package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// Routing selects how the router splits the fleet-wide arrival stream
// across replicas. Every policy is deterministic: given one seeded stream
// and one fleet, the assignment is a pure function — byte-identical at any
// GOMAXPROCS (the load-aware policies sample replica state only at
// arrival-time barriers, where it is scheduling-independent).
type Routing int

const (
	// RoundRobin assigns arrival i to replica i mod R — the load-blind
	// baseline every load-aware policy is compared against.
	RoundRobin Routing = iota
	// LeastQueue assigns each arrival to the replica with the fewest
	// in-flight requests (queued + running) at the arrival instant, ties
	// broken by lowest replica index.
	LeastQueue
	// LeastKV assigns each arrival to the replica with the least
	// committed KV-cache bytes at the arrival instant (pages × page bytes
	// under the paged policies, reservations under ReserveFull), ties
	// broken by fewest in-flight then lowest index.
	LeastKV
	// TenantAffinity pins every tenant to one replica (FNV-1a hash of the
	// tenant name mod R) — the session-stickiness pattern that keeps a
	// tenant's KV reuse and noisy-neighbor blast radius on one box.
	TenantAffinity
)

// routings enumerates every routing policy in enum order (the sweep axis
// and the CLI both iterate it).
var routings = []Routing{RoundRobin, LeastQueue, LeastKV, TenantAffinity}

// String names the routing policy.
func (r Routing) String() string {
	switch r {
	case RoundRobin:
		return "round-robin"
	case LeastQueue:
		return "least-queue"
	case LeastKV:
		return "least-kv"
	case TenantAffinity:
		return "tenant-affinity"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// MarshalJSON renders the routing name, so JSON artifacts compared across
// the routing axis say "least-kv", not a bare enum int.
func (r Routing) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// UnmarshalJSON parses the rendered routing name back.
func (r *Routing) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParseRouting(s)
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// ParseRouting parses a routing-policy name (the CLI flag syntax).
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "round-robin", "rr":
		return RoundRobin, nil
	case "least-queue", "lq":
		return LeastQueue, nil
	case "least-kv", "lkv":
		return LeastKV, nil
	case "tenant-affinity", "affinity":
		return TenantAffinity, nil
	default:
		return 0, fmt.Errorf("cluster: unknown routing policy %q (round-robin|least-queue|least-kv|tenant-affinity)", s)
	}
}

// valid reports whether r is a known routing policy (Spec validation).
func (r Routing) valid() bool {
	return r >= RoundRobin && r <= TenantAffinity
}

// tenantReplica is TenantAffinity's stable assignment: FNV-1a over the
// tenant name, mod the replica count. Pure string math — identical on
// every platform and run.
func tenantReplica(tenant string, replicas int) int {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return int(h.Sum32() % uint32(replicas))
}
