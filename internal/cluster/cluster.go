// Package cluster simulates a multi-replica LLM serving fleet: R
// independent internal/serve simulations behind a pluggable routing
// policy, all fed from one seeded arrival stream the router splits
// deterministically. It is the composition step above internal/serve that
// RAPID-LLM-style fleet analysis needs — the paper models one instance;
// production serves its traffic from N replicas behind a router, and fleet
// SLOs are dominated by where requests land.
//
// Replicas are heterogeneous capacity descriptors: each carries its own
// serve.Spec (system, precision, TP, admission policy, pool split), so a
// mixed fleet — say four paged H100 boxes plus two disaggregated A100
// pairs — falls out of listing them. Replicas run on real goroutines, the
// first genuinely parallel serve path in the repository; results merge
// deterministically (index-ordered, with global-ID remapping), so a fleet
// Result is byte-identical at any GOMAXPROCS — the engine==serial
// discipline of internal/sweep, applied to simulation itself. The
// load-aware routing policies sample replica load only at arrival-time
// barriers, where each replica's state is a pure function of the requests
// pushed so far; scheduling order can never leak into an assignment.
package cluster

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"optimus/internal/serve"
	"optimus/internal/workload"
)

// Replica is one fleet capacity descriptor: a serve.Spec carrying capacity
// only (model/system/precision, batching and KV limits, admission policy —
// its workload and arrival fields must be zero; the router owns the
// stream), instantiated Count times.
type Replica struct {
	Spec serve.Spec
	// Count instantiates this descriptor as that many identical replicas;
	// zero means 1.
	Count int
}

// Spec fixes one fleet simulation: the replicas, the routing policy, and
// the fleet-wide workload — the same workload surface as serve.Spec
// (degenerate shape, multi-tenant mix, or replay trace) minus the
// closed-loop arrival process, which is replica-local feedback a fleet
// router cannot see.
type Spec struct {
	// Replicas lists the fleet's capacity descriptors in routing order
	// (replica indices follow the expansion of Counts).
	Replicas []Replica
	// Routing selects the router policy; the zero value is RoundRobin.
	Routing Routing

	// PromptTokens/GenTokens, Mix and Trace select the workload exactly
	// as in serve.Spec: spec-wide shape, generated mix, or replay trace.
	// PrefixTokens gives the degenerate fleet-wide shape a shared prompt
	// prefix, exactly as serve.Spec.PrefixTokens does for one replica
	// (paged replicas only; explicit mixes and traces carry their own
	// per-entry prefixes instead).
	PromptTokens int
	GenTokens    int
	PrefixTokens int
	Mix          []serve.TenantLoad
	Trace        []serve.TraceEvent

	// Rate is the fleet-wide open-loop Poisson arrival rate in
	// requests/sec; Requests the request count (zero means 256); Seed the
	// arrival-process seed. All zero (and derived) when Trace is set.
	Rate     float64
	Requests int
	Seed     int64

	// Schedule shapes the fleet arrival stream as a piecewise-constant
	// rate timeline instead of the constant Rate, exactly as
	// serve.Spec.Schedule does for one replica. Turns and Think expand the
	// stream into multi-turn session cohorts (serve.Spec.Turns/Think); the
	// router may split a session's turns across replicas — each replica's
	// prefix cache warms independently, which is itself a routing-policy
	// effect worth measuring.
	Schedule workload.Schedule
	Turns    int
	Think    float64
}

// withDefaults fills the derivable fields: singleton Counts, the
// degenerate one-tenant mix, and the 256-request default (or the trace's
// count), mirroring serve.Spec.withDefaults.
func (s Spec) withDefaults() Spec {
	reps := make([]Replica, len(s.Replicas))
	for i, r := range s.Replicas {
		if r.Count == 0 {
			r.Count = 1
		}
		reps[i] = r
	}
	s.Replicas = reps
	if len(s.Trace) > 0 {
		if s.Requests == 0 {
			s.Requests = len(s.Trace)
		}
		return s
	}
	if len(s.Mix) == 0 && s.Trace == nil {
		pid := ""
		if s.PrefixTokens > 0 {
			pid = serve.DefaultTenant
		}
		s.Mix = []serve.TenantLoad{{
			Tenant: serve.DefaultTenant, Share: 1,
			PromptTokens: s.PromptTokens, GenTokens: s.GenTokens,
			PrefixID: pid, PrefixTokens: s.PrefixTokens,
		}}
	}
	if s.Requests == 0 {
		s.Requests = 256
	}
	return s
}

// serveWorkload poses the fleet workload as a single-replica serve.Spec on
// the given capacity descriptor — the spec a replica would run if it were
// the whole fleet. Validation delegates to it per replica so a fleet spec
// is exactly as strict as R copies of serve.Spec.Validate.
func (s Spec) serveWorkload(cap serve.Spec) serve.Spec {
	cap.PromptTokens, cap.GenTokens = s.PromptTokens, s.GenTokens
	cap.PrefixTokens = s.PrefixTokens
	cap.Mix, cap.Trace = s.Mix, s.Trace
	cap.Arrival, cap.Clients = serve.Poisson, 0
	cap.Rate, cap.Requests, cap.Seed = s.Rate, s.Requests, s.Seed
	cap.Schedule, cap.Turns, cap.Think = s.Schedule, s.Turns, s.Think
	return cap
}

// Validate checks the fleet spec: at least one replica, each descriptor a
// pure capacity spec whose capacity fits the workload's largest request,
// a known routing policy, and a workload serve.Spec itself would accept.
func (s Spec) Validate() error {
	if len(s.Replicas) == 0 {
		return fmt.Errorf("cluster: fleet needs at least one replica")
	}
	if !s.Routing.valid() {
		return fmt.Errorf("cluster: unknown routing policy %v", s.Routing)
	}
	d := s.withDefaults()
	for i, r := range d.Replicas {
		if r.Count < 0 {
			return fmt.Errorf("cluster: replica %d: negative count %d", i, r.Count)
		}
		c := r.Spec
		if c.PromptTokens != 0 || c.GenTokens != 0 || c.PrefixTokens != 0 || len(c.Mix) > 0 || c.Trace != nil {
			return fmt.Errorf("cluster: replica %d carries workload fields — the fleet spec owns the workload", i)
		}
		if c.Arrival != serve.Poisson || c.Rate != 0 || c.Clients != 0 || c.Requests != 0 || c.Seed != 0 ||
			len(c.Schedule) > 0 || c.Turns != 0 || c.Think != 0 {
			return fmt.Errorf("cluster: replica %d carries arrival fields — the fleet spec owns the arrival process", i)
		}
		// Compose the raw (un-defaulted) workload: serve.Validate applies
		// its own defaulting, and folding the degenerate mix here first
		// would trip serve's shape/mix exclusivity.
		if err := s.serveWorkload(c).Validate(); err != nil {
			return fmt.Errorf("cluster: replica %d: %w", i, err)
		}
	}
	return nil
}

// RequestMetrics is one completed request in the fleet-merged view: the
// per-request timeline with its global arrival index as ID, plus the
// replica that served it.
type RequestMetrics struct {
	serve.RequestMetrics
	Replica int
}

// ReplicaResult is one replica's share of the fleet simulation.
type ReplicaResult struct {
	// Index is the replica's position in the expanded fleet; Descriptor
	// the index of the Spec.Replicas entry it was instantiated from.
	Index      int
	Descriptor int
	// Assigned counts the requests the router sent here.
	Assigned int
	// Result is the replica's own serve-level result (request IDs are
	// replica-local push indices; the fleet view remaps them).
	Result serve.Result
}

// Result is the outcome of one fleet simulation.
type Result struct {
	// Requests is the completed request count; Replicas the expanded
	// fleet size; Routing echoes the router policy.
	Requests int
	Replicas int
	Routing  Routing
	// SimTime is the fleet makespan (the slowest replica's last
	// completion); ThroughputRPS and TokensPerSec are fleet totals over
	// it.
	SimTime       float64
	ThroughputRPS float64
	TokensPerSec  float64

	// TTFT, TPOT, E2E and Queue are the fleet-wide SLO percentile
	// summaries over every completed request.
	TTFT  serve.Percentiles
	TPOT  serve.Percentiles
	E2E   serve.Percentiles
	Queue serve.Percentiles

	// Preemptions, RecomputedTokens, KVTransfers and TransferTimeTotal
	// sum the per-replica counters, as do the prefix-cache and host-tier
	// counters below (all zero on fleets without those mechanisms).
	Preemptions       int
	RecomputedTokens  int
	KVTransfers       int
	TransferTimeTotal float64
	PrefixHits        int
	PrefixSavedTokens int
	KVSwapOuts        int
	KVSwapIns         int
	SwapTimeTotal     float64

	// PerTenant is the fleet-wide tenant breakdown (the multi-tenant SLO
	// surface, now spanning replicas).
	PerTenant []serve.TenantMetrics
	// PerReplica holds each replica's share, in replica-index order.
	PerReplica []ReplicaResult
	// PerRequest is the fleet-merged request view, ordered by global
	// arrival index.
	PerRequest []RequestMetrics
}

// expandReplicas flattens Count repetitions into the per-replica capacity
// list, remembering each replica's descriptor index.
func expandReplicas(reps []Replica) (specs []serve.Spec, descriptor []int, err error) {
	for d, r := range reps {
		for k := 0; k < r.Count; k++ {
			specs = append(specs, r.Spec)
			descriptor = append(descriptor, d)
		}
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("cluster: fleet expanded to zero replicas (all counts zero?)")
	}
	return specs, descriptor, nil
}

// workerPool runs fleet barriers on persistent per-replica goroutines —
// the fleet's only parallelism. Every barrier's per-index work touches
// disjoint state, so the merge points after each() see a deterministic
// fleet no matter how the goroutines were scheduled. Workers are spawned
// once per Run: under load-aware routing each arrival is a barrier, and
// per-arrival goroutine launches (~R×requests of them) used to dominate
// the router's wall clock.
type workerPool struct {
	cmds []chan func(int)
	wg   sync.WaitGroup
}

// newWorkerPool starts r persistent workers; a single-replica pool runs
// its barriers inline.
func newWorkerPool(r int) *workerPool {
	p := new(workerPool)
	if r == 1 {
		return p
	}
	p.cmds = make([]chan func(int), r)
	for i := range p.cmds {
		ch := make(chan func(int), 1)
		p.cmds[i] = ch
		go func(i int, ch chan func(int)) {
			for f := range ch {
				f(i)
				p.wg.Done()
			}
		}(i, ch)
	}
	return p
}

// each runs f(0..r-1) as one barrier and waits for every worker.
func (p *workerPool) each(r int, f func(int)) {
	if p.cmds == nil {
		for i := 0; i < r; i++ {
			f(i)
		}
		return
	}
	p.wg.Add(r)
	for _, ch := range p.cmds {
		ch <- f
	}
	p.wg.Wait()
}

// run dispatches f to the listed workers only and waits — the barrier for
// arrivals where most replicas have nothing to step. Small barriers run
// inline and serial: an arrival-time advance is typically one or two
// batching iterations per busy replica, well under the park/unpark cost
// of a goroutine hand-off (measured ~1.5× faster at R=4 than dispatching
// every busy replica).
func (p *workerPool) run(ids []int, f func(int)) {
	const inlineMax = 4
	if len(ids) <= inlineMax || p.cmds == nil {
		for _, i := range ids {
			f(i)
		}
		return
	}
	p.wg.Add(len(ids))
	for _, i := range ids {
		p.cmds[i] <- f
	}
	p.wg.Wait()
}

// stop terminates the workers; the pool is single-use per Run.
func (p *workerPool) stop() {
	for _, ch := range p.cmds {
		close(ch)
	}
}

// Runner pools fleet simulation state across runs: one serve.Runner per
// replica slot, so every replica's slabs, pricing tables and scratch
// survive from one fleet simulation to the next — the steady state of a
// rate sweep or a knee bisection re-running one fleet at many rates.
// A Runner is NOT safe for concurrent use and supports one live fleet
// simulation at a time; results are byte-identical to the package-level
// Run (TestClusterRunnerReuseMatchesFresh).
type Runner struct {
	reps []*serve.Runner
}

// NewRunner returns an empty Runner; replica slots are grown on first use.
func NewRunner() *Runner { return new(Runner) }

// Run executes the fleet simulation: generate the seeded fleet-wide
// arrival stream (byte-identical to what serve.Run would generate for the
// same workload), route every arrival to a replica, run the replicas —
// genuinely in parallel — and merge per-replica results into the fleet
// view deterministically.
func Run(s Spec) (Result, error) { return new(Runner).Run(s) }

// Run is the pooled form of the package-level Run: replica instances are
// re-armed from the Runner's per-slot serve.Runners instead of built
// fresh.
func (rn *Runner) Run(s Spec) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	s = s.withDefaults()

	// The fleet arrival stream, through the same generation seam serve.Run
	// draws from — byte-identical timestamps and shapes for the same
	// workload and seed.
	var times []float64
	var shapes []serve.Request
	if len(s.Trace) > 0 {
		times = make([]float64, len(s.Trace))
		shapes = make([]serve.Request, len(s.Trace))
		for i, ev := range s.Trace {
			times[i] = ev.Arrival
			shapes[i] = ev.Request
		}
	} else {
		proc := workload.ArrivalProcess{
			Rate: s.Rate, Schedule: s.Schedule,
			Turns: s.Turns, Think: s.Think, Seed: s.Seed,
		}
		times, shapes = proc.Generate(s.Mix, s.Requests, nil, nil)
	}

	specs, descriptor, err := expandReplicas(s.Replicas)
	if err != nil {
		return Result{}, err
	}
	R := len(specs)
	for len(rn.reps) < R {
		rn.reps = append(rn.reps, serve.NewRunner())
	}
	instances := make([]*serve.Instance, R)
	for i, cap := range specs {
		in, err := rn.reps[i].Instance(cap, shapes)
		if err != nil {
			return Result{}, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		instances[i] = in
	}
	pool := newWorkerPool(R)
	defer pool.stop()

	// routed[i] lists replica i's assigned global arrival indices in push
	// order — the local→global ID remapping the merge applies.
	routed := make([][]int, R)
	assign := func(i, replica int) {
		routed[replica] = append(routed[replica], i)
	}

	pushErrs := make([]error, R)
	switch s.Routing {
	case RoundRobin, TenantAffinity:
		// Load-independent routing: the whole assignment is a pure
		// function of the stream, so compute it up front and run every
		// replica's full push+drain embarrassingly parallel.
		for i := range times {
			switch s.Routing {
			case RoundRobin:
				assign(i, i%R)
			default:
				assign(i, tenantReplica(shapes[i].Tenant, R))
			}
		}
		pool.each(R, func(r int) {
			in := instances[r]
			for _, g := range routed[r] {
				if err := in.Push(shapes[g], times[g]); err != nil {
					pushErrs[r] = err
					return
				}
			}
			in.Drain()
		})
	case LeastQueue, LeastKV:
		// Load-aware routing: barrier every replica to the arrival
		// instant (in parallel — each replica steps its own iterations),
		// then scan loads in index order. The snapshot each replica
		// reports at time t depends only on its own push history, so the
		// argmin — ties to the lowest index — is scheduling-independent.
		var busy []int
		for i, at := range times {
			busy = busy[:0]
			for r := 0; r < R; r++ {
				if instances[r].NeedsAdvance(at) {
					busy = append(busy, r)
				}
			}
			pool.run(busy, func(r int) { instances[r].AdvanceTo(at) })
			best, bestLoad := 0, instances[0].Load()
			for r := 1; r < R; r++ {
				l := instances[r].Load()
				if lessLoaded(s.Routing, l, bestLoad) {
					best, bestLoad = r, l
				}
			}
			if err := instances[best].Push(shapes[i], at); err != nil {
				return Result{}, fmt.Errorf("cluster: replica %d: %w", best, err)
			}
			assign(i, best)
		}
		pool.each(R, func(r int) { instances[r].Drain() })
	default:
		return Result{}, fmt.Errorf("cluster: unknown routing policy %v", s.Routing)
	}
	for r, err := range pushErrs {
		if err != nil {
			return Result{}, fmt.Errorf("cluster: replica %d: %w", r, err)
		}
	}

	return merge(s, instances, routed, descriptor)
}

// lessLoaded ranks replica load snapshots for the load-aware routers:
// strictly less loaded wins (ties keep the earlier, lower-indexed
// incumbent).
func lessLoaded(r Routing, a, b serve.Load) bool {
	if r == LeastKV {
		//lint:floateq exact compare guarding a strict-< tiebreak: equal bit patterns must fall through to in-flight count
		if a.KVBytes != b.KVBytes {
			return a.KVBytes < b.KVBytes
		}
	}
	return a.InFlight() < b.InFlight()
}

// merge assembles the fleet Result from drained replicas: per-replica
// results in index order, the global-ID-remapped request view, and
// fleet-wide summaries over it.
func merge(s Spec, instances []*serve.Instance, routed [][]int, descriptor []int) (Result, error) {
	R := len(instances)
	res := Result{
		Replicas:   R,
		Routing:    s.Routing,
		PerReplica: make([]ReplicaResult, R),
	}
	total := 0
	for r, in := range instances {
		rr, err := in.Result()
		if err != nil {
			return Result{}, fmt.Errorf("cluster: replica %d: %w", r, err)
		}
		res.PerReplica[r] = ReplicaResult{
			Index: r, Descriptor: descriptor[r],
			Assigned: len(routed[r]), Result: rr,
		}
		total += len(routed[r])
		if rr.SimTime > res.SimTime {
			res.SimTime = rr.SimTime
		}
		res.Preemptions += rr.Preemptions
		res.RecomputedTokens += rr.RecomputedTokens
		res.KVTransfers += rr.KVTransfers
		res.TransferTimeTotal += rr.TransferTimeTotal
		res.PrefixHits += rr.PrefixHits
		res.PrefixSavedTokens += rr.PrefixSavedTokens
		res.KVSwapOuts += rr.KVSwapOuts
		res.KVSwapIns += rr.KVSwapIns
		res.SwapTimeTotal += rr.SwapTimeTotal
	}

	flat := make([]serve.RequestMetrics, 0, total)
	res.PerRequest = make([]RequestMetrics, 0, total)
	for r := range instances {
		for _, m := range res.PerReplica[r].Result.PerRequest {
			m.ID = routed[r][m.ID] // local push index → global arrival index
			res.PerRequest = append(res.PerRequest, RequestMetrics{RequestMetrics: m, Replica: r})
		}
	}
	// IDs are unique global arrival indices, so the unstable generic sort
	// is deterministic — and free of sort.Slice's reflection.
	slices.SortFunc(res.PerRequest, func(a, b RequestMetrics) int { return a.ID - b.ID })
	for _, m := range res.PerRequest {
		flat = append(flat, m.RequestMetrics)
	}
	res.Requests = len(res.PerRequest)

	if res.SimTime > 0 {
		genSum := 0
		for _, m := range flat {
			genSum += m.GenTokens
		}
		res.ThroughputRPS = float64(len(flat)) / res.SimTime
		res.TokensPerSec = float64(genSum) / res.SimTime
	}
	res.TTFT = summarizeMetric(flat, func(m serve.RequestMetrics) float64 { return m.TTFT })
	res.TPOT = summarizeMetric(flat, func(m serve.RequestMetrics) float64 { return m.TPOT })
	res.E2E = summarizeMetric(flat, func(m serve.RequestMetrics) float64 { return m.E2E })
	res.Queue = summarizeMetric(flat, func(m serve.RequestMetrics) float64 { return m.Queue })
	// Single-tenant fleets (the default workload) reuse the fleet-wide
	// percentiles just computed — same samples, same shared nearest-rank
	// math, so the reuse is byte-identical to TenantBreakdown's.
	single := len(flat) > 0
	for i := 1; i < len(flat); i++ {
		if flat[i].Tenant != flat[0].Tenant {
			single = false
			break
		}
	}
	if single {
		gen := 0
		for _, m := range flat {
			gen += m.GenTokens
		}
		res.PerTenant = []serve.TenantMetrics{{
			Tenant: flat[0].Tenant, Requests: len(flat), GenTokens: gen,
			TTFT: res.TTFT, TPOT: res.TPOT, E2E: res.E2E, Queue: res.Queue,
		}}
	} else {
		res.PerTenant = serve.TenantBreakdown(flat)
	}
	return res, nil
}

// summarizeMetric extracts one per-request metric and summarizes it with
// serve's nearest-rank percentiles.
func summarizeMetric(done []serve.RequestMetrics, f func(serve.RequestMetrics) float64) serve.Percentiles {
	vals := make([]float64, len(done))
	for i, m := range done {
		vals[i] = f(m)
	}
	return serve.Summarize(vals)
}

// validateRate mirrors serve's Poisson rate validation for the knee
// analyzer's probe rates.
func validateRate(rate float64) error {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return fmt.Errorf("cluster: need a positive finite rate, got %g", rate)
	}
	return nil
}
