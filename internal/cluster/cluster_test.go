package cluster

import (
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/serve"
	"optimus/internal/tech"
)

// capacity0 is the baseline replica capacity: Llama2-13B on one A100 —
// spec0 from the serve tests, stripped to the capacity descriptor an
// instance carries.
func capacity0(t testing.TB) serve.Spec {
	t.Helper()
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		t.Fatal(err)
	}
	return serve.Spec{Model: cfg, System: sys, TP: 1, Precision: tech.FP16}
}

// fleet0 is a homogeneous fleet of n baseline replicas under the default
// 200/200 workload.
func fleet0(t testing.TB, n int) Spec {
	t.Helper()
	return Spec{
		Replicas:     []Replica{{Spec: capacity0(t), Count: n}},
		PromptTokens: 200, GenTokens: 200,
		Rate: 2.0, Requests: 64, Seed: 1,
	}
}

// TestSingleReplicaReproducesServe is the degenerate-equivalence pin: a
// one-replica round-robin fleet must reproduce plain serve.Run
// byte-identically (reflect + JSON) — the replica-level result exactly,
// and the fleet-level summaries agreeing with the serve-level ones —
// across a rate × cap × policy × seed grid.
func TestSingleReplicaReproducesServe(t *testing.T) {
	for _, rate := range []float64{0.5, 4.0} {
		for _, maxBatch := range []int{0, 6} {
			for _, pol := range []serve.Policy{serve.ReserveFull, serve.Paged, serve.Disaggregated} {
				for _, seed := range []int64{1, 99} {
					cap := capacity0(t)
					cap.MaxBatch = maxBatch
					cap.Policy = pol
					if pol != serve.ReserveFull {
						cap.KVCapacity = 3e9
					}
					single := cap
					single.PromptTokens, single.GenTokens = 200, 200
					single.Arrival, single.Rate, single.Requests, single.Seed = serve.Poisson, rate, 48, seed
					want, err := serve.Run(single)
					if err != nil {
						t.Fatal(err)
					}

					fleet, err := Run(Spec{
						Replicas:     []Replica{{Spec: cap}},
						Routing:      RoundRobin,
						PromptTokens: 200, GenTokens: 200,
						Rate: rate, Requests: 48, Seed: seed,
					})
					if err != nil {
						t.Fatal(err)
					}
					got := fleet.PerReplica[0].Result
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("rate=%g cap=%d %v seed=%d: R=1 replica result diverges from serve.Run", rate, maxBatch, pol, seed)
					}
					jw, _ := json.Marshal(want)
					jg, _ := json.Marshal(got)
					if string(jw) != string(jg) {
						t.Fatalf("rate=%g cap=%d %v seed=%d: JSON encodings differ", rate, maxBatch, pol, seed)
					}
					// The fleet summaries must agree with the serve-level
					// ones exactly — same samples, same percentile math.
					if fleet.E2E != want.E2E || fleet.TTFT != want.TTFT || fleet.TPOT != want.TPOT || fleet.Queue != want.Queue {
						t.Fatalf("rate=%g cap=%d %v seed=%d: fleet percentiles diverge from serve.Run's", rate, maxBatch, pol, seed)
					}
					if fleet.SimTime != want.SimTime || fleet.ThroughputRPS != want.ThroughputRPS || fleet.TokensPerSec != want.TokensPerSec {
						t.Fatalf("rate=%g cap=%d %v seed=%d: fleet totals diverge from serve.Run's", rate, maxBatch, pol, seed)
					}
					if !reflect.DeepEqual(fleet.PerTenant, want.PerTenant) {
						t.Fatalf("rate=%g cap=%d %v seed=%d: fleet tenant breakdown diverges", rate, maxBatch, pol, seed)
					}
				}
			}
		}
	}
}

// TestFleetDeterministicAcrossGOMAXPROCS: the replicas run on real
// goroutines, so this is the pin that parallel execution cannot leak into
// results — fleets at GOMAXPROCS 1 and N must be byte-identical for every
// routing policy (run under -race in tier 1, which also catches unsynced
// access in the barrier pattern).
func TestFleetDeterministicAcrossGOMAXPROCS(t *testing.T) {
	for _, routing := range routings {
		s := fleet0(t, 4)
		s.Routing = routing
		s.Mix = []serve.TenantLoad{
			{Tenant: "chat", Share: 0.6, PromptTokens: 150, GenTokens: 120},
			{Tenant: "batch", Share: 0.4, PromptTokens: 350, GenTokens: 40},
		}
		s.PromptTokens, s.GenTokens = 0, 0

		prev := runtime.GOMAXPROCS(1)
		serial, err := Run(s)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%v: fleet result differs between GOMAXPROCS 1 and %d", routing, prev)
		}
		js, _ := json.Marshal(serial)
		jp, _ := json.Marshal(parallel)
		if string(js) != string(jp) {
			t.Errorf("%v: JSON encodings differ across GOMAXPROCS", routing)
		}
	}
}

// TestFleetMergeInvariants: whatever the routing, the merged fleet view
// must conserve the stream — every global arrival index exactly once, in
// order, served by an in-range replica, with Assigned counts summing to
// the request count.
func TestFleetMergeInvariants(t *testing.T) {
	for _, routing := range routings {
		s := fleet0(t, 3)
		s.Routing = routing
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != 64 || len(res.PerRequest) != 64 {
			t.Fatalf("%v: completed %d of 64", routing, res.Requests)
		}
		assigned := 0
		for _, rr := range res.PerReplica {
			assigned += rr.Assigned
			if rr.Result.Requests != rr.Assigned {
				t.Errorf("%v: replica %d completed %d of its %d assigned", routing, rr.Index, rr.Result.Requests, rr.Assigned)
			}
		}
		if assigned != 64 {
			t.Errorf("%v: assigned counts sum to %d, want 64", routing, assigned)
		}
		for i, m := range res.PerRequest {
			if m.ID != i {
				t.Fatalf("%v: merged request %d has global ID %d", routing, i, m.ID)
			}
			if m.Replica < 0 || m.Replica >= res.Replicas {
				t.Fatalf("%v: request %d served by out-of-range replica %d", routing, i, m.Replica)
			}
		}
	}
}

// TestRoutingPolicyBehavior pins each policy's characteristic assignment:
// round-robin splits evenly, tenant affinity keeps each tenant on exactly
// one replica, and the load-aware policies never leave a replica unused
// under sustained load.
func TestRoutingPolicyBehavior(t *testing.T) {
	mix := []serve.TenantLoad{
		{Tenant: "a", Share: 1, PromptTokens: 150, GenTokens: 100},
		{Tenant: "b", Share: 1, PromptTokens: 200, GenTokens: 150},
		{Tenant: "c", Share: 1, PromptTokens: 250, GenTokens: 50},
	}
	base := fleet0(t, 3)
	base.PromptTokens, base.GenTokens = 0, 0
	base.Mix = mix
	base.Rate, base.Requests = 6.0, 60

	t.Run("round-robin", func(t *testing.T) {
		s := base
		s.Routing = RoundRobin
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, rr := range res.PerReplica {
			if rr.Assigned != 20 {
				t.Errorf("replica %d assigned %d, want an even 20", rr.Index, rr.Assigned)
			}
		}
		for _, m := range res.PerRequest {
			if m.Replica != m.ID%3 {
				t.Fatalf("request %d on replica %d, want %d", m.ID, m.Replica, m.ID%3)
			}
		}
	})
	t.Run("tenant-affinity", func(t *testing.T) {
		s := base
		s.Routing = TenantAffinity
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		home := map[string]int{}
		for _, m := range res.PerRequest {
			if prev, ok := home[m.Tenant]; ok && prev != m.Replica {
				t.Fatalf("tenant %s served by replicas %d and %d", m.Tenant, prev, m.Replica)
			}
			home[m.Tenant] = m.Replica
		}
	})
	for _, routing := range []Routing{LeastQueue, LeastKV} {
		t.Run(routing.String(), func(t *testing.T) {
			s := base
			s.Routing = routing
			res, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			for _, rr := range res.PerReplica {
				if rr.Assigned == 0 {
					t.Errorf("replica %d unused under sustained load", rr.Index)
				}
			}
		})
	}
}

// TestMoreReplicasImproveSLO: at a rate that saturates one replica, a
// four-replica fleet must cut the fleet p95 E2E — the basic capacity
// physics the cluster model exists to expose.
func TestMoreReplicasImproveSLO(t *testing.T) {
	one := fleet0(t, 1)
	one.Rate = 3.0
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	four := fleet0(t, 4)
	four.Rate = 3.0
	r4, err := Run(four)
	if err != nil {
		t.Fatal(err)
	}
	if r4.E2E.P95 >= r1.E2E.P95 {
		t.Errorf("4 replicas p95 E2E %g should beat 1 replica's %g", r4.E2E.P95, r1.E2E.P95)
	}
	if r4.SimTime > r1.SimTime {
		t.Errorf("4-replica makespan %g should not exceed 1-replica %g", r4.SimTime, r1.SimTime)
	}
}

// TestHeterogeneousFleet: replicas are full capacity descriptors — a mixed
// fleet (reserve A100 alongside a paged, KV-capped A100) runs, serves from
// both boxes, and echoes each replica's own policy in its result.
func TestHeterogeneousFleet(t *testing.T) {
	big := capacity0(t)
	small := capacity0(t)
	small.Policy = serve.Paged
	small.PageTokens = 32
	small.KVCapacity = 2e9
	small.MaxBatch = 4

	s := Spec{
		Replicas:     []Replica{{Spec: big}, {Spec: small, Count: 2}},
		Routing:      LeastQueue,
		PromptTokens: 200, GenTokens: 200,
		Rate: 4.0, Requests: 96, Seed: 3,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != 3 {
		t.Fatalf("fleet expanded to %d replicas, want 3", res.Replicas)
	}
	wantDesc := []int{0, 1, 1}
	wantPol := []serve.Policy{serve.ReserveFull, serve.Paged, serve.Paged}
	for i, rr := range res.PerReplica {
		if rr.Descriptor != wantDesc[i] {
			t.Errorf("replica %d from descriptor %d, want %d", i, rr.Descriptor, wantDesc[i])
		}
		if rr.Result.Policy != wantPol[i] {
			t.Errorf("replica %d ran policy %v, want %v", i, rr.Result.Policy, wantPol[i])
		}
		if rr.Assigned == 0 {
			t.Errorf("replica %d unused in the heterogeneous fleet", i)
		}
	}
	if res.Requests != 96 {
		t.Errorf("completed %d of 96", res.Requests)
	}
}

// TestClusterValidate pins the spec rejection surface.
func TestClusterValidate(t *testing.T) {
	check := func(name string, wantErr string, mut func(*Spec)) {
		t.Helper()
		s := fleet0(t, 2)
		mut(&s)
		err := s.Validate()
		if wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", name, err)
			}
			return
		}
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: got %v, want %q", name, err, wantErr)
		}
	}
	check("baseline", "", func(s *Spec) {})
	check("no replicas", "at least one replica", func(s *Spec) { s.Replicas = nil })
	check("zero-count fleet", "", func(s *Spec) { s.Replicas[0].Count = 1 })
	check("negative count", "negative count", func(s *Spec) { s.Replicas[0].Count = -1 })
	check("unknown routing", "unknown routing", func(s *Spec) { s.Routing = Routing(42) })
	check("replica with workload", "workload fields", func(s *Spec) { s.Replicas[0].Spec.PromptTokens = 100 })
	check("replica with arrival", "arrival fields", func(s *Spec) { s.Replicas[0].Spec.Rate = 1 })
	check("replica with clients", "arrival fields", func(s *Spec) { s.Replicas[0].Spec.Clients = 4 })
	check("zero rate", "rate", func(s *Spec) { s.Rate = 0 })
	check("mix and shape", "leave them zero", func(s *Spec) {
		s.Mix = []serve.TenantLoad{{Tenant: "x", Share: 1, PromptTokens: 10, GenTokens: 10}}
	})
	check("empty non-nil trace", "empty trace", func(s *Spec) {
		s.PromptTokens, s.GenTokens, s.Rate = 0, 0, 0
		s.Trace = []serve.TraceEvent{}
	})
	check("trace with rate", "leave Arrival/Rate/Clients/Seed/Schedule/Turns/Think unset", func(s *Spec) {
		s.PromptTokens, s.GenTokens = 0, 0
		s.Trace = []serve.TraceEvent{{Arrival: 0, Request: serve.Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}}}
	})
	check("trace", "", func(s *Spec) {
		s.PromptTokens, s.GenTokens, s.Rate, s.Requests, s.Seed = 0, 0, 0, 0, 0
		s.Trace = []serve.TraceEvent{{Arrival: 0, Request: serve.Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}}}
	})
	check("infeasible replica", "does not fit", func(s *Spec) { s.Replicas[0].Spec.KVCapacity = 1e6 })
}

// TestClusterTraceWorkload: a trace drives the fleet exactly as it drives
// serve.Run — the R=1 equivalence holds for replayed workloads too, and a
// multi-replica fleet completes every event.
func TestClusterTraceWorkload(t *testing.T) {
	trace := []serve.TraceEvent{
		{Arrival: 0, Request: serve.Request{Tenant: "a", PromptTokens: 120, GenTokens: 30}},
		{Arrival: 0.2, Request: serve.Request{Tenant: "b", PromptTokens: 200, GenTokens: 60}},
		{Arrival: 0.9, Request: serve.Request{Tenant: "a", PromptTokens: 80, GenTokens: 10}},
		{Arrival: 1.4, Request: serve.Request{Tenant: "c", PromptTokens: 300, GenTokens: 90}},
	}
	single := capacity0(t)
	single.Trace = trace
	want, err := serve.Run(single)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := Run(Spec{Replicas: []Replica{{Spec: capacity0(t)}}, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, fleet.PerReplica[0].Result) {
		t.Error("R=1 trace fleet diverges from serve.Run")
	}
	multi, err := Run(Spec{Replicas: []Replica{{Spec: capacity0(t), Count: 2}}, Routing: LeastKV, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Requests != len(trace) {
		t.Errorf("fleet completed %d of %d trace events", multi.Requests, len(trace))
	}
}
