package cluster

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"optimus/internal/serve"
)

// kneeFleet is the small fleet the knee tests analyze: two batch-capped
// baseline replicas, 48-request runs — constrained enough to saturate
// inside a small bracket and cheap enough for a brute-force rate sweep.
func kneeFleet(t *testing.T) Spec {
	s := fleet0(t, 2)
	s.Replicas[0].Spec.MaxBatch = 4
	s.Rate = 0
	s.Requests = 48
	return s
}

// TestKneeBisectionMatchesSweep is the acceptance pin: the bisected knee
// must agree with a brute-force rate sweep within tolerance. The sweep
// scans the bracket on a fine grid and finds the last rate meeting the SLO
// before the first violation; the bisected knee must land within one grid
// step plus the bisection tolerance of it.
func TestKneeBisectionMatchesSweep(t *testing.T) {
	fleet := kneeFleet(t)
	const (
		minRate = 0.25
		maxRate = 8.0
		slo     = 12.0 // seconds of fleet p95 E2E
		tol     = 0.02
	)
	knee, err := FindKnee(KneeSpec{
		Cluster: fleet, SLOE2EP95: slo,
		MinRate: minRate, MaxRate: maxRate, Tolerance: tol,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !knee.Saturated {
		t.Fatalf("expected a saturated knee inside [%g, %g], got %+v", minRate, maxRate, knee)
	}
	if knee.P95E2E > slo {
		t.Errorf("knee rate %g reports p95 %g above the SLO %g", knee.Rate, knee.P95E2E, slo)
	}
	if knee.LimitP95 <= slo {
		t.Errorf("limit rate %g reports p95 %g at or under the SLO %g", knee.LimitRate, knee.LimitP95, slo)
	}
	if knee.LimitRate-knee.Rate > tol*knee.LimitRate*1.0000001 {
		t.Errorf("bracket [%g, %g] wider than the %g relative tolerance", knee.Rate, knee.LimitRate, tol)
	}

	// Brute force: march the bracket at a fixed step; the knee estimate is
	// the last OK rate before the first violation.
	const step = 0.25
	sweepKnee, limit := 0.0, 0.0
	for rate := minRate; rate <= maxRate+1e-9; rate += step {
		cs := fleet
		cs.Rate = rate
		res, err := Run(cs)
		if err != nil {
			t.Fatal(err)
		}
		if res.E2E.P95 <= slo {
			sweepKnee = rate
		} else {
			limit = rate
			break
		}
	}
	if limit == 0 {
		t.Fatalf("brute-force sweep found no SLO violation under %g req/s", maxRate)
	}
	// Agreement: both estimates bracket the same boundary, so they differ
	// by at most one sweep step plus the bisection bracket width.
	slack := step + tol*knee.LimitRate + 1e-9
	if d := math.Abs(knee.Rate - sweepKnee); d > slack {
		t.Errorf("bisected knee %g vs swept knee %g: differ by %g, more than %g", knee.Rate, sweepKnee, d, slack)
	}
}

// TestKneeDeterministic: repeated analyses are byte-identical, probes and
// all — the property that makes the CLI output golden-pinnable.
func TestKneeDeterministic(t *testing.T) {
	ks := KneeSpec{Cluster: kneeFleet(t), SLOE2EP95: 12, MinRate: 0.5, MaxRate: 6}
	a, err := FindKnee(ks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindKnee(ks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated knee analyses must be identical")
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("JSON encodings differ across identical analyses")
	}
	if len(a.Probes) < 3 {
		t.Errorf("expected a bisection transcript, got %d probes", len(a.Probes))
	}
}

// TestKneeUnsaturated: when even MaxRate meets the SLO the analysis
// reports the bracket edge rather than inventing a knee.
func TestKneeUnsaturated(t *testing.T) {
	knee, err := FindKnee(KneeSpec{
		Cluster: kneeFleet(t), SLOE2EP95: 1e6,
		MinRate: 0.5, MaxRate: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if knee.Saturated {
		t.Errorf("a 1e6-second SLO cannot saturate: %+v", knee)
	}
	if knee.Rate != 2 {
		t.Errorf("unsaturated knee should sit at MaxRate 2, got %g", knee.Rate)
	}
	if knee.LimitRate != 0 || knee.LimitP95 != 0 {
		t.Errorf("unsaturated knee carries limit fields: %+v", knee)
	}
	if len(knee.Probes) != 2 {
		t.Errorf("unsaturated bracket should cost exactly 2 probes, got %d", len(knee.Probes))
	}
	if !knee.Converged || knee.BracketWidth != 0 {
		t.Errorf("an unsaturated knee has no bracket to narrow — trivially converged at width 0, got %+v", knee)
	}
}

// TestKneeProbeExhaustionReportsLoose is the satellite bugfix regression:
// a MaxProbes budget too small to narrow the bracket under the tolerance
// used to return a knee indistinguishable from a converged one. The
// starved analysis must now report Converged=false with the achieved
// bracket width, agree on the knee's bracketing invariants, and a
// generous budget on the identical analysis must report Converged=true
// within tolerance.
func TestKneeProbeExhaustionReportsLoose(t *testing.T) {
	base := KneeSpec{
		Cluster: kneeFleet(t), SLOE2EP95: 12,
		MinRate: 0.25, MaxRate: 8, Tolerance: 0.01,
	}
	starved := base
	// 2 bracketing probes + 1 bisection step: the bracket halves once,
	// nowhere near a 1% width.
	starved.MaxProbes = 3
	loose, err := FindKnee(starved)
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Saturated {
		t.Fatalf("the bracket must saturate: %+v", loose)
	}
	if loose.Converged {
		t.Fatalf("3 probes cannot reach a 1%% bracket on [%g, %g], yet Converged is set: %+v",
			base.MinRate, base.MaxRate, loose)
	}
	if len(loose.Probes) != 3 {
		t.Errorf("starved analysis ran %d probes of a 3-probe budget", len(loose.Probes))
	}
	wantWidth := (loose.LimitRate - loose.Rate) / loose.LimitRate
	if loose.BracketWidth != wantWidth {
		t.Errorf("BracketWidth %g does not match the bracket [%g, %g]", loose.BracketWidth, loose.Rate, loose.LimitRate)
	}
	if loose.BracketWidth <= base.Tolerance {
		t.Errorf("a starved bracket this wide should exceed the %g tolerance, got %g", base.Tolerance, loose.BracketWidth)
	}

	converged, err := FindKnee(base)
	if err != nil {
		t.Fatal(err)
	}
	if !converged.Converged {
		t.Fatalf("the default probe budget must converge at 1%%: %+v", converged)
	}
	if converged.BracketWidth > base.Tolerance {
		t.Errorf("converged width %g exceeds the %g tolerance", converged.BracketWidth, base.Tolerance)
	}
	// The loose knee must still be a valid (coarser) bracketing of the
	// converged one.
	if loose.Rate > converged.Rate || loose.LimitRate < converged.LimitRate {
		t.Errorf("starved bracket [%g, %g] does not contain the converged [%g, %g]",
			loose.Rate, loose.LimitRate, converged.Rate, converged.LimitRate)
	}
}

// TestKneeValidation pins the analyzer's rejection surface, including the
// infeasible-SLO verdict.
func TestKneeValidation(t *testing.T) {
	base := func() KneeSpec {
		return KneeSpec{Cluster: kneeFleet(t), SLOE2EP95: 12, MinRate: 0.5, MaxRate: 6}
	}
	check := func(name, wantErr string, mut func(*KneeSpec)) {
		t.Helper()
		ks := base()
		mut(&ks)
		_, err := FindKnee(ks)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: got %v, want %q", name, err, wantErr)
		}
	}
	check("rate set", "leave Cluster.Rate zero", func(ks *KneeSpec) { ks.Cluster.Rate = 1 })
	check("trace workload", "trace fixes it", func(ks *KneeSpec) {
		ks.Cluster.Trace = []serve.TraceEvent{
			{Arrival: 0, Request: serve.Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}},
		}
	})
	check("zero SLO", "positive finite p95 E2E SLO", func(ks *KneeSpec) { ks.SLOE2EP95 = 0 })
	check("NaN SLO", "positive finite p95 E2E SLO", func(ks *KneeSpec) { ks.SLOE2EP95 = math.NaN() })
	check("zero min", "bad MinRate", func(ks *KneeSpec) { ks.MinRate = 0 })
	check("inf max", "bad MaxRate", func(ks *KneeSpec) { ks.MaxRate = math.Inf(1) })
	check("inverted bracket", "below MaxRate", func(ks *KneeSpec) { ks.MinRate, ks.MaxRate = 6, 0.5 })
	check("negative tolerance", "positive finite tolerance", func(ks *KneeSpec) { ks.Tolerance = -1 })
	check("one probe", "needs 2 probes", func(ks *KneeSpec) { ks.MaxProbes = 1 })
	check("infeasible SLO", "infeasible in this bracket", func(ks *KneeSpec) { ks.SLOE2EP95 = 1e-6 })
	check("invalid fleet", "at least one replica", func(ks *KneeSpec) { ks.Cluster.Replicas = nil })
}
