package cluster

import (
	"fmt"
	"math"
)

// DefaultKneeTolerance is the bisection's relative rate tolerance when
// KneeSpec.Tolerance is zero: the search stops once the bracket width
// falls under 1% of the failing edge.
const DefaultKneeTolerance = 0.01

// DefaultKneeProbes bounds the bisection's fleet simulations when
// KneeSpec.MaxProbes is zero. 32 probes shrink any bracket by 2^-30 —
// far past any useful tolerance — so the cap only guards against
// degenerate tolerances.
const DefaultKneeProbes = 32

// KneeSpec fixes one saturation analysis: bisect the fleet arrival rate to
// the knee where fleet p95 E2E first exceeds a target SLO, instead of
// making the user eyeball a rate sweep.
type KneeSpec struct {
	// Cluster is the fleet under analysis. Its Rate must be zero (the
	// analyzer owns the rate axis) and its workload generated, not a
	// trace (a trace fixes its own arrival times).
	Cluster Spec
	// SLOE2EP95 is the target: the largest acceptable fleet-wide p95
	// end-to-end latency, in seconds.
	SLOE2EP95 float64
	// MinRate and MaxRate bracket the search in requests/sec. MinRate
	// must meet the SLO (or the analysis fails: the SLO is infeasible on
	// this fleet); a MaxRate that still meets it reports an unsaturated
	// knee at MaxRate.
	MinRate float64
	MaxRate float64
	// Tolerance is the relative bracket width the bisection stops at;
	// zero means DefaultKneeTolerance.
	Tolerance float64
	// MaxProbes caps the fleet simulations; zero means DefaultKneeProbes.
	MaxProbes int
}

// KneeProbe is one bisection evaluation: a probed rate, the fleet p95 E2E
// it produced, and whether it met the SLO.
type KneeProbe struct {
	Rate   float64
	P95E2E float64
	OK     bool
}

// Knee is the saturation analysis outcome.
//
//lint:fieldalign public result struct: fields are grouped by meaning for godoc, and one Knee exists per analysis
type Knee struct {
	// Rate is the knee: the highest probed arrival rate whose fleet p95
	// E2E still met the SLO; P95E2E is the fleet p95 at that rate.
	Rate   float64
	P95E2E float64
	// Saturated reports whether the SLO boundary lies inside the bracket:
	// true means LimitRate/LimitP95 hold the lowest probed failing rate;
	// false means even MaxRate met the SLO (the knee is beyond the
	// bracket) and the Limit fields are zero.
	Saturated bool
	LimitRate float64
	LimitP95  float64
	// Converged reports whether the bisection actually reached Tolerance.
	// MaxProbes can exhaust first, and the resulting knee — identical in
	// every other field — is looser than asked for; BracketWidth is the
	// achieved relative bracket width (hi-lo)/hi so the caller can see how
	// loose. An unsaturated knee (the whole bracket met the SLO) is
	// trivially converged at width zero: there is no bracket to narrow.
	Converged    bool
	BracketWidth float64
	// SLOE2EP95 echoes the target; Probes lists every evaluation in
	// probe order (the deterministic bisection transcript).
	SLOE2EP95 float64
	Probes    []KneeProbe
}

// FindKnee bisects the fleet arrival rate to the saturation knee. The
// search is fully deterministic: every probe runs the same seeded fleet
// simulation at a rate that is a pure function of earlier verdicts, so
// repeated analyses are byte-identical (and safe to golden-pin).
func FindKnee(ks KneeSpec) (Knee, error) {
	if len(ks.Cluster.Trace) > 0 {
		return Knee{}, fmt.Errorf("cluster: knee analysis varies the arrival rate — a trace fixes it (use a generated workload)")
	}
	if ks.Cluster.Rate != 0 {
		return Knee{}, fmt.Errorf("cluster: knee analysis owns the rate axis — leave Cluster.Rate zero, got %g", ks.Cluster.Rate)
	}
	if len(ks.Cluster.Schedule) > 0 {
		return Knee{}, fmt.Errorf("cluster: knee analysis owns the rate axis — a Schedule fixes the rate timeline, leave it empty")
	}
	if !(ks.SLOE2EP95 > 0) || math.IsInf(ks.SLOE2EP95, 0) {
		return Knee{}, fmt.Errorf("cluster: need a positive finite p95 E2E SLO, got %g", ks.SLOE2EP95)
	}
	if err := validateRate(ks.MinRate); err != nil {
		return Knee{}, fmt.Errorf("cluster: bad MinRate: %w", err)
	}
	if err := validateRate(ks.MaxRate); err != nil {
		return Knee{}, fmt.Errorf("cluster: bad MaxRate: %w", err)
	}
	if ks.MinRate >= ks.MaxRate {
		return Knee{}, fmt.Errorf("cluster: MinRate %g must be below MaxRate %g", ks.MinRate, ks.MaxRate)
	}
	tol := ks.Tolerance
	if tol == 0 {
		tol = DefaultKneeTolerance
	}
	if !(tol > 0) || math.IsInf(tol, 0) {
		return Knee{}, fmt.Errorf("cluster: need a positive finite tolerance, got %g", ks.Tolerance)
	}
	maxProbes := ks.MaxProbes
	if maxProbes == 0 {
		maxProbes = DefaultKneeProbes
	}
	if maxProbes < 2 {
		return Knee{}, fmt.Errorf("cluster: bracketing alone needs 2 probes, got MaxProbes %d", maxProbes)
	}

	knee := Knee{SLOE2EP95: ks.SLOE2EP95}
	// One pooled Runner serves every probe: the bisection re-runs the same
	// fleet at different rates, exactly the steady state the pooling seam
	// keeps warm (slabs, pricing tables).
	rn := NewRunner()
	probe := func(rate float64) (KneeProbe, error) {
		cs := ks.Cluster
		cs.Rate = rate
		res, err := rn.Run(cs)
		if err != nil {
			return KneeProbe{}, fmt.Errorf("cluster: knee probe at %g req/s: %w", rate, err)
		}
		p := KneeProbe{Rate: rate, P95E2E: res.E2E.P95, OK: res.E2E.P95 <= ks.SLOE2EP95}
		knee.Probes = append(knee.Probes, p)
		return p, nil
	}

	lo, err := probe(ks.MinRate)
	if err != nil {
		return Knee{}, err
	}
	if !lo.OK {
		return Knee{}, fmt.Errorf("cluster: fleet p95 E2E %.4gs already exceeds the %.4gs SLO at MinRate %g req/s — the SLO is infeasible in this bracket",
			lo.P95E2E, ks.SLOE2EP95, ks.MinRate)
	}
	hi, err := probe(ks.MaxRate)
	if err != nil {
		return Knee{}, err
	}
	if hi.OK {
		// The whole bracket meets the SLO: the knee lies beyond MaxRate.
		knee.Rate, knee.P95E2E = hi.Rate, hi.P95E2E
		knee.Converged = true
		return knee, nil
	}

	for len(knee.Probes) < maxProbes && hi.Rate-lo.Rate > tol*hi.Rate {
		mid, err := probe((lo.Rate + hi.Rate) / 2)
		if err != nil {
			return Knee{}, err
		}
		if mid.OK {
			lo = mid
		} else {
			hi = mid
		}
	}
	knee.Rate, knee.P95E2E = lo.Rate, lo.P95E2E
	knee.Saturated = true
	knee.LimitRate, knee.LimitP95 = hi.Rate, hi.P95E2E
	// The loop exits either by narrowing the bracket under tolerance or by
	// exhausting MaxProbes; record which, so a probe-starved loose knee is
	// distinguishable from a converged one.
	knee.BracketWidth = (hi.Rate - lo.Rate) / hi.Rate
	knee.Converged = knee.BracketWidth <= tol
	return knee, nil
}
