package cluster

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"optimus/internal/serve"
)

// TestClusterRunnerReuseMatchesFresh is the fleet-level pooling pin: one
// Runner recycled across fleet sizes, routing policies, rates and seeds —
// every replica's slabs flowing through the same per-slot serve.Runners —
// must reproduce a fresh package-level Run byte-identically (reflect and
// JSON), including a second warm pass per spec.
func TestClusterRunnerReuseMatchesFresh(t *testing.T) {
	type tcase struct {
		name string
		spec Spec
	}
	var cases []tcase
	for _, n := range []int{1, 3} {
		for _, routing := range []Routing{RoundRobin, LeastQueue, LeastKV} {
			for _, rate := range []float64{0.5, 4} {
				for _, seed := range []int64{1, 7} {
					s := fleet0(t, n)
					s.Routing, s.Rate, s.Seed = routing, rate, seed
					s.Requests = 48
					cases = append(cases, tcase{
						fmt.Sprintf("n=%d/%v/rate=%g/seed=%d", n, routing, rate, seed), s})
				}
			}
		}
	}
	// A heterogeneous fleet: paged beside reserve-full capacity, so the
	// pooled per-slot serve.Runners must re-arm across policies.
	het := fleet0(t, 1)
	paged := capacity0(t)
	paged.Policy = serve.Paged
	paged.KVCapacity = 3e9
	het.Replicas = append(het.Replicas, Replica{Spec: paged})
	het.Routing = LeastQueue
	het.Requests = 48
	cases = append(cases, tcase{"heterogeneous", het})

	rn := NewRunner()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := Run(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			for pass, label := range []string{"cold", "warm"} {
				pooled, err := rn.Run(tc.spec)
				if err != nil {
					t.Fatalf("pooled %s run: %v", label, err)
				}
				if !reflect.DeepEqual(fresh, pooled) {
					t.Errorf("pooled %s (pass %d) fleet result diverges from fresh Run", label, pass)
				}
				jf, _ := json.Marshal(fresh)
				jp, _ := json.Marshal(pooled)
				if string(jf) != string(jp) {
					t.Errorf("pooled %s (pass %d) fleet JSON diverges from fresh Run", label, pass)
				}
			}
		})
	}
}
