package cluster

import (
	"testing"

	"optimus/internal/serve"
)

// TestLessLoadedExactTie pins the justification on lessLoaded's
// //lint:floateq comparison: equal KVBytes bit patterns must fall
// through to the in-flight count, and a full tie must keep the earlier
// incumbent (lessLoaded reports false), so routing never depends on
// float noise between byte-identical replicas.
func TestLessLoadedExactTie(t *testing.T) {
	a := serve.Load{Queued: 1, KVBytes: 1024}
	b := serve.Load{Queued: 2, KVBytes: 1024}
	if !lessLoaded(LeastKV, a, b) {
		t.Error("equal KVBytes must fall through to the smaller in-flight count")
	}
	if lessLoaded(LeastKV, b, a) {
		t.Error("larger in-flight count must not win on a KV tie")
	}
	if lessLoaded(LeastKV, a, a) {
		t.Error("a full tie must keep the incumbent")
	}
	if !lessLoaded(LeastKV, serve.Load{KVBytes: 512}, serve.Load{KVBytes: 1024}) {
		t.Error("strictly smaller KVBytes must win under LeastKV")
	}
}
