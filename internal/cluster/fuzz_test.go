package cluster

import (
	"testing"

	"optimus/internal/serve"
)

// FuzzParseRouting: whatever the input, ParseRouting must never panic, and
// any name it accepts must round-trip through String back to the same
// policy — the property that keeps CLI flags, JSON artifacts and sweep
// fingerprints naming one routing consistently.
func FuzzParseRouting(f *testing.F) {
	for _, r := range routings {
		f.Add(r.String())
	}
	f.Add("rr")
	f.Add("lq")
	f.Add("lkv")
	f.Add("affinity")
	f.Add("")
	f.Add("Round-Robin")
	f.Add("least-kv ")
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRouting(s)
		if err != nil {
			return
		}
		if !r.valid() {
			t.Fatalf("ParseRouting(%q) accepted invalid routing %d", s, int(r))
		}
		back, err := ParseRouting(r.String())
		if err != nil || back != r {
			t.Fatalf("routing %v does not round-trip through its name %q: %v", r, r.String(), err)
		}
	})
}

// FuzzClusterSpecValidate: Validate must never panic on any field
// combination — including nil systems, garbage counts and smuggled
// workload fields — and whenever it accepts a spec with a small workload,
// Run must complete every request.
func FuzzClusterSpecValidate(f *testing.F) {
	cap0 := capacity0(f)

	// count1, count2, routing, prompt, gen, rate, requests, seed,
	// replicaPrompt, replicaRate, maxBatch, kvCapacity
	f.Add(1, 0, int8(0), 200, 200, 1.0, 8, int64(1), 0, 0.0, 0, 0.0)
	f.Add(2, 1, int8(1), 150, 100, 2.0, 8, int64(2), 0, 0.0, 4, 3e9)
	f.Add(1, 1, int8(2), 200, 200, 1.0, 6, int64(3), 0, 0.0, 0, 0.0)
	f.Add(1, 0, int8(3), 200, 200, 1.0, 6, int64(4), 0, 0.0, 0, 0.0)
	f.Add(-1, 0, int8(0), 200, 200, 1.0, 8, int64(1), 0, 0.0, 0, 0.0)  // negative count
	f.Add(0, 0, int8(0), 200, 200, 1.0, 8, int64(1), 0, 0.0, 0, 0.0)   // all-default counts
	f.Add(1, 0, int8(9), 200, 200, 1.0, 8, int64(1), 0, 0.0, 0, 0.0)   // unknown routing
	f.Add(1, 0, int8(0), 200, 200, 0.0, 8, int64(1), 0, 0.0, 0, 0.0)   // zero rate
	f.Add(1, 0, int8(0), 200, 200, 1.0, 8, int64(1), 100, 0.0, 0, 0.0) // replica workload smuggled
	f.Add(1, 0, int8(0), 200, 200, 1.0, 8, int64(1), 0, 1.0, 0, 0.0)   // replica arrival smuggled
	f.Add(1, 0, int8(0), 0, 0, 1.0, 8, int64(1), 0, 0.0, 0, 0.0)       // empty workload
	f.Add(1, 0, int8(0), 200, 200, 1.0, -4, int64(1), 0, 0.0, -2, 0.0) // negative counts
	f.Add(1, 0, int8(0), 200, 200, 1.0, 8, int64(1), 0, 0.0, 0, 1e6)   // KV too small

	f.Fuzz(func(t *testing.T, count1, count2 int, routing int8,
		prompt, gen int, rate float64, requests int, seed int64,
		replicaPrompt int, replicaRate float64, maxBatch int, kvCapacity float64) {
		c1 := cap0
		c1.PromptTokens = replicaPrompt
		c1.Rate = replicaRate
		c1.MaxBatch = maxBatch
		c1.KVCapacity = kvCapacity
		reps := []Replica{{Spec: c1, Count: count1}}
		if count2 != 0 {
			c2 := cap0
			c2.Policy = serve.Paged
			c2.KVCapacity = 3e9
			reps = append(reps, Replica{Spec: c2, Count: count2})
		}
		s := Spec{
			Replicas:     reps,
			Routing:      Routing(routing),
			PromptTokens: prompt, GenTokens: gen,
			Rate: rate, Requests: requests, Seed: seed,
		}
		err := s.Validate() // must not panic, whatever the fields
		if err != nil {
			return
		}
		if requests > 0 && requests <= 8 && gen <= 64 && prompt <= 4096 && count1+count2 <= 4 {
			res, runErr := Run(s)
			if runErr != nil {
				t.Fatalf("validated fleet failed to run: %v (%+v)", runErr, s)
			}
			if res.Requests != requests {
				t.Fatalf("fleet completed %d of %d requests", res.Requests, requests)
			}
		}
	})
}
