package gemv

import (
	"math"
	"testing"

	"optimus/internal/roofline"
	"optimus/internal/tech"
)

func profileAll(t *testing.T) (*Oracle, []Sample, Calibration) {
	t.Helper()
	o := NewOracle(42)
	samples := Profile(o, LLMKernels())
	cal, err := Calibrate(samples, 6)
	if err != nil {
		t.Fatal(err)
	}
	return o, samples, cal
}

// TestFig3Headline reproduces the §4.1 result: clustered utilization
// factors bring the mean absolute percentage error to the ~5% class, the
// constant factor is worse, and the predicted-vs-measured correlation is
// tight.
func TestFig3Headline(t *testing.T) {
	o, samples, cal := profileAll(t)
	preds := Evaluate(o, cal, samples)
	st := Summarize(preds)
	t.Logf("MAPE clustered = %.1f%%, constant = %.1f%%, corr = %.4f",
		100*st.MAPEClustered, 100*st.MAPEConstant, st.Corr)
	if st.MAPEClustered > 0.08 {
		t.Errorf("clustered MAPE %.1f%% exceeds 8%% (paper: 5.4%%)", 100*st.MAPEClustered)
	}
	if st.MAPEConstant <= st.MAPEClustered {
		t.Error("constant factor should be worse than clustered factors")
	}
	if st.Corr < 0.98 {
		t.Errorf("log-log correlation %.4f too weak", st.Corr)
	}
}

func TestConstantFactorFineForLargeKernels(t *testing.T) {
	// §4.1: the constant factor yields "negligible errors for large
	// matrices; for smaller sizes, the software overhead has a
	// non-negligible impact".
	o, samples, cal := profileAll(t)
	preds := Evaluate(o, cal, samples)
	var largeErr, smallErr []float64
	for _, p := range preds {
		e := math.Abs(p.Constant-p.Measured) / p.Measured
		if p.Kernel.CompulsoryBytes() > 50e6 {
			largeErr = append(largeErr, e)
		} else if p.Kernel.CompulsoryBytes() < 4e6 {
			smallErr = append(smallErr, e)
		}
	}
	if len(largeErr) == 0 || len(smallErr) == 0 {
		t.Fatal("kernel sweep must span small and large footprints")
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if m := mean(largeErr); m > 0.10 {
		t.Errorf("constant-factor error on large kernels %.1f%% should be small", 100*m)
	}
	if mean(smallErr) <= mean(largeErr) {
		t.Error("small kernels should suffer more from the constant factor")
	}
}

func TestOracleDeterministicPerSeed(t *testing.T) {
	g := roofline.GEMM{M: 1, N: 4096, K: 4096, Precision: tech.FP16}
	a := NewOracle(7).Measure(g)
	b := NewOracle(7).Measure(g)
	if a != b {
		t.Error("same seed must reproduce the same measurement")
	}
	c := NewOracle(8).Measure(g)
	if a == c {
		t.Error("different seeds should perturb the measurement")
	}
}

func TestUtilizationRampsWithSize(t *testing.T) {
	o := NewOracle(1)
	small := o.trueUtil(roofline.GEMM{M: 1, N: 512, K: 512, Precision: tech.FP16})
	large := o.trueUtil(roofline.GEMM{M: 1, N: 16384, K: 16384, Precision: tech.FP16})
	if small >= large {
		t.Errorf("utilization should ramp with footprint: %g vs %g", small, large)
	}
	if large > o.MaxUtil {
		t.Errorf("utilization %g exceeded ceiling %g", large, o.MaxUtil)
	}
}

func TestMisalignmentDipsUtilization(t *testing.T) {
	o := NewOracle(1)
	aligned := o.trueUtil(roofline.GEMM{M: 1, N: 4096, K: 4096, Precision: tech.FP16})
	unaligned := o.trueUtil(roofline.GEMM{M: 1, N: 4096, K: 4100, Precision: tech.FP16})
	if unaligned >= aligned {
		t.Error("unaligned K should dip utilization")
	}
}

func TestCalibrateClusterShapes(t *testing.T) {
	_, samples, cal := profileAll(t)
	if len(cal.Clusters) < 2 {
		t.Fatalf("want multiple clusters, got %d", len(cal.Clusters))
	}
	// Clusters are sorted by footprint and utilization grows with it.
	for i := 1; i < len(cal.Clusters); i++ {
		if cal.Clusters[i].CenterLogBytes <= cal.Clusters[i-1].CenterLogBytes {
			t.Error("clusters not sorted by footprint")
		}
	}
	first, last := cal.Clusters[0], cal.Clusters[len(cal.Clusters)-1]
	if first.Util >= last.Util {
		t.Errorf("utilization should grow across clusters: %g vs %g", first.Util, last.Util)
	}
	var members int
	for _, c := range cal.Clusters {
		members += c.Size
	}
	if members != len(samples) {
		t.Errorf("cluster sizes sum to %d, want %d", members, len(samples))
	}
	if cal.Constant <= 0 || cal.Constant > 1 {
		t.Errorf("constant factor %g implausible", cal.Constant)
	}
}

func TestUtilForPicksNearestCluster(t *testing.T) {
	_, _, cal := profileAll(t)
	tiny := roofline.GEMM{M: 1, N: 128, K: 128, Precision: tech.FP16}
	huge := roofline.GEMM{M: 1, N: 51200, K: 12288, Precision: tech.FP16}
	if cal.UtilFor(tiny) >= cal.UtilFor(huge) {
		t.Error("nearest-cluster utilization should grow with footprint")
	}
}

func TestCalibrateEdgeCases(t *testing.T) {
	if _, err := Calibrate(nil, 3); err == nil {
		t.Error("empty sample set should error")
	}
	o := NewOracle(3)
	one := Profile(o, LLMKernels()[:1])
	cal, err := Calibrate(one, 5) // k > n must clamp
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Clusters) != 1 {
		t.Errorf("single sample should give one cluster, got %d", len(cal.Clusters))
	}
}

func TestLLMKernelsAreGEMV(t *testing.T) {
	ks := LLMKernels()
	if len(ks) < 30 {
		t.Fatalf("sweep too small: %d kernels", len(ks))
	}
	for _, g := range ks {
		if !g.IsGEMV() {
			t.Errorf("kernel %dx%dx%d is not a GEMV", g.M, g.N, g.K)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.MAPEClustered != 0 || st.Corr != 0 {
		t.Error("empty summary should be zero")
	}
}
