// Package gemv reproduces the paper's Fig. 3 GEMV validation methodology.
//
// The paper profiles GEMV kernels on physical A100 GPUs, records their
// DRAM bandwidth utilization, clusters the utilizations to obtain
// per-group factors, and shows that the calibrated roofline predictions
// correlate with the measurements at ~5.4% mean absolute percentage error
// (and that a single constant factor works for large kernels but degrades
// for small ones where software overhead bites).
//
// Without physical hardware, this package substitutes a synthetic
// measurement oracle (see DESIGN.md): roofline timing driven by a
// dimension-dependent DRAM-utilization surface — utilization ramps up with
// the streamed footprint and dips on unaligned leading dimensions — plus a
// fixed kernel-launch overhead and seeded multiplicative noise. The
// calibration pipeline (clustering, constant factor, error statistics) is
// identical to the paper's and is exercised end-to-end against the oracle.
package gemv

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/roofline"
	"optimus/internal/tech"
)

// Oracle simulates profiling GEMV kernels on one device.
type Oracle struct {
	dev arch.Device
	rng *rand.Rand

	// MaxUtil is the utilization ceiling of the surface (fraction of peak
	// DRAM bandwidth a perfectly sized GEMV achieves).
	MaxUtil float64
	// RampBytes is the streamed footprint at which utilization reaches
	// half of MaxUtil.
	RampBytes float64
	// Launch is the software overhead per measured kernel.
	Launch float64
	// NoiseSigma is the relative standard deviation of the measurement
	// noise.
	NoiseSigma float64
}

// NewOracle builds an A100-class oracle with the given noise seed.
func NewOracle(seed int64) *Oracle {
	return &Oracle{
		dev:        arch.A100(),
		rng:        rand.New(rand.NewSource(seed)),
		MaxUtil:    0.74,
		RampBytes:  12e6,
		Launch:     3.2e-6,
		NoiseSigma: 0.03,
	}
}

// Device returns the oracle's device.
func (o *Oracle) Device() arch.Device { return o.dev }

// footprint returns the bytes a GEMV streams from DRAM (dominated by the
// weight matrix).
func footprint(g roofline.GEMM) float64 { return g.CompulsoryBytes() }

// trueUtil is the noise-free utilization surface: a saturating ramp in the
// streamed footprint with alignment dips — the physical causes of the
// scatter in the paper's Fig. 3.
func (o *Oracle) trueUtil(g roofline.GEMM) float64 {
	s := footprint(g)
	u := o.MaxUtil * s / (s + o.RampBytes)
	if g.K%256 != 0 {
		u *= 0.93
	}
	if g.N%256 != 0 {
		u *= 0.95
	}
	return u
}

// Measure returns one simulated "GPU time" for the kernel, including launch
// overhead and measurement noise.
func (o *Oracle) Measure(g roofline.GEMM) float64 {
	peak := o.dev.DRAMLevel().BW
	t := footprint(g)/(peak*o.trueUtil(g)) + o.Launch
	noise := 1 + o.NoiseSigma*o.rng.NormFloat64()
	if noise < 0.9 {
		noise = 0.9
	}
	return t * noise
}

// MeasuredUtil converts a measured time back into an apparent DRAM
// utilization — what the paper extracts from its profiling runs. The
// known software launch overhead is deducted first so the factor reflects
// pure bandwidth utilization (the model re-adds its own launch estimate
// when predicting).
func (o *Oracle) MeasuredUtil(g roofline.GEMM, t float64) float64 {
	if t <= 0 {
		return 0
	}
	eff := t - o.dev.KernelLaunch
	if eff < t/10 {
		eff = t / 10
	}
	return footprint(g) / (o.dev.DRAMLevel().BW * eff)
}

// LLMKernels returns a GEMV sweep shaped like the decode-phase kernels of
// the model zoo: QKV, attention output, MLP up/down and vocabulary
// projections across the Llama and GPT presets (§4.1: "matrix/vector
// dimensions were selected to cover a wide range of kernel types used in
// the LLMs").
func LLMKernels() []roofline.GEMM {
	var out []roofline.GEMM
	add := func(n, k int) {
		out = append(out, roofline.GEMM{M: 1, N: n, K: k, Precision: tech.FP16})
	}
	for _, cfg := range []model.Config{
		model.Llama2_7B(), model.Llama2_13B(), model.Llama2_70B(),
		model.GPT7B(), model.GPT22B(), model.GPT175B(),
	} {
		h, f, v := cfg.Hidden, cfg.FFN, cfg.Vocab
		add(h+2*cfg.KVDim(), h) // qkv
		add(h, h)               // attention output
		add(f, h)               // mlp up
		add(h, f)               // mlp down
		add(v, h)               // logits
		// TP-sharded variants (2- and 8-way) shrink N.
		add((h+2*cfg.KVDim())/2, h)
		add(f/8, h)
	}
	// Small kernels where launch overhead dominates.
	for _, n := range []int{128, 512, 1000, 2000} {
		add(n, n)
	}
	return out
}

// Sample is one profiled kernel.
type Sample struct {
	Kernel   roofline.GEMM
	Measured float64
	Util     float64
}

// Profile measures every kernel once.
func Profile(o *Oracle, kernels []roofline.GEMM) []Sample {
	out := make([]Sample, len(kernels))
	for i, g := range kernels {
		t := o.Measure(g)
		out[i] = Sample{Kernel: g, Measured: t, Util: o.MeasuredUtil(g, t)}
	}
	return out
}

// Cluster is one utilization group from the calibration.
type Cluster struct {
	// CenterLogBytes is the cluster centroid in log10(footprint bytes).
	CenterLogBytes float64
	// Util is the mean measured utilization of the cluster's members.
	Util float64
	// Size is the member count.
	Size int
}

// Calibration holds both of the paper's calibration variants.
type Calibration struct {
	// Clusters are the k-means utilization groups (Fig. 3 blue points).
	Clusters []Cluster
	// Constant is the single global utilization factor (orange points).
	Constant float64
}

// Calibrate clusters the measured utilizations by kernel footprint with
// 1-D k-means (k groups) and fits the constant factor to the saturated
// (large-matrix) regime — the two methods compared in §4.1.
func Calibrate(samples []Sample, k int) (Calibration, error) {
	if len(samples) == 0 {
		return Calibration{}, fmt.Errorf("gemv: no samples to calibrate")
	}
	if k < 1 {
		k = 1
	}
	if k > len(samples) {
		k = len(samples)
	}

	logs := make([]float64, len(samples))
	for i, s := range samples {
		logs[i] = math.Log10(footprint(s.Kernel))
	}
	sorted := append([]float64(nil), logs...)
	sort.Float64s(sorted)

	// Initialize centroids at quantiles, then Lloyd iterations.
	centers := make([]float64, k)
	for i := range centers {
		centers[i] = sorted[(2*i+1)*len(sorted)/(2*k)]
	}
	assign := make([]int, len(samples))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, l := range logs {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := math.Abs(l - ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		for c := range centers {
			var sum float64
			var n int
			for i, a := range assign {
				if a == c {
					sum += logs[i]
					n++
				}
			}
			if n > 0 {
				centers[c] = sum / float64(n)
			}
		}
		if !changed {
			break
		}
	}

	cal := Calibration{}
	for c := range centers {
		var sum float64
		var n int
		for i, a := range assign {
			if a == c {
				sum += samples[i].Util
				n++
			}
		}
		if n == 0 {
			continue
		}
		cal.Clusters = append(cal.Clusters, Cluster{
			CenterLogBytes: centers[c],
			Util:           sum / float64(n),
			Size:           n,
		})
	}
	sort.Slice(cal.Clusters, func(i, j int) bool {
		return cal.Clusters[i].CenterLogBytes < cal.Clusters[j].CenterLogBytes
	})
	// The constant factor is fitted to the saturated regime (the largest
	// cluster): §4.1 reports it gives "negligible errors for large
	// matrices" while small kernels, dominated by software overhead and
	// the utilization ramp, deviate.
	cal.Constant = cal.Clusters[len(cal.Clusters)-1].Util
	return cal, nil
}

// UtilFor returns the clustered utilization factor for a kernel: the
// log-footprint position is interpolated between the neighbouring cluster
// centroids (in log-utilization space, since the ramp is multiplicative),
// clamping at the extreme clusters.
func (c Calibration) UtilFor(g roofline.GEMM) float64 {
	if len(c.Clusters) == 0 {
		return c.Constant
	}
	l := math.Log10(footprint(g))
	cl := c.Clusters
	if l <= cl[0].CenterLogBytes {
		return cl[0].Util
	}
	last := len(cl) - 1
	if l >= cl[last].CenterLogBytes {
		return cl[last].Util
	}
	for i := 1; i <= last; i++ {
		if l > cl[i].CenterLogBytes {
			continue
		}
		span := cl[i].CenterLogBytes - cl[i-1].CenterLogBytes
		if span <= 0 {
			return cl[i].Util
		}
		w := (l - cl[i-1].CenterLogBytes) / span
		lo, hi := math.Log(cl[i-1].Util), math.Log(cl[i].Util)
		return math.Exp(lo + w*(hi-lo))
	}
	return cl[last].Util
}

// engineWith returns a roofline engine whose GEMV DRAM utilization comes
// from the given factor-of-peak function (the calibration output), mapped
// onto the engine's level-utilization convention.
func engineWith(dev arch.Device, utilOfPeak func(roofline.GEMM) float64) *roofline.Engine {
	eng := roofline.New(dev)
	stream := dev.DRAMLevel().Util
	eng.GEMVUtilFn = func(g roofline.GEMM) float64 {
		u := utilOfPeak(g) / stream
		if u > 1.2 {
			u = 1.2
		}
		if u < 0.05 {
			u = 0.05
		}
		return u
	}
	return eng
}

// Prediction is one Fig. 3 point pair.
type Prediction struct {
	Kernel    roofline.GEMM
	Measured  float64
	Clustered float64
	Constant  float64
}

// Evaluate predicts every sample with both calibrations.
func Evaluate(o *Oracle, cal Calibration, samples []Sample) []Prediction {
	clustered := engineWith(o.dev, cal.UtilFor)
	constant := engineWith(o.dev, func(roofline.GEMM) float64 { return cal.Constant })
	out := make([]Prediction, len(samples))
	for i, s := range samples {
		out[i] = Prediction{
			Kernel:    s.Kernel,
			Measured:  s.Measured,
			Clustered: clustered.EstimateGEMM(s.Kernel).Time,
			Constant:  constant.EstimateGEMM(s.Kernel).Time,
		}
	}
	return out
}

// Stats summarizes a prediction set.
type Stats struct {
	// MAPE is the mean absolute percentage error vs the measurements.
	MAPEClustered float64
	MAPEConstant  float64
	// Corr is the Pearson correlation of log(predicted) vs log(measured)
	// for the clustered calibration — the tightness of Fig. 3's diagonal.
	Corr float64
}

// Summarize computes the headline statistics of an evaluation.
func Summarize(preds []Prediction) Stats {
	var st Stats
	if len(preds) == 0 {
		return st
	}
	var sc, sk float64
	xs := make([]float64, len(preds))
	ys := make([]float64, len(preds))
	for i, p := range preds {
		sc += math.Abs(p.Clustered-p.Measured) / p.Measured
		sk += math.Abs(p.Constant-p.Measured) / p.Measured
		xs[i] = math.Log10(p.Measured)
		ys[i] = math.Log10(p.Clustered)
	}
	n := float64(len(preds))
	st.MAPEClustered = sc / n
	st.MAPEConstant = sk / n
	st.Corr = pearson(xs, ys)
	return st
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
