// Package comm models the collective-communication primitives of
// distributed LLM execution (paper §3.4): ring all-reduce (Eq. 3),
// double-binary-tree all-reduce (Eq. 4), all-gather, reduce-scatter,
// broadcast and point-to-point transfers, together with the
// message-size-dependent bandwidth utilization the paper applies to
// low-volume inference collectives.
package comm

import (
	"fmt"
	"math"

	"optimus/internal/arch"
)

// Algorithm selects the all-reduce implementation.
type Algorithm int

const (
	// DoubleBinaryTree is the bandwidth- and latency-optimal algorithm of
	// Eq. (4); its latency term grows logarithmically, which is what lets
	// inference scale to 8 GPUs (§3.4). It is the zero value because it is
	// the safe default for latency-sensitive collectives.
	DoubleBinaryTree Algorithm = iota
	// Ring is the bandwidth-optimal ring algorithm of Eq. (3); its latency
	// term grows linearly in the group size. Training collectives are
	// data-intensive and use it.
	Ring
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring"
	case DoubleBinaryTree:
		return "double-binary-tree"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// smallMsgHalfPoint is the message size at which a link reaches half of its
// achievable bandwidth. Collectives on tiny payloads (a decode step moves
// kilobytes) never see the wire rate; the saturating form below is the
// "utilization factor to derive the actual bandwidth" of §3.4.
const smallMsgHalfPoint = 256 * 1024

// effBW returns the achievable bandwidth of link for one message of k bytes.
func effBW(link arch.Link, k float64) float64 {
	if link.BW <= 0 {
		return 0
	}
	sat := k / (k + smallMsgHalfPoint)
	return link.EffBW() * sat
}

// AllReduceTime returns the time to all-reduce k bytes across n devices
// over link with the chosen algorithm.
//
// Ring (Eq. 3):              t = 2k(n-1)/(n·BW) + 2l(n-1)
// Double binary tree (Eq. 4): t = 2k(n-1)/(n·BW) + 2l·log2(n)
func AllReduceTime(alg Algorithm, k float64, n int, link arch.Link) float64 {
	if n <= 1 || k <= 0 {
		return 0
	}
	bw := effBW(link, k/float64(n))
	if bw <= 0 {
		return math.Inf(1)
	}
	nf := float64(n)
	bwTerm := 2 * k * (nf - 1) / (nf * bw)
	var latTerm float64
	switch alg {
	case DoubleBinaryTree:
		latTerm = 2 * link.Latency * math.Log2(nf)
	default:
		latTerm = 2 * link.Latency * (nf - 1)
	}
	return bwTerm + latTerm
}

// AllGatherTime returns the time to all-gather shards totalling k bytes
// across n devices (each device starts with k/n and ends with k): one ring
// pass, half of an all-reduce.
func AllGatherTime(k float64, n int, link arch.Link) float64 {
	if n <= 1 || k <= 0 {
		return 0
	}
	bw := effBW(link, k/float64(n))
	if bw <= 0 {
		return math.Inf(1)
	}
	nf := float64(n)
	return k*(nf-1)/(nf*bw) + link.Latency*(nf-1)
}

// ReduceScatterTime returns the time to reduce-scatter k bytes across n
// devices; symmetric with all-gather.
func ReduceScatterTime(k float64, n int, link arch.Link) float64 {
	return AllGatherTime(k, n, link)
}

// BroadcastTime returns the time to broadcast k bytes from one device to
// n-1 peers using a binary tree.
func BroadcastTime(k float64, n int, link arch.Link) float64 {
	if n <= 1 || k <= 0 {
		return 0
	}
	bw := effBW(link, k)
	if bw <= 0 {
		return math.Inf(1)
	}
	return k/bw + link.Latency*math.Log2(float64(n))
}

// AllToAllTime returns the time for each of n devices to exchange
// distinct k/n-byte shards with every peer (expert-parallel dispatch,
// sequence resharding). Each device sends and receives k(n-1)/n bytes;
// with full-duplex links the transfer pipelines in n-1 latency steps.
func AllToAllTime(k float64, n int, link arch.Link) float64 {
	if n <= 1 || k <= 0 {
		return 0
	}
	bw := effBW(link, k/float64(n))
	if bw <= 0 {
		return math.Inf(1)
	}
	nf := float64(n)
	return k*(nf-1)/(nf*bw) + link.Latency*(nf-1)
}

// P2PTime returns the time to move k bytes point-to-point over link — the
// inter-stage activation transfer of pipeline parallelism.
func P2PTime(k float64, link arch.Link) float64 {
	if k <= 0 {
		return 0
	}
	bw := effBW(link, k)
	if bw <= 0 {
		return math.Inf(1)
	}
	return k/bw + link.Latency
}

// Cost is an itemized communication time.
type Cost struct {
	// Time is the total in seconds.
	Time float64
	// BWTime is the bandwidth component.
	BWTime float64
	// LatTime is the latency component.
	LatTime float64
}

// AllReduceCost returns the itemized ring/tree all-reduce cost, used by the
// reproduction harness to attribute inference time between bandwidth and
// latency.
func AllReduceCost(alg Algorithm, k float64, n int, link arch.Link) Cost {
	if n <= 1 || k <= 0 {
		return Cost{}
	}
	total := AllReduceTime(alg, k, n, link)
	nf := float64(n)
	var lat float64
	switch alg {
	case DoubleBinaryTree:
		lat = 2 * link.Latency * math.Log2(nf)
	default:
		lat = 2 * link.Latency * (nf - 1)
	}
	return Cost{Time: total, BWTime: total - lat, LatTime: lat}
}
