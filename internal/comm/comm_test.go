package comm

import (
	"math"
	"testing"
	"testing/quick"

	"optimus/internal/arch"
	"optimus/internal/tech"
)

// bigLink is an idealized fabric where the saturating small-message factor
// is negligible for the payloads used in tests.
func bigLink() arch.Link {
	return arch.Link{Tech: tech.NVLink3, BW: 300e9, Latency: 5e-6, Util: 1.0}
}

func TestRingAllReduceMatchesEq3(t *testing.T) {
	link := bigLink()
	k := 1e9 // 1 GB: saturated bandwidth regime
	n := 8
	got := AllReduceTime(Ring, k, n, link)
	// Eq. (3): 2K(N-1)/(N·BW) + 2l(N-1), with the saturation factor ≈ 1.
	sat := (k / 8) / (k/8 + smallMsgHalfPoint)
	want := 2*k*7/(8*300e9*sat) + 2*5e-6*7
	// Reconstruct exactly as the implementation computes.
	want = 2 * k * 7 / (8 * (300e9 * sat)) // bw term
	want += 2 * 5e-6 * 7
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("ring all-reduce = %g, want %g", got, want)
	}
}

func TestTreeBeatsRingOnLatency(t *testing.T) {
	// For tiny inference payloads the tree's 2l·log2(N) beats the ring's
	// 2l(N-1) — the reason the paper models trees for inference (§3.4).
	link := bigLink()
	k := 10e3 // 10 KB decode-step all-reduce
	n := 8
	ring := AllReduceTime(Ring, k, n, link)
	tree := AllReduceTime(DoubleBinaryTree, k, n, link)
	if tree >= ring {
		t.Errorf("tree (%g) should beat ring (%g) at small payloads", tree, ring)
	}
	// Latency terms: ring 2l·7 = 70µs vs tree 2l·3 = 30µs.
	if diff := ring - tree; math.Abs(diff-2*5e-6*4) > 2e-6 {
		t.Errorf("ring-tree latency gap = %g, want ≈ 40µs", diff)
	}
}

func TestTreeAndRingSameBandwidthTerm(t *testing.T) {
	// Both algorithms are bandwidth-optimal; at huge payloads they converge.
	link := bigLink()
	k := 50e9
	ring := AllReduceTime(Ring, k, 8, link)
	tree := AllReduceTime(DoubleBinaryTree, k, 8, link)
	if math.Abs(ring-tree)/ring > 0.01 {
		t.Errorf("ring %g and tree %g should converge at large payloads", ring, tree)
	}
}

func TestAllReduceIndependentOfNAtLargeN(t *testing.T) {
	// Ring bandwidth cost "is determined by the slowest connection...,
	// independent of the number of processors" (§3.4): the (N-1)/N factor
	// approaches 1.
	link := bigLink()
	k := 10e9
	t16 := AllReduceTime(Ring, k, 16, link) - 2*link.Latency*15
	t64 := AllReduceTime(Ring, k, 64, link) - 2*link.Latency*63
	if math.Abs(t16-t64)/t16 > 0.06 {
		t.Errorf("bw term should be nearly N-independent: %g vs %g", t16, t64)
	}
}

func TestSmallMessageUnderutilizesBandwidth(t *testing.T) {
	link := bigLink()
	if got := effBW(link, 1e3); got >= link.BW/50 {
		t.Errorf("1KB message should see far below peak: %g of %g", got, link.BW)
	}
	if got := effBW(link, 1e9); got < 0.99*link.EffBW() {
		t.Errorf("1GB message should saturate: %g of %g", got, link.EffBW())
	}
}

func TestAllGatherHalfOfAllReduce(t *testing.T) {
	link := bigLink()
	k := 1e9
	ag := AllGatherTime(k, 8, link)
	ar := AllReduceTime(Ring, k, 8, link)
	if math.Abs(ar-2*ag)/ar > 0.01 {
		t.Errorf("ring all-reduce (%g) should cost two all-gathers (%g)", ar, ag)
	}
}

func TestReduceScatterSymmetric(t *testing.T) {
	link := bigLink()
	if ReduceScatterTime(1e8, 4, link) != AllGatherTime(1e8, 4, link) {
		t.Error("reduce-scatter and all-gather should cost the same")
	}
}

func TestAllToAll(t *testing.T) {
	link := bigLink()
	k := 1e9
	got := AllToAllTime(k, 8, link)
	// Same wire volume as an all-gather of k bytes.
	ag := AllGatherTime(k, 8, link)
	if math.Abs(got-ag)/ag > 1e-9 {
		t.Errorf("all-to-all %g should match all-gather wire time %g", got, ag)
	}
	if AllToAllTime(k, 1, link) != 0 {
		t.Error("single-device all-to-all is free")
	}
	if !math.IsInf(AllToAllTime(k, 4, arch.Link{}), 1) {
		t.Error("all-to-all over a missing link must be infinite")
	}
}

func TestP2P(t *testing.T) {
	link := bigLink()
	k := 1e9
	got := P2PTime(k, link)
	want := k/effBW(link, k) + link.Latency
	if got != want {
		t.Errorf("P2P = %g, want %g", got, want)
	}
	if P2PTime(0, link) != 0 {
		t.Error("zero bytes should cost nothing")
	}
}

func TestBroadcastLogLatency(t *testing.T) {
	link := bigLink()
	b2 := BroadcastTime(1e6, 2, link)
	b8 := BroadcastTime(1e6, 8, link)
	if d := b8 - b2; math.Abs(d-2*link.Latency) > 1e-9 {
		t.Errorf("broadcast latency should grow by 2l from 2 to 8 devices, got %g", d)
	}
}

func TestDegenerateGroups(t *testing.T) {
	link := bigLink()
	if AllReduceTime(Ring, 1e6, 1, link) != 0 {
		t.Error("single-device all-reduce is free")
	}
	if AllReduceTime(Ring, 0, 8, link) != 0 {
		t.Error("zero-byte all-reduce is free")
	}
	if AllGatherTime(1e6, 1, link) != 0 {
		t.Error("single-device all-gather is free")
	}
}

func TestZeroLinkIsInfinite(t *testing.T) {
	if !math.IsInf(AllReduceTime(Ring, 1e6, 4, arch.Link{}), 1) {
		t.Error("all-reduce over a missing link must be infinite")
	}
	if !math.IsInf(P2PTime(1e6, arch.Link{}), 1) {
		t.Error("p2p over a missing link must be infinite")
	}
}

func TestAllReduceCostItemization(t *testing.T) {
	link := bigLink()
	c := AllReduceCost(DoubleBinaryTree, 1e6, 8, link)
	if math.Abs(c.Time-(c.BWTime+c.LatTime)) > 1e-12 {
		t.Error("cost components must sum to total")
	}
	if c.LatTime != 2*link.Latency*3 {
		t.Errorf("tree latency = %g, want 2l·log2(8)", c.LatTime)
	}
	if z := AllReduceCost(Ring, 0, 8, link); z.Time != 0 {
		t.Error("zero-byte cost should be zero")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Ring.String() != "ring" || DoubleBinaryTree.String() != "double-binary-tree" {
		t.Error("algorithm names wrong")
	}
}

// Property: all-reduce time is monotone in payload and never negative.
func TestAllReduceMonotoneProperty(t *testing.T) {
	link := bigLink()
	f := func(kb uint16, n8 uint8) bool {
		k := float64(kb)*1e3 + 1
		n := int(n8)%63 + 2
		t1 := AllReduceTime(Ring, k, n, link)
		t2 := AllReduceTime(Ring, 2*k, n, link)
		return t1 > 0 && t2 >= t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the tree algorithm never loses to the ring for any size/group.
func TestTreeNeverWorseProperty(t *testing.T) {
	link := bigLink()
	f := func(kb uint16, n8 uint8) bool {
		k := float64(kb)*1e3 + 1
		n := int(n8)%63 + 2
		return AllReduceTime(DoubleBinaryTree, k, n, link) <= AllReduceTime(Ring, k, n, link)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
