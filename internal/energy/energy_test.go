package energy

import (
	"testing"

	"optimus/internal/arch"
	"optimus/internal/infer"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/tech"
	"optimus/internal/train"
)

func gpt175Spec(t *testing.T) (train.Spec, train.Result) {
	t.Helper()
	sys, err := arch.DGXA100(64)
	if err != nil {
		t.Fatal(err)
	}
	spec := train.Spec{
		Model:  model.GPT175B(),
		System: sys,
		Map: parallel.Mapping{
			DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: parallel.OneFOneB,
		},
		GlobalBatch: 64,
		Seq:         2048,
		Precision:   tech.BF16,
		Recompute:   memfoot.Full,
	}
	res, err := train.Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	return spec, res
}

func TestTrainingPowerPlausible(t *testing.T) {
	spec, res := gpt175Spec(t)
	rep, err := Training(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	// A busy A100 draws between idle (~95 W) and TDP (400 W); heavy
	// training sits in the upper half.
	if rep.AvgPowerW < 150 || rep.AvgPowerW > 400 {
		t.Errorf("average power %0.f W implausible for a busy A100", rep.AvgPowerW)
	}
	if rep.OverTDP {
		t.Error("average power should not exceed TDP")
	}
	b := rep.PerDevice
	if b.Compute <= 0 || b.DRAM <= 0 || b.Network <= 0 || b.Static <= 0 {
		t.Errorf("all energy components should be positive: %+v", b)
	}
	if rep.SystemJ != b.Total()*64 {
		t.Error("system energy should be 64x per-device")
	}
}

func TestComputeDominatesTraining(t *testing.T) {
	// Dense training is compute-energy dominated on A100-class hardware.
	spec, res := gpt175Spec(t)
	rep, _ := Training(spec, res)
	b := rep.PerDevice
	if b.Compute < b.DRAM || b.Compute < b.Network {
		t.Errorf("training energy should be compute-dominated: %+v", b)
	}
}

func TestInferenceEnergyDRAMHeavy(t *testing.T) {
	// Decode streams weights: DRAM energy rivals or beats compute energy,
	// unlike training.
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	spec := infer.Spec{
		Model: model.Llama2_13B(), System: sys, TP: 1, Batch: 1,
		PromptTokens: 200, GenTokens: 200, Precision: tech.FP16,
	}
	res, err := infer.Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Inference(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerDevice.DRAM < rep.PerDevice.Compute {
		t.Errorf("decode-heavy inference should be DRAM-energy heavy: %+v", rep.PerDevice)
	}
	if rep.AvgPowerW < 100 || rep.AvgPowerW > 400 {
		t.Errorf("inference power %.0f W implausible", rep.AvgPowerW)
	}
}

func TestPrecisionFactor(t *testing.T) {
	if precisionFactor(tech.FP8) != 0.5 || precisionFactor(tech.FP4) != 0.25 {
		t.Error("finer formats should cost less energy per op")
	}
	if precisionFactor(tech.FP32) != 2 || precisionFactor(tech.BF16) != 1 {
		t.Error("baseline factors wrong")
	}
}

func TestForDeviceFallsBack(t *testing.T) {
	custom := arch.A100()
	custom.Name = "custom-n3-HBM4"
	if ForDevice(custom) != deviceTable["A100-80GB"] {
		t.Error("unknown device should fall back to the A100 table")
	}
	if ForDevice(arch.H100()).TDPW != 700 {
		t.Error("H100 table wrong")
	}
}

func TestPriceGPT3ClassRun(t *testing.T) {
	// The intro's anchor: "training a GPT-3 transformer model costs
	// around $10M". GPT-3 was trained on ~300B tokens; at public cloud
	// pricing our 64-GPU configuration should land within the
	// single-digit-millions decade.
	spec, res := gpt175Spec(t)
	run, err := PriceTrainingRun(spec, res, 300e9, DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}
	if run.Cost.Total() < 1e6 || run.Cost.Total() > 30e6 {
		t.Errorf("GPT-3-class training cost $%.1fM outside the published decade",
			run.Cost.Total()/1e6)
	}
	if run.Cost.ComputeUSD < run.Cost.EnergyUSD {
		t.Error("amortized accelerator cost should dominate energy cost")
	}
	tokens := 300e9
	if want := int(tokens/(64*2048) + 0.5); run.Iterations != want {
		t.Errorf("iterations = %d, want %d", run.Iterations, want)
	}
	if run.Days <= 0 || run.EnergyMWh <= 0 || run.USDPerPFLOP <= 0 {
		t.Errorf("run summary incomplete: %+v", run)
	}
	t.Logf("GPT-175B/300B tokens on 64 A100s: %.0f days, %.1f MWh, $%.2fM ($%.4f/PFLOP)",
		run.Days, run.EnergyMWh, run.Cost.Total()/1e6, run.USDPerPFLOP)
}

func TestPerfPerTCOImprovesAcrossGenerations(t *testing.T) {
	// The reason the paper cares about perf/TCO: newer silicon buys more
	// useful FLOPs per dollar even at higher unit prices.
	spec, res := gpt175Spec(t)
	a100, err := PriceTrainingRun(spec, res, 10e9, DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}

	h100sys, err := arch.DGXH100(64)
	if err != nil {
		t.Fatal(err)
	}
	hspec := spec
	hspec.System = h100sys
	hspec.Precision = tech.FP8
	hres, err := train.Predict(hspec)
	if err != nil {
		t.Fatal(err)
	}
	// H100 hours cost ~2x more.
	prices := DefaultPrices()
	prices.GPUHourUSD *= 2
	h100, err := PriceTrainingRun(hspec, hres, 10e9, prices)
	if err != nil {
		t.Fatal(err)
	}
	if h100.USDPerPFLOP >= a100.USDPerPFLOP {
		t.Errorf("H100 $/PFLOP (%.4f) should beat A100 (%.4f) despite 2x pricing",
			h100.USDPerPFLOP, a100.USDPerPFLOP)
	}
}

func TestRunCostArithmetic(t *testing.T) {
	// 3600 s on 10 devices at $2/h = $20; 3.6e6 J = 1 kWh → at PUE 1.2
	// and $0.10/kWh = $0.12.
	c := RunCost(3600, 10, 3.6e6, Prices{GPUHourUSD: 2, USDPerKWh: 0.10, PUE: 1.2})
	if c.ComputeUSD != 20 {
		t.Errorf("compute cost = %g, want 20", c.ComputeUSD)
	}
	if c.EnergyUSD != 0.12 {
		t.Errorf("energy cost = %g, want 0.12", c.EnergyUSD)
	}
}

func TestErrors(t *testing.T) {
	spec, res := gpt175Spec(t)
	if _, err := PriceTrainingRun(spec, res, 0, DefaultPrices()); err == nil {
		t.Error("zero token budget should error")
	}
	bad := res
	bad.Total = 0
	if _, err := Training(spec, bad); err == nil {
		t.Error("zero duration should error")
	}
}
