// Package energy implements the energy and cost model the paper names as
// its next step ("integrating a cost and an energy model into the current
// performance modeling framework, and performing complete performance per
// TCO analysis" — §7, motivated by the intro's training-cost discussion).
//
// Energy is accounted bottom-up from the performance model's own
// quantities: FLOPs executed, off-chip bytes moved, network bytes moved,
// and elapsed time:
//
//	E = FLOPs·e_flop(precision) + DRAM bytes·e_dram + wire bytes·e_net + t·P_static
//
// Cost combines amortized accelerator pricing with energy at a datacenter
// PUE — the performance-per-TCO lens of the paper's introduction.
package energy

import (
	"fmt"

	"optimus/internal/arch"
	"optimus/internal/infer"
	"optimus/internal/tech"
	"optimus/internal/train"
)

// DeviceEnergy holds one accelerator's energy coefficients.
type DeviceEnergy struct {
	// PJPerFLOP is dynamic compute energy per operation at FP16; finer
	// formats halve it per halving step (FP8 ×0.5, FP4 ×0.25), FP32
	// doubles it.
	PJPerFLOP float64
	// DRAMPJPerByte is off-chip access energy (pJ/byte).
	DRAMPJPerByte float64
	// NetPJPerByte is network interface energy (pJ/byte).
	NetPJPerByte float64
	// StaticW is the always-on power (leakage, fans, HBM refresh, idle
	// SMs) drawn for the whole duration.
	StaticW float64
	// TDPW caps the average power; the model reports but does not clamp.
	TDPW float64
}

// coefficient table per device preset, derived from public TDP and
// process-node figures: dynamic FP16 energy ≈ 60-70% of TDP/peak.
var deviceTable = map[string]DeviceEnergy{
	"A100-80GB": {PJPerFLOP: 0.80, DRAMPJPerByte: 28, NetPJPerByte: 60, StaticW: 95, TDPW: 400},
	"A100-40GB": {PJPerFLOP: 0.80, DRAMPJPerByte: 30, NetPJPerByte: 60, StaticW: 90, TDPW: 400},
	"H100-SXM":  {PJPerFLOP: 0.45, DRAMPJPerByte: 24, NetPJPerByte: 50, StaticW: 130, TDPW: 700},
	"H200":      {PJPerFLOP: 0.45, DRAMPJPerByte: 22, NetPJPerByte: 50, StaticW: 135, TDPW: 700},
	"B100":      {PJPerFLOP: 0.30, DRAMPJPerByte: 20, NetPJPerByte: 40, StaticW: 140, TDPW: 700},
	"B200":      {PJPerFLOP: 0.30, DRAMPJPerByte: 20, NetPJPerByte: 40, StaticW: 180, TDPW: 1000},
	"V100":      {PJPerFLOP: 1.30, DRAMPJPerByte: 31, NetPJPerByte: 70, StaticW: 70, TDPW: 300},
	"P4":        {PJPerFLOP: 2.50, DRAMPJPerByte: 56, NetPJPerByte: 80, StaticW: 25, TDPW: 75},
	"TPUv4":     {PJPerFLOP: 0.55, DRAMPJPerByte: 28, NetPJPerByte: 45, StaticW: 60, TDPW: 250},
}

// ForDevice returns the energy coefficients for a preset device, or a
// generic A100-class table for derived/custom devices.
func ForDevice(d arch.Device) DeviceEnergy {
	if e, ok := deviceTable[d.Name]; ok {
		return e
	}
	return deviceTable["A100-80GB"]
}

// precisionFactor scales compute energy with the tensor format.
func precisionFactor(p tech.Precision) float64 {
	switch p {
	case tech.FP4:
		return 0.25
	case tech.FP8, tech.INT8:
		return 0.5
	case tech.FP32, tech.TF32:
		return 2
	default:
		return 1
	}
}

// Breakdown is an energy dissection in joules.
type Breakdown struct {
	Compute float64
	DRAM    float64
	Network float64
	Static  float64
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 { return b.Compute + b.DRAM + b.Network + b.Static }

// Report is an energy+power summary for one workload execution.
type Report struct {
	// PerDevice is one device's energy for the run.
	PerDevice Breakdown
	// SystemJ is the whole-system energy.
	SystemJ float64
	// AvgPowerW is the mean per-device power draw.
	AvgPowerW float64
	// OverTDP flags average power above the device TDP — a sign the
	// coefficient table and the predicted time disagree.
	OverTDP bool
}

// analyze converts per-device activity into a report.
func analyze(dev arch.Device, prec tech.Precision, flops, dramBytes, wireBytes, seconds float64, devices int) (Report, error) {
	if seconds <= 0 {
		return Report{}, fmt.Errorf("energy: non-positive duration %g", seconds)
	}
	e := ForDevice(dev)
	b := Breakdown{
		Compute: flops * e.PJPerFLOP * precisionFactor(prec) * 1e-12,
		DRAM:    dramBytes * e.DRAMPJPerByte * 1e-12,
		Network: wireBytes * e.NetPJPerByte * 1e-12,
		Static:  seconds * e.StaticW,
	}
	rep := Report{
		PerDevice: b,
		SystemJ:   b.Total() * float64(devices),
		AvgPowerW: b.Total() / seconds,
	}
	rep.OverTDP = rep.AvgPowerW > e.TDPW
	return rep, nil
}

// Training returns the energy report of one training iteration predicted
// by internal/train.
func Training(spec train.Spec, res train.Result) (Report, error) {
	devices := spec.System.NumDevices()
	perDeviceFLOPs := res.ModelFLOPs / float64(devices)
	// Recompute FLOPs burn energy too even though they are not "useful".
	if res.RecomputeTime > 0 && res.GEMMTime > 0 {
		perDeviceFLOPs *= 1 + res.RecomputeTime/(res.GEMMTime+res.EWTime)
	}
	return analyze(spec.System.Device, spec.Precision, perDeviceFLOPs,
		res.DRAMBytes, res.WireBytes, res.Total, devices)
}

// Inference returns the energy report of one inference request predicted
// by internal/infer.
func Inference(spec infer.Spec, res infer.Result) (Report, error) {
	// Decode FLOPs are tiny; compute energy is dominated by prefill. The
	// performance model already tallied exact DRAM/wire traffic; FLOPs
	// are approximated as 2·params·tokens (dense decoder forward).
	tokens := float64(spec.Batch * (spec.PromptTokens + spec.GenTokens))
	flops := 2 * spec.Model.Params() * tokens / float64(spec.TP)
	return analyze(spec.System.Device, spec.Precision, flops,
		res.DRAMBytes, res.WireBytes, res.Total, spec.TP)
}

// Prices parameterizes the TCO model.
type Prices struct {
	// GPUHourUSD is the amortized accelerator cost per device-hour
	// (capex + hosting), the dominant TCO term.
	GPUHourUSD float64
	// USDPerKWh prices datacenter energy.
	USDPerKWh float64
	// PUE is the datacenter power usage effectiveness multiplier.
	PUE float64
}

// DefaultPrices reflects public 2024-class cloud pricing.
func DefaultPrices() Prices {
	return Prices{GPUHourUSD: 2.0, USDPerKWh: 0.10, PUE: 1.2}
}

// Cost is a TCO summary.
type Cost struct {
	// ComputeUSD is the amortized accelerator cost.
	ComputeUSD float64
	// EnergyUSD is the electricity cost (at PUE).
	EnergyUSD float64
}

// Total sums the cost.
func (c Cost) Total() float64 { return c.ComputeUSD + c.EnergyUSD }

// RunCost prices a workload of the given duration on n devices with the
// given system energy.
func RunCost(seconds float64, devices int, systemJoules float64, p Prices) Cost {
	hours := seconds / 3600 * float64(devices)
	kwh := systemJoules / 3.6e6 * p.PUE
	return Cost{
		ComputeUSD: hours * p.GPUHourUSD,
		EnergyUSD:  kwh * p.USDPerKWh,
	}
}

// TrainingRun summarizes the full-run economics of training to a token
// budget — the "training a GPT-3 costs around $10M" arithmetic of the
// paper's introduction, regenerated from the model.
type TrainingRun struct {
	Iterations int
	Days       float64
	EnergyMWh  float64
	Cost       Cost
	// USDPerPFLOP prices useful compute (performance per TCO).
	USDPerPFLOP float64
}

// PriceTrainingRun extrapolates one iteration's prediction to a full
// training run over the given token budget.
func PriceTrainingRun(spec train.Spec, res train.Result, tokens float64, p Prices) (TrainingRun, error) {
	if tokens <= 0 {
		return TrainingRun{}, fmt.Errorf("energy: non-positive token budget %g", tokens)
	}
	rep, err := Training(spec, res)
	if err != nil {
		return TrainingRun{}, err
	}
	tokensPerIter := float64(spec.GlobalBatch) * float64(spec.Seq)
	iters := int(tokens/tokensPerIter + 0.5)
	if iters < 1 {
		iters = 1
	}
	seconds := float64(iters) * res.Total
	systemJ := rep.SystemJ * float64(iters)
	cost := RunCost(seconds, spec.System.NumDevices(), systemJ, p)
	run := TrainingRun{
		Iterations: iters,
		Days:       seconds / 86400,
		EnergyMWh:  systemJ / 3.6e9,
		Cost:       cost,
	}
	if usefulPFLOP := res.ModelFLOPs * float64(iters) / 1e15; usefulPFLOP > 0 {
		run.USDPerPFLOP = cost.Total() / usefulPFLOP
	}
	return run, nil
}
