package sweep

import (
	"bytes"
	"context"
	"testing"
)

// TestSaveCacheDeterministic pins the justification on SaveCache's
// //lint:deterministic map range: the memo is folded into a JSON map and
// encoding/json marshals map keys sorted, so two engines that evaluated
// the same grid — with different worker counts, hence different memo
// insertion orders — must persist byte-identical caches.
func TestSaveCacheDeterministic(t *testing.T) {
	spec := trainSpec0(t)
	spec.GlobalBatches = []int{8, 16, 32}

	save := func(workers int) []byte {
		t.Helper()
		e := New(workers)
		if _, err := e.Run(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.SaveCache(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	a, b := save(1), save(4)
	if len(a) == 0 {
		t.Fatal("empty cache file")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("cache bytes differ across engines evaluating the same grid:\n%s\n---\n%s", a, b)
	}
}
