package sweep

import (
	"math"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/serve"
	"optimus/internal/tech"
)

// fuzzCell builds the fixed (model, system, precision) cell the serving
// key fuzzer enumerates within.
func fuzzCell(f *testing.F) (model.Config, *arch.System) {
	f.Helper()
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		f.Fatal(err)
	}
	sys, err := arch.SystemOf(arch.H100(), 2, 8, tech.NVLink4, tech.IBNDR)
	if err != nil {
		f.Fatal(err)
	}
	return cfg, sys
}

// canonRate keeps the fuzzer inside the rates the sweep accepts (positive
// and finite), where key equality must mirror value equality. Zero, NaN
// and infinities are rejected by Spec.Validate long before a key is ever
// memoized, so they are folded to a valid rate instead of exercised.
func canonRate(r float64) float64 {
	if !(r > 0) || math.IsInf(r, 0) {
		return 1
	}
	return r
}

// canonSplit keeps a fuzzed pool-device count inside [0, 2] — the range
// the fuzz cell's two-GPU system accepts (wider splits skip the cell, and
// a skipped cell has no key to compare). Zero canonicalizes to the
// co-located count at enumeration.
func canonSplit(v int) int {
	return ((v % 3) + 3) % 3
}

// canonGBps folds transfer bandwidths the sweep validation rejects
// (negative, NaN) to the unset value; +Inf is legal (a free transfer).
func canonGBps(g float64) float64 {
	if math.IsNaN(g) || g < 0 {
		return 0
	}
	return g
}

// FuzzServingPointKey is the satellite memo-key gate: for any pair of
// serving candidates in one grid cell, Point.Key must collide exactly
// when the candidates are behaviorally identical — equal canonicalized
// policy axes give equal keys (cache hits), any differing axis gives
// differing keys (no silent aliasing of metrics). The f.Add corpus runs
// as a regression suite under plain `go test`.
func FuzzServingPointKey(f *testing.F) {
	cfg, sys := fuzzCell(f)

	f.Add(1.0, 0, int8(0), 0, int64(1), 32, 0, 0, 0.0, 1.0, 0, int8(1), 0, int64(1), 32, 0, 0, 0.0)          // policy differs
	f.Add(1.0, 0, int8(1), 16, int64(1), 32, 0, 0, 0.0, 1.0, 0, int8(1), 0, int64(1), 32, 0, 0, 0.0)         // page default canonicalizes
	f.Add(1.0, 4, int8(1), 16, int64(1), 32, 0, 0, 0.0, 1.0, 8, int8(1), 16, int64(1), 32, 0, 0, 0.0)        // cap differs
	f.Add(2.0, 4, int8(0), 0, int64(1), 32, 0, 0, 0.0, 2.0, 4, int8(0), 0, int64(2), 32, 0, 0, 0.0)          // seed differs
	f.Add(2.0, 4, int8(0), 0, int64(1), 32, 0, 0, 0.0, 2.0, 4, int8(0), 0, int64(1), 64, 0, 0, 0.0)          // requests differ
	f.Add(1.5, 4, int8(1), 32, int64(1), 32, 0, 0, 0.0, 1.5, 4, int8(1), 32, int64(1), 32, 0, 0, 0.0)        // identical
	f.Add(1.0, 0, int8(1), 1<<30, int64(1), 8, 0, 0, 0.0, 1.0, 0, int8(1), 400, int64(1), 8, 0, 0, 0.0)      // page clamp collides
	f.Add(1.0, 0, int8(1), 0, int64(1), 32, 0, 0, 0.0, 1.0, 0, int8(2), 0, int64(1), 32, 0, 0, 0.0)          // paged vs disagg
	f.Add(1.0, 0, int8(2), 0, int64(1), 32, 1, 1, 50.0, 1.0, 0, int8(2), 0, int64(1), 32, 2, 2, 50.0)        // split differs
	f.Add(1.0, 0, int8(2), 0, int64(1), 32, 1, 1, 0.0, 1.0, 0, int8(2), 0, int64(1), 32, 1, 1, 50.0)         // bandwidth default canonicalizes
	f.Add(1.0, 0, int8(2), 0, int64(1), 32, 1, 1, 50.0, 1.0, 0, int8(2), 0, int64(1), 32, 1, 1, 100.0)       // bandwidth differs
	f.Add(1.0, 0, int8(2), 0, int64(1), 32, 0, 0, 0.0, 1.0, 0, int8(2), 0, int64(1), 32, 2, 2, 50.0)         // zero split canonicalizes co-located
	f.Add(1.0, 0, int8(0), 0, int64(1), 32, 1, 1, 50.0, 1.0, 0, int8(0), 0, int64(1), 32, 2, 2, 100.0)       // reserve zeroes disagg knobs
	f.Add(1.0, 0, int8(2), 0, int64(1), 32, 1, 1, math.Inf(1), 1.0, 0, int8(2), 0, int64(1), 32, 1, 1, 50.0) // infinite vs finite link

	f.Fuzz(func(t *testing.T,
		rate1 float64, cap1 int, pol1 int8, page1 int, seed1 int64, reqs1, pre1, dec1 int, gbps1 float64,
		rate2 float64, cap2 int, pol2 int8, page2 int, seed2 int64, reqs2, pre2, dec2 int, gbps2 float64) {
		mk := func(rate float64, batchCap int, pol int8, page int, seed int64, reqs, pre, dec int, gbps float64) *Point {
			pts := EnumerateServing(cfg, sys, canonRate(rate), batchCap, 200, 200, tech.FP16,
				reqs, seed, serve.Policy(((int(pol)%3)+3)%3), page,
				PoolSplit{Prefill: canonSplit(pre), Decode: canonSplit(dec)}, canonGBps(gbps), 0, 0, 0)
			if len(pts) != 1 {
				t.Fatalf("expected one candidate, got %d", len(pts))
			}
			return &pts[0]
		}
		p1 := mk(rate1, cap1, pol1, page1, seed1, reqs1, pre1, dec1, gbps1)
		p2 := mk(rate2, cap2, pol2, page2, seed2, reqs2, pre2, dec2, gbps2)

		same := p1.Rate == p2.Rate && p1.BatchCap == p2.BatchCap &&
			p1.Policy == p2.Policy && p1.PageTokens == p2.PageTokens &&
			p1.ServeSeed == p2.ServeSeed && p1.ServeRequests == p2.ServeRequests &&
			p1.PrefillDevices == p2.PrefillDevices && p1.DecodeDevices == p2.DecodeDevices &&
			p1.TransferGBps == p2.TransferGBps
		k1, k2 := p1.Key(), p2.Key()
		if same && k1 != k2 {
			t.Fatalf("identical candidates got distinct keys:\n%s\n%s", k1, k2)
		}
		if !same && k1 == k2 {
			t.Fatalf("distinct candidates collide on key %s:\n%+v\n%+v", k1, p1, p2)
		}
		// The enumeration-time cached key must agree with the recomputed
		// one — a stale cache would poison the memo.
		if p1.cachedKey() != k1 || p2.cachedKey() != k2 {
			t.Fatal("cached key diverges from recomputed key")
		}
	})
}
