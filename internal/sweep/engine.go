package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// memoEntry is one cached evaluation. The claiming worker closes done
// after filling m/err; other workers block on done instead of recomputing.
type memoEntry struct {
	done chan struct{}
	m    Metrics
	err  error
}

// Engine evaluates sweeps over a bounded worker pool with a memoization
// cache that persists across Run calls, so repeated (model, system,
// mapping, …) evaluations — within one grid or across successive sweeps —
// are costed once.
type Engine struct {
	workers int

	mu   sync.Mutex
	memo map[string]*memoEntry
}

// New returns an engine with the given pool size; workers <= 0 means
// GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, memo: make(map[string]*memoEntry)}
}

// CacheSize reports how many evaluations the memo holds.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.memo)
}

// counters aggregates per-run statistics across workers.
type counters struct {
	pruned    atomic.Int64
	evaluated atomic.Int64
	memoHits  atomic.Int64
	errors    atomic.Int64
}

// slot is one candidate's outcome, written by exactly one worker.
type slot struct {
	m  Metrics
	ok bool // costed successfully (pruned and errored slots stay false)
}

// Run evaluates the grid concurrently and returns the same ranking Serial
// would produce. On cancellation it returns ctx.Err() alongside the
// statistics accumulated so far.
func (e *Engine) Run(ctx context.Context, s Spec) (Result, error) {
	start := time.Now() //lint:deterministic wall-clock feeds Stats.Elapsed instrumentation only, never rankings or metrics
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	// Bail before enumeration: large grids spend real time just being
	// expanded, which a cancelled caller should not pay for.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	points := Enumerate(s)
	c := s.Constraints.WithDefaults(firstSystem(s))
	// Overflowing candidates must still be costed when they are kept in
	// the ranking, so pruning is only sound when they would be dropped.
	prune := !c.AllowOverflow

	workers := e.workers
	if s.Workers > 0 {
		workers = s.Workers
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers < 1 {
		workers = 1
	}

	slots := make([]slot, len(points))
	var ct counters
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled evaluator per worker: simulator slabs and pricing
			// tables survive across the points this goroutine costs
			// (byte-identical to fresh evaluation — see Evaluate).
			ev := newEvaluator()
			for i := range idx {
				m, ok := e.eval(ctx, points[i], prune, &ct, ev)
				slots[i] = slot{m: m, ok: ok}
			}
		}()
	}
feed:
	for i := range points {
		// Checked before the send: when both select cases are ready Go
		// picks randomly, which would let a cancelled context still feed
		// (and cost) candidates.
		if ctx.Err() != nil {
			break feed
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	stats := Stats{
		Enumerated: len(points),
		Pruned:     int(ct.pruned.Load()),
		Evaluated:  int(ct.evaluated.Load()),
		MemoHits:   int(ct.memoHits.Load()),
		Errors:     int(ct.errors.Load()),
		Workers:    workers,
		Elapsed:    time.Since(start), //lint:deterministic instrumentation-only elapsed time, not part of results
	}
	if err := ctx.Err(); err != nil {
		return Result{Stats: stats}, err
	}
	rows := make([]Row, 0, len(points))
	for i, sl := range slots {
		if sl.ok {
			rows = append(rows, Row{Point: points[i], Metrics: sl.m, order: i})
		}
	}
	stats.Elapsed = time.Since(start) //lint:deterministic instrumentation-only elapsed time, not part of results
	return Result{Rows: rank(rows, c), Stats: stats}, nil
}

// eval costs one point: feasibility pre-check (when pruning is sound),
// then a memoized full evaluation. Only full evaluations enter the memo —
// a pruned point costs nothing and decides nothing beyond its own run.
func (e *Engine) eval(ctx context.Context, p Point, prune bool, ct *counters, ev *evaluator) (Metrics, bool) {
	key := p.cachedKey()
	e.mu.Lock()
	ent := e.memo[key]
	e.mu.Unlock()
	if ent == nil && prune {
		fit, err := Feasible(p)
		if err != nil {
			ct.errors.Add(1)
			return Metrics{}, false
		}
		if !fit {
			ct.pruned.Add(1)
			return Metrics{}, false
		}
		// The prune check ran unclaimed, so another worker may have
		// memoized the evaluation meanwhile; re-check below.
	}
	if ent == nil {
		e.mu.Lock()
		ent = e.memo[key]
		if ent == nil {
			ent = &memoEntry{done: make(chan struct{})}
			e.memo[key] = ent
			e.mu.Unlock()
			ent.m, ent.err = ev.evaluate(p)
			close(ent.done)
			if ent.err != nil {
				ct.errors.Add(1)
				return Metrics{}, false
			}
			ct.evaluated.Add(1)
			return ent.m, true
		}
		e.mu.Unlock()
	}
	select {
	case <-ent.done:
	case <-ctx.Done():
		return Metrics{}, false
	}
	// An errored cache entry counts as an error, not a hit, so the stats
	// components stay disjoint (their sum never exceeds Enumerated).
	if ent.err != nil {
		ct.errors.Add(1)
		return Metrics{}, false
	}
	ct.memoHits.Add(1)
	return ent.m, true
}

// Run evaluates the grid on a fresh engine — the package-level convenience
// used by the public optimus.Sweep API.
func Run(ctx context.Context, s Spec) (Result, error) {
	return New(s.Workers).Run(ctx, s)
}
