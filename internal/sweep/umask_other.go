//go:build !unix

package sweep

import "os"

// processUmask is zero where the platform has no umask: SaveCacheFile then
// chmods its temp file to plain 0644.
var processUmask os.FileMode = 0
