package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// cacheFileVersion guards the on-disk format; bump it when Metrics or the
// canonical Point.Key change incompatibly.
const cacheFileVersion = 1

// costModelVersion stamps the predictors behind the cached numbers. The
// Point.Key fingerprints configurations, not the cost model itself, so a
// snapshot written by a binary with different kernel/roofline/simulator
// math would silently serve stale metrics (and break the engine==serial
// guarantee) if it were accepted. Bump on ANY change that can alter a
// predictor's output for an unchanged Point — the pr8 bump covers the
// prefix-cache and host-KV-tier serving path (every Point.Key grew
// prefix-length, host-capacity and swap-bandwidth segments, and paged
// candidates are costed through a prefix/tier-aware admission policy).
// The pr10 bump covers the temporal-workload generation seam (every
// Point.Key grew schedule, session-turn and think-time segments, and the
// paged policy's prefix entries grow in place for session cohorts).
const costModelVersion = "pr10-temporal-workload"

// cacheFile is the on-disk memoization snapshot: successful evaluations
// keyed by the canonical Point.Key. Keys already fingerprint the full
// model and system configuration, so stale entries for edited
// configurations can never be served — they simply stop matching.
type cacheFile struct {
	Version   int                `json:"version"`
	CostModel string             `json:"cost_model"`
	Entries   map[string]Metrics `json:"entries"`
}

// SaveCache writes every completed, successful evaluation in the memo as
// JSON. In-flight and errored entries are skipped: an error is cheap to
// rediscover and may be transient across binary versions.
func (e *Engine) SaveCache(w io.Writer) error {
	e.mu.Lock()
	snapshot := make([]*memoEntry, 0, len(e.memo))
	keys := make([]string, 0, len(e.memo))
	//lint:deterministic order-insensitive fold into a JSON map; encoding/json marshals map keys sorted
	for k, ent := range e.memo {
		snapshot = append(snapshot, ent)
		keys = append(keys, k)
	}
	e.mu.Unlock()

	out := cacheFile{
		Version:   cacheFileVersion,
		CostModel: costModelVersion,
		Entries:   make(map[string]Metrics, len(keys)),
	}
	for i, ent := range snapshot {
		select {
		case <-ent.done:
		default:
			continue // still being evaluated
		}
		if ent.err != nil {
			continue
		}
		out.Entries[keys[i]] = ent.m
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("sweep: save cache: %w", err)
	}
	return nil
}

// LoadCache merges a SaveCache snapshot into the memo. Entries already in
// the memo win — they were computed by this process and are at least as
// fresh. Unknown versions are rejected rather than misread.
func (e *Engine) LoadCache(r io.Reader) error {
	var in cacheFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return fmt.Errorf("sweep: load cache: %w", err)
	}
	if in.Version != cacheFileVersion {
		return fmt.Errorf("sweep: cache version %d unsupported (want %d)", in.Version, cacheFileVersion)
	}
	if in.CostModel != costModelVersion {
		return fmt.Errorf("sweep: cache written by cost model %q, this binary is %q — delete the cache file",
			in.CostModel, costModelVersion)
	}
	closed := make(chan struct{})
	close(closed)
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:deterministic order-insensitive merge: each key is written at most once regardless of visit order
	for k, m := range in.Entries {
		if _, ok := e.memo[k]; ok {
			continue
		}
		e.memo[k] = &memoEntry{done: closed, m: m}
	}
	return nil
}

// LoadCacheFile loads a cache snapshot from disk; a missing file is not an
// error (first run of a cached workflow).
func (e *Engine) LoadCacheFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sweep: load cache: %w", err)
	}
	defer f.Close()
	return e.LoadCache(f)
}

// SaveCacheFile atomically writes the cache snapshot to disk (temp file +
// rename, so a crashed run never leaves a truncated cache). CreateTemp
// makes its file mode 0600, which the rename would otherwise freeze in
// place — unreadable to other users no matter the umask, breaking shared
// and CI cache reuse — so the temp file is chmodded to an umask-honoring
// 0644 before the rename, the mode a plain create would have produced.
func (e *Engine) SaveCacheFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".sweep-cache-*")
	if err != nil {
		return fmt.Errorf("sweep: save cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := e.SaveCache(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644 &^ processUmask); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: save cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: save cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sweep: save cache: %w", err)
	}
	return nil
}

// dirOf returns the directory of path for CreateTemp. A separator-free
// path must map to "." (the rename target's directory), not "" — CreateTemp
// treats "" as os.TempDir(), which can sit on a different filesystem and
// make the final rename fail with EXDEV (and non-atomic even when it
// works).
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}
