package sweep

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/tech"
)

// trainSpec0 is a small training grid for persistence tests.
func trainSpec0(t *testing.T) Spec {
	t.Helper()
	cfg, err := model.ByName("gpt-22b")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := arch.SystemOf(arch.A100(), 8, 8, tech.NVLink3, tech.IBHDR)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Models: []model.Config{cfg}, Systems: []*arch.System{sys},
		GlobalBatches: []int{8},
		Constraints:   Constraints{TopK: 10},
	}
}

// TestCacheRoundTrip: a cold engine loading another engine's saved cache
// must answer the whole grid from the memo and reproduce the ranking.
func TestCacheRoundTrip(t *testing.T) {
	spec := trainSpec0(t)
	path := filepath.Join(t.TempDir(), "cache.json")

	warm := New(2)
	first, err := warm.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Evaluated == 0 {
		t.Fatal("expected evaluations on a cold engine")
	}
	if err := warm.SaveCacheFile(path); err != nil {
		t.Fatal(err)
	}

	cold := New(2)
	if err := cold.LoadCacheFile(path); err != nil {
		t.Fatal(err)
	}
	if cold.CacheSize() != first.Stats.Evaluated {
		t.Errorf("loaded %d entries, want %d", cold.CacheSize(), first.Stats.Evaluated)
	}
	second, err := cold.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Evaluated != 0 {
		t.Errorf("cached run re-evaluated %d candidates", second.Stats.Evaluated)
	}
	if second.Stats.MemoHits != first.Stats.Evaluated {
		t.Errorf("cached run hit %d, want %d", second.Stats.MemoHits, first.Stats.Evaluated)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Error("cached ranking must match the original")
	}
}

// TestCacheRoundTripServing: serving metrics (SLO percentiles, simulated
// throughput) must survive the disk round trip untouched.
func TestCacheRoundTripServing(t *testing.T) {
	spec := servingSpec0(t)
	path := filepath.Join(t.TempDir(), "cache.json")

	warm := New(2)
	first, err := warm.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.SaveCacheFile(path); err != nil {
		t.Fatal(err)
	}
	cold := New(2)
	if err := cold.LoadCacheFile(path); err != nil {
		t.Fatal(err)
	}
	second, err := cold.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Evaluated != 0 {
		t.Errorf("cached serving run re-simulated %d candidates", second.Stats.Evaluated)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Error("serving metrics must survive the disk round trip")
	}
}

// TestLoadCacheMissingAndMalformed: a missing file is a clean start; a
// malformed or wrong-version file is an explicit error.
func TestLoadCacheMissingAndMalformed(t *testing.T) {
	eng := New(1)
	if err := eng.LoadCacheFile(filepath.Join(t.TempDir(), "nope.json")); err != nil {
		t.Errorf("missing cache file should not error: %v", err)
	}
	if eng.CacheSize() != 0 {
		t.Error("missing file should load nothing")
	}
	if err := eng.LoadCache(strings.NewReader("{not json")); err == nil {
		t.Error("malformed cache should error")
	}
	if err := eng.LoadCache(strings.NewReader(`{"version":99,"entries":{}}`)); err == nil {
		t.Error("unknown version should error")
	}
	stale := `{"version":1,"cost_model":"pr1-monolith","entries":{}}`
	if err := eng.LoadCache(strings.NewReader(stale)); err == nil {
		t.Error("cache from a different cost model should error, not serve stale metrics")
	}
	// The per-request workload refactor changed serving metrics (PerTenant)
	// and every Point.Key, so a PR-3 snapshot must be rejected outright.
	pr3 := `{"version":1,"cost_model":"pr3-paged-kv","entries":{}}`
	if err := eng.LoadCache(strings.NewReader(pr3)); err == nil {
		t.Error("pre-multi-tenant cache should be rejected by the cost-model bump")
	}
	// The disaggregated-pools refactor grew every Point.Key (pool split +
	// transfer bandwidth) and serving Metrics (KV-transfer fields), so a
	// PR-4 snapshot must be refused, not silently served.
	pr4 := `{"version":1,"cost_model":"pr4-multi-tenant","entries":{}}`
	if err := eng.LoadCache(strings.NewReader(pr4)); err == nil {
		t.Error("pre-disaggregation cache should be rejected by the cost-model bump")
	}
	// The cluster-serving refactor grew every Point.Key (fleet size +
	// routing policy), so a PR-5 snapshot must be refused, not silently
	// served.
	pr5 := `{"version":1,"cost_model":"pr5-disagg-serving","entries":{}}`
	if err := eng.LoadCache(strings.NewReader(pr5)); err == nil {
		t.Error("pre-cluster cache should be rejected by the cost-model bump")
	}
	// The temporal-workload refactor grew every Point.Key (schedule, session
	// turns, think time) and changed the paged policy's session prefix
	// growth, so a PR-8 snapshot must be refused, not silently served.
	pr8 := `{"version":1,"cost_model":"pr8-prefix-tiered-kv","entries":{}}`
	if err := eng.LoadCache(strings.NewReader(pr8)); err == nil {
		t.Error("pre-temporal-workload cache should be rejected by the cost-model bump")
	}
}

// TestSaveCacheFileBareFilename: a separator-free -cache path must stage
// its temp file next to the destination (cwd), not in os.TempDir(), or the
// atomic rename can cross filesystems and fail with EXDEV.
func TestSaveCacheFileBareFilename(t *testing.T) {
	spec := trainSpec0(t)
	eng := New(1)
	if _, err := eng.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	t.Chdir(t.TempDir())
	if err := eng.SaveCacheFile("cache.json"); err != nil {
		t.Fatalf("bare filename save failed: %v", err)
	}
	cold := New(1)
	if err := cold.LoadCacheFile("cache.json"); err != nil {
		t.Fatal(err)
	}
	if cold.CacheSize() != eng.CacheSize() {
		t.Errorf("round trip lost entries: %d vs %d", cold.CacheSize(), eng.CacheSize())
	}
	// No temp droppings left behind in the destination directory.
	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "cache.json" {
		t.Errorf("unexpected files after save: %v", ents)
	}
}

// TestSaveCacheFilePermissions is the regression gate on the cache-file
// mode: SaveCacheFile stages through os.CreateTemp, whose 0600 mode the
// rename used to freeze in place — a sweep cache written by one CI user
// was unreadable to every other, silently defeating shared cache reuse.
// The temp file must be chmodded to umask-honoring 0644 before the rename.
func TestSaveCacheFilePermissions(t *testing.T) {
	spec := trainSpec0(t)
	eng := New(1)
	if _, err := eng.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := eng.SaveCacheFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	want := os.FileMode(0o644) &^ processUmask
	if got := info.Mode().Perm(); got != want {
		t.Errorf("cache file mode %v, want %v (0644 under umask %03o)", got, want, processUmask)
	}
	// Whatever the umask, the CreateTemp 0600 mode must not leak through
	// unchanged when the umask would have allowed a group-readable file.
	if processUmask&0o040 == 0 && info.Mode().Perm()&0o040 == 0 {
		t.Errorf("cache file %v lost group readability the umask permits", info.Mode().Perm())
	}
}

// TestLoadCachePrefersLiveEntries: entries computed in-process must not be
// overwritten by a loaded snapshot.
func TestLoadCachePrefersLiveEntries(t *testing.T) {
	spec := trainSpec0(t)
	eng := New(1)
	first, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	size := eng.CacheSize()

	// A forged snapshot with one of the live keys and absurd metrics.
	key := first.Rows[0].Point.Key()
	forged := `{"version":1,"cost_model":"` + costModelVersion + `","entries":{"` + key + `":{"Time":123456}}}`
	if err := eng.LoadCache(strings.NewReader(forged)); err != nil {
		t.Fatal(err)
	}
	if eng.CacheSize() != size {
		t.Errorf("forged load changed cache size %d -> %d", size, eng.CacheSize())
	}
	again, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Rows[0].Metrics.Time == 123456 {
		t.Error("live memo entry was clobbered by the loaded snapshot")
	}
}
