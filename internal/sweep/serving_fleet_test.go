package sweep

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/cluster"
	"optimus/internal/model"
	"optimus/internal/serve"
	"optimus/internal/tech"
)

// fleetSpec0 is a one-cell serving grid with a fleet axis: one model, one
// H100 box, one rate, one cap — the fleet sizes and routings are the only
// multi-valued axes.
func fleetSpec0(t *testing.T) Spec {
	t.Helper()
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := arch.SystemOf(arch.H100(), 1, 8, tech.NVLink4, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Workload:      Serving,
		Models:        []model.Config{cfg},
		Systems:       []*arch.System{sys},
		Rates:         []float64{2},
		BatchCaps:     []int{8},
		ServeRequests: 32,
		Replicas:      []int{0, 1, 2},
		Routings:      []cluster.Routing{cluster.RoundRobin, cluster.LeastQueue},
		Constraints:   Constraints{TopK: 20},
	}
}

// TestServingFleetEnumeration: the fleet axes expand each cell into one
// candidate per (fleet size, routing), with the routing axis collapsed to
// round-robin for single-instance and one-replica entries (a fleet of one
// routes identically under every policy), and every fleet axis value
// fingerprinted into the key.
func TestServingFleetEnumeration(t *testing.T) {
	points := Enumerate(fleetSpec0(t))
	// R=0 -> 1 candidate, R=1 -> 1 (routing canonicalized), R=2 -> 2.
	if len(points) != 4 {
		t.Fatalf("expected 4 candidates ({0,1}xRR, 2x{RR,LQ}), got %d", len(points))
	}
	type fleet struct {
		R  int
		Rt cluster.Routing
	}
	want := []fleet{
		{0, cluster.RoundRobin},
		{1, cluster.RoundRobin},
		{2, cluster.RoundRobin},
		{2, cluster.LeastQueue},
	}
	seen := make(map[string]bool)
	for i, p := range points {
		if got := (fleet{p.Replicas, p.Routing}); got != want[i] {
			t.Errorf("candidate %d: fleet axes %+v, want %+v", i, got, want[i])
		}
		k := p.Key()
		if seen[k] {
			t.Errorf("candidate %d: duplicate key %q", i, k)
		}
		seen[k] = true
		if k != p.cachedKey() {
			t.Errorf("candidate %d: enumeration key %q != recomputed %q", i, p.cachedKey(), k)
		}
	}
}

// TestServingFleetDegenerate: a one-replica fleet candidate must cost
// identically to the plain single-instance candidate — the sweep-level
// face of the cluster package's R=1 == serve.Run equivalence.
func TestServingFleetDegenerate(t *testing.T) {
	points := Enumerate(fleetSpec0(t))
	single, err := Evaluate(points[0])
	if err != nil {
		t.Fatal(err)
	}
	one, err := Evaluate(points[1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, one) {
		t.Errorf("R=1 fleet metrics diverge from single-instance:\n%+v\nvs\n%+v", one, single)
	}
}

// TestServingFleetMatchesCluster: a fleet candidate's metrics must be the
// cluster package's own fleet result — same simulation, same numbers.
func TestServingFleetMatchesCluster(t *testing.T) {
	points := Enumerate(fleetSpec0(t))
	p := points[3] // R=2, least-queue
	if p.Replicas != 2 || p.Routing != cluster.LeastQueue {
		t.Fatalf("unexpected candidate order: %+v", p)
	}
	m, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(clusterSpec(p))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != 2 || res.Routing != cluster.LeastQueue {
		t.Fatalf("clusterSpec lost the fleet axes: %+v", res)
	}
	if m.Time != res.E2E.P95 || m.TTFTP95 != res.TTFT.P95 || m.TPOTP95 != res.TPOT.P95 {
		t.Errorf("fleet metrics diverge from cluster.Run: %+v vs E2E %g TTFT %g TPOT %g",
			m, res.E2E.P95, res.TTFT.P95, res.TPOT.P95)
	}
	if m.TokensPerSec != res.TokensPerSec {
		t.Errorf("throughput %g, cluster reports %g", m.TokensPerSec, res.TokensPerSec)
	}
	if m.Footprint.KVCache <= 0 || m.Footprint.Weights <= 0 {
		t.Errorf("fleet footprint not populated: %+v", m.Footprint)
	}
}

// TestServingFleetEngineMatchesSerial: fleet candidates ride the same
// engine==serial guarantee as every other workload.
func TestServingFleetEngineMatchesSerial(t *testing.T) {
	spec := fleetSpec0(t)
	want, err := Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		spec.Workers = workers
		got, err := New(workers).Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("engine(%d workers) diverges from serial on a fleet grid", workers)
		}
	}
}

// TestServingFleetMixAffinity: the fleet axes compose with a multi-tenant
// mix, and tenant-affinity fleets report the fleet-wide tenant breakdown.
func TestServingFleetMixAffinity(t *testing.T) {
	spec := fleetSpec0(t)
	spec.Mixes = [][]serve.TenantLoad{{
		{Tenant: "chat", Share: 0.5, PromptTokens: 100, GenTokens: 100},
		{Tenant: "batch", Share: 0.5, PromptTokens: 400, GenTokens: 200},
	}}
	spec.Replicas = []int{2}
	spec.Routings = []cluster.Routing{cluster.TenantAffinity}
	res, err := Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("expected 1 fleet candidate, got %d", len(res.Rows))
	}
	m := res.Rows[0].Metrics
	if len(m.PerTenant) != 2 {
		t.Fatalf("expected 2 tenants in the fleet breakdown, got %+v", m.PerTenant)
	}
	for _, ts := range m.PerTenant {
		if ts.Requests == 0 || ts.E2EP95 <= 0 {
			t.Errorf("tenant %q summary not populated: %+v", ts.Tenant, ts)
		}
	}
}

// TestServingFleetValidation pins the fleet axes' rejection surface.
func TestServingFleetValidation(t *testing.T) {
	check := func(name, wantErr string, mut func(*Spec)) {
		t.Helper()
		spec := fleetSpec0(t)
		mut(&spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: got %v, want %q", name, err, wantErr)
		}
	}
	check("negative fleet", "negative fleet size", func(s *Spec) { s.Replicas = []int{-1} })
	check("unknown routing", "unknown routing policy", func(s *Spec) { s.Routings = []cluster.Routing{cluster.Routing(9)} })
	check("routings without replicas", "Routings needs a positive fleet size", func(s *Spec) { s.Replicas = nil })
	check("routings with only single-instance", "Routings needs a positive fleet size", func(s *Spec) { s.Replicas = []int{0} })
	check("fleet axes on training", "apply to serving sweeps only", func(s *Spec) {
		s.Workload = Training
		s.Rates, s.BatchCaps, s.ServeRequests, s.Routings = nil, nil, 0, nil
		s.Constraints = Constraints{}
	})
}
