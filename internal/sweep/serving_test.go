package sweep

import (
	"context"
	"math"
	"reflect"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/serve"
	"optimus/internal/tech"
	"optimus/internal/workload"
)

// servingSpec0 is a small serving grid: one model, 1- and 2-GPU H100
// systems, two arrival rates, two batch caps.
func servingSpec0(t *testing.T) Spec {
	t.Helper()
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		t.Fatal(err)
	}
	var systems []*arch.System
	for _, n := range []int{1, 2} {
		sys, err := arch.SystemOf(arch.H100(), n, 8, tech.NVLink4, tech.IBNDR)
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, sys)
	}
	return Spec{
		Workload:      Serving,
		Models:        []model.Config{cfg},
		Systems:       systems,
		Rates:         []float64{0.5, 2},
		BatchCaps:     []int{4, 16},
		ServeRequests: 48,
		Constraints:   Constraints{TopK: 20},
	}
}

func TestServingSweepRanksBySLO(t *testing.T) {
	res, err := Serial(servingSpec0(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("2 systems x 2 rates x 2 caps should rank 8 rows, got %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		m := row.Metrics
		if row.Point.Workload != Serving {
			t.Fatalf("row %d workload %v", i, row.Point.Workload)
		}
		if m.Time <= 0 || m.TTFTP95 <= 0 || m.TPOTP95 <= 0 || m.TokensPerSec <= 0 {
			t.Errorf("row %d missing serving metrics: %+v", i, m)
		}
		if !m.Fits {
			t.Errorf("row %d should fit by construction", i)
		}
		if i > 0 && res.Rows[i-1].Metrics.Time > m.Time {
			t.Errorf("rows not sorted by p95 E2E at %d", i)
		}
		if m.Footprint.Weights <= 0 || m.Footprint.KVCache <= 0 {
			t.Errorf("row %d footprint not populated: %+v", i, m.Footprint)
		}
	}
}

// TestServingEngineMatchesSerial: the concurrent engine must reproduce the
// serial serving ranking byte for byte at any worker count — the serving
// simulator is deterministic, so memoization and concurrency change
// nothing.
func TestServingEngineMatchesSerial(t *testing.T) {
	spec := servingSpec0(t)
	want, err := Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		spec.Workers = workers
		got, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("workers=%d: %d rows vs serial %d", workers, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			if got.Rows[i].Point.Key() != want.Rows[i].Point.Key() {
				t.Errorf("workers=%d row %d: %s vs %s", workers, i,
					got.Rows[i].Point.Key(), want.Rows[i].Point.Key())
			}
			if !reflect.DeepEqual(got.Rows[i].Metrics, want.Rows[i].Metrics) {
				t.Errorf("workers=%d row %d metrics differ", workers, i)
			}
		}
	}
}

// TestServingInfeasiblePruned: a model whose weights overflow the device
// must be pruned (engine) or error out (serial) — either way, dropped.
func TestServingInfeasiblePruned(t *testing.T) {
	spec := servingSpec0(t)
	cfg, err := model.ByName("Llama2-70B")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	spec.Models = []model.Config{cfg}
	spec.Systems = []*arch.System{sys}
	spec.Rates = []float64{1}
	spec.BatchCaps = nil

	serial, err := Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != 0 {
		t.Errorf("overflowing serving candidate should be dropped, got %d rows", len(serial.Rows))
	}
	eng, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Rows) != 0 {
		t.Errorf("engine should drop the overflowing candidate, got %d rows", len(eng.Rows))
	}
	if eng.Stats.Pruned != 1 {
		t.Errorf("engine should prune the candidate before simulating, stats: %+v", eng.Stats)
	}
}

// TestServingKeyCoversServingAxes: candidates differing only in rate,
// batch cap, request count or seed must have distinct memo keys.
func TestServingKeyCoversServingAxes(t *testing.T) {
	base := servingSpec0(t)
	pts := Enumerate(base)
	if len(pts) != 8 {
		t.Fatalf("expected 8 candidates, got %d", len(pts))
	}
	seen := make(map[string]bool)
	for _, p := range pts {
		if seen[p.Key()] {
			t.Fatalf("duplicate key %s", p.Key())
		}
		seen[p.Key()] = true
	}
	p := pts[0]
	for name, mutate := range map[string]func(*Point){
		"rate":        func(q *Point) { q.Rate *= 2 },
		"cap":         func(q *Point) { q.BatchCap++ },
		"requests":    func(q *Point) { q.ServeRequests++ },
		"seed":        func(q *Point) { q.ServeSeed++ },
		"policy":      func(q *Point) { q.Policy = serve.Paged; q.PageTokens = serve.DefaultPageTokens },
		"page tokens": func(q *Point) { q.Policy = serve.Paged; q.PageTokens = 32 },
		"pool split": func(q *Point) {
			q.Policy = serve.Disaggregated
			q.PageTokens = serve.DefaultPageTokens
			q.PrefillDevices, q.DecodeDevices = 1, 1
			q.TransferGBps = serve.DefaultTransferGBps
		},
		"transfer bandwidth": func(q *Point) {
			q.Policy = serve.Disaggregated
			q.PageTokens = serve.DefaultPageTokens
			q.PrefillDevices, q.DecodeDevices = 1, 1
			q.TransferGBps = 200
		},
		"prefix length": func(q *Point) {
			q.Policy = serve.Paged
			q.PageTokens = serve.DefaultPageTokens
			q.PrefixTokens = 64
		},
		"host tier capacity": func(q *Point) {
			q.Policy = serve.Paged
			q.PageTokens = serve.DefaultPageTokens
			q.HostKVBytes = 4e9
			q.SwapGBps = serve.DefaultSwapGBps
		},
		"swap bandwidth": func(q *Point) {
			q.Policy = serve.Paged
			q.PageTokens = serve.DefaultPageTokens
			q.HostKVBytes = 4e9
			q.SwapGBps = 128
		},
		"schedule": func(q *Point) {
			q.Rate = 0
			q.Schedule = workload.Schedule{{Start: 0, End: 10, Rate: 1}, {Start: 10, End: 20, Rate: 4}}
		},
		"turns": func(q *Point) {
			q.Policy = serve.Paged
			q.PageTokens = serve.DefaultPageTokens
			q.Turns = 3
		},
		"think": func(q *Point) {
			q.Policy = serve.Paged
			q.PageTokens = serve.DefaultPageTokens
			q.Turns = 3
			q.Think = 5
		},
	} {
		q := p
		mutate(&q)
		if q.Key() == p.Key() {
			t.Errorf("key must change with %s", name)
		}
	}
}

// TestServingValidation: serving-only axes are rejected elsewhere, and
// serving rejects the axes it ignores.
func TestServingValidation(t *testing.T) {
	good := servingSpec0(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline serving spec should validate: %v", err)
	}
	check := func(name string, mutate func(*Spec)) {
		s := servingSpec0(t)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s should fail validation", name)
		}
	}
	check("rates on training sweep", func(s *Spec) { s.Workload = Training; s.GenTokens = nil })
	check("pool splits without a disagg policy", func(s *Spec) { s.PoolSplits = []PoolSplit{{Prefill: 1, Decode: 1}} })
	check("transfer bandwidth without a disagg policy", func(s *Spec) { s.TransferGBps = 50 })
	check("negative pool split", func(s *Spec) {
		s.Policies = []serve.Policy{serve.Disaggregated}
		s.PoolSplits = []PoolSplit{{Prefill: -1, Decode: 1}}
	})
	check("negative transfer bandwidth", func(s *Spec) {
		s.Policies = []serve.Policy{serve.Disaggregated}
		s.TransferGBps = -1
	})
	check("NaN transfer bandwidth", func(s *Spec) {
		s.Policies = []serve.Policy{serve.Disaggregated}
		s.TransferGBps = math.NaN()
	})
	check("pool splits on inference sweep", func(s *Spec) {
		s.Workload = Inference
		s.Rates, s.BatchCaps, s.ServeRequests = nil, nil, 0
		s.PoolSplits = []PoolSplit{{Prefill: 1, Decode: 1}}
	})
	check("policies on training sweep", func(s *Spec) {
		s.Workload = Training
		s.GenTokens, s.Rates, s.BatchCaps, s.ServeRequests = nil, nil, nil, 0
		s.Policies = []serve.Policy{serve.Paged}
	})
	check("page tokens on inference sweep", func(s *Spec) {
		s.Workload = Inference
		s.Rates, s.BatchCaps, s.ServeRequests = nil, nil, 0
		s.ServePageTokens = 16
	})
	check("unknown serving policy", func(s *Spec) { s.Policies = []serve.Policy{serve.Policy(9)} })
	check("negative serving page size", func(s *Spec) { s.ServePageTokens = -16 })
	check("page size without a paged policy", func(s *Spec) {
		s.Policies = []serve.Policy{serve.ReserveFull}
		s.ServePageTokens = 32
	})
	check("page size with defaulted reserve-only policies", func(s *Spec) { s.ServePageTokens = 32 })
	check("serve seed on inference sweep", func(s *Spec) {
		s.Workload = Inference
		s.Rates, s.BatchCaps, s.ServeRequests = nil, nil, 0
		s.ServeSeed = 7
	})
	check("global batches on serving sweep", func(s *Spec) { s.GlobalBatches = []int{4} })
	check("negative prefix length", func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.PrefixTokens = []int{-1}
	})
	check("prefix without a paged policy", func(s *Spec) { s.PrefixTokens = []int{64} })
	check("prefix with mixes", func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.PrefixTokens = []int{64}
		s.Mixes = [][]serve.TenantLoad{{{Tenant: "a", Share: 1, PromptTokens: 100, GenTokens: 50}}}
	})
	check("host tier without a paged policy", func(s *Spec) { s.HostKVBytes = []float64{4e9} })
	check("negative host tier capacity", func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.HostKVBytes = []float64{-1}
	})
	check("infinite host tier capacity", func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.HostKVBytes = []float64{math.Inf(1)}
	})
	check("negative swap bandwidth", func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.HostKVBytes = []float64{4e9}
		s.SwapGBps = -1
	})
	check("swap bandwidth without a host tier", func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.SwapGBps = 32
	})
	check("prefix on inference sweep", func(s *Spec) {
		s.Workload = Inference
		s.Rates, s.BatchCaps, s.ServeRequests = nil, nil, 0
		s.PrefixTokens = []int{64}
	})
	check("non-positive rate", func(s *Spec) { s.Rates = []float64{0} })
	check("NaN rate", func(s *Spec) { s.Rates = []float64{math.NaN()} })
	check("infinite rate", func(s *Spec) { s.Rates = []float64{math.Inf(1)} })
	check("negative batch cap", func(s *Spec) { s.BatchCaps = []int{-1} })
	check("negative request count", func(s *Spec) { s.ServeRequests = -5 })
	check("zero gen tokens", func(s *Spec) { s.GenTokens = []int{0} })
	check("training axes on serving sweep", func(s *Spec) { s.Constraints.MaxTP = 4 })
}

// TestServingPolicyAxis: with Policies as a grid axis, one sweep must
// rank reservation against paged admission per rate × batch-cap point —
// the capacity-study shape the paging work exists for — and the
// concurrent engine must reproduce the serial ranking exactly.
func TestServingPolicyAxis(t *testing.T) {
	spec := servingSpec0(t)
	spec.Policies = []serve.Policy{serve.ReserveFull, serve.Paged}
	spec.ServePageTokens = 32

	serial, err := Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != 16 {
		t.Fatalf("2 systems x 2 rates x 2 caps x 2 policies should rank 16 rows, got %d", len(serial.Rows))
	}
	count := map[serve.Policy]int{}
	for _, row := range serial.Rows {
		count[row.Point.Policy]++
		switch row.Point.Policy {
		case serve.ReserveFull:
			if row.Point.PageTokens != 0 {
				t.Errorf("reservation row carries page size %d", row.Point.PageTokens)
			}
		case serve.Paged:
			if row.Point.PageTokens != 32 {
				t.Errorf("paged row page size = %d, want 32", row.Point.PageTokens)
			}
		}
		if row.Metrics.KVUtil <= 0 {
			t.Errorf("serving row missing KV utilization: %+v", row.Metrics)
		}
	}
	if count[serve.ReserveFull] != 8 || count[serve.Paged] != 8 {
		t.Fatalf("expected 8 rows per policy, got %v", count)
	}

	eng, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eng.Rows, serial.Rows) {
		t.Error("engine ranking with the policy axis must match serial byte for byte")
	}
}

// TestServingDisaggAxis: with PoolSplits as a grid axis, one sweep must
// rank disaggregated splits against reservation per rate × batch-cap
// point — a split wider than a system's device count skips that cell, the
// zero split canonicalizes to the co-located one per system, and the
// concurrent engine must reproduce the serial ranking exactly.
func TestServingDisaggAxis(t *testing.T) {
	spec := servingSpec0(t)
	spec.Policies = []serve.Policy{serve.ReserveFull, serve.Disaggregated}
	spec.PoolSplits = []PoolSplit{{Prefill: 1, Decode: 1}, {Prefill: 2, Decode: 2}}
	spec.TransferGBps = 100
	spec.ServePageTokens = 32 // legal: disagg pages its KV too
	if err := spec.Validate(); err != nil {
		t.Fatalf("disagg grid should validate: %v", err)
	}

	serial, err := Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Reserve: 2 systems × 2 rates × 2 caps = 8. Disagg: the 1-GPU system
	// takes only the 1+1 split (2+2 exceeds its device count), the 2-GPU
	// system both → (1+2) × 2 rates × 2 caps = 12.
	if len(serial.Rows) != 20 {
		t.Fatalf("expected 20 ranked rows, got %d", len(serial.Rows))
	}
	count := map[serve.Policy]int{}
	for _, row := range serial.Rows {
		count[row.Point.Policy]++
		switch row.Point.Policy {
		case serve.ReserveFull:
			if row.Point.PrefillDevices != 0 || row.Point.DecodeDevices != 0 || row.Point.TransferGBps != 0 {
				t.Errorf("reservation row carries a pool split: %+v", row.Point)
			}
		case serve.Disaggregated:
			if row.Point.PageTokens != 32 || row.Point.TransferGBps != 100 {
				t.Errorf("disagg row lost its knobs: %+v", row.Point)
			}
			if row.Point.PrefillDevices > row.Point.Map.TP || row.Point.DecodeDevices > row.Point.Map.TP {
				t.Errorf("split wider than the system survived enumeration: %+v", row.Point)
			}
			if row.Metrics.KVTransfers == 0 {
				t.Errorf("disagg row simulated no migrations: %+v", row.Metrics)
			}
			if row.Metrics.TransferTime <= 0 {
				t.Errorf("finite bandwidth must charge transfer time: %+v", row.Metrics)
			}
		}
	}
	if count[serve.ReserveFull] != 8 || count[serve.Disaggregated] != 12 {
		t.Fatalf("expected 8 reserve + 12 disagg rows, got %v", count)
	}

	eng, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eng.Rows, serial.Rows) {
		t.Error("engine ranking with the pool-split axis must match serial byte for byte")
	}

	// A disagg grid without explicit splits defaults to the co-located one
	// per system — still one candidate per cell, not zero.
	spec.PoolSplits = nil
	pts := Enumerate(spec)
	colocated := 0
	for _, p := range pts {
		if p.Policy == serve.Disaggregated {
			colocated++
			if p.PrefillDevices != p.Map.TP || p.DecodeDevices != p.Map.TP {
				t.Errorf("defaulted split should be co-located per system: %+v", p)
			}
		}
	}
	if colocated != 8 {
		t.Errorf("defaulted disagg axis should yield 8 candidates, got %d", colocated)
	}
}

// TestServingMemoizedAcrossRuns: a second engine run over the same grid
// must answer every candidate from the memo without re-simulating.
func TestServingMemoizedAcrossRuns(t *testing.T) {
	spec := servingSpec0(t)
	eng := New(2)
	first, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Evaluated != 0 || second.Stats.MemoHits != first.Stats.Evaluated {
		t.Errorf("warm run should be all memo hits: first %+v, second %+v", first.Stats, second.Stats)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Error("warm run must reproduce the ranking")
	}
}

// TestServingPrefixTieredAxis: with PrefixTokens and HostKVBytes as grid
// axes, one sweep ranks the prefix-cache and host-tier variants against
// the reservation baseline — non-paged candidates collapse both axes to
// their zero entries (one candidate, not four), prefix-cache rows carry
// hit counters, and the concurrent engine reproduces the serial ranking
// byte for byte.
func TestServingPrefixTieredAxis(t *testing.T) {
	spec := servingSpec0(t)
	spec.Policies = []serve.Policy{serve.ReserveFull, serve.Paged}
	spec.PrefixTokens = []int{0, 64}
	spec.HostKVBytes = []float64{0, 4e9}
	spec.Constraints.TopK = 64

	pts := Enumerate(spec)
	// Per model×system×rate×cap cell: 1 reserve candidate (both axes
	// canonicalize to zero) + 2×2 paged ones.
	if want := 8 * 5; len(pts) != want {
		t.Fatalf("expected %d candidates, got %d", want, len(pts))
	}
	for _, p := range pts {
		if p.Policy == serve.ReserveFull && (p.PrefixTokens != 0 || p.HostKVBytes != 0 || p.SwapGBps != 0) {
			t.Fatalf("reserve candidate carries paged-only knobs: %+v", p)
		}
		if p.Policy == serve.Paged && p.HostKVBytes > 0 && p.SwapGBps != serve.DefaultSwapGBps {
			t.Fatalf("host-tier candidate should canonicalize the default swap bandwidth: %+v", p)
		}
	}

	serial, err := Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(pts) {
		t.Fatalf("all %d candidates should rank, got %d rows", len(pts), len(serial.Rows))
	}
	hits := 0
	for _, row := range serial.Rows {
		if row.Point.PrefixTokens > 0 && row.Metrics.PrefixHits > 0 {
			hits++
			if row.Metrics.PrefixSavedTokens != row.Metrics.PrefixHits*row.Point.PrefixTokens {
				t.Errorf("saved tokens %d inconsistent with %d hits of a %d-token prefix",
					row.Metrics.PrefixSavedTokens, row.Metrics.PrefixHits, row.Point.PrefixTokens)
			}
		}
	}
	if hits == 0 {
		t.Error("no prefix-cache candidate reported a hit")
	}

	eng, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eng.Rows, serial.Rows) {
		t.Error("engine ranking with the prefix/tier axes must match serial byte for byte")
	}

	// A prefix longer than a cell's prompt skips that cell rather than
	// simulating an impossible workload.
	skip := servingSpec0(t)
	skip.Policies = []serve.Policy{serve.Paged}
	skip.Seqs = []int{200, 400}
	skip.PrefixTokens = []int{250}
	kept := Enumerate(skip)
	for _, p := range kept {
		if p.Seq != 400 {
			t.Fatalf("a 250-token prefix cannot shape a %d-token prompt, yet the cell enumerated", p.Seq)
		}
	}
	if len(kept) != 8 {
		t.Fatalf("expected 8 surviving candidates (the 400-token cells), got %d", len(kept))
	}
}
