package sweep_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/sweep"
)

// bigGrid is a grid large enough (several thousand candidates, all fully
// costed) that a sweep takes tens of milliseconds — room for a
// cancellation to land mid-run.
func bigGrid(t testing.TB) sweep.Spec {
	return sweep.Spec{
		Models:        []model.Config{model.GPT175B(), model.GPT310B(), model.GPT530B()},
		Systems:       []*arch.System{dgx(t, 64), dgx(t, 128), dgx(t, 256)},
		GlobalBatches: []int{64, 128, 256, 512},
		Seqs:          []int{2048, 4096},
		// AllowOverflow forces full costing of every candidate, making
		// the grid expensive enough for cancellation to land mid-run.
		Constraints: sweep.Constraints{AllowOverflow: true, TopK: 10},
	}
}

// TestCancellationStopsEarly cancels a large sweep shortly after it
// starts and checks it returns promptly, reports the cancellation, and
// did not evaluate the whole grid.
func TestCancellationStopsEarly(t *testing.T) {
	spec := bigGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := sweep.Run(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	done := res.Stats.Pruned + res.Stats.Evaluated + res.Stats.MemoHits + res.Stats.Errors
	if res.Stats.Enumerated == 0 {
		t.Fatal("nothing enumerated before cancellation")
	}
	if done >= res.Stats.Enumerated {
		t.Errorf("cancellation did not stop the sweep early: %s", res.Stats)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled sweep still took %s", elapsed)
	}
	if len(res.Rows) != 0 {
		t.Errorf("cancelled sweep returned %d ranked rows", len(res.Rows))
	}
}

// TestPreCancelledContext returns immediately without costing anything.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sweep.Run(ctx, bigGrid(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Stats.Evaluated != 0 {
		t.Errorf("pre-cancelled sweep evaluated %d candidates", res.Stats.Evaluated)
	}
}

// TestMemoAcrossRuns re-runs an overlapping grid on a shared engine and
// checks the second pass is answered from the cache.
func TestMemoAcrossRuns(t *testing.T) {
	spec := sweep.Spec{
		Models:        []model.Config{model.GPT22B()},
		Systems:       []*arch.System{dgx(t, 8)},
		GlobalBatches: []int{16},
		Constraints:   sweep.Constraints{AllowOverflow: true, TopK: 1000},
	}
	e := sweep.New(4)
	first, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.MemoHits != 0 {
		t.Errorf("first run should not hit the cache: %s", first.Stats)
	}
	if e.CacheSize() != first.Stats.Evaluated+first.Stats.Errors {
		t.Errorf("cache holds %d entries, expected %d", e.CacheSize(),
			first.Stats.Evaluated+first.Stats.Errors)
	}
	second, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Evaluated != 0 || second.Stats.MemoHits != first.Stats.Enumerated {
		t.Errorf("second run not fully memoized: %s", second.Stats)
	}
	if formatRows(second.Rows) != formatRows(first.Rows) {
		t.Error("memoized ranking diverges from the computed one")
	}
}

// TestMemoStress hammers one engine's memoization cache from many
// concurrent sweeps over the same grid — the -race workout for the
// claim/wait protocol. Every run must see the identical ranking, and each
// unique candidate must be costed exactly once across all runs.
func TestMemoStress(t *testing.T) {
	spec := sweep.Spec{
		Models:        []model.Config{model.GPT22B(), model.GPT7B()},
		Systems:       []*arch.System{dgx(t, 8)},
		GlobalBatches: []int{16, 32},
		Constraints:   sweep.Constraints{AllowOverflow: true, TopK: 50},
	}
	e := sweep.New(8)
	const runs = 12
	results := make([]sweep.Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Run(context.Background(), spec)
		}(i)
	}
	wg.Wait()
	golden := formatRows(results[0].Rows)
	if golden == "" {
		t.Fatal("empty ranking")
	}
	var evaluated, hits int
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if got := formatRows(results[i].Rows); got != golden {
			t.Errorf("run %d ranking diverges under contention", i)
		}
		evaluated += results[i].Stats.Evaluated
		hits += results[i].Stats.MemoHits
	}
	unique := results[0].Stats.Enumerated
	if evaluated != unique {
		t.Errorf("unique candidates costed %d times total, want exactly %d (once each)",
			evaluated, unique)
	}
	if want := (runs - 1) * unique; hits != want {
		t.Errorf("memo hits %d, want %d", hits, want)
	}
}

// TestWorkerCountClamped: more workers than candidates must not spawn
// idle goroutines or change results.
func TestWorkerCountClamped(t *testing.T) {
	spec := sweep.Spec{
		Models:        []model.Config{model.GPT7B()},
		Systems:       []*arch.System{dgx(t, 8)},
		GlobalBatches: []int{16},
		Workers:       10000,
		Constraints:   sweep.Constraints{TopK: 5},
	}
	res, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers > res.Stats.Enumerated {
		t.Errorf("pool of %d workers for %d candidates", res.Stats.Workers, res.Stats.Enumerated)
	}
}
