//go:build unix

package sweep

import (
	"os"
	"syscall"
)

// processUmask is the file-creation mask SaveCacheFile honors when fixing
// up CreateTemp's 0600 mode. There is no portable read-only getter, so it
// is sampled once at package init — single-goroutine, before any file
// creation this package could race with — via the set-and-restore idiom.
var processUmask = func() os.FileMode {
	m := syscall.Umask(0)
	syscall.Umask(m)
	return os.FileMode(m)
}()
