package sweep_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/mapsearch"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/sweep"
	"optimus/internal/tech"
)

func dgx(t testing.TB, gpus int) *arch.System {
	t.Helper()
	sys, err := arch.DGXA100(gpus)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// formatCandidates renders a ranking to the byte string the equivalence
// tests compare: every field that matters, at full float precision.
func formatCandidates(cands []mapsearch.Candidate) string {
	var b strings.Builder
	for _, c := range cands {
		fmt.Fprintf(&b, "%s mb%d v%d %v t=%.17g mfu=%.17g mem=%.17g fits=%v\n",
			c.Map, c.Map.Microbatch, c.Map.VirtualStages, c.Recompute,
			c.Time, c.MFU, c.Memory.Total(), c.Fits)
	}
	return b.String()
}

// TestEngineMatchesSerialMapsearch is the core equivalence guarantee: the
// concurrent engine returns byte-identical rankings to the serial
// mapsearch.Search golden reference at any worker count, including the
// AllowOverflow and TopK paths.
func TestEngineMatchesSerialMapsearch(t *testing.T) {
	cases := []struct {
		name        string
		model       model.Config
		gpus, batch int
		constraints sweep.Constraints
	}{
		{"gpt22b-8gpu-defaults", model.GPT22B(), 8, 8, sweep.Constraints{}},
		{"gpt175b-64gpu-defaults", model.GPT175B(), 64, 64, sweep.Constraints{}},
		{"gpt7b-16gpu-topk25", model.GPT7B(), 16, 32, sweep.Constraints{TopK: 25}},
		{"gpt175b-64gpu-overflow", model.GPT175B(), 64, 64,
			sweep.Constraints{AllowOverflow: true, TopK: 50}},
		{"gpt22b-16gpu-custom-axes", model.GPT22B(), 16, 16,
			sweep.Constraints{
				Microbatches:  []int{1, 2, 4, 8},
				Recomputes:    []memfoot.Recompute{memfoot.NoRecompute, memfoot.Full},
				AllowOverflow: true,
				TopK:          40,
			}},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := mapsearch.Request{
				Model: tc.model, System: dgx(t, tc.gpus),
				GlobalBatch: tc.batch, Seq: 2048, Precision: tech.BF16,
				Constraints: tc.constraints,
			}
			want, err := mapsearch.Search(req)
			if err != nil {
				t.Fatal(err)
			}
			golden := formatCandidates(want)
			spec := sweep.Spec{
				Models:        []model.Config{tc.model},
				Systems:       []*arch.System{req.System},
				Precisions:    []tech.Precision{tech.BF16},
				GlobalBatches: []int{tc.batch},
				Seqs:          []int{2048},
				Constraints:   tc.constraints,
			}
			for _, workers := range workerCounts {
				spec.Workers = workers
				res, err := sweep.Run(context.Background(), spec)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := formatCandidates(mapsearch.Candidates(res.Rows))
				if got != golden {
					t.Errorf("workers=%d ranking diverges from serial mapsearch:\ngot:\n%swant:\n%s",
						workers, got, golden)
				}
				if tc.name == "gpt175b-64gpu-defaults" && res.Stats.Pruned == 0 {
					t.Errorf("workers=%d: expected feasibility pruning on a memory-tight search, got none (%s)",
						workers, res.Stats)
				}
			}
		})
	}
}

// TestSerialMatchesSweepSerial pins mapsearch.Search to sweep.Serial: the
// planner is a single-cell sweep through the reference path.
func TestSerialMatchesSweepSerial(t *testing.T) {
	sys := dgx(t, 16)
	req := mapsearch.Request{
		Model: model.GPT22B(), System: sys,
		GlobalBatch: 16, Seq: 2048, Precision: tech.BF16,
	}
	want, err := mapsearch.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Serial(sweep.Spec{
		Models: []model.Config{req.Model}, Systems: []*arch.System{sys},
		Precisions: []tech.Precision{tech.BF16}, GlobalBatches: []int{16}, Seqs: []int{2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := formatCandidates(mapsearch.Candidates(res.Rows)); got != formatCandidates(want) {
		t.Errorf("sweep.Serial diverges from mapsearch.Search:\n%s", got)
	}
	if res.Stats.Pruned != 0 || res.Stats.MemoHits != 0 {
		t.Errorf("serial path must not prune or memoize: %s", res.Stats)
	}
}

// formatRows renders grid rows including their cell identity.
func formatRows(rows []sweep.Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s|%s|b%d|%s|mb%d|%v|t=%.17g|fits=%v\n",
			r.Point.Model.Name, r.Point.System, r.Point.GlobalBatch,
			r.Point.Map, r.Point.Map.Microbatch, r.Point.Recompute,
			r.Metrics.Time, r.Metrics.Fits)
	}
	return b.String()
}

// TestGridDeterministicAcrossWorkerCounts sweeps a multi-cell grid and
// checks the ranking is identical for every pool size and equal to the
// serial reference.
func TestGridDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := sweep.Spec{
		Models:        []model.Config{model.GPT22B(), model.GPT7B()},
		Systems:       []*arch.System{dgx(t, 8), dgx(t, 16)},
		GlobalBatches: []int{16, 32},
		Constraints:   sweep.Constraints{TopK: 30},
	}
	ref, err := sweep.Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	golden := formatRows(ref.Rows)
	if len(ref.Rows) == 0 {
		t.Fatal("empty reference ranking")
	}
	for _, workers := range []int{1, 2, 5, 16} {
		spec.Workers = workers
		res, err := sweep.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := formatRows(res.Rows); got != golden {
			t.Errorf("workers=%d grid ranking diverges:\ngot:\n%swant:\n%s", workers, got, golden)
		}
		if res.Stats.Enumerated != ref.Stats.Enumerated {
			t.Errorf("workers=%d enumerated %d, serial %d", workers,
				res.Stats.Enumerated, ref.Stats.Enumerated)
		}
	}
}

// TestEnumerateCrossProduct checks the grid expands every axis and
// deduplicates repeated cells.
func TestEnumerateCrossProduct(t *testing.T) {
	cfg := model.GPT22B()
	sys := dgx(t, 8)
	one := sweep.Enumerate(sweep.Spec{
		Models: []model.Config{cfg}, Systems: []*arch.System{sys},
		GlobalBatches: []int{16},
	})
	if len(one) == 0 {
		t.Fatal("empty enumeration")
	}
	two := sweep.Enumerate(sweep.Spec{
		Models: []model.Config{cfg}, Systems: []*arch.System{sys},
		GlobalBatches: []int{16, 32},
	})
	if len(two) <= len(one) {
		t.Errorf("adding a batch axis did not grow the grid: %d -> %d", len(one), len(two))
	}
	dup := sweep.Enumerate(sweep.Spec{
		Models: []model.Config{cfg, cfg}, Systems: []*arch.System{sys, sys},
		GlobalBatches: []int{16},
	})
	if len(dup) != len(one) {
		t.Errorf("duplicated grid cells not deduplicated: %d != %d", len(dup), len(one))
	}
	keys := make(map[string]bool)
	for _, p := range two {
		k := p.Key()
		if keys[k] {
			t.Fatalf("duplicate key in enumeration: %s", k)
		}
		keys[k] = true
	}
}

// TestMicrobatchDiversity guards the enumeration against the seed bug
// where the dedup key omitted the microbatch, so only the first candidate
// microbatch size was ever evaluated.
func TestMicrobatchDiversity(t *testing.T) {
	points := sweep.EnumerateTraining(model.GPT22B(), dgx(t, 8), 16, 2048, tech.BF16,
		sweep.Constraints{Microbatches: []int{1, 2, 4}})
	seen := make(map[int]bool)
	for _, p := range points {
		seen[p.Map.Microbatch] = true
	}
	for _, mb := range []int{1, 2, 4} {
		if !seen[mb] {
			t.Errorf("microbatch %d missing from the enumeration", mb)
		}
	}
}

// TestPP1SurvivesScheduleOrder guards against dropping all non-pipelined
// mappings when 1F1B is not the first entry of a custom schedule list
// (interleaved is invalid at PP=1, so the next schedule must step in).
func TestPP1SurvivesScheduleOrder(t *testing.T) {
	points := sweep.EnumerateTraining(model.GPT22B(), dgx(t, 8), 16, 2048, tech.BF16,
		sweep.Constraints{Schedules: []parallel.Schedule{parallel.Interleaved1F1B, parallel.OneFOneB}})
	pp1 := 0
	for _, p := range points {
		if p.Map.PP == 1 {
			pp1++
			if p.Map.Schedule != parallel.OneFOneB {
				t.Errorf("PP=1 candidate carries invalid schedule %v", p.Map.Schedule)
			}
		}
	}
	if pp1 == 0 {
		t.Error("no PP=1 candidates when interleaved is listed first")
	}
	// And at PP=1 only one schedule variant must survive.
	seen := make(map[string]int)
	for _, p := range points {
		if p.Map.PP == 1 {
			k := fmt.Sprintf("%d-%d-%d", p.Map.DP, p.Map.TP, p.Map.Microbatch)
			seen[k]++
		}
	}
	for k, n := range seen {
		if n > 3 { // one per recompute regime
			t.Errorf("PP=1 cell %s enumerated %d times", k, n)
		}
	}
}

// TestSameNameDifferentConfigNoCollision guards the memo/dedup key
// against colliding on edited-but-same-named configurations (§3.1
// external descriptions): a half-memory "a100" must not be answered with
// the full-memory system's cached metrics.
func TestSameNameDifferentConfigNoCollision(t *testing.T) {
	full := dgx(t, 8)
	halfDev := arch.A100()
	halfDev.Mem[len(halfDev.Mem)-1].Capacity /= 2
	half, err := arch.SystemOf(halfDev, 8, 8, tech.NVLink3, tech.IBHDR)
	if err != nil {
		t.Fatal(err)
	}
	spec := sweep.Spec{
		Models:        []model.Config{model.GPT22B()},
		Systems:       []*arch.System{full, half},
		GlobalBatches: []int{16},
		Constraints:   sweep.Constraints{AllowOverflow: true, TopK: 100000},
	}
	points := sweep.Enumerate(spec)
	bySystem := make(map[*arch.System]int)
	for _, p := range points {
		bySystem[p.System]++
	}
	if bySystem[half] == 0 {
		t.Fatal("same-named second system was deduplicated away")
	}
	e := sweep.New(2)
	res, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MemoHits != 0 {
		t.Errorf("distinct configurations shared memo entries: %s", res.Stats)
	}
	// The same mapping must report different fit verdicts on the two
	// systems for at least one memory-borderline candidate.
	fits := make(map[string][2]bool)
	for _, r := range res.Rows {
		k := r.Point.Map.String() + r.Point.Recompute.String() +
			fmt.Sprint(r.Point.Map.Microbatch)
		v := fits[k]
		if r.Point.System == full {
			v[0] = r.Metrics.Fits
		} else {
			v[1] = r.Metrics.Fits
		}
		fits[k] = v
	}
	diverged := false
	for _, v := range fits {
		if v[0] != v[1] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("halving device memory changed no fit verdict — keys may still collide")
	}
}

// TestInferenceSweep ranks serving configurations across system sizes.
func TestInferenceSweep(t *testing.T) {
	var systems []*arch.System
	for _, gpus := range []int{1, 2, 4} {
		sys, err := arch.DGXH100(gpus)
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, sys)
	}
	spec := sweep.Spec{
		Workload:      sweep.Inference,
		Models:        []model.Config{model.Llama2_13B()},
		Systems:       systems,
		GlobalBatches: []int{1, 4},
		Seqs:          []int{200},
		GenTokens:     []int{200},
		Constraints:   sweep.Constraints{TopK: 20, AllowOverflow: true},
	}
	res, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 rows (3 systems x 2 batches), got %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r.Metrics.Time <= 0 {
			t.Errorf("row %d has non-positive latency", i)
		}
		if r.Metrics.Footprint.Total() <= 0 {
			t.Errorf("row %d has empty footprint", i)
		}
		if i > 0 && r.Metrics.Fits == res.Rows[i-1].Metrics.Fits &&
			r.Metrics.Time < res.Rows[i-1].Metrics.Time {
			t.Errorf("rows not sorted by latency at %d", i)
		}
	}
	ref, err := sweep.Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if formatRows(res.Rows) != formatRows(ref.Rows) {
		t.Error("inference engine ranking diverges from serial")
	}
}

// TestSpecValidation rejects malformed grids.
func TestSpecValidation(t *testing.T) {
	if _, err := sweep.Run(context.Background(), sweep.Spec{}); err == nil {
		t.Error("empty spec should error")
	}
	if _, err := sweep.Serial(sweep.Spec{Models: []model.Config{model.GPT7B()}}); err == nil {
		t.Error("spec without systems should error")
	}
	bad := sweep.Spec{
		Models: []model.Config{model.GPT7B()}, Systems: []*arch.System{dgx(t, 8)},
		GlobalBatches: []int{-1},
	}
	if _, err := sweep.Run(context.Background(), bad); err == nil {
		t.Error("negative batch should error")
	}
	if _, err := sweep.Run(context.Background(), sweep.Spec{
		Models: []model.Config{model.GPT7B()}, Systems: []*arch.System{nil},
	}); err == nil {
		t.Error("nil system should error")
	}
	if _, err := sweep.Serial(sweep.Spec{
		Workload: sweep.Inference,
		Models:   []model.Config{model.GPT7B()}, Systems: []*arch.System{dgx(t, 8)},
		GenTokens: []int{-1},
	}); err == nil {
		t.Error("negative generation length should error")
	}
	if _, err := sweep.Serial(sweep.Spec{
		Workload: sweep.Inference,
		Models:   []model.Config{model.GPT7B()}, Systems: []*arch.System{dgx(t, 8)},
		Constraints: sweep.Constraints{Microbatches: []int{8}},
	}); err == nil {
		t.Error("training-only constraints on an inference sweep should error")
	}
	if _, err := sweep.Serial(sweep.Spec{
		Workload: sweep.Workload(7),
		Models:   []model.Config{model.GPT7B()}, Systems: []*arch.System{dgx(t, 8)},
	}); err == nil {
		t.Error("unknown workload should error")
	}
	if _, err := sweep.Serial(sweep.Spec{
		Models: []model.Config{model.GPT7B()}, Systems: []*arch.System{dgx(t, 8)},
		Constraints: sweep.Constraints{Microbatches: []int{0}},
	}); err == nil {
		t.Error("zero microbatch should error, not panic")
	}
}

// TestDivisorsViaEnumeration pins the divisor-driven mapping space: on 12
// devices with unconstrained TP, the TP degrees seen are exactly the
// divisors of 12 that divide the head count.
func TestDivisorsViaEnumeration(t *testing.T) {
	sys, err := arch.SystemOf(arch.A100(), 12, 12, tech.NVLink3, tech.IBHDR)
	if err != nil {
		t.Fatal(err)
	}
	points := sweep.EnumerateTraining(model.GPT7B(), sys, 24, 2048, tech.BF16,
		sweep.Constraints{MaxTP: 12})
	seen := make(map[int]bool)
	for _, p := range points {
		seen[p.Map.TP] = true
	}
	// GPT-7B has 32 heads: of 12's divisors {1,2,3,4,6,12}, only {1,2,4}
	// divide 32.
	for _, tp := range []int{1, 2, 4} {
		if !seen[tp] {
			t.Errorf("TP %d missing", tp)
		}
	}
	for _, tp := range []int{3, 6, 12} {
		if seen[tp] {
			t.Errorf("TP %d does not divide 32 heads but was enumerated", tp)
		}
	}
}
