// Package sweep evaluates large cross-product experiment grids — models ×
// systems × precisions × batch sizes × sequence lengths × parallelization
// mappings × schedules × recomputation regimes for training and inference,
// plus arrival rates × batch caps for continuous-batching serving — the
// plan-space exploration the paper builds on its validated models (§5.1:
// "determine the best parallelism mapping or training settings for an LLM
// model on a certain hardware system").
//
// The package has two execution paths over the same candidate enumeration:
//
//   - Serial is the golden reference: it costs every candidate one at a
//     time, in enumeration order, with no shortcuts. internal/mapsearch
//     builds its single-cell planner on it.
//   - Engine.Run is the production path: a bounded worker pool with
//     memory-feasibility pruning before costing, memoization of repeated
//     evaluations, and context cancellation. Its rankings are
//     byte-identical to Serial's at any worker count. The memo can be
//     persisted across processes with SaveCache/LoadCache, so repeated
//     CLI invocations and CI sweeps skip re-costing unchanged grid cells.
package sweep

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"time"

	"optimus/internal/arch"
	"optimus/internal/cluster"
	"optimus/internal/infer"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/parallel"
	"optimus/internal/serve"
	"optimus/internal/tech"
	"optimus/internal/train"
	"optimus/internal/workload"
)

// Workload selects which predictor a sweep exercises.
type Workload int

const (
	// Training sweeps rank strategies by predicted seconds per batch.
	Training Workload = iota
	// Inference sweeps rank configurations by end-to-end request latency.
	Inference
	// Serving sweeps run the continuous-batching simulator per candidate
	// (arrival rates × batch caps × systems × precisions) and rank by p95
	// end-to-end latency — SLO-centric capacity planning.
	Serving
)

// String names the workload.
func (w Workload) String() string {
	switch w {
	case Training:
		return "training"
	case Inference:
		return "inference"
	case Serving:
		return "serving"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Constraints bound the mapping enumeration of one grid cell.
type Constraints struct {
	// MaxTP caps the tensor-parallel degree; zero means the node size
	// (TP and SP stay inside a node, §4.2).
	MaxTP int
	// Microbatches are the candidate per-device microbatch sizes;
	// nil means {1, 2, 4}.
	Microbatches []int
	// Recomputes are the regimes to consider; nil means all three.
	Recomputes []memfoot.Recompute
	// Schedules are the pipeline schedules to consider; nil means 1F1B
	// and interleaved (v=2).
	Schedules []parallel.Schedule
	// AllowOverflow keeps memory-overflowing candidates in the ranking
	// (flagged, after all fitting ones). It also disables the engine's
	// feasibility pruning, since overflowing candidates must be costed.
	AllowOverflow bool
	// TopK bounds the returned rows; zero means 10.
	TopK int
}

// WithDefaults fills the zero-value fields for a search over sys.
func (c Constraints) WithDefaults(sys *arch.System) Constraints {
	if c.MaxTP <= 0 {
		c.MaxTP = sys.DevicesPerNode
	}
	if len(c.Microbatches) == 0 {
		c.Microbatches = []int{1, 2, 4}
	}
	if len(c.Recomputes) == 0 {
		c.Recomputes = []memfoot.Recompute{memfoot.NoRecompute, memfoot.Selective, memfoot.Full}
	}
	if len(c.Schedules) == 0 {
		c.Schedules = []parallel.Schedule{parallel.OneFOneB, parallel.Interleaved1F1B}
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	return c
}

// Spec describes one experiment grid: the cross product of every axis,
// with the mapping space of each (model, system) cell enumerated under
// Constraints.
type Spec struct {
	// Workload selects training or inference; the zero value is training.
	Workload Workload
	// Models and Systems are the required grid axes.
	Models  []model.Config
	Systems []*arch.System
	// Precisions defaults to {BF16} for training and {FP16} for inference.
	Precisions []tech.Precision
	// GlobalBatches are global batch sizes (training) or concurrent
	// sequences (inference); nil means {64} and {1} respectively.
	GlobalBatches []int
	// Seqs are sequence lengths (training) or prompt lengths (inference);
	// nil means {2048} and {200}.
	Seqs []int
	// GenTokens are generation lengths, inference and serving only; nil
	// means {200}.
	GenTokens []int
	// Rates are Poisson arrival rates in requests/sec, serving only; nil
	// means {1} (unless Schedules or Trace supplies the arrival process).
	Rates []float64
	// Schedules are piecewise-constant arrival-rate timelines
	// (workload.Schedule), serving only: each entry is one grid-axis value
	// replacing the constant rate, so one sweep can rank a bursty diurnal
	// profile against its flat average. Mutually exclusive with Rates and
	// Trace (each fixes the arrival process). A schedule that canonicalizes
	// to a constant rate enumerates as the equivalent plain-rate candidate
	// — one memo key, like the policy-knob axes.
	Schedules []workload.Schedule
	// Turns are the session-cohort depths to compare per grid cell, serving
	// only: each entry above 1 expands the candidate's arrival stream into
	// multi-turn client sessions (serve.Spec.Turns), whose growing shared
	// context exercises the paged prefix cache. 0 and 1 are the plain
	// single-turn stream. Entries above 1 require a Paged entry in Policies
	// (other policies canonicalize the axis to zero) and replace the
	// spec-wide PrefixTokens axis (a session owns its shared prefix).
	Turns []int
	// Think is the pause between a session's consecutive turns in seconds,
	// serving only; requires a Turns entry above 1 (zero with single-turn
	// candidates).
	Think float64
	// BatchCaps are iteration batch caps, serving only; 0 derives the
	// largest KV-fitting batch. Nil means {0}.
	BatchCaps []int
	// Mixes are multi-tenant workload mixes, serving only: each entry is
	// one grid-axis value, so one sweep can rank a chat-heavy mix against
	// a batch-heavy one per rate × batch-cap point. Mixes replaces the
	// Seqs/GenTokens axes (a mix fixes its own request shapes).
	Mixes [][]serve.TenantLoad
	// Trace replays one fixed request timeline per serving candidate
	// (systems × precisions × batch caps × policies), serving only. It
	// replaces the Rates, Seqs and GenTokens axes and is mutually
	// exclusive with Mixes.
	Trace []serve.TraceEvent
	// Policies are the KV admission policies to compare per grid cell
	// (serve.ReserveFull vs serve.Paged), serving only; nil means
	// {ReserveFull}. Making the policy a grid axis is what lets one sweep
	// rank reservation against paged admission per rate × batch-cap
	// point.
	Policies []serve.Policy
	// ServePageTokens is the paged policy's KV block size in tokens,
	// serving only; zero means serve.DefaultPageTokens.
	ServePageTokens int
	// PoolSplits are the disaggregated prefill/decode pool splits to
	// compare per grid cell, serving only: each entry is one grid-axis
	// value for the serve.Disaggregated candidates (other policies ignore
	// the axis), so one sweep can rank a 2+6 split against a 4+4 one per
	// rate × batch-cap point. Requires a Disaggregated entry in Policies;
	// nil with one present means the co-located split (both pools spanning
	// every device). A split asking for more devices than a grid system
	// has skips that cell, like an indivisible head count.
	PoolSplits []PoolSplit
	// TransferGBps is the disaggregated policy's KV-transfer interconnect
	// bandwidth in GB/s, serving only; zero means
	// serve.DefaultTransferGBps, math.Inf(1) a free transfer.
	TransferGBps float64
	// PrefixTokens are the shared-prompt-prefix lengths to compare per
	// grid cell, serving only: each entry gives the spec-wide request
	// shape that many shared prefix tokens (serve.Spec.PrefixTokens), so
	// one sweep can rank prefix-cache savings across hit fractions. A
	// zero entry is the plain unprefixed shape; nil means {0}. Requires a
	// Paged entry in Policies when non-zero (other policies ignore the
	// axis and canonicalize to zero); Mixes and Trace carry per-entry
	// prefixes instead, so the axis is rejected alongside them. Entries
	// at or beyond a cell's prompt length skip that cell.
	PrefixTokens []int
	// HostKVBytes are the host KV tier capacities (bytes) to compare per
	// grid cell, serving only: each entry lets the paged policy's
	// preemption victims swap pages to a host tier that large
	// (serve.Spec.HostKVBytes). A zero entry is the recompute-only
	// baseline; nil means {0}. Requires a Paged entry in Policies when
	// non-zero.
	HostKVBytes []float64
	// SwapGBps is the host tier's swap-link bandwidth in GB/s, serving
	// only; zero means serve.DefaultSwapGBps, math.Inf(1) a free swap.
	// Requires a non-zero HostKVBytes entry.
	SwapGBps float64
	// Replicas are the fleet sizes to compare per grid cell, serving only:
	// each entry runs the candidate's serve configuration as a homogeneous
	// R-replica cluster (internal/cluster) instead of a single instance,
	// ranking fleet-wide SLO percentiles. A zero entry is the plain
	// single-instance simulation; nil means {0}.
	Replicas []int
	// Routings are the cluster routing policies to compare per fleet
	// candidate, serving only. Requires Replicas; nil with fleet sizes
	// present means {cluster.RoundRobin}. Fleets of one replica route
	// identically under every policy, so their routing axis canonicalizes
	// to round-robin (one memo key, like the policy-knob axes).
	Routings []cluster.Routing
	// ServeRequests is the simulated request count per serving candidate;
	// zero means 128.
	ServeRequests int
	// ServeSeed seeds each serving candidate's arrival process; zero
	// means 1.
	ServeSeed int64
	// Constraints bound the per-cell mapping enumeration.
	Constraints Constraints
	// Workers bounds the engine's pool; zero means GOMAXPROCS. Serial
	// ignores it.
	Workers int
}

// PoolSplit is one disaggregated prefill/decode pool split: the device
// counts backing each pool (serve.Spec.PrefillDevices/DecodeDevices).
// Zero fields default to each grid system's full device count — the
// co-located split.
type PoolSplit struct {
	Prefill int
	Decode  int
}

// hasPolicy reports whether pol appears in the (possibly defaulted)
// policy axis.
func hasPolicy(policies []serve.Policy, pol serve.Policy) bool {
	for _, p := range policies {
		if p == pol {
			return true
		}
	}
	return false
}

func (s Spec) withDefaults() Spec {
	// A serving sweep whose requests are shaped by a mix or a trace has no
	// spec-wide Seqs/GenTokens axes to default (and a trace fixes the
	// arrival process, so no Rates either).
	shaped := s.Workload == Serving && (len(s.Mixes) > 0 || len(s.Trace) > 0)
	if len(s.Precisions) == 0 {
		if s.Workload == Training {
			s.Precisions = []tech.Precision{tech.BF16}
		} else {
			s.Precisions = []tech.Precision{tech.FP16}
		}
	}
	if len(s.GlobalBatches) == 0 {
		switch s.Workload {
		case Training:
			s.GlobalBatches = []int{64}
		default:
			// Inference batch; serving ignores it (admission batches).
			s.GlobalBatches = []int{1}
		}
	}
	if len(s.Seqs) == 0 && !shaped {
		if s.Workload == Training {
			s.Seqs = []int{2048}
		} else {
			s.Seqs = []int{200}
		}
	}
	if len(s.GenTokens) == 0 && !shaped {
		s.GenTokens = []int{200}
	}
	if len(s.Rates) == 0 && len(s.Trace) == 0 && len(s.Schedules) == 0 {
		s.Rates = []float64{1}
	}
	if len(s.Turns) == 0 {
		s.Turns = []int{0}
	}
	if len(s.BatchCaps) == 0 {
		s.BatchCaps = []int{0}
	}
	if len(s.Policies) == 0 {
		s.Policies = []serve.Policy{serve.ReserveFull}
	}
	if len(s.PoolSplits) == 0 && hasPolicy(s.Policies, serve.Disaggregated) {
		// The zero split canonicalizes per system to the co-located
		// configuration (both pools spanning every device).
		s.PoolSplits = []PoolSplit{{}}
	}
	if s.ServeRequests == 0 {
		s.ServeRequests = 128
	}
	if s.ServeSeed == 0 {
		s.ServeSeed = 1
	}
	if len(s.Replicas) == 0 {
		s.Replicas = []int{0}
	}
	if len(s.Routings) == 0 {
		s.Routings = []cluster.Routing{cluster.RoundRobin}
	}
	if len(s.PrefixTokens) == 0 {
		s.PrefixTokens = []int{0}
	}
	if len(s.HostKVBytes) == 0 {
		s.HostKVBytes = []float64{0}
	}
	return s
}

// Validate checks the grid shape.
func (s Spec) Validate() error {
	if s.Workload != Serving {
		if len(s.Rates) > 0 || len(s.BatchCaps) > 0 || s.ServeRequests != 0 || s.ServeSeed != 0 {
			return fmt.Errorf("sweep: Rates/BatchCaps/ServeRequests/ServeSeed apply to serving sweeps only")
		}
		if len(s.Policies) > 0 || s.ServePageTokens != 0 {
			return fmt.Errorf("sweep: Policies/ServePageTokens apply to serving sweeps only")
		}
		if len(s.PoolSplits) > 0 || s.TransferGBps != 0 {
			// NaN bandwidths land here too: NaN != 0.
			return fmt.Errorf("sweep: PoolSplits/TransferGBps apply to serving sweeps only")
		}
		if len(s.Mixes) > 0 || len(s.Trace) > 0 {
			return fmt.Errorf("sweep: Mixes/Trace apply to serving sweeps only")
		}
		if len(s.Replicas) > 0 || len(s.Routings) > 0 {
			return fmt.Errorf("sweep: Replicas/Routings apply to serving sweeps only")
		}
		if len(s.PrefixTokens) > 0 || len(s.HostKVBytes) > 0 || s.SwapGBps != 0 {
			// NaN bandwidths land here too: NaN != 0.
			return fmt.Errorf("sweep: PrefixTokens/HostKVBytes/SwapGBps apply to serving sweeps only")
		}
		if len(s.Schedules) > 0 || len(s.Turns) > 0 || s.Think != 0 {
			// NaN think times land here too: NaN != 0.
			return fmt.Errorf("sweep: Schedules/Turns/Think apply to serving sweeps only")
		}
	}
	switch s.Workload {
	case Training:
		if len(s.GenTokens) > 0 {
			return fmt.Errorf("sweep: GenTokens applies to inference and serving sweeps only")
		}
		for _, mb := range s.Constraints.Microbatches {
			if mb <= 0 {
				return fmt.Errorf("sweep: non-positive microbatch %d", mb)
			}
		}
	case Inference, Serving:
		// Inference and serving maps are fixed to TP = device count
		// (§1.3); reject the training-only axes rather than silently
		// ignoring them.
		c := s.Constraints
		if c.MaxTP != 0 || len(c.Microbatches) > 0 || len(c.Recomputes) > 0 || len(c.Schedules) > 0 {
			return fmt.Errorf("sweep: MaxTP/Microbatches/Recomputes/Schedules apply to training sweeps only")
		}
		if s.Workload == Serving {
			// The simulator's admission policy is the batch: a global
			// batch axis would be silently ignored.
			if len(s.GlobalBatches) > 0 {
				return fmt.Errorf("sweep: GlobalBatches does not apply to serving sweeps (use BatchCaps)")
			}
			for _, r := range s.Rates {
				// Negated-positive form rejects NaN, which would stall
				// the serving simulator's event loop.
				if !(r > 0) || math.IsInf(r, 0) {
					return fmt.Errorf("sweep: arrival rate %g not positive and finite", r)
				}
			}
			if len(s.Schedules) > 0 && len(s.Rates) > 0 {
				return fmt.Errorf("sweep: Schedules and Rates both fix the arrival rate — set exactly one axis")
			}
			for _, sch := range s.Schedules {
				if err := sch.Validate(); err != nil {
					return fmt.Errorf("sweep: %w", err)
				}
			}
			for _, c := range s.BatchCaps {
				if c < 0 {
					return fmt.Errorf("sweep: negative batch cap %d", c)
				}
			}
			if s.ServeRequests < 0 {
				return fmt.Errorf("sweep: negative serving request count %d", s.ServeRequests)
			}
			hasPaged, hasDisagg := false, false
			for _, pol := range s.Policies {
				switch pol {
				case serve.Paged:
					hasPaged = true
				case serve.Disaggregated:
					hasDisagg = true
				case serve.ReserveFull:
				default:
					return fmt.Errorf("sweep: unknown serving policy %v", pol)
				}
			}
			if s.ServePageTokens < 0 {
				return fmt.Errorf("sweep: negative serving page size %d tokens", s.ServePageTokens)
			}
			// Without a paging policy entry the page size would be silently
			// discarded at enumeration — reject, matching serve.Spec's
			// strictness about knobs the chosen policy ignores.
			if s.ServePageTokens != 0 && !hasPaged && !hasDisagg {
				return fmt.Errorf("sweep: ServePageTokens needs a Paged or Disaggregated entry in Policies")
			}
			for _, sp := range s.PoolSplits {
				if sp.Prefill < 0 || sp.Decode < 0 {
					return fmt.Errorf("sweep: negative pool split %d+%d devices", sp.Prefill, sp.Decode)
				}
			}
			if len(s.PoolSplits) > 0 && !hasDisagg {
				return fmt.Errorf("sweep: PoolSplits needs a Disaggregated entry in Policies")
			}
			if s.TransferGBps < 0 || math.IsNaN(s.TransferGBps) {
				return fmt.Errorf("sweep: KV-transfer bandwidth %g GB/s not non-negative", s.TransferGBps)
			}
			if s.TransferGBps != 0 && !hasDisagg {
				return fmt.Errorf("sweep: TransferGBps needs a Disaggregated entry in Policies")
			}
			hasPrefix, hasHost := false, false
			for _, pre := range s.PrefixTokens {
				if pre < 0 {
					return fmt.Errorf("sweep: negative prefix length %d tokens", pre)
				}
				if pre > 0 {
					hasPrefix = true
				}
			}
			if hasPrefix && !hasPaged {
				return fmt.Errorf("sweep: PrefixTokens needs a Paged entry in Policies")
			}
			if hasPrefix && (len(s.Mixes) > 0 || len(s.Trace) > 0) {
				return fmt.Errorf("sweep: PrefixTokens shapes the spec-wide workload — give Mixes/Trace entries their own per-entry prefixes")
			}
			hasSessions := false
			for _, t := range s.Turns {
				if t < 0 {
					return fmt.Errorf("sweep: negative session turns %d", t)
				}
				if t > 1 {
					hasSessions = true
				}
			}
			if hasSessions && !hasPaged {
				return fmt.Errorf("sweep: Turns above 1 needs a Paged entry in Policies (session cohorts grow a shared prefix)")
			}
			if hasSessions && hasPrefix {
				return fmt.Errorf("sweep: session cohorts own the shared prefix — drop the PrefixTokens axis with Turns above 1")
			}
			if hasSessions {
				for _, mix := range s.Mixes {
					for _, t := range mix {
						if t.PrefixTokens > 0 {
							return fmt.Errorf("sweep: session cohorts own the shared prefix — drop per-entry prefixes from the mixes (tenant %q carries one)", t.Tenant)
						}
					}
				}
			}
			if s.Think != 0 && !hasSessions {
				return fmt.Errorf("sweep: Think is the pause between session turns — set a Turns entry above 1 with it, got Think %g", s.Think)
			}
			if !(s.Think >= 0) || math.IsInf(s.Think, 0) {
				return fmt.Errorf("sweep: think time %g not finite and non-negative", s.Think)
			}
			for _, hb := range s.HostKVBytes {
				if hb < 0 || math.IsNaN(hb) || math.IsInf(hb, 0) {
					return fmt.Errorf("sweep: host KV capacity %g bytes not finite and non-negative", hb)
				}
				if hb > 0 {
					hasHost = true
				}
			}
			if hasHost && !hasPaged {
				return fmt.Errorf("sweep: HostKVBytes needs a Paged entry in Policies")
			}
			if s.SwapGBps < 0 || math.IsNaN(s.SwapGBps) {
				return fmt.Errorf("sweep: swap bandwidth %g GB/s not non-negative", s.SwapGBps)
			}
			if s.SwapGBps != 0 && !hasHost {
				return fmt.Errorf("sweep: SwapGBps needs a non-zero host tier capacity in HostKVBytes")
			}
			for _, g := range s.GenTokens {
				if g < 1 {
					return fmt.Errorf("sweep: serving needs at least one generated token, got %d", g)
				}
			}
			hasFleet := false
			for _, r := range s.Replicas {
				// Zero is the explicit single-instance entry; a negative
				// fleet cannot be meant.
				if r < 0 {
					return fmt.Errorf("sweep: negative fleet size %d replicas", r)
				}
				if r > 0 {
					hasFleet = true
				}
			}
			for _, rt := range s.Routings {
				switch rt {
				case cluster.RoundRobin, cluster.LeastQueue, cluster.LeastKV, cluster.TenantAffinity:
				default:
					return fmt.Errorf("sweep: unknown routing policy %v", rt)
				}
			}
			// Without a fleet axis every candidate is single-instance and
			// the routing axis would be silently discarded — reject, like
			// ServePageTokens without a paging policy.
			if len(s.Routings) > 0 && !hasFleet {
				return fmt.Errorf("sweep: Routings needs a positive fleet size in Replicas")
			}
			if len(s.Mixes) > 0 {
				if len(s.Trace) > 0 {
					return fmt.Errorf("sweep: Mixes and Trace are mutually exclusive")
				}
				if len(s.Seqs) > 0 || len(s.GenTokens) > 0 {
					return fmt.Errorf("sweep: Mixes replaces the Seqs/GenTokens axes (a mix fixes its own request shapes)")
				}
				for _, mix := range s.Mixes {
					if err := serve.ValidateMix(mix); err != nil {
						return err
					}
				}
			}
			if len(s.Trace) > 0 {
				if len(s.Rates) > 0 || len(s.Seqs) > 0 || len(s.GenTokens) > 0 {
					return fmt.Errorf("sweep: Trace replaces the Rates/Seqs/GenTokens axes (a trace fixes arrivals and request shapes)")
				}
				if len(s.Schedules) > 0 || len(s.Turns) > 0 {
					return fmt.Errorf("sweep: Trace fixes the arrival process — leave the Schedules/Turns axes unset")
				}
				// The trace also fixes the request count and carries no
				// arrival randomness — reject the knobs it would silently
				// ignore.
				if s.ServeRequests != 0 || s.ServeSeed != 0 {
					return fmt.Errorf("sweep: Trace fixes the request count and arrivals — leave ServeRequests/ServeSeed unset")
				}
				if err := serve.ValidateTrace(s.Trace); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("sweep: unknown workload %v", s.Workload)
	}
	if len(s.Models) == 0 {
		return fmt.Errorf("sweep: no models")
	}
	if len(s.Systems) == 0 {
		return fmt.Errorf("sweep: no systems")
	}
	for _, m := range s.Models {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	for _, sys := range s.Systems {
		if sys == nil {
			return fmt.Errorf("sweep: nil system")
		}
		if err := sys.Validate(); err != nil {
			return err
		}
	}
	for _, b := range s.GlobalBatches {
		if b <= 0 {
			return fmt.Errorf("sweep: non-positive batch %d", b)
		}
	}
	for _, q := range s.Seqs {
		if q <= 0 {
			return fmt.Errorf("sweep: non-positive sequence length %d", q)
		}
	}
	for _, g := range s.GenTokens {
		if g < 0 {
			return fmt.Errorf("sweep: negative generation length %d", g)
		}
	}
	return nil
}

// Point is one fully instantiated candidate experiment.
type Point struct {
	Workload  Workload
	Model     model.Config
	System    *arch.System
	Map       parallel.Mapping
	Recompute memfoot.Recompute
	Precision tech.Precision
	// GlobalBatch is the global batch (training) or concurrent sequences
	// (inference).
	GlobalBatch int
	// Seq is the sequence length (training) or prompt length (inference
	// and serving).
	Seq int
	// GenTokens is the generation length; inference and serving only.
	GenTokens int
	// Rate is the Poisson arrival rate in requests/sec; serving only.
	Rate float64
	// BatchCap is the iteration batch cap (0 = derive); serving only.
	BatchCap int
	// Policy is the KV admission policy and PageTokens the paged block
	// size in tokens (0 under ReserveFull); serving only.
	Policy     serve.Policy
	PageTokens int
	// PrefillDevices/DecodeDevices are the disaggregated pool split and
	// TransferGBps its KV-transfer bandwidth (all zero under other
	// policies); serving only. They shape the simulated capacity, so they
	// are part of the candidate's identity.
	PrefillDevices int
	DecodeDevices  int
	TransferGBps   float64
	// PrefixTokens is the spec-wide shape's shared prefix length and
	// HostKVBytes/SwapGBps the paged policy's host KV tier capacity and
	// swap-link bandwidth (all zero under other policies); serving only.
	// They shape the simulated admission behavior, so they are part of
	// the candidate's identity.
	PrefixTokens int
	HostKVBytes  float64
	SwapGBps     float64
	// Mix is the candidate's multi-tenant workload (nil for spec-wide
	// shapes); Trace its replayed request timeline. Both shape the
	// simulated distribution, so they are part of the candidate's
	// identity. Serving only.
	Mix   []serve.TenantLoad
	Trace []serve.TraceEvent
	// ServeRequests and ServeSeed fix the simulated request count and
	// arrival seed; serving only. They shape the simulated distribution,
	// so they are part of the candidate's identity.
	ServeRequests int
	ServeSeed     int64
	// Replicas is the homogeneous fleet size the candidate simulates
	// (0 = plain single-instance serve) and Routing its cluster routing
	// policy (canonically RoundRobin for fleets of at most one replica);
	// serving only.
	Replicas int
	Routing  cluster.Routing
	// Schedule is the candidate's piecewise arrival-rate timeline (nil for
	// the constant Rate — enumeration canonicalizes constant schedules to
	// it), Turns its session-cohort depth (0 for the single-turn stream;
	// canonically 0 unless Policy is Paged) and Think the pause between a
	// session's turns (canonically 0 without cohorts); serving only. All
	// three shape the simulated arrival stream, so they are part of the
	// candidate's identity.
	Schedule workload.Schedule
	Turns    int
	Think    float64

	// key is the precomputed canonical identity; enumeration fills it so
	// the engine's hot path never formats strings.
	key string //lint:nokey memo slot for the key itself, not an input to it
}

// Key canonically identifies everything the evaluation depends on — the
// memoization and deduplication key. It is always computed from the
// current field values, so mutated Point copies never alias a stale
// identity; the engine uses the enumeration-time cache internally.
func (p Point) Key() string {
	return p.buildKey(modelToken(p.Model), systemToken(p.System), workloadToken(p.Mix, p.Trace))
}

// cachedKey returns the enumeration-time key without re-formatting; hot
// paths use it on points the enumerators built.
func (p Point) cachedKey() string {
	if p.key != "" {
		return p.key
	}
	return p.Key()
}

// modelToken identifies a model configuration: names alone are not enough,
// since external descriptions can be edited and reloaded under the same
// name (§3.1), and a collision would silently serve the wrong memoized
// metrics.
func modelToken(cfg model.Config) string {
	return cfg.Name + "#" + fingerprint(cfg)
}

// systemToken identifies a full system configuration, same rationale.
func systemToken(sys *arch.System) string {
	return sys.String() + "#" + fingerprint(*sys)
}

// fingerprint collapses a configuration struct into a short stable token
// (fmt renders map fields with sorted keys, so the rendering — and the
// hash — is deterministic).
func fingerprint(v any) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", v)
	return strconv.FormatUint(h.Sum64(), 16)
}

// buildKey assembles the canonical key without fmt: key construction runs
// once per enumerated candidate and dominated sweep time when it used
// reflection-based formatting. The model, system and workload tokens are
// computed once per grid cell (or once per grid, for a shared trace) by
// the enumerators.
func (p Point) buildKey(modelStr, sysStr, workloadStr string) string {
	sp := 0
	if p.Map.SP {
		sp = 1
	}
	buf := make([]byte, 0, len(modelStr)+len(sysStr)+64)
	buf = append(buf, modelStr...)
	buf = append(buf, '|')
	buf = append(buf, sysStr...)
	for _, v := range [...]int{
		int(p.Workload), p.Map.DP, p.Map.TP, p.Map.PP, sp,
		p.Map.Microbatch, int(p.Map.Schedule), p.Map.VirtualStages,
		int(p.Recompute), int(p.Precision), p.GlobalBatch, p.Seq, p.GenTokens,
		p.BatchCap, p.ServeRequests, int(p.Policy), p.PageTokens,
		p.PrefillDevices, p.DecodeDevices, p.Replicas, int(p.Routing),
		p.PrefixTokens, p.Turns,
	} {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, p.ServeSeed, 10)
	buf = append(buf, '|')
	buf = strconv.AppendFloat(buf, p.Rate, 'g', -1, 64)
	buf = append(buf, '|')
	buf = strconv.AppendFloat(buf, p.TransferGBps, 'g', -1, 64)
	buf = append(buf, '|')
	buf = strconv.AppendFloat(buf, p.HostKVBytes, 'g', -1, 64)
	buf = append(buf, '|')
	buf = strconv.AppendFloat(buf, p.SwapGBps, 'g', -1, 64)
	buf = append(buf, '|')
	buf = strconv.AppendFloat(buf, p.Think, 'g', -1, 64)
	// The schedule token is FormatSchedule's canonical rendering: digits
	// and ,-:. only, so it cannot collide with the key's separators.
	buf = append(buf, '|')
	buf = append(buf, workload.FormatSchedule(p.Schedule)...)
	buf = append(buf, '|')
	buf = append(buf, workloadStr...)
	return string(buf)
}

// workloadToken identifies a serving candidate's request-shape workload —
// the mix or trace it simulates. Tenant names are arbitrary strings, so
// the token is a fingerprint rather than a literal rendering (which could
// collide with the key's separators); empty for spec-wide-shaped
// candidates, keeping their keys stable relative to each other.
func workloadToken(mix []serve.TenantLoad, trace []serve.TraceEvent) string {
	switch {
	case len(trace) > 0:
		return "trace#" + fingerprint(trace)
	case len(mix) > 0:
		return "mix#" + fingerprint(mix)
	default:
		return ""
	}
}

// Metrics is the outcome of costing one point.
type Metrics struct {
	// Time is seconds per training batch, end-to-end inference latency,
	// or p95 end-to-end serving latency — the ranking key for each
	// workload.
	Time float64
	// MFU is the model-FLOPs utilization; training only.
	MFU float64
	// Memory is the per-device training footprint.
	Memory memfoot.Breakdown
	// Footprint is the per-device inference/serving footprint (for
	// serving: weights plus the peak KV reservation observed).
	Footprint memfoot.InferenceBreakdown
	// Fits reports whether the footprint fits device memory.
	Fits bool

	// TTFTP95 and TPOTP95 are the serving SLO percentiles in seconds;
	// TokensPerSec is the aggregate simulated generation throughput.
	// Serving only.
	TTFTP95      float64
	TPOTP95      float64
	TokensPerSec float64
	// Preemptions, RecomputedTokens and KVUtil surface the admission
	// policy's pressure behavior (evictions, discarded generated tokens,
	// mean fraction of the KV budget held). Serving only.
	Preemptions      int
	RecomputedTokens int
	KVUtil           float64
	// KVTransfers and TransferTime count the disaggregated policy's
	// prefill→decode KV migrations and the total interconnect seconds
	// they cost. Serving only, disaggregated candidates only.
	KVTransfers  int
	TransferTime float64
	// PrefixHits/PrefixSavedTokens count the paged policy's prefix-cache
	// admissions that found their shared prefix resident and the prefill
	// tokens those hits skipped; KVSwapOuts/KVSwapIns/SwapTime count the
	// host KV tier's page movements and the total link seconds they cost.
	// Serving only, paged candidates with those mechanisms only.
	PrefixHits        int
	PrefixSavedTokens int
	KVSwapOuts        int
	KVSwapIns         int
	SwapTime          float64
	// PerTenant breaks the SLO percentiles down per workload tenant,
	// sorted by tenant name. Serving only.
	PerTenant []TenantSLO
}

// TenantSLO is one tenant's SLO summary within a serving candidate.
type TenantSLO struct {
	Tenant   string
	Requests int
	TTFTP95  float64
	TPOTP95  float64
	E2EP95   float64
}

// Row is one ranked result.
type Row struct {
	Point   Point
	Metrics Metrics
	// order is the enumeration index, the deterministic tie-breaker.
	order int
}

// Stats summarizes how the sweep executed.
type Stats struct {
	// Enumerated is the candidate count after grid deduplication.
	Enumerated int
	// Pruned counts candidates rejected by the memory-feasibility check
	// before any costing.
	Pruned int
	// Evaluated counts full predictor evaluations.
	Evaluated int
	// MemoHits counts successful evaluations answered from the
	// memoization cache (errored cache entries count under Errors).
	MemoHits int
	// Errors counts candidates dropped because the predictor rejected
	// them.
	Errors int
	// Workers is the pool size used (1 for Serial).
	Workers int
	// Elapsed is the wall-clock sweep time.
	Elapsed time.Duration
}

// String renders a one-line execution summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d candidates: %d pruned, %d evaluated, %d memoized, %d errored (%d workers, %s)",
		s.Enumerated, s.Pruned, s.Evaluated, s.MemoHits, s.Errors, s.Workers,
		s.Elapsed.Round(time.Millisecond))
}

// Result is a ranked sweep outcome.
type Result struct {
	// Rows are the surviving candidates: fitting first, then by time,
	// ties broken by enumeration order. Bounded by Constraints.TopK.
	Rows  []Row
	Stats Stats
}

// divisors returns the divisors of n in ascending order.
func divisors(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// EnumerateTraining lists the candidate training points of one (model,
// system, batch, seq, precision) grid cell: the feasible (DP, TP, PP, SP,
// microbatch, schedule, recompute) space under c, in deterministic order.
func EnumerateTraining(cfg model.Config, sys *arch.System, batch, seq int, prec tech.Precision, c Constraints) []Point {
	c = c.WithDefaults(sys)
	devices := sys.NumDevices()
	modelStr, sysStr := modelToken(cfg), systemToken(sys)
	var out []Point
	for _, tp := range divisors(devices) {
		if tp > c.MaxTP || cfg.Heads%tp != 0 {
			continue
		}
		for _, pp := range divisors(devices / tp) {
			dp := devices / (tp * pp)
			for _, mb := range c.Microbatches {
				if batch%(dp*mb) != 0 {
					continue
				}
				// The schedule is meaningless at PP=1 (no bubble, one
				// microbatch in flight): keep only the first valid one.
				pp1Done := false
				for _, sched := range c.Schedules {
					if pp == 1 && pp1Done {
						continue
					}
					m := parallel.Mapping{
						DP: dp, TP: tp, PP: pp, SP: tp > 1,
						Microbatch: mb, Schedule: sched,
					}
					if sched == parallel.Interleaved1F1B {
						if pp < 2 || cfg.Layers%(pp*2) != 0 {
							continue
						}
						m.VirtualStages = 2
					}
					if m.Validate(cfg.Layers, batch) != nil {
						continue
					}
					pp1Done = true
					for _, rec := range c.Recomputes {
						p := Point{
							Workload: Training, Model: cfg, System: sys,
							Map: m, Recompute: rec, Precision: prec,
							GlobalBatch: batch, Seq: seq,
						}
						p.key = p.buildKey(modelStr, sysStr, "")
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

// EnumerateInference lists the candidate inference points of one grid
// cell. Inference involves only TP across the devices of the system
// (§1.3), so each cell yields at most one mapping.
func EnumerateInference(cfg model.Config, sys *arch.System, batch, prompt, gen int, prec tech.Precision) []Point {
	tp := sys.NumDevices()
	if cfg.Heads%tp != 0 {
		return nil
	}
	p := Point{
		Workload: Inference, Model: cfg, System: sys,
		Map:       parallel.Mapping{DP: 1, TP: tp, PP: 1, SP: tp > 1, Microbatch: 1},
		Precision: prec, GlobalBatch: batch, Seq: prompt, GenTokens: gen,
	}
	p.key = p.buildKey(modelToken(cfg), systemToken(sys), "")
	return []Point{p}
}

// servingPolicyAxes canonicalizes one serving candidate's policy knobs
// for a system of tp devices: the block size through
// serve.CanonicalPageTokens and the disaggregated pool split and transfer
// bandwidth through serve.CanonicalPoolSplit/CanonicalTransferGBps — all
// zeroed for policies that ignore them — so equal-behavior candidates
// always share one memo key, under exactly the rules the simulator
// applies. ok is false when the split asks for more devices than the
// system has: that (system, split) cell is skipped, like an indivisible
// head count.
func servingPolicyAxes(pol serve.Policy, pageTokens, context int, split PoolSplit, transferGBps float64, tp int, hostBytes, swapGBps float64) (pt, prefill, decode int, gbps, host, swap float64, ok bool) {
	pt = serve.CanonicalPageTokens(pol, pageTokens, context)
	prefill, decode = serve.CanonicalPoolSplit(pol, split.Prefill, split.Decode, tp)
	gbps = serve.CanonicalTransferGBps(pol, transferGBps)
	if pol != serve.Paged {
		// Only the paged policy holds a host tier; the axis canonicalizes
		// away for the others so they keep one memo key per cell.
		hostBytes = 0
	}
	host = hostBytes
	swap = serve.CanonicalSwapGBps(pol, hostBytes, swapGBps)
	if pol == serve.Disaggregated && (prefill > tp || decode > tp) {
		return 0, 0, 0, 0, 0, 0, false
	}
	return pt, prefill, decode, gbps, host, swap, true
}

// EnumerateServing lists the candidate serving points of one grid cell:
// one continuous-batching simulation per (rate, batch cap, admission
// policy, pool split), with the mapping fixed to TP = device count as in
// inference. pageTokens, split and transferGBps are canonicalized per
// point through the serve package's canonical rules — resolved to the
// serve defaults for the policies that use them, zeroed for the others —
// so equal-behavior candidates always share one memo key, under exactly
// the rules the simulator applies.
func EnumerateServing(cfg model.Config, sys *arch.System, rate float64, batchCap, prompt, gen int, prec tech.Precision, requests int, seed int64, pol serve.Policy, pageTokens int, split PoolSplit, transferGBps float64, prefix int, hostBytes, swapGBps float64) []Point {
	tp := sys.NumDevices()
	if cfg.Heads%tp != 0 {
		return nil
	}
	if pol != serve.Paged {
		// Only the paged policy caches prefixes; the axis canonicalizes
		// away for the others so they keep one memo key per cell.
		prefix = 0
	}
	if prefix > 0 && prefix >= prompt {
		// A prefix must leave at least one non-shared prompt token; this
		// (prompt, prefix) cell cannot be simulated, like an indivisible
		// head count.
		return nil
	}
	pt, prefill, decode, gbps, host, swap, ok := servingPolicyAxes(pol, pageTokens, prompt+gen, split, transferGBps, tp, hostBytes, swapGBps)
	if !ok {
		return nil
	}
	p := Point{
		Workload: Serving, Model: cfg, System: sys,
		Map:       parallel.Mapping{DP: 1, TP: tp, PP: 1, SP: tp > 1, Microbatch: 1},
		Precision: prec, Seq: prompt, GenTokens: gen,
		Rate: rate, BatchCap: batchCap, ServeRequests: requests, ServeSeed: seed,
		Policy: pol, PageTokens: pt,
		PrefillDevices: prefill, DecodeDevices: decode, TransferGBps: gbps,
		PrefixTokens: prefix, HostKVBytes: host, SwapGBps: swap,
	}
	p.key = p.buildKey(modelToken(cfg), systemToken(sys), "")
	return []Point{p}
}

// EnumerateServingMix lists the candidate serving points of one grid cell
// whose requests are shaped by a multi-tenant mix: one continuous-batching
// simulation per (rate, batch cap, policy, pool split, mix), with the page
// size canonicalized against the mix's largest context.
func EnumerateServingMix(cfg model.Config, sys *arch.System, mix []serve.TenantLoad, rate float64, batchCap int, prec tech.Precision, requests int, seed int64, pol serve.Policy, pageTokens int, split PoolSplit, transferGBps float64, hostBytes, swapGBps float64) []Point {
	return enumerateServingMix(cfg, sys, mix, rate, batchCap, prec, requests, seed, pol, pageTokens, split, transferGBps, hostBytes, swapGBps, workloadToken(mix, nil))
}

// enumerateServingMix is EnumerateServingMix with the mix's workload token
// precomputed, so Enumerate fingerprints each mix once per grid rather
// than once per candidate.
func enumerateServingMix(cfg model.Config, sys *arch.System, mix []serve.TenantLoad, rate float64, batchCap int, prec tech.Precision, requests int, seed int64, pol serve.Policy, pageTokens int, split PoolSplit, transferGBps, hostBytes, swapGBps float64, workloadStr string) []Point {
	tp := sys.NumDevices()
	if cfg.Heads%tp != 0 {
		return nil
	}
	pt, prefill, decode, gbps, host, swap, ok := servingPolicyAxes(pol, pageTokens, serve.MixContext(mix), split, transferGBps, tp, hostBytes, swapGBps)
	if !ok {
		return nil
	}
	p := Point{
		Workload: Serving, Model: cfg, System: sys,
		Map:       parallel.Mapping{DP: 1, TP: tp, PP: 1, SP: tp > 1, Microbatch: 1},
		Precision: prec, Mix: mix,
		Rate: rate, BatchCap: batchCap, ServeRequests: requests, ServeSeed: seed,
		Policy: pol, PageTokens: pt,
		PrefillDevices: prefill, DecodeDevices: decode, TransferGBps: gbps,
		HostKVBytes: host, SwapGBps: swap,
	}
	p.key = p.buildKey(modelToken(cfg), systemToken(sys), workloadStr)
	return []Point{p}
}

// EnumerateServingTrace lists the candidate serving points of one grid
// cell replaying a fixed trace: one simulation per (batch cap, policy,
// pool split). The trace fixes arrivals and request count, so Rate and
// ServeSeed are canonicalized to zero — two candidates differing only in
// them would simulate identically.
func EnumerateServingTrace(cfg model.Config, sys *arch.System, trace []serve.TraceEvent, batchCap int, prec tech.Precision, pol serve.Policy, pageTokens int, split PoolSplit, transferGBps float64, hostBytes, swapGBps float64) []Point {
	return enumerateServingTrace(cfg, sys, trace, batchCap, prec, pol, pageTokens, split, transferGBps, hostBytes, swapGBps, workloadToken(nil, trace))
}

// enumerateServingTrace is EnumerateServingTrace with the trace's workload
// token precomputed — a trace can be large, and hashing it per candidate
// would put reflection back on the enumeration path.
func enumerateServingTrace(cfg model.Config, sys *arch.System, trace []serve.TraceEvent, batchCap int, prec tech.Precision, pol serve.Policy, pageTokens int, split PoolSplit, transferGBps, hostBytes, swapGBps float64, workloadStr string) []Point {
	tp := sys.NumDevices()
	if cfg.Heads%tp != 0 {
		return nil
	}
	pt, prefill, decode, gbps, host, swap, ok := servingPolicyAxes(pol, pageTokens, serve.TraceContext(trace), split, transferGBps, tp, hostBytes, swapGBps)
	if !ok {
		return nil
	}
	p := Point{
		Workload: Serving, Model: cfg, System: sys,
		Map:       parallel.Mapping{DP: 1, TP: tp, PP: 1, SP: tp > 1, Microbatch: 1},
		Precision: prec, Trace: trace,
		BatchCap: batchCap, ServeRequests: len(trace),
		Policy: pol, PageTokens: pt,
		PrefillDevices: prefill, DecodeDevices: decode, TransferGBps: gbps,
		HostKVBytes: host, SwapGBps: swap,
	}
	p.key = p.buildKey(modelToken(cfg), systemToken(sys), workloadStr)
	return []Point{p}
}

// Enumerate expands the full grid into its deduplicated candidate list,
// in deterministic order.
func Enumerate(s Spec) []Point {
	s = s.withDefaults()
	// Workload tokens are fingerprints over the full mix/trace contents;
	// hash each once per grid, not once per candidate.
	traceTok := workloadToken(nil, s.Trace)
	mixToks := make([]string, len(s.Mixes))
	for i, mix := range s.Mixes {
		mixToks[i] = workloadToken(mix, nil)
	}
	var out []Point
	seen := make(map[string]bool)
	add := func(points []Point) {
		for _, p := range points {
			k := p.cachedKey()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, p)
		}
	}
	for _, cfg := range s.Models {
		for _, sys := range s.Systems {
			for _, prec := range s.Precisions {
				switch s.Workload {
				case Serving:
					// The pool split is a grid axis for disaggregated
					// candidates only; other policies see the zero split,
					// which canonicalizes away (no duplicate cells).
					polSplits := func(pol serve.Policy) []PoolSplit {
						if pol == serve.Disaggregated {
							return s.PoolSplits
						}
						return []PoolSplit{{}}
					}
					// addFleet stamps the fleet axes onto the cell's base
					// candidates: one copy per (fleet size, routing), with
					// the routing axis collapsed to round-robin for
					// single-instance and one-replica entries (every policy
					// routes a fleet of one identically, so they would be
					// duplicate simulations under distinct keys). The base
					// enumerators key their points with zero fleet fields,
					// so only fleet copies need re-keying.
					modelTok, sysTok := modelToken(cfg), systemToken(sys)
					// The arrival axis: every constant rate, then every
					// schedule — canonicalized first, so a schedule that is
					// constant after merging enumerates as the equivalent
					// plain-rate candidate (rate set, schedule nil) and
					// deduplicates against it.
					type arrivalAxis struct {
						rate  float64
						sched workload.Schedule
					}
					arrivals := make([]arrivalAxis, 0, len(s.Rates)+len(s.Schedules))
					for _, r := range s.Rates {
						arrivals = append(arrivals, arrivalAxis{rate: r})
					}
					for _, sch := range s.Schedules {
						cs, cr := workload.CanonicalSchedule(sch, 0)
						arrivals = append(arrivals, arrivalAxis{rate: cr, sched: cs})
					}
					addFleet := func(points []Point, wlTok string) {
						for _, reps := range s.Replicas {
							rts := s.Routings
							if reps <= 1 {
								rts = []cluster.Routing{cluster.RoundRobin}
							}
							for _, rt := range rts {
								if reps == 0 {
									add(points)
									continue
								}
								stamped := make([]Point, len(points))
								for i, p := range points {
									p.Replicas, p.Routing = reps, rt
									p.key = p.buildKey(modelTok, sysTok, wlTok)
									stamped[i] = p
								}
								add(stamped)
							}
						}
					}
					// addTemporal stamps the arrival-process axes onto the
					// cell's base candidates before the fleet stamping:
					// schedule, session depth and think time, with the
					// degenerate values canonicalized away (constant
					// schedule → nil, single-turn or non-paged → zero
					// turns, turnless → zero think) so degenerate corners
					// share the base candidate's memo key.
					addTemporal := func(points []Point, wlTok string, sched workload.Schedule, turns int) {
						for i := range points {
							p := &points[i]
							t := turns
							if p.Policy != serve.Paged || t <= 1 {
								t = 0
							}
							if len(sched) == 0 && t == 0 {
								continue
							}
							p.Schedule, p.Turns = sched, t
							if t > 1 {
								p.Think = s.Think
							}
							p.key = p.buildKey(modelTok, sysTok, wlTok)
						}
						addFleet(points, wlTok)
					}
					switch {
					case len(s.Trace) > 0:
						for _, batchCap := range s.BatchCaps {
							for _, pol := range s.Policies {
								for _, split := range polSplits(pol) {
									for _, host := range s.HostKVBytes {
										addFleet(enumerateServingTrace(cfg, sys, s.Trace, batchCap, prec, pol, s.ServePageTokens, split, s.TransferGBps, host, s.SwapGBps, traceTok), traceTok)
									}
								}
							}
						}
					case len(s.Mixes) > 0:
						for _, ar := range arrivals {
							for _, turns := range s.Turns {
								for _, batchCap := range s.BatchCaps {
									for _, pol := range s.Policies {
										for _, split := range polSplits(pol) {
											for _, host := range s.HostKVBytes {
												for i, mix := range s.Mixes {
													addTemporal(enumerateServingMix(cfg, sys, mix, ar.rate, batchCap, prec, s.ServeRequests, s.ServeSeed, pol, s.ServePageTokens, split, s.TransferGBps, host, s.SwapGBps, mixToks[i]), mixToks[i], ar.sched, turns)
												}
											}
										}
									}
								}
							}
						}
					default:
						for _, ar := range arrivals {
							for _, turns := range s.Turns {
								for _, batchCap := range s.BatchCaps {
									for _, pol := range s.Policies {
										for _, split := range polSplits(pol) {
											for _, host := range s.HostKVBytes {
												for _, prefix := range s.PrefixTokens {
													if turns > 1 && pol == serve.Paged && prefix > 0 {
														// A session owns its shared prefix; the
														// spec-wide prefixed shape cannot carry
														// one too (serve rejects the combination).
														continue
													}
													for _, seq := range s.Seqs {
														for _, gen := range s.GenTokens {
															addTemporal(EnumerateServing(cfg, sys, ar.rate, batchCap, seq, gen, prec, s.ServeRequests, s.ServeSeed, pol, s.ServePageTokens, split, s.TransferGBps, prefix, host, s.SwapGBps), "", ar.sched, turns)
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				case Inference:
					for _, batch := range s.GlobalBatches {
						for _, seq := range s.Seqs {
							for _, gen := range s.GenTokens {
								add(EnumerateInference(cfg, sys, batch, seq, gen, prec))
							}
						}
					}
				default:
					for _, batch := range s.GlobalBatches {
						for _, seq := range s.Seqs {
							add(EnumerateTraining(cfg, sys, batch, seq, prec, s.Constraints))
						}
					}
				}
			}
		}
	}
	return out
}

// Evaluate runs the full cost model on one point — on fresh simulator
// state. The engine and Serial evaluate through a pooled per-worker
// evaluator instead, which reuses simulator slabs across points;
// TestRunnerReuseMatchesFresh (serve) and TestClusterRunnerReuseMatchesFresh
// pin that reuse byte-identical, so the two paths cannot diverge.
func Evaluate(p Point) (Metrics, error) {
	return newEvaluator().evaluate(p)
}

// evaluator carries the pooled serving simulators one sweep worker reuses
// across the points it costs. Inference and training predictions are
// stateless; only the serving paths hold reusable state. NOT safe for
// concurrent use — each worker owns one.
type evaluator struct {
	serve   *serve.Runner
	cluster *cluster.Runner
}

func newEvaluator() *evaluator {
	return &evaluator{serve: serve.NewRunner(), cluster: cluster.NewRunner()}
}

func (ev *evaluator) evaluate(p Point) (Metrics, error) {
	switch p.Workload {
	case Inference:
		return evaluateInference(p)
	case Serving:
		return ev.evaluateServing(p)
	default:
		return evaluateTraining(p)
	}
}

func evaluateTraining(p Point) (Metrics, error) {
	res, err := train.Predict(train.Spec{
		Model:       p.Model,
		System:      p.System,
		Map:         p.Map,
		GlobalBatch: p.GlobalBatch,
		Seq:         p.Seq,
		Precision:   p.Precision,
		Recompute:   p.Recompute,
	})
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		Time:   res.Total,
		MFU:    res.MFU,
		Memory: res.MemoryPerDevice,
		Fits:   memfoot.FitsDevice(res.MemoryPerDevice, p.System.Device.DRAMCapacity()),
	}, nil
}

func evaluateInference(p Point) (Metrics, error) {
	res, err := infer.Predict(infer.Spec{
		Model:        p.Model,
		System:       p.System,
		TP:           p.Map.TP,
		Batch:        p.GlobalBatch,
		PromptTokens: p.Seq,
		GenTokens:    p.GenTokens,
		Precision:    p.Precision,
	})
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		Time:      res.Total,
		Footprint: res.Footprint,
		Fits:      res.Fits,
	}, nil
}

// servingSpec builds the simulator configuration of one serving point.
// Enumeration already canonicalized PageTokens (zero unless paged), so
// the fields pass straight through serve.Spec's strict validation. The
// request shapes come from the candidate's trace, mix, or spec-wide
// prompt/generation fields — exactly one of the three.
func servingSpec(p Point) serve.Spec {
	sp := serve.Spec{
		Model: p.Model, System: p.System, TP: p.Map.TP, Precision: p.Precision,
		MaxBatch: p.BatchCap, Policy: p.Policy, PageTokens: p.PageTokens,
		PrefillDevices: p.PrefillDevices, DecodeDevices: p.DecodeDevices,
		TransferGBps: p.TransferGBps,
		HostKVBytes:  p.HostKVBytes, SwapGBps: p.SwapGBps,
	}
	switch {
	case len(p.Trace) > 0:
		// The trace fixes arrivals, seed and request count.
		sp.Trace = p.Trace
	case len(p.Mix) > 0:
		sp.Mix = p.Mix
		sp.Arrival, sp.Rate = serve.Poisson, p.Rate
		sp.Requests, sp.Seed = p.ServeRequests, p.ServeSeed
		sp.Schedule, sp.Turns, sp.Think = p.Schedule, p.Turns, p.Think
	default:
		sp.PromptTokens, sp.GenTokens = p.Seq, p.GenTokens
		sp.PrefixTokens = p.PrefixTokens
		sp.Arrival, sp.Rate = serve.Poisson, p.Rate
		sp.Requests, sp.Seed = p.ServeRequests, p.ServeSeed
		sp.Schedule, sp.Turns, sp.Think = p.Schedule, p.Turns, p.Think
	}
	return sp
}

// servingContext is the candidate workload's largest prompt+generation
// context — the bound the footprint reporting prices KV geometry at.
func servingContext(p Point) int {
	switch {
	case len(p.Trace) > 0:
		return serve.TraceContext(p.Trace)
	case len(p.Mix) > 0:
		return serve.MixContext(p.Mix)
	default:
		return p.Seq + p.GenTokens
	}
}

// clusterSpec builds the fleet configuration of a Replicas > 0 serving
// point: the single-instance serve spec split into its capacity descriptor
// (instantiated Replicas times — sweep fleets are homogeneous) and the
// fleet-wide workload/arrival fields internal/cluster owns.
func clusterSpec(p Point) cluster.Spec {
	cap := servingSpec(p)
	cs := cluster.Spec{
		Routing:      p.Routing,
		PromptTokens: cap.PromptTokens, GenTokens: cap.GenTokens,
		PrefixTokens: cap.PrefixTokens,
		Mix:          cap.Mix, Trace: cap.Trace,
		Rate: cap.Rate, Requests: cap.Requests, Seed: cap.Seed,
		Schedule: cap.Schedule, Turns: cap.Turns, Think: cap.Think,
	}
	cap.PromptTokens, cap.GenTokens, cap.PrefixTokens = 0, 0, 0
	cap.Mix, cap.Trace = nil, nil
	cap.Arrival, cap.Rate, cap.Requests, cap.Seed = serve.Poisson, 0, 0, 0
	cap.Schedule, cap.Turns, cap.Think = nil, 0, 0
	cs.Replicas = []cluster.Replica{{Spec: cap, Count: p.Replicas}}
	return cs
}

// evaluateServingFleet costs a fleet candidate through internal/cluster,
// mapping the fleet-wide result onto the same serving Metrics surface as a
// single instance (per-device footprint from the worst replica, KV
// utilization averaged across the fleet).
func (ev *evaluator) evaluateServingFleet(p Point) (Metrics, error) {
	res, err := ev.cluster.Run(clusterSpec(p))
	if err != nil {
		return Metrics{}, err
	}
	var peakKV, kvUtil float64
	for _, rr := range res.PerReplica {
		if rr.Result.PeakKVBytes > peakKV {
			peakKV = rr.Result.PeakKVBytes
		}
		kvUtil += rr.Result.MeanKVUtil
	}
	kvUtil /= float64(len(res.PerReplica))
	m := Metrics{
		Time: res.E2E.P95,
		Footprint: memfoot.InferenceBreakdown{
			Weights: memfoot.Inference(p.Model, p.Map.TP, 1, servingContext(p), p.Precision.Bytes()).Weights,
			KVCache: peakKV,
		},
		Fits:              true,
		TTFTP95:           res.TTFT.P95,
		TPOTP95:           res.TPOT.P95,
		TokensPerSec:      res.TokensPerSec,
		Preemptions:       res.Preemptions,
		RecomputedTokens:  res.RecomputedTokens,
		KVUtil:            kvUtil,
		KVTransfers:       res.KVTransfers,
		TransferTime:      res.TransferTimeTotal,
		PrefixHits:        res.PrefixHits,
		PrefixSavedTokens: res.PrefixSavedTokens,
		KVSwapOuts:        res.KVSwapOuts,
		KVSwapIns:         res.KVSwapIns,
		SwapTime:          res.SwapTimeTotal,
	}
	for _, tm := range res.PerTenant {
		m.PerTenant = append(m.PerTenant, TenantSLO{
			Tenant: tm.Tenant, Requests: tm.Requests,
			TTFTP95: tm.TTFT.P95, TPOTP95: tm.TPOT.P95, E2EP95: tm.E2E.P95,
		})
	}
	return m, nil
}

func (ev *evaluator) evaluateServing(p Point) (Metrics, error) {
	if p.Replicas > 0 {
		return ev.evaluateServingFleet(p)
	}
	res, err := ev.serve.Run(servingSpec(p))
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		Time: res.E2E.P95,
		Footprint: memfoot.InferenceBreakdown{
			Weights: memfoot.Inference(p.Model, p.Map.TP, 1, servingContext(p), p.Precision.Bytes()).Weights,
			KVCache: res.PeakKVBytes,
		},
		// Admission never over-commits the device, so a completed
		// simulation fits by construction.
		Fits:              true,
		TTFTP95:           res.TTFT.P95,
		TPOTP95:           res.TPOT.P95,
		TokensPerSec:      res.TokensPerSec,
		Preemptions:       res.Preemptions,
		RecomputedTokens:  res.RecomputedTokens,
		KVUtil:            res.MeanKVUtil,
		KVTransfers:       res.KVTransfers,
		TransferTime:      res.TransferTimeTotal,
		PrefixHits:        res.PrefixHits,
		PrefixSavedTokens: res.PrefixSavedTokens,
		KVSwapOuts:        res.KVSwapOuts,
		KVSwapIns:         res.KVSwapIns,
		SwapTime:          res.SwapTimeTotal,
	}
	for _, tm := range res.PerTenant {
		m.PerTenant = append(m.PerTenant, TenantSLO{
			Tenant: tm.Tenant, Requests: tm.Requests,
			TTFTP95: tm.TTFT.P95, TPOTP95: tm.TPOT.P95, E2EP95: tm.E2E.P95,
		})
	}
	return m, nil
}

// Feasible reports whether p fits device memory, using only the footprint
// model — orders of magnitude cheaper than the full predictor, so the
// engine runs it before costing and skips candidates it rejects. The
// verdict matches the Fits field Evaluate would return (for serving:
// whether the simulator can ever admit a request, which is when Evaluate
// succeeds).
func Feasible(p Point) (bool, error) {
	capacity := p.System.Device.DRAMCapacity()
	if p.Workload == Serving {
		// Fleet candidates are homogeneous, so one replica's admission
		// feasibility is the fleet's.
		return serve.Feasible(servingSpec(p)), nil
	}
	if p.Workload == Inference {
		fp := memfoot.Inference(p.Model, p.Map.TP, p.GlobalBatch, p.Seq+p.GenTokens, p.Precision.Bytes())
		return fp.Total() <= capacity, nil
	}
	bd, err := memfoot.Train(memfoot.TrainSpec{
		Model: p.Model, Map: p.Map, Seq: p.Seq, GlobalBatch: p.GlobalBatch,
		Recompute: p.Recompute,
	})
	if err != nil {
		return false, err
	}
	return memfoot.FitsDevice(bd, capacity), nil
}

// rank filters and orders rows: fitting candidates first, then by
// predicted time, ties broken by enumeration order — fully deterministic
// regardless of how the rows were produced.
func rank(rows []Row, c Constraints) []Row {
	if !c.AllowOverflow {
		kept := rows[:0]
		for _, r := range rows {
			if r.Metrics.Fits {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Metrics.Fits != rows[j].Metrics.Fits {
			return rows[i].Metrics.Fits
		}
		//lint:floateq exact compare guarding a strict-< tiebreak: equal bit patterns must fall through to the stable order index
		if rows[i].Metrics.Time != rows[j].Metrics.Time {
			return rows[i].Metrics.Time < rows[j].Metrics.Time
		}
		return rows[i].order < rows[j].order
	})
	if c.TopK > 0 && len(rows) > c.TopK {
		rows = rows[:c.TopK]
	}
	return rows
}

// Serial evaluates the grid one candidate at a time in enumeration order,
// with no pruning, memoization, or concurrency — the golden reference the
// concurrent engine must reproduce byte for byte.
func Serial(s Spec) (Result, error) {
	start := time.Now() //lint:deterministic wall-clock feeds Stats.Elapsed instrumentation only, never rankings or metrics
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	points := Enumerate(s)
	c := s.Constraints.WithDefaults(firstSystem(s))
	rows := make([]Row, 0, len(points))
	stats := Stats{Enumerated: len(points), Workers: 1}
	ev := newEvaluator()
	for i, p := range points {
		m, err := ev.evaluate(p)
		if err != nil {
			stats.Errors++
			continue
		}
		stats.Evaluated++
		rows = append(rows, Row{Point: p, Metrics: m, order: i})
	}
	stats.Elapsed = time.Since(start) //lint:deterministic instrumentation-only elapsed time, not part of results
	return Result{Rows: rank(rows, c), Stats: stats}, nil
}

func firstSystem(s Spec) *arch.System {
	if len(s.Systems) > 0 {
		return s.Systems[0]
	}
	return nil
}
