package sweep

import (
	"context"
	"reflect"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/serve"
	"optimus/internal/tech"
)

// cell builds the fixed (model, system) grid cell the key-coverage tests
// enumerate within.
func cell(t *testing.T) (model.Config, *arch.System) {
	t.Helper()
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := arch.SystemOf(arch.H100(), 2, 8, tech.NVLink4, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, sys
}

// mixes0 is a two-value mix axis: a chat-only mix and a chat+batch blend.
func mixes0() [][]serve.TenantLoad {
	return [][]serve.TenantLoad{
		{{Tenant: "chat", Share: 1, PromptTokens: 200, GenTokens: 200}},
		{
			{Tenant: "chat", Share: 0.7, PromptTokens: 200, GenTokens: 200},
			{Tenant: "batch", Share: 0.3, PromptTokens: 1200, GenTokens: 100},
		},
	}
}

// mixSpec0 is a small serving grid over the mix axis.
func mixSpec0(t *testing.T) Spec {
	t.Helper()
	s := servingSpec0(t)
	s.Mixes = mixes0()
	s.Seqs, s.GenTokens = nil, nil
	return s
}

// trace0 is a short fixed trace for replay candidates.
func trace0() []serve.TraceEvent {
	return []serve.TraceEvent{
		{Arrival: 0, Request: serve.Request{Tenant: "chat", PromptTokens: 100, GenTokens: 40}},
		{Arrival: 0.1, Request: serve.Request{Tenant: "batch", PromptTokens: 900, GenTokens: 60}},
		{Arrival: 0.3, Request: serve.Request{Tenant: "chat", PromptTokens: 150, GenTokens: 30}},
		{Arrival: 1.5, Request: serve.Request{Tenant: "chat", PromptTokens: 80, GenTokens: 20}},
	}
}

// TestServingMixAxis: the mix is a first-class grid axis — every (rate ×
// cap × mix) cell yields a distinct candidate whose metrics carry the
// per-tenant SLO breakdown, and the engine reproduces serial byte for
// byte.
func TestServingMixAxis(t *testing.T) {
	spec := mixSpec0(t)
	serial, err := Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 systems × 2 rates × 2 caps × 2 mixes.
	if len(serial.Rows) != 16 {
		t.Fatalf("mix axis should rank 16 rows, got %d", len(serial.Rows))
	}
	counts := map[int]int{}
	for _, row := range serial.Rows {
		counts[len(row.Point.Mix)]++
		if len(row.Point.Mix) == 0 {
			t.Fatalf("mix-grid candidate lost its mix: %+v", row.Point)
		}
		if len(row.Metrics.PerTenant) != len(row.Point.Mix) {
			t.Errorf("candidate with a %d-tenant mix reports %d tenant summaries",
				len(row.Point.Mix), len(row.Metrics.PerTenant))
		}
		if row.Metrics.Time <= 0 || row.Metrics.TokensPerSec <= 0 {
			t.Errorf("mix candidate missing serving metrics: %+v", row.Metrics)
		}
	}
	if counts[1] != 8 || counts[2] != 8 {
		t.Fatalf("expected 8 rows per mix, got %v", counts)
	}

	for _, workers := range []int{1, 4} {
		spec.Workers = workers
		eng, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(eng.Rows, serial.Rows) {
			t.Errorf("workers=%d: engine mix ranking must match serial byte for byte", workers)
		}
	}
}

// TestServingMixKeyCoverage: the memo key must cover the mix — same mix
// collides (cache hit), any differing tenant/share/shape separates.
func TestServingMixKeyCoverage(t *testing.T) {
	cfg, sys := cell(t)
	mix := mixes0()[1]
	mk := func(mix []serve.TenantLoad) Point {
		pts := EnumerateServingMix(cfg, sys, mix, 1, 0, tech.FP16, 32, 1, serve.ReserveFull, 0, PoolSplit{}, 0, 0, 0)
		if len(pts) != 1 {
			t.Fatalf("expected one candidate, got %d", len(pts))
		}
		return pts[0]
	}
	base := mk(mix)
	if base.Key() != mk(mixes0()[1]).Key() {
		t.Error("identical mixes must share one memo key")
	}
	for name, mutate := range map[string]func([]serve.TenantLoad) []serve.TenantLoad{
		"share": func(m []serve.TenantLoad) []serve.TenantLoad {
			m = append([]serve.TenantLoad(nil), m...)
			m[0].Share = 0.5
			return m
		},
		"prompt": func(m []serve.TenantLoad) []serve.TenantLoad {
			m = append([]serve.TenantLoad(nil), m...)
			m[1].PromptTokens++
			return m
		},
		"gen": func(m []serve.TenantLoad) []serve.TenantLoad {
			m = append([]serve.TenantLoad(nil), m...)
			m[1].GenTokens++
			return m
		},
		"tenant name": func(m []serve.TenantLoad) []serve.TenantLoad {
			m = append([]serve.TenantLoad(nil), m...)
			m[0].Tenant = "chat2"
			return m
		},
		"dropped tenant": func(m []serve.TenantLoad) []serve.TenantLoad { return m[:1] },
	} {
		if mk(mutate(mix)).Key() == base.Key() {
			t.Errorf("key must change when the mix's %s changes", name)
		}
	}
	// A mix candidate must not collide with the spec-wide candidate of the
	// same cell, nor with a trace candidate.
	specWide := EnumerateServing(cfg, sys, 1, 0, 200, 200, tech.FP16, 32, 1, serve.ReserveFull, 0, PoolSplit{}, 0, 0, 0, 0)[0]
	if specWide.Key() == base.Key() {
		t.Error("mix and spec-wide candidates collide")
	}
	traced := EnumerateServingTrace(cfg, sys, trace0(), 0, tech.FP16, serve.ReserveFull, 0, PoolSplit{}, 0, 0, 0)[0]
	if traced.Key() == base.Key() || traced.Key() == specWide.Key() {
		t.Error("trace candidate collides with mix or spec-wide candidate")
	}
}

// TestServingTraceSweep: a trace grid simulates one fixed timeline per
// (cap × policy) candidate, engine == serial, and two candidates differing
// only in the trace get distinct keys.
func TestServingTraceSweep(t *testing.T) {
	spec := servingSpec0(t)
	spec.Trace = trace0()
	spec.Rates, spec.Seqs, spec.GenTokens = nil, nil, nil
	spec.BatchCaps = []int{0, 2}
	spec.ServeRequests, spec.ServeSeed = 0, 0

	serial, err := Serial(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 systems × 2 caps.
	if len(serial.Rows) != 4 {
		t.Fatalf("trace grid should rank 4 rows, got %d", len(serial.Rows))
	}
	for _, row := range serial.Rows {
		if len(row.Point.Trace) != len(spec.Trace) {
			t.Fatalf("trace candidate lost its trace: %+v", row.Point)
		}
		if row.Point.ServeRequests != len(spec.Trace) {
			t.Errorf("trace candidate should simulate %d requests, has %d",
				len(spec.Trace), row.Point.ServeRequests)
		}
		if row.Point.Rate != 0 || row.Point.ServeSeed != 0 {
			t.Errorf("trace candidate should canonicalize rate and seed to zero: %+v", row.Point)
		}
		if len(row.Metrics.PerTenant) != 2 {
			t.Errorf("trace candidate should report 2 tenants, got %+v", row.Metrics.PerTenant)
		}
	}
	eng, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eng.Rows, serial.Rows) {
		t.Error("engine trace ranking must match serial byte for byte")
	}

	cfg, sys := cell(t)
	a := EnumerateServingTrace(cfg, sys, trace0(), 0, tech.FP16, serve.ReserveFull, 0, PoolSplit{}, 0, 0, 0)[0]
	shifted := append([]serve.TraceEvent(nil), trace0()...)
	shifted[1].PromptTokens += 64
	b := EnumerateServingTrace(cfg, sys, shifted, 0, tech.FP16, serve.ReserveFull, 0, PoolSplit{}, 0, 0, 0)[0]
	if a.Key() == b.Key() {
		t.Error("candidates replaying different traces collide on key")
	}
}

// TestServingWorkloadValidation: the mix/trace axes are serving-only and
// mutually exclusive with the axes they replace.
func TestServingWorkloadValidation(t *testing.T) {
	check := func(name string, mutate func(*Spec)) {
		t.Helper()
		s := servingSpec0(t)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s should fail validation", name)
		}
	}
	check("mixes on training sweep", func(s *Spec) {
		s.Workload = Training
		s.GenTokens, s.Rates, s.BatchCaps, s.ServeRequests = nil, nil, nil, 0
		s.Mixes = mixes0()
	})
	check("trace on inference sweep", func(s *Spec) {
		s.Workload = Inference
		s.Rates, s.BatchCaps, s.ServeRequests = nil, nil, 0
		s.Trace = trace0()
	})
	check("mixes with seqs", func(s *Spec) { s.Mixes = mixes0(); s.Seqs = []int{200} })
	check("mixes with gen tokens", func(s *Spec) { s.Mixes = mixes0(); s.GenTokens = []int{100} })
	check("trace with rates", func(s *Spec) { s.Trace = trace0(); s.Rates = []float64{1} })
	check("mixes and trace together", func(s *Spec) {
		s.Mixes = mixes0()
		s.Trace = trace0()
		s.Rates = nil
	})
	check("malformed mix entry", func(s *Spec) {
		s.Mixes = [][]serve.TenantLoad{{{Tenant: "a", Share: -1, PromptTokens: 100, GenTokens: 10}}}
	})
	check("malformed trace", func(s *Spec) {
		s.Rates = nil
		s.Trace = []serve.TraceEvent{{Arrival: -2, Request: serve.Request{Tenant: "a", PromptTokens: 10, GenTokens: 1}}}
	})

	good := mixSpec0(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("mix grid should validate: %v", err)
	}
}

// TestServingMixMemoizedAcrossRuns: a warm engine answers a repeated mix
// grid entirely from the memo — the per-tenant metrics survive the memo
// round trip.
func TestServingMixMemoizedAcrossRuns(t *testing.T) {
	spec := mixSpec0(t)
	eng := New(2)
	first, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Evaluated != 0 || second.Stats.MemoHits != first.Stats.Evaluated {
		t.Errorf("warm mix run should be all memo hits: first %+v, second %+v", first.Stats, second.Stats)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Error("warm run must reproduce the mix ranking, per-tenant metrics included")
	}
}
