package sweep

import (
	"math"
	"testing"

	"optimus/internal/serve"
	"optimus/internal/workload"
)

// TestServingTemporalValidation covers the Schedules/Turns/Think axis
// checks.
func TestServingTemporalValidation(t *testing.T) {
	sched := workload.Schedule{{Start: 0, End: 10, Rate: 1}, {Start: 10, End: 20, Rate: 4}}
	check := func(name string, wantErr bool, mutate func(*Spec)) {
		t.Helper()
		s := servingSpec0(t)
		mutate(&s)
		err := s.Validate()
		if wantErr && err == nil {
			t.Errorf("%s should fail validation", name)
		}
		if !wantErr && err != nil {
			t.Errorf("%s should validate: %v", name, err)
		}
	}
	check("schedules axis", false, func(s *Spec) { s.Rates, s.Schedules = nil, []workload.Schedule{sched} })
	check("schedules with rates", true, func(s *Spec) { s.Schedules = []workload.Schedule{sched} })
	check("invalid schedule", true, func(s *Spec) {
		s.Rates, s.Schedules = nil, []workload.Schedule{{{Start: 5, End: 10, Rate: 1}}}
	})
	check("paged turns axis", false, func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.Turns = []int{0, 3}
	})
	check("negative turns", true, func(s *Spec) { s.Turns = []int{-1} })
	check("turns without paged", true, func(s *Spec) { s.Turns = []int{2} })
	check("turns with prefix axis", true, func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.Turns = []int{2}
		s.PrefixTokens = []int{64}
	})
	check("turns over a prefix mix", true, func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.Turns = []int{2}
		s.Mixes = [][]workload.TenantLoad{{{Tenant: "a", Share: 1, PromptTokens: 100, GenTokens: 50,
			PrefixID: "a", PrefixTokens: 40}}}
	})
	check("think with sessions", false, func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.Turns = []int{2}
		s.Think = 5
	})
	check("think without sessions", true, func(s *Spec) { s.Think = 5 })
	check("NaN think", true, func(s *Spec) {
		s.Policies = []serve.Policy{serve.Paged}
		s.Turns = []int{2}
		s.Think = math.NaN()
	})
	check("trace with schedules", true, func(s *Spec) {
		s.Rates = nil
		s.Trace = []workload.TraceEvent{{Arrival: 0,
			Request: workload.Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}}}
		s.Schedules = []workload.Schedule{sched}
	})
	check("trace with turns", true, func(s *Spec) {
		s.Rates = nil
		s.Trace = []workload.TraceEvent{{Arrival: 0,
			Request: workload.Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}}}
		s.Turns = []int{2}
	})
	check("training schedules axis", true, func(s *Spec) {
		s.Workload = Training
		s.Rates, s.BatchCaps, s.ServeRequests = nil, nil, 0
		s.Schedules = []workload.Schedule{sched}
	})
}

// TestServingScheduleAxisEnumeration: schedules enumerate as an arrival
// axis — a constant schedule canonicalizes to the plain-rate candidate and
// deduplicates against an equivalent schedule, while a genuinely piecewise
// schedule keeps its timeline (rate zero) under a distinct key.
func TestServingScheduleAxisEnumeration(t *testing.T) {
	s := servingSpec0(t)
	s.Systems = s.Systems[:1]
	s.BatchCaps = []int{4}
	s.Rates = nil
	s.Schedules = []workload.Schedule{
		{{Start: 0, End: 60, Rate: 2}},                                // constant → rate 2
		{{Start: 0, End: 30, Rate: 2}, {Start: 30, End: 60, Rate: 2}}, // same constant, split → dedup
		{{Start: 0, End: 10, Rate: 1}, {Start: 10, End: 20, Rate: 4}}, // genuinely piecewise
	}
	pts := Enumerate(s.withDefaults())
	if len(pts) != 2 {
		t.Fatalf("3 schedules should canonicalize to 2 candidates (constant deduped), got %d", len(pts))
	}
	var constant, piecewise *Point
	for i := range pts {
		if len(pts[i].Schedule) == 0 {
			constant = &pts[i]
		} else {
			piecewise = &pts[i]
		}
	}
	if constant == nil || constant.Rate != 2 {
		t.Fatalf("constant schedule should enumerate as the plain rate-2 candidate: %+v", pts)
	}
	if piecewise == nil || piecewise.Rate != 0 || len(piecewise.Schedule) != 2 {
		t.Fatalf("piecewise schedule should keep its timeline with rate 0: %+v", pts)
	}
	if constant.Key() == piecewise.Key() {
		t.Fatal("constant and piecewise candidates must not share a key")
	}
}

// TestServingTurnsAxisEnumeration: the turns axis multiplies paged
// candidates only — non-paged policies canonicalize every depth to the
// single-turn candidate, and depths 0 and 1 collapse together.
func TestServingTurnsAxisEnumeration(t *testing.T) {
	s := servingSpec0(t)
	s.Systems = s.Systems[:1]
	s.Rates = []float64{2}
	s.BatchCaps = []int{4}
	s.Policies = []serve.Policy{serve.ReserveFull, serve.Paged}
	s.Turns = []int{0, 1, 3}
	pts := Enumerate(s.withDefaults())
	// Reserve: one candidate (all depths collapse). Paged: depth {0,1}
	// collapse plus depth 3 — three total.
	counts := map[serve.Policy]int{}
	for _, p := range pts {
		counts[p.Policy]++
		if p.Policy != serve.Paged && p.Turns != 0 {
			t.Fatalf("non-paged candidate kept turns %d", p.Turns)
		}
	}
	if counts[serve.ReserveFull] != 1 || counts[serve.Paged] != 2 {
		t.Fatalf("want 1 reserve + 2 paged candidates, got %v", counts)
	}
}

// TestServingTemporalSweepEndToEnd: a schedule × turns serving sweep runs
// through the serial path, completes, and stamps the temporal fields onto
// its ranked points.
func TestServingTemporalSweepEndToEnd(t *testing.T) {
	s := servingSpec0(t)
	s.Systems = s.Systems[:1]
	s.Rates = nil
	s.Schedules = []workload.Schedule{{{Start: 0, End: 5, Rate: 0.5}, {Start: 5, End: 10, Rate: 4}}}
	s.BatchCaps = []int{4}
	s.Policies = []serve.Policy{serve.Paged}
	s.Turns = []int{3}
	s.Think = 2
	s.ServeRequests = 24
	res, err := Serial(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 ranked row, got %d", len(res.Rows))
	}
	p := res.Rows[0].Point
	if len(p.Schedule) != 2 || p.Turns != 3 || p.Think != 2 {
		t.Fatalf("temporal fields not stamped: %+v", p)
	}
	if res.Rows[0].Metrics.PrefixHits == 0 {
		t.Error("three-turn cohort candidates should hit the prefix cache")
	}
}
