// Package valdata transcribes the published measurements the paper
// validates against: Table 1 (Megatron-LM training times per batch on A100
// clusters), Table 2 (NVIDIA Llama-2 inference latencies on A100/H100), and
// Table 4 (the paper's own per-GEMM analysis). These are the targets our
// analytical predictions are tested against, playing exactly the role the
// published data plays in the paper's §4.
package valdata

import "optimus/internal/memfoot"

// TrainCase is one row of the paper's Table 1.
type TrainCase struct {
	// Model is the preset name.
	Model string
	// GPUs is the total device count.
	GPUs int
	// Batch is the global batch size in sequences.
	Batch int
	// DP, TP, PP are the parallel degrees; SP marks sequence parallelism.
	DP, TP, PP int
	SP         bool
	// Recompute is the activation regime of the row.
	Recompute memfoot.Recompute
	// RefSeconds is the published training time per batch (tref).
	RefSeconds float64
	// PaperPredSeconds is the paper's own prediction (tpred), recorded for
	// comparison in EXPERIMENTS.md.
	PaperPredSeconds float64
	// Group labels the table section.
	Group string
}

// Table1 returns the eleven validation rows of the paper's Table 1.
//
// The printed GPT-22B parallelism "1-8-8-1" is inconsistent with its 8-GPU
// count (1·8·8 = 64); following the 8 GPUs and the source publication, the
// row is encoded as TP=8, PP=1 (see DESIGN.md).
func Table1() []TrainCase {
	return []TrainCase{
		// Only TP and PP, full recomputation (refs from Megatron-LM [28]).
		{Model: "GPT-22B", GPUs: 8, Batch: 4, DP: 1, TP: 8, PP: 1, Recompute: memfoot.Full, RefSeconds: 1.4, PaperPredSeconds: 1.4, Group: "TP+PP"},
		{Model: "GPT-175B", GPUs: 64, Batch: 64, DP: 1, TP: 8, PP: 8, Recompute: memfoot.Full, RefSeconds: 18.1, PaperPredSeconds: 16.9, Group: "TP+PP"},
		{Model: "GPT-530B", GPUs: 280, Batch: 280, DP: 1, TP: 8, PP: 35, Recompute: memfoot.Full, RefSeconds: 49.1, PaperPredSeconds: 46.8, Group: "TP+PP"},
		{Model: "GPT-1008B", GPUs: 512, Batch: 512, DP: 1, TP: 8, PP: 64, Recompute: memfoot.Full, RefSeconds: 94.4, PaperPredSeconds: 87.9, Group: "TP+PP"},

		// TP, PP and SP, selective recomputation (refs from [14]).
		{Model: "GPT-22B", GPUs: 8, Batch: 4, DP: 1, TP: 8, PP: 1, SP: true, Recompute: memfoot.Selective, RefSeconds: 1.1, PaperPredSeconds: 1.1, Group: "TP+PP+SP"},
		{Model: "GPT-175B", GPUs: 64, Batch: 64, DP: 1, TP: 8, PP: 8, SP: true, Recompute: memfoot.Selective, RefSeconds: 13.8, PaperPredSeconds: 12.9, Group: "TP+PP+SP"},
		{Model: "GPT-530B", GPUs: 280, Batch: 280, DP: 1, TP: 8, PP: 35, SP: true, Recompute: memfoot.Selective, RefSeconds: 37.8, PaperPredSeconds: 35.5, Group: "TP+PP+SP"},
		{Model: "GPT-1008B", GPUs: 512, Batch: 512, DP: 1, TP: 8, PP: 64, SP: true, Recompute: memfoot.Selective, RefSeconds: 71.5, PaperPredSeconds: 69.1, Group: "TP+PP+SP"},

		// DP, TP and PP, full recomputation (refs from [28]).
		{Model: "GPT-310B", GPUs: 1920, Batch: 2160, DP: 15, TP: 8, PP: 16, Recompute: memfoot.Full, RefSeconds: 37.6, PaperPredSeconds: 34.1, Group: "DP+TP+PP"},
		{Model: "GPT-530B", GPUs: 2520, Batch: 2520, DP: 9, TP: 8, PP: 35, Recompute: memfoot.Full, RefSeconds: 54.2, PaperPredSeconds: 51.2, Group: "DP+TP+PP"},
		{Model: "GPT-1008B", GPUs: 3072, Batch: 3072, DP: 6, TP: 8, PP: 64, Recompute: memfoot.Full, RefSeconds: 102.4, PaperPredSeconds: 100.7, Group: "DP+TP+PP"},
	}
}

// InferCase is one row of the paper's Table 2 for one GPU type.
type InferCase struct {
	Model string
	// GPUs is the device count, equal to the TP degree.
	GPUs int
	// RefA100Ms and RefH100Ms are NVIDIA's published end-to-end latencies
	// (batch 1, 200-token prefill, 200-token generation) in milliseconds.
	RefA100Ms float64
	RefH100Ms float64
	// Paper's own predictions, for EXPERIMENTS.md.
	PaperA100Ms float64
	PaperH100Ms float64
}

// Table2 returns the paper's Table 2 rows.
func Table2() []InferCase {
	return []InferCase{
		{Model: "Llama2-70B", GPUs: 8, RefA100Ms: 4735, RefH100Ms: 3202, PaperA100Ms: 4284, PaperH100Ms: 3147},
		{Model: "Llama2-70B", GPUs: 4, RefA100Ms: 6403, RefH100Ms: 4116, PaperA100Ms: 6019, PaperH100Ms: 3986},
		{Model: "Llama2-70B", GPUs: 2, RefA100Ms: 10500, RefH100Ms: 6267, PaperA100Ms: 10042, PaperH100Ms: 6186},
		{Model: "Llama2-13B", GPUs: 8, RefA100Ms: 1693, RefH100Ms: 1201, PaperA100Ms: 1514, PaperH100Ms: 1209},
		{Model: "Llama2-13B", GPUs: 4, RefA100Ms: 1894, RefH100Ms: 1431, PaperA100Ms: 1748, PaperH100Ms: 1258},
		{Model: "Llama2-13B", GPUs: 2, RefA100Ms: 2499, RefH100Ms: 1717, PaperA100Ms: 2492, PaperH100Ms: 1617},
		{Model: "Llama2-13B", GPUs: 1, RefA100Ms: 3884, RefH100Ms: 2396, PaperA100Ms: 4263, PaperH100Ms: 2599},
		{Model: "Llama2-7B", GPUs: 8, RefA100Ms: 1187, RefH100Ms: 828, PaperA100Ms: 1096, PaperH100Ms: 899},
		{Model: "Llama2-7B", GPUs: 4, RefA100Ms: 1280, RefH100Ms: 924, PaperA100Ms: 1166, PaperH100Ms: 869},
		{Model: "Llama2-7B", GPUs: 2, RefA100Ms: 1544, RefH100Ms: 1143, PaperA100Ms: 1526, PaperH100Ms: 1016},
		{Model: "Llama2-7B", GPUs: 1, RefA100Ms: 2190, RefH100Ms: 1440, PaperA100Ms: 2472, PaperH100Ms: 1522},
	}
}

// GEMMCase is one row of the paper's Table 4 (Llama2-13B prefill, B=1,
// 200 tokens, half precision).
type GEMMCase struct {
	Function string
	// A100Us / H100Us are the paper's predicted kernel times (µs).
	A100Us, H100Us float64
	// A100Bound / H100Bound are the paper's bound classifications.
	A100Bound, H100Bound string
}

// Table4 returns the paper's Table 4 rows.
func Table4() []GEMMCase {
	return []GEMMCase{
		{Function: "merged-head X.Wkqv = K,Q,V", A100Us: 82, H100Us: 32, A100Bound: "compute", H100Bound: "memory"},
		{Function: "single-head Q.K^T = R", A100Us: 3, H100Us: 2, A100Bound: "memory", H100Bound: "memory"},
		{Function: "single-head softmax(R).V = Z", A100Us: 3, H100Us: 2, A100Bound: "memory", H100Bound: "memory"},
		{Function: "Z.W = O", A100Us: 42, H100Us: 17, A100Bound: "compute", H100Bound: "memory"},
		{Function: "O.Wmlp1 = O1", A100Us: 216, H100Us: 81, A100Bound: "compute", H100Bound: "memory"},
		{Function: "O1.Wmlp2 = O2", A100Us: 109, H100Us: 42, A100Bound: "compute", H100Bound: "memory"},
	}
}

// Fig5Speedup is the headline scaling of §5.2: ~35x from the A100-HDR
// cluster to B200-NVS-L on GPT-175B training.
const Fig5Speedup = 35.0
