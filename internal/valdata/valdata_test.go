package valdata

import "testing"

// The transcribed reference data is load-bearing for every validation
// gate; these checks pin its structure against transcription slips.

func TestTable1Structure(t *testing.T) {
	rows := Table1()
	if len(rows) != 11 {
		t.Fatalf("Table 1 has %d rows, want 11", len(rows))
	}
	for _, c := range rows {
		if c.DP*c.TP*c.PP != c.GPUs {
			t.Errorf("%s (%s): DP·TP·PP = %d ≠ %d GPUs",
				c.Model, c.Group, c.DP*c.TP*c.PP, c.GPUs)
		}
		if c.Batch%c.DP != 0 {
			t.Errorf("%s: batch %d not divisible by DP %d", c.Model, c.Batch, c.DP)
		}
		if c.RefSeconds <= 0 || c.PaperPredSeconds <= 0 {
			t.Errorf("%s: missing reference times", c.Model)
		}
		// The paper's own predictions sit within 10% of the references.
		e := c.PaperPredSeconds/c.RefSeconds - 1
		if e > 0.10 || e < -0.10 {
			t.Errorf("%s: paper error %.1f%% above 10%% — transcription slip?", c.Model, 100*e)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	rows := Table2()
	if len(rows) != 11 {
		t.Fatalf("Table 2 has %d rows, want 11", len(rows))
	}
	for _, c := range rows {
		// H100 beats A100 on every row.
		if c.RefH100Ms >= c.RefA100Ms {
			t.Errorf("%s/%d: H100 ref %.0f not below A100 %.0f",
				c.Model, c.GPUs, c.RefH100Ms, c.RefA100Ms)
		}
		if c.PaperA100Ms <= 0 || c.PaperH100Ms <= 0 {
			t.Errorf("%s/%d: missing paper predictions", c.Model, c.GPUs)
		}
	}
	// Within each model, more GPUs means lower measured latency.
	byModel := map[string][]InferCase{}
	for _, c := range rows {
		byModel[c.Model] = append(byModel[c.Model], c)
	}
	for m, cs := range byModel {
		for i := 1; i < len(cs); i++ {
			// Rows are listed largest GPU count first.
			if cs[i].GPUs >= cs[i-1].GPUs {
				t.Errorf("%s rows not in descending GPU order", m)
			}
			if cs[i].RefA100Ms <= cs[i-1].RefA100Ms {
				t.Errorf("%s: fewer GPUs should be slower on A100", m)
			}
		}
	}
}

func TestTable4Structure(t *testing.T) {
	rows := Table4()
	if len(rows) != 6 {
		t.Fatalf("Table 4 has %d rows, want 6", len(rows))
	}
	for _, c := range rows {
		if c.H100Us >= c.A100Us {
			t.Errorf("%s: H100 %.0fµs not below A100 %.0fµs", c.Function, c.H100Us, c.A100Us)
		}
		if c.H100Bound != "memory" {
			t.Errorf("%s: paper classifies every H100 GEMM as memory-bound", c.Function)
		}
	}
}

func TestFig5Anchor(t *testing.T) {
	if Fig5Speedup != 35.0 {
		t.Errorf("Fig 5 anchor = %g, want 35 (§5.2)", Fig5Speedup)
	}
}
