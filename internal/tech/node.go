package tech

import (
	"fmt"
	"math"
)

// Node identifies a logic process technology generation. The paper's §5.3
// case study sweeps seven generations, N12 down to N1.
type Node int

// Logic nodes studied in the paper, ordered oldest (largest feature) first.
const (
	N12 Node = iota
	N10
	N7
	N5
	N3
	N2
	N1
)

// Nodes lists all modeled logic nodes in scaling order.
var Nodes = []Node{N12, N10, N7, N5, N3, N2, N1}

var nodeNames = map[Node]string{
	N12: "N12", N10: "N10", N7: "N7", N5: "N5", N3: "N3", N2: "N2", N1: "N1",
}

// String returns the node's conventional short name, e.g. "N7".
func (n Node) String() string {
	if s, ok := nodeNames[n]; ok {
		return s
	}
	return fmt.Sprintf("Node(%d)", int(n))
}

// ParseNode converts a short name ("N7", "n7", "7") into a Node.
func ParseNode(s string) (Node, error) {
	for n, name := range nodeNames {
		if name == s || name[1:] == s || "n"+name[1:] == s {
			return n, nil
		}
	}
	return N12, fmt.Errorf("tech: unknown logic node %q", s)
}

// Iso-performance scaling factors between consecutive nodes, following the
// paper's §5.3 assumption (after Stillmaker & Baas): the same logic shrinks
// by 1.8x in area and 1.3x in power per generation at constant performance.
const (
	AreaScalePerStep  = 1.8
	PowerScalePerStep = 1.3
)

// Steps returns the number of scaling generations separating n from the N12
// baseline (N12 → 0, N10 → 1, ... N1 → 6).
func (n Node) Steps() int { return int(n) }

// AreaScale returns the cumulative logic-density improvement of node n
// relative to N12: identical logic occupies area/AreaScale(n).
func (n Node) AreaScale() float64 {
	return math.Pow(AreaScalePerStep, float64(n.Steps()))
}

// PowerScale returns the cumulative power-efficiency improvement of node n
// relative to N12: identical logic at identical performance consumes
// power/PowerScale(n).
func (n Node) PowerScale() float64 {
	return math.Pow(PowerScalePerStep, float64(n.Steps()))
}

// LogicParams holds the per-node quantities the µarch engine needs. The
// absolute N12 anchors are chosen so that the derived device at N7 with an
// A100-class area/power budget lands on A100-class throughput; only the
// ratios between nodes matter for the paper's scaling study.
type LogicParams struct {
	Node Node

	// CoreAreaMM2 is the silicon area of one tensor-math core (an SM-class
	// block) at this node, in mm².
	CoreAreaMM2 float64

	// CorePowerW is the power drawn by one such core running at ClockGHz.
	CorePowerW float64

	// ClockGHz is the nominal clock at this node (held ~constant across
	// nodes under iso-performance scaling; frequency gains are folded into
	// density/power by the scaling rule).
	ClockGHz float64

	// FLOPsPerCyclePerCore is the FP16 tensor throughput of one core per
	// clock cycle. Lower precisions double it per halving step.
	FLOPsPerCyclePerCore float64

	// SRAMBytesPerMM2 is on-chip SRAM density at this node.
	SRAMBytesPerMM2 float64

	// SRAMBWPerBankGBs is last-level-cache slice bandwidth per memory bank.
	SRAMBWPerBankGBs float64
}

// n12Anchor is calibrated so that LogicAt(N7) with an A100-class budget
// (826 mm², 400 W, ~108 cores' worth of compute area) reproduces A100-class
// FP16 tensor throughput (~312 TFLOPS) and L2 SRAM (~40 MB).
var n12Anchor = LogicParams{
	Node:                 N12,
	CoreAreaMM2:          9.7,    // → ~3.0 mm² at N7 (two 1.8x shrinks)
	CorePowerW:           4.7,    // → ~2.8 W at N7
	ClockGHz:             1.41,   // A100-class boost clock
	FLOPsPerCyclePerCore: 2048,   // 4 tensor cores x 256 FMA x 2 per SM-class core
	SRAMBytesPerMM2:      0.21e6, // → ~0.68 MB/mm² at N7 (A100 L2 density)
	SRAMBWPerBankGBs:     110,
}

// LogicAt returns the logic parameters for node n by applying the cumulative
// iso-performance scaling factors to the N12 anchor.
func LogicAt(n Node) LogicParams {
	p := n12Anchor
	p.Node = n
	p.CoreAreaMM2 /= n.AreaScale()
	p.CorePowerW /= n.PowerScale()
	p.SRAMBytesPerMM2 *= n.AreaScale()
	return p
}
