package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrecisionBytes(t *testing.T) {
	cases := []struct {
		p    Precision
		want float64
	}{
		{FP32, 4}, {TF32, 4}, {BF16, 2}, {FP16, 2}, {FP8, 1}, {INT8, 1}, {FP4, 0.5},
	}
	for _, c := range cases {
		if got := c.p.Bytes(); got != c.want {
			t.Errorf("%v.Bytes() = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPrecisionString(t *testing.T) {
	if FP8.String() != "fp8" {
		t.Errorf("FP8.String() = %q", FP8.String())
	}
	if Precision(99).String() == "" {
		t.Error("unknown precision should still render")
	}
}

func TestParsePrecision(t *testing.T) {
	p, err := ParsePrecision("bf16")
	if err != nil || p != BF16 {
		t.Errorf("ParsePrecision(bf16) = %v, %v", p, err)
	}
	if _, err := ParsePrecision("fp128"); err == nil {
		t.Error("expected error for unknown precision")
	}
}

func TestNodeOrdering(t *testing.T) {
	if len(Nodes) != 7 {
		t.Fatalf("expected 7 nodes, got %d", len(Nodes))
	}
	for i := 1; i < len(Nodes); i++ {
		if Nodes[i].Steps() != Nodes[i-1].Steps()+1 {
			t.Errorf("nodes not in scaling order at %v", Nodes[i])
		}
	}
}

func TestNodeScaling(t *testing.T) {
	if got := N12.AreaScale(); got != 1 {
		t.Errorf("N12 area scale = %g, want 1", got)
	}
	// N7 is two steps from N12: 1.8^2 = 3.24.
	if got := N7.AreaScale(); math.Abs(got-3.24) > 1e-9 {
		t.Errorf("N7 area scale = %g, want 3.24", got)
	}
	if got := N7.PowerScale(); math.Abs(got-1.69) > 1e-9 {
		t.Errorf("N7 power scale = %g, want 1.69", got)
	}
	// Scaling must be monotone: later nodes always denser, more efficient.
	for i := 1; i < len(Nodes); i++ {
		if Nodes[i].AreaScale() <= Nodes[i-1].AreaScale() {
			t.Errorf("area scale not increasing at %v", Nodes[i])
		}
		if Nodes[i].PowerScale() <= Nodes[i-1].PowerScale() {
			t.Errorf("power scale not increasing at %v", Nodes[i])
		}
	}
}

func TestParseNode(t *testing.T) {
	for _, s := range []string{"N7", "7", "n7"} {
		n, err := ParseNode(s)
		if err != nil || n != N7 {
			t.Errorf("ParseNode(%q) = %v, %v", s, n, err)
		}
	}
	if _, err := ParseNode("N99"); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestLogicAtScalesCoreArea(t *testing.T) {
	base := LogicAt(N12)
	n7 := LogicAt(N7)
	wantArea := base.CoreAreaMM2 / 3.24
	if math.Abs(n7.CoreAreaMM2-wantArea) > 1e-9 {
		t.Errorf("N7 core area = %g, want %g", n7.CoreAreaMM2, wantArea)
	}
	wantPower := base.CorePowerW / 1.69
	if math.Abs(n7.CorePowerW-wantPower) > 1e-9 {
		t.Errorf("N7 core power = %g, want %g", n7.CorePowerW, wantPower)
	}
	if n7.ClockGHz != base.ClockGHz {
		t.Error("clock should be iso-performance constant across nodes")
	}
	if n7.SRAMBytesPerMM2 <= base.SRAMBytesPerMM2 {
		t.Error("SRAM density should improve with scaling")
	}
}

func TestDRAMSpecsOrdered(t *testing.T) {
	// Bandwidth must be non-decreasing in the declared generation order,
	// except HBM4 which the paper projects at 3.3 TB/s (below HBM3e).
	specs := []DRAMTech{GDDR6, HBM2, HBM2E, HBM3, HBM3Fast, HBM3E}
	for i := 1; i < len(specs); i++ {
		if specs[i].Spec().PeakBW <= specs[i-1].Spec().PeakBW {
			t.Errorf("%v BW not above %v", specs[i], specs[i-1])
		}
	}
	if HBMX.Spec().PeakBW != 6.8e12 {
		t.Errorf("HBMX BW = %g, want 6.8e12", HBMX.Spec().PeakBW)
	}
}

func TestDRAMPaperPoints(t *testing.T) {
	// The §5.3 sweep quotes HBM2 1 TB/s, HBM2e 1.9, HBM3 2.6, HBM4 3.3.
	cases := []struct {
		d    DRAMTech
		want float64
	}{
		{HBM2, 1.0e12}, {HBM2E, 1.9e12}, {HBM3, 2.6e12}, {HBM4, 3.3e12},
		{GDDR6, 600e9}, {HBM3Fast, 3.35e12}, {HBM3E, 4.8e12},
	}
	for _, c := range cases {
		if got := c.d.Spec().PeakBW; got != c.want {
			t.Errorf("%v peak BW = %g, want %g", c.d, got, c.want)
		}
	}
}

func TestParseDRAM(t *testing.T) {
	d, err := ParseDRAM("HBM2e")
	if err != nil || d != HBM2E {
		t.Errorf("ParseDRAM(HBM2e) = %v, %v", d, err)
	}
	if _, err := ParseDRAM("ddr3"); err == nil {
		t.Error("expected error for unknown DRAM tech")
	}
}

func TestNetworkPaperPoints(t *testing.T) {
	cases := []struct {
		n    NetworkTech
		want float64
	}{
		{IBHDR, 200e9}, {IBNDR, 400e9},
		{IBNDRx8, 100e9}, {IBXDRx8, 200e9}, {IBGDRx8, 400e9},
		{NVLink3, 300e9}, {NVLink4, 450e9}, {NVLink5, 900e9},
	}
	for _, c := range cases {
		if got := c.n.Spec().BW; got != c.want {
			t.Errorf("%v BW = %g, want %g", c.n, got, c.want)
		}
	}
}

func TestNetworkPerNodeFlag(t *testing.T) {
	if !IBHDR.Spec().PerNode {
		t.Error("InfiniBand bandwidth is quoted per node")
	}
	if NVLink4.Spec().PerNode {
		t.Error("NVLink bandwidth is quoted per GPU")
	}
}

func TestParseNetwork(t *testing.T) {
	n, err := ParseNetwork("NV4")
	if err != nil || n != NVLink4 {
		t.Errorf("ParseNetwork(NV4) = %v, %v", n, err)
	}
	if _, err := ParseNetwork("token-ring"); err == nil {
		t.Error("expected error for unknown network tech")
	}
}

func TestStringRoundTrips(t *testing.T) {
	for _, d := range DRAMTechs {
		got, err := ParseDRAM(d.String())
		if err != nil || got != d {
			t.Errorf("DRAM round trip failed for %v: %v, %v", d, got, err)
		}
	}
}

// Property: cumulative area scale equals the product of per-step factors.
func TestAreaScaleCompositionProperty(t *testing.T) {
	f := func(stepSeed uint8) bool {
		n := Node(int(stepSeed) % len(Nodes))
		want := 1.0
		for i := 0; i < n.Steps(); i++ {
			want *= AreaScalePerStep
		}
		return math.Abs(n.AreaScale()-want) < 1e-9*want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
