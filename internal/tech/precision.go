// Package tech is the technology layer of the Optimus model: numeric
// precision formats, logic process nodes with published scaling factors,
// DRAM (off-chip memory) generations, and interconnect generations. The
// µarch engine and the architecture abstraction layer consume these tables
// to derive the coarse quantities — compute throughput, bandwidths,
// capacities — that drive the performance prediction engine (paper §3.1,
// §3.6, §5.3, §6.2).
package tech

import "fmt"

// Precision is a numeric datatype used for tensor math and storage.
type Precision int

// Supported precisions. Mixed-precision training in the paper stores model
// state in FP16/BF16 (2 bytes) and performs GEMMs in the densest tensor-core
// format the device supports (FP8 on Hopper, FP4 on Blackwell).
const (
	FP32 Precision = iota
	TF32
	BF16
	FP16
	FP8
	FP4
	INT8
)

var precisionNames = map[Precision]string{
	FP32: "fp32", TF32: "tf32", BF16: "bf16", FP16: "fp16",
	FP8: "fp8", FP4: "fp4", INT8: "int8",
}

// String returns the lower-case conventional name of the format.
func (p Precision) String() string {
	if s, ok := precisionNames[p]; ok {
		return s
	}
	return fmt.Sprintf("precision(%d)", int(p))
}

// Bytes returns the storage size of one element in this format. FP4 occupies
// half a byte; the model works in float64 so fractional bytes are exact.
func (p Precision) Bytes() float64 {
	switch p {
	case FP32, TF32:
		return 4
	case BF16, FP16:
		return 2
	case FP8, INT8:
		return 1
	case FP4:
		return 0.5
	default:
		return 4
	}
}

// ParsePrecision converts a conventional name (case-sensitive, lower-case)
// into a Precision.
func ParsePrecision(s string) (Precision, error) {
	for p, name := range precisionNames {
		if name == s {
			return p, nil
		}
	}
	return FP32, fmt.Errorf("tech: unknown precision %q", s)
}
