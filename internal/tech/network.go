package tech

import "fmt"

// NetworkTech identifies an interconnect generation, either intra-node
// (NVLink family) or inter-node (InfiniBand family / NVLink Switch System).
type NetworkTech int

// Modeled interconnect generations. Bandwidths follow the paper:
// HDR IB 200 GB/s and NDR IB 400 GB/s per node (§5.2); the §5.3 sweep uses
// NDR-x8 (100 GB/s), XDR-x8 (200 GB/s), GDR-x8 (400 GB/s); NVLink3/4/5 are
// the per-GPU intra-node fabrics of A100/H100/B200; NVS extends NVLink
// bandwidth across nodes (§5.2).
const (
	IBHDR NetworkTech = iota
	IBNDR
	IBNDRx8
	IBXDRx8
	IBGDRx8
	NVLink3
	NVLink4
	NVLink5
	NVSwitchH // NVLink Switch System at Hopper generation
	NVSwitchB // NVLink Switch System at Blackwell generation
)

// NetworkSpec is one interconnect generation's headline numbers.
type NetworkSpec struct {
	Tech NetworkTech
	Name string

	// BW is the unidirectional bandwidth in B/s. For NVLink it is per-GPU
	// aggregate; for InfiniBand it is per-node aggregate (the paper quotes
	// node-level IB numbers).
	BW float64

	// Latency is the per-hop transfer latency in seconds, the `l` of the
	// paper's Eq. (3)/(4). It folds wire, switch and software launch costs
	// visible to a collective step.
	Latency float64

	// PerNode reports whether BW is a node-level aggregate (InfiniBand)
	// rather than per-GPU (NVLink).
	PerNode bool
}

var netSpecs = map[NetworkTech]NetworkSpec{
	IBHDR:     {IBHDR, "HDR-IB", 200e9, 5e-6, true},
	IBNDR:     {IBNDR, "NDR-IB", 400e9, 5e-6, true},
	IBNDRx8:   {IBNDRx8, "NDR-x8", 100e9, 5e-6, true},
	IBXDRx8:   {IBXDRx8, "XDR-x8", 200e9, 5e-6, true},
	IBGDRx8:   {IBGDRx8, "GDR-x8", 400e9, 5e-6, true},
	NVLink3:   {NVLink3, "NVLink3", 300e9, 1.75e-6, false},
	NVLink4:   {NVLink4, "NVLink4", 450e9, 1.6e-6, false},
	NVLink5:   {NVLink5, "NVLink5", 900e9, 1.5e-6, false},
	NVSwitchH: {NVSwitchH, "NVS(H)", 450e9, 1.8e-6, false},
	NVSwitchB: {NVSwitchB, "NVS(B)", 900e9, 1.7e-6, false},
}

// Spec returns the generation's headline numbers.
func (n NetworkTech) Spec() NetworkSpec { return netSpecs[n] }

// String returns the conventional generation name, e.g. "NDR-IB".
func (n NetworkTech) String() string {
	if s, ok := netSpecs[n]; ok {
		return s.Name
	}
	return fmt.Sprintf("NetworkTech(%d)", int(n))
}

// ParseNetwork converts a generation name into a NetworkTech.
func ParseNetwork(s string) (NetworkTech, error) {
	aliases := map[string]NetworkTech{
		"hdr": IBHDR, "hdr-ib": IBHDR,
		"ndr": IBNDR, "ndr-ib": IBNDR,
		"ndr-x8": IBNDRx8, "xdr-x8": IBXDRx8, "gdr-x8": IBGDRx8,
		"nvlink3": NVLink3, "nv3": NVLink3,
		"nvlink4": NVLink4, "nv4": NVLink4,
		"nvlink5": NVLink5, "nv5": NVLink5,
		"nvs-h": NVSwitchH, "nvs": NVSwitchH, "nvs-b": NVSwitchB,
	}
	if t, ok := aliases[lower(s)]; ok {
		return t, nil
	}
	return IBHDR, fmt.Errorf("tech: unknown network technology %q", s)
}
