package tech

import "fmt"

// DRAMTech identifies an off-chip memory technology generation. The
// bandwidth points are the ones the paper quotes in §5.2, §5.3 and §6.2.
type DRAMTech int

// Modeled DRAM generations ordered by peak bandwidth.
const (
	GDDR6 DRAMTech = iota
	HBM2
	HBM2E
	HBM3
	HBM3Fast // the H100 SXM HBM3 stack (3.35 TB/s) vs. the generic 2.6 TB/s point
	HBM3E
	HBM4
	HBMX // futuristic node from §6.2 (6.8 TB/s)
)

// DRAMTechs lists all modeled DRAM generations in bandwidth order.
var DRAMTechs = []DRAMTech{GDDR6, HBM2, HBM2E, HBM3, HBM3Fast, HBM3E, HBM4, HBMX}

// DRAMSpec is one generation's headline numbers.
type DRAMSpec struct {
	Tech DRAMTech
	Name string

	// PeakBW is the per-device peak bandwidth in B/s.
	PeakBW float64

	// StackCapacity is the typical per-device capacity in bytes at this
	// generation (used when deriving devices in the DSE; vendor presets
	// override it).
	StackCapacity float64

	// AccessEnergyPJPerBit approximates access energy (pJ/bit), used by the
	// DSE power accounting.
	AccessEnergyPJPerBit float64
}

var dramSpecs = map[DRAMTech]DRAMSpec{
	GDDR6:    {GDDR6, "GDDR6", 600e9, 24e9, 7.0},
	HBM2:     {HBM2, "HBM2", 1.0e12, 32e9, 3.9},
	HBM2E:    {HBM2E, "HBM2e", 1.9e12, 80e9, 3.5},
	HBM3:     {HBM3, "HBM3", 2.6e12, 96e9, 3.0},
	HBM3Fast: {HBM3Fast, "HBM3(SXM)", 3.35e12, 80e9, 3.0},
	HBM3E:    {HBM3E, "HBM3e", 4.8e12, 141e9, 2.7},
	HBM4:     {HBM4, "HBM4", 3.3e12, 192e9, 2.5},
	HBMX:     {HBMX, "HBMX", 6.8e12, 256e9, 2.0},
}

// Spec returns the generation's headline numbers.
func (d DRAMTech) Spec() DRAMSpec { return dramSpecs[d] }

// String returns the conventional generation name, e.g. "HBM2e".
func (d DRAMTech) String() string {
	if s, ok := dramSpecs[d]; ok {
		return s.Name
	}
	return fmt.Sprintf("DRAMTech(%d)", int(d))
}

// ParseDRAM converts a generation name (case-insensitive on the vendor
// spellings used in the paper) into a DRAMTech.
func ParseDRAM(s string) (DRAMTech, error) {
	aliases := map[string]DRAMTech{
		"gddr6": GDDR6, "gdr6": GDDR6,
		"hbm2": HBM2, "hbm2e": HBM2E,
		"hbm3": HBM3, "hbm3-sxm": HBM3Fast, "hbm3fast": HBM3Fast, "hbm3(sxm)": HBM3Fast,
		"hbm3e": HBM3E, "hbm4": HBM4, "hbmx": HBMX,
	}
	if t, ok := aliases[lower(s)]; ok {
		return t, nil
	}
	return HBM2, fmt.Errorf("tech: unknown DRAM technology %q", s)
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
