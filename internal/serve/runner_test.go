package serve

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// TestRunnerReuseMatchesFresh is the pooling pin: a Runner recycled across
// a rate × KV-cap × policy × seed grid — specs of different policies,
// budgets and arrival processes flowing through ONE set of slabs — must
// reproduce a fresh Run byte-identically (reflect.DeepEqual and marshalled
// JSON). Each spec runs through the pooled Runner twice: the second pass
// hits the warm-pricing path (unchanged coster key keeps the cached
// tables), which must also be byte-identical.
func TestRunnerReuseMatchesFresh(t *testing.T) {
	base := spec0(t)
	base.Requests = 48
	_, perRequest := base.kvBudget()

	type tcase struct {
		name string
		spec Spec
	}
	var cases []tcase
	for _, rate := range []float64{0.5, 4} {
		for _, seed := range []int64{1, 7} {
			for _, kvCap := range []float64{0, 8 * perRequest} {
				s := base
				s.Rate, s.Seed, s.KVCapacity = rate, seed, kvCap
				cases = append(cases, tcase{
					fmt.Sprintf("reserve/rate=%g/seed=%d/tight=%v", rate, seed, kvCap > 0), s})
				p := s
				p.Policy = Paged
				cases = append(cases, tcase{
					fmt.Sprintf("paged/rate=%g/seed=%d/tight=%v", rate, seed, kvCap > 0), p})
			}
		}
	}
	// Disaggregated: a genuinely split two-device deployment with a KV
	// budget tight enough to migrate and preempt.
	dis := splitSpec(t)
	for _, seed := range []int64{1, 7} {
		d := dis
		d.Seed = seed
		cases = append(cases, tcase{fmt.Sprintf("disagg/seed=%d", seed), d})
	}
	// Closed loop: the completion-driven arrival path grows the request
	// slab mid-step — the reuse-hostile shape.
	cl := base
	cl.Arrival, cl.Rate, cl.Clients = ClosedLoop, 0, 8
	cases = append(cases, tcase{"closed-loop", cl})
	// Multi-tenant mix: exercises the map-based tenant breakdown (the
	// single-tenant fast path must not leak into it).
	mx := base
	mx.Rate = 2
	mx.PromptTokens, mx.GenTokens = 0, 0
	mx.Mix = []TenantLoad{
		{Tenant: "chat", Share: 0.7, PromptTokens: 150, GenTokens: 100},
		{Tenant: "batch", Share: 0.3, PromptTokens: 400, GenTokens: 50},
	}
	cases = append(cases, tcase{"mix", mx})
	// Prefix cache: the interned-registry state (slots, refcounts,
	// residency) must rebuild identically on a recycled Runner.
	pf := base
	pf.Policy, pf.Rate, pf.PrefixTokens = Paged, 4, 64
	pf.KVCapacity = 8 * perRequest
	cases = append(cases, tcase{"prefix", pf})
	// Tiered KV: host-tier occupancy and pending swap time are per-run
	// state the pool must fully reset.
	tk := pf
	tk.HostKVBytes, tk.SwapGBps = 4*perRequest, 8
	cases = append(cases, tcase{"prefix+tiered", tk})
	// Prefixed multi-tenant mix: two tenants sharing one prefix id plus a
	// private one, through the pooled slabs.
	pm := base
	pm.Policy, pm.Rate = Paged, 2
	pm.KVCapacity = 8 * perRequest
	pm.PromptTokens, pm.GenTokens = 0, 0
	pm.Mix = []TenantLoad{
		{Tenant: "chat", Share: 0.6, PromptTokens: 150, GenTokens: 100, PrefixID: "sys", PrefixTokens: 48},
		{Tenant: "code", Share: 0.3, PromptTokens: 400, GenTokens: 50, PrefixID: "sys", PrefixTokens: 48},
		{Tenant: "raw", Share: 0.1, PromptTokens: 200, GenTokens: 50},
	}
	cases = append(cases, tcase{"prefix-mix", pm})

	rn := NewRunner()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := Run(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			for pass, label := range []string{"cold", "warm"} {
				pooled, err := rn.Run(tc.spec)
				if err != nil {
					t.Fatalf("pooled %s run: %v", label, err)
				}
				if !reflect.DeepEqual(fresh, pooled) {
					t.Errorf("pooled %s (pass %d) result diverges from fresh Run", label, pass)
				}
				jf, err := json.Marshal(fresh)
				if err != nil {
					t.Fatal(err)
				}
				jp, err := json.Marshal(pooled)
				if err != nil {
					t.Fatal(err)
				}
				if string(jf) != string(jp) {
					t.Errorf("pooled %s (pass %d) JSON diverges from fresh Run", label, pass)
				}
			}
		})
	}
}

// TestRunnerInstanceMatchesNewInstance pins the steppable-replica side of
// the pooling seam: a Runner re-armed as an Instance — after having run
// full simulations — must reproduce a fresh NewInstance byte-identically
// over the same push sequence.
func TestRunnerInstanceMatchesNewInstance(t *testing.T) {
	s := spec0(t)
	s.Rate, s.Requests = 2.0, 48
	capSpec, times, shapes := capacityOf(t, s)

	drive := func(t *testing.T, in *Instance) Result {
		t.Helper()
		for i, at := range times {
			in.AdvanceTo(at)
			if err := in.Push(shapes[i], at); err != nil {
				t.Fatal(err)
			}
		}
		in.Drain()
		res, err := in.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fresh, err := NewInstance(capSpec, shapes)
	if err != nil {
		t.Fatal(err)
	}
	want := drive(t, fresh)

	rn := NewRunner()
	// Dirty the Runner's slabs with a full simulation first: the re-armed
	// instance must not see any of it.
	if _, err := rn.Run(s); err != nil {
		t.Fatal(err)
	}
	pooled, err := rn.Instance(capSpec, shapes)
	if err != nil {
		t.Fatal(err)
	}
	got := drive(t, pooled)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("pooled instance result diverges from fresh NewInstance")
	}
	jw, _ := json.Marshal(want)
	jg, _ := json.Marshal(got)
	if string(jw) != string(jg) {
		t.Errorf("pooled instance JSON diverges from fresh NewInstance")
	}
}
