package serve

import (
	"math"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/tech"
)

// fuzzBase builds the fixed model/system the spec fuzzers mutate around.
func fuzzBase(f *testing.F) Spec {
	f.Helper()
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		f.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		f.Fatal(err)
	}
	return Spec{
		Model: cfg, System: sys, TP: 1, Precision: tech.FP16,
		Arrival: Poisson,
	}
}

// FuzzSpecValidate is the satellite fuzz gate on the new policy fields:
// Validate must never panic on any field combination, and whenever it
// accepts a spec, the policy must report a single request as feasible —
// Run may never start a simulation whose lone request cannot fit. The
// f.Add corpus doubles as a regression suite under plain `go test`.
func FuzzSpecValidate(f *testing.F) {
	base := fuzzBase(f)

	// policy, pageTokens, noPreempt, rate, clients, requests, maxBatch,
	// kvCapacity, prompt, gen, tp, arrival
	f.Add(int8(0), 0, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0))     // baseline reserve
	f.Add(int8(1), 0, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0))     // baseline paged
	f.Add(int8(1), 16, true, 2.0, 0, 16, 4, 0.0, 200, 200, 1, int8(0))     // paged no-preempt
	f.Add(int8(1), -3, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0))    // negative page size
	f.Add(int8(1), 1<<30, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0)) // page beyond context
	f.Add(int8(0), 16, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0))    // page size under reserve
	f.Add(int8(0), 0, true, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0))      // no-preempt under reserve
	f.Add(int8(2), 0, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0))     // unknown policy
	f.Add(int8(1), 8, false, 1.0, 0, 16, 0, 1e6, 200, 200, 1, int8(0))     // budget below one request
	f.Add(int8(1), 8, false, math.NaN(), 0, 16, 0, 0.0, 200, 200, 1, int8(0))
	f.Add(int8(0), 0, false, 1.0, 0, 2, 0, 1e30, 200, 200, 1, int8(0)) // huge finite budget
	f.Add(int8(0), 0, false, 1.0, 0, 2, 0, math.Inf(1), 200, 200, 1, int8(0))
	f.Add(int8(1), 8, false, 0.0, 4, 16, 0, 0.0, 200, 200, 1, int8(1)) // closed loop
	f.Add(int8(1), 8, false, 1.0, 0, -1, -1, -1.0, 0, 0, 4, int8(7))   // garbage everything

	f.Fuzz(func(t *testing.T, policy int8, pageTokens int, noPreempt bool,
		rate float64, clients, requests, maxBatch int, kvCapacity float64,
		prompt, gen, tp int, arrival int8) {
		s := base
		s.Policy = Policy(policy)
		s.PageTokens = pageTokens
		s.NoPreempt = noPreempt
		s.Rate = rate
		s.Clients = clients
		s.Requests = requests
		s.MaxBatch = maxBatch
		s.KVCapacity = kvCapacity
		s.PromptTokens = prompt
		s.GenTokens = gen
		s.TP = tp
		s.Arrival = Arrival(arrival)

		err := s.Validate() // must not panic, whatever the fields
		if err != nil {
			return
		}
		if !Feasible(s) {
			t.Fatalf("Validate accepted a spec whose single request cannot fit: %+v", s)
		}
		// An accepted spec must simulate: run a truncated simulation when
		// it is cheap enough to finish instantly, and require that it
		// never errors and completes every request.
		if s.Requests > 0 && s.Requests <= 8 && s.GenTokens <= 64 && s.PromptTokens <= 4096 {
			res, runErr := Run(s)
			if runErr != nil {
				t.Fatalf("validated spec failed to run: %v (%+v)", runErr, s)
			}
			if res.Requests != s.Requests {
				t.Fatalf("run completed %d of %d requests (%+v)", res.Requests, s.Requests, s)
			}
		}
	})
}

// FuzzPagedGeometry: whatever page size and budget a spec asks for, the
// derived geometry must stay internally consistent — the page size never
// exceeds the context, a feasible pool covers one full context, and the
// derived batch cap respects the user's.
func FuzzPagedGeometry(f *testing.F) {
	base := fuzzBase(f)
	f.Add(16, 0.0, 0, 200, 200)
	f.Add(1, 1e9, 4, 50, 1)
	f.Add(1<<30, 5e8, 1, 1, 1)
	f.Add(7, 3.3e8, 100, 333, 77)
	f.Fuzz(func(t *testing.T, pageTokens int, kvCapacity float64, maxBatch, prompt, gen int) {
		s := base
		s.Policy = Paged
		s.PageTokens = pageTokens
		s.KVCapacity = kvCapacity
		s.MaxBatch = maxBatch
		s.PromptTokens = prompt
		s.GenTokens = gen
		s.Rate = 1
		if s.Validate() != nil {
			return
		}
		pol := newPolicy(s.withDefaults())
		pt, total := pol.PageGeometry()
		if pt < 1 || pt > prompt+gen {
			t.Fatalf("page size %d outside [1, %d]", pt, prompt+gen)
		}
		if total < 1 {
			t.Fatalf("feasible paged spec has an empty page pool")
		}
		full := (prompt + gen + pt - 1) / pt
		if full > total {
			t.Fatalf("feasible spec: full context needs %d pages of a %d-page pool", full, total)
		}
		if cap := pol.BatchCap(); maxBatch > 0 && cap > maxBatch {
			t.Fatalf("derived batch cap %d exceeds the user's %d", cap, maxBatch)
		}
	})
}
