package serve

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/tech"
)

// fuzzBase builds the fixed model/system the spec fuzzers mutate around.
func fuzzBase(f *testing.F) Spec {
	f.Helper()
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		f.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		f.Fatal(err)
	}
	return Spec{
		Model: cfg, System: sys, TP: 1, Precision: tech.FP16,
		Arrival: Poisson,
	}
}

// FuzzSpecValidate is the satellite fuzz gate on the new policy fields:
// Validate must never panic on any field combination, and whenever it
// accepts a spec, the policy must report a single request as feasible —
// Run may never start a simulation whose lone request cannot fit. The
// f.Add corpus doubles as a regression suite under plain `go test`.
func FuzzSpecValidate(f *testing.F) {
	base := fuzzBase(f)

	// policy, pageTokens, noPreempt, rate, clients, requests, maxBatch,
	// kvCapacity, prompt, gen, tp, arrival, prefillDevs, decodeDevs,
	// transferGBps
	f.Add(int8(0), 0, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0)     // baseline reserve
	f.Add(int8(1), 0, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0)     // baseline paged
	f.Add(int8(1), 16, true, 2.0, 0, 16, 4, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0)     // paged no-preempt
	f.Add(int8(1), -3, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0)    // negative page size
	f.Add(int8(1), 1<<30, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0) // page beyond context
	f.Add(int8(0), 16, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0)    // page size under reserve
	f.Add(int8(0), 0, true, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0)      // no-preempt under reserve
	f.Add(int8(3), 0, false, 1.0, 0, 16, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0)     // unknown policy
	f.Add(int8(1), 8, false, 1.0, 0, 16, 0, 1e6, 200, 200, 1, int8(0), 0, 0, 0.0)     // budget below one request
	f.Add(int8(1), 8, false, math.NaN(), 0, 16, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0)
	f.Add(int8(0), 0, false, 1.0, 0, 2, 0, 1e30, 200, 200, 1, int8(0), 0, 0, 0.0) // huge finite budget
	f.Add(int8(0), 0, false, 1.0, 0, 2, 0, math.Inf(1), 200, 200, 1, int8(0), 0, 0, 0.0)
	f.Add(int8(1), 8, false, 0.0, 4, 16, 0, 0.0, 200, 200, 1, int8(1), 0, 0, 0.0) // closed loop
	f.Add(int8(1), 8, false, 1.0, 0, -1, -1, -1.0, 0, 0, 4, int8(7), 0, 0, 0.0)   // garbage everything
	f.Add(int8(2), 0, false, 1.0, 0, 8, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 0.0)  // disagg defaults
	f.Add(int8(2), 16, false, 1.0, 0, 8, 0, 0.0, 200, 200, 1, int8(0), 1, 1, math.Inf(1))
	f.Add(int8(2), 0, false, 1.0, 0, 8, 0, 0.0, 200, 200, 1, int8(0), 3, 1, 50.0)  // pool beyond TP
	f.Add(int8(2), 0, false, 1.0, 0, 8, 0, 0.0, 200, 200, 1, int8(0), 0, 0, -5.0)  // negative bandwidth
	f.Add(int8(0), 0, false, 1.0, 0, 8, 0, 0.0, 200, 200, 1, int8(0), 1, 1, 50.0)  // pools under reserve
	f.Add(int8(1), 0, false, 1.0, 0, 8, 0, 0.0, 200, 200, 1, int8(0), 0, 0, 50.0)  // bandwidth under paged
	f.Add(int8(2), 0, false, 1.0, 0, 8, 0, 2.2e9, 200, 200, 1, int8(0), 1, 1, 1.0) // tight split pools

	f.Fuzz(func(t *testing.T, policy int8, pageTokens int, noPreempt bool,
		rate float64, clients, requests, maxBatch int, kvCapacity float64,
		prompt, gen, tp int, arrival int8, prefillDevs, decodeDevs int, transferGBps float64) {
		s := base
		s.Policy = Policy(policy)
		s.PageTokens = pageTokens
		s.NoPreempt = noPreempt
		s.Rate = rate
		s.Clients = clients
		s.Requests = requests
		s.MaxBatch = maxBatch
		s.KVCapacity = kvCapacity
		s.PromptTokens = prompt
		s.GenTokens = gen
		s.TP = tp
		s.Arrival = Arrival(arrival)
		s.PrefillDevices = prefillDevs
		s.DecodeDevices = decodeDevs
		s.TransferGBps = transferGBps

		err := s.Validate() // must not panic, whatever the fields
		if err != nil {
			return
		}
		if !Feasible(s) {
			t.Fatalf("Validate accepted a spec whose single request cannot fit: %+v", s)
		}
		// An accepted spec must simulate: run a truncated simulation when
		// it is cheap enough to finish instantly, and require that it
		// never errors and completes every request.
		if s.Requests > 0 && s.Requests <= 8 && s.GenTokens <= 64 && s.PromptTokens <= 4096 {
			res, runErr := Run(s)
			if runErr != nil {
				t.Fatalf("validated spec failed to run: %v (%+v)", runErr, s)
			}
			if res.Requests != s.Requests {
				t.Fatalf("run completed %d of %d requests (%+v)", res.Requests, s.Requests, s)
			}
		}
	})
}

// FuzzMixRoundTrip is the satellite gate on tenant-name hygiene: any mix
// ValidateMix accepts must survive FormatMix → ParseMix unchanged. The
// rendering is the sweep CSV's workload column and the CLI's axis syntax,
// so an ambiguous rendering silently aliases two distinct workloads. The
// corpus seeds the pre-fix collision — tenant "a:1:2:3,b" validated, yet
// its one-tenant mix rendered identically to a two-tenant one, so this
// harness failed until ValidateMix learned to reject separator-bearing
// (and whitespace-padded) names.
func FuzzMixRoundTrip(f *testing.F) {
	f.Add("chat", 0.7, 200, 200, "batch", 0.3, 900, 80)
	f.Add("a:1:2:3,b", 1.0, 2, 3, "c", 1.0, 100, 10) // the old FormatMix collision
	f.Add("a,b", 1.0, 100, 10, "c", 1.0, 100, 10)    // comma alone shears the join
	f.Add(" padded", 1.0, 100, 10, "x", 1.0, 100, 10)
	f.Add("padded ", 1.0, 100, 10, "x", 1.0, 100, 10)
	f.Add("dup", 1.0, 100, 10, "dup", 2.0, 50, 5)
	f.Fuzz(func(t *testing.T, n1 string, s1 float64, p1, g1 int, n2 string, s2 float64, p2, g2 int) {
		mix := []TenantLoad{
			{Tenant: n1, Share: s1, PromptTokens: p1, GenTokens: g1},
			{Tenant: n2, Share: s2, PromptTokens: p2, GenTokens: g2},
		}
		if ValidateMix(mix) != nil {
			return
		}
		rendered := FormatMix(mix)
		back, err := ParseMix(rendered)
		if err != nil {
			t.Fatalf("validated mix failed to round-trip %q: %v", rendered, err)
		}
		if !reflect.DeepEqual(back, mix) {
			t.Fatalf("rendering %q is ambiguous: %+v parsed back as %+v", rendered, mix, back)
		}
	})
}

// FuzzTraceRoundTrip is the trace gate: ParseTrace must never panic on
// arbitrary bytes — malformed prefix or session columns included — and
// any trace it accepts must survive FormatTrace → ParseTrace unchanged in
// whichever schema FormatTrace picked. The corpus seeds all three schemas
// (v1 four-column, v2 prefix, v3 session-cohort), the BOM and CRLF
// byte-order variants, and the malformed rows that must fail cleanly.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("arrival,tenant,prompt,gen\n0.0,chat,100,40\n0.5,,900,80\n")
	f.Add("0.0,chat,100,40\n1.5,chat,120,30\n")
	f.Add("arrival,tenant,prompt,gen,prefix_id,prefix_tokens\n0,chat,100,40,sys,30\n1,code,200,50,sys,30\n")
	f.Add("0,chat,100,40,sys,30\n0.5,raw,200,50,,0\n")
	f.Add("\xef\xbb\xbfarrival,tenant,prompt,gen\r\n0.0,chat,100,40\r\n")
	f.Add("\xef\xbb\xbf0,chat,100,40,sys,30\r\n")
	f.Add("0.0,chat,100,40,sys,x\n")                      // malformed prefix length
	f.Add("0.0,chat,100,40,sys,100\n")                    // prefix swallows the prompt
	f.Add("0.0,chat,100,40,sys,-3\n")                     // negative prefix
	f.Add("0,chat,100,40,sys,20\n1,chat,100,40,sys,30\n") // inconsistent prefix length
	f.Add("0,chat,100,40,sys,20\n1,chat,100,40\n")        // column drift
	f.Add("\xef\xbb")                                     // truncated BOM
	f.Add("arrival,tenant,prompt,gen,prefix_id,prefix_tokens,session,turn\n" +
		"0,chat,100,10,,0,1,1\n1,chat,210,10,~s1,110,1,2\n2,chat,320,10,~s1,220,1,3\n")
	f.Add("0,chat,100,10,,0,1,1\n1,chat,210,10,~s1,110,1,2\n")
	f.Add("0,chat,100,10,,0,,\n")                                   // empty session columns
	f.Add("0,chat,100,10,,0,x,1\n")                                 // malformed session
	f.Add("0,chat,100,10,,0,1,y\n")                                 // malformed turn
	f.Add("0,chat,100,10,,0,1,0\n")                                 // turn without session pair
	f.Add("0,chat,100,10,,0,-1,1\n")                                // negative session
	f.Add("0,chat,300,10,~s1,200,1,2\n1,chat,300,10,~s1,100,1,3\n") // shrinking session prefix
	f.Add("\xef\xbb\xbf0,chat,100,10,,0,1,1\r\n1,chat,210,10,~s1,110,1,2\r\n")
	f.Fuzz(func(t *testing.T, raw string) {
		trace, err := ParseTrace(strings.NewReader(raw)) // must not panic
		if err != nil {
			return
		}
		var b strings.Builder
		if err := FormatTrace(&b, trace); err != nil {
			t.Fatalf("accepted trace failed to render: %v (%+v)", err, trace)
		}
		back, err := ParseTrace(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("accepted trace failed to round-trip %q: %v", b.String(), err)
		}
		if !reflect.DeepEqual(back, trace) {
			t.Fatalf("rendering %q is ambiguous: %+v parsed back as %+v", b.String(), trace, back)
		}
	})
}

// FuzzPagedGeometry: whatever page size and budget a spec asks for, the
// derived geometry must stay internally consistent — the page size never
// exceeds the context, a feasible pool covers one full context, and the
// derived batch cap respects the user's.
func FuzzPagedGeometry(f *testing.F) {
	base := fuzzBase(f)
	f.Add(16, 0.0, 0, 200, 200)
	f.Add(1, 1e9, 4, 50, 1)
	f.Add(1<<30, 5e8, 1, 1, 1)
	f.Add(7, 3.3e8, 100, 333, 77)
	f.Fuzz(func(t *testing.T, pageTokens int, kvCapacity float64, maxBatch, prompt, gen int) {
		s := base
		s.Policy = Paged
		s.PageTokens = pageTokens
		s.KVCapacity = kvCapacity
		s.MaxBatch = maxBatch
		s.PromptTokens = prompt
		s.GenTokens = gen
		s.Rate = 1
		if s.Validate() != nil {
			return
		}
		pol := newPolicy(s.withDefaults())
		pt, total := pol.PageGeometry()
		if pt < 1 || pt > prompt+gen {
			t.Fatalf("page size %d outside [1, %d]", pt, prompt+gen)
		}
		if total < 1 {
			t.Fatalf("feasible paged spec has an empty page pool")
		}
		full := (prompt + gen + pt - 1) / pt
		if full > total {
			t.Fatalf("feasible spec: full context needs %d pages of a %d-page pool", full, total)
		}
		if cap := pol.BatchCap(); maxBatch > 0 && cap > maxBatch {
			t.Fatalf("derived batch cap %d exceeds the user's %d", cap, maxBatch)
		}
	})
}
