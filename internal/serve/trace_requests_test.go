package serve

import (
	"strings"
	"testing"
)

// traceOf builds a small well-formed trace against spec0's capacity.
func traceOf() []TraceEvent {
	return []TraceEvent{
		{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 120, GenTokens: 20}},
		{Arrival: 0.5, Request: Request{Tenant: "b", PromptTokens: 80, GenTokens: 30}},
		{Arrival: 2.0, Request: Request{Tenant: "a", PromptTokens: 200, GenTokens: 10}},
	}
}

// clearWorkload strips spec0's generated-workload fields so a trace can be
// attached (the CLI does the same before replay).
func clearWorkload(s *Spec) {
	s.PromptTokens, s.GenTokens = 0, 0
	s.Rate, s.Requests, s.Seed = 0, 0, 0
}

// TestTraceRequestsDerivedInAllEntryPaths: the CLI zeroes spec.Requests for
// -trace and relies on withDefaults deriving it from the event count before
// validateShape checks Requests == len(Trace). That derivation must hold
// for every entry path a library caller can take — Run, Validate, and
// Feasible — not just the CLI's.
func TestTraceRequestsDerivedInAllEntryPaths(t *testing.T) {
	s := spec0(t)
	clearWorkload(&s)
	s.Trace = traceOf()

	if err := s.Validate(); err != nil {
		t.Errorf("Validate with derived trace request count: %v", err)
	}
	if !Feasible(s) {
		t.Error("Feasible with derived trace request count should hold")
	}
	res, err := Run(s)
	if err != nil {
		t.Fatalf("Run with derived trace request count: %v", err)
	}
	if res.Requests != len(s.Trace) {
		t.Errorf("completed %d requests, want the trace's %d", res.Requests, len(s.Trace))
	}

	// An explicit matching count is equivalent; a mismatched one is the
	// pinned "leave it zero" rejection.
	s.Requests = len(s.Trace)
	if _, err := Run(s); err != nil {
		t.Errorf("explicit matching request count: %v", err)
	}
	s.Requests = len(s.Trace) + 1
	if _, err := Run(s); err == nil || !strings.Contains(err.Error(), "leave it zero") {
		t.Errorf("mismatched trace request count: got %v", err)
	}
}

// TestEmptyTraceRejected: a non-nil zero-event trace must fail loudly in
// every entry path. Pre-fix it fell through the len(Trace) > 0 guards to
// the mix path and silently simulated the spec-wide generated workload —
// the opposite of what a caller handing over a (mistakenly empty) replay
// asked for. This test fails against that behavior: Run would succeed.
func TestEmptyTraceRejected(t *testing.T) {
	s := spec0(t)
	s.Trace = []TraceEvent{} // non-nil, zero events; generated-workload fields still set

	if _, err := Run(s); err == nil || !strings.Contains(err.Error(), "empty trace") {
		t.Errorf("Run with empty non-nil trace: got %v, want an empty-trace rejection", err)
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "empty trace") {
		t.Errorf("Validate with empty non-nil trace: got %v, want an empty-trace rejection", err)
	}

	// Even with the generated-workload fields cleared — nothing to fall
	// back to — the error must name the empty trace, not the missing mix.
	clearWorkload(&s)
	s.Trace = []TraceEvent{}
	if _, err := Run(s); err == nil || !strings.Contains(err.Error(), "empty trace") {
		t.Errorf("Run with only an empty trace: got %v, want an empty-trace rejection", err)
	}
}
