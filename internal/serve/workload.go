package serve

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// DefaultTenant names the tenant of the degenerate single-tenant workload
// the spec-wide PromptTokens/GenTokens fields describe. Trace rows with an
// empty tenant column parse to it too, so a length-only trace and the
// spec-wide fields land in the same per-tenant bucket.
const DefaultTenant = "default"

// Request is one serving request's shape: who issued it and how many
// prompt and generation tokens it carries. The simulator prices every
// admission, decode step and KV allocation off these per-request fields —
// the spec-wide Spec.PromptTokens/GenTokens are just the degenerate
// single-tenant case.
type Request struct {
	Tenant       string
	PromptTokens int
	GenTokens    int

	// PrefixID names a shared prompt prefix: requests carrying the same id
	// share their leading PrefixTokens prompt tokens (a common system
	// prompt), and the paged admission policy caches that prefix's KV so a
	// hit charges pages and prefill for the non-shared suffix only.
	// PrefixTokens must leave at least one non-shared prompt token; zero
	// PrefixTokens (with or without an id) is the degenerate no-prefix
	// request, byte-identical to the pre-prefix behavior.
	PrefixID     string
	PrefixTokens int
}

// context is the request's full KV span.
func (r Request) context() int { return r.PromptTokens + r.GenTokens }

// TenantLoad is one tenant's contribution to a generated workload mix: a
// relative share of the arrival rate (shares are weights — they need not
// sum to 1) and the prompt/generation shape of its requests.
type TenantLoad struct {
	Tenant       string
	Share        float64
	PromptTokens int
	GenTokens    int

	// PrefixID/PrefixTokens mark the leading PrefixTokens prompt tokens of
	// every request this entry generates as a shared prefix (see
	// Request.PrefixID). Distinct entries may share one PrefixID — with one
	// consistent PrefixTokens — to model tenants issuing the same system
	// prompt.
	PrefixID     string
	PrefixTokens int
}

// request converts the load entry to the shape its requests carry.
func (t TenantLoad) request() Request {
	return Request{
		Tenant: t.Tenant, PromptTokens: t.PromptTokens, GenTokens: t.GenTokens,
		PrefixID: t.PrefixID, PrefixTokens: t.PrefixTokens,
	}
}

// TraceEvent is one replayed request: an absolute arrival time plus its
// shape. A trace fixes the whole arrival process, so specs carrying one
// leave Arrival/Rate/Clients unset.
type TraceEvent struct {
	Arrival float64
	Request
}

// validateTenantName rejects names that would corrupt rendered workload
// artifacts: FormatMix joins entries with ',' and fields with ':'
// unescaped, so a tenant name carrying either separator lets two distinct
// workloads render to one identical token — the sweep's CSV mix column
// and memoized workload fingerprints would then silently alias the wrong
// cached result. Leading/trailing whitespace is rejected too: ParseMix
// trims it, so such a name can never round-trip through its own
// rendering.
func validateTenantName(name string) error {
	if name == "" {
		return fmt.Errorf("empty tenant name")
	}
	// Two IndexByte scans, not ContainsAny: this runs on every
	// Instance.Push, and ContainsAny's rune machinery is measurable there.
	if strings.IndexByte(name, ':') >= 0 || strings.IndexByte(name, ',') >= 0 {
		return fmt.Errorf("tenant name %q contains a mix separator (':' and ',' are reserved)", name)
	}
	if name != strings.TrimSpace(name) {
		return fmt.Errorf("tenant name %q carries leading or trailing whitespace", name)
	}
	return nil
}

// validatePrefix checks one request shape's shared-prefix fields: a
// non-negative prefix that leaves at least one non-shared prompt token (the
// prefill pass must always have a suffix to price), a PrefixID whenever the
// prefix is non-empty, and an id that survives the mix/trace renderings
// (validateTenantName's separator rules). A zero-token prefix with an id is
// legal — it is the degenerate no-prefix request the equivalence tests pin.
func validatePrefix(prefixID string, prefixTokens, promptTokens int) error {
	if prefixTokens < 0 {
		return fmt.Errorf("negative prefix length %d", prefixTokens)
	}
	if prefixTokens > 0 && prefixTokens >= promptTokens {
		return fmt.Errorf("prefix of %d tokens must leave at least one non-shared prompt token (prompt is %d)",
			prefixTokens, promptTokens)
	}
	if prefixTokens > 0 && prefixID == "" {
		return fmt.Errorf("a %d-token prefix needs a PrefixID", prefixTokens)
	}
	if prefixID != "" {
		if err := validateTenantName(prefixID); err != nil {
			return fmt.Errorf("prefix id: %w", err)
		}
	}
	return nil
}

// prefixConsistency folds one shape's prefix into the id→length map shared
// by ValidateMix and ValidateTrace: a PrefixID names one concrete token
// sequence, so every shape carrying it must agree on its length.
func prefixConsistency(seen map[string]int, prefixID string, prefixTokens int) (map[string]int, error) {
	if prefixID == "" {
		return seen, nil
	}
	if seen == nil {
		seen = make(map[string]int, 4)
	}
	if prev, ok := seen[prefixID]; ok && prev != prefixTokens {
		return seen, fmt.Errorf("prefix %q spans %d tokens in one shape and %d in another — a shared prefix has one length",
			prefixID, prev, prefixTokens)
	}
	seen[prefixID] = prefixTokens
	return seen, nil
}

// ValidateMix checks a workload mix: non-empty, unique separator-free
// tenant names, positive finite shares, and at least one prompt and one
// generated token per tenant. Shared by serve.Spec and the sweep grid
// validation.
func ValidateMix(mix []TenantLoad) error {
	if len(mix) == 0 {
		return fmt.Errorf("serve: empty workload mix")
	}
	seen := make(map[string]bool, len(mix))
	var prefixes map[string]int
	for _, t := range mix {
		if err := validateTenantName(t.Tenant); err != nil {
			return fmt.Errorf("serve: mix entry: %w", err)
		}
		if seen[t.Tenant] {
			return fmt.Errorf("serve: duplicate mix tenant %q", t.Tenant)
		}
		seen[t.Tenant] = true
		if !(t.Share > 0) || math.IsInf(t.Share, 0) {
			return fmt.Errorf("serve: tenant %q needs a positive finite share, got %g", t.Tenant, t.Share)
		}
		if t.PromptTokens < 1 {
			return fmt.Errorf("serve: tenant %q needs a positive prompt length, got %d", t.Tenant, t.PromptTokens)
		}
		if t.GenTokens < 1 {
			return fmt.Errorf("serve: tenant %q needs at least one generated token, got %d", t.Tenant, t.GenTokens)
		}
		if err := validatePrefix(t.PrefixID, t.PrefixTokens, t.PromptTokens); err != nil {
			return fmt.Errorf("serve: tenant %q: %w", t.Tenant, err)
		}
		var err error
		if prefixes, err = prefixConsistency(prefixes, t.PrefixID, t.PrefixTokens); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	return nil
}

// ValidateTrace checks a replay trace: non-empty, finite non-negative
// arrival times in non-decreasing order, and a well-formed shape per
// event. Shared by serve.Spec and the sweep grid validation.
func ValidateTrace(trace []TraceEvent) error {
	if len(trace) == 0 {
		return fmt.Errorf("serve: empty trace")
	}
	prev := 0.0
	var prefixes map[string]int
	for i, ev := range trace {
		if !(ev.Arrival >= prev) || math.IsInf(ev.Arrival, 0) {
			return fmt.Errorf("serve: trace event %d: arrival %g not finite and non-decreasing (previous %g)",
				i, ev.Arrival, prev)
		}
		prev = ev.Arrival
		if err := validateTenantName(ev.Tenant); err != nil {
			return fmt.Errorf("serve: trace event %d: %w", i, err)
		}
		if ev.PromptTokens < 1 {
			return fmt.Errorf("serve: trace event %d needs a positive prompt length, got %d", i, ev.PromptTokens)
		}
		if ev.GenTokens < 1 {
			return fmt.Errorf("serve: trace event %d needs at least one generated token, got %d", i, ev.GenTokens)
		}
		if err := validatePrefix(ev.PrefixID, ev.PrefixTokens, ev.PromptTokens); err != nil {
			return fmt.Errorf("serve: trace event %d: %w", i, err)
		}
		var err error
		if prefixes, err = prefixConsistency(prefixes, ev.PrefixID, ev.PrefixTokens); err != nil {
			return fmt.Errorf("serve: trace event %d: %w", i, err)
		}
	}
	return nil
}

// MixContext returns the largest prompt+generation context any mix tenant
// can reach — the bound KV geometry and page-size canonicalization use.
func MixContext(mix []TenantLoad) int {
	max := 0
	for _, t := range mix {
		if c := t.PromptTokens + t.GenTokens; c > max {
			max = c
		}
	}
	return max
}

// TraceContext returns the largest prompt+generation context of a trace.
func TraceContext(trace []TraceEvent) int {
	max := 0
	for _, ev := range trace {
		if c := ev.context(); c > max {
			max = c
		}
	}
	return max
}

// ParseMix parses the CLI mix syntax: comma-separated
// "tenant:share:prompt:gen" entries, e.g.
// "chat:0.7:200:200,batch:0.3:2000:100". A fifth field marks the entry's
// leading prompt tokens as a shared prefix ("chat:0.7:200:200:120" — the
// prefix id defaults to the tenant name), and a sixth names the prefix id
// explicitly so distinct tenants can share one prefix
// ("a:1:200:200:120:sys,b:1:300:100:120:sys").
func ParseMix(s string) ([]TenantLoad, error) {
	var out []TenantLoad
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.Split(tok, ":")
		if len(parts) < 4 || len(parts) > 6 {
			return nil, fmt.Errorf("serve: mix entry %q: want tenant:share:prompt:gen[:prefix[:prefix-id]]", tok)
		}
		share, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("serve: mix entry %q: bad share: %w", tok, err)
		}
		prompt, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("serve: mix entry %q: bad prompt length: %w", tok, err)
		}
		gen, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("serve: mix entry %q: bad generation length: %w", tok, err)
		}
		t := TenantLoad{Tenant: parts[0], Share: share, PromptTokens: prompt, GenTokens: gen}
		if len(parts) >= 5 {
			t.PrefixTokens, err = strconv.Atoi(parts[4])
			if err != nil {
				return nil, fmt.Errorf("serve: mix entry %q: bad prefix length: %w", tok, err)
			}
			if t.PrefixTokens > 0 {
				t.PrefixID = t.Tenant
			}
			if len(parts) == 6 {
				t.PrefixID = parts[5]
			}
		}
		out = append(out, t)
	}
	if err := ValidateMix(out); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatMix renders a mix back into the ParseMix syntax — the canonical
// one-token rendering the sweep writers use. Prefix-free entries keep the
// four-field form, so every pre-prefix rendering (and the fingerprints
// derived from it) is unchanged.
func FormatMix(mix []TenantLoad) string {
	parts := make([]string, len(mix))
	for i, t := range mix {
		switch {
		case t.PrefixID == "" && t.PrefixTokens == 0:
			parts[i] = fmt.Sprintf("%s:%g:%d:%d", t.Tenant, t.Share, t.PromptTokens, t.GenTokens)
		case t.PrefixID == t.Tenant && t.PrefixTokens > 0:
			parts[i] = fmt.Sprintf("%s:%g:%d:%d:%d", t.Tenant, t.Share, t.PromptTokens, t.GenTokens, t.PrefixTokens)
		default:
			parts[i] = fmt.Sprintf("%s:%g:%d:%d:%d:%s", t.Tenant, t.Share, t.PromptTokens, t.GenTokens, t.PrefixTokens, t.PrefixID)
		}
	}
	return strings.Join(parts, ",")
}

// ParseTrace reads a serving trace in CSV form: one request per row as
// "arrival,tenant,prompt,gen" (v1) or
// "arrival,tenant,prompt,gen,prefix_id,prefix_tokens" (v2), with an
// optional header row (detected by a non-numeric first field). Every row
// carries the column count of the first, so the schema version is fixed
// per file. An empty tenant column maps to DefaultTenant; an empty
// prefix_id with a non-zero prefix_tokens defaults to the row's tenant
// (the ParseMix rule). A leading UTF-8 byte-order mark is stripped —
// spreadsheet exports routinely prepend one, and it would otherwise glue
// onto the first header field (a U+FEFF-prefixed "arrival") and defeat the header
// detection. The parsed trace is validated (finite sorted arrivals,
// positive shapes, consistent prefixes).
func ParseTrace(r io.Reader) ([]TraceEvent, error) {
	br := bufio.NewReader(r)
	if b, err := br.Peek(3); err == nil && b[0] == 0xEF && b[1] == 0xBB && b[2] == 0xBF {
		br.Discard(3)
	}
	cr := csv.NewReader(br)
	// 0: the first row fixes the column count (4 or 6, checked below) and
	// every later row must match it.
	cr.FieldsPerRecord = 0
	cr.TrimLeadingSpace = true
	var out []TraceEvent
	for row := 0; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("serve: trace row %d: %w", row, err)
		}
		for i := range rec {
			rec[i] = strings.TrimSpace(rec[i])
		}
		if row == 0 {
			if len(rec) != 4 && len(rec) != 6 {
				return nil, fmt.Errorf("serve: trace row 0 has %d columns, want 4 (arrival,tenant,prompt,gen) or 6 (…,prefix_id,prefix_tokens)", len(rec))
			}
			_, arrErr := strconv.ParseFloat(rec[0], 64)
			_, promptErr := strconv.Atoi(rec[2])
			// A header is non-numeric across the board; a data row whose
			// arrival alone is malformed must fail loudly below rather
			// than vanish as a misdetected header.
			if arrErr != nil && promptErr != nil {
				continue // header row
			}
		}
		arrival, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("serve: trace row %d: bad arrival time: %w", row, err)
		}
		prompt, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("serve: trace row %d: bad prompt length: %w", row, err)
		}
		gen, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("serve: trace row %d: bad generation length: %w", row, err)
		}
		tenant := rec[1]
		if tenant == "" {
			tenant = DefaultTenant
		}
		ev := TraceEvent{
			Arrival: arrival,
			Request: Request{Tenant: tenant, PromptTokens: prompt, GenTokens: gen},
		}
		if len(rec) == 6 {
			ev.PrefixID = rec[4]
			if rec[5] != "" {
				ev.PrefixTokens, err = strconv.Atoi(rec[5])
				if err != nil {
					return nil, fmt.Errorf("serve: trace row %d: bad prefix length: %w", row, err)
				}
			}
			if ev.PrefixID == "" && ev.PrefixTokens > 0 {
				ev.PrefixID = tenant
			}
		}
		out = append(out, ev)
	}
	if err := ValidateTrace(out); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatTrace renders a trace back into ParseTrace's CSV form with a
// header row: the six-column v2 schema when any event carries a prefix
// field, the four-column v1 schema otherwise (so pre-prefix traces render
// exactly as before). For a valid trace,
// ParseTrace(FormatTrace(t)) == t — the round-trip the trace-v2 fuzz
// harness pins.
func FormatTrace(w io.Writer, trace []TraceEvent) error {
	v2 := false
	for _, ev := range trace {
		if ev.PrefixID != "" || ev.PrefixTokens != 0 {
			v2 = true
			break
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"arrival", "tenant", "prompt", "gen"}
	if v2 {
		header = append(header, "prefix_id", "prefix_tokens")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("serve: format trace: %w", err)
	}
	rec := make([]string, 0, 6)
	for _, ev := range trace {
		rec = append(rec[:0],
			strconv.FormatFloat(ev.Arrival, 'g', -1, 64),
			ev.Tenant,
			strconv.Itoa(ev.PromptTokens),
			strconv.Itoa(ev.GenTokens),
		)
		if v2 {
			rec = append(rec, ev.PrefixID, strconv.Itoa(ev.PrefixTokens))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("serve: format trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("serve: format trace: %w", err)
	}
	return nil
}

// shapeSeedSalt decorrelates the tenant-assignment stream from the arrival
// stream, which is seeded with the raw Spec.Seed. Without it the two
// rand.Sources would start in identical states.
const shapeSeedSalt = 0x2545F4914F6CDD1D

// mixShapes deterministically assigns each arrival index its request
// shape. A single-tenant mix takes the draw-free fast path, so the
// degenerate spec-wide workload leaves the arrival process's random stream
// untouched — the PR-3 byte-identity guarantee. Multi-tenant mixes draw
// tenants, weighted by share, from a second independently seeded stream.
func mixShapes(mix []TenantLoad, n int, seed int64) []Request {
	return appendMixShapes(nil, mix, n, seed)
}

// appendMixShapes is mixShapes into a reusable buffer — the Runner
// pooling seam.
func appendMixShapes(dst []Request, mix []TenantLoad, n int, seed int64) []Request {
	if len(mix) == 1 {
		sh := mix[0].request()
		for i := 0; i < n; i++ {
			dst = append(dst, sh)
		}
		return dst
	}
	total := 0.0
	for _, t := range mix {
		total += t.Share
	}
	rng := rand.New(rand.NewSource(seed ^ shapeSeedSalt))
	for i := 0; i < n; i++ {
		x := rng.Float64() * total
		k := 0
		for k < len(mix)-1 {
			x -= mix[k].Share
			if x < 0 {
				break
			}
			k++
		}
		dst = append(dst, mix[k].request())
	}
	return dst
}

// shapeBounds are the extreme request shapes of one workload, derived once
// per simulation: the step-cost engine is configured at the largest prompt
// and generation, the KV geometry at the largest context, and the derived
// batch caps at the smallest (a cap is an upper bound on concurrency — the
// per-request admission math is the real gate).
type shapeBounds struct {
	minPrompt, maxPrompt   int
	maxGen                 int
	minContext, maxContext int
}

// boundsOf folds one request shape into the running bounds.
func (b *shapeBounds) fold(first bool, prompt, gen int) {
	c := prompt + gen
	if first {
		*b = shapeBounds{minPrompt: prompt, maxPrompt: prompt, maxGen: gen, minContext: c, maxContext: c}
		return
	}
	if prompt < b.minPrompt {
		b.minPrompt = prompt
	}
	if prompt > b.maxPrompt {
		b.maxPrompt = prompt
	}
	if gen > b.maxGen {
		b.maxGen = gen
	}
	if c < b.minContext {
		b.minContext = c
	}
	if c > b.maxContext {
		b.maxContext = c
	}
}

// bounds resolves the workload's shape bounds: the trace's when replaying,
// the mix's when generating, and the spec-wide fields when neither is set
// (validation paths that run before withDefaults fills the degenerate mix).
func (s Spec) bounds() shapeBounds {
	var b shapeBounds
	switch {
	case len(s.Trace) > 0:
		for i, ev := range s.Trace {
			b.fold(i == 0, ev.PromptTokens, ev.GenTokens)
		}
	case len(s.Mix) > 0:
		for i, t := range s.Mix {
			b.fold(i == 0, t.PromptTokens, t.GenTokens)
		}
	default:
		b.fold(true, s.PromptTokens, s.GenTokens)
	}
	return b
}

// uniform reports whether every request spans one common context length,
// which lets the reservation policy keep the PR-3 multiply-by-count float
// path (bit-identical for the degenerate workload) instead of summing.
func (b shapeBounds) uniform() bool { return b.minContext == b.maxContext }
