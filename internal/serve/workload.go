package serve

import (
	"io"

	"optimus/internal/workload"
)

// The workload vocabulary — request shapes, mixes, traces, schedules —
// lives in internal/workload so the simulator, the fleet router and the
// sweep engine consume one seeded, deterministic generation seam. The
// serve-level names are aliases and thin wrappers: every existing caller
// (and the public optimus re-exports) keeps compiling and behaving
// byte-identically.

// DefaultTenant names the tenant of the degenerate single-tenant workload
// the spec-wide PromptTokens/GenTokens fields describe (see
// workload.DefaultTenant).
const DefaultTenant = workload.DefaultTenant

// Request is one serving request's shape; see workload.Request.
type Request = workload.Request

// TenantLoad is one tenant's contribution to a generated workload mix;
// see workload.TenantLoad.
type TenantLoad = workload.TenantLoad

// TraceEvent is one replayed request; see workload.TraceEvent.
type TraceEvent = workload.TraceEvent

// Schedule is a piecewise-constant arrival-rate timeline; see
// workload.Schedule.
type Schedule = workload.Schedule

// validateTenantName rejects names that would corrupt rendered workload
// artifacts; see workload.ValidateTenantName.
func validateTenantName(name string) error { return workload.ValidateTenantName(name) }

// validatePrefix checks one request shape's shared-prefix fields; see
// workload.ValidatePrefix.
func validatePrefix(prefixID string, prefixTokens, promptTokens int) error {
	return workload.ValidatePrefix(prefixID, prefixTokens, promptTokens)
}

// ValidateMix checks a workload mix; see workload.ValidateMix.
func ValidateMix(mix []TenantLoad) error { return workload.ValidateMix(mix) }

// ValidateTrace checks a replay trace; see workload.ValidateTrace.
func ValidateTrace(trace []TraceEvent) error { return workload.ValidateTrace(trace) }

// MixContext returns the largest prompt+generation context any mix tenant
// can reach; see workload.MixContext.
func MixContext(mix []TenantLoad) int { return workload.MixContext(mix) }

// TraceContext returns the largest prompt+generation context of a trace;
// see workload.TraceContext.
func TraceContext(trace []TraceEvent) int { return workload.TraceContext(trace) }

// ParseMix parses the CLI mix syntax; see workload.ParseMix.
func ParseMix(s string) ([]TenantLoad, error) { return workload.ParseMix(s) }

// FormatMix renders a mix back into the ParseMix syntax; see
// workload.FormatMix.
func FormatMix(mix []TenantLoad) string { return workload.FormatMix(mix) }

// ParseTrace reads a serving trace in CSV form (v1/v2/v3 schemas); see
// workload.ParseTrace.
func ParseTrace(r io.Reader) ([]TraceEvent, error) { return workload.ParseTrace(r) }

// FormatTrace renders a trace back into ParseTrace's CSV form; see
// workload.FormatTrace.
func FormatTrace(w io.Writer, trace []TraceEvent) error { return workload.FormatTrace(w, trace) }

// mixShapes deterministically assigns each arrival index its request
// shape; see workload.AppendMixShapes.
func mixShapes(mix []TenantLoad, n int, seed int64) []Request {
	return appendMixShapes(nil, mix, n, seed)
}

// appendMixShapes is mixShapes into a reusable buffer — the Runner
// pooling seam.
func appendMixShapes(dst []Request, mix []TenantLoad, n int, seed int64) []Request {
	return workload.AppendMixShapes(dst, mix, n, seed)
}

// shapeBounds are the extreme request shapes of one workload, derived once
// per simulation: the step-cost engine is configured at the largest prompt
// and generation, the KV geometry at the largest context, and the derived
// batch caps at the smallest (a cap is an upper bound on concurrency — the
// per-request admission math is the real gate).
type shapeBounds struct {
	minPrompt, maxPrompt   int
	maxGen                 int
	minContext, maxContext int
}

// boundsOf folds one request shape into the running bounds.
func (b *shapeBounds) fold(first bool, prompt, gen int) {
	c := prompt + gen
	if first {
		*b = shapeBounds{minPrompt: prompt, maxPrompt: prompt, maxGen: gen, minContext: c, maxContext: c}
		return
	}
	if prompt < b.minPrompt {
		b.minPrompt = prompt
	}
	if prompt > b.maxPrompt {
		b.maxPrompt = prompt
	}
	if gen > b.maxGen {
		b.maxGen = gen
	}
	if c < b.minContext {
		b.minContext = c
	}
	if c > b.maxContext {
		b.maxContext = c
	}
}

// bounds resolves the workload's shape bounds: the trace's when replaying,
// the mix's when generating, and the spec-wide fields when neither is set
// (validation paths that run before withDefaults fills the degenerate mix).
// Heavy-tailed mix entries fold both clamp corners, and session cohorts
// fold the largest turn's context-grown prompt — the extremes are knowable
// from the spec alone (workload.HeavyTailCap bounds every draw), so the
// step-cost engine and KV geometry never see a shape they were not
// configured for.
func (s Spec) bounds() shapeBounds {
	var b shapeBounds
	switch {
	case len(s.Trace) > 0:
		for i, ev := range s.Trace {
			b.fold(i == 0, ev.PromptTokens, ev.GenTokens)
		}
	case len(s.Mix) > 0:
		turns := s.Turns
		if turns < 1 {
			turns = 1
		}
		for i, t := range s.Mix {
			pmin, pmax := t.PromptBounds()
			gmin, gmax := t.GenBounds()
			// Session turn k's prompt carries (k-1)·(P+G) prior context;
			// the largest turn of the largest draw bounds the workload.
			pmaxTurn := (turns-1)*(pmax+gmax) + pmax
			b.fold(i == 0, pmin, gmin)
			if pmaxTurn != pmin || gmax != gmin {
				b.fold(false, pmaxTurn, gmax)
			}
		}
	default:
		b.fold(true, s.PromptTokens, s.GenTokens)
	}
	return b
}

// uniform reports whether every request spans one common context length,
// which lets the reservation policy keep the PR-3 multiply-by-count float
// path (bit-identical for the degenerate workload) instead of summing.
func (b shapeBounds) uniform() bool { return b.minContext == b.maxContext }
