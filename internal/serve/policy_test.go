package serve

import (
	"encoding/json"
	"math"
	"reflect"
	"runtime"
	"testing"

	"optimus/internal/memfoot"
	"optimus/internal/model"
)

// stripPolicyIdentity zeroes the fields that name the admission policy
// rather than describe the simulated behavior, so a degenerate paged run
// can be compared byte for byte against a ReserveFull run. Preemption
// counters are deliberately kept: the degenerate configuration must not
// preempt, so they must match (at zero) too.
func stripPolicyIdentity(r Result) Result {
	r.Policy = 0
	r.PageTokens = 0
	r.KVPagesTotal = 0
	r.PeakKVPages = 0
	return r
}

// TestPagedDegenerateMatchesReserveFull is the tentpole equivalence gate:
// the paged policy with PageTokens covering the full prompt+generation
// context and preemption disabled is block-granular reservation, and must
// reproduce the PR-2 reservation simulator byte-identically — same seeds,
// all percentiles, per-request timelines, peak KV — across a grid of
// arrival rates and batch caps. A second pass leaves preemption enabled:
// with one page per full context it can never trigger, so the results
// must still be identical.
func TestPagedDegenerateMatchesReserveFull(t *testing.T) {
	base := spec0(t)
	for _, rate := range []float64{0.25, 1, 2.5, 5} {
		for _, batchCap := range []int{0, 3, 16} {
			for _, seed := range []int64{1, 7} {
				reserve := base
				reserve.Rate, reserve.MaxBatch, reserve.Seed = rate, batchCap, seed
				want, err := Run(reserve)
				if err != nil {
					t.Fatal(err)
				}
				for _, noPreempt := range []bool{true, false} {
					paged := reserve
					paged.Policy = Paged
					paged.PageTokens = paged.PromptTokens + paged.GenTokens
					paged.NoPreempt = noPreempt
					got, err := Run(paged)
					if err != nil {
						t.Fatal(err)
					}
					if got.Preemptions != 0 || got.RecomputedTokens != 0 {
						t.Fatalf("rate=%g cap=%d: degenerate paged run preempted (%d evictions)",
							rate, batchCap, got.Preemptions)
					}
					if got.KVPagesTotal == 0 || got.PageTokens != paged.PageTokens {
						t.Fatalf("rate=%g cap=%d: paged geometry not reported: %+v",
							rate, batchCap, got)
					}
					stripped := stripPolicyIdentity(got)
					if !reflect.DeepEqual(stripped, want) {
						t.Fatalf("rate=%g cap=%d seed=%d noPreempt=%v: degenerate paged result diverges from reservation",
							rate, batchCap, seed, noPreempt)
					}
					ja, _ := json.Marshal(stripped)
					jb, _ := json.Marshal(want)
					if string(ja) != string(jb) {
						t.Fatalf("rate=%g cap=%d seed=%d noPreempt=%v: JSON encodings differ",
							rate, batchCap, seed, noPreempt)
					}
				}
			}
		}
	}
}

// pressureSpec is a paged configuration whose KV budget holds only a
// handful of full contexts under saturating load, so block growth must
// preempt.
func pressureSpec(t *testing.T) Spec {
	s := spec0(t)
	_, perRequest := s.kvBudget()
	s.Policy = Paged
	s.Rate = 5
	s.Requests = 48
	s.KVCapacity = 6 * perRequest
	return s
}

// TestPagedPreemptsUnderPressure: with a tight page pool and saturating
// load the paged policy must evict (counting the discarded tokens), yet
// every request still completes with a causally ordered timeline, and the
// per-request eviction counts must reconcile with the totals.
func TestPagedPreemptsUnderPressure(t *testing.T) {
	s := pressureSpec(t)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatal("pressure spec should preempt; tighten the test's KV budget")
	}
	if res.RecomputedTokens == 0 {
		t.Error("preemptions of decoding requests must discard generated tokens")
	}
	if res.Requests != s.Requests {
		t.Fatalf("completed %d of %d requests despite preemption", res.Requests, s.Requests)
	}
	sum := 0
	for _, m := range res.PerRequest {
		sum += m.Preemptions
		if m.Admitted < m.Arrival || m.FirstToken <= m.Admitted || m.Done < m.FirstToken {
			t.Errorf("request %d timeline out of order: %+v", m.ID, m)
		}
		if m.TTFT != m.FirstToken-m.Arrival || m.E2E != m.Done-m.Arrival {
			t.Errorf("request %d derived metrics inconsistent: %+v", m.ID, m)
		}
	}
	if sum != res.Preemptions {
		t.Errorf("per-request preemptions sum to %d, result says %d", sum, res.Preemptions)
	}
	// Preemption must cost simulated time: the eviction stall plus the
	// recompute prefill (billed over prompt AND regenerated tokens) land
	// in Done-FirstToken, so preempted requests decode strictly slower on
	// average than untouched ones in the same run.
	var evictedTPOT, smoothTPOT float64
	var evicted, smooth int
	for _, m := range res.PerRequest {
		if m.Preemptions > 0 {
			evictedTPOT += m.TPOT
			evicted++
		} else {
			smoothTPOT += m.TPOT
			smooth++
		}
	}
	if evicted == 0 || smooth == 0 {
		t.Fatalf("pressure run should mix preempted (%d) and untouched (%d) requests", evicted, smooth)
	}
	if evictedTPOT/float64(evicted) <= smoothTPOT/float64(smooth) {
		t.Errorf("preempted requests should pay for their recompute: mean TPOT %g (evicted) vs %g (untouched)",
			evictedTPOT/float64(evicted), smoothTPOT/float64(smooth))
	}
	if res.PeakKVPages > res.KVPagesTotal {
		t.Errorf("peak pages %d exceed the pool of %d", res.PeakKVPages, res.KVPagesTotal)
	}
	if res.PeakKVBytes > res.KVCapacity*(1+1e-12) {
		t.Errorf("peak KV %g exceeds budget %g", res.PeakKVBytes, res.KVCapacity)
	}

	// The same load with preemption disabled must never evict — admission
	// reserves full-context pages instead.
	s.NoPreempt = true
	safe, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if safe.Preemptions != 0 || safe.RecomputedTokens != 0 {
		t.Errorf("NoPreempt run evicted: %+v", safe)
	}
	if safe.PeakBatch > res.PeakBatch {
		t.Errorf("full-context page reservation should admit no more than growth+preemption: reserve %d vs paged %d",
			safe.PeakBatch, res.PeakBatch)
	}
}

// TestPagedAdmitsMoreThanReservation: on a long-generation workload with
// a small KV budget, admission on the prompt's pages alone must reach a
// higher concurrency — the vLLM observation that full-context reservation
// is wildly pessimistic — and convert it into throughput.
func TestPagedAdmitsMoreThanReservation(t *testing.T) {
	s := spec0(t)
	s.PromptTokens = 100
	s.GenTokens = 400
	s.Rate = 4
	s.Requests = 48
	_, perRequest := s.kvBudget()
	s.KVCapacity = 8 * perRequest

	reserve, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Policy = Paged
	paged, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if paged.PeakBatch <= reserve.PeakBatch {
		t.Errorf("paged admission should batch more sequences: reserve peak %d, paged peak %d",
			reserve.PeakBatch, paged.PeakBatch)
	}
	if paged.ThroughputRPS <= reserve.ThroughputRPS {
		t.Errorf("paged admission should lift saturated throughput: reserve %g rps, paged %g rps",
			reserve.ThroughputRPS, paged.ThroughputRPS)
	}
	if paged.PageTokens != DefaultPageTokens {
		t.Errorf("zero PageTokens should resolve to the default %d, got %d",
			DefaultPageTokens, paged.PageTokens)
	}
}

// TestKVConservationInvariant is the instrumented-hook property test:
// at every iteration, the pages the running set holds must be covered by
// the pages the policy has committed, the commitment must never exceed
// the pool or the byte budget, and — whenever preemption is the safety
// valve — held and committed must coincide exactly. Includes iterations
// that preempt.
func TestKVConservationInvariant(t *testing.T) {
	for name, c := range map[string]struct {
		mutate func(*Spec)
		// reserves marks variants whose admissions commit full contexts
		// they have not filled yet (NoPreempt), where held < committed is
		// legitimate.
		reserves bool
	}{
		"reserve":          {mutate: func(s *Spec) { s.Policy = ReserveFull; s.KVCapacity = 0 }},
		"paged-preempting": {mutate: func(s *Spec) {}},
		"paged-no-preempt": {mutate: func(s *Spec) { s.NoPreempt = true }, reserves: true},
		"paged-closed":     {mutate: func(s *Spec) { s.Arrival = ClosedLoop; s.Rate = 0; s.Clients = 12 }},
	} {
		s := pressureSpec(t)
		c.mutate(&s)
		reserves := c.reserves
		steps := 0
		s.probe = func(ps probeState) {
			steps++
			if ps.runningPages > ps.usedPages {
				t.Fatalf("%s iter %d: running set holds %d pages but only %d committed — leak",
					name, ps.iteration, ps.runningPages, ps.usedPages)
			}
			if !reserves && ps.usedPages != ps.runningPages {
				t.Fatalf("%s iter %d: policy committed %d pages, running set holds %d — leak",
					name, ps.iteration, ps.usedPages, ps.runningPages)
			}
			if ps.usedPages > ps.totalPages {
				t.Fatalf("%s iter %d: %d pages committed of a %d-page pool",
					name, ps.iteration, ps.usedPages, ps.totalPages)
			}
			if ps.usedBytes > ps.budget*(1+1e-12) {
				t.Fatalf("%s iter %d: %g KV bytes committed of a %g budget",
					name, ps.iteration, ps.usedBytes, ps.budget)
			}
		}
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if steps != res.Iterations {
			t.Fatalf("%s: probe saw %d iterations, result says %d", name, steps, res.Iterations)
		}
		if name == "paged-preempting" && res.Preemptions == 0 {
			t.Fatalf("%s: invariant must be exercised under preemption", name)
		}
	}
}

// TestPagedDeterminism: paged simulations — including ones that preempt —
// must be byte-identical across repeated runs and across GOMAXPROCS
// settings (the simulator is a single goroutine; nothing may leak in).
func TestPagedDeterminism(t *testing.T) {
	s := pressureSpec(t)
	prev := runtime.GOMAXPROCS(1)
	a, err := Run(s)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if a.Preemptions == 0 {
		t.Fatal("determinism must be pinned on a preempting run")
	}
	runtime.GOMAXPROCS(4)
	b, err := Run(s)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	jc, _ := json.Marshal(c)
	if string(ja) != string(jb) {
		t.Error("paged results differ across GOMAXPROCS=1 and 4")
	}
	if string(ja) != string(jc) {
		t.Error("paged results differ across repeated runs")
	}
}

// TestRunDerivesKVGeometryOnce pins the kvBudget hoist: one simulation
// must evaluate the memfoot inference footprint exactly once, regardless
// of policy — the footprint model is far too slow for the event loop, and
// the pre-hoist code re-derived it in every helper.
func TestRunDerivesKVGeometryOnce(t *testing.T) {
	defer func(orig func(model.Config, int, int, int, float64) memfoot.InferenceBreakdown) {
		inferenceFootprint = orig
	}(inferenceFootprint)

	for _, policy := range []Policy{ReserveFull, Paged} {
		s := spec0(t)
		s.Policy = policy
		calls := 0
		inferenceFootprint = func(cfg model.Config, tp, batch, context int, elemBytes float64) memfoot.InferenceBreakdown {
			calls++
			return memfoot.Inference(cfg, tp, batch, context, elemBytes)
		}
		if _, err := Run(s); err != nil {
			t.Fatal(err)
		}
		if calls != 1 {
			t.Errorf("%v: Run evaluated the footprint model %d times, want exactly 1", policy, calls)
		}
	}
}

// TestPagedValidation covers the policy-specific spec checks.
func TestPagedValidation(t *testing.T) {
	check := func(name string, wantErr bool, mutate func(*Spec)) {
		s := spec0(t)
		mutate(&s)
		err := s.Validate()
		if wantErr && err == nil {
			t.Errorf("%s should fail validation", name)
		}
		if !wantErr && err != nil {
			t.Errorf("%s should validate: %v", name, err)
		}
	}
	check("paged defaults", false, func(s *Spec) { s.Policy = Paged })
	check("paged custom page", false, func(s *Spec) { s.Policy = Paged; s.PageTokens = 32 })
	check("paged no-preempt", false, func(s *Spec) { s.Policy = Paged; s.NoPreempt = true })
	check("page tokens beyond context clamp", false, func(s *Spec) { s.Policy = Paged; s.PageTokens = 1 << 20 })
	check("page tokens under reserve-full", true, func(s *Spec) { s.PageTokens = 16 })
	check("no-preempt under reserve-full", true, func(s *Spec) { s.NoPreempt = true })
	check("negative page tokens", true, func(s *Spec) { s.Policy = Paged; s.PageTokens = -1 })
	check("unknown policy", true, func(s *Spec) { s.Policy = Policy(9) })
	check("paged kv budget below one context", true, func(s *Spec) {
		s.Policy = Paged
		_, per := s.kvBudget()
		s.KVCapacity = per / 2
	})
	check("paged NaN kv budget", true, func(s *Spec) { s.Policy = Paged; s.KVCapacity = math.NaN() })
	check("infinite kv budget", true, func(s *Spec) { s.KVCapacity = math.Inf(1) })
	// A huge-but-finite budget must validate and still resolve a usable
	// (positive, clamped) batch cap rather than overflowing negative and
	// stalling the event loop.
	huge := spec0(t)
	huge.KVCapacity = 1e30
	huge.Requests = 2
	if err := huge.Validate(); err != nil {
		t.Fatalf("huge finite KV budget should validate: %v", err)
	}
	res, err := Run(huge)
	if err != nil {
		t.Fatalf("huge finite KV budget should simulate: %v", err)
	}
	if res.MaxBatch <= 0 {
		t.Errorf("huge budget resolved a non-positive batch cap %d", res.MaxBatch)
	}
}

// TestPagedFeasibleMatchesRun extends the sweep-pruning contract to the
// paged policy: Feasible's verdict must agree with Run's accept/reject.
func TestPagedFeasibleMatchesRun(t *testing.T) {
	s := spec0(t)
	s.Policy = Paged
	if !Feasible(s) {
		t.Error("baseline paged spec must be feasible")
	}
	if _, err := Run(s); err != nil {
		t.Errorf("feasible paged spec must run: %v", err)
	}
	_, per := s.kvBudget()
	s.KVCapacity = per / 2
	if Feasible(s) {
		t.Error("half-context paged budget must be infeasible")
	}
	if _, err := Run(s); err == nil {
		t.Error("infeasible paged spec must be rejected by Run")
	}
}

// TestCanonicalPageTokens pins the shared block-size rule the simulator
// and the sweep's memo-key canonicalization both build on.
func TestCanonicalPageTokens(t *testing.T) {
	for _, c := range []struct {
		pol           Policy
		page, context int
		want          int
	}{
		{ReserveFull, 16, 400, 0},          // reservation never pages
		{Paged, 0, 400, DefaultPageTokens}, // unset → default
		{Paged, -5, 400, DefaultPageTokens},
		{Paged, 32, 400, 32},
		{Paged, 1 << 20, 400, 400}, // clamped to the context
		{Paged, 16, 0, 0},          // empty context → no geometry
	} {
		if got := CanonicalPageTokens(c.pol, c.page, c.context); got != c.want {
			t.Errorf("CanonicalPageTokens(%v, %d, %d) = %d, want %d",
				c.pol, c.page, c.context, got, c.want)
		}
	}
}

// TestPolicyNames covers the enum rendering and CLI parsing.
func TestPolicyNames(t *testing.T) {
	if ReserveFull.String() != "reserve-full" || Paged.String() != "paged" {
		t.Error("unexpected policy names")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still render")
	}
	for token, want := range map[string]Policy{
		"reserve": ReserveFull, "reserve-full": ReserveFull, "reservation": ReserveFull,
		"paged": Paged, "page": Paged,
	} {
		got, err := ParsePolicy(token)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", token, got, err, want)
		}
	}
	if _, err := ParsePolicy("lru"); err == nil {
		t.Error("unknown policy token should fail to parse")
	}
	// JSON artifacts must say "paged", not a bare enum int, and parse back.
	for _, pol := range []Policy{ReserveFull, Paged} {
		data, err := json.Marshal(pol)
		if err != nil || string(data) != `"`+pol.String()+`"` {
			t.Errorf("Policy %v marshals to %s, %v", pol, data, err)
		}
		var back Policy
		if err := json.Unmarshal(data, &back); err != nil || back != pol {
			t.Errorf("Policy %v does not round-trip JSON: %v, %v", pol, back, err)
		}
	}
	var bad Policy
	if err := json.Unmarshal([]byte(`"lru"`), &bad); err == nil {
		t.Error("unknown policy name should fail to unmarshal")
	}
}
