package serve

import (
	"encoding/json"
	"fmt"

	"optimus/internal/arch"
	"optimus/internal/comm"
)

// Policy selects the KV-cache admission policy of a serving simulation.
type Policy int

const (
	// ReserveFull reserves each request's full prompt+generation KV
	// context at admission (the PR-2 behavior): nothing ever has to be
	// evicted, at the cost of admitting far fewer concurrent sequences
	// than a long-generation request actually needs early in its life.
	ReserveFull Policy = iota
	// Paged allocates KV in fixed-size token blocks (vLLM-style) that
	// grow with a request as it decodes. Under pressure the policy
	// preempts victims LIFO among the running sequences — the youngest
	// admission loses its cache and is re-queued at the head of the wait
	// queue. Readmission prices one prefill pass (the same PrefillCost
	// step-cost API as any admission) that rebuilds the discarded KV:
	// vLLM's recompute preemption, where already-generated tokens are
	// recovered as context by the recompute prefill, and the sequence
	// resumes decoding from where it was evicted.
	Paged
	// Disaggregated splits the KV capacity into two page pools — prefill
	// and decode — the DistServe-style deployment where the two phases run
	// on separate device pools joined by a KV transfer. A request admits
	// against the prefill pool on its prompt's pages alone; when its first
	// token is emitted it migrates to the decode pool, paying a per-request
	// KV-transfer cost of its prompt's KV bytes over the
	// Spec.TransferGBps interconnect (internal/comm's point-to-point link
	// model); decode growth and LIFO preemption then run against the
	// decode pool only. Pool sizes follow Spec.PrefillDevices and
	// Spec.DecodeDevices; block geometry is the paged policy's
	// (Spec.PageTokens).
	Disaggregated
)

// String names the policy with the token the CLI and sweep writers use.
func (p Policy) String() string {
	switch p {
	case ReserveFull:
		return "reserve-full"
	case Paged:
		return "paged"
	case Disaggregated:
		return "disagg"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// MarshalJSON renders the policy name, so JSON artifacts compared across
// the policy axis say "paged", not a bare enum int.
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON parses the rendered policy name back.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParsePolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ParsePolicy resolves a CLI policy token.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "reserve", "reserve-full", "reservation":
		return ReserveFull, nil
	case "paged", "page":
		return Paged, nil
	case "disagg", "disaggregated":
		return Disaggregated, nil
	default:
		return 0, fmt.Errorf("serve: unknown admission policy %q (reserve|paged|disagg)", s)
	}
}

// DefaultPageTokens is the paged policy's block size when Spec.PageTokens
// is zero — vLLM's default block size.
const DefaultPageTokens = 16

// CanonicalPageTokens resolves the effective paged block size for a
// (policy, requested size, full context) triple: zero unless the policy
// pages its KV (Paged or Disaggregated — or the context is empty), the
// default when unset, clamped to the context. It is the single source of
// the rule — the simulator's policy construction and the sweep's
// candidate enumeration both call it, so memo keys canonicalize under
// exactly the block size the simulator runs.
func CanonicalPageTokens(pol Policy, pageTokens, context int) int {
	if (pol != Paged && pol != Disaggregated) || context < 1 {
		return 0
	}
	if pageTokens <= 0 {
		pageTokens = DefaultPageTokens
	}
	if pageTokens > context {
		pageTokens = context
	}
	return pageTokens
}

// DefaultTransferGBps is the disaggregated policy's KV-transfer
// interconnect bandwidth when Spec.TransferGBps is zero — a PCIe Gen5
// x16-class link in GB/s.
const DefaultTransferGBps = 50.0

// CanonicalPoolSplit resolves the effective disaggregated pool split for
// (policy, requested device counts, TP devices): zeros unless the policy
// is Disaggregated; an unset (non-positive) count defaults to tp — each
// pool then spans every device, the co-located split whose block
// accounting coincides with Paged's. Shared by the simulator's policy
// construction and the sweep's memo-key canonicalization.
func CanonicalPoolSplit(pol Policy, prefill, decode, tp int) (int, int) {
	if pol != Disaggregated || tp < 1 {
		return 0, 0
	}
	if prefill <= 0 {
		prefill = tp
	}
	if decode <= 0 {
		decode = tp
	}
	return prefill, decode
}

// CanonicalTransferGBps resolves the effective KV-transfer bandwidth:
// zero unless the policy is Disaggregated, the default when unset.
// math.Inf(1) is a legal value — a free transfer, the degenerate
// co-located interconnect.
func CanonicalTransferGBps(pol Policy, gbps float64) float64 {
	if pol != Disaggregated {
		return 0
	}
	if gbps == 0 {
		return DefaultTransferGBps
	}
	return gbps
}

// DefaultSwapGBps is the host KV tier's link bandwidth when Spec.SwapGBps
// is zero — a PCIe Gen4 x16-class host link in GB/s, deliberately slower
// than the GPU-to-GPU DefaultTransferGBps.
const DefaultSwapGBps = 32.0

// CanonicalSwapGBps resolves the effective host-tier swap bandwidth: zero
// unless the paged policy runs a host tier (HostKVBytes set), the default
// when unset. math.Inf(1) is a legal value — a free swap. Shared by the
// simulator's policy construction and the sweep's memo-key
// canonicalization, the same single-source rule as CanonicalTransferGBps.
func CanonicalSwapGBps(pol Policy, hostBytes, gbps float64) float64 {
	if pol != Paged || !(hostBytes > 0) {
		return 0
	}
	if gbps == 0 {
		return DefaultSwapGBps
	}
	return gbps
}

// AdmissionPolicy manages the KV-cache budget of one simulation: it
// decides how many sequences may run concurrently, reserves capacity as
// requests are admitted and decode, and selects preemption victims under
// pressure. The interface is sealed (its stepping methods take the
// simulator's unexported request type); newPolicy builds the
// implementation Spec.Policy selects.
type AdmissionPolicy interface {
	// BatchCap resolves the concurrent-sequence bound: the user's
	// Spec.MaxBatch, bounded by how many admissions the KV budget holds.
	BatchCap() int
	// Feasible reports whether a single request can ever be admitted.
	Feasible() bool
	// PageGeometry reports the resolved block size in tokens and the page
	// count of the budget; both zero for ReserveFull.
	PageGeometry() (pageTokens, totalPages int)

	// beginStep re-derives per-iteration accounting from the running set
	// (indices into the request slab, in admission order) and makes room
	// for each sequence's next token, returning the sequences that keep
	// running and the preemption victims (appended to the caller's
	// reusable buffer), which the event loop re-queues. Victims are
	// collected youngest-first.
	beginStep(pool []request, running, victims []int32) (kept, outVictims []int32)
	// admit reserves capacity for the request, or reports that it does
	// not fit right now.
	admit(r *request) bool
	// release frees a completed request's capacity.
	release(r *request)
	// usedBytes is the KV capacity currently committed — unavailable to
	// further admissions — in bytes.
	usedBytes() float64
	// usedPages is the committed page count (0 for ReserveFull).
	usedPages() int
	// budgetBytes is the resolved per-device KV budget.
	budgetBytes() float64
	// counters reports the cumulative preemptions and the generated
	// tokens they discarded.
	counters() (preemptions, recomputedTokens int)
}

// newPolicy resolves the spec's admission policy. It derives the KV
// geometry exactly once (one memfoot.Inference evaluation), so the
// simulator's hot path never recomputes the footprint model.
func newPolicy(s Spec) AdmissionPolicy {
	budget, perRequest := s.kvBudget()
	switch s.Policy {
	case Paged:
		return newPagedPolicy(s, budget, perRequest)
	case Disaggregated:
		return newDisaggPolicy(s, budget, perRequest)
	}
	b := s.bounds()
	return &reservePolicy{
		budget: budget, perRequest: perRequest,
		maxContext: b.maxContext, minContext: b.minContext,
		uniform: b.uniform(), userCap: s.MaxBatch,
	}
}

// reservePolicy is the extracted PR-2 admission: every request reserves
// its own full prompt+generation KV context up front, so capacity never
// has to be reclaimed and preemption never happens. For a uniform workload
// its arithmetic — the order of float operations included — is exactly the
// pre-refactor admission loop's, which the paged policy's
// degenerate-equivalence test relies on; heterogeneous workloads price
// each reservation per request off the same footprint-derived geometry.
type reservePolicy struct {
	budget float64
	// perRequest is the footprint model's full-context KV bytes at the
	// workload's largest context; smaller requests reserve a linear
	// per-token fraction of it.
	perRequest             float64
	maxContext, minContext int
	uniform                bool
	userCap                int
	kvUsed                 float64
}

// contextBytes prices a context-token full reservation. The footprint's
// own bytes are used verbatim at the context it was derived for, so the
// uniform workload stays bit-identical to the PR-3 accounting instead of
// routing through a divide-and-remultiply round trip.
func (p *reservePolicy) contextBytes(context int) float64 {
	if context == p.maxContext {
		return p.perRequest
	}
	return p.perRequest / float64(p.maxContext) * float64(context)
}

func (p *reservePolicy) BatchCap() int {
	// The cap is how many of the workload's smallest reservations fit —
	// an upper bound on concurrency; per-request admission is the real
	// gate. Clamped like the paged pool (maxTotalPages): an unguarded
	// float→int conversion on a huge budget/perRequest ratio overflows to
	// a negative cap, which would stall the event loop at zero admissions.
	fit := maxTotalPages
	if f := p.budget / p.contextBytes(p.minContext); f < maxTotalPages {
		fit = int(f)
	}
	if p.userCap > 0 && p.userCap < fit {
		return p.userCap
	}
	return fit
}

func (p *reservePolicy) Feasible() bool {
	return p.budget > 0 && p.perRequest <= p.budget
}

func (p *reservePolicy) PageGeometry() (int, int) { return 0, 0 }

func (p *reservePolicy) beginStep(pool []request, running, victims []int32) ([]int32, []int32) {
	if p.uniform {
		// Multiply-by-count, not a sum: the PR-3 float path, preserved
		// bit for bit for the degenerate-equivalence guarantee.
		p.kvUsed = p.perRequest * float64(len(running))
		return running, victims
	}
	kv := 0.0
	for _, id := range running {
		r := &pool[id]
		kv += p.contextBytes(r.prompt + r.gen)
	}
	p.kvUsed = kv
	return running, victims
}

func (p *reservePolicy) admit(r *request) bool {
	need := p.contextBytes(r.prompt + r.gen)
	if !(p.kvUsed+need <= p.budget) {
		return false
	}
	p.kvUsed += need
	return true
}

func (p *reservePolicy) release(*request)     {}
func (p *reservePolicy) usedBytes() float64   { return p.kvUsed }
func (p *reservePolicy) usedPages() int       { return 0 }
func (p *reservePolicy) budgetBytes() float64 { return p.budget }
func (p *reservePolicy) counters() (int, int) { return 0, 0 }

// maxTotalPages caps the page budget so a garbage spec (tiny page bytes
// against a huge budget) cannot overflow the float→int conversion. It
// must fit a 32-bit int so the package keeps building on 32-bit targets.
const maxTotalPages = 1<<31 - 1

// pagedGeometry derives the block geometry shared by the paged and
// disaggregated policies: the byte size of one page and the budget's page
// count. When one page spans the full context the footprint's own bytes
// are used verbatim (not a divide-and-remultiply round trip), keeping the
// degenerate configurations bit-identical to ReserveFull accounting; the
// page count is clamped to maxTotalPages so a huge budget cannot overflow
// the float→int conversion on 32-bit targets. One implementation, two
// callers — the PR-3 32-bit regression came from exactly this rule
// drifting between copies.
func pagedGeometry(pageTokens, context int, budget, perRequest float64) (pageBytes float64, budgetPages int) {
	if pageTokens == context {
		pageBytes = perRequest
	} else {
		pageBytes = perRequest * float64(pageTokens) / float64(context)
	}
	if budget > 0 && pageBytes > 0 {
		if f := budget / pageBytes; f > maxTotalPages {
			budgetPages = maxTotalPages
		} else {
			budgetPages = int(f)
		}
	}
	return pageBytes, budgetPages
}

// pagedPolicy allocates KV in fixed-size token blocks. A request holds
// ceil(kvTokens/pageTokens) pages for the tokens currently in its cache
// and grows one page at a time as it decodes; admission only needs its own
// prompt's pages, so many more long-generation requests run concurrently
// than under full-context reservation. When a sequence cannot grow, the
// policy evicts victims LIFO (youngest admission first, itself last) —
// recompute-style preemption: the victim's pages are freed and the event
// loop re-queues it for a recompute prefill that rebuilds its cache, after
// which it resumes decoding. All page counts are priced per request, off
// the request's own prompt/generation lengths.
//
// With NoPreempt set, admission instead reserves the request's own
// full-context page count up front (reservation at page granularity),
// which guarantees growth never fails — the degenerate configuration the
// equivalence tests pin against ReserveFull.
//
// Two optional mechanisms extend the block accounting, both degenerating
// byte-for-byte to the plain policy when unused:
//
//   - Prefix caching: requests carrying a PrefixID share their leading
//     PrefixTokens prompt tokens. The first admission of a prefix charges
//     its pages into a refcounted resident registry; later admissions
//     charge their private suffix only and skip the prefix's share of the
//     prefill pass. Refcounts survive LIFO preemption (an evicted victim
//     releases its reference, never the shared pages), and idle resident
//     prefixes are reclaimed — lowest slot first — before any running
//     victim is preempted.
//   - Tiered KV: with a host tier configured (Spec.HostKVBytes), eviction
//     swaps the victim's private pages out to the tier — priced as a
//     point-to-point transfer over the Spec.SwapGBps link — instead of
//     discarding them, while the tier has room. Readmission compares the
//     swap-in transfer against the recompute prefill and takes the
//     cheaper path.
type pagedPolicy struct {
	budget     float64
	pageBytes  float64
	pageTokens int
	totalPages int
	admitPages int // pages covering the smallest admission need — the derived-cap unit
	fullPages  int // pages covering the largest full context — the feasibility unit
	minFull    int // pages covering the smallest full context — NoPreempt's cap unit
	userCap    int
	noPreempt  bool

	used       int // pages currently held across the running set (and resident prefixes)
	reserved   int // NoPreempt: full-context pages reserved by admissions
	preempts   int
	recomputed int

	// Prefix registry: interned shared prefixes, indexed by the slot ids
	// the request slab carries. Empty for prefix-free workloads, whose
	// admission arithmetic is untouched.
	prefixes    []prefixEntry
	prefixIdx   map[string]int32
	prefixHits  int
	prefixSaved int

	// Host tier state: page capacity and occupancy, swap counters, and the
	// link pricing inputs (perToken KV bytes over swapLink, the PR-5
	// transfer-pricing pattern). hostTotal == 0 disables the tier.
	hostTotal   int
	hostUsed    int
	peakHost    int
	swapOuts    int
	swapIns     int
	pendingSwap float64
	swapTotal   float64
	perToken    float64
	swapLink    arch.Link
	// sim prices the readmission recompute path the swap-in competes
	// against (set by the simulator after construction; nil in validation-
	// only uses, which never admit).
	sim *simulator
}

// prefixEntry is one interned shared prefix: its id, token and page span,
// how many running sequences currently reference it, and whether its pages
// are resident in the KV cache. Residency outlives the last reference —
// that is the cache — until pressure reclaims the idle entry.
type prefixEntry struct {
	id       string
	tokens   int
	pages    int
	refs     int
	resident bool
}

func newPagedPolicy(s Spec, budget, perRequest float64) *pagedPolicy {
	b := s.bounds()
	context := b.maxContext
	pt := CanonicalPageTokens(Paged, s.PageTokens, context)
	p := &pagedPolicy{
		budget:     budget,
		pageTokens: pt,
		userCap:    s.MaxBatch,
		noPreempt:  s.NoPreempt,
	}
	if pt == 0 {
		return p // context-free garbage spec; totalPages stays 0 → infeasible
	}
	p.pageBytes, p.totalPages = pagedGeometry(pt, context, budget, perRequest)
	p.admitPages = p.pagesFor(b.minPrompt + 1)
	p.fullPages = p.pagesFor(context)
	p.minFull = p.pagesFor(b.minContext)
	if s.prefixed() {
		// Prefixed shapes split their pages into shared + private spans,
		// each rounded up separately: the feasibility unit is the largest
		// such split (≥ the unsplit page count), the cap unit the smallest
		// resident-prefix admission (private prompt suffix only).
		p.fullPages, p.admitPages = prefixPageUnits(s, p)
	}
	if s.HostKVBytes > 0 {
		if f := s.HostKVBytes / p.pageBytes; f > maxTotalPages {
			p.hostTotal = maxTotalPages
		} else {
			p.hostTotal = int(f)
		}
		p.perToken = perRequest / float64(context)
		p.swapLink = arch.Link{BW: CanonicalSwapGBps(Paged, s.HostKVBytes, s.SwapGBps) * 1e9, Util: 1}
	}
	return p
}

// prefixPageUnits derives the paged feasibility and cap units of a
// prefixed workload by folding every shape: the largest
// prefix-pages + private-full-context-pages sum (what the oldest sequence
// can need to finish after everything else is evicted and every other
// prefix reclaimed), and the smallest admission need (a resident-prefix
// hit charging its private prompt's pages alone). Session cohorts fold
// their extreme turns — the prefix-free first turn and the largest
// context-grown last turn — and heavy-tailed mixes fold both clamp
// corners, so the units bound every shape the generator can emit.
func prefixPageUnits(s Spec, p *pagedPolicy) (fullPages, admitPages int) {
	fold := func(first bool, prompt, gen, prefix int) {
		full := p.pagesFor(prefix) + p.pagesFor(prompt-prefix+gen)
		admit := p.pagesFor(prompt - prefix + 1)
		if first || full > fullPages {
			fullPages = full
		}
		if first || admit < admitPages {
			admitPages = admit
		}
	}
	if len(s.Trace) > 0 {
		for i, ev := range s.Trace {
			fold(i == 0, ev.PromptTokens, ev.GenTokens, ev.PrefixTokens)
		}
		return fullPages, admitPages
	}
	turns := s.Turns
	if turns < 1 {
		turns = 1
	}
	for i, t := range s.Mix {
		pmin, pmax := t.PromptBounds()
		gmin, gmax := t.GenBounds()
		if turns > 1 {
			// Turn 1 carries no prefix; turn k's context grows linearly, so
			// the last turn of the largest draw is the full-pages extreme.
			fold(i == 0, pmin, gmin, 0)
			ctx := (turns - 1) * (pmax + gmax)
			fold(false, ctx+pmax, gmax, ctx)
			continue
		}
		fold(i == 0, pmin, gmin, t.PrefixTokens)
		if pmax != pmin || gmax != gmin {
			fold(false, pmax, gmax, t.PrefixTokens)
		}
	}
	return fullPages, admitPages
}

// intern resolves a prefix id to its registry slot, creating it cold
// (non-resident, unreferenced) on first sight. Workload validation
// guarantees one consistent token length per id.
func (p *pagedPolicy) intern(id string, tokens int) int32 {
	if i, ok := p.prefixIdx[id]; ok {
		return i
	}
	if p.prefixIdx == nil {
		p.prefixIdx = make(map[string]int32, 4)
	}
	i := int32(len(p.prefixes))
	p.prefixes = append(p.prefixes, prefixEntry{id: id, tokens: tokens, pages: p.pagesFor(tokens)})
	p.prefixIdx[id] = i
	return i
}

// internedPrefixTokens reports the token length a prefix id was interned
// with — the Instance.Push consistency check.
func (p *pagedPolicy) internedPrefixTokens(id string) (int, bool) {
	i, ok := p.prefixIdx[id]
	if !ok {
		return 0, false
	}
	return p.prefixes[i].tokens, true
}

// reclaimIdle frees one resident idle (refs == 0) prefix — lowest slot
// first, a deterministic order — reporting whether it freed anything. The
// eviction loops try it before preempting any running victim: a cached
// prefix nobody references is the cheapest capacity to reclaim.
func (p *pagedPolicy) reclaimIdle() bool {
	for i := range p.prefixes {
		e := &p.prefixes[i]
		if e.resident && e.refs == 0 {
			e.resident = false
			p.used -= e.pages
			return true
		}
	}
	return false
}

// pagesFor returns the page count covering tokens KV entries.
func (p *pagedPolicy) pagesFor(tokens int) int {
	return (tokens + p.pageTokens - 1) / p.pageTokens
}

func (p *pagedPolicy) BatchCap() int {
	// Derived from the workload's smallest per-request need — an upper
	// bound on concurrency; per-request admission is the real gate.
	per := p.admitPages
	if p.noPreempt {
		per = p.minFull
	}
	fit := 0
	if per > 0 {
		fit = p.totalPages / per
	}
	if p.userCap > 0 && p.userCap < fit {
		return p.userCap
	}
	return fit
}

func (p *pagedPolicy) Feasible() bool {
	return p.budget > 0 && p.fullPages > 0 && p.fullPages <= p.totalPages
}

func (p *pagedPolicy) PageGeometry() (int, int) { return p.pageTokens, p.totalPages }

// beginStep grows every established sequence's allocation to cover the
// token its next decode step produces. Sequences are grown oldest-first
// (admission order); when the free pool runs dry, the youngest running
// sequence is evicted — possibly the grower itself when it is the
// youngest. The oldest sequence can always finish: even the largest lone
// request's full context fits the budget (Feasible), so eviction never
// empties the running set, which is the simulator's progress guarantee.
func (p *pagedPolicy) beginStep(pool []request, running, victims []int32) (kept, outVictims []int32) {
	kept, outVictims = running, victims
	for i := 0; i < len(kept); i++ {
		id := kept[i]
		r := &pool[id]
		// A sequence needs another page only when its next token spills
		// past its held pages' capacity: need = ceil(tokens/pageTokens)
		// exceeds r.pages exactly when tokens > r.pages*pageTokens. The
		// multiply-and-compare keeps the per-sequence steady state free of
		// the ceil's integer division. Page math spans the request's
		// private tokens only — its shared prefix (zero without one) lives
		// in the registry's pages.
		if r.prompt-r.prefix+r.produced+1 <= r.pages*p.pageTokens {
			continue
		}
		need := p.pagesFor(r.prompt - r.prefix + r.produced + 1)
		extra := need - r.pages
		self := false
		for p.used+extra > p.totalPages {
			if p.reclaimIdle() {
				continue
			}
			vi := kept[len(kept)-1]
			kept = kept[:len(kept)-1]
			p.evict(&pool[vi])
			outVictims = append(outVictims, vi)
			if vi == id {
				self = true
				break
			}
		}
		if self {
			break // r was the youngest; the outer scan is past the end
		}
		p.used += extra
		r.pages = need
	}
	return kept, outVictims
}

// evict frees a victim's private pages and releases its prefix reference
// (the shared pages stay resident — refcounting survives preemption).
// With a host tier holding room, the pages swap out to it instead of
// vanishing — the victim remembers its stored span and readmission
// decides swap-in vs recompute; otherwise the generated tokens are
// accounted for the recompute prefill that must rebuild them.
func (p *pagedPolicy) evict(v *request) {
	if p.hostTotal > 0 && p.hostUsed+v.pages <= p.hostTotal {
		v.hostPages = v.pages
		v.hostTokens = v.prompt - v.prefix + v.produced
		p.hostUsed += v.pages
		if p.hostUsed > p.peakHost {
			p.peakHost = p.hostUsed
		}
		t := p.swapTime(v.hostTokens)
		p.pendingSwap += t
		p.swapOuts++
		v.transfers++
		v.transferTime += t
	} else {
		p.recomputed += v.produced
	}
	p.used -= v.pages
	v.pages = 0
	p.preempts++
	if v.prefixSlot >= 0 {
		p.prefixes[v.prefixSlot].refs--
	}
}

// admit reserves the pages a request's next step touches: its private
// prompt's for a fresh sequence, the prompt's plus the already-generated
// tokens' for a preemption victim resuming after its recompute prefill.
// A shared prefix charges its own pages only when not already resident —
// a hit charges the private suffix alone and skips the prefix's share of
// the prefill pass. A session turn carrying more context than the
// resident entry extends it in place: the hit covers the cached span and
// the growth delta is charged to (and prefilled by) the extending turn.
// A victim whose pages sit in the host tier swaps them back in when the
// transfer undercuts the recompute prefill.
func (p *pagedPolicy) admit(r *request) bool {
	need := p.pagesFor(r.prompt - r.prefix + r.produced + 1)
	if p.noPreempt {
		full := p.pagesFor(r.prompt + r.gen)
		if p.reserved+full > p.totalPages {
			return false
		}
		p.reserved += full
		r.pages = need
		p.used += need
		return true
	}
	var pfx *prefixEntry
	shared := 0
	if r.prefixSlot >= 0 {
		pfx = &p.prefixes[r.prefixSlot]
		if !pfx.resident {
			shared = p.pagesFor(r.prefix)
		} else if r.prefix > pfx.tokens {
			shared = p.pagesFor(r.prefix) - pfx.pages
		}
	}
	for p.used+need+shared > p.totalPages {
		if !p.reclaimIdle() {
			return false
		}
	}
	free := 0
	if pfx != nil {
		// Re-test residency: the reclaim loop above may have dropped this
		// very entry (resident, unreferenced) to make room.
		switch {
		case !pfx.resident:
			// (Re)materialize the cache at this request's span: a session's
			// later turn carries more context than the entry was interned
			// with, and a victim readmitting after its cache was reclaimed
			// may carry less — the registry tracks what is resident now.
			pfx.resident = true
			pfx.refs = 1
			pfx.tokens = r.prefix
			pfx.pages = p.pagesFor(r.prefix)
			p.used += pfx.pages
		case r.prefix > pfx.tokens:
			// A session turn extending the resident entry: the hit covers
			// the cached span, this request's prefill computes the growth
			// delta, and the grown entry serves the session's next turn.
			pfx.refs++
			free = pfx.tokens
			p.prefixHits++
			p.prefixSaved += pfx.tokens
			delta := p.pagesFor(r.prefix) - pfx.pages
			pfx.tokens = r.prefix
			pfx.pages += delta
			p.used += delta
		default:
			pfx.refs++
			free = r.prefix
			p.prefixHits++
			p.prefixSaved += r.prefix
		}
	}
	if r.hostPages > 0 {
		// The tier holds this victim's pre-eviction KV. Price both
		// readmission paths — swap the stored bytes back over the link, or
		// rebuild them with a recompute prefill — and take the cheaper.
		p.hostUsed -= r.hostPages
		swapIn := p.swapTime(r.hostTokens)
		if swapIn <= p.sim.recomputeCost(r.hostTokens) {
			p.pendingSwap += swapIn
			p.swapIns++
			r.transfers++
			r.transferTime += swapIn
			free += r.hostTokens
		} else {
			p.recomputed += r.produced
		}
		r.hostPages, r.hostTokens = 0, 0
	}
	r.prefillFree = free
	r.pages = need
	p.used += need
	return true
}

func (p *pagedPolicy) release(r *request) {
	p.used -= r.pages
	r.pages = 0
	if p.noPreempt {
		p.reserved -= p.pagesFor(r.prompt + r.gen)
	}
	if r.prefixSlot >= 0 {
		p.prefixes[r.prefixSlot].refs--
	}
}

// swapTime prices one host-tier page movement: the stored tokens' KV
// bytes point-to-point over the swap link. An infinite-bandwidth link
// prices to exactly zero.
func (p *pagedPolicy) swapTime(tokens int) float64 {
	return comm.P2PTime(float64(tokens)*p.perToken, p.swapLink)
}

// drainSwap hands the event loop the swap time accrued by this
// iteration's evictions and readmissions, accumulating the total. Zero —
// contributing nothing to the iteration — without a host tier.
func (p *pagedPolicy) drainSwap() float64 {
	t := p.pendingSwap
	p.pendingSwap = 0
	p.swapTotal += t
	return t
}

// residentPrefixPages sums the resident registry entries' pages — the
// probe's conservation hook (used == running private pages + resident
// prefix pages).
func (p *pagedPolicy) residentPrefixPages() int {
	pages := 0
	for i := range p.prefixes {
		if p.prefixes[i].resident {
			pages += p.prefixes[i].pages
		}
	}
	return pages
}

// usedPages reports the pages *committed* — what admission sees as
// unavailable — so the utilization surface stays comparable across the
// policy axis: held blocks under preemption, reserved full contexts under
// NoPreempt (whose admissions commit capacity they have not yet filled,
// exactly as ReserveFull's do).
func (p *pagedPolicy) usedPages() int {
	if p.noPreempt {
		return p.reserved
	}
	return p.used
}
func (p *pagedPolicy) usedBytes() float64   { return float64(p.usedPages()) * p.pageBytes }
func (p *pagedPolicy) budgetBytes() float64 { return p.budget }
func (p *pagedPolicy) counters() (int, int) {
	return p.preempts, p.recomputed
}

// disaggPolicy is paged block allocation split across two pools: prefill
// admissions hold pages in the prefill pool, and a sequence's pages move
// to the decode pool when its first token is emitted — the DistServe-style
// hand-off, priced per request as a point-to-point transfer of its
// prompt's KV bytes over the configured interconnect. Decode growth and
// LIFO preemption run against the decode pool only; a preemption victim
// loses its pages, re-queues, and on readmission rebuilds its cache in the
// prefill pool (recompute prefill) before migrating — and paying the
// transfer — again.
//
// Each pool owns PrefillDevices (resp. DecodeDevices) of the TP devices'
// aggregate KV budget; pools may overlap, and the fully co-located split
// (both counts = TP, every device serving both phases) makes every
// per-pool constraint coincide with the shared-budget one — block
// accounting is then exactly pagedPolicy's, which the
// degenerate-equivalence suite pins byte for byte under an infinite
// transfer bandwidth.
type disaggPolicy struct {
	budget     float64
	pageBytes  float64
	pageTokens int
	// totalPages caps the two pools' combined commitment: the budget's
	// pages when the pools overlap, their (smaller) sum when they do not.
	totalPages   int
	prefillTotal int
	decodeTotal  int
	admitPages   int // pages covering the smallest prompt+1 — the derived-cap unit
	fullPages    int // pages covering the largest full context — the feasibility unit
	userCap      int
	// perToken is the linear per-token KV footprint the migration transfer
	// is priced over; link is the interconnect joining the pools.
	perToken float64
	link     arch.Link

	prefillUsed, decodeUsed int
	peakPrefill, peakDecode int
	pendingTransfer         float64
	transferTotal           float64
	transfers               int
	preempts, recomputed    int
}

func newDisaggPolicy(s Spec, budget, perRequest float64) *disaggPolicy {
	b := s.bounds()
	context := b.maxContext
	pt := CanonicalPageTokens(Disaggregated, s.PageTokens, context)
	pp, dd := CanonicalPoolSplit(Disaggregated, s.PrefillDevices, s.DecodeDevices, s.TP)
	p := &disaggPolicy{
		budget:     budget,
		pageTokens: pt,
		userCap:    s.MaxBatch,
		link:       arch.Link{BW: CanonicalTransferGBps(Disaggregated, s.TransferGBps) * 1e9, Util: 1},
	}
	if pt == 0 {
		return p // context-free garbage spec; totalPages stays 0 → infeasible
	}
	var budgetPages int
	p.pageBytes, budgetPages = pagedGeometry(pt, context, budget, perRequest)
	p.perToken = perRequest / float64(context)
	p.prefillTotal = poolPages(budgetPages, pp, s.TP)
	p.decodeTotal = poolPages(budgetPages, dd, s.TP)
	// int64 sum: both totals fit 32-bit ints but their sum need not.
	if int64(p.prefillTotal)+int64(p.decodeTotal) < int64(budgetPages) {
		p.totalPages = p.prefillTotal + p.decodeTotal
	} else {
		p.totalPages = budgetPages
	}
	p.admitPages = p.pagesFor(b.minPrompt + 1)
	p.fullPages = p.pagesFor(context)
	return p
}

// poolPages is one pool's share of the budget's pages: devs of the tp
// devices' aggregate. 64-bit intermediate so the multiply cannot overflow
// a 32-bit int.
func poolPages(budgetPages, devs, tp int) int {
	return int(int64(budgetPages) * int64(devs) / int64(tp))
}

// pagesFor returns the page count covering tokens KV entries.
func (p *disaggPolicy) pagesFor(tokens int) int {
	return (tokens + p.pageTokens - 1) / p.pageTokens
}

// used is the combined committed page count across both pools — what the
// shared budget sees as unavailable.
func (p *disaggPolicy) used() int { return p.prefillUsed + p.decodeUsed }

func (p *disaggPolicy) BatchCap() int {
	fit := 0
	if p.admitPages > 0 {
		fit = p.totalPages / p.admitPages
	}
	if p.userCap > 0 && p.userCap < fit {
		return p.userCap
	}
	return fit
}

// Feasible requires the largest request's full context to fit each pool:
// the decode pool must grow it to completion, and a preemption victim's
// recompute readmission can need up to its full context in the prefill
// pool — the progress guarantee that eviction can never wedge the queue.
func (p *disaggPolicy) Feasible() bool {
	return p.budget > 0 && p.fullPages > 0 &&
		p.fullPages <= p.prefillTotal && p.fullPages <= p.decodeTotal
}

func (p *disaggPolicy) PageGeometry() (int, int) { return p.pageTokens, p.totalPages }

// beginStep migrates every sequence whose first token was emitted last
// iteration from the prefill pool to the decode pool — accruing its KV
// transfer — then grows decode allocations one token ahead, exactly as
// pagedPolicy does, with LIFO eviction when capacity runs dry. Victim
// selection respects the pools' physical separation: when only the decode
// pool binds, the youngest *decode resident* is evicted — preempting a
// prefill-held sequence cannot free decode pages, it would only thrash
// recomputes — while shared-budget pressure (co-located pools) evicts the
// youngest sequence outright, the paged policy's rule, which is what
// keeps the co-located split byte-identical to Paged.
//
// The running set always orders decode residents before prefill-held
// sequences: the previous beginStep migrated every survivor, and
// admission appends the prefill-held newcomers at the tail.
func (p *disaggPolicy) beginStep(pool []request, running, victims []int32) (kept, outVictims []int32) {
	kept, outVictims = running, victims
	for i := 0; i < len(kept); i++ {
		id := kept[i]
		r := &pool[id]
		self := false
		if !r.inDecode {
			// The hand-off: the prefill pool's copy of r's cache moves to
			// the decode pool before its first decode step. Migration never
			// touches the shared total, so only the decode pool can bind —
			// and while it does, a decode resident to evict always exists
			// (decodeUsed > decodeTotal - r.pages >= 0 by feasibility).
			for p.decodeUsed+r.pages > p.decodeTotal {
				j := len(kept) - 1
				for !pool[kept[j]].inDecode {
					j--
				}
				vi := kept[j]
				kept = append(kept[:j], kept[j+1:]...)
				p.evict(&pool[vi])
				outVictims = append(outVictims, vi)
				// v sat before the scan position (decode residents precede
				// every prefill-held sequence); keep the cursor on r.
				i--
			}
			p.prefillUsed -= r.pages
			p.decodeUsed += r.pages
			if p.decodeUsed > p.peakDecode {
				p.peakDecode = p.decodeUsed
			}
			r.inDecode = true
			t := p.transferTime(r.prompt)
			p.pendingTransfer += t
			p.transfers++
			r.transfers++
			r.transferTime += t
		}
		need := p.pagesFor(r.prompt + r.produced + 1)
		extra := need - r.pages
		if extra <= 0 {
			continue
		}
		for p.decodeUsed+extra > p.decodeTotal || p.used()+extra > p.totalPages {
			j := len(kept) - 1
			if p.used()+extra <= p.totalPages {
				// Only the decode pool binds: LIFO restricts to its own
				// residents. Unreachable under co-location, where
				// decodeUsed <= used and decodeTotal == totalPages.
				for !pool[kept[j]].inDecode {
					j--
				}
			}
			vi := kept[j]
			kept = append(kept[:j], kept[j+1:]...)
			p.evict(&pool[vi])
			outVictims = append(outVictims, vi)
			if vi == id {
				self = true
				break
			}
		}
		if self {
			// r itself was the LIFO victim. Unlike pagedPolicy — where the
			// victim scan pops strictly from the tail, so nothing remains
			// past r — the decode-restricted scan can evict r while
			// prefill-held sequences still sit behind it; they must keep
			// scanning (and migrate) rather than decode this iteration from
			// the wrong pool. Removal shifted them down one slot.
			i--
			continue
		}
		p.decodeUsed += extra
		if p.decodeUsed > p.peakDecode {
			p.peakDecode = p.decodeUsed
		}
		r.pages = need
	}
	return kept, outVictims
}

// transferTime prices one sequence's KV hand-off: its prompt's KV bytes
// point-to-point over the pool interconnect. An infinite-bandwidth link
// prices to exactly zero — the co-located degenerate case.
func (p *disaggPolicy) transferTime(promptTokens int) float64 {
	return comm.P2PTime(float64(promptTokens)*p.perToken, p.link)
}

// drainTransfer hands the event loop the KV-transfer time accrued by this
// iteration's migrations, accumulating the total.
func (p *disaggPolicy) drainTransfer() float64 {
	t := p.pendingTransfer
	p.pendingTransfer = 0
	p.transferTotal += t
	return t
}

// evict frees a victim's pages from whichever pool holds them and
// accounts the generated tokens its readmission prefill must rebuild.
func (p *disaggPolicy) evict(v *request) {
	if v.inDecode {
		p.decodeUsed -= v.pages
	} else {
		p.prefillUsed -= v.pages
	}
	v.pages = 0
	v.inDecode = false
	p.preempts++
	p.recomputed += v.produced
}

// admit reserves the pages a request's next (pre)fill pass touches in the
// prefill pool: its own prompt's for a fresh sequence, plus the
// already-generated tokens' for a preemption victim resuming after its
// recompute prefill.
func (p *disaggPolicy) admit(r *request) bool {
	need := p.pagesFor(r.prompt + r.produced + 1)
	if p.prefillUsed+need > p.prefillTotal || p.used()+need > p.totalPages {
		return false
	}
	r.pages = need
	r.inDecode = false
	p.prefillUsed += need
	if p.prefillUsed > p.peakPrefill {
		p.peakPrefill = p.prefillUsed
	}
	return true
}

func (p *disaggPolicy) release(r *request) {
	if r.inDecode {
		p.decodeUsed -= r.pages
	} else {
		p.prefillUsed -= r.pages
	}
	r.pages = 0
	r.inDecode = false
}

func (p *disaggPolicy) usedPages() int       { return p.used() }
func (p *disaggPolicy) usedBytes() float64   { return float64(p.used()) * p.pageBytes }
func (p *disaggPolicy) budgetBytes() float64 { return p.budget }
func (p *disaggPolicy) counters() (int, int) { return p.preempts, p.recomputed }
