package serve

import (
	"encoding/json"
	"fmt"
)

// Policy selects the KV-cache admission policy of a serving simulation.
type Policy int

const (
	// ReserveFull reserves each request's full prompt+generation KV
	// context at admission (the PR-2 behavior): nothing ever has to be
	// evicted, at the cost of admitting far fewer concurrent sequences
	// than a long-generation request actually needs early in its life.
	ReserveFull Policy = iota
	// Paged allocates KV in fixed-size token blocks (vLLM-style) that
	// grow with a request as it decodes. Under pressure the policy
	// preempts victims LIFO among the running sequences — the youngest
	// admission loses its cache and is re-queued at the head of the wait
	// queue. Readmission prices one prefill pass (the same PrefillCost
	// step-cost API as any admission) that rebuilds the discarded KV:
	// vLLM's recompute preemption, where already-generated tokens are
	// recovered as context by the recompute prefill, and the sequence
	// resumes decoding from where it was evicted.
	Paged
)

// String names the policy with the token the CLI and sweep writers use.
func (p Policy) String() string {
	switch p {
	case ReserveFull:
		return "reserve-full"
	case Paged:
		return "paged"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// MarshalJSON renders the policy name, so JSON artifacts compared across
// the policy axis say "paged", not a bare enum int.
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON parses the rendered policy name back.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParsePolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ParsePolicy resolves a CLI policy token.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "reserve", "reserve-full", "reservation":
		return ReserveFull, nil
	case "paged", "page":
		return Paged, nil
	default:
		return 0, fmt.Errorf("serve: unknown admission policy %q (reserve|paged)", s)
	}
}

// DefaultPageTokens is the paged policy's block size when Spec.PageTokens
// is zero — vLLM's default block size.
const DefaultPageTokens = 16

// CanonicalPageTokens resolves the effective paged block size for a
// (policy, requested size, full context) triple: zero unless the policy
// is Paged (or the context is empty), the default when unset, clamped to
// the context. It is the single source of the rule — the simulator's
// policy construction and the sweep's candidate enumeration both call it,
// so memo keys canonicalize under exactly the block size the simulator
// runs.
func CanonicalPageTokens(pol Policy, pageTokens, context int) int {
	if pol != Paged || context < 1 {
		return 0
	}
	if pageTokens <= 0 {
		pageTokens = DefaultPageTokens
	}
	if pageTokens > context {
		pageTokens = context
	}
	return pageTokens
}

// AdmissionPolicy manages the KV-cache budget of one simulation: it
// decides how many sequences may run concurrently, reserves capacity as
// requests are admitted and decode, and selects preemption victims under
// pressure. The interface is sealed (its stepping methods take the
// simulator's unexported request type); newPolicy builds the
// implementation Spec.Policy selects.
type AdmissionPolicy interface {
	// BatchCap resolves the concurrent-sequence bound: the user's
	// Spec.MaxBatch, bounded by how many admissions the KV budget holds.
	BatchCap() int
	// Feasible reports whether a single request can ever be admitted.
	Feasible() bool
	// PageGeometry reports the resolved block size in tokens and the page
	// count of the budget; both zero for ReserveFull.
	PageGeometry() (pageTokens, totalPages int)

	// beginStep re-derives per-iteration accounting from the running set
	// (in admission order) and makes room for each sequence's next token,
	// returning the sequences that keep running and the preemption
	// victims, which the event loop re-queues.
	beginStep(running []*request) (kept, victims []*request)
	// admit reserves capacity for the request, or reports that it does
	// not fit right now.
	admit(r *request) bool
	// release frees a completed request's capacity.
	release(r *request)
	// usedBytes is the KV capacity currently committed — unavailable to
	// further admissions — in bytes.
	usedBytes() float64
	// usedPages is the committed page count (0 for ReserveFull).
	usedPages() int
	// budgetBytes is the resolved per-device KV budget.
	budgetBytes() float64
	// counters reports the cumulative preemptions and the generated
	// tokens they discarded.
	counters() (preemptions, recomputedTokens int)
}

// newPolicy resolves the spec's admission policy. It derives the KV
// geometry exactly once (one memfoot.Inference evaluation), so the
// simulator's hot path never recomputes the footprint model.
func newPolicy(s Spec) AdmissionPolicy {
	budget, perRequest := s.kvBudget()
	if s.Policy == Paged {
		return newPagedPolicy(s, budget, perRequest)
	}
	b := s.bounds()
	return &reservePolicy{
		budget: budget, perRequest: perRequest,
		maxContext: b.maxContext, minContext: b.minContext,
		uniform: b.uniform(), userCap: s.MaxBatch,
	}
}

// reservePolicy is the extracted PR-2 admission: every request reserves
// its own full prompt+generation KV context up front, so capacity never
// has to be reclaimed and preemption never happens. For a uniform workload
// its arithmetic — the order of float operations included — is exactly the
// pre-refactor admission loop's, which the paged policy's
// degenerate-equivalence test relies on; heterogeneous workloads price
// each reservation per request off the same footprint-derived geometry.
type reservePolicy struct {
	budget float64
	// perRequest is the footprint model's full-context KV bytes at the
	// workload's largest context; smaller requests reserve a linear
	// per-token fraction of it.
	perRequest             float64
	maxContext, minContext int
	uniform                bool
	userCap                int
	kvUsed                 float64
}

// contextBytes prices a context-token full reservation. The footprint's
// own bytes are used verbatim at the context it was derived for, so the
// uniform workload stays bit-identical to the PR-3 accounting instead of
// routing through a divide-and-remultiply round trip.
func (p *reservePolicy) contextBytes(context int) float64 {
	if context == p.maxContext {
		return p.perRequest
	}
	return p.perRequest / float64(p.maxContext) * float64(context)
}

func (p *reservePolicy) BatchCap() int {
	// The cap is how many of the workload's smallest reservations fit —
	// an upper bound on concurrency; per-request admission is the real
	// gate. Clamped like the paged pool (maxTotalPages): an unguarded
	// float→int conversion on a huge budget/perRequest ratio overflows to
	// a negative cap, which would stall the event loop at zero admissions.
	fit := maxTotalPages
	if f := p.budget / p.contextBytes(p.minContext); f < maxTotalPages {
		fit = int(f)
	}
	if p.userCap > 0 && p.userCap < fit {
		return p.userCap
	}
	return fit
}

func (p *reservePolicy) Feasible() bool {
	return p.budget > 0 && p.perRequest <= p.budget
}

func (p *reservePolicy) PageGeometry() (int, int) { return 0, 0 }

func (p *reservePolicy) beginStep(running []*request) ([]*request, []*request) {
	if p.uniform {
		// Multiply-by-count, not a sum: the PR-3 float path, preserved
		// bit for bit for the degenerate-equivalence guarantee.
		p.kvUsed = p.perRequest * float64(len(running))
		return running, nil
	}
	kv := 0.0
	for _, r := range running {
		kv += p.contextBytes(r.prompt + r.gen)
	}
	p.kvUsed = kv
	return running, nil
}

func (p *reservePolicy) admit(r *request) bool {
	need := p.contextBytes(r.prompt + r.gen)
	if !(p.kvUsed+need <= p.budget) {
		return false
	}
	p.kvUsed += need
	return true
}

func (p *reservePolicy) release(*request)     {}
func (p *reservePolicy) usedBytes() float64   { return p.kvUsed }
func (p *reservePolicy) usedPages() int       { return 0 }
func (p *reservePolicy) budgetBytes() float64 { return p.budget }
func (p *reservePolicy) counters() (int, int) { return 0, 0 }

// maxTotalPages caps the page budget so a garbage spec (tiny page bytes
// against a huge budget) cannot overflow the float→int conversion. It
// must fit a 32-bit int so the package keeps building on 32-bit targets.
const maxTotalPages = 1<<31 - 1

// pagedPolicy allocates KV in fixed-size token blocks. A request holds
// ceil(kvTokens/pageTokens) pages for the tokens currently in its cache
// and grows one page at a time as it decodes; admission only needs its own
// prompt's pages, so many more long-generation requests run concurrently
// than under full-context reservation. When a sequence cannot grow, the
// policy evicts victims LIFO (youngest admission first, itself last) —
// recompute-style preemption: the victim's pages are freed and the event
// loop re-queues it for a recompute prefill that rebuilds its cache, after
// which it resumes decoding. All page counts are priced per request, off
// the request's own prompt/generation lengths.
//
// With NoPreempt set, admission instead reserves the request's own
// full-context page count up front (reservation at page granularity),
// which guarantees growth never fails — the degenerate configuration the
// equivalence tests pin against ReserveFull.
type pagedPolicy struct {
	budget     float64
	pageBytes  float64
	pageTokens int
	totalPages int
	admitPages int // pages covering the smallest prompt+1 — the derived-cap unit
	fullPages  int // pages covering the largest full context — the feasibility unit
	minFull    int // pages covering the smallest full context — NoPreempt's cap unit
	userCap    int
	noPreempt  bool

	used       int // pages currently held across the running set
	reserved   int // NoPreempt: full-context pages reserved by admissions
	preempts   int
	recomputed int
}

func newPagedPolicy(s Spec, budget, perRequest float64) *pagedPolicy {
	b := s.bounds()
	context := b.maxContext
	pt := CanonicalPageTokens(Paged, s.PageTokens, context)
	p := &pagedPolicy{
		budget:     budget,
		pageTokens: pt,
		userCap:    s.MaxBatch,
		noPreempt:  s.NoPreempt,
	}
	if pt == 0 {
		return p // context-free garbage spec; totalPages stays 0 → infeasible
	}
	if pt == context {
		// One page holds the largest full context. Using the footprint's
		// own bytes (not perRequest/context*pt, which rounds) keeps the
		// degenerate configuration bit-identical to ReserveFull accounting.
		p.pageBytes = perRequest
	} else {
		p.pageBytes = perRequest * float64(pt) / float64(context)
	}
	if budget > 0 && p.pageBytes > 0 {
		if f := budget / p.pageBytes; f > maxTotalPages {
			p.totalPages = maxTotalPages
		} else {
			p.totalPages = int(f)
		}
	}
	p.admitPages = p.pagesFor(b.minPrompt + 1)
	p.fullPages = p.pagesFor(context)
	p.minFull = p.pagesFor(b.minContext)
	return p
}

// pagesFor returns the page count covering tokens KV entries.
func (p *pagedPolicy) pagesFor(tokens int) int {
	return (tokens + p.pageTokens - 1) / p.pageTokens
}

func (p *pagedPolicy) BatchCap() int {
	// Derived from the workload's smallest per-request need — an upper
	// bound on concurrency; per-request admission is the real gate.
	per := p.admitPages
	if p.noPreempt {
		per = p.minFull
	}
	fit := 0
	if per > 0 {
		fit = p.totalPages / per
	}
	if p.userCap > 0 && p.userCap < fit {
		return p.userCap
	}
	return fit
}

func (p *pagedPolicy) Feasible() bool {
	return p.budget > 0 && p.fullPages > 0 && p.fullPages <= p.totalPages
}

func (p *pagedPolicy) PageGeometry() (int, int) { return p.pageTokens, p.totalPages }

// beginStep grows every established sequence's allocation to cover the
// token its next decode step produces. Sequences are grown oldest-first
// (admission order); when the free pool runs dry, the youngest running
// sequence is evicted — possibly the grower itself when it is the
// youngest. The oldest sequence can always finish: even the largest lone
// request's full context fits the budget (Feasible), so eviction never
// empties the running set, which is the simulator's progress guarantee.
func (p *pagedPolicy) beginStep(running []*request) (kept, victims []*request) {
	kept = running
	for i := 0; i < len(kept); i++ {
		r := kept[i]
		need := p.pagesFor(r.prompt + r.produced + 1)
		extra := need - r.pages
		if extra <= 0 {
			continue
		}
		self := false
		for p.used+extra > p.totalPages {
			v := kept[len(kept)-1]
			kept = kept[:len(kept)-1]
			p.evict(v)
			victims = append(victims, v)
			if v == r {
				self = true
				break
			}
		}
		if self {
			break // r was the youngest; the outer scan is past the end
		}
		p.used += extra
		r.pages = need
	}
	return kept, victims
}

// evict frees a victim's pages and accounts the generated tokens whose
// KV entries its readmission prefill will have to rebuild.
func (p *pagedPolicy) evict(v *request) {
	p.used -= v.pages
	v.pages = 0
	p.preempts++
	p.recomputed += v.produced
}

// admit reserves the pages a request's next step touches: its own
// prompt's for a fresh sequence, the prompt's plus the already-generated
// tokens' for a preemption victim resuming after its recompute prefill.
func (p *pagedPolicy) admit(r *request) bool {
	need := p.pagesFor(r.prompt + r.produced + 1)
	if p.noPreempt {
		full := p.pagesFor(r.prompt + r.gen)
		if p.reserved+full > p.totalPages {
			return false
		}
		p.reserved += full
	} else if p.used+need > p.totalPages {
		return false
	}
	r.pages = need
	p.used += need
	return true
}

func (p *pagedPolicy) release(r *request) {
	p.used -= r.pages
	r.pages = 0
	if p.noPreempt {
		p.reserved -= p.pagesFor(r.prompt + r.gen)
	}
}

// usedPages reports the pages *committed* — what admission sees as
// unavailable — so the utilization surface stays comparable across the
// policy axis: held blocks under preemption, reserved full contexts under
// NoPreempt (whose admissions commit capacity they have not yet filled,
// exactly as ReserveFull's do).
func (p *pagedPolicy) usedPages() int {
	if p.noPreempt {
		return p.reserved
	}
	return p.used
}
func (p *pagedPolicy) usedBytes() float64   { return float64(p.usedPages()) * p.pageBytes }
func (p *pagedPolicy) budgetBytes() float64 { return p.budget }
func (p *pagedPolicy) counters() (int, int) {
	return p.preempts, p.recomputed
}
