package serve

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// prefixedMix tags every tenant of a mix with a zero-length shared prefix
// under an explicit id: the degenerate form that must change nothing.
func prefixedMix(mix []TenantLoad) []TenantLoad {
	out := make([]TenantLoad, len(mix))
	for i, tl := range mix {
		tl.PrefixID = "degenerate-" + tl.Tenant
		tl.PrefixTokens = 0
		out[i] = tl
	}
	return out
}

// TestPrefixDegenerateMatchesPaged is the prefix-cache equivalence gate: a
// zero-length shared prefix (even under an explicit prefix id) is exactly
// the plain paged policy — no interning, no resident pages, no skipped
// prefill — and must reproduce it byte-identically across a grid of
// arrival rates, batch caps and seeds, plus a preempting run and a
// heterogeneous multi-tenant run. JSON byte comparison makes
// "byte-identical" literal.
func TestPrefixDegenerateMatchesPaged(t *testing.T) {
	base := spec0(t)
	base.Policy = Paged
	base.PromptTokens, base.GenTokens = 0, 0
	base.Mix = []TenantLoad{{Tenant: DefaultTenant, Share: 1, PromptTokens: 200, GenTokens: 200}}
	for _, rate := range []float64{0.25, 2.5, 5} {
		for _, batchCap := range []int{0, 3} {
			for _, seed := range []int64{1, 7} {
				plain := base
				plain.Rate, plain.MaxBatch, plain.Seed = rate, batchCap, seed
				want, err := Run(plain)
				if err != nil {
					t.Fatal(err)
				}
				pfx := plain
				pfx.Mix = prefixedMix(plain.Mix)
				got, err := Run(pfx)
				if err != nil {
					t.Fatal(err)
				}
				if got.PrefixHits != 0 || got.PrefixSavedTokens != 0 {
					t.Fatalf("rate=%g cap=%d: zero-length prefix must never hit, got %d hits", rate, batchCap, got.PrefixHits)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("rate=%g cap=%d seed=%d: degenerate prefixed result diverges from paged", rate, batchCap, seed)
				}
				ja, _ := json.Marshal(got)
				jb, _ := json.Marshal(want)
				if string(ja) != string(jb) {
					t.Fatalf("rate=%g cap=%d seed=%d: JSON encodings differ", rate, batchCap, seed)
				}
			}
		}
	}

	// A preempting run: the eviction/readmission path must also ignore the
	// degenerate prefix bit for bit.
	pressured := pressureSpec(t)
	pressured.PromptTokens, pressured.GenTokens = 0, 0
	pressured.Mix = []TenantLoad{{Tenant: DefaultTenant, Share: 1, PromptTokens: 200, GenTokens: 200}}
	want, err := Run(pressured)
	if err != nil {
		t.Fatal(err)
	}
	if want.Preemptions == 0 {
		t.Fatal("equivalence must be exercised under preemption")
	}
	pfx := pressured
	pfx.Mix = prefixedMix(pressured.Mix)
	got, err := Run(pfx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("degenerate prefixed result diverges from paged on a preempting run")
	}

	// A heterogeneous multi-tenant run through the same gate.
	mixed := mixedSpec(t)
	mixed.Policy = Paged
	want, err = Run(mixed)
	if err != nil {
		t.Fatal(err)
	}
	mp := mixed
	mp.Mix = prefixedMix(mixed.Mix)
	got, err = Run(mp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("degenerate prefixed result diverges from paged on a heterogeneous mix")
	}
}

// TestTieredDegenerateMatchesPaged is the host-tier equivalence gate: a
// host tier too small for a single page (hostTotal == 0) can never accept
// a swap-out, so every preemption discards and recomputes — byte-identical
// to the tierless paged policy across rates, caps and seeds, including a
// preempting run (the only kind that could touch the tier at all).
func TestTieredDegenerateMatchesPaged(t *testing.T) {
	base := pressureSpec(t)
	_, perRequest := base.kvBudget()
	pageBytes := perRequest / float64(base.PromptTokens+base.GenTokens) // per-token KV
	for _, rate := range []float64{2.5, 5} {
		for _, batchCap := range []int{0, 3} {
			for _, seed := range []int64{1, 7} {
				plain := base
				plain.Rate, plain.MaxBatch, plain.Seed = rate, batchCap, seed
				want, err := Run(plain)
				if err != nil {
					t.Fatal(err)
				}
				tiered := plain
				// Half a page of host bytes: a configured tier with zero
				// usable capacity.
				tiered.HostKVBytes = pageBytes * float64(DefaultPageTokens) / 2
				tiered.SwapGBps = 8
				got, err := Run(tiered)
				if err != nil {
					t.Fatal(err)
				}
				if got.KVSwapOuts != 0 || got.KVSwapIns != 0 || got.SwapTimeTotal != 0 {
					t.Fatalf("rate=%g cap=%d: sub-page host tier must never swap, got %d out / %d in",
						rate, batchCap, got.KVSwapOuts, got.KVSwapIns)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("rate=%g cap=%d seed=%d: degenerate tiered result diverges from paged", rate, batchCap, seed)
				}
				ja, _ := json.Marshal(got)
				jb, _ := json.Marshal(want)
				if string(ja) != string(jb) {
					t.Fatalf("rate=%g cap=%d seed=%d: JSON encodings differ", rate, batchCap, seed)
				}
			}
		}
	}
}

// TestPrefixCacheCountsHitsAndSavings: with an uncontended KV budget the
// shared prefix stays resident after the first admission charges it, so
// every later request hits, each hit saves exactly the prefix's tokens of
// prefill, and TTFT improves against the identical unprefixed run.
func TestPrefixCacheCountsHitsAndSavings(t *testing.T) {
	s := spec0(t)
	s.Policy = Paged
	s.Rate, s.Requests = 2, 48
	plain, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.PrefixTokens = 128
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != s.Requests {
		t.Fatalf("completed %d of %d requests", res.Requests, s.Requests)
	}
	if res.PrefixHits != s.Requests-1 {
		t.Errorf("uncontended cache should hit on every request after the first: %d hits of %d requests",
			res.PrefixHits, s.Requests)
	}
	if res.PrefixSavedTokens != res.PrefixHits*s.PrefixTokens {
		t.Errorf("each hit skips the full prefix: saved %d tokens over %d hits of %d",
			res.PrefixSavedTokens, res.PrefixHits, s.PrefixTokens)
	}
	if res.TTFT.Mean >= plain.TTFT.Mean {
		t.Errorf("skipped prefill must shorten mean TTFT: %g with cache vs %g without",
			res.TTFT.Mean, plain.TTFT.Mean)
	}
	if res.KVSwapOuts != 0 || res.HostPagesTotal != 0 {
		t.Errorf("no host tier configured, yet result reports one: %+v", res)
	}
}

// TestPrefixConservationUnderPressure drives a prefixed workload through a
// preempting run and asserts, every iteration, that committed pages close
// exactly as running-set pages plus resident prefix pages — the refcount
// invariant LIFO preemption must not break — while the host tier never
// overcommits its capacity.
func TestPrefixConservationUnderPressure(t *testing.T) {
	s := pressureSpec(t)
	s.PrefixTokens = 64
	_, perRequest := s.kvBudget()
	s.HostKVBytes = 3 * perRequest
	s.SwapGBps = 8
	steps := 0
	s.probe = func(ps probeState) {
		steps++
		if ps.usedPages != ps.runningPages+ps.prefixPages {
			t.Fatalf("iter %d: %d pages committed, running set holds %d + %d resident prefix — leak",
				ps.iteration, ps.usedPages, ps.runningPages, ps.prefixPages)
		}
		if ps.usedPages > ps.totalPages {
			t.Fatalf("iter %d: %d pages committed of a %d-page pool", ps.iteration, ps.usedPages, ps.totalPages)
		}
		if ps.hostPages < 0 || ps.hostPages > ps.hostTotal {
			t.Fatalf("iter %d: host tier holds %d pages of %d", ps.iteration, ps.hostPages, ps.hostTotal)
		}
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.Iterations {
		t.Fatalf("probe saw %d iterations, result says %d", steps, res.Iterations)
	}
	if res.Preemptions == 0 {
		t.Fatal("invariant must be exercised under preemption")
	}
	if res.PrefixHits == 0 {
		t.Fatal("invariant must be exercised with live cache hits")
	}
	if res.PeakHostPages > res.HostPagesTotal {
		t.Fatalf("peak host occupancy %d exceeds the %d-page tier", res.PeakHostPages, res.HostPagesTotal)
	}
}

// TestTieredSwapAccounting pins the swap-in/recompute decision at its two
// extremes: a free link always swaps back in (no token is ever recomputed)
// and a near-zero link always recomputes (swap-ins never win), while
// swap-outs happen under both — eviction stores pages whenever the tier
// has room, before any readmission pricing.
func TestTieredSwapAccounting(t *testing.T) {
	base := pressureSpec(t)
	_, perRequest := base.kvBudget()
	base.HostKVBytes = 64 * perRequest // room for every victim

	fast := base
	fast.SwapGBps = math.Inf(1)
	res, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatal("tier accounting must be exercised under preemption")
	}
	if res.KVSwapOuts != res.Preemptions {
		t.Errorf("a roomy tier stores every victim: %d swap-outs of %d preemptions", res.KVSwapOuts, res.Preemptions)
	}
	if res.KVSwapIns != res.KVSwapOuts {
		t.Errorf("a free link swaps every victim back in: %d in of %d out", res.KVSwapIns, res.KVSwapOuts)
	}
	if res.RecomputedTokens != 0 {
		t.Errorf("free swap-ins must leave nothing to recompute, got %d tokens", res.RecomputedTokens)
	}
	if res.SwapTimeTotal != 0 {
		t.Errorf("an infinite link prices swaps at exactly zero, got %g s", res.SwapTimeTotal)
	}

	slow := base
	slow.SwapGBps = 1e-6
	res, err = Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if res.KVSwapOuts == 0 {
		t.Fatal("eviction stores victims regardless of the link speed")
	}
	if res.KVSwapIns != 0 {
		t.Errorf("a near-zero link never beats recompute, yet %d swap-ins", res.KVSwapIns)
	}
	if res.RecomputedTokens == 0 {
		t.Error("recompute readmissions must count their rebuilt tokens")
	}
	if res.SwapTimeTotal == 0 {
		t.Error("swap-outs still pay the link")
	}
}
