package serve

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// capacityOf strips a full workload spec down to the capacity descriptor an
// Instance carries, and returns the arrival stream (times + shapes) the
// router would push — generated through the same exported helpers Run uses
// internally.
func capacityOf(t *testing.T, s Spec) (cap Spec, times []float64, shapes []Request) {
	t.Helper()
	d := s.withDefaults()
	shapes, err := MixShapes(d.Mix, d.Requests, d.Seed)
	if err != nil {
		t.Fatal(err)
	}
	times = PoissonArrivalTimes(d.Rate, d.Requests, d.Seed)
	cap = s
	cap.PromptTokens, cap.GenTokens = 0, 0
	cap.Mix, cap.Trace = nil, nil
	cap.Arrival, cap.Rate, cap.Clients, cap.Requests, cap.Seed = Poisson, 0, 0, 0, 0
	return cap, times, shapes
}

// TestInstanceReproducesRun: an Instance pushed Run's own arrival stream
// must reproduce Run byte-identically (reflect + JSON) across the policy
// axis — the degenerate-equivalence pin for the steppable-core refactor
// and the foundation of the R=1 cluster equivalence.
func TestInstanceReproducesRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Spec)
	}{
		{"reserve", func(s *Spec) {}},
		{"paged", func(s *Spec) { s.Policy = Paged; s.PageTokens = 16; s.KVCapacity = 3e9; s.MaxBatch = 8 }},
		{"disagg", func(s *Spec) { s.Policy = Disaggregated; s.TransferGBps = 25; s.KVCapacity = 3e9 }},
		{"mix", func(s *Spec) {
			s.PromptTokens, s.GenTokens = 0, 0
			s.Mix = []TenantLoad{
				{Tenant: "chat", Share: 0.7, PromptTokens: 150, GenTokens: 100},
				{Tenant: "batch", Share: 0.3, PromptTokens: 400, GenTokens: 50},
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := spec0(t)
			s.Rate, s.Requests = 2.0, 48
			tc.mut(&s)
			want, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}

			capSpec, times, shapes := capacityOf(t, s)
			in, err := NewInstance(capSpec, shapes)
			if err != nil {
				t.Fatal(err)
			}
			for i, at := range times {
				in.AdvanceTo(at)
				if err := in.Push(shapes[i], at); err != nil {
					t.Fatal(err)
				}
			}
			in.Drain()
			got, err := in.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("instance result diverges from Run")
			}
			jw, _ := json.Marshal(want)
			jg, _ := json.Marshal(got)
			if string(jw) != string(jg) {
				t.Errorf("JSON encodings differ:\nrun:      %.200s\ninstance: %.200s", jw, jg)
			}
		})
	}
}

// TestInstanceAdvanceGranularityIrrelevant: an instance's outcome depends
// only on its push sequence, never on whether or how finely the driver
// interleaves AdvanceTo (Push advances to the arrival itself) — the
// property that lets load-independent routing run replicas fully parallel
// while load-aware routing barriers per arrival to sample loads.
func TestInstanceAdvanceGranularityIrrelevant(t *testing.T) {
	s := spec0(t)
	s.Rate, s.Requests = 2.0, 32
	capSpec, times, shapes := capacityOf(t, s)

	run := func(advance func(in *Instance, at float64)) Result {
		in, err := NewInstance(capSpec, shapes)
		if err != nil {
			t.Fatal(err)
		}
		for i, at := range times {
			advance(in, at)
			if err := in.Push(shapes[i], at); err != nil {
				t.Fatal(err)
			}
		}
		in.Drain()
		res, err := in.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	coarse := run(func(in *Instance, at float64) {})                       // push everything, then drain
	perArrival := run(func(in *Instance, at float64) { in.AdvanceTo(at) }) // barrier before each push
	fine := run(func(in *Instance, at float64) {                           // many tiny advances
		for t := in.Load().Now; t < at; t += 0.05 {
			in.AdvanceTo(t)
		}
		in.AdvanceTo(at)
	})
	if !reflect.DeepEqual(coarse, perArrival) || !reflect.DeepEqual(coarse, fine) {
		t.Error("advance granularity changed the simulation outcome")
	}
}

// TestInstanceLoadObservables: the load snapshot tracks the event loop —
// monotone completion count, conserved in-flight accounting, and a final
// drained state with nothing queued or running.
func TestInstanceLoadObservables(t *testing.T) {
	s := spec0(t)
	s.Rate, s.Requests = 4.0, 24
	capSpec, times, shapes := capacityOf(t, s)
	in, err := NewInstance(capSpec, shapes)
	if err != nil {
		t.Fatal(err)
	}
	prevDone := 0
	for i, at := range times {
		in.AdvanceTo(at)
		l := in.Load()
		if l.Done < prevDone {
			t.Fatalf("completed count went backwards: %d then %d", prevDone, l.Done)
		}
		prevDone = l.Done
		if l.Done+l.InFlight() != in.Pushed() {
			t.Fatalf("push %d: done %d + in-flight %d != pushed %d", i, l.Done, l.InFlight(), in.Pushed())
		}
		if l.KVBytes < 0 || l.KVPages < 0 {
			t.Fatalf("negative KV accounting: %g bytes, %d pages", l.KVBytes, l.KVPages)
		}
		if err := in.Push(shapes[i], at); err != nil {
			t.Fatal(err)
		}
	}
	in.Drain()
	l := in.Load()
	if l.InFlight() != 0 || l.Done != len(times) {
		t.Errorf("drained instance load = %+v, want 0 in flight and %d done", l, len(times))
	}
	if in.Pushed() != len(times) {
		t.Errorf("Pushed() = %d, want %d", in.Pushed(), len(times))
	}
}

// TestInstanceValidation pins the Instance API's rejection surface: specs
// smuggling workload or arrival fields, empty envelopes, out-of-order or
// malformed pushes, oversized contexts, and use-after-drain.
func TestInstanceValidation(t *testing.T) {
	s := spec0(t)
	capSpec, _, shapes := capacityOf(t, s)

	bad := capSpec
	bad.PromptTokens = 100
	if _, err := NewInstance(bad, shapes); err == nil || !strings.Contains(err.Error(), "capacity only") {
		t.Errorf("workload fields on an instance spec: got %v", err)
	}
	bad = capSpec
	bad.Rate = 1
	if _, err := NewInstance(bad, shapes); err == nil || !strings.Contains(err.Error(), "arrival process") {
		t.Errorf("arrival fields on an instance spec: got %v", err)
	}
	if _, err := NewInstance(capSpec, nil); err == nil || !strings.Contains(err.Error(), "envelope") {
		t.Errorf("empty envelope: got %v", err)
	}
	if _, err := NewInstance(capSpec, []Request{{Tenant: "x", PromptTokens: -1, GenTokens: 1}}); err == nil {
		t.Error("malformed envelope shape should be rejected")
	}

	in, err := NewInstance(capSpec, shapes)
	if err != nil {
		t.Fatal(err)
	}
	sh := shapes[0]
	if err := in.Push(sh, 5); err != nil {
		t.Fatal(err)
	}
	if err := in.Push(sh, 4); err == nil || !strings.Contains(err.Error(), "non-decreasing") {
		t.Errorf("decreasing push time: got %v", err)
	}
	if err := in.Push(sh, math.Inf(1)); err == nil {
		t.Error("infinite push time should be rejected")
	}
	if err := in.Push(Request{Tenant: "x", PromptTokens: 0, GenTokens: 1}, 6); err == nil {
		t.Error("zero-prompt push should be rejected")
	}
	if err := in.Push(Request{Tenant: "x", PromptTokens: 1 << 20, GenTokens: 1 << 20}, 6); err == nil ||
		!strings.Contains(err.Error(), "envelope") {
		t.Errorf("over-envelope context: got %v", err)
	}
	if _, err := in.Result(); err == nil || !strings.Contains(err.Error(), "drain") {
		t.Errorf("result before drain: got %v", err)
	}
	in.Drain()
	if err := in.Push(sh, 7); err == nil || !strings.Contains(err.Error(), "drain") {
		t.Errorf("push after drain: got %v", err)
	}
}

// TestInstanceZeroPushes: an instance drained without any pushes reports a
// zero-request Result rather than dividing by zero iterations.
func TestInstanceZeroPushes(t *testing.T) {
	s := spec0(t)
	capSpec, _, shapes := capacityOf(t, s)
	in, err := NewInstance(capSpec, shapes)
	if err != nil {
		t.Fatal(err)
	}
	in.Drain()
	res, err := in.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 0 || res.Iterations != 0 || res.SimTime != 0 {
		t.Errorf("zero-push result = %d requests, %d iterations, %g sim time; want all zero",
			res.Requests, res.Iterations, res.SimTime)
	}
	if math.IsNaN(res.MeanBatch) || math.IsNaN(res.MeanKVUtil) {
		t.Error("zero-push result carries NaN means")
	}
}
