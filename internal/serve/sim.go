package serve

import (
	"fmt"
	"math/rand"
	"sort"

	"optimus/internal/infer"
)

// decodeLine is one batch size's cached decode-step pricing: the step cost
// is linear in the KV length at fixed batch (TestDecodeStepLinearInKV), so
// two samples price every intermediate length exactly.
type decodeLine struct{ base, slope float64 }

// simulator is the steppable core behind Run and Instance: the full
// continuous-batching event loop as explicit state plus a step method, so
// the iteration boundary is a first-class place to observe load (the
// cluster router hook) without perturbing the sealed admission policies.
// Run drives it to completion over a pre-generated arrival stream;
// Instance feeds it request by request.
type simulator struct {
	spec Spec
	pol  AdmissionPolicy
	// dp is the disaggregated policy's widened handle (nil elsewhere): the
	// only policy with pool-migration state the event loop must drain
	// (transfer time) and report (per-pool counters).
	dp *disaggPolicy

	coster    *infer.StepCoster
	kv0, kv1  int
	refPrompt int

	prefillCache map[int]float64
	decodeCache  map[int]decodeLine

	budget   float64
	batchCap int

	// arrivals/shapes/nextArr/issued are the Run-mode pre-generated
	// arrival stream; Instance mode leaves them empty and feeds the queue
	// through pushShape. target is the completion count Run's driver loop
	// stops at; closed marks closed-loop issuing on completion.
	arrivals []float64
	shapes   []Request
	nextArr  int
	issued   int
	target   int
	closed   bool

	now        float64
	queue      []*request // FIFO; preemption re-queues victims at the head
	running    []*request // admission order
	done       []RequestMetrics
	iterations int
	batchSum   float64
	peakBatch  int
	peakKV     float64
	peakPages  int
	utilSum    float64
}

// newSimulator builds the simulator core for a defaulted, shape-validated
// spec: one policy (one memfoot.Inference evaluation — pinned by
// TestRunDerivesKVGeometryOnce), one step coster, and the cached pricing
// samples the event loop re-uses.
func newSimulator(s Spec) (*simulator, error) {
	// One policy per simulation: the KV geometry behind it is derived
	// exactly once, never per iteration.
	pol := newPolicy(s)
	if err := s.validateFit(pol); err != nil {
		return nil, err
	}
	dp, _ := pol.(*disaggPolicy)
	coster, err := infer.NewStepCoster(s.inferSpec())
	if err != nil {
		return nil, err
	}
	// The step cost is linear in the KV length at fixed batch and the
	// prefill cost is fixed per batch, so each batch size needs at most
	// three kernel-enumeration passes; every further iteration prices in
	// O(1). Plain float math on cached samples, so determinism is
	// untouched. The decode line is sampled at the workload's extreme KV
	// lengths — for the degenerate single-tenant workload exactly the PR-3
	// prompt+1 .. prompt+gen span — and, being a line, prices every
	// intermediate per-request length exactly.
	bounds := s.bounds()
	sim := &simulator{
		spec:         s,
		pol:          pol,
		dp:           dp,
		coster:       coster,
		kv0:          bounds.minPrompt + 1,
		kv1:          bounds.maxContext,
		refPrompt:    bounds.maxPrompt,
		prefillCache: make(map[int]float64),
		decodeCache:  make(map[int]decodeLine),
		budget:       pol.budgetBytes(),
		batchCap:     pol.BatchCap(),
		target:       s.Requests,
		done:         make([]RequestMetrics, 0, s.Requests),
	}
	return sim, nil
}

// prefill prices one prefill pass over batch newly admitted sequences at
// the reference prompt length, caching per batch size.
func (sim *simulator) prefill(batch int) float64 {
	t, ok := sim.prefillCache[batch]
	if !ok {
		t = sim.coster.Prefill(batch).Time()
		sim.prefillCache[batch] = t
	}
	return t
}

// decode prices one step at a possibly fractional mean KV length — the
// linear model makes mean-of-batch pricing exact without rounding.
func (sim *simulator) decode(kvMean float64, batch int) float64 {
	ln, ok := sim.decodeCache[batch]
	if !ok {
		ln.base = sim.coster.DecodeStep(sim.kv0, batch).Time()
		if sim.kv1 > sim.kv0 {
			ln.slope = (sim.coster.DecodeStep(sim.kv1, batch).Time() - ln.base) / float64(sim.kv1-sim.kv0)
		}
		sim.decodeCache[batch] = ln
	}
	return ln.base + ln.slope*(kvMean-float64(sim.kv0))
}

// enqueue issues request id at time t with its pre-assigned shape.
func (sim *simulator) enqueue(id int, t float64) {
	sim.pushShape(id, sim.shapes[id], t)
}

// pushShape appends one request to the FIFO queue; it joins the batch at
// the next iteration boundary (iteration-level batching).
func (sim *simulator) pushShape(id int, sh Request, t float64) {
	sim.queue = append(sim.queue, &request{
		id: id, arrival: t,
		tenant: sh.Tenant, prompt: sh.PromptTokens, gen: sh.GenTokens,
	})
}

// admitArrived moves every pre-generated arrival with time <= now into
// the queue (requests landing mid-iteration wait for the next boundary).
func (sim *simulator) admitArrived() {
	for sim.nextArr < len(sim.arrivals) && sim.arrivals[sim.nextArr] <= sim.now {
		sim.enqueue(sim.nextArr, sim.arrivals[sim.nextArr])
		sim.nextArr++
	}
}

// idle reports whether the simulator holds no admissible work: stepping an
// idle simulator would make no progress, so drivers jump the clock (Run,
// Instance.Push) instead.
func (sim *simulator) idle() bool {
	return len(sim.running) == 0 && len(sim.queue) == 0
}

// step executes one batching iteration: policy bookkeeping and preemption,
// admission, pricing, and sequence advancement. It requires pending work
// (queue or running non-empty) and always advances the clock.
func (sim *simulator) step() {
	s := sim.spec

	// Let the policy make room for every established sequence's next
	// token; under the paged policy this is where victims are chosen
	// (LIFO) and sent back to the head of the queue for a recompute
	// readmission.
	kept, victims := sim.pol.beginStep(sim.running)
	sim.running = kept
	if len(victims) > 0 {
		requeue := make([]*request, 0, len(victims)+len(sim.queue))
		// Victims were collected youngest-first; reverse so the queue
		// head readmits the longest-running (most to rebuild) victim
		// first. A victim keeps its produced count: readmission prices
		// one prefill pass that rebuilds the discarded KV — vLLM's
		// recompute preemption, where already-generated tokens are
		// recovered as context by the recompute prefill, not decoded
		// again — and the sequence resumes from where it was evicted.
		for i := len(victims) - 1; i >= 0; i-- {
			v := victims[i]
			v.preempts++
			requeue = append(requeue, v)
		}
		sim.queue = append(requeue, sim.queue...)
	}

	// Admit waiting requests up to the batch cap and the policy's KV
	// capacity. An iteration that just preempted skips admission — the
	// pool is under pressure, and admitting would thrash the victim
	// straight back in.
	newbies, prefillTokens := 0, 0
	if len(victims) == 0 {
		for len(sim.queue) > 0 && len(sim.running) < sim.batchCap && sim.pol.admit(sim.queue[0]) {
			r := sim.queue[0]
			sim.queue = sim.queue[1:]
			if r.admissions == 0 {
				r.admitted = sim.now
			}
			r.admissions++
			sim.running = append(sim.running, r)
			newbies++
			// The pass prefills this request's own prompt; a resumed
			// victim's recompute prefill spans its generated tokens
			// too — bill the true token count below.
			prefillTokens += r.prompt + r.produced
		}
	}
	kv := sim.pol.usedBytes()
	if kv > sim.peakKV {
		sim.peakKV = kv
	}
	if up := sim.pol.usedPages(); up > sim.peakPages {
		sim.peakPages = up
	}
	sim.utilSum += kv / sim.budget
	if len(sim.running) > sim.peakBatch {
		sim.peakBatch = len(sim.running)
	}
	if s.probe != nil {
		held := 0
		for _, r := range sim.running {
			held += r.pages
		}
		_, totalPages := sim.pol.PageGeometry()
		ps := probeState{
			iteration: sim.iterations, running: len(sim.running), queued: len(sim.queue),
			usedPages: sim.pol.usedPages(), totalPages: totalPages, runningPages: held,
			usedBytes: kv, budget: sim.budget,
		}
		if sim.dp != nil {
			ps.prefillPages, ps.prefillTotal = sim.dp.prefillUsed, sim.dp.prefillTotal
			ps.decodePages, ps.decodeTotal = sim.dp.decodeUsed, sim.dp.decodeTotal
			for _, r := range sim.running {
				if r.inDecode {
					ps.runningDecodePages += r.pages
				} else {
					ps.runningPrefillPages += r.pages
				}
			}
			for _, r := range sim.running[:len(sim.running)-newbies] {
				if !r.inDecode {
					ps.decidersInPrefill++
				}
			}
		}
		s.probe(ps)
	}

	// Price the iteration: one prefill pass over the newly admitted
	// sequences plus one decode step over the established ones. The
	// decode batch is priced at its mean KV length — exact under the
	// step cost's linearity in kvLen (TestDecodeStepLinearInKV).
	deciders := sim.running[:len(sim.running)-newbies]
	var iterTime float64
	if newbies > 0 {
		// The prefill sample prices newbies * refPrompt tokens. Batches
		// whose requests carry shorter prompts — and resumed preemption
		// victims, whose recompute prefill also rebuilds their generated
		// tokens' KV — scale the sample by the true token count:
		// per-token linear, which slightly undercharges the quadratic
		// attention share but keeps recompute far from free (and leaves
		// uniform fresh-only batches, the degenerate-equivalence path,
		// untouched).
		t := sim.prefill(newbies)
		if ref := newbies * sim.refPrompt; prefillTokens != ref {
			t *= float64(prefillTokens) / float64(ref)
		}
		iterTime += t
	}
	if len(deciders) > 0 {
		kvSum := 0
		for _, r := range deciders {
			// The step generating token produced+1 attends over the
			// request's own prompt plus every generated token including
			// the new one.
			kvSum += r.prompt + r.produced + 1
		}
		iterTime += sim.decode(float64(kvSum)/float64(len(deciders)), len(deciders))
	}
	if sim.dp != nil {
		// KV migrations accrued by this iteration's pool hand-offs
		// serialize on the interconnect and stall the step; an
		// infinite-bandwidth link contributes exactly zero.
		iterTime += sim.dp.drainTransfer()
	}
	sim.iterations++
	sim.batchSum += float64(len(sim.running))
	sim.now += iterTime

	// Advance sequences: prefill emits the first token, decode steps
	// one more each; completed requests leave and free their KV. The
	// firstToken guard keeps the first emission across preemptions
	// (every iteration has positive duration, so 0 means unset).
	alive := sim.running[:0]
	for _, r := range sim.running {
		r.produced++
		if r.produced == 1 && r.firstToken == 0 {
			r.firstToken = sim.now
		}
		if r.produced < r.gen {
			alive = append(alive, r)
			continue
		}
		sim.pol.release(r)
		m := RequestMetrics{
			ID: r.id, Tenant: r.tenant,
			PromptTokens: r.prompt, GenTokens: r.gen,
			Arrival: r.arrival, Admitted: r.admitted,
			FirstToken: r.firstToken, Done: sim.now,
			Queue:          r.admitted - r.arrival,
			TTFT:           r.firstToken - r.arrival,
			E2E:            sim.now - r.arrival,
			Preemptions:    r.preempts,
			KVTransfers:    r.transfers,
			KVTransferTime: r.transferTime,
		}
		if r.gen > 1 {
			m.TPOT = (sim.now - r.firstToken) / float64(r.gen-1)
		}
		sim.done = append(sim.done, m)
		if sim.closed && sim.issued < sim.target {
			sim.enqueue(sim.issued, sim.now)
			sim.issued++
		}
	}
	sim.running = alive
}

// finish assembles the Result over the completed set. An instance that was
// never pushed a request reports a zero Result (no iterations to average).
func (sim *simulator) finish() Result {
	s := sim.spec
	sort.Slice(sim.done, func(i, j int) bool { return sim.done[i].ID < sim.done[j].ID })
	pageTokens, totalPages := sim.pol.PageGeometry()
	preemptions, recomputed := sim.pol.counters()
	res := Result{
		Requests:         len(sim.done),
		SimTime:          sim.now,
		Iterations:       sim.iterations,
		PeakBatch:        sim.peakBatch,
		PeakKVBytes:      sim.peakKV,
		MaxBatch:         sim.batchCap,
		KVCapacity:       sim.budget,
		Policy:           s.Policy,
		PageTokens:       pageTokens,
		KVPagesTotal:     totalPages,
		PeakKVPages:      sim.peakPages,
		Preemptions:      preemptions,
		RecomputedTokens: recomputed,
		PerRequest:       sim.done,
	}
	if sim.iterations > 0 {
		res.MeanBatch = sim.batchSum / float64(sim.iterations)
		res.MeanKVUtil = sim.utilSum / float64(sim.iterations)
	}
	if sim.dp != nil {
		res.PrefillDevices, res.DecodeDevices = CanonicalPoolSplit(Disaggregated, s.PrefillDevices, s.DecodeDevices, s.TP)
		res.PrefillPagesTotal, res.DecodePagesTotal = sim.dp.prefillTotal, sim.dp.decodeTotal
		res.PeakPrefillPages, res.PeakDecodePages = sim.dp.peakPrefill, sim.dp.peakDecode
		res.KVTransfers, res.TransferTimeTotal = sim.dp.transfers, sim.dp.transferTotal
	}
	if sim.now > 0 {
		genSum := 0
		for _, m := range sim.done {
			genSum += m.GenTokens
		}
		res.ThroughputRPS = float64(len(sim.done)) / sim.now
		res.TokensPerSec = float64(genSum) / sim.now
	}
	res.TTFT = metricPercentiles(sim.done, func(m RequestMetrics) float64 { return m.TTFT })
	res.TPOT = metricPercentiles(sim.done, func(m RequestMetrics) float64 { return m.TPOT })
	res.E2E = metricPercentiles(sim.done, func(m RequestMetrics) float64 { return m.E2E })
	res.Queue = metricPercentiles(sim.done, func(m RequestMetrics) float64 { return m.Queue })
	res.PerTenant = tenantBreakdown(sim.done)
	return res
}

// PoissonArrivalTimes pre-generates n open-loop Poisson arrival timestamps
// (exponential interarrivals at rate requests/sec) from the seeded stream
// Run itself draws — the cluster router generates the fleet-wide arrival
// stream through this exact helper so a routed workload and a single-replica
// Run see byte-identical timestamps.
func PoissonArrivalTimes(rate float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	out := make([]float64, n)
	for i := range out {
		t += rng.ExpFloat64() / rate
		out[i] = t
	}
	return out
}

// MixShapes deterministically assigns each of n arrival indices its request
// shape from a validated workload mix — the exported form of the assignment
// Run uses, so routers splitting one generated workload across replicas
// reproduce Run's per-index shapes exactly.
func MixShapes(mix []TenantLoad, n int, seed int64) ([]Request, error) {
	if err := ValidateMix(mix); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("serve: negative request count %d", n)
	}
	return mixShapes(mix, n, seed), nil
}

// TenantBreakdown groups completed requests by tenant, sorted by tenant
// name — exported so fleet-level aggregations (internal/cluster) summarize
// merged request sets with exactly the per-tenant math Run uses.
func TenantBreakdown(done []RequestMetrics) []TenantMetrics {
	return tenantBreakdown(done)
}

// Summarize computes nearest-rank percentiles over a sample (the input
// slice is not modified). See Percentiles for the small-sample semantics.
func Summarize(values []float64) Percentiles {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentiles(sorted)
}
