package serve

import (
	"fmt"
	"math"
	"sort"

	"optimus/internal/infer"
	"optimus/internal/workload"
)

// decodeLine is one batch size's cached decode-step pricing: the step cost
// is linear in the KV length at fixed batch (TestDecodeStepLinearInKV), so
// two samples price every intermediate length exactly.
type decodeLine struct{ base, slope float64 }

// indexDeque is a growable ring buffer of request indices — the FIFO wait
// queue with O(1) pushFront for preemption re-queues, replacing the
// allocate-and-copy `append(requeue, queue...)` of the pointer-slice era.
// Capacity is always a power of two so position math is a mask, not a
// division.
type indexDeque struct {
	buf  []int32
	head int
	n    int
}

//optimus:hotpath
func (d *indexDeque) len() int { return d.n }

//optimus:hotpath
func (d *indexDeque) reset() { d.head, d.n = 0, 0 }

// grow doubles the buffer (minimum 64) and re-packs the live window at
// offset zero.
func (d *indexDeque) grow() {
	newCap := 2 * len(d.buf)
	if newCap < 64 {
		newCap = 64
	}
	nb := make([]int32, newCap)
	mask := len(d.buf) - 1
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)&mask]
	}
	d.buf, d.head = nb, 0
}

// pushBack enqueues at the tail; amortized alloc-free (grow doubles).
//
//optimus:hotpath
func (d *indexDeque) pushBack(v int32) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = v
	d.n++
}

// pushFront re-enqueues a preemption victim at the head.
//
//optimus:hotpath
func (d *indexDeque) pushFront(v int32) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.n++
}

//optimus:hotpath
func (d *indexDeque) popFront() int32 {
	v := d.buf[d.head]
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return v
}

//optimus:hotpath
func (d *indexDeque) front() int32 { return d.buf[d.head] }

// simulator is the steppable core behind Run and Instance: the full
// continuous-batching event loop as explicit state plus a step method, so
// the iteration boundary is a first-class place to observe load (the
// cluster router hook) without perturbing the sealed admission policies.
// Run drives it to completion over a pre-generated arrival stream;
// Instance feeds it request by request.
//
// The in-flight request state lives in a flat struct-of-arrays slab
// (reqs), with the queue and running set as index views over it — the
// steady-state event loop moves int32 indices, never pointers, so it
// neither allocates nor pays GC write barriers. reset reuses every slab
// across simulations (the Runner pooling seam).
type simulator struct {
	spec Spec
	pol  AdmissionPolicy
	// dp is the disaggregated policy's widened handle (nil elsewhere): the
	// only policy with pool-migration state the event loop must drain
	// (transfer time) and report (per-pool counters).
	dp *disaggPolicy
	// pp is the paged policy's widened handle (nil elsewhere): the prefix
	// registry and host KV tier live on it, and the event loop drains its
	// accrued swap time each iteration (exactly zero without a tier).
	pp *pagedPolicy

	coster *infer.StepCoster
	// costerSpec is the pricing key: the exact infer.Spec the coster was
	// built from. A reset whose spec prices identically (same key, same
	// kv0/kv1 sample points) keeps the coster and the filled tables warm —
	// the steady state of a sweep worker or cluster replica re-running one
	// configuration.
	costerSpec infer.Spec
	kv0, kv1   int
	refPrompt  int

	// prefillTab/decodeTab are dense lazily-filled pricing tables indexed
	// by batch size — a bounds-checked array load per step, replacing the
	// map caches. NaN marks an unfilled slot (a NaN-priced cost is refilled
	// each hit with identical math, so results cannot drift).
	prefillTab []float64
	decodeTab  []decodeLine

	budget float64
	// invBudget caches 1/budget: utilization accrues once per iteration
	// and a float divide there is measurable.
	invBudget float64
	batchCap  int

	// arrivals/shapes/nextArr/issued are the Run-mode pre-generated
	// arrival stream; Instance mode leaves them empty and feeds the queue
	// through pushShape. target is the completion count Run's driver loop
	// stops at; closed marks closed-loop issuing on completion.
	arrivals []float64
	shapes   []Request
	nextArr  int
	issued   int
	target   int
	closed   bool

	now float64
	// reqs is the request slab: one entry per issued id, indexed by id
	// (ids are issued densely, so id == slab position).
	reqs    []request
	queue   indexDeque // FIFO; preemption re-queues victims at the head
	running []int32    // admission order
	victims []int32    // beginStep's reusable victim buffer
	scratch []float64  // reusable percentile-pass buffer
	done    []RequestMetrics

	iterations int
	batchSum   float64
	peakBatch  int
	peakKV     float64
	peakPages  int
	utilSum    float64
}

// newSimulator builds the simulator core for a defaulted, shape-validated
// spec: one policy (one memfoot.Inference evaluation — pinned by
// TestRunDerivesKVGeometryOnce), one step coster, and the cached pricing
// samples the event loop re-uses.
func newSimulator(s Spec) (*simulator, error) {
	sim := new(simulator)
	if err := sim.reset(s); err != nil {
		return nil, err
	}
	return sim, nil
}

// reset re-arms the simulator for a defaulted, shape-validated spec,
// reusing every slab the previous simulation grew (request pool, queue,
// running/victim index buffers, pricing tables, percentile scratch). The
// per-spec state — policy, step coster, pricing samples — is rebuilt from
// scratch, so a reset simulator is byte-identical to a fresh one
// (TestRunnerReuseMatchesFresh).
func (sim *simulator) reset(s Spec) error {
	// One policy per simulation: the KV geometry behind it is derived
	// exactly once, never per iteration.
	pol := newPolicy(s)
	if err := s.validateFit(pol); err != nil {
		return err
	}
	dp, _ := pol.(*disaggPolicy)
	pp, _ := pol.(*pagedPolicy)
	if pp != nil {
		// The readmission swap-in-vs-recompute decision prices the
		// recompute path through the simulator's prefill table.
		pp.sim = sim
	}
	// The step cost is linear in the KV length at fixed batch and the
	// prefill cost is fixed per batch, so each batch size needs at most
	// three kernel-enumeration passes; every further iteration prices in
	// O(1). Plain float math on cached samples, so determinism is
	// untouched. The decode line is sampled at the workload's extreme KV
	// lengths — for the degenerate single-tenant workload exactly the PR-3
	// prompt+1 .. prompt+gen span — and, being a line, prices every
	// intermediate per-request length exactly.
	bounds := s.bounds()
	is := s.inferSpec()
	kv0, kv1 := bounds.minPrompt+1, bounds.maxContext
	if sim.coster == nil || is != sim.costerSpec || kv0 != sim.kv0 || kv1 != sim.kv1 {
		// Pricing inputs changed (or first run): rebuild the coster and
		// invalidate every cached sample. An identical key prices every
		// batch size byte-identically (same coster math, same kv sample
		// points), so the tables stay warm across such resets.
		coster, err := infer.NewStepCoster(is)
		if err != nil {
			return err
		}
		sim.coster = coster
		sim.costerSpec = is
		for i := range sim.prefillTab {
			sim.prefillTab[i] = math.NaN()
		}
		for i := range sim.decodeTab {
			sim.decodeTab[i] = decodeLine{base: math.NaN()}
		}
	}
	sim.spec = s
	sim.pol = pol
	sim.dp = dp
	sim.pp = pp
	sim.kv0 = kv0
	sim.kv1 = kv1
	sim.refPrompt = bounds.maxPrompt
	sim.budget = pol.budgetBytes()
	sim.invBudget = 1 / sim.budget
	sim.batchCap = pol.BatchCap()
	sim.arrivals, sim.shapes = nil, nil
	sim.nextArr, sim.issued = 0, 0
	sim.target = s.Requests
	sim.closed = false
	sim.now = 0
	if cap(sim.reqs) < s.Requests {
		sim.reqs = make([]request, 0, s.Requests)
	} else {
		sim.reqs = sim.reqs[:0]
	}
	sim.queue.reset()
	sim.running = sim.running[:0]
	sim.victims = sim.victims[:0]
	// done escapes into Result.PerRequest, so it is the one per-run
	// allocation reuse cannot elide.
	sim.done = make([]RequestMetrics, 0, s.Requests)
	sim.iterations = 0
	sim.batchSum = 0
	sim.peakBatch = 0
	sim.peakKV = 0
	sim.peakPages = 0
	sim.utilSum = 0
	return nil
}

// prefill prices one prefill pass over batch newly admitted sequences at
// the reference prompt length, caching per batch size.
//
//optimus:hotpath
func (sim *simulator) prefill(batch int) float64 {
	for batch >= len(sim.prefillTab) {
		sim.prefillTab = append(sim.prefillTab, math.NaN())
	}
	t := sim.prefillTab[batch]
	if math.IsNaN(t) {
		t = sim.coster.Prefill(batch).Time()
		sim.prefillTab[batch] = t
	}
	return t
}

// decode prices one step at a possibly fractional mean KV length — the
// linear model makes mean-of-batch pricing exact without rounding.
//
//optimus:hotpath
func (sim *simulator) decode(kvMean float64, batch int) float64 {
	for batch >= len(sim.decodeTab) {
		sim.decodeTab = append(sim.decodeTab, decodeLine{base: math.NaN()})
	}
	ln := sim.decodeTab[batch]
	if math.IsNaN(ln.base) {
		ln.base = sim.coster.DecodeStep(sim.kv0, batch).Time()
		ln.slope = 0
		if sim.kv1 > sim.kv0 {
			ln.slope = (sim.coster.DecodeStep(sim.kv1, batch).Time() - ln.base) / float64(sim.kv1-sim.kv0)
		}
		sim.decodeTab[batch] = ln
	}
	return ln.base + ln.slope*(kvMean-float64(sim.kv0))
}

// enqueue issues request id at time t with its pre-assigned shape.
//
//optimus:hotpath
func (sim *simulator) enqueue(id int, t float64) {
	sim.pushShape(id, sim.shapes[id], t)
}

// pushShape appends one request to the FIFO queue; it joins the batch at
// the next iteration boundary (iteration-level batching). Ids are issued
// densely in order, so the request lands at slab position id. A shared
// prefix is interned into the paged policy's registry here, once per id —
// admission then works with a slot index, never the string.
//
//optimus:hotpath
func (sim *simulator) pushShape(id int, sh Request, t float64) {
	sim.reqs = append(sim.reqs, request{
		id: id, arrival: t,
		tenant: sh.Tenant, prompt: sh.PromptTokens, gen: sh.GenTokens,
		prefix: sh.PrefixTokens, prefixSlot: -1,
	})
	if sh.PrefixTokens > 0 {
		sim.reqs[len(sim.reqs)-1].prefixSlot = sim.pp.intern(sh.PrefixID, sh.PrefixTokens)
	}
	sim.queue.pushBack(int32(id))
}

// recomputeCost prices a recompute-readmission prefill over tokens: the
// single-sequence prefill sample scaled to the true token count — the
// same linear scaling step applies when billing a mixed batch's prefill.
// The swap-in-vs-recompute decision compares against this.
//
//optimus:hotpath
func (sim *simulator) recomputeCost(tokens int) float64 {
	t := sim.prefill(1)
	if tokens != sim.refPrompt {
		t *= float64(tokens) / float64(sim.refPrompt)
	}
	return t
}

// admitArrived moves every pre-generated arrival with time <= now into
// the queue (requests landing mid-iteration wait for the next boundary).
//
//optimus:hotpath
func (sim *simulator) admitArrived() {
	for sim.nextArr < len(sim.arrivals) && sim.arrivals[sim.nextArr] <= sim.now {
		sim.enqueue(sim.nextArr, sim.arrivals[sim.nextArr])
		sim.nextArr++
	}
}

// idle reports whether the simulator holds no admissible work: stepping an
// idle simulator would make no progress, so drivers jump the clock (Run,
// Instance.Push) instead.
//
//optimus:hotpath
func (sim *simulator) idle() bool {
	return len(sim.running) == 0 && sim.queue.len() == 0
}

// step executes one batching iteration: policy bookkeeping and preemption,
// admission, pricing, and sequence advancement. It requires pending work
// (queue or running non-empty) and always advances the clock.
//
//optimus:hotpath
func (sim *simulator) step() {
	// Let the policy make room for every established sequence's next
	// token; under the paged policy this is where victims are chosen
	// (LIFO) and sent back to the head of the queue for a recompute
	// readmission.
	kept, victims := sim.pol.beginStep(sim.reqs, sim.running, sim.victims[:0])
	sim.running = kept
	sim.victims = victims
	// Victims were collected youngest-first; pushing each to the queue
	// head in that order leaves the longest-running (most to rebuild)
	// victim at the head for readmission. A victim keeps its produced
	// count: readmission prices one prefill pass that rebuilds the
	// discarded KV — vLLM's recompute preemption, where already-generated
	// tokens are recovered as context by the recompute prefill, not
	// decoded again — and the sequence resumes from where it was evicted.
	for _, vi := range victims {
		sim.reqs[vi].preempts++
		sim.queue.pushFront(vi)
	}

	// Admit waiting requests up to the batch cap and the policy's KV
	// capacity. An iteration that just preempted skips admission — the
	// pool is under pressure, and admitting would thrash the victim
	// straight back in.
	newbies, prefillTokens := 0, 0
	if len(victims) == 0 {
		for sim.queue.len() > 0 && len(sim.running) < sim.batchCap && sim.pol.admit(&sim.reqs[sim.queue.front()]) {
			id := sim.queue.popFront()
			r := &sim.reqs[id]
			if r.admissions == 0 {
				r.admitted = sim.now
			}
			r.admissions++
			sim.running = append(sim.running, id)
			newbies++
			// The pass prefills this request's own prompt; a resumed
			// victim's recompute prefill spans its generated tokens
			// too — bill the true token count below. Tokens the policy
			// restored for free (a resident prefix's span, a host-tier
			// swap-in's) drop out of the bill; the swap itself is priced
			// separately on the link via drainSwap.
			prefillTokens += r.prompt + r.produced - r.prefillFree
		}
	}
	kv := sim.pol.usedBytes()
	if kv > sim.peakKV {
		sim.peakKV = kv
	}
	if up := sim.pol.usedPages(); up > sim.peakPages {
		sim.peakPages = up
	}
	sim.utilSum += kv * sim.invBudget
	if len(sim.running) > sim.peakBatch {
		sim.peakBatch = len(sim.running)
	}
	// Read the probe hook without copying the whole Spec — step runs once
	// per iteration and a struct copy here is measurable.
	if probe := sim.spec.probe; probe != nil {
		held := 0
		for _, id := range sim.running {
			held += sim.reqs[id].pages
		}
		_, totalPages := sim.pol.PageGeometry()
		ps := probeState{
			iteration: sim.iterations, running: len(sim.running), queued: sim.queue.len(),
			usedPages: sim.pol.usedPages(), totalPages: totalPages, runningPages: held,
			usedBytes: kv, budget: sim.budget,
		}
		if sim.pp != nil {
			ps.prefixPages = sim.pp.residentPrefixPages()
			ps.hostPages, ps.hostTotal = sim.pp.hostUsed, sim.pp.hostTotal
		}
		if sim.dp != nil {
			ps.prefillPages, ps.prefillTotal = sim.dp.prefillUsed, sim.dp.prefillTotal
			ps.decodePages, ps.decodeTotal = sim.dp.decodeUsed, sim.dp.decodeTotal
			for _, id := range sim.running {
				r := &sim.reqs[id]
				if r.inDecode {
					ps.runningDecodePages += r.pages
				} else {
					ps.runningPrefillPages += r.pages
				}
			}
			for _, id := range sim.running[:len(sim.running)-newbies] {
				if !sim.reqs[id].inDecode {
					ps.decidersInPrefill++
				}
			}
		}
		probe(ps)
	}

	// Price the iteration: one prefill pass over the newly admitted
	// sequences plus one decode step over the established ones. The
	// decode batch is priced at its mean KV length — exact under the
	// step cost's linearity in kvLen (TestDecodeStepLinearInKV).
	deciders := sim.running[:len(sim.running)-newbies]
	var iterTime float64
	if newbies > 0 {
		// The prefill sample prices newbies * refPrompt tokens. Batches
		// whose requests carry shorter prompts — and resumed preemption
		// victims, whose recompute prefill also rebuilds their generated
		// tokens' KV — scale the sample by the true token count:
		// per-token linear, which slightly undercharges the quadratic
		// attention share but keeps recompute far from free (and leaves
		// uniform fresh-only batches, the degenerate-equivalence path,
		// untouched).
		t := sim.prefill(newbies)
		if ref := newbies * sim.refPrompt; prefillTokens != ref {
			t *= float64(prefillTokens) / float64(ref)
		}
		iterTime += t
	}
	if len(deciders) > 0 {
		kvSum := 0
		for _, id := range deciders {
			// The step generating token produced+1 attends over the
			// request's own prompt plus every generated token including
			// the new one.
			r := &sim.reqs[id]
			kvSum += r.prompt + r.produced + 1
		}
		iterTime += sim.decode(float64(kvSum)/float64(len(deciders)), len(deciders))
	}
	if sim.dp != nil {
		// KV migrations accrued by this iteration's pool hand-offs
		// serialize on the interconnect and stall the step; an
		// infinite-bandwidth link contributes exactly zero.
		iterTime += sim.dp.drainTransfer()
	}
	if sim.pp != nil {
		// Host-tier swaps accrued by this iteration's evictions and
		// readmissions serialize on the PCIe-class link the same way;
		// without a tier the drain is exactly zero, preserving the
		// degenerate paged timing bit for bit.
		iterTime += sim.pp.drainSwap()
	}
	sim.iterations++
	sim.batchSum += float64(len(sim.running))
	sim.now += iterTime

	// Advance sequences: prefill emits the first token, decode steps
	// one more each; completed requests leave and free their KV. The
	// firstToken guard keeps the first emission across preemptions
	// (every iteration has positive duration, so 0 means unset).
	alive := sim.running[:0]
	for _, id := range sim.running {
		r := &sim.reqs[id]
		r.produced++
		if r.produced == 1 && r.firstToken == 0 {
			r.firstToken = sim.now
		}
		if r.produced < r.gen {
			alive = append(alive, id)
			continue
		}
		sim.pol.release(r)
		m := RequestMetrics{
			ID: r.id, Tenant: r.tenant,
			PromptTokens: r.prompt, GenTokens: r.gen,
			Arrival: r.arrival, Admitted: r.admitted,
			FirstToken: r.firstToken, Done: sim.now,
			Queue:          r.admitted - r.arrival,
			TTFT:           r.firstToken - r.arrival,
			E2E:            sim.now - r.arrival,
			Preemptions:    r.preempts,
			KVTransfers:    r.transfers,
			KVTransferTime: r.transferTime,
		}
		if r.gen > 1 {
			m.TPOT = (sim.now - r.firstToken) / float64(r.gen-1)
		}
		sim.done = append(sim.done, m)
		if sim.closed && sim.issued < sim.target {
			// enqueue may grow the slab; r is not referenced past here.
			sim.enqueue(sim.issued, sim.now)
			sim.issued++
		}
	}
	sim.running = alive
}

// finish assembles the Result over the completed set. An instance that was
// never pushed a request reports a zero Result (no iterations to average).
func (sim *simulator) finish() Result {
	s := sim.spec
	// Completions in the common open-loop uniform case already come out in
	// ID order; skip the sort (and its closure machinery) when a linear
	// scan confirms it.
	ordered := true
	for i := 1; i < len(sim.done); i++ {
		if sim.done[i-1].ID > sim.done[i].ID {
			ordered = false
			break
		}
	}
	if !ordered {
		sort.Slice(sim.done, func(i, j int) bool { return sim.done[i].ID < sim.done[j].ID })
	}
	pageTokens, totalPages := sim.pol.PageGeometry()
	preemptions, recomputed := sim.pol.counters()
	res := Result{
		Requests:         len(sim.done),
		SimTime:          sim.now,
		Iterations:       sim.iterations,
		PeakBatch:        sim.peakBatch,
		PeakKVBytes:      sim.peakKV,
		MaxBatch:         sim.batchCap,
		KVCapacity:       sim.budget,
		Policy:           s.Policy,
		PageTokens:       pageTokens,
		KVPagesTotal:     totalPages,
		PeakKVPages:      sim.peakPages,
		Preemptions:      preemptions,
		RecomputedTokens: recomputed,
		PerRequest:       sim.done,
	}
	if sim.iterations > 0 {
		res.MeanBatch = sim.batchSum / float64(sim.iterations)
		res.MeanKVUtil = sim.utilSum / float64(sim.iterations)
	}
	if sim.dp != nil {
		res.PrefillDevices, res.DecodeDevices = CanonicalPoolSplit(Disaggregated, s.PrefillDevices, s.DecodeDevices, s.TP)
		res.PrefillPagesTotal, res.DecodePagesTotal = sim.dp.prefillTotal, sim.dp.decodeTotal
		res.PeakPrefillPages, res.PeakDecodePages = sim.dp.peakPrefill, sim.dp.peakDecode
		res.KVTransfers, res.TransferTimeTotal = sim.dp.transfers, sim.dp.transferTotal
	}
	if sim.pp != nil {
		res.PrefixHits, res.PrefixSavedTokens = sim.pp.prefixHits, sim.pp.prefixSaved
		res.HostPagesTotal, res.PeakHostPages = sim.pp.hostTotal, sim.pp.peakHost
		res.KVSwapOuts, res.KVSwapIns = sim.pp.swapOuts, sim.pp.swapIns
		res.SwapTimeTotal = sim.pp.swapTotal
	}
	if sim.now > 0 {
		genSum := 0
		for _, m := range sim.done {
			genSum += m.GenTokens
		}
		res.ThroughputRPS = float64(len(sim.done)) / sim.now
		res.TokensPerSec = float64(genSum) / sim.now
	}
	res.TTFT, sim.scratch = metricPercentilesBuf(sim.scratch, sim.done, func(m RequestMetrics) float64 { return m.TTFT })
	res.TPOT, sim.scratch = metricPercentilesBuf(sim.scratch, sim.done, func(m RequestMetrics) float64 { return m.TPOT })
	res.E2E, sim.scratch = metricPercentilesBuf(sim.scratch, sim.done, func(m RequestMetrics) float64 { return m.E2E })
	res.Queue, sim.scratch = metricPercentilesBuf(sim.scratch, sim.done, func(m RequestMetrics) float64 { return m.Queue })
	res.PerTenant = sim.perTenant(&res)
	return res
}

// perTenant assembles the per-tenant breakdown. In the ubiquitous
// single-tenant case every per-tenant percentile equals the global one
// finish just computed (same samples, same order, same math — so reuse
// is byte-identical), skipping tenantBreakdown's map and four re-sorts.
func (sim *simulator) perTenant(res *Result) []TenantMetrics {
	single := len(sim.done) > 0
	for i := 1; i < len(sim.done); i++ {
		if sim.done[i].Tenant != sim.done[0].Tenant {
			single = false
			break
		}
	}
	if !single {
		return tenantBreakdown(sim.done)
	}
	gen := 0
	for _, m := range sim.done {
		gen += m.GenTokens
	}
	return []TenantMetrics{{
		Tenant: sim.done[0].Tenant, Requests: len(sim.done), GenTokens: gen,
		TTFT: res.TTFT, TPOT: res.TPOT, E2E: res.E2E, Queue: res.Queue,
	}}
}

// PoissonArrivalTimes pre-generates n open-loop Poisson arrival timestamps
// (exponential interarrivals at rate requests/sec) from the seeded stream
// Run itself draws — the cluster router generates the fleet-wide arrival
// stream through this exact helper so a routed workload and a single-replica
// Run see byte-identical timestamps.
//
// The rate must be positive and finite and n non-negative, exactly as
// Spec.Validate enforces for Run; violations panic (a zero, negative, NaN
// or infinite rate would otherwise silently yield Inf/NaN timestamps that
// stall every downstream event loop).
func PoissonArrivalTimes(rate float64, n int, seed int64) []float64 {
	return appendPoissonArrivals(nil, rate, n, seed)
}

// appendPoissonArrivals is PoissonArrivalTimes into a reusable buffer —
// the Runner pooling seam; the generation itself lives in
// internal/workload.
func appendPoissonArrivals(dst []float64, rate float64, n int, seed int64) []float64 {
	return workload.AppendPoissonArrivals(dst, rate, n, seed)
}

// MixShapes deterministically assigns each of n arrival indices its request
// shape from a validated workload mix — the exported form of the assignment
// Run uses, so routers splitting one generated workload across replicas
// reproduce Run's per-index shapes exactly.
func MixShapes(mix []TenantLoad, n int, seed int64) ([]Request, error) {
	if err := ValidateMix(mix); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("serve: negative request count %d", n)
	}
	return mixShapes(mix, n, seed), nil
}

// TenantBreakdown groups completed requests by tenant, sorted by tenant
// name — exported so fleet-level aggregations (internal/cluster) summarize
// merged request sets with exactly the per-tenant math Run uses.
func TenantBreakdown(done []RequestMetrics) []TenantMetrics {
	return tenantBreakdown(done)
}

// Summarize computes nearest-rank percentiles over a sample (the input
// slice is not modified). See Percentiles for the small-sample semantics.
//
// NaN values panic: a NaN breaks the sort's total order, which would make
// every percentile silently order-dependent. Infinities are legal samples
// (a saturated SLO) and sort to the tail as expected.
func Summarize(values []float64) Percentiles {
	for _, v := range values {
		if math.IsNaN(v) {
			panic("serve: Summarize sample contains NaN")
		}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentiles(sorted)
}
