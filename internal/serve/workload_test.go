package serve

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// uniformMix rewrites a spec-wide-shaped spec as its explicit one-tenant
// mix — the degenerate workload the equivalence suite pins.
func uniformMix(s Spec) Spec {
	s.Mix = []TenantLoad{{
		Tenant: DefaultTenant, Share: 1,
		PromptTokens: s.PromptTokens, GenTokens: s.GenTokens,
	}}
	s.PromptTokens, s.GenTokens = 0, 0
	return s
}

// TestUniformMixMatchesSpecWide is the tentpole equivalence gate: an
// explicit uniform single-tenant mix must reproduce the spec-wide
// (PR-3 interface) simulation byte-identically — same percentiles,
// per-request timelines, per-tenant breakdowns, KV accounting — across a
// rate × cap × policy × seed grid covering reservation, paged preemption
// and paged NoPreempt. JSON byte comparison makes "byte-identical"
// literal.
func TestUniformMixMatchesSpecWide(t *testing.T) {
	base := spec0(t)
	for _, rate := range []float64{0.25, 1, 2.5, 5} {
		for _, batchCap := range []int{0, 3, 16} {
			for _, seed := range []int64{1, 7} {
				for _, pol := range []struct {
					name   string
					mutate func(*Spec)
				}{
					{"reserve", func(s *Spec) {}},
					{"paged", func(s *Spec) { s.Policy = Paged }},
					{"paged-no-preempt", func(s *Spec) { s.Policy = Paged; s.NoPreempt = true }},
				} {
					specWide := base
					specWide.Rate, specWide.MaxBatch, specWide.Seed = rate, batchCap, seed
					pol.mutate(&specWide)
					want, err := Run(specWide)
					if err != nil {
						t.Fatal(err)
					}
					got, err := Run(uniformMix(specWide))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s rate=%g cap=%d seed=%d: uniform mix diverges from spec-wide result",
							pol.name, rate, batchCap, seed)
					}
					ja, _ := json.Marshal(got)
					jb, _ := json.Marshal(want)
					if string(ja) != string(jb) {
						t.Fatalf("%s rate=%g cap=%d seed=%d: JSON encodings differ",
							pol.name, rate, batchCap, seed)
					}
				}
			}
		}
	}
}

// TestUniformMixMatchesSpecWideUnderPressure extends the equivalence to a
// preempting paged run and a closed-loop run — the stateful corners where
// a stray spec-wide constant would first diverge.
func TestUniformMixMatchesSpecWideUnderPressure(t *testing.T) {
	pressured := pressureSpec(t)
	want, err := Run(pressured)
	if err != nil {
		t.Fatal(err)
	}
	if want.Preemptions == 0 {
		t.Fatal("equivalence must be exercised under preemption")
	}
	got, err := Run(uniformMix(pressured))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("uniform mix diverges from spec-wide result on a preempting run")
	}

	closed := spec0(t)
	closed.Arrival, closed.Rate, closed.Clients = ClosedLoop, 0, 6
	closed.Requests = 32
	want, err = Run(closed)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Run(uniformMix(closed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("uniform mix diverges from spec-wide result on a closed-loop run")
	}
}

// mixedSpec is a two-tenant chat+batch workload: short interactive
// requests sharing the engine with long-prompt batch jobs.
func mixedSpec(t *testing.T) Spec {
	s := spec0(t)
	s.PromptTokens, s.GenTokens = 0, 0
	s.Mix = []TenantLoad{
		{Tenant: "chat", Share: 0.7, PromptTokens: 200, GenTokens: 200},
		{Tenant: "batch", Share: 0.3, PromptTokens: 1200, GenTokens: 100},
	}
	s.Rate = 2
	s.Requests = 96
	return s
}

// TestMixedWorkloadBehavior: a heterogeneous mix must complete every
// request with per-request shapes echoed, produce a per-tenant breakdown
// that partitions the aggregate, respect the share weighting, and price
// the long-prompt tenant's prefill visibly higher (TTFT).
func TestMixedWorkloadBehavior(t *testing.T) {
	s := mixedSpec(t)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != s.Requests {
		t.Fatalf("completed %d of %d requests", res.Requests, s.Requests)
	}
	shapes := map[string]TenantLoad{}
	for _, tl := range s.Mix {
		shapes[tl.Tenant] = tl
	}
	genSum := 0
	for _, m := range res.PerRequest {
		tl, ok := shapes[m.Tenant]
		if !ok {
			t.Fatalf("request %d carries unknown tenant %q", m.ID, m.Tenant)
		}
		if m.PromptTokens != tl.PromptTokens || m.GenTokens != tl.GenTokens {
			t.Fatalf("request %d shape %d+%d does not match tenant %q's %d+%d",
				m.ID, m.PromptTokens, m.GenTokens, m.Tenant, tl.PromptTokens, tl.GenTokens)
		}
		if m.Admitted < m.Arrival || m.FirstToken <= m.Admitted || m.Done < m.FirstToken {
			t.Errorf("request %d timeline out of order: %+v", m.ID, m)
		}
		genSum += m.GenTokens
	}
	if got := res.TokensPerSec * res.SimTime; math.Abs(got-float64(genSum)) > 1e-6*float64(genSum) {
		t.Errorf("TokensPerSec %g inconsistent with %d generated tokens over %g s",
			res.TokensPerSec, genSum, res.SimTime)
	}

	if len(res.PerTenant) != 2 {
		t.Fatalf("expected 2 tenant summaries, got %+v", res.PerTenant)
	}
	if res.PerTenant[0].Tenant != "batch" || res.PerTenant[1].Tenant != "chat" {
		t.Fatalf("per-tenant rows must be sorted by name: %+v", res.PerTenant)
	}
	total := 0
	for _, tm := range res.PerTenant {
		total += tm.Requests
		if tm.Requests == 0 {
			t.Fatalf("tenant %q drew no requests; loosen the seed or requests", tm.Tenant)
		}
	}
	if total != res.Requests {
		t.Errorf("per-tenant requests sum to %d, result says %d", total, res.Requests)
	}
	// 0.7/0.3 shares over 96 requests: the split is random but a 50/50 or
	// worse inversion would mean the weighting is broken.
	chat := res.PerTenant[1]
	if chat.Requests <= res.PerTenant[0].Requests {
		t.Errorf("chat (share 0.7) drew %d requests, batch (share 0.3) %d — weighting inverted",
			chat.Requests, res.PerTenant[0].Requests)
	}
	// The 1200-token prefill costs strictly more than the 200-token one,
	// so the batch tenant's median TTFT must sit above chat's.
	if res.PerTenant[0].TTFT.P50 <= chat.TTFT.P50 {
		t.Errorf("long-prompt tenant should pay more TTFT: batch p50 %g vs chat p50 %g",
			res.PerTenant[0].TTFT.P50, chat.TTFT.P50)
	}
}

// TestMixedWorkloadDeterminism: multi-tenant runs draw tenant assignments
// from their own seeded stream and must stay byte-identical across runs,
// while a different seed reshuffles the assignment.
func TestMixedWorkloadDeterminism(t *testing.T) {
	s := mixedSpec(t)
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("repeated mixed runs at one seed must be byte-identical")
	}
	s.Seed = 99
	c, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.PerRequest, c.PerRequest) {
		t.Error("different seeds should reshuffle arrivals and tenant draws")
	}
}

// TestMixedPagedConservation runs the per-iteration KV probe invariant on
// a heterogeneous paged workload under pressure: per-request page math
// must never leak or over-commit even when page needs differ per request,
// with and without preemption.
func TestMixedPagedConservation(t *testing.T) {
	for name, noPreempt := range map[string]bool{"preempting": false, "no-preempt": true} {
		s := mixedSpec(t)
		s.Policy = Paged
		s.Rate = 6
		s.Requests = 64
		_, perRequest := s.kvBudget()
		s.KVCapacity = 5 * perRequest
		s.NoPreempt = noPreempt
		steps := 0
		s.probe = func(ps probeState) {
			steps++
			if ps.runningPages > ps.usedPages {
				t.Fatalf("%s iter %d: running set holds %d pages but only %d committed — leak",
					name, ps.iteration, ps.runningPages, ps.usedPages)
			}
			if !noPreempt && ps.usedPages != ps.runningPages {
				t.Fatalf("%s iter %d: policy committed %d pages, running set holds %d — leak",
					name, ps.iteration, ps.usedPages, ps.runningPages)
			}
			if ps.usedPages > ps.totalPages {
				t.Fatalf("%s iter %d: %d pages committed of a %d-page pool",
					name, ps.iteration, ps.usedPages, ps.totalPages)
			}
			if ps.usedBytes > ps.budget*(1+1e-12) {
				t.Fatalf("%s iter %d: %g KV bytes committed of a %g budget",
					name, ps.iteration, ps.usedBytes, ps.budget)
			}
		}
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if steps != res.Iterations {
			t.Fatalf("%s: probe saw %d iterations, result says %d", name, steps, res.Iterations)
		}
		if !noPreempt && res.Preemptions == 0 {
			t.Fatalf("%s: invariant must be exercised under preemption; tighten the KV budget", name)
		}
		if noPreempt && res.Preemptions != 0 {
			t.Fatalf("%s: NoPreempt run evicted", name)
		}
	}
}

// TestMixedReserveHeterogeneousAccounting: under reservation, requests
// reserve their own context bytes — the long-prompt tenant more, the chat
// tenant less — and the peak commitment stays within the budget.
func TestMixedReserveHeterogeneousAccounting(t *testing.T) {
	s := mixedSpec(t)
	s.Rate = 6
	_, perLargest := s.kvBudget()
	s.KVCapacity = 4 * perLargest
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakKVBytes > s.KVCapacity*(1+1e-12) {
		t.Errorf("peak KV %g exceeds budget %g", res.PeakKVBytes, s.KVCapacity)
	}
	// Four largest contexts fit; chat contexts are smaller (400 of 1300
	// tokens), so a chat-heavy batch must at some point hold more than
	// four concurrent sequences — per-request accounting, not the old
	// spec-wide perRequest multiply.
	if res.PeakBatch <= 4 {
		t.Errorf("heterogeneous reservation should admit more small requests than budget/largest (peak %d)",
			res.PeakBatch)
	}
}

// TestTraceReplay: an explicit trace must complete exactly its events,
// honor its arrival times and shapes, and be byte-identical across runs.
func TestTraceReplay(t *testing.T) {
	s := spec0(t)
	s.PromptTokens, s.GenTokens, s.Rate, s.Requests, s.Seed = 0, 0, 0, 0, 0
	s.Trace = []TraceEvent{
		{Arrival: 0, Request: Request{Tenant: "chat", PromptTokens: 100, GenTokens: 40}},
		{Arrival: 0.05, Request: Request{Tenant: "batch", PromptTokens: 900, GenTokens: 80}},
		{Arrival: 0.05, Request: Request{Tenant: "chat", PromptTokens: 120, GenTokens: 30}},
		{Arrival: 2.5, Request: Request{Tenant: "chat", PromptTokens: 80, GenTokens: 20}},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(s.Trace) {
		t.Fatalf("completed %d of %d trace events", res.Requests, len(s.Trace))
	}
	for i, m := range res.PerRequest {
		ev := s.Trace[i]
		if m.Arrival != ev.Arrival || m.Tenant != ev.Tenant ||
			m.PromptTokens != ev.PromptTokens || m.GenTokens != ev.GenTokens {
			t.Errorf("request %d does not echo its trace event: %+v vs %+v", i, m, ev)
		}
		if m.Admitted < m.Arrival {
			t.Errorf("request %d admitted before it arrived", i)
		}
	}
	again, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(res)
	jb, _ := json.Marshal(again)
	if string(ja) != string(jb) {
		t.Error("trace replay must be byte-identical across runs")
	}
}

// TestWorkloadValidation covers the mix/trace spec checks.
func TestWorkloadValidation(t *testing.T) {
	check := func(name string, wantErr bool, mutate func(*Spec)) {
		t.Helper()
		s := spec0(t)
		mutate(&s)
		err := s.Validate()
		if wantErr && err == nil {
			t.Errorf("%s should fail validation", name)
		}
		if !wantErr && err != nil {
			t.Errorf("%s should validate: %v", name, err)
		}
	}
	clearShape := func(s *Spec) { s.PromptTokens, s.GenTokens = 0, 0 }
	goodMix := []TenantLoad{
		{Tenant: "a", Share: 1, PromptTokens: 100, GenTokens: 50},
		{Tenant: "b", Share: 2, PromptTokens: 300, GenTokens: 20},
	}
	goodTrace := []TraceEvent{
		{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}},
		{Arrival: 1, Request: Request{Tenant: "b", PromptTokens: 200, GenTokens: 20}},
	}
	clearArrival := func(s *Spec) { s.Rate, s.Clients, s.Requests, s.Seed = 0, 0, 0, 0 }

	check("two-tenant mix", false, func(s *Spec) { clearShape(s); s.Mix = goodMix })
	check("trace", false, func(s *Spec) { clearShape(s); clearArrival(s); s.Trace = goodTrace })
	check("mix with spec-wide shape", true, func(s *Spec) { s.Mix = goodMix })
	check("trace with spec-wide shape", true, func(s *Spec) { clearArrival(s); s.Trace = goodTrace })
	check("mix and trace together", true, func(s *Spec) { clearShape(s); clearArrival(s); s.Mix = goodMix; s.Trace = goodTrace })
	check("trace with a rate", true, func(s *Spec) { clearShape(s); s.Trace = goodTrace; s.Rate = 1; s.Requests = 0; s.Seed = 0 })
	check("trace with explicit requests", true, func(s *Spec) {
		clearShape(s)
		clearArrival(s)
		s.Trace = goodTrace
		s.Requests = 7
	})
	check("empty tenant name", true, func(s *Spec) {
		clearShape(s)
		s.Mix = []TenantLoad{{Share: 1, PromptTokens: 100, GenTokens: 50}}
	})
	// Separator-bearing tenant names make FormatMix's rendering ambiguous:
	// "a:1:2:3,b" as one tenant renders identically to two tenants, so two
	// distinct workloads would share one sweep memo token and CSV column.
	check("tenant name with colons", true, func(s *Spec) {
		clearShape(s)
		s.Mix = []TenantLoad{{Tenant: "a:1:2:3", Share: 1, PromptTokens: 100, GenTokens: 50}}
	})
	check("tenant name with a comma", true, func(s *Spec) {
		clearShape(s)
		s.Mix = []TenantLoad{{Tenant: "a,b", Share: 1, PromptTokens: 100, GenTokens: 50}}
	})
	check("tenant name with trailing whitespace", true, func(s *Spec) {
		clearShape(s)
		s.Mix = []TenantLoad{{Tenant: "a ", Share: 1, PromptTokens: 100, GenTokens: 50}}
	})
	check("trace tenant name with a comma", true, func(s *Spec) {
		clearShape(s)
		clearArrival(s)
		s.Trace = []TraceEvent{{Arrival: 0, Request: Request{Tenant: "a,b", PromptTokens: 100, GenTokens: 10}}}
	})
	check("trace tenant name with a colon", true, func(s *Spec) {
		clearShape(s)
		clearArrival(s)
		s.Trace = []TraceEvent{{Arrival: 0, Request: Request{Tenant: "a:b", PromptTokens: 100, GenTokens: 10}}}
	})
	check("trace tenant name with leading whitespace", true, func(s *Spec) {
		clearShape(s)
		clearArrival(s)
		s.Trace = []TraceEvent{{Arrival: 0, Request: Request{Tenant: " a", PromptTokens: 100, GenTokens: 10}}}
	})
	check("duplicate tenant", true, func(s *Spec) {
		clearShape(s)
		s.Mix = []TenantLoad{
			{Tenant: "a", Share: 1, PromptTokens: 100, GenTokens: 50},
			{Tenant: "a", Share: 1, PromptTokens: 200, GenTokens: 50},
		}
	})
	check("zero share", true, func(s *Spec) {
		clearShape(s)
		s.Mix = []TenantLoad{{Tenant: "a", Share: 0, PromptTokens: 100, GenTokens: 50}}
	})
	check("NaN share", true, func(s *Spec) {
		clearShape(s)
		s.Mix = []TenantLoad{{Tenant: "a", Share: math.NaN(), PromptTokens: 100, GenTokens: 50}}
	})
	check("zero mix gen", true, func(s *Spec) {
		clearShape(s)
		s.Mix = []TenantLoad{{Tenant: "a", Share: 1, PromptTokens: 100}}
	})
	check("zero mix prompt", true, func(s *Spec) {
		clearShape(s)
		s.Mix = []TenantLoad{{Tenant: "a", Share: 1, GenTokens: 100}}
	})
	check("unsorted trace", true, func(s *Spec) {
		clearShape(s)
		clearArrival(s)
		s.Trace = []TraceEvent{
			{Arrival: 2, Request: Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}},
			{Arrival: 1, Request: Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}},
		}
	})
	check("negative trace arrival", true, func(s *Spec) {
		clearShape(s)
		clearArrival(s)
		s.Trace = []TraceEvent{{Arrival: -1, Request: Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}}}
	})
	check("trace event without tenant", true, func(s *Spec) {
		clearShape(s)
		clearArrival(s)
		s.Trace = []TraceEvent{{Arrival: 0, Request: Request{PromptTokens: 100, GenTokens: 10}}}
	})
	// The largest mix request must fit, not just the average one.
	check("mix with an unfittable tenant", true, func(s *Spec) {
		clearShape(s)
		s.Mix = goodMix
		_, per := Spec{
			Model: s.Model, System: s.System, TP: s.TP, Precision: s.Precision,
			PromptTokens: 300, GenTokens: 20,
		}.kvBudget()
		s.KVCapacity = per / 2
	})
}

// TestParseFormatMix round-trips the CLI mix syntax and rejects garbage.
func TestParseFormatMix(t *testing.T) {
	mix, err := ParseMix("chat:0.7:200:200, batch:0.3:2000:100")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantLoad{
		{Tenant: "chat", Share: 0.7, PromptTokens: 200, GenTokens: 200},
		{Tenant: "batch", Share: 0.3, PromptTokens: 2000, GenTokens: 100},
	}
	if !reflect.DeepEqual(mix, want) {
		t.Fatalf("ParseMix = %+v, want %+v", mix, want)
	}
	formatted := FormatMix(mix)
	back, err := ParseMix(formatted)
	if err != nil || !reflect.DeepEqual(back, mix) {
		t.Fatalf("FormatMix %q does not round-trip: %+v, %v", formatted, back, err)
	}
	for _, bad := range []string{
		"", "chat", "chat:1:200", "chat:1:200:200:9:sys:extra", "chat:x:200:200",
		"chat:1:x:200", "chat:1:200:x", "chat:0:200:200", ":1:200:200",
		"chat:1:200:200,chat:1:100:100", "chat:1:0:200", "chat:1:200:0",
		"chat :1:200:200",      // internal trailing whitespace cannot round-trip
		"chat:1:200:200:x",     // non-numeric prefix length
		"chat:1:200:200:200",   // prefix swallows the whole prompt
		"chat:1:200:200:-1",    // negative prefix length
		"chat:1:200:200:9:s,m", // separator-bearing prefix id
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) should fail", bad)
		}
	}
	// The prefix forms round-trip: 5-field (id defaults to the tenant),
	// 6-field (explicit shared id), and the degenerate id-with-zero-tokens
	// case FormatMix must keep explicit to survive reparsing.
	for _, src := range []string{
		"chat:1:200:200:9",
		"chat:0.5:200:200:9:sys,batch:0.5:2000:100:9:sys",
	} {
		mix, err := ParseMix(src)
		if err != nil {
			t.Fatalf("ParseMix(%q): %v", src, err)
		}
		back, err := ParseMix(FormatMix(mix))
		if err != nil || !reflect.DeepEqual(back, mix) {
			t.Fatalf("prefix mix %q does not round-trip via %q: %+v, %v", src, FormatMix(mix), back, err)
		}
	}
	mix5, _ := ParseMix("chat:1:200:200:9")
	if mix5[0].PrefixID != "chat" || mix5[0].PrefixTokens != 9 {
		t.Fatalf("5-field form must default PrefixID to the tenant: %+v", mix5[0])
	}
	zeroID := []TenantLoad{{Tenant: "chat", Share: 1, PromptTokens: 200, GenTokens: 200, PrefixID: "sys"}}
	backZero, err := ParseMix(FormatMix(zeroID))
	if err != nil || !reflect.DeepEqual(backZero, zeroID) {
		t.Fatalf("zero-token explicit-id mix does not round-trip via %q: %+v, %v", FormatMix(zeroID), backZero, err)
	}
}

// TestTenantNameCollisionRejected is the regression gate on the workload
// token: a tenant name carrying the mix separators used to render — via
// FormatMix's unescaped joins — identically to a different multi-tenant
// workload, so two distinct workloads shared one sweep CSV mix column and
// memo token. Such names are now rejected at validation, in mixes and
// traces alike.
func TestTenantNameCollisionRejected(t *testing.T) {
	// Pre-fix, these two distinct workloads rendered to the same token.
	impostor := []TenantLoad{
		{Tenant: "a:1:2:3,b", Share: 1, PromptTokens: 2, GenTokens: 3},
	}
	honest := []TenantLoad{
		{Tenant: "a", Share: 1, PromptTokens: 2, GenTokens: 3},
		{Tenant: "b", Share: 1, PromptTokens: 2, GenTokens: 3},
	}
	if FormatMix(impostor) != FormatMix(honest) {
		t.Fatalf("collision vector lost: %q vs %q — update the test", FormatMix(impostor), FormatMix(honest))
	}
	if err := ValidateMix(impostor); err == nil {
		t.Error("separator-bearing tenant name must be rejected")
	}
	if err := ValidateMix(honest); err != nil {
		t.Errorf("separator-free mix must validate: %v", err)
	}
	// The trace CSV reader can quote a comma-bearing tenant per RFC 4180,
	// so the trace validator must hold the same line.
	if _, err := ParseTrace(strings.NewReader("0,\"a,b\",100,40\n")); err == nil {
		t.Error("quoted comma-bearing trace tenant must be rejected")
	}
}

// TestParseTrace covers the CSV trace reader: header detection, empty
// tenant defaulting, and malformed rows.
func TestParseTrace(t *testing.T) {
	in := "arrival,tenant,prompt,gen\n0.0,chat,100,40\n0.5,,900,80\n1.25,chat,120,30\n"
	trace, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceEvent{
		{Arrival: 0, Request: Request{Tenant: "chat", PromptTokens: 100, GenTokens: 40}},
		{Arrival: 0.5, Request: Request{Tenant: DefaultTenant, PromptTokens: 900, GenTokens: 80}},
		{Arrival: 1.25, Request: Request{Tenant: "chat", PromptTokens: 120, GenTokens: 30}},
	}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("ParseTrace = %+v, want %+v", trace, want)
	}
	// Headerless input parses identically.
	headerless, err := ParseTrace(strings.NewReader("0.0,chat,100,40\n0.5,,900,80\n1.25,chat,120,30\n"))
	if err != nil || !reflect.DeepEqual(headerless, want) {
		t.Fatalf("headerless trace = %+v, %v", headerless, err)
	}
	// A first data row with stray whitespace must parse as data, never be
	// silently swallowed as a misdetected header (regression: the arrival
	// field was the only one not trimmed).
	padded, err := ParseTrace(strings.NewReader("0.0 ,chat,100,40\n0.5,,900,80\n1.25,chat,120,30\n"))
	if err != nil || !reflect.DeepEqual(padded, want) {
		t.Fatalf("whitespace-padded first row = %+v, %v; want %+v", padded, err, want)
	}
	// A first data row whose arrival alone is malformed is an error, not a
	// header — its prompt/gen columns are numeric, a real header's are not.
	if _, err := ParseTrace(strings.NewReader("abc,chat,100,40\n0.5,chat,900,80\n")); err == nil {
		t.Error("malformed first-row arrival should fail loudly, not vanish as a header")
	}
	for _, bad := range []string{
		"",                                   // empty
		"0.0,chat,100\n",                     // missing field
		"0.0,chat,100,40,5\n",                // extra field
		"0.0,chat,x,40\n",                    // bad prompt
		"0.0,chat,100,x\n",                   // bad gen
		"1.0,chat,100,40\n0.5,chat,100,40\n", // unsorted
		"arrival,tenant,prompt\n",            // short header
		"0.0,chat,100,40,sys,x\n",            // bad prefix length
		"0.0,chat,100,40,sys,100\n",          // prefix swallows the prompt
		"0.0,chat,100,40,sys,-3\n",           // negative prefix
		"0.0,chat,100,40,sys,20\n0.5,chat,100,40,sys,30\n", // one id, two lengths
		"0.0,chat,100,40,sys,20\n0.5,chat,100,40\n",        // column count drifts mid-trace
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) should fail", bad)
		}
	}
}

// TestParseTraceBOMAndCRLF is the satellite bugfix regression: a trace
// exported from a Windows-side spreadsheet opens with a UTF-8 BOM and ends
// its rows with CRLF. The BOM used to glue itself onto the "arrival"
// header cell, failing the header detection and the first row's arrival
// parse; both byte sequences must now parse identically to the clean file.
func TestParseTraceBOMAndCRLF(t *testing.T) {
	want, err := ParseTrace(strings.NewReader("arrival,tenant,prompt,gen\n0.0,chat,100,40\n0.5,,900,80\n"))
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string]string{
		"bom":            "\xef\xbb\xbfarrival,tenant,prompt,gen\n0.0,chat,100,40\n0.5,,900,80\n",
		"crlf":           "arrival,tenant,prompt,gen\r\n0.0,chat,100,40\r\n0.5,,900,80\r\n",
		"bom+crlf":       "\xef\xbb\xbfarrival,tenant,prompt,gen\r\n0.0,chat,100,40\r\n0.5,,900,80\r\n",
		"bom+headerless": "\xef\xbb\xbf0.0,chat,100,40\n0.5,,900,80\n",
	} {
		got, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: parsed %+v, want %+v", name, got, want)
		}
	}
	// A BOM'd v2 trace exercises both new paths at once.
	v2, err := ParseTrace(strings.NewReader(
		"\xef\xbb\xbfarrival,tenant,prompt,gen,prefix_id,prefix_tokens\r\n0,chat,100,40,sys,30\r\n1,code,200,50,sys,30\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) != 2 || v2[0].PrefixID != "sys" || v2[0].PrefixTokens != 30 || v2[1].PrefixID != "sys" {
		t.Fatalf("BOM'd v2 trace parsed as %+v", v2)
	}
}

// TestParseFormatTrace pins the trace round-trip in both schemas: a
// prefix-free trace renders in the four-column v1 form (byte-compatible
// with pre-prefix consumers), a prefixed one in the six-column v2 form,
// and ParseTrace(FormatTrace(t)) == t for both — including a v2 trace
// whose events only partially carry prefixes, and one defaulting the
// prefix id to the tenant.
func TestParseFormatTrace(t *testing.T) {
	for name, trace := range map[string][]TraceEvent{
		"v1": {
			{Arrival: 0, Request: Request{Tenant: "chat", PromptTokens: 100, GenTokens: 40}},
			{Arrival: 0.625, Request: Request{Tenant: DefaultTenant, PromptTokens: 900, GenTokens: 80}},
		},
		"v2": {
			{Arrival: 0, Request: Request{Tenant: "chat", PromptTokens: 100, GenTokens: 40, PrefixID: "sys", PrefixTokens: 30}},
			{Arrival: 0.5, Request: Request{Tenant: "code", PromptTokens: 200, GenTokens: 50, PrefixID: "sys", PrefixTokens: 30}},
		},
		"v2-partial": {
			{Arrival: 0, Request: Request{Tenant: "chat", PromptTokens: 100, GenTokens: 40, PrefixID: "chat", PrefixTokens: 30}},
			{Arrival: 0.5, Request: Request{Tenant: "raw", PromptTokens: 200, GenTokens: 50}},
		},
	} {
		var b strings.Builder
		if err := FormatTrace(&b, trace); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantCols := 4
		if name != "v1" {
			wantCols = 6
		}
		header := b.String()[:strings.Index(b.String(), "\n")]
		if got := strings.Count(header, ",") + 1; got != wantCols {
			t.Errorf("%s: rendered a %d-column header, want %d (%q)", name, got, wantCols, header)
		}
		back, err := ParseTrace(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%s: round-trip parse of %q: %v", name, b.String(), err)
		}
		if !reflect.DeepEqual(back, trace) {
			t.Errorf("%s: rendering %q is ambiguous: %+v parsed back as %+v", name, b.String(), trace, back)
		}
	}
}

// TestSingleTenantPerTenantBreakdown: the degenerate workload reports one
// DefaultTenant summary that mirrors the aggregate percentiles.
func TestSingleTenantPerTenantBreakdown(t *testing.T) {
	res, err := Run(spec0(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTenant) != 1 || res.PerTenant[0].Tenant != DefaultTenant {
		t.Fatalf("degenerate run should report one %q tenant, got %+v", DefaultTenant, res.PerTenant)
	}
	tm := res.PerTenant[0]
	if tm.Requests != res.Requests || tm.TTFT != res.TTFT || tm.TPOT != res.TPOT ||
		tm.E2E != res.E2E || tm.Queue != res.Queue {
		t.Error("single-tenant breakdown must mirror the aggregate percentiles")
	}
}

// TestMixFeasibilityUsesLargestRequest: Feasible must gate on the mix's
// largest context — a budget that fits the small tenant but not the large
// one is infeasible, matching Run's verdict.
func TestMixFeasibilityUsesLargestRequest(t *testing.T) {
	s := mixedSpec(t)
	if !Feasible(s) {
		t.Fatal("baseline mixed spec must be feasible")
	}
	_, perLargest := s.kvBudget()
	s.KVCapacity = perLargest * 0.75
	if Feasible(s) {
		t.Error("budget below the largest request's context must be infeasible")
	}
	if _, err := Run(s); err == nil {
		t.Error("Run must reject what Feasible rejects")
	}
}
