package serve

import (
	"fmt"
	"math"
)

// Load is one replica's router-visible load snapshot, sampled at an
// iteration boundary. It is the observability hook cluster routing
// policies rank replicas by; it reads the sealed admission policy's
// accounting without widening the policy interface.
type Load struct {
	// Now is the replica's local clock (simulated seconds).
	Now float64
	// Queued and Running count requests waiting for admission and
	// sequences in the current batch.
	Queued  int
	Running int
	// Done counts completed requests.
	Done int
	// KVPages is the policy's committed page count (zero under
	// ReserveFull); KVBytes the committed KV bytes — the policy-agnostic
	// load measure (reservations under ReserveFull, held pages otherwise).
	KVPages int
	KVBytes float64
}

// InFlight is the total admission-relevant occupancy: queued plus running.
func (l Load) InFlight() int { return l.Queued + l.Running }

// Instance is one steppable serving simulation: the exact event loop
// behind Run, exposed request by request so a cluster router can feed R
// replicas from one split arrival stream and observe per-iteration load.
//
// The driving contract: Push requests in non-decreasing arrival-time
// order; each Push first advances the clock to the arrival (so a request
// can never be admitted before it exists, and explicit AdvanceTo calls are
// purely observational — their granularity never changes the outcome: a
// replica's result depends only on its Push sequence). Drain runs the loop
// to completion; Result then assembles exactly what Run would have
// returned for the same request sequence.
type Instance struct {
	sim     *simulator
	pushed  int
	lastT   float64
	drained bool
}

// NewInstance builds a steppable replica from a capacity spec and a shape
// envelope. The spec carries capacity only — model/system/precision,
// batching and KV limits, and the admission policy; its workload and
// arrival fields must be zero (the router owns the stream). The envelope
// is the set of request shapes the router may push (duplicates are fine):
// the KV geometry, step-cost samples and batch caps are derived from its
// bounds exactly as Run derives them from a workload, so an instance fed a
// workload's requests prices them byte-identically to Run on that
// workload.
func NewInstance(s Spec, envelope []Request) (*Instance, error) {
	return new(Runner).Instance(s, envelope)
}

// Instance re-arms the Runner's pooled simulator as a steppable replica —
// NewInstance without the per-construction slab allocations. The Runner's
// single-live-simulation contract applies: building a new Instance (or
// calling Run) invalidates the previous one.
func (rn *Runner) Instance(s Spec, envelope []Request) (*Instance, error) {
	if len(s.Mix) > 0 || s.Trace != nil || s.PromptTokens != 0 || s.GenTokens != 0 || s.PrefixTokens != 0 {
		return nil, fmt.Errorf("serve: an instance spec carries capacity only — leave PromptTokens/GenTokens/PrefixTokens/Mix/Trace zero, the router pushes requests")
	}
	if s.Arrival != Poisson || s.Rate != 0 || s.Clients != 0 || s.Requests != 0 || s.Seed != 0 ||
		len(s.Schedule) > 0 || s.Turns != 0 || s.Think != 0 {
		return nil, fmt.Errorf("serve: an instance spec carries no arrival process — leave Arrival/Rate/Clients/Requests/Seed/Schedule/Turns/Think zero")
	}
	if len(envelope) == 0 {
		return nil, fmt.Errorf("serve: an instance needs a non-empty shape envelope")
	}
	// Pose the envelope as a zero-time trace: every existing validation
	// and geometry path (shape bounds, KV budget, policy construction,
	// step-coster configuration) then sees exactly the workload Run would
	// see, with no second derivation to drift.
	env := s
	trace := rn.traceBuf[:0]
	for _, sh := range envelope {
		trace = append(trace, TraceEvent{Request: sh})
	}
	rn.traceBuf = trace
	env.Trace = trace
	env = env.withDefaults()
	if err := env.validateShape(); err != nil {
		return nil, err
	}
	if err := rn.sim.reset(env); err != nil {
		return nil, err
	}
	sim := &rn.sim
	// The envelope trace configured geometry; it is not an arrival stream.
	sim.arrivals, sim.shapes, sim.target = nil, nil, 0
	return &Instance{sim: sim}, nil
}

// Push hands the instance one request arriving at time t. Requests must
// arrive in non-decreasing t order and fit the envelope's largest context
// (the KV geometry was sized to it). Push first advances the clock to t
// (running any pending iterations, exactly as Run's loop would before the
// arrival joins the queue); pushing into an instance left idle before t
// jumps the clock to t — Run's idle jump to its next pre-generated
// arrival.
func (in *Instance) Push(r Request, t float64) error {
	if in.drained {
		return fmt.Errorf("serve: push after drain")
	}
	if !(t >= in.lastT) || math.IsInf(t, 0) {
		return fmt.Errorf("serve: push at %g not finite and non-decreasing (previous %g)", t, in.lastT)
	}
	if err := validateTenantName(r.Tenant); err != nil {
		return fmt.Errorf("serve: push: %w", err)
	}
	if r.PromptTokens < 1 || r.GenTokens < 1 {
		return fmt.Errorf("serve: push needs a positive prompt and at least one generated token, got %d/%d", r.PromptTokens, r.GenTokens)
	}
	if c := r.Context(); c > in.sim.kv1 {
		return fmt.Errorf("serve: pushed request spans %d tokens, beyond the instance envelope's largest context %d", c, in.sim.kv1)
	}
	if err := validatePrefix(r.PrefixID, r.PrefixTokens, r.PromptTokens); err != nil {
		return fmt.Errorf("serve: push: %w", err)
	}
	if r.PrefixTokens > 0 {
		if in.sim.pp == nil || in.sim.pp.noPreempt {
			return fmt.Errorf("serve: a prefixed push needs the paged policy with preemption enabled (Policy: Paged, NoPreempt unset)")
		}
		// Session rows grow their prefix turn over turn (the session's
		// accumulated context), so only their shrinking is an error;
		// independent shapes must agree exactly.
		if prev, ok := in.sim.pp.internedPrefixTokens(r.PrefixID); ok {
			if r.Session > 0 {
				if r.PrefixTokens < prev {
					return fmt.Errorf("serve: push: session prefix %q shrank from %d to %d tokens — a session's context only grows", r.PrefixID, prev, r.PrefixTokens)
				}
			} else if prev != r.PrefixTokens {
				return fmt.Errorf("serve: push: prefix %q spans %d tokens here and %d in an earlier push — a shared prefix has one length", r.PrefixID, r.PrefixTokens, prev)
			}
		}
	}
	in.lastT = t
	in.AdvanceTo(t)
	sim := in.sim
	if sim.idle() && sim.now < t {
		sim.now = t
	}
	sim.pushShape(in.pushed, r, t)
	in.pushed++
	sim.target++
	return nil
}

// AdvanceTo runs batching iterations until the instance's clock reaches t
// or it runs out of work. Iterations are atomic: the clock may overshoot
// t, exactly as Run's loop overshoots an arrival landing mid-iteration.
func (in *Instance) AdvanceTo(t float64) {
	sim := in.sim
	for !sim.idle() && sim.now < t {
		sim.step()
	}
}

// NeedsAdvance reports whether AdvanceTo(t) would run at least one
// iteration — the instance holds work and its clock trails t. A router
// barriering a fleet checks this inline and dispatches only the replicas
// with pending iterations, instead of paying a goroutine hand-off for
// every replica at every arrival (clock overshoot makes the no-op case
// the common one).
func (in *Instance) NeedsAdvance(t float64) bool {
	return !in.sim.idle() && in.sim.now < t
}

// Drain runs the instance to completion: every pushed request finishes.
// Further pushes are rejected.
func (in *Instance) Drain() {
	in.drained = true
	sim := in.sim
	for !sim.idle() {
		sim.step()
	}
}

// Pushed returns the number of requests routed to this instance so far.
func (in *Instance) Pushed() int { return in.pushed }

// Load samples the instance's current load. Between a router's barrier
// advances the snapshot is deterministic: it depends only on the push
// sequence and the advance target, never on goroutine scheduling.
func (in *Instance) Load() Load {
	sim := in.sim
	return Load{
		Now:     sim.now,
		Queued:  sim.queue.len(),
		Running: len(sim.running),
		Done:    len(sim.done),
		KVPages: sim.pol.usedPages(),
		KVBytes: sim.pol.usedBytes(),
	}
}

// Result assembles the completed simulation's metrics; the instance must
// be drained first. Request IDs are local push indices (0-based, in push
// order) — a router merging replicas remaps them to its global arrival
// indices.
func (in *Instance) Result() (Result, error) {
	if !in.drained {
		return Result{}, fmt.Errorf("serve: result before drain (%d requests still in flight)", in.sim.target-len(in.sim.done))
	}
	return in.sim.finish(), nil
}
