package serve

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/tech"
)

// stripDisaggIdentity zeroes the fields that name the disaggregated
// policy rather than describe the simulated behavior, so a degenerate
// disaggregated run can be compared byte for byte against a Paged run.
// PageTokens, KVPagesTotal and PeakKVPages are deliberately kept: the
// co-located split shares the paged policy's block geometry, so they must
// match too — as must the preemption counters.
func stripDisaggIdentity(r Result) Result {
	r.Policy = 0
	r.PrefillDevices, r.DecodeDevices = 0, 0
	r.PrefillPagesTotal, r.DecodePagesTotal = 0, 0
	r.PeakPrefillPages, r.PeakDecodePages = 0, 0
	r.KVTransfers, r.TransferTimeTotal = 0, 0
	stripped := append([]RequestMetrics(nil), r.PerRequest...)
	for i := range stripped {
		stripped[i].KVTransfers = 0
		stripped[i].KVTransferTime = 0
	}
	r.PerRequest = stripped
	return r
}

// stripPagedName zeroes only the policy enum, the single field a Paged
// result carries that a stripped disaggregated one cannot share.
func stripPagedName(r Result) Result {
	r.Policy = 0
	return r
}

// disaggDegenerate rewrites a Paged spec as its co-located disaggregated
// equivalent: both pools spanning every device and an infinite-bandwidth
// interconnect, so every per-pool constraint coincides with the shared
// one and every KV transfer prices to exactly zero.
func disaggDegenerate(s Spec) Spec {
	s.Policy = Disaggregated
	s.PrefillDevices, s.DecodeDevices = s.TP, s.TP
	s.TransferGBps = math.Inf(1)
	return s
}

// TestDisaggDegenerateMatchesPaged is the tentpole equivalence gate: the
// disaggregated policy with a co-located pool split (both pools spanning
// every device) and an infinite transfer bandwidth is block-for-block the
// paged policy, and must reproduce it byte-identically — same seeds, all
// percentiles, per-request timelines, page peaks, preemption counters —
// across a grid of arrival rates, batch caps and seeds. JSON byte
// comparison makes "byte-identical" literal.
func TestDisaggDegenerateMatchesPaged(t *testing.T) {
	base := spec0(t)
	base.Policy = Paged
	for _, rate := range []float64{0.25, 1, 2.5, 5} {
		for _, batchCap := range []int{0, 3, 16} {
			for _, seed := range []int64{1, 7} {
				paged := base
				paged.Rate, paged.MaxBatch, paged.Seed = rate, batchCap, seed
				want, err := Run(paged)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(disaggDegenerate(paged))
				if err != nil {
					t.Fatal(err)
				}
				if got.TransferTimeTotal != 0 {
					t.Fatalf("rate=%g cap=%d: infinite bandwidth must price transfers at exactly zero, got %g",
						rate, batchCap, got.TransferTimeTotal)
				}
				if got.KVTransfers == 0 {
					t.Fatalf("rate=%g cap=%d: disaggregated run migrated no sequences", rate, batchCap)
				}
				if got.PrefillPagesTotal != want.KVPagesTotal || got.DecodePagesTotal != want.KVPagesTotal {
					t.Fatalf("rate=%g cap=%d: co-located pools must each span the whole budget: %d/%d of %d",
						rate, batchCap, got.PrefillPagesTotal, got.DecodePagesTotal, want.KVPagesTotal)
				}
				stripped, ref := stripDisaggIdentity(got), stripPagedName(want)
				if !reflect.DeepEqual(stripped, ref) {
					t.Fatalf("rate=%g cap=%d seed=%d: degenerate disaggregated result diverges from paged",
						rate, batchCap, seed)
				}
				ja, _ := json.Marshal(stripped)
				jb, _ := json.Marshal(ref)
				if string(ja) != string(jb) {
					t.Fatalf("rate=%g cap=%d seed=%d: JSON encodings differ", rate, batchCap, seed)
				}
			}
		}
	}
}

// TestDisaggDegenerateMatchesPagedUnderPressure extends the equivalence
// to a preempting run and a heterogeneous multi-tenant run — the stateful
// corners where the two-pool accounting would first diverge from the
// shared-counter one if the co-located constraints were not exactly
// equivalent.
func TestDisaggDegenerateMatchesPagedUnderPressure(t *testing.T) {
	pressured := pressureSpec(t)
	want, err := Run(pressured)
	if err != nil {
		t.Fatal(err)
	}
	if want.Preemptions == 0 {
		t.Fatal("equivalence must be exercised under preemption")
	}
	got, err := Run(disaggDegenerate(pressured))
	if err != nil {
		t.Fatal(err)
	}
	if got.Preemptions != want.Preemptions {
		t.Fatalf("degenerate disaggregated run preempted %d times, paged %d", got.Preemptions, want.Preemptions)
	}
	if !reflect.DeepEqual(stripDisaggIdentity(got), stripPagedName(want)) {
		t.Error("degenerate disaggregated result diverges from paged on a preempting run")
	}

	mixed := mixedSpec(t)
	mixed.Policy = Paged
	want, err = Run(mixed)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Run(disaggDegenerate(mixed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripDisaggIdentity(got), stripPagedName(want)) {
		t.Error("degenerate disaggregated result diverges from paged on a heterogeneous mix")
	}
}

// splitSpec is a genuinely split deployment: two devices, one backing
// each pool, under saturating load and a KV budget tight enough that
// decode growth must preempt.
func splitSpec(t *testing.T) Spec {
	t.Helper()
	sys, err := arch.SystemOf(arch.A100(), 2, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		t.Fatal(err)
	}
	s := Spec{
		Model: cfg, System: sys, TP: 2, Precision: tech.FP16,
		PromptTokens: 200, GenTokens: 200,
		Arrival: Poisson, Rate: 5, Requests: 48, Seed: 1,
		Policy:         Disaggregated,
		PrefillDevices: 1, DecodeDevices: 1,
		TransferGBps: 50,
	}
	_, perRequest := s.kvBudget()
	// Each pool gets half of this: three full contexts' worth.
	s.KVCapacity = 6 * perRequest
	return s
}

// TestDisaggPerPoolConservation is the per-pool KV-conservation probe
// invariant: at every iteration the pages each pool has committed must
// exactly equal the pages the running set holds in that pool, stay within
// that pool's capacity, and the combined commitment within the shared
// budget — including iterations that preempt and migrate.
func TestDisaggPerPoolConservation(t *testing.T) {
	for name, mutate := range map[string]func(*Spec){
		"split":        func(s *Spec) {},
		"co-located":   func(s *Spec) { s.PrefillDevices, s.DecodeDevices = 2, 2 },
		"asym-closed":  func(s *Spec) { s.Arrival = ClosedLoop; s.Rate = 0; s.Clients = 10 },
		"free-link":    func(s *Spec) { s.TransferGBps = math.Inf(1) },
		"uneven-pools": func(s *Spec) { s.PrefillDevices, s.DecodeDevices = 1, 2 },
	} {
		s := splitSpec(t)
		mutate(&s)
		steps := 0
		s.probe = func(ps probeState) {
			steps++
			if ps.prefillPages != ps.runningPrefillPages {
				t.Fatalf("%s iter %d: prefill pool committed %d pages, running set holds %d — leak",
					name, ps.iteration, ps.prefillPages, ps.runningPrefillPages)
			}
			if ps.decodePages != ps.runningDecodePages {
				t.Fatalf("%s iter %d: decode pool committed %d pages, running set holds %d — leak",
					name, ps.iteration, ps.decodePages, ps.runningDecodePages)
			}
			if ps.prefillPages+ps.decodePages != ps.usedPages {
				t.Fatalf("%s iter %d: pools hold %d+%d pages but the policy reports %d",
					name, ps.iteration, ps.prefillPages, ps.decodePages, ps.usedPages)
			}
			if ps.prefillPages > ps.prefillTotal {
				t.Fatalf("%s iter %d: prefill pool %d of %d pages", name, ps.iteration, ps.prefillPages, ps.prefillTotal)
			}
			if ps.decodePages > ps.decodeTotal {
				t.Fatalf("%s iter %d: decode pool %d of %d pages", name, ps.iteration, ps.decodePages, ps.decodeTotal)
			}
			if ps.usedPages > ps.totalPages {
				t.Fatalf("%s iter %d: %d pages committed of a %d-page shared budget",
					name, ps.iteration, ps.usedPages, ps.totalPages)
			}
			if ps.usedBytes > ps.budget*(1+1e-12) {
				t.Fatalf("%s iter %d: %g KV bytes committed of a %g budget",
					name, ps.iteration, ps.usedBytes, ps.budget)
			}
			if ps.decidersInPrefill != 0 {
				t.Fatalf("%s iter %d: %d sequences about to decode while still prefill-resident — beginStep skipped their migration",
					name, ps.iteration, ps.decidersInPrefill)
			}
		}
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if steps != res.Iterations {
			t.Fatalf("%s: probe saw %d iterations, result says %d", name, steps, res.Iterations)
		}
		if res.Requests != s.Requests {
			t.Fatalf("%s: completed %d of %d requests", name, res.Requests, s.Requests)
		}
		if name == "split" && res.Preemptions == 0 {
			t.Fatalf("%s: invariant must be exercised under preemption; tighten the KV budget", name)
		}
		if res.PeakPrefillPages > res.PrefillPagesTotal || res.PeakDecodePages > res.DecodePagesTotal {
			t.Fatalf("%s: per-pool peaks exceed pool capacity: %+v", name, res)
		}
	}
}

// TestDisaggSplitEvictsDecodeResidents pins the pool-aware LIFO rule: in
// a true partition the pools are separate memories, so decode pressure
// may only evict decode residents — preempting a still-prefilling
// sequence frees nothing the binding pool needs and would just thrash
// recomputes. Every eviction therefore follows that admission's
// migration, so a completed request's KV transfers bound its preemptions:
// Preemptions <= KVTransfers <= Preemptions+1 (the +1 slack is a victim
// resumed at produced == gen-1, whose recompute prefill finishes the
// request before it ever re-migrates). The pre-fix cross-pool cascade
// evicted prefill-held victims and broke the lower bound.
func TestDisaggSplitEvictsDecodeResidents(t *testing.T) {
	res, err := Run(splitSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatal("the bound must be exercised under preemption; tighten the KV budget")
	}
	for _, m := range res.PerRequest {
		if m.KVTransfers < m.Preemptions || m.KVTransfers > m.Preemptions+1 {
			t.Errorf("request %d: %d transfers for %d preemptions — a prefill-held sequence was evicted by decode pressure",
				m.ID, m.KVTransfers, m.Preemptions)
		}
	}
	if res.KVTransfers < res.Preemptions || res.KVTransfers > res.Preemptions+res.Requests {
		t.Errorf("aggregate bound broken: %d transfers, %d preemptions, %d requests",
			res.KVTransfers, res.Preemptions, res.Requests)
	}
}

// TestDisaggTransferCostsTime: a finite interconnect must charge real
// simulated time for the migrations — slower links slow TPOT and E2E —
// and the per-request transfer accounting must reconcile with the totals.
func TestDisaggTransferCostsTime(t *testing.T) {
	s := splitSpec(t)
	s.KVCapacity = 0 // ample budget: isolate the transfer cost
	s.Rate = 2

	free := s
	free.TransferGBps = math.Inf(1)
	fast, err := Run(free)
	if err != nil {
		t.Fatal(err)
	}
	if fast.TransferTimeTotal != 0 {
		t.Fatalf("infinite bandwidth charged %g s of transfer", fast.TransferTimeTotal)
	}

	s.TransferGBps = 1 // a deliberately slow 1 GB/s link
	slow, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TransferTimeTotal <= 0 {
		t.Fatal("finite bandwidth must charge transfer time")
	}
	if slow.KVTransfers < s.Requests {
		t.Errorf("every multi-token request migrates at least once: %d transfers for %d requests",
			slow.KVTransfers, s.Requests)
	}
	if slow.E2E.P95 <= fast.E2E.P95 || slow.TPOT.P95 <= fast.TPOT.P95 {
		t.Errorf("slow KV transfers must show up in the SLOs: e2e %g vs %g, tpot %g vs %g",
			slow.E2E.P95, fast.E2E.P95, slow.TPOT.P95, fast.TPOT.P95)
	}
	transfers, transferTime := 0, 0.0
	for _, m := range slow.PerRequest {
		transfers += m.KVTransfers
		transferTime += m.KVTransferTime
		if m.KVTransfers > 0 && m.KVTransferTime <= 0 {
			t.Errorf("request %d migrated %d times for free over a 1 GB/s link", m.ID, m.KVTransfers)
		}
	}
	if transfers != slow.KVTransfers {
		t.Errorf("per-request transfers sum to %d, result says %d", transfers, slow.KVTransfers)
	}
	if rel := math.Abs(transferTime-slow.TransferTimeTotal) / slow.TransferTimeTotal; rel > 1e-9 {
		t.Errorf("per-request transfer time sums to %g, result says %g", transferTime, slow.TransferTimeTotal)
	}
	// The hand-off is priced after the first token: the opening request's
	// prefill runs before any migration exists to stall it, so its TTFT is
	// bit-identical across link speeds (later arrivals queue behind
	// transfer-bearing iterations, so only the first is provably clean).
	if slow.PerRequest[0].TTFT != fast.PerRequest[0].TTFT {
		t.Errorf("the first token precedes the migration: request 0 ttft %g vs %g",
			slow.PerRequest[0].TTFT, fast.PerRequest[0].TTFT)
	}
}

// TestDisaggDeterminism: disaggregated simulations — preempting,
// migrating ones included — must be byte-identical across repeated runs.
func TestDisaggDeterminism(t *testing.T) {
	s := splitSpec(t)
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Preemptions == 0 {
		t.Fatal("determinism must be pinned on a preempting run")
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("disaggregated results differ across repeated runs")
	}
}

// TestDisaggValidation covers the disaggregated-specific spec checks.
func TestDisaggValidation(t *testing.T) {
	check := func(name string, wantErr bool, mutate func(*Spec)) {
		t.Helper()
		s := spec0(t)
		s.Policy = Disaggregated
		mutate(&s)
		err := s.Validate()
		if wantErr && err == nil {
			t.Errorf("%s should fail validation", name)
		}
		if !wantErr && err != nil {
			t.Errorf("%s should validate: %v", name, err)
		}
	}
	check("disagg defaults", false, func(s *Spec) {})
	check("explicit co-located split", false, func(s *Spec) { s.PrefillDevices, s.DecodeDevices = 1, 1 })
	check("custom page size", false, func(s *Spec) { s.PageTokens = 32 })
	check("free transfer", false, func(s *Spec) { s.TransferGBps = math.Inf(1) })
	check("negative prefill pool", true, func(s *Spec) { s.PrefillDevices = -1 })
	check("negative decode pool", true, func(s *Spec) { s.DecodeDevices = -1 })
	check("prefill pool beyond TP", true, func(s *Spec) { s.PrefillDevices = 2 })
	check("decode pool beyond TP", true, func(s *Spec) { s.DecodeDevices = 2 })
	check("negative transfer bandwidth", true, func(s *Spec) { s.TransferGBps = -1 })
	check("NaN transfer bandwidth", true, func(s *Spec) { s.TransferGBps = math.NaN() })
	check("no-preempt under disagg", true, func(s *Spec) { s.NoPreempt = true })
	check("negative page size", true, func(s *Spec) { s.PageTokens = -1 })
	check("pool knobs under reserve", true, func(s *Spec) { s.Policy = ReserveFull; s.PrefillDevices = 1 })
	check("transfer bandwidth under paged", true, func(s *Spec) { s.Policy = Paged; s.TransferGBps = 50 })
	check("NaN transfer bandwidth under reserve", true, func(s *Spec) { s.Policy = ReserveFull; s.TransferGBps = math.NaN() })
}

// TestDisaggFeasibleMatchesRun extends the sweep-pruning contract: the
// largest request's full context must fit each pool, not just the shared
// budget — a half split needs twice the single-context headroom.
func TestDisaggFeasibleMatchesRun(t *testing.T) {
	s := splitSpec(t)
	if !Feasible(s) {
		t.Error("baseline split spec must be feasible")
	}
	if _, err := Run(s); err != nil {
		t.Errorf("feasible split spec must run: %v", err)
	}
	// 1.5 contexts of shared budget: the paged policy would accept it, but
	// each half pool holds only 0.75 of one — the decode pool could never
	// grow the lone request to completion.
	_, per := s.kvBudget()
	s.KVCapacity = 1.5 * per
	if Feasible(s) {
		t.Error("half pools below one full context must be infeasible")
	}
	if _, err := Run(s); err == nil {
		t.Error("infeasible split spec must be rejected by Run")
	}
}

// TestDisaggPolicyNames covers the enum rendering, parsing and JSON.
func TestDisaggPolicyNames(t *testing.T) {
	if Disaggregated.String() != "disagg" {
		t.Errorf("Disaggregated renders as %q", Disaggregated.String())
	}
	for _, token := range []string{"disagg", "disaggregated"} {
		got, err := ParsePolicy(token)
		if err != nil || got != Disaggregated {
			t.Errorf("ParsePolicy(%q) = %v, %v", token, got, err)
		}
	}
	data, err := json.Marshal(Disaggregated)
	if err != nil || string(data) != `"disagg"` {
		t.Errorf("Disaggregated marshals to %s, %v", data, err)
	}
	var back Policy
	if err := json.Unmarshal(data, &back); err != nil || back != Disaggregated {
		t.Errorf("Disaggregated does not round-trip JSON: %v, %v", back, err)
	}
}

// TestCanonicalPoolSplit pins the shared split rule the simulator and the
// sweep's memo-key canonicalization both build on.
func TestCanonicalPoolSplit(t *testing.T) {
	for _, c := range []struct {
		pol                 Policy
		prefill, decode, tp int
		wantPre, wantDec    int
	}{
		{ReserveFull, 2, 2, 4, 0, 0},
		{Paged, 2, 2, 4, 0, 0},
		{Disaggregated, 0, 0, 4, 4, 4}, // unset → co-located
		{Disaggregated, 2, 0, 4, 2, 4},
		{Disaggregated, 1, 3, 4, 1, 3},
		{Disaggregated, 1, 1, 0, 0, 0}, // no devices → no geometry
	} {
		pre, dec := CanonicalPoolSplit(c.pol, c.prefill, c.decode, c.tp)
		if pre != c.wantPre || dec != c.wantDec {
			t.Errorf("CanonicalPoolSplit(%v, %d, %d, %d) = %d+%d, want %d+%d",
				c.pol, c.prefill, c.decode, c.tp, pre, dec, c.wantPre, c.wantDec)
		}
	}
	if got := CanonicalTransferGBps(Paged, 50); got != 0 {
		t.Errorf("paged transfer bandwidth canonicalizes to %g, want 0", got)
	}
	if got := CanonicalTransferGBps(Disaggregated, 0); got != DefaultTransferGBps {
		t.Errorf("unset disagg bandwidth canonicalizes to %g, want %g", got, DefaultTransferGBps)
	}
	if got := CanonicalTransferGBps(Disaggregated, math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("infinite bandwidth must stay infinite, got %g", got)
	}
	if got := CanonicalPageTokens(Disaggregated, 0, 400); got != DefaultPageTokens {
		t.Errorf("disagg page size canonicalizes to %d, want the paged default %d", got, DefaultPageTokens)
	}
}
