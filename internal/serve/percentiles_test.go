package serve

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// nearestRankIndex computes the nearest-rank index ceil(q·n)-1 in exact
// integer arithmetic (q = num/100), the ground truth the float path in
// percentiles must match for every sample size.
func nearestRankIndex(num, n int) int {
	i := (num*n+99)/100 - 1
	if i < 0 {
		i = 0
	}
	return i
}

// TestPercentilesNearestRank is the property suite pinning the nearest-rank
// definition: for identity samples (value == index) every quantile must
// land on its exact integer rank across a dense range of n, which makes any
// float off-by-one in ceil(q·n) visible as a wrong value. It also pins
// monotonicity in q and the documented small-sample saturation boundaries
// (n < 20 ⇒ P95 == Max, n < 100 ⇒ P99 == Max, with the first non-saturated
// n exactly at 20 and 100).
func TestPercentilesNearestRank(t *testing.T) {
	ns := make([]int, 0, 4300)
	for n := 1; n <= 4096; n++ {
		ns = append(ns, n)
	}
	// Spot-check large sizes where float error in q·n has the most room.
	for _, n := range []int{10_000, 99_999, 100_000, 999_999, 1_000_000} {
		ns = append(ns, n)
	}
	for _, n := range ns {
		sorted := make([]float64, n)
		for i := range sorted {
			sorted[i] = float64(i)
		}
		p := percentiles(sorted)
		if want := float64(nearestRankIndex(50, n)); p.P50 != want {
			t.Fatalf("n=%d: P50 rank = %g, want %g", n, p.P50, want)
		}
		if want := float64(nearestRankIndex(95, n)); p.P95 != want {
			t.Fatalf("n=%d: P95 rank = %g, want %g", n, p.P95, want)
		}
		if want := float64(nearestRankIndex(99, n)); p.P99 != want {
			t.Fatalf("n=%d: P99 rank = %g, want %g", n, p.P99, want)
		}
		if !(p.P50 <= p.P95 && p.P95 <= p.P99 && p.P99 <= p.Max) {
			t.Fatalf("n=%d: quantiles not monotone: %+v", n, p)
		}
		if p.Max != sorted[n-1] {
			t.Fatalf("n=%d: Max = %g, want %g", n, p.Max, sorted[n-1])
		}
		// The documented small-sample saturation: nearest-rank pins the
		// tail quantiles to Max until the sample is large enough to carry
		// a distinct tail rank.
		if n < 20 && p.P95 != p.Max {
			t.Fatalf("n=%d: P95 = %g should saturate to Max %g", n, p.P95, p.Max)
		}
		if n < 100 && p.P99 != p.Max {
			t.Fatalf("n=%d: P99 = %g should saturate to Max %g", n, p.P99, p.Max)
		}
	}
	// The saturation boundary is sharp: the first distinct tail rank
	// appears exactly at n == 20 (P95) and n == 100 (P99).
	twenty := make([]float64, 20)
	hundred := make([]float64, 100)
	for i := range twenty {
		twenty[i] = float64(i)
	}
	for i := range hundred {
		hundred[i] = float64(i)
	}
	if p := percentiles(twenty); p.P95 != 18 || p.Max != 19 {
		t.Errorf("n=20: P95 = %g (want 18, the first sub-Max rank), Max = %g", p.P95, p.Max)
	}
	if p := percentiles(hundred); p.P99 != 98 || p.Max != 99 {
		t.Errorf("n=100: P99 = %g (want 98, the first sub-Max rank), Max = %g", p.P99, p.Max)
	}
}

// TestSummarize: the exported wrapper sorts a copy — unsorted input yields
// the same summary as the pre-sorted sample and the caller's slice is left
// untouched; the empty sample is the zero summary.
func TestSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 257)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	orig := append([]float64(nil), vals...)
	got := Summarize(vals)
	for i := range vals {
		if vals[i] != orig[i] {
			t.Fatal("Summarize mutated its input")
		}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if want := percentiles(sorted); got != want {
		t.Errorf("Summarize = %+v, want %+v", got, want)
	}
	if z := Summarize(nil); z != (Percentiles{}) {
		t.Errorf("empty Summarize = %+v, want zero", z)
	}
}

// TestSummarizePanicsOnNaN: a NaN sample breaks the sort's total order —
// every percentile would silently depend on the input's order — so
// Summarize refuses it loudly. Infinities are legal samples (a saturated
// SLO) and sort to the tail.
func TestSummarizePanicsOnNaN(t *testing.T) {
	for _, tc := range []struct {
		name      string
		vals      []float64
		wantPanic bool
	}{
		{"clean", []float64{3, 1, 2}, false},
		{"empty", nil, false},
		{"positive-inf", []float64{1, math.Inf(1)}, false},
		{"negative-inf", []float64{math.Inf(-1), 1}, false},
		{"nan-only", []float64{math.NaN()}, true},
		{"nan-mixed", []float64{1, math.NaN(), 2}, true},
		{"nan-tail", []float64{1, 2, math.NaN()}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); (r != nil) != tc.wantPanic {
					t.Errorf("panic = %v, wantPanic %v", r, tc.wantPanic)
				}
			}()
			p := Summarize(tc.vals)
			if tc.name == "positive-inf" && !math.IsInf(p.Max, 1) {
				t.Errorf("infinite sample should surface as Max, got %g", p.Max)
			}
		})
	}
}

// TestPoissonArrivalTimesPanicsOnBadInput: a zero, negative, NaN or
// infinite rate would silently yield Inf/NaN timestamps that stall every
// downstream event loop, and a negative count has no meaning — both
// violate the documented contract and panic, exactly as Spec.Validate
// rejects them for Run.
func TestPoissonArrivalTimesPanicsOnBadInput(t *testing.T) {
	for _, tc := range []struct {
		name      string
		rate      float64
		n         int
		wantPanic bool
	}{
		{"valid", 2.5, 8, false},
		{"zero-n", 1, 0, false},
		{"zero-rate", 0, 8, true},
		{"negative-rate", -1, 8, true},
		{"nan-rate", math.NaN(), 8, true},
		{"inf-rate", math.Inf(1), 8, true},
		{"negative-n", 1, -1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); (r != nil) != tc.wantPanic {
					t.Errorf("panic = %v, wantPanic %v", r, tc.wantPanic)
				}
			}()
			times := PoissonArrivalTimes(tc.rate, tc.n, 1)
			if len(times) != tc.n {
				t.Errorf("got %d timestamps, want %d", len(times), tc.n)
			}
			for i, ts := range times {
				if !(ts > 0) || math.IsInf(ts, 0) {
					t.Errorf("timestamp %d = %g, want positive finite", i, ts)
				}
				if i > 0 && ts < times[i-1] {
					t.Errorf("timestamps must be non-decreasing, got %g after %g", ts, times[i-1])
				}
			}
		})
	}
}
