package serve

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/infer"
	"optimus/internal/model"
	"optimus/internal/tech"
)

// spec0 is the baseline experiment: Llama2-13B on one A100, 200/200-token
// requests, open-loop Poisson arrivals.
func spec0(t *testing.T) Spec {
	t.Helper()
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Model: cfg, System: sys, TP: 1, Precision: tech.FP16,
		PromptTokens: 200, GenTokens: 200,
		Arrival: Poisson, Rate: 0.5, Requests: 64, Seed: 1,
	}
}

// TestLowLoadTTFTMatchesPrefill: at vanishing load every request finds an
// idle engine, so simulated TTFT must converge to the closed-form prefill
// latency of the step-cost engine — the satellite sanity gate.
func TestLowLoadTTFTMatchesPrefill(t *testing.T) {
	s := spec0(t)
	s.Rate = 0.01 // mean interarrival 100 s >> multi-second service time
	s.Requests = 16
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := infer.PrefillCost(s.inferSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := pre.Time()
	for _, q := range []float64{res.TTFT.P50, res.TTFT.P95, res.TTFT.Max} {
		if rel := math.Abs(q-want) / want; rel > 1e-9 {
			t.Errorf("low-load TTFT %v differs from closed-form prefill %v (rel %g)", q, want, rel)
		}
	}
	if res.Queue.Max != 0 {
		t.Errorf("low-load queueing delay should be zero, got %v", res.Queue.Max)
	}
	// And E2E converges to prefill + the G-1 decode steps that follow the
	// prefill-emitted first token.
	coster, err := infer.NewStepCoster(s.inferSpec())
	if err != nil {
		t.Fatal(err)
	}
	e2e := want
	for kv := s.PromptTokens + 2; kv <= s.PromptTokens+s.GenTokens; kv++ {
		e2e += coster.DecodeStep(kv, 1).Time()
	}
	if rel := math.Abs(res.E2E.P50-e2e) / e2e; rel > 1e-6 {
		t.Errorf("low-load E2E %v differs from closed-form %v (rel %g)", res.E2E.P50, e2e, rel)
	}
}

// TestDeterministicAcrossRuns: equal seeds must give byte-identical
// results (the simulator is single-threaded, so GOMAXPROCS cannot leak in;
// JSON round-trips make "byte-identical" literal).
func TestDeterministicAcrossRuns(t *testing.T) {
	s := spec0(t)
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated runs at one seed must be identical")
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("JSON encodings differ across identical runs")
	}
	s.Seed = 2
	c, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.PerRequest, c.PerRequest) {
		t.Error("different seeds should produce different arrival timelines")
	}
}

// TestLoadIncreasesLatency: pushing the arrival rate toward saturation
// must raise queueing delay and p95 E2E, while batching lifts throughput.
func TestLoadIncreasesLatency(t *testing.T) {
	s := spec0(t)
	s.Rate = 0.05
	light, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Rate = 2.0
	heavy, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.E2E.P95 <= light.E2E.P95 {
		t.Errorf("p95 E2E should grow with load: light %v, heavy %v", light.E2E.P95, heavy.E2E.P95)
	}
	if heavy.Queue.P95 <= light.Queue.P95 {
		t.Errorf("queueing should grow with load: light %v, heavy %v", light.Queue.P95, heavy.Queue.P95)
	}
	if heavy.ThroughputRPS <= light.ThroughputRPS {
		t.Errorf("continuous batching should lift throughput under load: light %v, heavy %v",
			light.ThroughputRPS, heavy.ThroughputRPS)
	}
	if heavy.MeanBatch <= light.MeanBatch {
		t.Errorf("mean batch should grow with load: light %v, heavy %v", light.MeanBatch, heavy.MeanBatch)
	}
}

// TestBatchCapBoundsOccupancy: the iteration batch cap must bound peak
// concurrency, and a tighter cap cannot improve p95 latency at high load.
func TestBatchCapBoundsOccupancy(t *testing.T) {
	s := spec0(t)
	s.Rate = 5
	s.MaxBatch = 4
	capped, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if capped.PeakBatch > 4 {
		t.Errorf("peak batch %d exceeds cap 4", capped.PeakBatch)
	}
	if capped.MaxBatch != 4 {
		t.Errorf("resolved MaxBatch = %d, want 4", capped.MaxBatch)
	}
	s.MaxBatch = 32
	wide, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if wide.E2E.P95 >= capped.E2E.P95 {
		t.Errorf("wider batching should cut saturated p95 E2E: cap4 %v, cap32 %v",
			capped.E2E.P95, wide.E2E.P95)
	}
}

// TestKVCapacityGatesAdmission: shrinking the KV budget to two full-context
// reservations must hold concurrency at two regardless of demand.
func TestKVCapacityGatesAdmission(t *testing.T) {
	s := spec0(t)
	s.Rate = 5
	_, perRequest := s.kvBudget()
	s.KVCapacity = 2.5 * perRequest
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBatch != 2 {
		t.Errorf("2.5-request KV budget should cap concurrency at 2, got %d", res.PeakBatch)
	}
	if res.PeakKVBytes > s.KVCapacity {
		t.Errorf("KV reservation %g exceeds budget %g", res.PeakKVBytes, s.KVCapacity)
	}
}

// TestClosedLoopConcurrency: closed-loop arrivals keep exactly Clients
// requests in flight (capacity permitting) and complete every request.
func TestClosedLoopConcurrency(t *testing.T) {
	s := spec0(t)
	s.Arrival = ClosedLoop
	s.Rate = 0
	s.Clients = 4
	s.Requests = 32
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 32 {
		t.Fatalf("completed %d of 32 requests", res.Requests)
	}
	if res.PeakBatch != 4 {
		t.Errorf("closed loop with 4 clients should peak at 4 in flight, got %d", res.PeakBatch)
	}
	if res.Queue.Max != 0 {
		t.Errorf("closed loop under capacity should never queue, got %v", res.Queue.Max)
	}
	// Zero think time: the engine is never idle, so makespan ≈ work.
	if res.ThroughputRPS <= 0 || res.MeanBatch < 3 {
		t.Errorf("closed loop should keep the engine busy: %+v", res)
	}
}

// TestPerRequestInvariants: every completed request's timeline must be
// causally ordered and consistent with the summary percentiles.
func TestPerRequestInvariants(t *testing.T) {
	s := spec0(t)
	s.Rate = 1
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRequest) != s.Requests {
		t.Fatalf("got %d per-request rows, want %d", len(res.PerRequest), s.Requests)
	}
	for i, m := range res.PerRequest {
		if m.ID != i {
			t.Fatalf("row %d has ID %d; rows must be in arrival order", i, m.ID)
		}
		if m.Admitted < m.Arrival || m.FirstToken <= m.Admitted || m.Done < m.FirstToken {
			t.Errorf("request %d timeline out of order: %+v", m.ID, m)
		}
		if m.TTFT != m.FirstToken-m.Arrival || m.E2E != m.Done-m.Arrival || m.Queue != m.Admitted-m.Arrival {
			t.Errorf("request %d derived metrics inconsistent: %+v", m.ID, m)
		}
		if m.TPOT <= 0 {
			t.Errorf("request %d TPOT must be positive with 200 generated tokens", m.ID)
		}
		if m.E2E > res.E2E.Max+1e-12 {
			t.Errorf("request %d E2E %v exceeds reported max %v", m.ID, m.E2E, res.E2E.Max)
		}
	}
}

// TestValidateRejectsBadSpecs covers the serving-specific validation.
func TestValidateRejectsBadSpecs(t *testing.T) {
	good := spec0(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline should validate: %v", err)
	}
	check := func(name string, mutate func(*Spec)) {
		s := good
		mutate(&s)
		if _, err := Run(s); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
	check("zero rate", func(s *Spec) { s.Rate = 0 })
	check("NaN rate", func(s *Spec) { s.Rate = math.NaN() })
	check("infinite rate", func(s *Spec) { s.Rate = math.Inf(1) })
	check("closed loop without clients", func(s *Spec) { s.Arrival = ClosedLoop; s.Rate = 0 })
	// The CLI rejects cross-process flags (-clients under poisson, -rate
	// under closed); the library must be as strict instead of silently
	// ignoring the stray field.
	check("poisson with clients", func(s *Spec) { s.Clients = 4 })
	check("closed loop with a rate", func(s *Spec) { s.Arrival = ClosedLoop; s.Clients = 4 })
	check("trace with closed-loop arrivals", func(s *Spec) {
		s.PromptTokens, s.GenTokens = 0, 0
		s.Rate, s.Requests, s.Seed = 0, 0, 0
		s.Arrival, s.Clients = ClosedLoop, 4
		s.Trace = []TraceEvent{{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}}}
	})
	check("unknown arrival", func(s *Spec) { s.Arrival = Arrival(9) })
	check("negative requests", func(s *Spec) { s.Requests = -1 })
	check("zero gen tokens", func(s *Spec) { s.GenTokens = 0 })
	check("negative cap", func(s *Spec) { s.MaxBatch = -1 })
	check("negative kv budget", func(s *Spec) { s.KVCapacity = -1 })
	check("TP mismatch", func(s *Spec) { s.TP = 4 })
	check("kv budget below one request", func(s *Spec) {
		_, per := s.kvBudget()
		s.KVCapacity = per / 2
	})
}

// TestFeasibleMatchesRun: Feasible's verdict must agree with whether Run
// accepts the spec — the contract the sweep engine's pruning relies on.
func TestFeasibleMatchesRun(t *testing.T) {
	good := spec0(t)
	if !Feasible(good) {
		t.Error("baseline must be feasible")
	}
	if _, err := Run(good); err != nil {
		t.Errorf("feasible spec must run: %v", err)
	}

	// Llama2-70B at fp16 (140 GB weights) cannot fit one 80 GB A100.
	big := good
	cfg, err := model.ByName("Llama2-70B")
	if err != nil {
		t.Fatal(err)
	}
	big.Model = cfg
	if Feasible(big) {
		t.Error("70B on one 80 GB device must be infeasible")
	}
	if _, err := Run(big); err == nil {
		t.Error("infeasible spec must be rejected by Run")
	}
}

// TestArrivalString covers the names.
func TestArrivalString(t *testing.T) {
	if Poisson.String() != "poisson" || ClosedLoop.String() != "closed-loop" {
		t.Error("unexpected arrival names")
	}
	if Arrival(7).String() == "" {
		t.Error("unknown arrival should still render")
	}
}
