package serve

import (
	"testing"
	"unsafe"
)

// TestRequestSlabEntrySize pins the fieldalignment fix on the request
// slab entry: inDecode packs into prefixSlot's alignment padding, so the
// struct carries no avoidable holes. 152 bytes assumes 8-byte words,
// which every tested platform here has.
func TestRequestSlabEntrySize(t *testing.T) {
	if unsafe.Sizeof(int(0)) != 8 {
		t.Skip("layout pinned for 64-bit words only")
	}
	if got := unsafe.Sizeof(request{}); got != 152 {
		t.Errorf("request slab entry is %d bytes, want 152 (field reorder regressed)", got)
	}
}
