// Package serve simulates continuous-batching LLM serving on top of the
// step-cost engine of internal/infer. It is a discrete-event simulator in
// the style the paper's §7 sketches as future work and RAPID-LLM
// (arXiv:2512.19606) builds at infrastructure scale: requests arrive by a
// seeded deterministic process (open-loop Poisson or closed-loop clients),
// queue for KV-cache capacity, and are batched at iteration granularity —
// every engine step admits waiting requests up to the batch cap and KV
// budget, prices the resulting mixed prefill/decode iteration with
// infer.PrefillCost / infer.DecodeStepCost, and advances the clock by that
// analytic cost. No wall-clock time, goroutines, or maps in the event path:
// runs are byte-identical across repeated invocations at a fixed seed and
// any GOMAXPROCS.
//
// The simulator reports per-request TTFT (time to first token — queueing
// delay plus the prefill pass that emits it), TPOT (time per output token
// over the decode steps), and E2E latency, with p50/p95/p99 percentiles —
// the SLO surface capacity planning ranks on.
//
// Requests carry their own per-request prompt/generation lengths: a
// workload is either generated from a seeded multi-tenant Mix (per-tenant
// rate shares and shapes), replayed from an explicit Trace, or — the
// degenerate single-tenant case — shaped by the spec-wide
// PromptTokens/GenTokens, which a uniform one-entry Mix reproduces
// byte-identically. Results break the SLO percentiles down per tenant
// (Result.PerTenant) alongside the aggregate view.
//
// KV-cache admission is a pluggable AdmissionPolicy with two
// implementations selected by Spec.Policy:
//
//   - ReserveFull (the default) reserves each request's full
//     prompt+generation context up front — admission is pessimistic but
//     nothing is ever evicted.
//   - Paged allocates KV in fixed-size token blocks (Spec.PageTokens,
//     vLLM-style) that grow as a request decodes, admitting on the
//     prompt's pages alone. Under pressure the youngest running sequence
//     is preempted (LIFO), its cache discarded, and it is re-queued for a
//     fresh prefill — recompute-style preemption, priced through the same
//     PrefillCost API as any admission. Result counts Preemptions, the
//     RecomputedTokens they discarded, and page-pool utilization, making
//     the SLO-versus-utilization trade directly observable.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"optimus/internal/arch"
	"optimus/internal/comm"
	"optimus/internal/infer"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/tech"
)

// Arrival selects the request arrival process.
type Arrival int

const (
	// Poisson is an open-loop process: exponential interarrivals at Rate
	// requests/sec, independent of service progress.
	Poisson Arrival = iota
	// ClosedLoop models Clients concurrent users with zero think time:
	// each issues its next request the moment the previous one completes.
	ClosedLoop
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case ClosedLoop:
		return "closed-loop"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// Spec fixes one serving-simulation experiment.
type Spec struct {
	// Model, System, TP, Precision, Algorithm and Flash configure the
	// step-cost engine exactly as in infer.Spec.
	Model     model.Config
	System    *arch.System
	TP        int
	Precision tech.Precision
	Algorithm comm.Algorithm
	Flash     bool

	// PromptTokens and GenTokens shape every request (the paper's Table 2
	// uses 200/200). They are the degenerate single-tenant workload: when
	// Mix and Trace are empty they become a one-entry Mix under
	// DefaultTenant. Leave them zero when Mix or Trace is set.
	PromptTokens int
	GenTokens    int

	// Mix generates a multi-tenant workload: each tenant contributes a
	// share of the arrival process and shapes its requests with its own
	// prompt/generation lengths. Tenant assignment is drawn from a second
	// seeded stream, so a single-tenant mix reproduces the spec-wide
	// workload byte-identically.
	Mix []TenantLoad
	// Trace replays an explicit request timeline (arrival, tenant, prompt,
	// gen) instead of generating one: it fixes the arrival process and the
	// request count, so Arrival/Rate/Clients/Requests stay unset.
	Trace []TraceEvent

	// Arrival selects the request process; the zero value is Poisson.
	Arrival Arrival
	// Rate is the Poisson arrival rate in requests/sec.
	Rate float64
	// Clients is the closed-loop concurrency.
	Clients int
	// Requests is the number of requests to simulate; zero means 256.
	Requests int
	// Seed drives the arrival process; runs with equal seeds are
	// byte-identical.
	Seed int64

	// MaxBatch caps concurrent sequences per iteration; zero derives the
	// largest batch the admission policy's KV budget holds.
	MaxBatch int
	// KVCapacity overrides the per-device KV-cache budget in bytes; zero
	// derives it as device DRAM minus the TP-sharded weights.
	KVCapacity float64

	// Policy selects the KV admission policy; the zero value is
	// ReserveFull, the PR-2 full-context reservation.
	Policy Policy
	// PageTokens is the paged policy's KV block size in tokens; zero
	// means DefaultPageTokens. It is clamped to the full context, at
	// which point the paged policy degenerates to block-granular
	// reservation. Paged only.
	PageTokens int
	// NoPreempt disables victim preemption: paged admission then
	// reserves the full-context page count up front, so growth can never
	// fail. Paged only.
	NoPreempt bool

	// PrefillDevices and DecodeDevices size the disaggregated policy's two
	// page pools: each pool owns its count of the TP devices' aggregate KV
	// budget. Counts may overlap (a device serving both phases); zero
	// defaults to TP — each pool spanning every device, the co-located
	// split. Disaggregated only.
	PrefillDevices int
	DecodeDevices  int
	// TransferGBps is the bandwidth of the interconnect joining the two
	// pools, in GB/s: every sequence migrating from prefill to decode pays
	// a point-to-point transfer of its prompt's KV bytes over it
	// (internal/comm's link model, small-message derating included). Zero
	// means DefaultTransferGBps; math.Inf(1) prices transfers at exactly
	// zero — the co-located degenerate case. Disaggregated only.
	TransferGBps float64

	// probe, when set by package tests, observes every iteration's KV
	// accounting (the instrumentation hook the conservation property
	// tests assert through).
	probe func(probeState)
}

// probeState is the per-iteration KV accounting snapshot handed to the
// test-only step probe, sampled after admission and before pricing.
type probeState struct {
	iteration       int
	running, queued int
	// usedPages/totalPages are the policy's committed-page accounting
	// (zero for ReserveFull); runningPages re-sums the running set's held
	// pages so the probe can assert conservation independently. Held and
	// committed coincide except under NoPreempt, whose admissions reserve
	// full contexts they have not yet filled.
	usedPages, totalPages, runningPages int
	usedBytes, budget                   float64
	// Disaggregated-policy pool accounting (zero elsewhere): committed
	// pages and capacity per pool, plus the running set's held pages
	// re-summed by the pool each sequence currently occupies.
	prefillPages, prefillTotal              int
	decodePages, decodeTotal                int
	runningPrefillPages, runningDecodePages int
	// decidersInPrefill counts carried-over sequences (everything but this
	// iteration's admissions) still resident in the prefill pool — they are
	// about to decode, so the count must be zero: beginStep migrates every
	// survivor before its next token.
	decidersInPrefill int
}

func (s Spec) withDefaults() Spec {
	if len(s.Trace) > 0 {
		if s.Requests == 0 {
			s.Requests = len(s.Trace)
		}
		return s
	}
	if len(s.Mix) == 0 {
		s.Mix = []TenantLoad{{
			Tenant: DefaultTenant, Share: 1,
			PromptTokens: s.PromptTokens, GenTokens: s.GenTokens,
		}}
	}
	if s.Requests == 0 {
		s.Requests = 256
	}
	return s
}

// inferSpec builds the step-cost configuration at the workload's largest
// request shape; for the degenerate single-tenant workload that is exactly
// the spec-wide PromptTokens/GenTokens.
func (s Spec) inferSpec() infer.Spec {
	b := s.bounds()
	return infer.Spec{
		Model: s.Model, System: s.System, TP: s.TP, Batch: 1,
		PromptTokens: b.maxPrompt, GenTokens: b.maxGen,
		Precision: s.Precision, Algorithm: s.Algorithm, Flash: s.Flash,
	}
}

// inferenceFootprint is the footprint model behind kvBudget; a package
// variable so tests can count invocations and pin that Run derives the KV
// geometry exactly once per simulation (not once per iteration or per
// helper call).
var inferenceFootprint = memfoot.Inference

// kvBudget resolves the per-device KV-cache budget and the full-context
// reservation of the workload's largest request, both from the memfoot
// inference model so the admission policy can never diverge from the
// footprint the predictors check against. It is called exactly once per
// simulation, from newPolicy — the footprint model is far too slow for the
// event loop.
func (s Spec) kvBudget() (budget, perRequest float64) {
	fp := inferenceFootprint(s.Model, s.TP, 1, s.bounds().maxContext, s.Precision.Bytes())
	budget = s.KVCapacity
	if budget <= 0 {
		budget = s.System.Device.DRAMCapacity() - fp.Weights
	}
	return budget, fp.KVCache
}

// Validate checks the experiment, including that the largest request's
// weights + full-context KV-cache fit the device (Feasible's verdict).
func (s Spec) Validate() error {
	if err := s.validateExclusive(); err != nil {
		return err
	}
	s = s.withDefaults()
	if err := s.validateShape(); err != nil {
		return err
	}
	return s.validateFit(newPolicy(s))
}

// validateExclusive rejects ambiguous workload-field combinations before
// withDefaults folds the spec-wide shape into the degenerate mix.
func (s Spec) validateExclusive() error {
	if len(s.Mix) > 0 && len(s.Trace) > 0 {
		return fmt.Errorf("serve: Mix and Trace are mutually exclusive")
	}
	if (len(s.Mix) > 0 || len(s.Trace) > 0) && (s.PromptTokens != 0 || s.GenTokens != 0) {
		return fmt.Errorf("serve: PromptTokens/GenTokens describe the degenerate single-tenant workload — leave them zero with an explicit Mix or Trace")
	}
	return nil
}

// validateShape checks everything that does not need the KV geometry —
// run before newPolicy, since deriving the geometry dereferences the
// system a garbage spec may not have.
func (s Spec) validateShape() error {
	if err := s.inferSpec().Validate(); err != nil {
		return err
	}
	if len(s.Trace) > 0 {
		if err := ValidateTrace(s.Trace); err != nil {
			return err
		}
		// A trace fixes the arrival process and the request count; fields
		// that would shape a generated workload are rejected rather than
		// silently ignored.
		if s.Arrival != Poisson || s.Rate != 0 || s.Clients != 0 || s.Seed != 0 {
			return fmt.Errorf("serve: a trace fixes the arrival process — leave Arrival/Rate/Clients/Seed unset")
		}
		if s.Requests != len(s.Trace) {
			return fmt.Errorf("serve: Requests is derived from the trace (leave it zero, got %d for a %d-event trace)",
				s.Requests, len(s.Trace))
		}
	} else {
		if err := ValidateMix(s.Mix); err != nil {
			return err
		}
		switch s.Arrival {
		case Poisson:
			// Negated-positive form so NaN (which fails every comparison,
			// and would stall the event loop with NaN arrival times) is
			// rejected.
			if !(s.Rate > 0) || math.IsInf(s.Rate, 0) {
				return fmt.Errorf("serve: Poisson arrivals need a positive finite rate, got %g", s.Rate)
			}
			// The CLI rejects -clients under Poisson; the library must be
			// as strict rather than silently ignoring the field.
			if s.Clients != 0 {
				return fmt.Errorf("serve: Clients applies to closed-loop arrivals only — leave it zero with Poisson, got %d", s.Clients)
			}
		case ClosedLoop:
			if s.Clients <= 0 {
				return fmt.Errorf("serve: closed-loop arrivals need positive clients, got %d", s.Clients)
			}
			if s.Rate != 0 {
				return fmt.Errorf("serve: Rate applies to Poisson arrivals only — leave it zero closed-loop, got %g", s.Rate)
			}
		default:
			return fmt.Errorf("serve: unknown arrival process %v", s.Arrival)
		}
	}
	switch {
	case s.Requests < 0:
		return fmt.Errorf("serve: negative request count %d", s.Requests)
	case s.MaxBatch < 0:
		return fmt.Errorf("serve: negative batch cap %d", s.MaxBatch)
	case s.KVCapacity < 0 || math.IsNaN(s.KVCapacity) || math.IsInf(s.KVCapacity, 0):
		// Negative-or-non-finite form: a NaN budget fails every admission
		// comparison and an infinite one overflows the batch-cap math.
		return fmt.Errorf("serve: KV capacity %g not finite and non-negative", s.KVCapacity)
	}
	// Reject knobs the chosen policy would silently ignore: a user who
	// sets them believes they shaped the simulation.
	if s.Policy != Disaggregated &&
		(s.PrefillDevices != 0 || s.DecodeDevices != 0 || s.TransferGBps != 0) {
		// NaN bandwidths land here too: NaN != 0.
		return fmt.Errorf("serve: PrefillDevices/DecodeDevices/TransferGBps apply to the disaggregated policy only")
	}
	switch s.Policy {
	case ReserveFull:
		if s.PageTokens != 0 {
			return fmt.Errorf("serve: PageTokens applies to the paged and disaggregated policies only")
		}
		if s.NoPreempt {
			return fmt.Errorf("serve: NoPreempt applies to the paged policy only")
		}
	case Paged:
		if s.PageTokens < 0 {
			return fmt.Errorf("serve: negative page size %d tokens", s.PageTokens)
		}
	case Disaggregated:
		if s.PageTokens < 0 {
			return fmt.Errorf("serve: negative page size %d tokens", s.PageTokens)
		}
		if s.NoPreempt {
			return fmt.Errorf("serve: NoPreempt applies to the paged policy only")
		}
		if s.PrefillDevices < 0 || s.PrefillDevices > s.TP {
			return fmt.Errorf("serve: prefill pool of %d devices outside [1, TP=%d] (0 derives TP)", s.PrefillDevices, s.TP)
		}
		if s.DecodeDevices < 0 || s.DecodeDevices > s.TP {
			return fmt.Errorf("serve: decode pool of %d devices outside [1, TP=%d] (0 derives TP)", s.DecodeDevices, s.TP)
		}
		if s.TransferGBps < 0 || math.IsNaN(s.TransferGBps) {
			return fmt.Errorf("serve: KV-transfer bandwidth %g GB/s not non-negative (0 derives %g; +Inf is a free transfer)",
				s.TransferGBps, DefaultTransferGBps)
		}
	default:
		return fmt.Errorf("serve: unknown admission policy %v", s.Policy)
	}
	return nil
}

// validateFit checks the policy's feasibility verdict.
func (s Spec) validateFit(pol AdmissionPolicy) error {
	if !pol.Feasible() {
		return fmt.Errorf("serve: one %d-token request does not fit the device (weights + KV-cache exceed %g bytes)",
			s.bounds().maxContext, s.System.Device.DRAMCapacity())
	}
	return nil
}

// Feasible reports whether the workload's largest request can ever be
// admitted: the TP-sharded weights plus one full-context KV allocation
// (reservation or pages) fit the KV budget. The sweep engine uses it to
// prune hopeless grid cells before simulating; its verdict matches whether
// Run would reject the spec.
func Feasible(s Spec) bool {
	return newPolicy(s.withDefaults()).Feasible()
}

// RequestMetrics is one completed request's timeline.
type RequestMetrics struct {
	// ID is the arrival index (0-based).
	ID int
	// Tenant, PromptTokens and GenTokens echo the request's workload
	// shape (the degenerate spec-wide workload runs under DefaultTenant).
	Tenant       string
	PromptTokens int
	GenTokens    int
	// Arrival, Admitted, FirstToken and Done are simulation timestamps.
	Arrival    float64
	Admitted   float64
	FirstToken float64
	Done       float64
	// Queue is the admission delay (Admitted - Arrival).
	Queue float64
	// TTFT is the time to first token (FirstToken - Arrival).
	TTFT float64
	// TPOT is the mean time per output token after the first.
	TPOT float64
	// E2E is the end-to-end latency (Done - Arrival).
	E2E float64
	// Preemptions counts how many times this request was evicted and
	// re-queued (paged and disaggregated policies). Admitted and
	// FirstToken keep their first-occurrence timestamps across
	// preemptions, so TTFT reflects when the stream first started; Done
	// (and hence TPOT and E2E) absorb the recompute stalls.
	Preemptions int
	// KVTransfers counts this request's prefill→decode pool migrations
	// (one per admission that reaches its first token) and KVTransferTime
	// the interconnect seconds they cost. Disaggregated policy only.
	KVTransfers    int
	KVTransferTime float64
}

// Percentiles summarizes one latency distribution.
type Percentiles struct {
	P50, P95, P99 float64
	Mean, Max     float64
}

// percentiles computes nearest-rank percentiles over a sorted sample.
func percentiles(sorted []float64) Percentiles {
	if len(sorted) == 0 {
		return Percentiles{}
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Percentiles{
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Mean: sum / float64(len(sorted)),
		Max:  sorted[len(sorted)-1],
	}
}

// Result is the outcome of one serving simulation.
type Result struct {
	// Requests is the completed request count.
	Requests int
	// SimTime is the simulated makespan (time of the last completion).
	SimTime float64
	// Iterations is the number of priced batching iterations.
	Iterations int
	// ThroughputRPS is completed requests per simulated second.
	ThroughputRPS float64
	// TokensPerSec is aggregate generated tokens per simulated second.
	TokensPerSec float64

	// TTFT, TPOT, E2E and Queue are the SLO percentile summaries.
	TTFT  Percentiles
	TPOT  Percentiles
	E2E   Percentiles
	Queue Percentiles

	// MeanBatch is the mean concurrent-sequence count over iterations;
	// PeakBatch its maximum.
	MeanBatch float64
	PeakBatch int
	// PeakKVBytes is the high-water per-device KV commitment: held pages
	// under paged preemption, reservations under ReserveFull and
	// NoPreempt — always the capacity admission saw as unavailable, so
	// the number is comparable across the policy axis.
	PeakKVBytes float64
	// MeanKVUtil is the mean fraction of the KV budget committed across
	// iterations (sampled after admission) — the utilization side of the
	// SLO-versus-utilization trade.
	MeanKVUtil float64
	// MaxBatch and KVCapacity echo the resolved admission limits.
	MaxBatch   int
	KVCapacity float64

	// Policy echoes the admission policy; PageTokens and KVPagesTotal its
	// resolved block geometry and PeakKVPages the page high-water (all
	// zero under ReserveFull).
	Policy       Policy
	PageTokens   int
	KVPagesTotal int
	PeakKVPages  int
	// Preemptions counts victim evictions; RecomputedTokens the generated
	// tokens whose KV entries they discarded, which readmission prefills
	// had to rebuild.
	Preemptions      int
	RecomputedTokens int

	// Disaggregated-policy fields (zero elsewhere): the resolved pool
	// split, per-pool page capacities and high-water marks, and the KV
	// migrations between them — count and total interconnect seconds.
	PrefillDevices    int
	DecodeDevices     int
	PrefillPagesTotal int
	DecodePagesTotal  int
	PeakPrefillPages  int
	PeakDecodePages   int
	KVTransfers       int
	TransferTimeTotal float64

	// PerTenant summarizes each tenant's completed requests, ordered by
	// tenant name — the SLO surface a multi-tenant capacity plan ranks on
	// (a mix tenant that drew no requests is absent).
	PerTenant []TenantMetrics

	// PerRequest holds every completed request, ordered by arrival index.
	PerRequest []RequestMetrics
}

// TenantMetrics is one tenant's SLO summary within a simulation.
type TenantMetrics struct {
	Tenant string
	// Requests is the tenant's completed request count; GenTokens its
	// aggregate generated tokens.
	Requests  int
	GenTokens int
	// TTFT, TPOT, E2E and Queue are the tenant-local percentile summaries.
	TTFT  Percentiles
	TPOT  Percentiles
	E2E   Percentiles
	Queue Percentiles
}

// tenantBreakdown groups completed requests by tenant, sorted by name.
func tenantBreakdown(done []RequestMetrics) []TenantMetrics {
	byTenant := make(map[string][]RequestMetrics)
	names := make([]string, 0, 4)
	for _, m := range done {
		if _, ok := byTenant[m.Tenant]; !ok {
			names = append(names, m.Tenant)
		}
		byTenant[m.Tenant] = append(byTenant[m.Tenant], m)
	}
	sort.Strings(names)
	out := make([]TenantMetrics, 0, len(names))
	for _, name := range names {
		ms := byTenant[name]
		gen := 0
		for _, m := range ms {
			gen += m.GenTokens
		}
		out = append(out, TenantMetrics{
			Tenant: name, Requests: len(ms), GenTokens: gen,
			TTFT:  metricPercentiles(ms, func(m RequestMetrics) float64 { return m.TTFT }),
			TPOT:  metricPercentiles(ms, func(m RequestMetrics) float64 { return m.TPOT }),
			E2E:   metricPercentiles(ms, func(m RequestMetrics) float64 { return m.E2E }),
			Queue: metricPercentiles(ms, func(m RequestMetrics) float64 { return m.Queue }),
		})
	}
	return out
}

// request is the in-flight simulator state of one sequence.
type request struct {
	id      int
	arrival float64
	// tenant, prompt and gen are the request's workload shape; every
	// admission, decode step and KV allocation is priced off them.
	tenant string
	prompt int
	gen    int
	// admitted and firstToken are timestamps filled as the request moves
	// through the pipeline; both keep their first occurrence across
	// preemptions.
	admitted   float64
	firstToken float64
	// produced counts generated tokens; 0 means the prefill pass is still
	// pending. Preemption keeps it — the readmission prefill rebuilds the
	// discarded KV and decoding resumes from here.
	produced int
	// pages is the KV page count currently held (paged and disaggregated
	// policies); inDecode marks which disaggregated pool holds them.
	pages    int
	inDecode bool
	// admissions and preempts count lifecycle events; transfers and
	// transferTime the disaggregated pool migrations and their cost.
	admissions   int
	preempts     int
	transfers    int
	transferTime float64
}

// Run executes the simulation. It is fully deterministic: the only
// randomness is the seeded arrival process, and the event loop is a single
// goroutine over slices in arrival order.
func Run(s Spec) (Result, error) {
	if err := s.validateExclusive(); err != nil {
		return Result{}, err
	}
	s = s.withDefaults()
	if err := s.validateShape(); err != nil {
		return Result{}, err
	}
	// One policy per simulation: the KV geometry behind it is derived
	// exactly once (one memfoot.Inference evaluation), never per
	// iteration — TestRunDerivesKVGeometryOnce pins this.
	pol := newPolicy(s)
	if err := s.validateFit(pol); err != nil {
		return Result{}, err
	}
	// The disaggregated policy is the only one with pool-migration state
	// the event loop must drain (transfer time) and report (per-pool
	// counters); the interface stays sealed to the common surface.
	dp, _ := pol.(*disaggPolicy)
	coster, err := infer.NewStepCoster(s.inferSpec())
	if err != nil {
		return Result{}, err
	}
	// The step cost is linear in the KV length at fixed batch
	// (TestDecodeStepLinearInKV) and the prefill cost is fixed per batch,
	// so each batch size needs at most three kernel-enumeration passes;
	// every further iteration prices in O(1). Plain float math on cached
	// samples, so determinism is untouched. The decode line is sampled at
	// the workload's extreme KV lengths — for the degenerate single-tenant
	// workload exactly the PR-3 prompt+1 .. prompt+gen span — and, being a
	// line, prices every intermediate per-request length exactly.
	bounds := s.bounds()
	kv0, kv1 := bounds.minPrompt+1, bounds.maxContext
	// refPrompt is the prompt length the coster's prefill samples price
	// (the workload's largest); shorter prompts scale the sample linearly.
	refPrompt := bounds.maxPrompt
	prefillCache := make(map[int]float64)
	prefill := func(batch int) float64 {
		t, ok := prefillCache[batch]
		if !ok {
			t = coster.Prefill(batch).Time()
			prefillCache[batch] = t
		}
		return t
	}
	type decodeLine struct{ base, slope float64 }
	decodeCache := make(map[int]decodeLine)
	// decode prices one step at a possibly fractional mean KV length — the
	// linear model makes mean-of-batch pricing exact without rounding.
	decode := func(kvMean float64, batch int) float64 {
		ln, ok := decodeCache[batch]
		if !ok {
			ln.base = coster.DecodeStep(kv0, batch).Time()
			if kv1 > kv0 {
				ln.slope = (coster.DecodeStep(kv1, batch).Time() - ln.base) / float64(kv1-kv0)
			}
			decodeCache[batch] = ln
		}
		return ln.base + ln.slope*(kvMean-float64(kv0))
	}

	budget := pol.budgetBytes()
	batchCap := pol.BatchCap()

	// Every arrival index is assigned its request shape up front, so the
	// assignment is identical whether ids are issued open- or closed-loop.
	// Open-loop arrivals are pre-generated; closed-loop ones are issued on
	// completion.
	var arrivals []float64
	var shapes []Request
	issued := 0
	switch {
	case len(s.Trace) > 0:
		arrivals = make([]float64, len(s.Trace))
		shapes = make([]Request, len(s.Trace))
		for i, ev := range s.Trace {
			arrivals[i] = ev.Arrival
			shapes[i] = ev.Request
		}
		issued = s.Requests
	case s.Arrival == Poisson:
		shapes = mixShapes(s.Mix, s.Requests, s.Seed)
		rng := rand.New(rand.NewSource(s.Seed))
		t := 0.0
		arrivals = make([]float64, s.Requests)
		for i := range arrivals {
			t += rng.ExpFloat64() / s.Rate
			arrivals[i] = t
		}
		issued = s.Requests
	default:
		shapes = mixShapes(s.Mix, s.Requests, s.Seed)
	}

	var (
		now        float64
		queue      []*request // FIFO; preemption re-queues victims at the head
		running    []*request // admission order
		nextArr    int        // next pre-generated arrival index
		done       []RequestMetrics
		iterations int
		batchSum   float64
		peakBatch  int
		peakKV     float64
		peakPages  int
		utilSum    float64
	)
	done = make([]RequestMetrics, 0, s.Requests)

	// enqueue issues request id at time t with its pre-assigned shape.
	enqueue := func(id int, t float64) {
		sh := shapes[id]
		queue = append(queue, &request{
			id: id, arrival: t,
			tenant: sh.Tenant, prompt: sh.PromptTokens, gen: sh.GenTokens,
		})
	}
	// admitArrived moves every pre-generated arrival with time <= now into
	// the queue (iteration-level batching: requests landing mid-iteration
	// wait for the next boundary).
	admitArrived := func() {
		for nextArr < len(arrivals) && arrivals[nextArr] <= now {
			enqueue(nextArr, arrivals[nextArr])
			nextArr++
		}
	}

	if s.Arrival == ClosedLoop {
		clients := s.Clients
		if clients > s.Requests {
			clients = s.Requests
		}
		for i := 0; i < clients; i++ {
			enqueue(i, 0)
		}
		issued = clients
	}

	for len(done) < s.Requests {
		admitArrived()
		// Idle: jump to the next arrival.
		if len(running) == 0 && len(queue) == 0 {
			if nextArr >= len(arrivals) {
				return Result{}, fmt.Errorf("serve: simulation stalled with %d/%d requests done", len(done), s.Requests)
			}
			now = arrivals[nextArr]
			admitArrived()
		}

		// Let the policy make room for every established sequence's next
		// token; under the paged policy this is where victims are chosen
		// (LIFO) and sent back to the head of the queue for a recompute
		// readmission.
		kept, victims := pol.beginStep(running)
		running = kept
		if len(victims) > 0 {
			requeue := make([]*request, 0, len(victims)+len(queue))
			// Victims were collected youngest-first; reverse so the queue
			// head readmits the longest-running (most to rebuild) victim
			// first. A victim keeps its produced count: readmission prices
			// one prefill pass that rebuilds the discarded KV — vLLM's
			// recompute preemption, where already-generated tokens are
			// recovered as context by the recompute prefill, not decoded
			// again — and the sequence resumes from where it was evicted.
			for i := len(victims) - 1; i >= 0; i-- {
				v := victims[i]
				v.preempts++
				requeue = append(requeue, v)
			}
			queue = append(requeue, queue...)
		}

		// Admit waiting requests up to the batch cap and the policy's KV
		// capacity. An iteration that just preempted skips admission — the
		// pool is under pressure, and admitting would thrash the victim
		// straight back in.
		newbies, prefillTokens := 0, 0
		if len(victims) == 0 {
			for len(queue) > 0 && len(running) < batchCap && pol.admit(queue[0]) {
				r := queue[0]
				queue = queue[1:]
				if r.admissions == 0 {
					r.admitted = now
				}
				r.admissions++
				running = append(running, r)
				newbies++
				// The pass prefills this request's own prompt; a resumed
				// victim's recompute prefill spans its generated tokens
				// too — bill the true token count below.
				prefillTokens += r.prompt + r.produced
			}
		}
		kv := pol.usedBytes()
		if kv > peakKV {
			peakKV = kv
		}
		if up := pol.usedPages(); up > peakPages {
			peakPages = up
		}
		utilSum += kv / budget
		if len(running) > peakBatch {
			peakBatch = len(running)
		}
		if s.probe != nil {
			held := 0
			for _, r := range running {
				held += r.pages
			}
			_, totalPages := pol.PageGeometry()
			ps := probeState{
				iteration: iterations, running: len(running), queued: len(queue),
				usedPages: pol.usedPages(), totalPages: totalPages, runningPages: held,
				usedBytes: kv, budget: budget,
			}
			if dp != nil {
				ps.prefillPages, ps.prefillTotal = dp.prefillUsed, dp.prefillTotal
				ps.decodePages, ps.decodeTotal = dp.decodeUsed, dp.decodeTotal
				for _, r := range running {
					if r.inDecode {
						ps.runningDecodePages += r.pages
					} else {
						ps.runningPrefillPages += r.pages
					}
				}
				for _, r := range running[:len(running)-newbies] {
					if !r.inDecode {
						ps.decidersInPrefill++
					}
				}
			}
			s.probe(ps)
		}

		// Price the iteration: one prefill pass over the newly admitted
		// sequences plus one decode step over the established ones. The
		// decode batch is priced at its mean KV length — exact under the
		// step cost's linearity in kvLen (TestDecodeStepLinearInKV).
		deciders := running[:len(running)-newbies]
		var iterTime float64
		if newbies > 0 {
			// The prefill sample prices newbies * refPrompt tokens. Batches
			// whose requests carry shorter prompts — and resumed preemption
			// victims, whose recompute prefill also rebuilds their generated
			// tokens' KV — scale the sample by the true token count:
			// per-token linear, which slightly undercharges the quadratic
			// attention share but keeps recompute far from free (and leaves
			// uniform fresh-only batches, the degenerate-equivalence path,
			// untouched).
			t := prefill(newbies)
			if ref := newbies * refPrompt; prefillTokens != ref {
				t *= float64(prefillTokens) / float64(ref)
			}
			iterTime += t
		}
		if len(deciders) > 0 {
			kvSum := 0
			for _, r := range deciders {
				// The step generating token produced+1 attends over the
				// request's own prompt plus every generated token including
				// the new one.
				kvSum += r.prompt + r.produced + 1
			}
			iterTime += decode(float64(kvSum)/float64(len(deciders)), len(deciders))
		}
		if dp != nil {
			// KV migrations accrued by this iteration's pool hand-offs
			// serialize on the interconnect and stall the step; an
			// infinite-bandwidth link contributes exactly zero.
			iterTime += dp.drainTransfer()
		}
		iterations++
		batchSum += float64(len(running))
		now += iterTime

		// Advance sequences: prefill emits the first token, decode steps
		// one more each; completed requests leave and free their KV. The
		// firstToken guard keeps the first emission across preemptions
		// (every iteration has positive duration, so 0 means unset).
		alive := running[:0]
		for _, r := range running {
			r.produced++
			if r.produced == 1 && r.firstToken == 0 {
				r.firstToken = now
			}
			if r.produced < r.gen {
				alive = append(alive, r)
				continue
			}
			pol.release(r)
			m := RequestMetrics{
				ID: r.id, Tenant: r.tenant,
				PromptTokens: r.prompt, GenTokens: r.gen,
				Arrival: r.arrival, Admitted: r.admitted,
				FirstToken: r.firstToken, Done: now,
				Queue:          r.admitted - r.arrival,
				TTFT:           r.firstToken - r.arrival,
				E2E:            now - r.arrival,
				Preemptions:    r.preempts,
				KVTransfers:    r.transfers,
				KVTransferTime: r.transferTime,
			}
			if r.gen > 1 {
				m.TPOT = (now - r.firstToken) / float64(r.gen-1)
			}
			done = append(done, m)
			if s.Arrival == ClosedLoop && issued < s.Requests {
				enqueue(issued, now)
				issued++
			}
		}
		running = alive
	}

	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	pageTokens, totalPages := pol.PageGeometry()
	preemptions, recomputed := pol.counters()
	res := Result{
		Requests:         len(done),
		SimTime:          now,
		Iterations:       iterations,
		MeanBatch:        batchSum / float64(iterations),
		PeakBatch:        peakBatch,
		PeakKVBytes:      peakKV,
		MeanKVUtil:       utilSum / float64(iterations),
		MaxBatch:         batchCap,
		KVCapacity:       budget,
		Policy:           s.Policy,
		PageTokens:       pageTokens,
		KVPagesTotal:     totalPages,
		PeakKVPages:      peakPages,
		Preemptions:      preemptions,
		RecomputedTokens: recomputed,
		PerRequest:       done,
	}
	if dp != nil {
		res.PrefillDevices, res.DecodeDevices = CanonicalPoolSplit(Disaggregated, s.PrefillDevices, s.DecodeDevices, s.TP)
		res.PrefillPagesTotal, res.DecodePagesTotal = dp.prefillTotal, dp.decodeTotal
		res.PeakPrefillPages, res.PeakDecodePages = dp.peakPrefill, dp.peakDecode
		res.KVTransfers, res.TransferTimeTotal = dp.transfers, dp.transferTotal
	}
	if now > 0 {
		genSum := 0
		for _, m := range done {
			genSum += m.GenTokens
		}
		res.ThroughputRPS = float64(len(done)) / now
		res.TokensPerSec = float64(genSum) / now
	}
	res.TTFT = metricPercentiles(done, func(m RequestMetrics) float64 { return m.TTFT })
	res.TPOT = metricPercentiles(done, func(m RequestMetrics) float64 { return m.TPOT })
	res.E2E = metricPercentiles(done, func(m RequestMetrics) float64 { return m.E2E })
	res.Queue = metricPercentiles(done, func(m RequestMetrics) float64 { return m.Queue })
	res.PerTenant = tenantBreakdown(done)
	return res, nil
}

// metricPercentiles extracts and summarizes one per-request metric.
func metricPercentiles(done []RequestMetrics, f func(RequestMetrics) float64) Percentiles {
	vals := make([]float64, len(done))
	for i, m := range done {
		vals[i] = f(m)
	}
	sort.Float64s(vals)
	return percentiles(vals)
}
