// Package serve simulates continuous-batching LLM serving on top of the
// step-cost engine of internal/infer. It is a discrete-event simulator in
// the style the paper's §7 sketches as future work and RAPID-LLM
// (arXiv:2512.19606) builds at infrastructure scale: requests arrive by a
// seeded deterministic process (open-loop Poisson or closed-loop clients),
// queue for KV-cache capacity, and are batched at iteration granularity —
// every engine step admits waiting requests up to the batch cap and KV
// budget, prices the resulting mixed prefill/decode iteration with
// infer.PrefillCost / infer.DecodeStepCost, and advances the clock by that
// analytic cost. No wall-clock time, goroutines, or maps in the event path:
// runs are byte-identical across repeated invocations at a fixed seed and
// any GOMAXPROCS.
//
// The simulator reports per-request TTFT (time to first token — queueing
// delay plus the prefill pass that emits it), TPOT (time per output token
// over the decode steps), and E2E latency, with p50/p95/p99 percentiles —
// the SLO surface capacity planning ranks on.
//
// Requests carry their own per-request prompt/generation lengths: a
// workload is either generated from a seeded multi-tenant Mix (per-tenant
// rate shares and shapes), replayed from an explicit Trace, or — the
// degenerate single-tenant case — shaped by the spec-wide
// PromptTokens/GenTokens, which a uniform one-entry Mix reproduces
// byte-identically. Results break the SLO percentiles down per tenant
// (Result.PerTenant) alongside the aggregate view.
//
// KV-cache admission is a pluggable AdmissionPolicy with two
// implementations selected by Spec.Policy:
//
//   - ReserveFull (the default) reserves each request's full
//     prompt+generation context up front — admission is pessimistic but
//     nothing is ever evicted.
//   - Paged allocates KV in fixed-size token blocks (Spec.PageTokens,
//     vLLM-style) that grow as a request decodes, admitting on the
//     prompt's pages alone. Under pressure the youngest running sequence
//     is preempted (LIFO), its cache discarded, and it is re-queued for a
//     fresh prefill — recompute-style preemption, priced through the same
//     PrefillCost API as any admission. Result counts Preemptions, the
//     RecomputedTokens they discarded, and page-pool utilization, making
//     the SLO-versus-utilization trade directly observable.
package serve

import (
	"fmt"
	"math"
	"sort"

	"optimus/internal/arch"
	"optimus/internal/comm"
	"optimus/internal/infer"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/tech"
	"optimus/internal/workload"
)

// Arrival selects the request arrival process.
type Arrival int

const (
	// Poisson is an open-loop process: exponential interarrivals at Rate
	// requests/sec, independent of service progress.
	Poisson Arrival = iota
	// ClosedLoop models Clients concurrent users with zero think time:
	// each issues its next request the moment the previous one completes.
	ClosedLoop
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case ClosedLoop:
		return "closed-loop"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// Spec fixes one serving-simulation experiment.
//
//lint:fieldalign public API struct: fields are grouped by meaning for godoc, and Spec is built once per run, never in bulk
type Spec struct {
	// Model, System, TP, Precision, Algorithm and Flash configure the
	// step-cost engine exactly as in infer.Spec.
	Model     model.Config
	System    *arch.System
	TP        int
	Precision tech.Precision
	Algorithm comm.Algorithm
	Flash     bool

	// PromptTokens and GenTokens shape every request (the paper's Table 2
	// uses 200/200). They are the degenerate single-tenant workload: when
	// Mix and Trace are empty they become a one-entry Mix under
	// DefaultTenant. Leave them zero when Mix or Trace is set.
	PromptTokens int
	GenTokens    int

	// PrefixTokens marks the leading PrefixTokens prompt tokens of the
	// degenerate single-tenant workload as a shared prefix, cached by the
	// paged policy under a DefaultTenant-named prefix id (see
	// Request.PrefixID). Explicit Mix/Trace workloads carry per-entry
	// prefixes instead — leave this zero with them. Paged policy only.
	PrefixTokens int

	// Mix generates a multi-tenant workload: each tenant contributes a
	// share of the arrival process and shapes its requests with its own
	// prompt/generation lengths. Tenant assignment is drawn from a second
	// seeded stream, so a single-tenant mix reproduces the spec-wide
	// workload byte-identically.
	Mix []TenantLoad
	// Trace replays an explicit request timeline (arrival, tenant, prompt,
	// gen) instead of generating one: it fixes the arrival process and the
	// request count, so Arrival/Rate/Clients/Requests stay unset.
	Trace []TraceEvent

	// Arrival selects the request process; the zero value is Poisson.
	Arrival Arrival
	// Rate is the Poisson arrival rate in requests/sec.
	Rate float64
	// Schedule shapes the Poisson process with a piecewise arrival-rate
	// timeline (diurnal/burst segments, workload.ParseSchedule's
	// "0-60:5,60-120:25" syntax). It fixes the rate, so Rate stays zero
	// with it; a schedule that canonicalizes to a constant reproduces the
	// plain Rate run byte-identically. Poisson arrivals only.
	Schedule Schedule
	// Clients is the closed-loop concurrency.
	Clients int
	// Turns expands the generated workload into multi-turn session
	// cohorts: each session issues Turns requests, and turn n+1's prompt
	// carries the session's whole prior context as a growing shared prefix
	// (exercising the paged policy's prefix cache the way production
	// sessions do). 0 or 1 is the ordinary single-turn workload,
	// byte-identical to the pre-session behavior. Sessions own their
	// prefixes, so the mix must be prefix-free; Poisson arrivals and the
	// paged policy with preemption only.
	Turns int
	// Think is the pause between a session's consecutive turns in
	// simulated seconds; zero means back-to-back turns. Requires Turns > 1.
	Think float64
	// Requests is the number of requests to simulate; zero means 256.
	Requests int
	// Seed drives the arrival process; runs with equal seeds are
	// byte-identical.
	Seed int64

	// MaxBatch caps concurrent sequences per iteration; zero derives the
	// largest batch the admission policy's KV budget holds.
	MaxBatch int
	// KVCapacity overrides the per-device KV-cache budget in bytes; zero
	// derives it as device DRAM minus the TP-sharded weights.
	KVCapacity float64

	// Policy selects the KV admission policy; the zero value is
	// ReserveFull, the PR-2 full-context reservation.
	Policy Policy
	// PageTokens is the paged policy's KV block size in tokens; zero
	// means DefaultPageTokens. It is clamped to the full context, at
	// which point the paged policy degenerates to block-granular
	// reservation. Paged only.
	PageTokens int
	// NoPreempt disables victim preemption: paged admission then
	// reserves the full-context page count up front, so growth can never
	// fail. Paged only.
	NoPreempt bool

	// HostKVBytes sizes a host-memory KV tier, in bytes: preemption
	// victims swap their pages out to it (instead of discarding them) over
	// a PCIe-class link, and readmission swaps them back in when that is
	// cheaper than the recompute prefill. Zero disables the tier — the
	// recompute-only path, byte-identical to the tierless policy. Paged
	// policy only, and preemption must stay enabled (NoPreempt unset).
	HostKVBytes float64
	// SwapGBps is the host tier's link bandwidth in GB/s (internal/comm's
	// point-to-point link model, small-message derating included). Zero
	// means DefaultSwapGBps; math.Inf(1) prices swaps at exactly zero.
	// Requires HostKVBytes.
	SwapGBps float64

	// PrefillDevices and DecodeDevices size the disaggregated policy's two
	// page pools: each pool owns its count of the TP devices' aggregate KV
	// budget. Counts may overlap (a device serving both phases); zero
	// defaults to TP — each pool spanning every device, the co-located
	// split. Disaggregated only.
	PrefillDevices int
	DecodeDevices  int
	// TransferGBps is the bandwidth of the interconnect joining the two
	// pools, in GB/s: every sequence migrating from prefill to decode pays
	// a point-to-point transfer of its prompt's KV bytes over it
	// (internal/comm's link model, small-message derating included). Zero
	// means DefaultTransferGBps; math.Inf(1) prices transfers at exactly
	// zero — the co-located degenerate case. Disaggregated only.
	TransferGBps float64

	// probe, when set by package tests, observes every iteration's KV
	// accounting (the instrumentation hook the conservation property
	// tests assert through).
	probe func(probeState)
}

// probeState is the per-iteration KV accounting snapshot handed to the
// test-only step probe, sampled after admission and before pricing.
type probeState struct {
	iteration       int
	running, queued int
	// usedPages/totalPages are the policy's committed-page accounting
	// (zero for ReserveFull); runningPages re-sums the running set's held
	// pages so the probe can assert conservation independently. Held and
	// committed coincide except under NoPreempt, whose admissions reserve
	// full contexts they have not yet filled.
	usedPages, totalPages, runningPages int
	usedBytes, budget                   float64
	// Disaggregated-policy pool accounting (zero elsewhere): committed
	// pages and capacity per pool, plus the running set's held pages
	// re-summed by the pool each sequence currently occupies.
	prefillPages, prefillTotal              int
	decodePages, decodeTotal                int
	runningPrefillPages, runningDecodePages int
	// decidersInPrefill counts carried-over sequences (everything but this
	// iteration's admissions) still resident in the prefill pool — they are
	// about to decode, so the count must be zero: beginStep migrates every
	// survivor before its next token.
	decidersInPrefill int
	// Prefix/tier accounting (zero without them): resident shared-prefix
	// pages (conservation closes as usedPages == runningPages +
	// prefixPages under the paged policy) and the host tier's committed
	// pages against its capacity.
	prefixPages          int
	hostPages, hostTotal int
}

func (s Spec) withDefaults() Spec {
	if len(s.Trace) > 0 {
		if s.Requests == 0 {
			s.Requests = len(s.Trace)
		}
		return s
	}
	if len(s.Mix) == 0 {
		pid := ""
		if s.PrefixTokens > 0 {
			pid = DefaultTenant
		}
		s.Mix = []TenantLoad{{
			Tenant: DefaultTenant, Share: 1,
			PromptTokens: s.PromptTokens, GenTokens: s.GenTokens,
			PrefixID: pid, PrefixTokens: s.PrefixTokens,
		}}
	}
	if s.Requests == 0 {
		s.Requests = 256
	}
	return s
}

// inferSpec builds the step-cost configuration at the workload's largest
// request shape; for the degenerate single-tenant workload that is exactly
// the spec-wide PromptTokens/GenTokens.
func (s Spec) inferSpec() infer.Spec {
	b := s.bounds()
	return infer.Spec{
		Model: s.Model, System: s.System, TP: s.TP, Batch: 1,
		PromptTokens: b.maxPrompt, GenTokens: b.maxGen,
		Precision: s.Precision, Algorithm: s.Algorithm, Flash: s.Flash,
	}
}

// inferenceFootprint is the footprint model behind kvBudget; a package
// variable so tests can count invocations and pin that Run derives the KV
// geometry exactly once per simulation (not once per iteration or per
// helper call).
var inferenceFootprint = memfoot.Inference

// kvBudget resolves the per-device KV-cache budget and the full-context
// reservation of the workload's largest request, both from the memfoot
// inference model so the admission policy can never diverge from the
// footprint the predictors check against. It is called exactly once per
// simulation, from newPolicy — the footprint model is far too slow for the
// event loop.
func (s Spec) kvBudget() (budget, perRequest float64) {
	fp := inferenceFootprint(s.Model, s.TP, 1, s.bounds().maxContext, s.Precision.Bytes())
	budget = s.KVCapacity
	if budget <= 0 {
		budget = s.System.Device.DRAMCapacity() - fp.Weights
	}
	return budget, fp.KVCache
}

// Validate checks the experiment, including that the largest request's
// weights + full-context KV-cache fit the device (Feasible's verdict).
func (s Spec) Validate() error {
	if err := s.validateExclusive(); err != nil {
		return err
	}
	s = s.withDefaults()
	if err := s.validateShape(); err != nil {
		return err
	}
	return s.validateFit(newPolicy(s))
}

// validateExclusive rejects ambiguous workload-field combinations before
// withDefaults folds the spec-wide shape into the degenerate mix.
func (s Spec) validateExclusive() error {
	if len(s.Mix) > 0 && len(s.Trace) > 0 {
		return fmt.Errorf("serve: Mix and Trace are mutually exclusive")
	}
	// A non-nil empty trace is a replay of nothing, not a request to
	// generate a workload: without this check it would fall through to the
	// mix path and silently simulate the spec-wide shape instead of the
	// trace the caller supplied.
	if s.Trace != nil && len(s.Trace) == 0 {
		return fmt.Errorf("serve: empty trace — a replay needs at least one event (leave Trace nil to generate a workload)")
	}
	if (len(s.Mix) > 0 || len(s.Trace) > 0) && (s.PromptTokens != 0 || s.GenTokens != 0) {
		return fmt.Errorf("serve: PromptTokens/GenTokens describe the degenerate single-tenant workload — leave them zero with an explicit Mix or Trace")
	}
	if (len(s.Mix) > 0 || len(s.Trace) > 0) && s.PrefixTokens != 0 {
		return fmt.Errorf("serve: PrefixTokens shapes the degenerate single-tenant workload — set per-entry prefixes in an explicit Mix or Trace")
	}
	return nil
}

// prefixed reports whether any workload shape carries a non-empty shared
// prefix. Run on the defaulted spec (the spec-wide PrefixTokens has been
// folded into the degenerate mix by then). Session cohorts count: their
// mix entries are prefix-free, but every generated turn past the first
// carries the session's accumulated context as a shared prefix.
func (s Spec) prefixed() bool {
	if s.Turns > 1 {
		return true
	}
	for _, t := range s.Mix {
		if t.PrefixTokens > 0 {
			return true
		}
	}
	for _, ev := range s.Trace {
		if ev.PrefixTokens > 0 {
			return true
		}
	}
	return false
}

// validateShape checks everything that does not need the KV geometry —
// run before newPolicy, since deriving the geometry dereferences the
// system a garbage spec may not have.
func (s Spec) validateShape() error {
	if err := s.inferSpec().Validate(); err != nil {
		return err
	}
	if len(s.Trace) > 0 {
		if err := ValidateTrace(s.Trace); err != nil {
			return err
		}
		// A trace fixes the arrival process and the request count; fields
		// that would shape a generated workload are rejected rather than
		// silently ignored.
		if s.Arrival != Poisson || s.Rate != 0 || s.Clients != 0 || s.Seed != 0 ||
			len(s.Schedule) > 0 || s.Turns != 0 || s.Think != 0 {
			return fmt.Errorf("serve: a trace fixes the arrival process — leave Arrival/Rate/Clients/Seed/Schedule/Turns/Think unset")
		}
		if s.Requests != len(s.Trace) {
			return fmt.Errorf("serve: Requests is derived from the trace (leave it zero, got %d for a %d-event trace)",
				s.Requests, len(s.Trace))
		}
	} else {
		if err := ValidateMix(s.Mix); err != nil {
			return err
		}
		switch s.Arrival {
		case Poisson:
			if len(s.Schedule) > 0 {
				if err := s.Schedule.Validate(); err != nil {
					return err
				}
				// A schedule fixes the whole rate timeline; a spec setting
				// both believes two different arrival processes shaped the
				// run.
				if s.Rate != 0 {
					return fmt.Errorf("serve: Schedule fixes the arrival rate — leave Rate zero with it, got %g", s.Rate)
				}
			} else
			// Negated-positive form so NaN (which fails every comparison,
			// and would stall the event loop with NaN arrival times) is
			// rejected.
			if !(s.Rate > 0) || math.IsInf(s.Rate, 0) {
				return fmt.Errorf("serve: Poisson arrivals need a positive finite rate, got %g", s.Rate)
			}
			// The CLI rejects -clients under Poisson; the library must be
			// as strict rather than silently ignoring the field.
			if s.Clients != 0 {
				return fmt.Errorf("serve: Clients applies to closed-loop arrivals only — leave it zero with Poisson, got %d", s.Clients)
			}
		case ClosedLoop:
			if s.Clients <= 0 {
				return fmt.Errorf("serve: closed-loop arrivals need positive clients, got %d", s.Clients)
			}
			if s.Rate != 0 {
				return fmt.Errorf("serve: Rate applies to Poisson arrivals only — leave it zero closed-loop, got %g", s.Rate)
			}
			if len(s.Schedule) > 0 {
				return fmt.Errorf("serve: Schedule shapes open-loop Poisson arrivals only — closed-loop clients issue on completion")
			}
			if s.Turns != 0 {
				return fmt.Errorf("serve: session cohorts are open-loop — Turns applies to Poisson arrivals only, got %d", s.Turns)
			}
		default:
			return fmt.Errorf("serve: unknown arrival process %v", s.Arrival)
		}
		if s.Turns < 0 {
			return fmt.Errorf("serve: negative session turns %d", s.Turns)
		}
		if s.Turns > 1 {
			// Sessions grow a shared prefix turn over turn; only the paged
			// policy's refcounted block registry can cache and grow it.
			if s.Policy != Paged || s.NoPreempt {
				return fmt.Errorf("serve: session cohorts grow a shared prefix — they need the paged policy with preemption enabled (Policy: Paged, NoPreempt unset)")
			}
			for _, t := range s.Mix {
				if t.PrefixID != "" || t.PrefixTokens != 0 {
					return fmt.Errorf("serve: session cohorts own the shared prefix — drop per-entry prefixes from the mix (tenant %q carries one)", t.Tenant)
				}
			}
		}
		if s.Think != 0 {
			if s.Turns <= 1 {
				return fmt.Errorf("serve: Think is the pause between session turns — set Turns > 1 with it, got Think %g", s.Think)
			}
			if !(s.Think >= 0) || math.IsInf(s.Think, 0) {
				return fmt.Errorf("serve: think time %g not finite and non-negative", s.Think)
			}
		}
	}
	switch {
	case s.Requests < 0:
		return fmt.Errorf("serve: negative request count %d", s.Requests)
	case s.MaxBatch < 0:
		return fmt.Errorf("serve: negative batch cap %d", s.MaxBatch)
	case s.KVCapacity < 0 || math.IsNaN(s.KVCapacity) || math.IsInf(s.KVCapacity, 0):
		// Negative-or-non-finite form: a NaN budget fails every admission
		// comparison and an infinite one overflows the batch-cap math.
		return fmt.Errorf("serve: KV capacity %g not finite and non-negative", s.KVCapacity)
	}
	// Reject knobs the chosen policy would silently ignore: a user who
	// sets them believes they shaped the simulation.
	if s.Policy != Disaggregated &&
		(s.PrefillDevices != 0 || s.DecodeDevices != 0 || s.TransferGBps != 0) {
		// NaN bandwidths land here too: NaN != 0.
		return fmt.Errorf("serve: PrefillDevices/DecodeDevices/TransferGBps apply to the disaggregated policy only")
	}
	// Prefix caching lives in the paged policy's block registry, and a
	// NoPreempt reservation has no block registry growth to share into.
	if s.prefixed() && (s.Policy != Paged || s.NoPreempt) {
		return fmt.Errorf("serve: prefix caching needs the paged policy with preemption enabled (Policy: Paged, NoPreempt unset)")
	}
	if s.HostKVBytes != 0 || s.SwapGBps != 0 {
		if s.Policy != Paged {
			return fmt.Errorf("serve: HostKVBytes/SwapGBps apply to the paged policy only")
		}
		if s.NoPreempt {
			return fmt.Errorf("serve: the host KV tier holds preemption victims — NoPreempt never evicts any (unset one)")
		}
		if s.HostKVBytes < 0 || math.IsNaN(s.HostKVBytes) || math.IsInf(s.HostKVBytes, 0) {
			return fmt.Errorf("serve: host KV capacity %g bytes not finite and non-negative", s.HostKVBytes)
		}
		if s.SwapGBps != 0 && s.HostKVBytes == 0 {
			return fmt.Errorf("serve: SwapGBps prices the host KV tier's link — set HostKVBytes too")
		}
		if s.SwapGBps < 0 || math.IsNaN(s.SwapGBps) {
			return fmt.Errorf("serve: swap bandwidth %g GB/s not non-negative (0 derives %g; +Inf is a free swap)",
				s.SwapGBps, DefaultSwapGBps)
		}
	}
	switch s.Policy {
	case ReserveFull:
		if s.PageTokens != 0 {
			return fmt.Errorf("serve: PageTokens applies to the paged and disaggregated policies only")
		}
		if s.NoPreempt {
			return fmt.Errorf("serve: NoPreempt applies to the paged policy only")
		}
	case Paged:
		if s.PageTokens < 0 {
			return fmt.Errorf("serve: negative page size %d tokens", s.PageTokens)
		}
	case Disaggregated:
		if s.PageTokens < 0 {
			return fmt.Errorf("serve: negative page size %d tokens", s.PageTokens)
		}
		if s.NoPreempt {
			return fmt.Errorf("serve: NoPreempt applies to the paged policy only")
		}
		if s.PrefillDevices < 0 || s.PrefillDevices > s.TP {
			return fmt.Errorf("serve: prefill pool of %d devices outside [1, TP=%d] (0 derives TP)", s.PrefillDevices, s.TP)
		}
		if s.DecodeDevices < 0 || s.DecodeDevices > s.TP {
			return fmt.Errorf("serve: decode pool of %d devices outside [1, TP=%d] (0 derives TP)", s.DecodeDevices, s.TP)
		}
		if s.TransferGBps < 0 || math.IsNaN(s.TransferGBps) {
			return fmt.Errorf("serve: KV-transfer bandwidth %g GB/s not non-negative (0 derives %g; +Inf is a free transfer)",
				s.TransferGBps, DefaultTransferGBps)
		}
	default:
		return fmt.Errorf("serve: unknown admission policy %v", s.Policy)
	}
	return nil
}

// validateFit checks the policy's feasibility verdict.
func (s Spec) validateFit(pol AdmissionPolicy) error {
	if !pol.Feasible() {
		return fmt.Errorf("serve: one %d-token request does not fit the device (weights + KV-cache exceed %g bytes)",
			s.bounds().maxContext, s.System.Device.DRAMCapacity())
	}
	return nil
}

// Feasible reports whether the workload's largest request can ever be
// admitted: the TP-sharded weights plus one full-context KV allocation
// (reservation or pages) fit the KV budget. The sweep engine uses it to
// prune hopeless grid cells before simulating; its verdict matches whether
// Run would reject the spec.
func Feasible(s Spec) bool {
	return newPolicy(s.withDefaults()).Feasible()
}

// RequestMetrics is one completed request's timeline.
type RequestMetrics struct {
	// ID is the arrival index (0-based).
	ID int
	// Tenant, PromptTokens and GenTokens echo the request's workload
	// shape (the degenerate spec-wide workload runs under DefaultTenant).
	Tenant       string
	PromptTokens int
	GenTokens    int
	// Arrival, Admitted, FirstToken and Done are simulation timestamps.
	Arrival    float64
	Admitted   float64
	FirstToken float64
	Done       float64
	// Queue is the admission delay (Admitted - Arrival).
	Queue float64
	// TTFT is the time to first token (FirstToken - Arrival).
	TTFT float64
	// TPOT is the mean time per output token after the first.
	TPOT float64
	// E2E is the end-to-end latency (Done - Arrival).
	E2E float64
	// Preemptions counts how many times this request was evicted and
	// re-queued (paged and disaggregated policies). Admitted and
	// FirstToken keep their first-occurrence timestamps across
	// preemptions, so TTFT reflects when the stream first started; Done
	// (and hence TPOT and E2E) absorb the recompute stalls.
	Preemptions int
	// KVTransfers counts this request's KV movements over a modeled link —
	// prefill→decode pool migrations under the disaggregated policy, host
	// tier swap-outs and swap-ins under the paged policy's tiered KV — and
	// KVTransferTime the link seconds they cost.
	KVTransfers    int
	KVTransferTime float64
}

// Percentiles summarizes one latency distribution with nearest-rank
// percentiles: Pq is the sample at 1-based rank ceil(q·n) of the sorted
// n-sample set. Nearest-rank saturates rather than interpolates on small
// samples — for n < 20 the P95 rank is n itself, so P95 == Max, and for
// n < 100 likewise P99 == Max. Short runs and low-share tenants therefore
// report degenerate (maximum-valued) tail percentiles by construction;
// that is a property of the estimator, not an off-by-one
// (TestPercentilesNearestRank pins the exact ranks).
type Percentiles struct {
	P50, P95, P99 float64
	Mean, Max     float64
}

// percentiles computes nearest-rank percentiles over a sorted sample.
func percentiles(sorted []float64) Percentiles {
	if len(sorted) == 0 {
		return Percentiles{}
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Percentiles{
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Mean: sum / float64(len(sorted)),
		Max:  sorted[len(sorted)-1],
	}
}

// Result is the outcome of one serving simulation.
type Result struct {
	// Requests is the completed request count.
	Requests int
	// SimTime is the simulated makespan (time of the last completion).
	SimTime float64
	// Iterations is the number of priced batching iterations.
	Iterations int
	// ThroughputRPS is completed requests per simulated second.
	ThroughputRPS float64
	// TokensPerSec is aggregate generated tokens per simulated second.
	TokensPerSec float64

	// TTFT, TPOT, E2E and Queue are the SLO percentile summaries.
	TTFT  Percentiles
	TPOT  Percentiles
	E2E   Percentiles
	Queue Percentiles

	// MeanBatch is the mean concurrent-sequence count over iterations;
	// PeakBatch its maximum.
	MeanBatch float64
	PeakBatch int
	// PeakKVBytes is the high-water per-device KV commitment: held pages
	// under paged preemption, reservations under ReserveFull and
	// NoPreempt — always the capacity admission saw as unavailable, so
	// the number is comparable across the policy axis.
	PeakKVBytes float64
	// MeanKVUtil is the mean fraction of the KV budget committed across
	// iterations (sampled after admission) — the utilization side of the
	// SLO-versus-utilization trade.
	MeanKVUtil float64
	// MaxBatch and KVCapacity echo the resolved admission limits.
	MaxBatch   int
	KVCapacity float64

	// Policy echoes the admission policy; PageTokens and KVPagesTotal its
	// resolved block geometry and PeakKVPages the page high-water (all
	// zero under ReserveFull).
	Policy       Policy
	PageTokens   int
	KVPagesTotal int
	PeakKVPages  int
	// Preemptions counts victim evictions; RecomputedTokens the generated
	// tokens whose KV entries they discarded, which readmission prefills
	// had to rebuild.
	Preemptions      int
	RecomputedTokens int

	// Prefix-caching fields (paged policy with a prefixed workload; zero
	// elsewhere): admissions that found their shared prefix resident in
	// the KV cache, and the prefill tokens those hits skipped.
	PrefixHits        int
	PrefixSavedTokens int

	// Host-KV-tier fields (paged policy with HostKVBytes set; zero
	// elsewhere): the tier's page capacity and high-water mark, the
	// eviction swap-outs and readmission swap-ins it absorbed, and the
	// total link seconds they cost.
	HostPagesTotal int
	PeakHostPages  int
	KVSwapOuts     int
	KVSwapIns      int
	SwapTimeTotal  float64

	// Disaggregated-policy fields (zero elsewhere): the resolved pool
	// split, per-pool page capacities and high-water marks, and the KV
	// migrations between them — count and total interconnect seconds.
	PrefillDevices    int
	DecodeDevices     int
	PrefillPagesTotal int
	DecodePagesTotal  int
	PeakPrefillPages  int
	PeakDecodePages   int
	KVTransfers       int
	TransferTimeTotal float64

	// PerTenant summarizes each tenant's completed requests, ordered by
	// tenant name — the SLO surface a multi-tenant capacity plan ranks on
	// (a mix tenant that drew no requests is absent).
	PerTenant []TenantMetrics

	// PerRequest holds every completed request, ordered by arrival index.
	PerRequest []RequestMetrics
}

// TenantMetrics is one tenant's SLO summary within a simulation.
type TenantMetrics struct {
	Tenant string
	// Requests is the tenant's completed request count; GenTokens its
	// aggregate generated tokens.
	Requests  int
	GenTokens int
	// TTFT, TPOT, E2E and Queue are the tenant-local percentile summaries.
	TTFT  Percentiles
	TPOT  Percentiles
	E2E   Percentiles
	Queue Percentiles
}

// tenantBreakdown groups completed requests by tenant, sorted by name.
func tenantBreakdown(done []RequestMetrics) []TenantMetrics {
	byTenant := make(map[string][]RequestMetrics)
	names := make([]string, 0, 4)
	for _, m := range done {
		if _, ok := byTenant[m.Tenant]; !ok {
			names = append(names, m.Tenant)
		}
		byTenant[m.Tenant] = append(byTenant[m.Tenant], m)
	}
	sort.Strings(names)
	out := make([]TenantMetrics, 0, len(names))
	for _, name := range names {
		ms := byTenant[name]
		gen := 0
		for _, m := range ms {
			gen += m.GenTokens
		}
		out = append(out, TenantMetrics{
			Tenant: name, Requests: len(ms), GenTokens: gen,
			TTFT:  metricPercentiles(ms, func(m RequestMetrics) float64 { return m.TTFT }),
			TPOT:  metricPercentiles(ms, func(m RequestMetrics) float64 { return m.TPOT }),
			E2E:   metricPercentiles(ms, func(m RequestMetrics) float64 { return m.E2E }),
			Queue: metricPercentiles(ms, func(m RequestMetrics) float64 { return m.Queue }),
		})
	}
	return out
}

// request is the in-flight simulator state of one sequence.
type request struct {
	id      int
	arrival float64
	// tenant, prompt and gen are the request's workload shape; every
	// admission, decode step and KV allocation is priced off them.
	tenant string
	prompt int
	gen    int
	// admitted and firstToken are timestamps filled as the request moves
	// through the pipeline; both keep their first occurrence across
	// preemptions.
	admitted   float64
	firstToken float64
	// produced counts generated tokens; 0 means the prefill pass is still
	// pending. Preemption keeps it — the readmission prefill rebuilds the
	// discarded KV and decoding resumes from here.
	produced int
	// pages is the KV page count currently held (paged and disaggregated
	// policies).
	pages int
	// prefix is the request's shared-prefix token count and prefixSlot its
	// interned registry slot in the paged policy (-1 without a prefix);
	// the request's private page math spans prompt-prefix+produced tokens.
	// inDecode marks which disaggregated pool holds the pages; it packs
	// into prefixSlot's alignment padding, keeping the slab entry at 152
	// bytes.
	prefix     int
	prefixSlot int32
	inDecode   bool
	// prefillFree counts the prompt+produced tokens the next admission's
	// prefill pass skips: a resident prefix hit contributes the prefix, a
	// host-tier swap-in the restored suffix.
	prefillFree int
	// hostPages/hostTokens are the KV held in the host tier while the
	// request waits preempted (tiered paged policy only).
	hostPages  int
	hostTokens int
	// admissions and preempts count lifecycle events; transfers and
	// transferTime the disaggregated pool migrations and their cost.
	admissions   int
	preempts     int
	transfers    int
	transferTime float64
}

// Run executes the simulation. It is fully deterministic: the only
// randomness is the seeded arrival process, and the event loop is a single
// goroutine over slices in arrival order. Run is a driver over the
// steppable simulator core (sim.go) that Instance exposes piecemeal — the
// two paths share every line of event-loop code, so an Instance fed Run's
// arrival stream reproduces Run byte-identically.
func Run(s Spec) (Result, error) {
	return new(Runner).Run(s)
}

// Runner is a reusable simulator: it owns the slabs one simulation grows
// (request pool, index queues, pricing tables, workload buffers) and
// re-arms them for every Run call, so a worker evaluating thousands of
// specs — a sweep worker goroutine, a cluster replica slot, a knee
// bisection — skips the per-run slab allocations entirely. Results are
// byte-identical to fresh construction (TestRunnerReuseMatchesFresh).
//
// A Runner is NOT safe for concurrent use, and at most one of its Run or
// Instance simulations may be live at a time (a new call re-arms the
// shared slabs, invalidating the previous Instance); give each goroutine
// its own Runner.
type Runner struct {
	sim simulator
	// arrivalsBuf/shapesBuf/traceBuf are the reusable workload-generation
	// buffers behind Run's arrival stream and Instance's envelope trace.
	arrivalsBuf []float64
	shapesBuf   []Request
	traceBuf    []TraceEvent
}

// NewRunner builds an empty Runner; slabs grow on first use.
func NewRunner() *Runner { return new(Runner) }

// Run executes one simulation on the Runner's pooled state. See Run (the
// package function) for semantics.
func (rn *Runner) Run(s Spec) (Result, error) {
	if err := s.validateExclusive(); err != nil {
		return Result{}, err
	}
	s = s.withDefaults()
	if err := s.validateShape(); err != nil {
		return Result{}, err
	}
	sim := &rn.sim
	if err := sim.reset(s); err != nil {
		return Result{}, err
	}

	// Every arrival index is assigned its request shape up front, so the
	// assignment is identical whether ids are issued open- or closed-loop.
	// Open-loop arrivals are pre-generated; closed-loop ones are issued on
	// completion.
	switch {
	case len(s.Trace) > 0:
		arrivals, shapes := rn.arrivalsBuf[:0], rn.shapesBuf[:0]
		for _, ev := range s.Trace {
			arrivals = append(arrivals, ev.Arrival)
			shapes = append(shapes, ev.Request)
		}
		rn.arrivalsBuf, rn.shapesBuf = arrivals, shapes
		sim.arrivals, sim.shapes = arrivals, shapes
		sim.issued = s.Requests
	case s.Arrival == Poisson:
		proc := workload.ArrivalProcess{
			Rate: s.Rate, Schedule: s.Schedule,
			Turns: s.Turns, Think: s.Think, Seed: s.Seed,
		}
		rn.arrivalsBuf, rn.shapesBuf = proc.Generate(s.Mix, s.Requests, rn.arrivalsBuf[:0], rn.shapesBuf[:0])
		sim.arrivals, sim.shapes = rn.arrivalsBuf, rn.shapesBuf
		sim.issued = s.Requests
	default:
		rn.shapesBuf = appendMixShapes(rn.shapesBuf[:0], s.Mix, s.Requests, s.Seed)
		sim.shapes = rn.shapesBuf
		sim.closed = true
		clients := s.Clients
		if clients > s.Requests {
			clients = s.Requests
		}
		for i := 0; i < clients; i++ {
			sim.enqueue(i, 0)
		}
		sim.issued = clients
	}

	for len(sim.done) < sim.target {
		sim.admitArrived()
		// Idle: jump to the next arrival.
		if sim.idle() {
			if sim.nextArr >= len(sim.arrivals) {
				return Result{}, fmt.Errorf("serve: simulation stalled with %d/%d requests done", len(sim.done), sim.target)
			}
			sim.now = sim.arrivals[sim.nextArr]
			sim.admitArrived()
		}
		sim.step()
	}
	return sim.finish(), nil
}

// metricPercentiles extracts and summarizes one per-request metric.
func metricPercentiles(done []RequestMetrics, f func(RequestMetrics) float64) Percentiles {
	p, _ := metricPercentilesBuf(nil, done, f)
	return p
}

// metricPercentilesBuf is metricPercentiles over a reusable scratch
// buffer, returning the (possibly grown) buffer for the next pass.
func metricPercentilesBuf(buf []float64, done []RequestMetrics, f func(RequestMetrics) float64) (Percentiles, []float64) {
	buf = buf[:0]
	for _, m := range done {
		buf = append(buf, f(m))
	}
	sort.Float64s(buf)
	return percentiles(buf), buf
}
