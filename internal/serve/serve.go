// Package serve simulates continuous-batching LLM serving on top of the
// step-cost engine of internal/infer. It is a discrete-event simulator in
// the style the paper's §7 sketches as future work and RAPID-LLM
// (arXiv:2512.19606) builds at infrastructure scale: requests arrive by a
// seeded deterministic process (open-loop Poisson or closed-loop clients),
// queue for KV-cache capacity, and are batched at iteration granularity —
// every engine step admits waiting requests up to the batch cap and KV
// budget, prices the resulting mixed prefill/decode iteration with
// infer.PrefillCost / infer.DecodeStepCost, and advances the clock by that
// analytic cost. No wall-clock time, goroutines, or maps in the event path:
// runs are byte-identical across repeated invocations at a fixed seed and
// any GOMAXPROCS.
//
// The simulator reports per-request TTFT (time to first token — queueing
// delay plus the prefill pass that emits it), TPOT (time per output token
// over the decode steps), and E2E latency, with p50/p95/p99 percentiles —
// the SLO surface capacity planning ranks on. KV-cache admission reserves
// each request's full prompt+generation context up front (no paging;
// paged/disaggregated variants are follow-ons the step-cost split makes
// expressible).
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"optimus/internal/arch"
	"optimus/internal/comm"
	"optimus/internal/infer"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/tech"
)

// Arrival selects the request arrival process.
type Arrival int

const (
	// Poisson is an open-loop process: exponential interarrivals at Rate
	// requests/sec, independent of service progress.
	Poisson Arrival = iota
	// ClosedLoop models Clients concurrent users with zero think time:
	// each issues its next request the moment the previous one completes.
	ClosedLoop
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case ClosedLoop:
		return "closed-loop"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// Spec fixes one serving-simulation experiment.
type Spec struct {
	// Model, System, TP, Precision, Algorithm and Flash configure the
	// step-cost engine exactly as in infer.Spec.
	Model     model.Config
	System    *arch.System
	TP        int
	Precision tech.Precision
	Algorithm comm.Algorithm
	Flash     bool

	// PromptTokens and GenTokens shape every request (the paper's Table 2
	// uses 200/200).
	PromptTokens int
	GenTokens    int

	// Arrival selects the request process; the zero value is Poisson.
	Arrival Arrival
	// Rate is the Poisson arrival rate in requests/sec.
	Rate float64
	// Clients is the closed-loop concurrency.
	Clients int
	// Requests is the number of requests to simulate; zero means 256.
	Requests int
	// Seed drives the arrival process; runs with equal seeds are
	// byte-identical.
	Seed int64

	// MaxBatch caps concurrent sequences per iteration; zero derives the
	// largest batch whose full-context KV fits the KV budget.
	MaxBatch int
	// KVCapacity overrides the per-device KV-cache budget in bytes; zero
	// derives it as device DRAM minus the TP-sharded weights.
	KVCapacity float64
}

func (s Spec) withDefaults() Spec {
	if s.Requests == 0 {
		s.Requests = 256
	}
	return s
}

// inferSpec builds the step-cost configuration of one request.
func (s Spec) inferSpec() infer.Spec {
	return infer.Spec{
		Model: s.Model, System: s.System, TP: s.TP, Batch: 1,
		PromptTokens: s.PromptTokens, GenTokens: s.GenTokens,
		Precision: s.Precision, Algorithm: s.Algorithm, Flash: s.Flash,
	}
}

// kvBudget resolves the per-device KV-cache budget and the per-request
// full-context reservation, both from the memfoot inference model so the
// admission policy can never diverge from the footprint the predictors
// check against.
func (s Spec) kvBudget() (budget, perRequest float64) {
	fp := memfoot.Inference(s.Model, s.TP, 1, s.PromptTokens+s.GenTokens, s.Precision.Bytes())
	budget = s.KVCapacity
	if budget <= 0 {
		budget = s.System.Device.DRAMCapacity() - fp.Weights
	}
	return budget, fp.KVCache
}

// Validate checks the experiment, including that at least one request's
// weights + full-context KV-cache fit the device (Feasible's verdict).
func (s Spec) Validate() error {
	s = s.withDefaults()
	if err := s.inferSpec().Validate(); err != nil {
		return err
	}
	switch s.Arrival {
	case Poisson:
		// Negated-positive form so NaN (which fails every comparison, and
		// would stall the event loop with NaN arrival times) is rejected.
		if !(s.Rate > 0) || math.IsInf(s.Rate, 0) {
			return fmt.Errorf("serve: Poisson arrivals need a positive finite rate, got %g", s.Rate)
		}
	case ClosedLoop:
		if s.Clients <= 0 {
			return fmt.Errorf("serve: closed-loop arrivals need positive clients, got %d", s.Clients)
		}
	default:
		return fmt.Errorf("serve: unknown arrival process %v", s.Arrival)
	}
	switch {
	case s.Requests < 0:
		return fmt.Errorf("serve: negative request count %d", s.Requests)
	case s.GenTokens < 1:
		return fmt.Errorf("serve: serving needs at least one generated token, got %d", s.GenTokens)
	case s.MaxBatch < 0:
		return fmt.Errorf("serve: negative batch cap %d", s.MaxBatch)
	case s.KVCapacity < 0:
		return fmt.Errorf("serve: negative KV capacity %g", s.KVCapacity)
	}
	if !Feasible(s) {
		return fmt.Errorf("serve: one %d-token request does not fit the device (weights + KV-cache exceed %g bytes)",
			s.PromptTokens+s.GenTokens, s.System.Device.DRAMCapacity())
	}
	return nil
}

// Feasible reports whether a single request can ever be admitted: the
// TP-sharded weights plus one full-context KV reservation fit the KV
// budget. The sweep engine uses it to prune hopeless grid cells before
// simulating; its verdict matches whether Run would reject the spec.
func Feasible(s Spec) bool {
	budget, perRequest := s.kvBudget()
	return budget > 0 && perRequest <= budget
}

// maxBatch resolves the iteration batch cap: the user's cap, bounded by
// how many full-context reservations the KV budget holds.
func (s Spec) maxBatch() int {
	budget, perRequest := s.kvBudget()
	fit := int(budget / perRequest)
	if s.MaxBatch > 0 && s.MaxBatch < fit {
		return s.MaxBatch
	}
	return fit
}

// RequestMetrics is one completed request's timeline.
type RequestMetrics struct {
	// ID is the arrival index (0-based).
	ID int
	// Arrival, Admitted, FirstToken and Done are simulation timestamps.
	Arrival    float64
	Admitted   float64
	FirstToken float64
	Done       float64
	// Queue is the admission delay (Admitted - Arrival).
	Queue float64
	// TTFT is the time to first token (FirstToken - Arrival).
	TTFT float64
	// TPOT is the mean time per output token after the first.
	TPOT float64
	// E2E is the end-to-end latency (Done - Arrival).
	E2E float64
}

// Percentiles summarizes one latency distribution.
type Percentiles struct {
	P50, P95, P99 float64
	Mean, Max     float64
}

// percentiles computes nearest-rank percentiles over a sorted sample.
func percentiles(sorted []float64) Percentiles {
	if len(sorted) == 0 {
		return Percentiles{}
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Percentiles{
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Mean: sum / float64(len(sorted)),
		Max:  sorted[len(sorted)-1],
	}
}

// Result is the outcome of one serving simulation.
type Result struct {
	// Requests is the completed request count.
	Requests int
	// SimTime is the simulated makespan (time of the last completion).
	SimTime float64
	// Iterations is the number of priced batching iterations.
	Iterations int
	// ThroughputRPS is completed requests per simulated second.
	ThroughputRPS float64
	// TokensPerSec is aggregate generated tokens per simulated second.
	TokensPerSec float64

	// TTFT, TPOT, E2E and Queue are the SLO percentile summaries.
	TTFT  Percentiles
	TPOT  Percentiles
	E2E   Percentiles
	Queue Percentiles

	// MeanBatch is the mean concurrent-sequence count over iterations;
	// PeakBatch its maximum.
	MeanBatch float64
	PeakBatch int
	// PeakKVBytes is the high-water per-device KV reservation.
	PeakKVBytes float64
	// MaxBatch and KVCapacity echo the resolved admission limits.
	MaxBatch   int
	KVCapacity float64

	// PerRequest holds every completed request, ordered by arrival index.
	PerRequest []RequestMetrics
}

// request is the in-flight simulator state of one sequence.
type request struct {
	id      int
	arrival float64
	// admitted and firstToken are timestamps filled as the request moves
	// through the pipeline.
	admitted   float64
	firstToken float64
	// produced counts generated tokens; 0 means the prefill pass is still
	// pending.
	produced int
}

// Run executes the simulation. It is fully deterministic: the only
// randomness is the seeded arrival process, and the event loop is a single
// goroutine over slices in arrival order.
func Run(s Spec) (Result, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	coster, err := infer.NewStepCoster(s.inferSpec())
	if err != nil {
		return Result{}, err
	}
	// The step cost is linear in the KV length at fixed batch
	// (TestDecodeStepLinearInKV) and the prefill cost is fixed per batch,
	// so each batch size needs at most three kernel-enumeration passes;
	// every further iteration prices in O(1). Plain float math on cached
	// samples, so determinism is untouched.
	kv0, kv1 := s.PromptTokens+1, s.PromptTokens+s.GenTokens
	prefillCache := make(map[int]float64)
	prefill := func(batch int) float64 {
		t, ok := prefillCache[batch]
		if !ok {
			t = coster.Prefill(batch).Time()
			prefillCache[batch] = t
		}
		return t
	}
	type decodeLine struct{ base, slope float64 }
	decodeCache := make(map[int]decodeLine)
	// decode prices one step at a possibly fractional mean KV length — the
	// linear model makes mean-of-batch pricing exact without rounding.
	decode := func(kvMean float64, batch int) float64 {
		ln, ok := decodeCache[batch]
		if !ok {
			ln.base = coster.DecodeStep(kv0, batch).Time()
			if kv1 > kv0 {
				ln.slope = (coster.DecodeStep(kv1, batch).Time() - ln.base) / float64(kv1-kv0)
			}
			decodeCache[batch] = ln
		}
		return ln.base + ln.slope*(kvMean-float64(kv0))
	}

	budget, perRequest := s.kvBudget()
	batchCap := s.maxBatch()

	// Open-loop arrivals are pre-generated; closed-loop ones are issued on
	// completion.
	var arrivals []float64
	issued := 0
	if s.Arrival == Poisson {
		rng := rand.New(rand.NewSource(s.Seed))
		t := 0.0
		arrivals = make([]float64, s.Requests)
		for i := range arrivals {
			t += rng.ExpFloat64() / s.Rate
			arrivals[i] = t
		}
		issued = s.Requests
	}

	var (
		now        float64
		queue      []*request // FIFO, arrival order
		running    []*request // admission order
		nextArr    int        // next pre-generated arrival index
		done       []RequestMetrics
		iterations int
		batchSum   float64
		peakBatch  int
		peakKV     float64
	)
	done = make([]RequestMetrics, 0, s.Requests)

	// enqueue issues request id at time t.
	enqueue := func(id int, t float64) {
		queue = append(queue, &request{id: id, arrival: t})
	}
	// admitArrived moves every pre-generated arrival with time <= now into
	// the queue (iteration-level batching: requests landing mid-iteration
	// wait for the next boundary).
	admitArrived := func() {
		for nextArr < len(arrivals) && arrivals[nextArr] <= now {
			enqueue(nextArr, arrivals[nextArr])
			nextArr++
		}
	}

	if s.Arrival == ClosedLoop {
		clients := s.Clients
		if clients > s.Requests {
			clients = s.Requests
		}
		for i := 0; i < clients; i++ {
			enqueue(i, 0)
		}
		issued = clients
	}

	for len(done) < s.Requests {
		admitArrived()
		// Idle: jump to the next arrival.
		if len(running) == 0 && len(queue) == 0 {
			if nextArr >= len(arrivals) {
				return Result{}, fmt.Errorf("serve: simulation stalled with %d/%d requests done", len(done), s.Requests)
			}
			now = arrivals[nextArr]
			admitArrived()
		}

		// Admit waiting requests up to the batch cap and KV budget. Each
		// admission reserves the full prompt+generation context.
		kvUsed := perRequest * float64(len(running))
		newbies := 0
		for len(queue) > 0 && len(running) < batchCap && kvUsed+perRequest <= budget {
			r := queue[0]
			queue = queue[1:]
			r.admitted = now
			running = append(running, r)
			kvUsed += perRequest
			newbies++
		}
		if kvUsed > peakKV {
			peakKV = kvUsed
		}
		if len(running) > peakBatch {
			peakBatch = len(running)
		}

		// Price the iteration: one prefill pass over the newly admitted
		// sequences plus one decode step over the established ones. The
		// decode batch is priced at its mean KV length — exact under the
		// step cost's linearity in kvLen (TestDecodeStepLinearInKV).
		deciders := running[:len(running)-newbies]
		var iterTime float64
		if newbies > 0 {
			iterTime += prefill(newbies)
		}
		if len(deciders) > 0 {
			kvSum := 0
			for _, r := range deciders {
				// The step generating token produced+1 attends over the
				// prompt plus every generated token including the new one.
				kvSum += s.PromptTokens + r.produced + 1
			}
			iterTime += decode(float64(kvSum)/float64(len(deciders)), len(deciders))
		}
		iterations++
		batchSum += float64(len(running))
		now += iterTime

		// Advance sequences: prefill emits the first token, decode steps
		// one more each; completed requests leave and free their KV.
		kept := running[:0]
		for _, r := range running {
			r.produced++
			if r.produced == 1 {
				r.firstToken = now
			}
			if r.produced < s.GenTokens {
				kept = append(kept, r)
				continue
			}
			m := RequestMetrics{
				ID: r.id, Arrival: r.arrival, Admitted: r.admitted,
				FirstToken: r.firstToken, Done: now,
				Queue: r.admitted - r.arrival,
				TTFT:  r.firstToken - r.arrival,
				E2E:   now - r.arrival,
			}
			if s.GenTokens > 1 {
				m.TPOT = (now - r.firstToken) / float64(s.GenTokens-1)
			}
			done = append(done, m)
			if s.Arrival == ClosedLoop && issued < s.Requests {
				enqueue(issued, now)
				issued++
			}
		}
		running = kept
	}

	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	res := Result{
		Requests:    len(done),
		SimTime:     now,
		Iterations:  iterations,
		MeanBatch:   batchSum / float64(iterations),
		PeakBatch:   peakBatch,
		PeakKVBytes: peakKV,
		MaxBatch:    batchCap,
		KVCapacity:  budget,
		PerRequest:  done,
	}
	if now > 0 {
		res.ThroughputRPS = float64(len(done)) / now
		res.TokensPerSec = float64(len(done)*s.GenTokens) / now
	}
	res.TTFT = metricPercentiles(done, func(m RequestMetrics) float64 { return m.TTFT })
	res.TPOT = metricPercentiles(done, func(m RequestMetrics) float64 { return m.TPOT })
	res.E2E = metricPercentiles(done, func(m RequestMetrics) float64 { return m.E2E })
	res.Queue = metricPercentiles(done, func(m RequestMetrics) float64 { return m.Queue })
	return res, nil
}

// metricPercentiles extracts and summarizes one per-request metric.
func metricPercentiles(done []RequestMetrics, f func(RequestMetrics) float64) Percentiles {
	vals := make([]float64, len(done))
	for i, m := range done {
		vals[i] = f(m)
	}
	sort.Float64s(vals)
	return percentiles(vals)
}
