package serve

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestScheduleDegenerateMatchesPoisson is the temporal equivalence gate: a
// constant Schedule — single-segment or split into equal-rate pieces —
// must reproduce the plain constant-rate Poisson simulation
// byte-identically across the rate × cap × policy × seed grid. JSON byte
// comparison makes "byte-identical" literal.
func TestScheduleDegenerateMatchesPoisson(t *testing.T) {
	base := spec0(t)
	for _, rate := range []float64{0.25, 1, 2.5, 5} {
		for _, batchCap := range []int{0, 3, 16} {
			for _, seed := range []int64{1, 7} {
				for _, pol := range []struct {
					name   string
					mutate func(*Spec)
				}{
					{"reserve", func(s *Spec) {}},
					{"paged", func(s *Spec) { s.Policy = Paged }},
					{"paged-no-preempt", func(s *Spec) { s.Policy = Paged; s.NoPreempt = true }},
				} {
					plain := base
					plain.Rate, plain.MaxBatch, plain.Seed = rate, batchCap, seed
					pol.mutate(&plain)
					want, err := Run(plain)
					if err != nil {
						t.Fatal(err)
					}
					for _, sched := range []Schedule{
						{{Start: 0, End: 60, Rate: rate}},
						{{Start: 0, End: 30, Rate: rate}, {Start: 30, End: 90, Rate: rate}},
					} {
						scheduled := plain
						scheduled.Rate, scheduled.Schedule = 0, sched
						got, err := Run(scheduled)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s rate=%g cap=%d seed=%d: constant schedule %v diverges from plain Poisson",
								pol.name, rate, batchCap, seed, sched)
						}
						ja, _ := json.Marshal(got)
						jb, _ := json.Marshal(want)
						if string(ja) != string(jb) {
							t.Fatalf("%s rate=%g cap=%d seed=%d: JSON encodings differ", pol.name, rate, batchCap, seed)
						}
					}
				}
			}
		}
	}
}

// TestScheduleBurstReshapesArrivals: a genuinely piecewise schedule must
// change the simulated outcome (same seed, same total work) and still
// complete every request deterministically.
func TestScheduleBurstReshapesArrivals(t *testing.T) {
	flat := spec0(t)
	flat.Rate, flat.Requests = 1, 64

	burst := flat
	burst.Rate = 0
	burst.Schedule = Schedule{{Start: 0, End: 40, Rate: 0.25}, {Start: 40, End: 50, Rate: 20}}
	want, err := Run(burst)
	if err != nil {
		t.Fatal(err)
	}
	if want.Requests != burst.Requests {
		t.Fatalf("burst run completed %d of %d", want.Requests, burst.Requests)
	}
	flatRes, err := Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(want.PerRequest, flatRes.PerRequest) {
		t.Fatal("a burst schedule should reshape the arrival timeline")
	}
	// The burst concentrates queueing: its p95 queue delay must exceed the
	// gentle flat rate's.
	if want.Queue.P95 <= flatRes.Queue.P95 {
		t.Errorf("burst queueing p95 %v should exceed flat %v", want.Queue.P95, flatRes.Queue.P95)
	}
	again, err := Run(burst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, again) {
		t.Error("scheduled runs must be byte-identical across invocations")
	}
}

// TestOneTurnCohortMatchesMix: Turns of 0 and 1 are the same degenerate
// single-turn workload — byte-identical results across policies and seeds.
func TestOneTurnCohortMatchesMix(t *testing.T) {
	base := spec0(t)
	for _, seed := range []int64{1, 7} {
		for _, pol := range []struct {
			name   string
			mutate func(*Spec)
		}{
			{"reserve", func(s *Spec) {}},
			{"paged", func(s *Spec) { s.Policy = Paged }},
		} {
			zero := base
			zero.Seed = seed
			pol.mutate(&zero)
			want, err := Run(zero)
			if err != nil {
				t.Fatal(err)
			}
			one := zero
			one.Turns = 1
			got, err := Run(one)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s seed=%d: Turns=1 diverges from the flat mix", pol.name, seed)
			}
			ja, _ := json.Marshal(got)
			jb, _ := json.Marshal(want)
			if string(ja) != string(jb) {
				t.Fatalf("%s seed=%d: JSON encodings differ", pol.name, seed)
			}
		}
	}
}

// TestSessionCohortsExercisePrefixCache: a multi-turn cohort must complete
// every request, echo coherent per-request shapes, and lift the paged
// prefix cache — turn 3 of each session finds turn 2's context resident
// and grows it in place.
func TestSessionCohortsExercisePrefixCache(t *testing.T) {
	s := spec0(t)
	s.Policy = Paged
	s.Rate, s.Requests, s.Turns, s.Think = 2, 48, 3, 5
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != s.Requests {
		t.Fatalf("completed %d of %d cohort requests", res.Requests, s.Requests)
	}
	if res.PrefixHits == 0 {
		t.Error("three-turn sessions must hit the prefix cache (turn 3 covers turn 2's context)")
	}
	if res.PrefixSavedTokens == 0 {
		t.Error("prefix hits must save prefill tokens")
	}
	prevArrival := math.Inf(-1)
	for i, m := range res.PerRequest {
		if m.Arrival < prevArrival {
			t.Fatalf("request %d arrivals out of order", i)
		}
		prevArrival = m.Arrival
	}
	again, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(res)
	jb, _ := json.Marshal(again)
	if string(ja) != string(jb) {
		t.Error("cohort runs must be byte-identical across invocations")
	}
}

// TestHeavyTailMixServes: a sigma-carrying mix draws varied lengths within
// the declared clamp bounds, completes every request, and leaves a
// zero-sigma sibling untouched.
func TestHeavyTailMixServes(t *testing.T) {
	s := spec0(t)
	s.PromptTokens, s.GenTokens = 0, 0
	s.Mix = []TenantLoad{{
		Tenant: "chat", Share: 1,
		PromptTokens: 200, GenTokens: 100, PromptSigma: 1.2, GenSigma: 0.8,
	}}
	s.Rate, s.Requests = 1, 48
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != s.Requests {
		t.Fatalf("completed %d of %d heavy-tailed requests", res.Requests, s.Requests)
	}
	pmin, pmax := s.Mix[0].PromptBounds()
	gmin, gmax := s.Mix[0].GenBounds()
	varied := false
	for i, m := range res.PerRequest {
		if m.PromptTokens < pmin || m.PromptTokens > pmax || m.GenTokens < gmin || m.GenTokens > gmax {
			t.Fatalf("request %d shape %d+%d outside clamp bounds [%d,%d]+[%d,%d]",
				i, m.PromptTokens, m.GenTokens, pmin, pmax, gmin, gmax)
		}
		if m.PromptTokens != 200 || m.GenTokens != 100 {
			varied = true
		}
	}
	if !varied {
		t.Error("sigma draws should vary at least one request's lengths")
	}
}

// TestSpecTemporalValidation covers the Schedule/Turns/Think spec checks.
func TestSpecTemporalValidation(t *testing.T) {
	check := func(name string, wantErr bool, mutate func(*Spec)) {
		t.Helper()
		s := spec0(t)
		mutate(&s)
		err := s.Validate()
		if wantErr && err == nil {
			t.Errorf("%s should fail validation", name)
		}
		if !wantErr && err != nil {
			t.Errorf("%s should validate: %v", name, err)
		}
	}
	sched := Schedule{{Start: 0, End: 60, Rate: 2}}
	check("schedule", false, func(s *Spec) { s.Rate, s.Schedule = 0, sched })
	check("schedule with a rate", true, func(s *Spec) { s.Schedule = sched })
	check("invalid schedule", true, func(s *Spec) { s.Rate, s.Schedule = 0, Schedule{{Start: 5, End: 60, Rate: 2}} })
	check("closed-loop schedule", true, func(s *Spec) {
		s.Arrival, s.Rate, s.Clients, s.Schedule = ClosedLoop, 0, 4, sched
	})
	check("closed-loop turns", true, func(s *Spec) {
		s.Arrival, s.Rate, s.Clients, s.Turns, s.Policy = ClosedLoop, 0, 4, 2, Paged
	})
	check("negative turns", true, func(s *Spec) { s.Turns = -1 })
	check("paged cohort", false, func(s *Spec) { s.Policy, s.Turns = Paged, 3 })
	check("cohort under reservation", true, func(s *Spec) { s.Turns = 2 })
	check("cohort without preemption", true, func(s *Spec) { s.Policy, s.NoPreempt, s.Turns = Paged, true, 2 })
	check("cohort over a prefix mix", true, func(s *Spec) {
		s.Policy, s.Turns = Paged, 2
		s.PromptTokens, s.GenTokens = 0, 0
		s.Mix = []TenantLoad{{Tenant: "a", Share: 1, PromptTokens: 100, GenTokens: 50, PrefixID: "a", PrefixTokens: 40}}
	})
	check("think without turns", true, func(s *Spec) { s.Think = 2 })
	check("think with one turn", true, func(s *Spec) { s.Turns, s.Think = 1, 2 })
	check("NaN think", true, func(s *Spec) { s.Policy, s.Turns, s.Think = Paged, 2, math.NaN() })
	check("negative think", true, func(s *Spec) { s.Policy, s.Turns, s.Think = Paged, 2, -1 })
	goodTrace := []TraceEvent{{Arrival: 0, Request: Request{Tenant: "a", PromptTokens: 100, GenTokens: 10}}}
	clearAll := func(s *Spec) {
		s.PromptTokens, s.GenTokens, s.Rate, s.Clients, s.Requests, s.Seed = 0, 0, 0, 0, 0, 0
	}
	check("trace with a schedule", true, func(s *Spec) { clearAll(s); s.Trace = goodTrace; s.Schedule = sched })
	check("trace with turns", true, func(s *Spec) { clearAll(s); s.Trace = goodTrace; s.Turns = 2 })
	check("trace with think", true, func(s *Spec) { clearAll(s); s.Trace = goodTrace; s.Think = 1 })
}
