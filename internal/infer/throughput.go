package infer

import (
	"fmt"
	"sort"

	"optimus/internal/memfoot"
)

// ThroughputPoint is one batch size's latency/throughput trade-off
// (paper §6.1: "Larger batch sizes, thus, improve inference throughput but
// at the cost of latency. However, the growth of latency with B is rather
// modest").
type ThroughputPoint struct {
	// Batch is the concurrent sequence count.
	Batch int
	// Latency is the end-to-end request latency.
	Latency float64
	// TokensPerSec is the aggregate generation throughput
	// (batch × generated tokens / latency).
	TokensPerSec float64
	// PerTokenMs is the decode step latency in milliseconds.
	PerTokenMs float64
	// Fits reports whether weights+KV fit device memory at this batch.
	Fits bool
}

// ThroughputSweep evaluates the latency/throughput frontier over the given
// batch sizes (defaults to powers of two up to 64). All batches share one
// step-cost engine: per batch, one prefill pass plus the trapezoid sum of
// the decode steps — the same composition Predict uses.
func ThroughputSweep(base Spec, batches []int) ([]ThroughputPoint, error) {
	coster, err := NewStepCoster(base)
	if err != nil {
		return nil, err
	}
	if base.GenTokens <= 0 {
		return nil, fmt.Errorf("infer: throughput sweep needs generated tokens")
	}
	if len(batches) == 0 {
		batches = []int{1, 2, 4, 8, 16, 32, 64}
	}
	sorted := append([]int(nil), batches...)
	sort.Ints(sorted)

	capacity := base.System.Device.DRAMCapacity()
	out := make([]ThroughputPoint, 0, len(sorted))
	for _, b := range sorted {
		if b <= 0 {
			return nil, fmt.Errorf("infer: non-positive batch %d in sweep", b)
		}
		c := *coster
		c.spec.Batch = b
		pre := c.Prefill(b)
		dec := c.decodePhase()
		decode := dec.Device + dec.Comm
		total := (pre.Device + pre.Comm) + decode
		n := float64(base.GenTokens)
		fp := memfoot.Inference(base.Model, base.TP, b, base.PromptTokens+base.GenTokens, base.Precision.Bytes())
		out = append(out, ThroughputPoint{
			Batch:        b,
			Latency:      total,
			TokensPerSec: float64(b*base.GenTokens) / total,
			PerTokenMs:   decode / n * 1e3,
			Fits:         fp.Total() <= capacity,
		})
	}
	return out, nil
}
