package infer

import (
	"fmt"

	"optimus/internal/kernels"
	"optimus/internal/roofline"
)

// StepCost decomposes one inference pass — a prefill over the prompt or a
// single autoregressive decode step — into the per-phase terms of the
// paper's Fig. 9: device-side kernel time (compute for prefill,
// memory-bound streaming for decode, §6.1) and tensor-parallel collective
// time (Eq. 4), plus the traffic totals the energy model consumes. Keeping
// the collective term separate per step, rather than amortized over the
// whole request, follows the communication characterization of
// arXiv:2507.14392 and is what lets a serving simulator price iterations
// whose batch composition changes step to step.
type StepCost struct {
	// Device is the on-device kernel time: GEMMs, element-wise kernels and
	// fused attention, summed over the full network pass.
	Device float64
	// Comm is the TP collective time of the pass.
	Comm float64
	// DRAMBytes is the off-chip traffic per device.
	DRAMBytes float64
	// WireBytes is the per-device network traffic.
	WireBytes float64
}

// Time is the wall-clock cost of the pass: device plus collective time.
func (c StepCost) Time() float64 { return c.Device + c.Comm }

// fromPhase converts the internal pass aggregate.
func fromPhase(p phaseCost) StepCost {
	return StepCost{Device: p.device, Comm: p.comm, DRAMBytes: p.dramBytes, WireBytes: p.wireBytes}
}

// StepCoster prices prefill passes and decode steps for one model/system/
// precision configuration, reusing one roofline engine across calls — the
// step-cost engine Predict, ThroughputSweep and the serving simulator all
// compose over. The batch arguments override Spec.Batch, so one coster
// serves every batch composition a continuous-batching iteration can take.
//
// A StepCoster reuses an internal op scratch buffer across calls, so it is
// NOT safe for concurrent use; give each goroutine its own coster.
type StepCoster struct {
	spec Spec
	eng  *roofline.Engine
	// ops is the reusable kernel-enumeration buffer threaded through
	// passCost so steady-state pricing never allocates.
	ops []kernels.Op
}

// NewStepCoster validates the configuration and builds a coster for it.
func NewStepCoster(s Spec) (*StepCoster, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &StepCoster{spec: s, eng: roofline.New(s.System.Device)}, nil
}

// Prefill prices one summarization pass over Spec.PromptTokens prompt
// tokens for a batch of sequences (batch <= 0 means Spec.Batch).
func (c *StepCoster) Prefill(batch int) StepCost {
	if batch <= 0 {
		batch = c.spec.Batch
	}
	return fromPhase(passCost(c.spec, c.eng, kernels.Exec{
		Batch:     batch,
		Seq:       c.spec.PromptTokens,
		Context:   c.spec.PromptTokens,
		TP:        c.spec.TP,
		Flash:     c.spec.Flash,
		Precision: c.spec.Precision,
		Phase:     kernels.Prefill,
	}, &c.ops))
}

// DecodeStep prices one autoregressive generation step for a batch of
// sequences whose attention span — prompt plus tokens generated so far,
// including the one this step produces — is kvLen (batch <= 0 means
// Spec.Batch). The cost grows linearly with kvLen through the KV-cache
// read, so callers may integrate, interpolate, or average over kvLen
// exactly.
func (c *StepCoster) DecodeStep(kvLen, batch int) StepCost {
	if batch <= 0 {
		batch = c.spec.Batch
	}
	return fromPhase(passCost(c.spec, c.eng, kernels.Exec{
		Batch:     batch,
		Seq:       1,
		Context:   kvLen,
		TP:        c.spec.TP,
		Flash:     c.spec.Flash,
		Precision: c.spec.Precision,
		Phase:     kernels.Decode,
	}, &c.ops))
}

// PrefillCost prices the summarization pass of one request batch: the
// compute/memory/comm decomposition of processing Spec.PromptTokens prompt
// tokens at Spec.Batch concurrent sequences.
func PrefillCost(s Spec) (StepCost, error) {
	c, err := NewStepCoster(s)
	if err != nil {
		return StepCost{}, err
	}
	return c.Prefill(s.Batch), nil
}

// DecodeStepCost prices one autoregressive decode step at KV length kvLen
// for a batch of concurrent sequences. Summing it over
// kvLen = PromptTokens+1 .. PromptTokens+GenTokens reproduces Predict's
// decode time (the step cost is linear in kvLen, so the trapezoid closed
// form Predict uses equals the explicit sum).
func DecodeStepCost(s Spec, kvLen, batch int) (StepCost, error) {
	c, err := NewStepCoster(s)
	if err != nil {
		return StepCost{}, err
	}
	if kvLen <= 0 {
		return StepCost{}, fmt.Errorf("infer: non-positive KV length %d", kvLen)
	}
	if batch <= 0 {
		return StepCost{}, fmt.Errorf("infer: non-positive decode batch %d", batch)
	}
	return c.DecodeStep(kvLen, batch), nil
}

// decodePhase integrates GenTokens decode steps with the trapezoid rule:
// the per-step cost is linear in the KV length, so sampling the first and
// last steps reproduces the exact sum.
func (c *StepCoster) decodePhase() StepCost {
	s := c.spec
	if s.GenTokens <= 0 {
		return StepCost{}
	}
	first := c.DecodeStep(s.PromptTokens+1, s.Batch)
	last := c.DecodeStep(s.PromptTokens+s.GenTokens, s.Batch)
	n := float64(s.GenTokens)
	return StepCost{
		Device:    (first.Device + last.Device) / 2 * n,
		Comm:      (first.Comm + last.Comm) / 2 * n,
		DRAMBytes: (first.DRAMBytes + last.DRAMBytes) / 2 * n,
		WireBytes: (first.WireBytes + last.WireBytes) / 2 * n,
	}
}
