package infer

import (
	"testing"
	"testing/quick"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/tech"
)

// Property: latency is monotone in both prompt and generation length.
func TestLatencyMonotoneInTokensProperty(t *testing.T) {
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec0(sys)
	f := func(p8, g8 uint8) bool {
		prompt := int(p8)%512 + 16
		gen := int(g8) % 256
		a := cfg
		a.PromptTokens, a.GenTokens = prompt, gen
		ra, err := Predict(a)
		if err != nil {
			return false
		}
		b := a
		b.PromptTokens += 64
		rb, err := Predict(b)
		if err != nil {
			return false
		}
		c := a
		c.GenTokens += 64
		rc, err := Predict(c)
		if err != nil {
			return false
		}
		return rb.Total >= ra.Total && rc.Total >= ra.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the prediction is always finite, positive, and decomposes.
func TestPredictionWellFormedProperty(t *testing.T) {
	sys, err := arch.SystemOf(arch.H100(), 2, 8, tech.NVLink4, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	base := spec0(sys)
	base.TP = 2
	f := func(b4 uint8, flash bool) bool {
		s := base
		s.Batch = int(b4)%8 + 1
		s.Flash = flash
		r, err := Predict(s)
		if err != nil {
			return false
		}
		return r.Total > 0 &&
			r.Total >= r.Prefill &&
			r.Total >= r.Decode &&
			r.DRAMBytes > 0 &&
			r.CommTime >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: flash attention never slows inference.
func TestFlashNeverSlowerProperty(t *testing.T) {
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	base := spec0(sys)
	f := func(p8 uint8) bool {
		s := base
		s.PromptTokens = int(p8)%1024 + 64
		std, err := Predict(s)
		if err != nil {
			return false
		}
		s.Flash = true
		fl, err := Predict(s)
		if err != nil {
			return false
		}
		return fl.Total <= std.Total*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func spec0(sys *arch.System) Spec {
	return Spec{
		Model:  model.Llama2_13B(),
		System: sys, TP: sys.NumDevices(), Batch: 1,
		PromptTokens: 200, GenTokens: 100, Precision: tech.FP16,
	}
}
