package infer

import (
	"math"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/model"
	"optimus/internal/tech"
	"optimus/internal/valdata"
)

// table2Grid enumerates the full Table 2 validation grid (models × GPU
// counts × A100/H100 platforms) as specs.
func table2Grid(t *testing.T) map[string]Spec {
	t.Helper()
	out := make(map[string]Spec)
	for _, c := range valdata.Table2() {
		for _, plat := range []struct {
			name string
			dev  arch.Device
			nv   tech.NetworkTech
		}{
			{"a100", arch.A100(), tech.NVLink3},
			{"h100", arch.H100(), tech.NVLink4},
		} {
			sys, err := arch.SystemOf(plat.dev, c.GPUs, 8, plat.nv, tech.IBNDR)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := model.ByName(c.Model)
			if err != nil {
				t.Fatal(err)
			}
			out[c.Model+"/"+plat.name+"/"+string(rune('0'+c.GPUs))] = Spec{
				Model: cfg, System: sys, TP: c.GPUs, Batch: 1,
				PromptTokens: 200, GenTokens: 200, Precision: tech.FP16,
			}
		}
	}
	return out
}

// goldenTable2 pins the pre-refactor Predict outputs bit for bit (captured
// from the monolithic predictor before it was split over the step-cost
// engine). The refactor must reproduce them exactly.
var goldenTable2 = []struct {
	model              string
	gpus               int
	platform           string
	total, pre, decode uint64 // math.Float64bits of the prediction
}{
	{"Llama2-70B", 8, "a100", 0x401460cc3197732b, 0x3fa326d990942e58, 0x40143a7e7e764ace},
	{"Llama2-70B", 8, "h100", 0x400c7f9b9bcd39cc, 0x3f95a7f2ed38d2e2, 0x400c544bb5f2c826},
	{"Llama2-70B", 4, "a100", 0x401b8c0605cfc3ea, 0x3faad0cc64ec6748, 0x401b56646d05eb1b},
	{"Llama2-70B", 4, "h100", 0x4011a9c6748002f9, 0x3f992a2d4596f22a, 0x4011909c473a6c07},
	{"Llama2-70B", 2, "a100", 0x4026c00c9531d090, 0x3fb63925f6962264, 0x4026939a4944a44b},
	{"Llama2-70B", 2, "h100", 0x401b56c46b6cfae3, 0x3fa1e7962def1dec, 0x401b32f53f111ca7},
	{"Llama2-13B", 8, "a100", 0x3ffbf69965f041fb, 0x3f87f123b4ca0cb4, 0x3ffbc6b71e86ade2},
	{"Llama2-13B", 8, "h100", 0x3ff52165cccfc122, 0x3f7fbbbe7281b1a4, 0x3ff501aa0e5d3f70},
	{"Llama2-13B", 4, "a100", 0x3ffd887d628b7109, 0x3f8b399cd1683ef6, 0x3ffd520a28e8a08b},
	{"Llama2-13B", 4, "h100", 0x3ff49b066f9daf87, 0x3f7e71aeebf87732, 0x3ff47c94c0b1b710},
	{"Llama2-13B", 2, "a100", 0x4003f3c23d43271d, 0x3f9332eb0463a81f, 0x4003cd5c673a5fcd},
	{"Llama2-13B", 2, "h100", 0x3ff9406108ade3ce, 0x3f818f5254fe0c4b, 0x3ff91d426403e7b5},
	{"Llama2-13B", 1, "a100", 0x40108c4b07686464, 0x3fa011939f04a1a0, 0x40106c27e02a5b21},
	{"Llama2-13B", 1, "h100", 0x40038eb623690ca8, 0x3f892591f98b1a8a, 0x40037590916f818d},
	{"Llama2-7B", 8, "a100", 0x3ff42e1ae9effd4d, 0x3f807b5e442c99c9, 0x3ff40d242d67a419},
	{"Llama2-7B", 8, "h100", 0x3fef493d6925e0be, 0x3f77186a9b2dbe37, 0x3fef1b0c93ef8542},
	{"Llama2-7B", 4, "a100", 0x3ff34019df235912, 0x3f810dd8f1509406, 0x3ff31dfe2d40b7ea},
	{"Llama2-7B", 4, "h100", 0x3febedcdc343ad4b, 0x3f74a4e9578724f1, 0x3febc483f0949f01},
	{"Llama2-7B", 2, "a100", 0x3ff72d17155a764c, 0x3f85e23a4a1aac50, 0x3ff70152a0c640f3},
	{"Llama2-7B", 2, "h100", 0x3fee53e3c9d30592, 0x3f758b910c4b9dcf, 0x3fee28cca7ba6e56},
	{"Llama2-7B", 1, "a100", 0x4001bb5fbbc028c1, 0x3f912f1a7fa97656, 0x4001990186c0d5d4},
	{"Llama2-7B", 1, "h100", 0x3ff5384cc1e24bcf, 0x3f7c0156b37d3db7, 0x3ff51c4b6b2ece91},
}

// TestPredictMatchesPreRefactorGolden proves the step-cost refactor
// changed nothing: Predict reproduces the pre-refactor Table 2 predictions
// bit for bit.
func TestPredictMatchesPreRefactorGolden(t *testing.T) {
	for _, g := range goldenTable2 {
		dev, nv := arch.A100(), tech.NVLink3
		if g.platform == "h100" {
			dev, nv = arch.H100(), tech.NVLink4
		}
		sys, err := arch.SystemOf(dev, g.gpus, 8, nv, tech.IBNDR)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := model.ByName(g.model)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Predict(Spec{
			Model: cfg, System: sys, TP: g.gpus, Batch: 1,
			PromptTokens: 200, GenTokens: 200, Precision: tech.FP16,
		})
		if err != nil {
			t.Fatalf("%s %d %s: %v", g.model, g.gpus, g.platform, err)
		}
		for _, f := range []struct {
			name string
			got  float64
			want uint64
		}{
			{"total", res.Total, g.total},
			{"prefill", res.Prefill, g.pre},
			{"decode", res.Decode, g.decode},
		} {
			if math.Float64bits(f.got) != f.want {
				t.Errorf("%s %d GPUs %s %s = %v (bits %016x), want bits %016x",
					g.model, g.gpus, g.platform, f.name, f.got,
					math.Float64bits(f.got), f.want)
			}
		}
	}
}

// TestStepSumMatchesPredict: PrefillCost + Σ DecodeStepCost over
// kvLen = P+1 .. P+G must match Predict's total to within 1e-9 relative
// across the whole Table 2 grid — the golden-equivalence guarantee that
// per-step pricing and the closed form are the same model.
func TestStepSumMatchesPredict(t *testing.T) {
	for name, s := range table2Grid(t) {
		res, err := Predict(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		coster, err := NewStepCoster(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := coster.Prefill(s.Batch).Time()
		var decodeSum float64
		for kv := s.PromptTokens + 1; kv <= s.PromptTokens+s.GenTokens; kv++ {
			decodeSum += coster.DecodeStep(kv, s.Batch).Time()
		}
		sum += decodeSum
		if rel := math.Abs(sum-res.Total) / res.Total; rel > 1e-9 {
			t.Errorf("%s: step sum %v vs Predict total %v (rel err %g > 1e-9)",
				name, sum, res.Total, rel)
		}
		if rel := math.Abs(decodeSum-res.Decode) / res.Decode; rel > 1e-9 {
			t.Errorf("%s: decode step sum %v vs Predict decode %v (rel err %g > 1e-9)",
				name, decodeSum, res.Decode, rel)
		}
	}
}

// TestDecodeStepLinearInKV: the decode step cost must be linear in the KV
// length over the serving range — the property both the trapezoid closed
// form and the simulator's mean-KV batch pricing rely on.
func TestDecodeStepLinearInKV(t *testing.T) {
	sys, err := arch.SystemOf(arch.A100(), 2, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		t.Fatal(err)
	}
	s := Spec{Model: cfg, System: sys, TP: 2, Batch: 4,
		PromptTokens: 200, GenTokens: 200, Precision: tech.FP16}
	coster, err := NewStepCoster(s)
	if err != nil {
		t.Fatal(err)
	}
	lo := coster.DecodeStep(201, 4).Time()
	mid := coster.DecodeStep(300, 4).Time()
	hi := coster.DecodeStep(399, 4).Time()
	if rel := math.Abs(mid-(lo+hi)/2) / mid; rel > 1e-9 {
		t.Errorf("decode step not linear in kvLen: mid %v vs interpolated %v (rel %g)",
			mid, (lo+hi)/2, rel)
	}
}

// TestStepCostAPIValidates: the package-level step-cost entry points must
// reject the same malformed specs Predict rejects, plus bad step shapes.
func TestStepCostAPIValidates(t *testing.T) {
	sys, err := arch.SystemOf(arch.A100(), 1, 8, tech.NVLink3, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		t.Fatal(err)
	}
	good := Spec{Model: cfg, System: sys, TP: 1, Batch: 1,
		PromptTokens: 200, GenTokens: 200, Precision: tech.FP16}

	if _, err := PrefillCost(good); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := good
	bad.TP = 3
	if _, err := PrefillCost(bad); err == nil {
		t.Error("TP/system mismatch should error")
	}
	if _, err := DecodeStepCost(good, 0, 1); err == nil {
		t.Error("zero KV length should error")
	}
	if _, err := DecodeStepCost(good, 201, 0); err == nil {
		t.Error("zero batch should error")
	}
	c, err := DecodeStepCost(good, 201, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Time() <= 0 || c.Time() != c.Device+c.Comm || c.DRAMBytes <= 0 {
		t.Errorf("malformed step cost: %+v", c)
	}
}
