package infer

import (
	"testing"

	"optimus/internal/arch"
	"optimus/internal/tech"
)

func TestThroughputSweepPaperClaim(t *testing.T) {
	// §6.1: larger batches improve throughput at a modest latency cost —
	// decode is weight-streaming-bound, so the weight read amortizes
	// across the batch.
	sys := sysFor(t, arch.A100(), 1, tech.NVLink3)
	base := table2Spec(t, "Llama2-13B", sys, 1)
	pts, err := ThroughputSweep(base, []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("want 5 points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TokensPerSec <= pts[i-1].TokensPerSec {
			t.Errorf("throughput should grow with batch: B=%d %.0f vs B=%d %.0f tok/s",
				pts[i].Batch, pts[i].TokensPerSec, pts[i-1].Batch, pts[i-1].TokensPerSec)
		}
		if pts[i].Latency < pts[i-1].Latency {
			t.Errorf("latency should not shrink with batch")
		}
	}
	// "The growth of latency with B is rather modest": 16x batch costs
	// far less than 16x latency.
	growth := pts[4].Latency / pts[0].Latency
	if growth > 4 {
		t.Errorf("B=16 latency growth %.1fx should be modest (≪ 16x)", growth)
	}
	if gain := pts[4].TokensPerSec / pts[0].TokensPerSec; gain < 4 {
		t.Errorf("B=16 throughput gain %.1fx too small", gain)
	}
}

func TestThroughputSweepFitsFlag(t *testing.T) {
	// Llama2-70B on 2 A100s: weights take 70 GB of the 160 GB; huge
	// batches overflow on KV cache.
	sys := sysFor(t, arch.A100(), 2, tech.NVLink3)
	base := table2Spec(t, "Llama2-70B", sys, 2)
	base.GenTokens = 2000
	base.PromptTokens = 2000
	pts, err := ThroughputSweep(base, []int{1, 256})
	if err != nil {
		t.Fatal(err)
	}
	if !pts[0].Fits {
		t.Error("B=1 should fit")
	}
	if pts[1].Fits {
		t.Error("B=256 with 4k context should overflow")
	}
}

func TestThroughputSweepErrors(t *testing.T) {
	sys := sysFor(t, arch.A100(), 1, tech.NVLink3)
	base := table2Spec(t, "Llama2-13B", sys, 1)
	base.GenTokens = 0
	if _, err := ThroughputSweep(base, nil); err == nil {
		t.Error("zero generation should error")
	}
	base = table2Spec(t, "Llama2-13B", sys, 1)
	if _, err := ThroughputSweep(base, []int{0}); err == nil {
		t.Error("zero batch should error")
	}
	bad := base
	bad.TP = 9
	if _, err := ThroughputSweep(bad, nil); err == nil {
		t.Error("invalid base spec should error")
	}
}

func TestThroughputSweepDefaultsAndOrder(t *testing.T) {
	sys := sysFor(t, arch.A100(), 1, tech.NVLink3)
	base := table2Spec(t, "Llama2-7B", sys, 1)
	pts, err := ThroughputSweep(base, []int{8, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Results come back sorted by batch regardless of input order.
	if pts[0].Batch != 1 || pts[1].Batch != 4 || pts[2].Batch != 8 {
		t.Errorf("points not sorted: %+v", pts)
	}
	def, err := ThroughputSweep(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 7 {
		t.Errorf("default sweep has %d points, want 7", len(def))
	}
}
