// Package infer predicts end-to-end LLM inference latency (paper §4.3, §6):
// a compute-oriented prefill (summarization) pass over the prompt followed
// by autoregressive decode steps that stream the weights and the growing
// KV-cache from device memory, with tensor-parallel collectives resolved by
// the latency-optimal double-binary-tree model (Eq. 4) that the paper uses
// to scale inference to 8 GPUs.
package infer

import (
	"fmt"

	"optimus/internal/arch"
	"optimus/internal/comm"
	"optimus/internal/kernels"
	"optimus/internal/memfoot"
	"optimus/internal/model"
	"optimus/internal/roofline"
	"optimus/internal/tech"
)

// Spec fixes one inference experiment.
type Spec struct {
	Model  model.Config
	System *arch.System
	// TP is the tensor-parallel degree (= device count in all the paper's
	// inference studies; inference "involves only TP across a few devices
	// within a node", §1.3).
	TP int
	// Batch is the number of concurrent sequences.
	Batch int
	// PromptTokens is the summarization length (200 in Table 2).
	PromptTokens int
	// GenTokens is the number of generated tokens (200 in Table 2).
	GenTokens int
	// Precision is the compute/storage precision (FP16 in the paper).
	Precision tech.Precision
	// Algorithm selects the all-reduce model; the zero value (tree) is the
	// paper's choice for inference.
	Algorithm comm.Algorithm
	// Flash enables IO-aware fused attention for both phases (§1.1).
	Flash bool
}

// Validate checks the experiment.
func (s Spec) Validate() error {
	if s.System == nil {
		return fmt.Errorf("infer: no system")
	}
	if err := s.System.Validate(); err != nil {
		return err
	}
	if err := s.Model.Validate(); err != nil {
		return err
	}
	switch {
	case s.TP <= 0 || s.TP != s.System.NumDevices():
		return fmt.Errorf("infer: TP %d must equal system devices %d", s.TP, s.System.NumDevices())
	case s.Batch <= 0:
		return fmt.Errorf("infer: non-positive batch %d", s.Batch)
	case s.PromptTokens <= 0:
		return fmt.Errorf("infer: non-positive prompt length %d", s.PromptTokens)
	case s.GenTokens < 0:
		return fmt.Errorf("infer: negative generation length %d", s.GenTokens)
	}
	return nil
}

// Result is the latency prediction with the Fig. 9 decomposition.
type Result struct {
	// Total is the end-to-end latency in seconds.
	Total float64
	// Prefill is the summarization-phase latency.
	Prefill float64
	// Decode is the generation-phase latency.
	Decode float64
	// PerToken is the mean decode-step latency.
	PerToken float64

	// MemoryTime is the device-side kernel time of the decode phase (all
	// decode kernels are memory-bound — §6.1); Fig. 9's "Memory" bar.
	MemoryTime float64
	// CommTime is the collective time across both phases; Fig. 9's
	// "Communication" bar.
	CommTime float64
	// PrefillCompute is the device-side kernel time of the prefill phase.
	PrefillCompute float64

	// Footprint is the per-device weights + KV-cache requirement.
	Footprint memfoot.InferenceBreakdown
	// Fits reports whether the footprint fits the device DRAM.
	Fits bool

	// DRAMBytes is the off-chip traffic per device for the whole request
	// and WireBytes the per-device network traffic — inputs to the energy
	// model (internal/energy).
	DRAMBytes float64
	WireBytes float64
}

// phaseCost aggregates one pass over the network.
type phaseCost struct {
	device float64
	comm   float64
	// traffic accounting for the energy model
	dramBytes float64
	wireBytes float64
}

// passCost evaluates the full model (embedding + layers + head) for one
// Exec, resolving collectives over the TP fabric with the chosen algorithm.
// The op enumeration runs through scratch (nil means a throwaway local), so
// a StepCoster pricing thousands of simulator steps reuses one buffer, and
// the kernel times come from the roofline's allocation-free Cost fast
// paths, which are pinned bit-identical to the Estimate* breakdowns.
func passCost(s Spec, eng *roofline.Engine, exec kernels.Exec, scratch *[]kernels.Op) phaseCost {
	link := s.System.LinkBetween(s.TP)
	nf := float64(s.TP)
	cost := func(c *phaseCost, ops []kernels.Op) {
		for i := range ops {
			op := &ops[i]
			switch op.Kind {
			case kernels.KindGEMM:
				t, b := eng.GEMMCost(op.GEMM)
				c.device += t
				c.dramBytes += b
			case kernels.KindElementwise:
				t, b := eng.ElementwiseCost(op.EW)
				c.device += t
				c.dramBytes += b
			case kernels.KindFused:
				t, b := eng.FusedCost(op.Fused)
				c.device += t
				c.dramBytes += b
			case kernels.KindAllReduce:
				c.comm += comm.AllReduceTime(s.Algorithm, op.CommBytes, s.TP, link)
				if s.TP > 1 {
					c.wireBytes += 2 * op.CommBytes * (nf - 1) / nf
				}
			case kernels.KindAllGather:
				c.comm += comm.AllGatherTime(op.CommBytes, s.TP, link)
				if s.TP > 1 {
					c.wireBytes += op.CommBytes * (nf - 1) / nf
				}
			case kernels.KindReduceScatter:
				c.comm += comm.ReduceScatterTime(op.CommBytes, s.TP, link)
				if s.TP > 1 {
					c.wireBytes += op.CommBytes * (nf - 1) / nf
				}
			}
		}
	}
	var local []kernels.Op
	if scratch == nil {
		scratch = &local
	}
	var c phaseCost
	ops := kernels.AppendEmbeddingForward((*scratch)[:0], s.Model, exec)
	cost(&c, ops)
	ops = kernels.AppendLayerForward(ops[:0], s.Model, exec)
	var layerCost phaseCost
	cost(&layerCost, ops)
	c.device += layerCost.device * float64(s.Model.Layers)
	c.comm += layerCost.comm * float64(s.Model.Layers)
	c.dramBytes += layerCost.dramBytes * float64(s.Model.Layers)
	c.wireBytes += layerCost.wireBytes * float64(s.Model.Layers)
	ops = kernels.AppendLogitsForward(ops[:0], s.Model, exec)
	cost(&c, ops)
	*scratch = ops
	return c
}

// Predict estimates the end-to-end latency of one inference request batch.
// It is a thin composition over the step-cost engine: one PrefillCost pass
// plus the trapezoid-integrated sum of GenTokens DecodeStepCost steps
// (exact, since the per-step cost is linear in the KV length).
func Predict(s Spec) (Result, error) {
	coster, err := NewStepCoster(s)
	if err != nil {
		return Result{}, err
	}
	pre := coster.Prefill(s.Batch)
	dec := coster.decodePhase()

	fp := memfoot.Inference(s.Model, s.TP, s.Batch, s.PromptTokens+s.GenTokens, s.Precision.Bytes())

	res := Result{
		Prefill:        pre.Device + pre.Comm,
		Decode:         dec.Device + dec.Comm,
		MemoryTime:     dec.Device,
		CommTime:       pre.Comm + dec.Comm,
		PrefillCompute: pre.Device,
		Footprint:      fp,
		Fits:           fp.Total() <= s.System.Device.DRAMCapacity(),
		DRAMBytes:      pre.DRAMBytes + dec.DRAMBytes,
		WireBytes:      pre.WireBytes + dec.WireBytes,
	}
	res.Total = res.Prefill + res.Decode
	if s.GenTokens > 0 {
		res.PerToken = res.Decode / float64(s.GenTokens)
	}
	return res, nil
}

// GEMMReport is one row of the paper's Table 4: a named matrix-multiply of
// the summarization phase with its predicted time and bound type.
type GEMMReport struct {
	Function string
	// Time is the predicted kernel time.
	Time float64
	// Bound is the roofline classification ("compute" / "memory" /
	// "launch").
	Bound string
	// BoundLevel names the limiting memory level when memory-bound.
	BoundLevel string
	// FLOPs and Bytes describe the kernel.
	FLOPs float64
	Bytes float64
}

// PrefillGEMMTable analyzes the matrix multiplies of one transformer layer
// in the summarization phase, reproducing Table 4: the merged-head QKV
// projection, one single-head score and context GEMM, the output
// projection, and the two MLP GEMMs.
func PrefillGEMMTable(s Spec) ([]GEMMReport, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	eng := roofline.New(s.System.Device)
	cfg := s.Model
	rows := s.Batch * s.PromptTokens
	hd := cfg.HeadDim()
	kv := cfg.KVDim()

	mk := func(name string, g roofline.GEMM) GEMMReport {
		est := eng.EstimateGEMM(g)
		return GEMMReport{
			Function:   name,
			Time:       est.Time,
			Bound:      est.Bound.String(),
			BoundLevel: est.BoundLevel,
			FLOPs:      est.FLOPs,
			Bytes:      est.DRAMBytes,
		}
	}

	ffn := cfg.FFN / s.TP
	upName, upCols := "O.Wmlp1 = O1", ffn
	if cfg.MLP == model.MLPSwiGLU {
		upCols = 2 * ffn
	}
	return []GEMMReport{
		mk("merged-head X.Wkqv = K,Q,V", roofline.GEMM{
			M: rows, N: (cfg.Hidden + 2*kv) / s.TP, K: cfg.Hidden, Precision: s.Precision}),
		mk("single-head Q.K^T = R", roofline.GEMM{
			M: s.PromptTokens, N: s.PromptTokens, K: hd, Batch: s.Batch, Precision: s.Precision}),
		mk("single-head softmax(R).V = Z", roofline.GEMM{
			M: s.PromptTokens, N: hd, K: s.PromptTokens, Batch: s.Batch, Precision: s.Precision}),
		mk("Z.W = O", roofline.GEMM{
			M: rows, N: cfg.Hidden, K: cfg.Hidden / s.TP, Precision: s.Precision}),
		mk(upName, roofline.GEMM{
			M: rows, N: upCols, K: cfg.Hidden, Precision: s.Precision}),
		mk("O1.Wmlp2 = O2", roofline.GEMM{
			M: rows, N: cfg.Hidden, K: ffn, Precision: s.Precision}),
	}, nil
}

// BoundSplit returns the fraction of per-layer prefill GEMM time spent in
// compute-bound vs memory-bound kernels — the Fig. 8 bars. All GEMMs of a
// full layer (all heads batched) are counted.
func BoundSplit(s Spec) (computeBound, memoryBound float64, err error) {
	if err := s.Validate(); err != nil {
		return 0, 0, err
	}
	eng := roofline.New(s.System.Device)
	exec := kernels.Exec{
		Batch:     s.Batch,
		Seq:       s.PromptTokens,
		Context:   s.PromptTokens,
		TP:        s.TP,
		Precision: s.Precision,
		Phase:     kernels.Prefill,
	}
	for _, op := range kernels.LayerForward(s.Model, exec) {
		if op.Kind != kernels.KindGEMM {
			continue
		}
		est := eng.EstimateGEMM(op.GEMM)
		if est.Bound == roofline.BoundCompute {
			computeBound += est.Time
		} else {
			memoryBound += est.Time
		}
	}
	return computeBound, memoryBound, nil
}
