package infer

import (
	"strings"
	"testing"

	"optimus/internal/arch"
	"optimus/internal/comm"
	"optimus/internal/model"
	"optimus/internal/tech"
	"optimus/internal/units"
	"optimus/internal/valdata"
)

// sysFor builds the Table 2 platform: n GPUs of the given preset in one
// node with the generation's NVLink fabric.
func sysFor(t *testing.T, dev arch.Device, n int, nv tech.NetworkTech) *arch.System {
	t.Helper()
	s, err := arch.SystemOf(dev, n, 8, nv, tech.IBNDR)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func table2Spec(t *testing.T, modelName string, sys *arch.System, gpus int) Spec {
	t.Helper()
	cfg, err := model.ByName(modelName)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Model: cfg, System: sys, TP: gpus, Batch: 1,
		PromptTokens: 200, GenTokens: 200, Precision: tech.FP16,
	}
}

// TestTable2Validation: predictions must match NVIDIA's published Llama-2
// latencies in the same band the paper demonstrates (≤13% relative error,
// with one anomalous 8-GPU corner it discusses in §4.3).
// Gate: mean ≤ 10%, max ≤ 20%.
func TestTable2Validation(t *testing.T) {
	var errs []float64
	for _, c := range valdata.Table2() {
		for _, plat := range []struct {
			name string
			dev  arch.Device
			nv   tech.NetworkTech
			ref  float64
		}{
			{"A100", arch.A100(), tech.NVLink3, c.RefA100Ms},
			{"H100", arch.H100(), tech.NVLink4, c.RefH100Ms},
		} {
			sys := sysFor(t, plat.dev, c.GPUs, plat.nv)
			res, err := Predict(table2Spec(t, c.Model, sys, c.GPUs))
			if err != nil {
				t.Fatalf("%s %s: %v", c.Model, plat.name, err)
			}
			ms := res.Total * 1e3
			e := units.RelErr(ms, plat.ref)
			errs = append(errs, e)
			t.Logf("%-11s %d GPUs %s ref=%6.0fms pred=%6.0fms err=%5.1f%%",
				c.Model, c.GPUs, plat.name, plat.ref, ms, 100*e)
			if e > 0.20 {
				t.Errorf("%s %d GPUs %s: error %.1f%% exceeds 20%% gate",
					c.Model, c.GPUs, plat.name, 100*e)
			}
		}
	}
	if mean := units.Mean(errs); mean > 0.10 {
		t.Errorf("mean Table 2 error %.1f%% exceeds 10%% gate", 100*mean)
	}
}

func TestDecodeIsMemoryDominated(t *testing.T) {
	// §6.1: the autoregressive generation phase is DRAM-bound; decode time
	// dwarfs prefill compute for 200/200 tokens.
	sys := sysFor(t, arch.A100(), 1, tech.NVLink3)
	res, err := Predict(table2Spec(t, "Llama2-13B", sys, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryTime < 10*res.PrefillCompute {
		t.Errorf("decode memory time %g should dwarf prefill compute %g",
			res.MemoryTime, res.PrefillCompute)
	}
	if !units.AlmostEqual(res.Total, res.Prefill+res.Decode, 1e-9) {
		t.Error("total must equal prefill+decode")
	}
}

func TestHBMScalingSpeedsDecode(t *testing.T) {
	// H200 = H100 compute with HBM3e: decode must speed up by roughly the
	// bandwidth ratio (§6.2: performance scales with DRAM bandwidth until
	// the L2 bound).
	h100 := sysFor(t, arch.H100(), 1, tech.NVLink4)
	h200 := sysFor(t, arch.H200(), 1, tech.NVLink4)
	a, _ := Predict(table2Spec(t, "Llama2-13B", h100, 1))
	b, _ := Predict(table2Spec(t, "Llama2-13B", h200, 1))
	ratio := a.PerToken / b.PerToken
	if ratio < 1.2 || ratio > 4.8/3.35*1.1 {
		t.Errorf("H200/H100 decode speedup %.2f outside (1.2, ~1.43)", ratio)
	}
}

func TestInferenceScalesPoorly(t *testing.T) {
	// §4.3: "inference scales poorly with the number of GPUs, unlike
	// training" — 8 GPUs must yield far less than 8x over 1 GPU.
	cfg := "Llama2-13B"
	one, _ := Predict(table2Spec(t, cfg, sysFor(t, arch.A100(), 1, tech.NVLink3), 1))
	eight, _ := Predict(table2Spec(t, cfg, sysFor(t, arch.A100(), 8, tech.NVLink3), 8))
	speedup := one.Total / eight.Total
	if speedup < 1.2 {
		t.Errorf("8 GPUs should still help somewhat, got %.2fx", speedup)
	}
	if speedup > 4 {
		t.Errorf("8-GPU speedup %.2fx too ideal; decode should be comm-limited", speedup)
	}
}

func TestCommToMemoryRatioAt8GPUs(t *testing.T) {
	// §6.2: "for 8 GPUs, communication time is roughly 1.6x of memory
	// time (for Llama2-13B)". Accept 1.1-2.1.
	sys := sysFor(t, arch.A100(), 8, tech.NVLink3)
	res, _ := Predict(table2Spec(t, "Llama2-13B", sys, 8))
	ratio := res.CommTime / res.MemoryTime
	if ratio < 1.1 || ratio > 2.1 {
		t.Errorf("comm/memory ratio at 8 GPUs = %.2f, want ≈ 1.6", ratio)
	}
}

func TestTreeBeatsRingForInference(t *testing.T) {
	// §3.4: the double-binary-tree's log latency term "helps scale
	// inference up to 8 GPUs".
	sys := sysFor(t, arch.A100(), 8, tech.NVLink3)
	spec := table2Spec(t, "Llama2-13B", sys, 8)
	spec.Algorithm = comm.DoubleBinaryTree
	tree, _ := Predict(spec)
	spec.Algorithm = comm.Ring
	ring, _ := Predict(spec)
	if tree.CommTime >= ring.CommTime {
		t.Errorf("tree comm %g should beat ring %g at 8 GPUs", tree.CommTime, ring.CommTime)
	}
}

func TestPrefillGEMMTableMatchesPaperBounds(t *testing.T) {
	// Table 4's qualitative result: on A100 the projection/MLP GEMMs are
	// compute-bound; on H100 every large GEMM flips to memory-bound. The
	// single-head kernels are tiny (µs-scale software/memory limited).
	a100 := sysFor(t, arch.A100(), 1, tech.NVLink3)
	h100 := sysFor(t, arch.H100(), 1, tech.NVLink4)

	aRows, err := PrefillGEMMTable(table2Spec(t, "Llama2-13B", a100, 1))
	if err != nil {
		t.Fatal(err)
	}
	hRows, err := PrefillGEMMTable(table2Spec(t, "Llama2-13B", h100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(aRows) != 6 || len(hRows) != 6 {
		t.Fatalf("want 6 GEMM rows, got %d / %d", len(aRows), len(hRows))
	}
	for i, r := range aRows {
		big := !strings.Contains(r.Function, "single-head")
		if big && r.Bound != "compute" {
			t.Errorf("A100 %s bound = %s, want compute", r.Function, r.Bound)
		}
		if !big && r.Time > 10e-6 {
			t.Errorf("A100 %s = %g, want µs-scale", r.Function, r.Time)
		}
		if big && hRows[i].Bound != "memory" {
			t.Errorf("H100 %s bound = %s, want memory", hRows[i].Function, hRows[i].Bound)
		}
		if hRows[i].Time >= r.Time {
			t.Errorf("%s: H100 (%g) must be faster than A100 (%g)",
				r.Function, hRows[i].Time, r.Time)
		}
	}
}

func TestBoundSplitFlipsA100ToH100(t *testing.T) {
	// Fig. 8: at B=1 the A100 layer is compute-dominated while the H100
	// layer has zero compute-bound time; at B=16 both are
	// compute-dominated.
	a100 := sysFor(t, arch.A100(), 1, tech.NVLink3)
	h100 := sysFor(t, arch.H100(), 1, tech.NVLink4)

	frac := func(sys *arch.System, batch int) float64 {
		spec := table2Spec(t, "Llama2-13B", sys, 1)
		spec.Batch = batch
		cb, mb, err := BoundSplit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return cb / (cb + mb)
	}
	if f := frac(a100, 1); f < 0.5 {
		t.Errorf("A100 B=1 compute fraction = %.2f, want > 0.5", f)
	}
	if f := frac(h100, 1); f != 0 {
		t.Errorf("H100 B=1 compute fraction = %.2f, want 0", f)
	}
	if f := frac(h100, 16); f < 0.5 {
		t.Errorf("H100 B=16 compute fraction = %.2f, want > 0.5", f)
	}
}

func TestFootprintGatesFit(t *testing.T) {
	// Llama2-70B at fp16 (140 GB) cannot fit one 80 GB A100 — Table 2
	// only lists it from 2 GPUs up.
	sys := sysFor(t, arch.A100(), 1, tech.NVLink3)
	res, err := Predict(table2Spec(t, "Llama2-70B", sys, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fits {
		t.Error("70B should not fit a single 80 GB device")
	}
	sys2 := sysFor(t, arch.A100(), 2, tech.NVLink3)
	res2, _ := Predict(table2Spec(t, "Llama2-70B", sys2, 2))
	if !res2.Fits {
		t.Error("70B should fit across two 80 GB devices")
	}
}

func TestKVCacheGrowthSlowsLaterTokens(t *testing.T) {
	// Longer generations read a longer cache: mean per-token time grows
	// with the generation length.
	sys := sysFor(t, arch.A100(), 1, tech.NVLink3)
	short := table2Spec(t, "Llama2-13B", sys, 1)
	short.GenTokens = 50
	long := short
	long.GenTokens = 1600
	a, _ := Predict(short)
	b, _ := Predict(long)
	if b.PerToken <= a.PerToken {
		t.Errorf("per-token time should grow with context: %g vs %g", b.PerToken, a.PerToken)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	sys := sysFor(t, arch.A100(), 2, tech.NVLink3)
	good := table2Spec(t, "Llama2-13B", sys, 2)

	bad := good
	bad.TP = 4 // != system devices
	if _, err := Predict(bad); err == nil {
		t.Error("TP/system mismatch should error")
	}
	bad = good
	bad.Batch = 0
	if _, err := Predict(bad); err == nil {
		t.Error("zero batch should error")
	}
	bad = good
	bad.PromptTokens = 0
	if _, err := Predict(bad); err == nil {
		t.Error("zero prompt should error")
	}
	bad = good
	bad.GenTokens = -1
	if _, err := Predict(bad); err == nil {
		t.Error("negative generation should error")
	}
}

func TestZeroGenTokensPrefillOnly(t *testing.T) {
	sys := sysFor(t, arch.A100(), 1, tech.NVLink3)
	spec := table2Spec(t, "Llama2-13B", sys, 1)
	spec.GenTokens = 0
	res, err := Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decode != 0 || res.PerToken != 0 {
		t.Error("no generation should mean no decode time")
	}
	if res.Prefill <= 0 {
		t.Error("prefill must still be predicted")
	}
}
