// Package memfoot models the per-device memory footprint of LLM training
// and inference (paper §3.3, §3.5, §5.1): model parameters, gradients,
// optimizer states, activations under the three recomputation regimes
// (none, selective — Eq. 2, full — Eq. 1), and the inference KV-cache.
//
// Activation sizes follow the Korthikanti et al. accounting the paper
// adopts: a transformer layer at sequence length s, microbatch b, hidden h
// and heads a stores sbh·(34 + 5as/h) bytes at half precision, of which
// tensor parallelism divides the 24sbh of block-internal tensors and the
// attention quadratic term by t, and sequence parallelism additionally
// divides the 10sbh of norm/dropout tensors.
package memfoot

import (
	"fmt"

	"optimus/internal/model"
	"optimus/internal/parallel"
)

// Recompute selects the activation recomputation regime (§3.3).
type Recompute int

const (
	// NoRecompute stores every activation of every layer.
	NoRecompute Recompute = iota
	// Selective recomputes the attention softmax/dropout tensors (Eq. 2).
	Selective
	// Full checkpoints layer inputs and replays the forward pass (Eq. 1).
	Full
)

// String names the regime as in the paper's Fig. 4.
func (r Recompute) String() string {
	switch r {
	case NoRecompute:
		return "none"
	case Selective:
		return "selective"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Recompute(%d)", int(r))
	}
}

// MixedPrecisionBytes are the per-parameter storage costs of
// mixed-precision Adam (§5.1: "mixed-precision training with 2 bytes").
type MixedPrecisionBytes struct {
	// Param is the working-copy element size (fp16/bf16: 2).
	Param float64
	// Grad is the gradient element size (fp16: 2).
	Grad float64
	// Optim is the optimizer state per parameter: fp32 master copy,
	// momentum and variance (4+4+4 = 12).
	Optim float64
}

// DefaultMixedPrecision is the standard 2/2/12-byte accounting.
func DefaultMixedPrecision() MixedPrecisionBytes {
	return MixedPrecisionBytes{Param: 2, Grad: 2, Optim: 12}
}

// TrainSpec fixes everything the training footprint depends on.
type TrainSpec struct {
	Model model.Config
	Map   parallel.Mapping
	// Seq is the training sequence length.
	Seq int
	// GlobalBatch is the total batch size in sequences.
	GlobalBatch int
	// Recompute selects the activation regime.
	Recompute Recompute
	// Checkpoints is Nckp of Eq. (1); zero means one checkpoint per
	// resident layer (the Megatron default).
	Checkpoints int
	// Bytes is the precision accounting; zero value means
	// DefaultMixedPrecision.
	Bytes MixedPrecisionBytes
}

func (s TrainSpec) bytes() MixedPrecisionBytes {
	if s.Bytes == (MixedPrecisionBytes{}) {
		return DefaultMixedPrecision()
	}
	return s.Bytes
}

// Breakdown is the per-device footprint, in bytes, of the worst (first)
// pipeline stage.
type Breakdown struct {
	Parameters  float64
	Gradients   float64
	Optimizer   float64
	Activations float64
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 {
	return b.Parameters + b.Gradients + b.Optimizer + b.Activations
}

// ModelState returns the non-activation footprint (the Fig. 4 "optimizer
// state" bar is Gradients+Optimizer; "parameter" is Parameters).
func (b Breakdown) ModelState() float64 {
	return b.Parameters + b.Gradients + b.Optimizer
}

// ParamsPerDevice returns the parameter count held by one first-stage
// device: the stage's share of the layers plus the TP shard of the input
// embedding. It also sizes the data-parallel gradient all-reduce.
func ParamsPerDevice(cfg model.Config, m parallel.Mapping) float64 {
	layers := float64(m.LayersPerDevice(cfg.Layers))
	p := layers * cfg.LayerParams() / float64(m.TP)
	emb := float64(cfg.Vocab*cfg.Hidden) / float64(m.TP)
	if cfg.LearnedPositions {
		emb += float64(cfg.MaxSeq * cfg.Hidden) // replicated across TP
	}
	p += emb
	return p
}

// LayerActivationBytes returns the stored activation bytes of one
// transformer layer for one microbatch under the given parallelism,
// excluding any recomputation discount.
func LayerActivationBytes(cfg model.Config, m parallel.Mapping, seq int) float64 {
	s := float64(seq)
	b := float64(m.Microbatch)
	h := float64(cfg.Hidden)
	a := float64(cfg.Heads)
	t := float64(m.TP)

	attnQuad := 5 * a * s / (h * t) // softmax + dropout mask/output, ÷t
	blockLinear := 24 / t           // QKV/proj/MLP internals, ÷t
	normDrop := 10.0                // norms, dropouts, residual inputs
	if m.SP {
		normDrop /= t
	}
	return s * b * h * (normDrop + blockLinear + attnQuad)
}

// layerInputBytes is Ainp of Eq. (1): the 2-byte layer input s·b·h tensor.
// Sequence parallelism shards the stored checkpoint across the TP group.
func layerInputBytes(cfg model.Config, m parallel.Mapping, seq int) float64 {
	bytes := 2 * float64(seq) * float64(m.Microbatch) * float64(cfg.Hidden)
	if m.SP {
		bytes /= float64(m.TP)
	}
	return bytes
}

// selectiveSavedBytes is Asm+Ado_mask+Ado_out of Eq. (2): the attention
// quadratic tensors selective recomputation discards.
func selectiveSavedBytes(cfg model.Config, m parallel.Mapping, seq int) float64 {
	s := float64(seq)
	b := float64(m.Microbatch)
	a := float64(cfg.Heads)
	t := float64(m.TP)
	return 5 * a * s * s * b / t
}

// ActivationsPerDevice returns the stored activation bytes on the worst
// pipeline stage, applying the recomputation regime and the schedule's
// in-flight multiplier.
func ActivationsPerDevice(spec TrainSpec) float64 {
	cfg, m := spec.Model, spec.Map
	layers := m.LayersPerDevice(cfg.Layers)
	nMicro := m.Microbatches(spec.GlobalBatch)
	inFlight := m.InFlight(nMicro)

	aTot := LayerActivationBytes(cfg, m, spec.Seq)
	aInp := layerInputBytes(cfg, m, spec.Seq)

	var perStage float64
	switch spec.Recompute {
	case Full:
		// Eq. (1): Afull = Nckp·Ainp + (L/Nckp)(Atot − Ainp), with L the
		// resident layers and Nckp defaulting to one checkpoint per layer.
		nckp := spec.Checkpoints
		if nckp <= 0 || nckp > layers {
			nckp = layers
		}
		perStage = float64(nckp)*aInp + float64(layers)/float64(nckp)*(aTot-aInp)
	case Selective:
		// Eq. (2): Asel = L(Atot − (Asm + Ado_mask + Ado_out)).
		perStage = float64(layers) * (aTot - selectiveSavedBytes(cfg, m, spec.Seq))
	default:
		perStage = float64(layers) * aTot
	}
	return perStage * inFlight
}

// Train returns the per-device training footprint of the worst stage.
func Train(spec TrainSpec) (Breakdown, error) {
	if err := spec.Model.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := spec.Map.Validate(spec.Model.Layers, spec.GlobalBatch); err != nil {
		return Breakdown{}, err
	}
	if spec.Seq <= 0 {
		return Breakdown{}, fmt.Errorf("memfoot: non-positive sequence length %d", spec.Seq)
	}
	p := ParamsPerDevice(spec.Model, spec.Map)
	by := spec.bytes()
	return Breakdown{
		Parameters:  p * by.Param,
		Gradients:   p * by.Grad,
		Optimizer:   p * by.Optim,
		Activations: ActivationsPerDevice(spec),
	}, nil
}

// FitsDevice reports whether the footprint fits a device capacity, leaving
// a 2 GB reserve for driver context, NCCL buffers and workspace — small
// enough that GPT-175B with selective recomputation still fits an 80 GB
// A100, as it does in practice (§5.1).
func FitsDevice(b Breakdown, capacity float64) bool {
	const reserve = 2e9
	return b.Total() <= capacity-reserve
}

// InferenceBreakdown is the per-device inference footprint.
type InferenceBreakdown struct {
	Weights float64
	KVCache float64
}

// Total sums the inference footprint.
func (b InferenceBreakdown) Total() float64 { return b.Weights + b.KVCache }

// Inference returns the per-device footprint of serving: TP-sharded
// weights plus the KV-cache at the given batch and maximum context
// (§3.5's cache-size formula divided across the TP group).
func Inference(cfg model.Config, tp, batch, context int, elemBytes float64) InferenceBreakdown {
	return InferenceBreakdown{
		Weights: cfg.Params() * elemBytes / float64(tp),
		KVCache: cfg.KVCacheBytes(batch, context, elemBytes) / float64(tp),
	}
}

// MaxServingBatch returns the largest batch whose weights + KV-cache fit
// the per-device capacity at the given context length, or zero when even
// the weights alone overflow — the §3.5 trade-off ("the increased memory
// and bandwidth required to store and load the Key and Value states")
// turned into a capacity-planning answer.
func MaxServingBatch(cfg model.Config, tp, context int, elemBytes, capacity float64) int {
	weights := cfg.Params() * elemBytes / float64(tp)
	if weights >= capacity {
		return 0
	}
	perSeq := cfg.KVCacheBytes(1, context, elemBytes) / float64(tp)
	if perSeq <= 0 {
		return 0
	}
	return int((capacity - weights) / perSeq)
}
