package memfoot

import (
	"math"
	"testing"
	"testing/quick"

	"optimus/internal/model"
	"optimus/internal/parallel"
)

// gpt175Spec is the Table 1 / Fig. 4 configuration: 64 A100s, 1-8-8,
// microbatch 1, global batch 64, sequence 2048.
func gpt175Spec(r Recompute) TrainSpec {
	return TrainSpec{
		Model: model.GPT175B(),
		Map: parallel.Mapping{
			DP: 1, TP: 8, PP: 8, Microbatch: 1, Schedule: parallel.OneFOneB,
		},
		Seq:         2048,
		GlobalBatch: 64,
		Recompute:   r,
	}
}

func TestLayerActivationKorthikantiFormula(t *testing.T) {
	// At TP=1, no SP: sbh(34 + 5as/h) bytes.
	cfg := model.GPT175B()
	m := parallel.Mapping{DP: 1, TP: 1, PP: 1, Microbatch: 1}
	got := LayerActivationBytes(cfg, m, 2048)
	s, b, h, a := 2048.0, 1.0, 12288.0, 96.0
	want := s * b * h * (34 + 5*a*s/h)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("activation bytes = %g, want %g", got, want)
	}
}

func TestTPAndSPDivideActivations(t *testing.T) {
	cfg := model.GPT175B()
	tp8 := parallel.Mapping{DP: 1, TP: 8, PP: 1, Microbatch: 1}
	got := LayerActivationBytes(cfg, tp8, 2048)
	s, b, h, a := 2048.0, 1.0, 12288.0, 96.0
	want := s * b * h * (10 + 24/8.0 + 5*a*s/(h*8))
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("TP=8 activation = %g, want %g", got, want)
	}
	sp := tp8
	sp.SP = true
	gotSP := LayerActivationBytes(cfg, sp, 2048)
	wantSP := s * b * h * (34/8.0 + 5*a*s/(h*8))
	if math.Abs(gotSP-wantSP)/wantSP > 1e-12 {
		t.Errorf("SP activation = %g, want %g", gotSP, wantSP)
	}
	if gotSP >= got {
		t.Error("SP must reduce stored activations")
	}
}

func TestRecomputeOrdering(t *testing.T) {
	// Fig. 4: none > selective > full, for every model.
	specs := []func(Recompute) TrainSpec{gpt175Spec}
	for _, mk := range specs {
		none, err := Train(mk(NoRecompute))
		if err != nil {
			t.Fatal(err)
		}
		sel, _ := Train(mk(Selective))
		full, _ := Train(mk(Full))
		if !(none.Activations > sel.Activations && sel.Activations > full.Activations) {
			t.Errorf("activation ordering violated: none=%g sel=%g full=%g",
				none.Activations, sel.Activations, full.Activations)
		}
		// Model state is independent of the recompute regime.
		if none.ModelState() != sel.ModelState() || sel.ModelState() != full.ModelState() {
			t.Error("model state must not depend on recomputation")
		}
	}
}

func TestGPT175BFitsOnlyWithRecompute(t *testing.T) {
	// §5.1: "with no recomputation, an LLM can not generally fit in the
	// device memory"; selective recomputation brings GPT-175B under the
	// A100's 80 GB.
	const a100 = 80e9
	none, _ := Train(gpt175Spec(NoRecompute))
	sel, _ := Train(gpt175Spec(Selective))
	full, _ := Train(gpt175Spec(Full))
	if none.Total() < a100 {
		t.Errorf("no-recompute footprint %g should exceed 80 GB", none.Total())
	}
	if FitsDevice(none, a100) {
		t.Error("no-recompute should not fit an A100")
	}
	if !FitsDevice(sel, a100) {
		t.Errorf("selective footprint %g should fit an A100", sel.Total())
	}
	if !FitsDevice(full, a100) {
		t.Errorf("full footprint %g should fit an A100", full.Total())
	}
}

func TestFig4Magnitudes(t *testing.T) {
	// Anchor the 175B bars: parameters ≈ 5.6 GB, gradients+optimizer ≈
	// 39 GB, no-recompute activations ≈ 56 GB (±15%).
	none, _ := Train(gpt175Spec(NoRecompute))
	within := func(name string, got, want float64) {
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("%s = %.1f GB, want ≈ %.1f GB", name, got/1e9, want/1e9)
		}
	}
	within("parameters", none.Parameters, 5.6e9)
	within("grad+optimizer", none.Gradients+none.Optimizer, 39e9)
	within("activations", none.Activations, 56e9)
}

func TestFullRecomputeEq1(t *testing.T) {
	// With Nckp = resident layers, Eq. (1) degenerates to
	// L·Ainp + (Atot − Ainp) per stage.
	spec := gpt175Spec(Full)
	got := ActivationsPerDevice(spec)
	layers := 12.0 // 96 layers / PP 8
	aTot := LayerActivationBytes(spec.Model, spec.Map, spec.Seq)
	aInp := 2.0 * 2048 * 1 * 12288
	inFlight := 8.0 // 1F1B, m=64 ≥ p=8
	want := (layers*aInp + (aTot - aInp)) * inFlight
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Eq.1 activations = %g, want %g", got, want)
	}
	// Fewer checkpoints trade memory: Nckp = 4 stores fewer inputs but a
	// larger recompute segment.
	spec.Checkpoints = 4
	got4 := ActivationsPerDevice(spec)
	want4 := (4*aInp + 12.0/4*(aTot-aInp)) * inFlight
	if math.Abs(got4-want4)/want4 > 1e-12 {
		t.Errorf("Eq.1 with Nckp=4 = %g, want %g", got4, want4)
	}
}

func TestSelectiveEq2(t *testing.T) {
	spec := gpt175Spec(Selective)
	got := ActivationsPerDevice(spec)
	aTot := LayerActivationBytes(spec.Model, spec.Map, spec.Seq)
	saved := 5.0 * 96 * 2048 * 2048 * 1 / 8
	want := 12 * (aTot - saved) * 8
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Eq.2 activations = %g, want %g", got, want)
	}
}

func TestGPipeStoresAllMicrobatches(t *testing.T) {
	spec := gpt175Spec(NoRecompute)
	spec.Map.Schedule = parallel.GPipe
	gpipe := ActivationsPerDevice(spec)
	spec.Map.Schedule = parallel.OneFOneB
	f1b1 := ActivationsPerDevice(spec)
	if ratio := gpipe / f1b1; math.Abs(ratio-8) > 1e-9 { // 64 vs 8 in flight
		t.Errorf("GPipe/1F1B activation ratio = %g, want 8", ratio)
	}
}

func TestTrainValidates(t *testing.T) {
	spec := gpt175Spec(NoRecompute)
	spec.Map.PP = 7 // 96 layers not divisible
	if _, err := Train(spec); err == nil {
		t.Error("invalid mapping should error")
	}
	spec = gpt175Spec(NoRecompute)
	spec.Seq = 0
	if _, err := Train(spec); err == nil {
		t.Error("zero sequence should error")
	}
}

func TestInferenceFootprint(t *testing.T) {
	// Fig. 8 inset: Llama2-13B weights ≈ 26 GB at fp16; KV cache at
	// B=16, context 400 ≈ 5 GB (2·16·400·2·40·5120).
	cfg := model.Llama2_13B()
	got := Inference(cfg, 1, 16, 400, 2)
	if math.Abs(got.Weights-26e9)/26e9 > 0.05 {
		t.Errorf("weights = %g, want ≈ 26 GB", got.Weights)
	}
	wantKV := 2.0 * 16 * 400 * 2 * 40 * 5120
	if got.KVCache != wantKV {
		t.Errorf("kv cache = %g, want %g", got.KVCache, wantKV)
	}
	// TP shards both.
	tp8 := Inference(cfg, 8, 16, 400, 2)
	if math.Abs(tp8.Total()*8-got.Total()) > 1 {
		t.Error("TP=8 should shard the footprint 8 ways")
	}
}

func TestMaxServingBatch(t *testing.T) {
	cfg := model.Llama2_13B()
	// One A100: 80 GB - 26 GB of weights leaves 54 GB; each 4k-context
	// sequence's cache is 2·4096·2·40·5120 ≈ 3.36 GB → 16 sequences.
	got := MaxServingBatch(cfg, 1, 4096, 2, 80e9)
	if got < 14 || got > 18 {
		t.Errorf("max batch = %d, want ≈ 16", got)
	}
	// TP=8 shards weights and cache alike, and the freed weight room buys
	// extra sequences: the max batch grows super-linearly in TP.
	got8 := MaxServingBatch(cfg, 8, 4096, 2, 80e9)
	if got8 < 8*got {
		t.Errorf("TP=8 max batch = %d, want > 8x%d (weights shard too)", got8, got)
	}
	// 70B at fp16 does not fit one device at all.
	if MaxServingBatch(model.Llama2_70B(), 1, 4096, 2, 80e9) != 0 {
		t.Error("70B weights alone overflow a single 80 GB device")
	}
	// Longer context shrinks the feasible batch.
	if MaxServingBatch(cfg, 1, 8192, 2, 80e9) >= got {
		t.Error("doubling context should shrink the max batch")
	}
}

func TestRecomputeString(t *testing.T) {
	if NoRecompute.String() != "none" || Selective.String() != "selective" || Full.String() != "full" {
		t.Error("recompute names wrong")
	}
}

func TestDefaultMixedPrecision(t *testing.T) {
	b := DefaultMixedPrecision()
	if b.Param != 2 || b.Grad != 2 || b.Optim != 12 {
		t.Errorf("default mixed precision = %+v", b)
	}
	// Zero-value spec resolves to the default.
	spec := gpt175Spec(NoRecompute)
	bd, _ := Train(spec)
	if bd.Gradients != bd.Parameters {
		t.Error("2-byte grads should equal 2-byte params")
	}
	if bd.Optimizer != 6*bd.Parameters {
		t.Error("12-byte optimizer should be 6x the 2-byte params")
	}
}

// Property: activations scale linearly with microbatch size.
func TestActivationLinearInMicrobatchProperty(t *testing.T) {
	cfg := model.GPT22B()
	f := func(b uint8) bool {
		mb := int(b)%8 + 1
		m1 := parallel.Mapping{DP: 1, TP: 8, PP: 1, Microbatch: mb}
		m2 := parallel.Mapping{DP: 1, TP: 8, PP: 1, Microbatch: 2 * mb}
		return math.Abs(LayerActivationBytes(cfg, m2, 2048)-2*LayerActivationBytes(cfg, m1, 2048)) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more tensor parallelism never increases per-device activations.
func TestTPMonotoneProperty(t *testing.T) {
	cfg := model.GPT175B()
	f := func(tpSeed uint8) bool {
		tp := 1 << (int(tpSeed) % 4) // 1,2,4,8
		m1 := parallel.Mapping{DP: 1, TP: tp, PP: 1, Microbatch: 1}
		m2 := parallel.Mapping{DP: 1, TP: tp * 2, PP: 1, Microbatch: 1}
		return LayerActivationBytes(cfg, m2, 2048) < LayerActivationBytes(cfg, m1, 2048)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
