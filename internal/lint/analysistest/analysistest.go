// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want annotations — the offline counterpart
// of golang.org/x/tools/go/analysis/analysistest, same fixture layout and
// comment syntax.
//
// A fixture line carrying `// want "re1" "re2"` must receive diagnostics
// matching every listed regexp, and every diagnostic must be claimed by
// some want on its line — unexpected findings and unmatched expectations
// both fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"optimus/internal/lint/analysis"
	"optimus/internal/lint/loader"
)

// Run loads testdata/src/<pkg> for each named fixture package, applies
// the analyzer, and asserts the want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := loader.New()
	for _, pkg := range pkgs {
		runPkg(t, l, filepath.Join(testdata, "src", pkg), pkg, a)
	}
}

// TestData returns the absolute testdata directory of the calling test's
// package, mirroring upstream's helper.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}

type lineKey struct {
	file string
	line int
}

func runPkg(t *testing.T, l *loader.Loader, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	p, err := l.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	got := make(map[lineKey][]string)
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       p.Fset,
		Files:      p.Files,
		Pkg:        p.Pkg,
		TypesInfo:  p.TypesInfo,
		TypesSizes: loader.Sizes(),
		Report: func(d analysis.Diagnostic) {
			pos := p.Fset.Position(d.Pos)
			k := lineKey{pos.Filename, pos.Line}
			got[k] = append(got[k], d.Message)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", pkgPath, err)
	}

	want := wantAnnotations(t, p)

	// Every want must be satisfied by a diagnostic on its line.
	for k, res := range want {
		for _, re := range res {
			matched := false
			for _, msg := range got[k] {
				if re.MatchString(msg) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, re, got[k])
			}
		}
	}
	// Every diagnostic must be claimed by a want on its line.
	for k, msgs := range got {
		for _, msg := range msgs {
			claimed := false
			for _, re := range want[k] {
				if re.MatchString(msg) {
					claimed = true
					break
				}
			}
			if !claimed {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
			}
		}
	}
}

// wantAnnotations extracts the `// want "..."` expectations per line.
func wantAnnotations(t *testing.T, p *loader.Package) map[lineKey][]*regexp.Regexp {
	t.Helper()
	out := make(map[lineKey][]*regexp.Regexp)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				res, err := parseWants(rest)
				if err != nil {
					t.Fatalf("%s:%d: bad want annotation: %v", pos.Filename, pos.Line, err)
				}
				out[k] = append(out[k], res...)
			}
		}
	}
	return out
}

var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(s string) ([]*regexp.Regexp, error) {
	matches := wantPattern.FindAllString(s, -1)
	if len(matches) == 0 {
		return nil, fmt.Errorf("no quoted regexp in %q", s)
	}
	out := make([]*regexp.Regexp, 0, len(matches))
	for _, m := range matches {
		unq, err := strconv.Unquote(m)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
	return out, nil
}

// Sorted is a small debugging aid: the diagnostics of a run in position
// order as "file:line: message" strings.
func Sorted(fset *token.FileSet, ds []analysis.Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		pos := fset.Position(d.Pos)
		out[i] = fmt.Sprintf("%s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
	}
	sort.Strings(out)
	return out
}
