// Package uwrite is an unusedwrite fixture: writes to the per-iteration
// range copy that nothing observes fire; initialize-then-use stays legal.
package uwrite

type Item struct {
	Done  bool
	Count int
}

func MarkAll(items []Item) {
	for _, it := range items {
		it.Done = true // want `write to field Done of the range-value copy it is lost`
	}
}

func TwoWrites(items []Item) {
	for _, it := range items {
		it.Done = true // want `write to field Done of the range-value copy it is lost`
		it.Count = 1   // want `write to field Count of the range-value copy it is lost`
	}
}

func InitThenUse(items []Item) int {
	total := 0
	for _, it := range items {
		it.Count = it.Count * 2
		total += it.Count
	}
	return total
}

func ByIndex(items []Item) {
	for i := range items {
		items[i].Done = true
	}
}
