// Package nilcheck is a nilness fixture: uses that panic inside the
// branch that just proved the variable nil, plus the muting reassignment.
package nilcheck

type T struct{ N int }

func Deref(p *T) int {
	if p == nil {
		return p.N // want `nil dereference: p\.N on a variable just proven nil`
	}
	return p.N
}

func Star(p *int) int {
	if p == nil {
		return *p // want `nil dereference: p was just proven nil`
	}
	return *p
}

func SliceIndex(s []int) int {
	if s == nil {
		return s[0] // want `index of nil slice s panics`
	}
	return s[0]
}

func CallNil(f func()) {
	if f == nil {
		f() // want `call of nil function f panics`
	}
	f()
}

func MapWrite(m map[string]int) {
	if m == nil {
		m["x"] = 1 // want `write to nil map m panics`
	}
}

func MapRead(m map[string]int) int {
	if m == nil {
		return m["x"] // reading a nil map is legal
	}
	return 0
}

func Reassigned(p *T) int {
	if p == nil {
		p = &T{}
		return p.N
	}
	return p.N
}
