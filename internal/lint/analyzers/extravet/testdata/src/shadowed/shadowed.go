// Package shadowed is a shadow fixture: block-level redeclarations of a
// still-live outer variable fire; the if-init error-guard idiom and
// shadows whose outer variable is never used again stay silent.
package shadowed

func Shadow(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := x * 2 // want `declaration of "total" shadows declaration at`
			_ = total
		}
	}
	return total
}

func VarShadow() int {
	n := 1
	{
		var n int = 2 // want `declaration of "n" shadows declaration at`
		_ = n
	}
	return n
}

func do() error { return nil }

func Guard() error {
	err := do()
	if err := do(); err != nil {
		return err
	}
	return err
}

func NotUsedAfter() {
	v := 1
	_ = v
	{
		v := 2
		_ = v
	}
}
