// Package falign is a fieldalignment fixture (sizes assume a 64-bit
// word, which every test platform here has).
package falign

type Bad struct { // want `struct Bad is 24 bytes; reordering fields would make it 16`
	a bool
	b float64
	c bool
}

type Good struct {
	b float64
	a bool
	c bool
}

//lint:fieldalign grouped for readability
type Excused struct {
	a bool
	b float64
	c bool
}

type Single struct {
	only bool
}

func Use(x Bad, y Good, z Excused, s Single) (bool, bool, bool, bool) {
	return x.a, y.a, z.a, s.only
}
