// Package extravet carries offline reimplementations of the non-default
// vet analyzers the suite wires in (fieldalignment, shadow, nilness,
// unusedwrite). Upstream lives in golang.org/x/tools, which this build
// environment cannot fetch; these cover the same bug classes with
// deliberately conservative heuristics — every finding is meant to be
// actionable, at the cost of catching fewer cases than the SSA-based
// originals.
package extravet

import (
	"go/ast"
	"go/types"
	"sort"

	"optimus/internal/lint/analysis"
	"optimus/internal/lint/directive"
)

// FieldAlignment reports named struct types whose field order wastes
// padding bytes versus the best ordering under the gc size model.
// Structs whose field order is semantic — positional literals, cache-line
// grouping — carry //lint:fieldalign with the reason.
var FieldAlignment = &analysis.Analyzer{
	Name: "fieldalignment",
	Doc:  "report struct field orderings that waste padding versus the optimal layout",
	Run:  runFieldAlignment,
}

func runFieldAlignment(pass *analysis.Pass) (interface{}, error) {
	sizes := pass.TypesSizes
	if sizes == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if _, ok := ts.Type.(*ast.StructType); !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok || st.NumFields() < 2 {
				return true
			}
			cur := structSize(sizes, fieldTypes(st))
			best := structSize(sizes, optimalOrder(sizes, fieldTypes(st)))
			if best >= cur {
				return true
			}
			if directive.Suppressed(pass, ts.Pos(), "fieldalign") {
				return true
			}
			pass.Reportf(ts.Pos(), "struct %s is %d bytes; reordering fields would make it %d (annotate //lint:fieldalign if the order is semantic)",
				ts.Name.Name, cur, best)
			return true
		})
	}
	return nil, nil
}

func fieldTypes(st *types.Struct) []types.Type {
	out := make([]types.Type, st.NumFields())
	for i := range out {
		out[i] = st.Field(i).Type()
	}
	return out
}

// structSize lays fields out in order under the gc model: each field at
// its alignment, the whole struct padded to its max alignment.
func structSize(sizes types.Sizes, fields []types.Type) int64 {
	var off, maxAlign int64 = 0, 1
	for _, t := range fields {
		a, s := sizes.Alignof(t), sizes.Sizeof(t)
		if a > maxAlign {
			maxAlign = a
		}
		off = align(off, a) + s
	}
	return align(off, maxAlign)
}

// optimalOrder is the classic padding-minimizing order: descending
// alignment, then descending size (stable, so equivalent fields keep
// their relative order and the suggestion is deterministic).
func optimalOrder(sizes types.Sizes, fields []types.Type) []types.Type {
	out := append([]types.Type(nil), fields...)
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := sizes.Alignof(out[i]), sizes.Alignof(out[j])
		if ai != aj {
			return ai > aj
		}
		return sizes.Sizeof(out[i]) > sizes.Sizeof(out[j])
	})
	return out
}

func align(x, a int64) int64 {
	if a <= 0 {
		return x
	}
	return (x + a - 1) / a * a
}
