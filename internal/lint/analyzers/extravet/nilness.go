package extravet

import (
	"go/ast"
	"go/token"
	"go/types"

	"optimus/internal/lint/analysis"
)

// Nilness reports uses that would panic on nil inside the body of an
// `if x == nil` test: method calls and field accesses through x, *x,
// slice indexing, and map writes. (Reads of a nil map are legal and stay
// silent.) This is the branch-local core of the SSA-based upstream
// nilness pass: no dataflow, so a reassignment of x anywhere in the body
// mutes the whole branch.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "report dereferences of a variable inside the branch that just proved it nil",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			id := nilTest(pass, ifs.Cond)
			if id == nil {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || assignedIn(pass, ifs.Body, obj) {
				return true
			}
			checkNilUses(pass, ifs.Body, obj)
			return true
		})
	}
	return nil, nil
}

// nilTest matches `x == nil` (either operand order) over an identifier of
// nilable type and returns x.
func nilTest(pass *analysis.Pass, cond ast.Expr) *ast.Ident {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	x, y := be.X, be.Y
	if isNilIdent(pass, y) {
		// fallthrough with x
	} else if isNilIdent(pass, x) {
		x = y
	} else {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	switch pass.TypesInfo.TypeOf(id).Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice, *types.Signature, *types.Chan:
		return id
	}
	return nil
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

func assignedIn(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func checkNilUses(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) {
	isObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	t := obj.Type().Underlying()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StarExpr:
			if isObj(n.X) {
				pass.Reportf(n.Pos(), "nil dereference: %s was just proven nil by the enclosing if", obj.Name())
			}
		case *ast.SelectorExpr:
			if isObj(n.X) {
				switch t.(type) {
				case *types.Pointer, *types.Interface:
					pass.Reportf(n.Pos(), "nil dereference: %s.%s on a variable just proven nil", obj.Name(), n.Sel.Name)
				}
			}
		case *ast.IndexExpr:
			if isObj(n.X) {
				if _, isSlice := t.(*types.Slice); isSlice {
					pass.Reportf(n.Pos(), "index of nil slice %s panics", obj.Name())
				}
			}
		case *ast.CallExpr:
			if isObj(n.Fun) {
				pass.Reportf(n.Pos(), "call of nil function %s panics", obj.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if ok && isObj(ix.X) {
					if _, isMap := t.(*types.Map); isMap {
						pass.Reportf(ix.Pos(), "write to nil map %s panics", obj.Name())
					}
				}
			}
		}
		return true
	})
}
