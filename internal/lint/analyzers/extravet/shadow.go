package extravet

import (
	"go/ast"
	"go/token"
	"go/types"

	"optimus/internal/lint/analysis"
)

// Shadow reports inner := and var declarations that shadow an outer
// variable of the same name and identical type while the outer variable
// is still used after the inner scope closes — the shape where a write
// to the wrong variable survives review.
//
// Like upstream vet's non-default shadow check, only declarations are
// considered (function parameters — the deliberate goroutine-capture
// idiom — and range variables never fire). Beyond upstream, declarations
// in if/switch init clauses (`if err := f(); err != nil`) are also
// skipped: the variable cannot outlive the statement that both declares
// and consumes it, and flagging Go's standard error-guard idiom would
// bury the real findings.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "report declarations that shadow an outer variable which is used again after the inner scope ends",
	Run:  runShadow,
}

func runShadow(pass *analysis.Pass) (interface{}, error) {
	info := pass.TypesInfo

	// Every use position per object, so "outer var used after the inner
	// scope ends" is one scan.
	uses := make(map[types.Object][]token.Pos)
	for id, obj := range info.Uses {
		uses[obj] = append(uses[obj], id.Pos())
	}
	usedAfter := func(obj types.Object, end token.Pos) bool {
		for _, p := range uses[obj] {
			if p >= end {
				return true
			}
		}
		return false
	}

	check := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok || v.IsField() {
			return
		}
		inner := v.Parent()
		if inner == nil || inner == pass.Pkg.Scope() {
			return
		}
		outerScope, outerObj := inner.Parent().LookupParent(id.Name, v.Pos())
		if outerObj == nil || outerScope == types.Universe || outerScope == pass.Pkg.Scope() {
			return // package globals are API surface, not accidents
		}
		ov, ok := outerObj.(*types.Var)
		if !ok || ov.IsField() || !types.Identical(v.Type(), ov.Type()) {
			return
		}
		if usedAfter(outerObj, inner.End()) {
			pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s, which is used after this scope ends",
				id.Name, pass.Fset.Position(outerObj.Pos()))
		}
	}

	for _, f := range pass.Files {
		// Init-clause statements of if/switch: declared-and-consumed in
		// one statement, skipped by design.
		initStmts := make(map[ast.Stmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				if n.Init != nil {
					initStmts[n.Init] = true
				}
			case *ast.SwitchStmt:
				if n.Init != nil {
					initStmts[n.Init] = true
				}
			case *ast.TypeSwitchStmt:
				if n.Init != nil {
					initStmts[n.Init] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE || initStmts[n] {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						check(id)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							check(id)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
