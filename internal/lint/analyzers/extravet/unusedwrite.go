package extravet

import (
	"go/ast"
	"go/token"
	"go/types"

	"optimus/internal/lint/analysis"
)

// UnusedWrite reports field writes through a range-statement value
// variable — a per-iteration copy — when the copy is never read after
// the write in the loop body. The mutation is discarded at the next
// iteration: the classic "ranged over values, meant to mutate the slice"
// bug. This is the highest-signal subset of upstream's SSA-based
// unusedwrite; writes that are read back in the same iteration
// (initialize-then-use) stay legal.
var UnusedWrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "report writes to range-value copies that no later read in the iteration can observe",
	Run:  runUnusedWrite,
}

func runUnusedWrite(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			id, ok := rng.Value.(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				return true
			}
			if _, isStruct := obj.Type().Underlying().(*types.Struct); !isStruct {
				return true
			}
			checkCopyWrites(pass, rng.Body, obj)
			return true
		})
	}
	return nil, nil
}

func checkCopyWrites(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) {
	type write struct {
		pos   token.Pos
		field string
	}
	var writes []write
	var reads []token.Pos
	// Base identifiers of write selectors are not reads of the copy.
	writeBase := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				writes = append(writes, write{sel.Pos(), sel.Sel.Name})
				writeBase[id] = true
			}
		}
		return true
	})
	if len(writes) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj && !writeBase[id] {
			reads = append(reads, id.Pos())
		}
		return true
	})
	for _, w := range writes {
		observed := false
		for _, r := range reads {
			if r > w.pos {
				observed = true
				break
			}
		}
		if !observed {
			pass.Reportf(w.pos, "write to field %s of the range-value copy %s is lost: nothing reads the copy afterwards (range over indices or take a pointer)",
				w.field, obj.Name())
		}
	}
}
