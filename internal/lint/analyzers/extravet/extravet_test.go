package extravet_test

import (
	"testing"

	"optimus/internal/lint/analysistest"
	"optimus/internal/lint/analyzers/extravet"
)

func TestFieldAlignment(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), extravet.FieldAlignment, "falign")
}

func TestNilness(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), extravet.Nilness, "nilcheck")
}

func TestShadow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), extravet.Shadow, "shadowed")
}

func TestUnusedWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), extravet.UnusedWrite, "uwrite")
}
