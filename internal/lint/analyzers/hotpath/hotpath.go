// Package hotpath enforces the allocation-free hot-path invariant on
// functions annotated //optimus:hotpath.
//
// The zero-allocation simulator core (the request slab, index deques and
// pricing tables of internal/serve) is guarded at runtime by
// TestServeSimulatorAllocBudget, which counts allocations per run but
// cannot say where a regression came from. The pragma moves the contract
// onto the functions themselves: inside an annotated function the
// analyzer reports the construct classes that allocate (or force an
// escape) on every execution —
//
//   - fmt.* calls (boxing + formatting)
//   - string concatenation (+ / += on strings)
//   - make / new builtins
//   - map and slice composite literals
//   - value-to-interface conversions at call arguments and returns
//   - closures that capture enclosing locals
//
// Amortized growth (append) stays legal — the slab design relies on it.
// A deliberate allocation inside an annotated function (say, a cold
// error branch) carries //lint:alloc with a justification.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"optimus/internal/lint/analysis"
	"optimus/internal/lint/directive"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "report alloc-inducing constructs inside functions annotated //optimus:hotpath",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !directive.HasPragma(fd.Doc, "hotpath") {
				continue
			}
			check(pass, fd)
		}
	}
	return nil, nil
}

func report(pass *analysis.Pass, pos token.Pos, format string, args ...interface{}) {
	if directive.Suppressed(pass, pos, "alloc") {
		return
	}
	pass.Reportf(pos, format, args...)
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// sig of the annotated function, for return-statement conversions.
	sig, _ := info.Defs[fd.Name].Type().(*types.Signature)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				report(pass, n.OpPos, "hotpath: string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				report(pass, n.TokPos, "hotpath: string += allocates")
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				report(pass, n.Pos(), "hotpath: map literal allocates")
			case *types.Slice:
				report(pass, n.Pos(), "hotpath: slice literal allocates")
			}
		case *ast.FuncLit:
			if capt := captures(info, fd, n); capt != "" {
				report(pass, n.Pos(), "hotpath: closure captures %s and escapes it to the heap", capt)
			}
		case *ast.ReturnStmt:
			if sig != nil {
				checkReturn(pass, sig, n)
			}
		}
		return true
	})
}

// checkCall reports make/new, fmt calls, and concrete arguments passed to
// interface parameters (each such pass boxes the value).
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				report(pass, call.Pos(), "hotpath: %s allocates; reuse a pooled buffer instead", b.Name())
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(pass, call.Pos(), "hotpath: fmt.%s allocates (formatting + interface boxing)", sel.Sel.Name)
				return // don't double-report its ...any arguments
			}
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion or builtin, not a call
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if boxes(info, param, arg) {
			report(pass, arg.Pos(), "hotpath: passing %s as %s boxes the value into an interface", types.ExprString(arg), param)
		}
	}
}

func checkReturn(pass *analysis.Pass, sig *types.Signature, ret *ast.ReturnStmt) {
	res := sig.Results()
	if res.Len() != len(ret.Results) {
		return // naked return or multi-value call passthrough
	}
	for i, r := range ret.Results {
		if boxes(pass.TypesInfo, res.At(i).Type(), r) {
			report(pass, r.Pos(), "hotpath: returning %s as %s boxes the value into an interface", types.ExprString(r), res.At(i).Type())
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst
// converts a concrete value to an interface.
func boxes(info *types.Info, dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// captures returns the name of one enclosing local the func literal
// closes over, or "" when it captures nothing (a non-capturing literal
// compiles to a static function and does not allocate).
func captures(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal itself.
		if v.Pos() > enclosing.Pos() && v.Pos() < enclosing.End() &&
			!(v.Pos() > lit.Pos() && v.Pos() < lit.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}
