package hotpath_test

import (
	"testing"

	"optimus/internal/lint/analysistest"
	"optimus/internal/lint/analyzers/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpath.Analyzer, "hot")
}
