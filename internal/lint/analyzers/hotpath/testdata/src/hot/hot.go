// Package hot is a hotpath fixture: annotated functions exercising every
// flagged construct class, the allowed idioms, and the suppression path.
package hot

import "fmt"

type state struct {
	buf  []int
	name string
}

//optimus:hotpath
func Flagged(s *state, x int) string {
	fmt.Println(x)      // want `fmt\.Println allocates`
	m := make([]int, 4) // want `make allocates`
	_ = m
	_ = map[string]int{} // want `map literal allocates`
	_ = []int{1, 2}      // want `slice literal allocates`
	return s.name + "x"  // want `string concatenation allocates`
}

//optimus:hotpath
func Concat(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p // want `string \+= allocates`
	}
	return out
}

//optimus:hotpath
func Capture() func() int {
	x := 1
	return func() int { return x } // want `closure captures x`
}

//optimus:hotpath
func NoCapture() func() int {
	return func() int { return 2 }
}

func sink(v interface{}) {
	_ = v
}

//optimus:hotpath
func BoxesArg(x int) {
	sink(x) // want `boxes the value into an interface`
}

//optimus:hotpath
func BoxesReturn(x int) interface{} {
	return x // want `boxes the value into an interface`
}

//optimus:hotpath
func PassThrough(v interface{}) {
	sink(v) // an interface stays an interface: no boxing
}

//optimus:hotpath
func Grow(s *state, v int) {
	s.buf = append(s.buf, v) // amortized growth is the slab design
}

//optimus:hotpath
func Cold(n int) []int {
	if n > 1<<20 {
		return make([]int, n) //lint:alloc cold guard branch, never taken in steady state
	}
	return nil
}

// Unannotated carries every violation and must stay silent: the pragma is
// opt-in.
func Unannotated() string {
	return fmt.Sprintf("%d", len(map[string]int{}))
}
