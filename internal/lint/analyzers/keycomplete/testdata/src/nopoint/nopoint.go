// Package nopoint has no Point type: the analyzer must not fire at all.
package nopoint

type Config struct {
	Name string
	Size int
}

func Key(c Config) string {
	return c.Name
}
