// Package sweep is a keycomplete fixture: a Point whose key builders
// cover some fields directly, one through a token helper, and miss one —
// the seeded violation the analyzer must catch.
package sweep

import "strconv"

type Point struct {
	Model string
	Batch int
	Rate  float64 // want `Point\.Rate is not folded into`
	key   string  //lint:nokey cached key storage, not an axis
	//lint:nokey
	Hidden int // want `bare //lint:nokey directive`
}

func (p Point) Key() string {
	return buildKey(p)
}

func buildKey(p Point) string {
	return p.Model + "|" + batchToken(p)
}

func batchToken(p Point) string {
	return strconv.Itoa(p.Batch)
}
