package keycomplete_test

import (
	"testing"

	"optimus/internal/lint/analysistest"
	"optimus/internal/lint/analyzers/keycomplete"
)

func TestKeyComplete(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), keycomplete.Analyzer, "sweep", "nopoint")
}
